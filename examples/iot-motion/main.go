// IoT motion detection (§4.2.2): an MQTT-fronted sensor→actuator chain.
// Motion sensors publish events over MQTT-lite; the gateway's event-driven
// protocol adapter translates them into chain messages; the sensor function
// classifies and the actuator switches the light — all fire-and-forget,
// with zero CPU consumed between events (the property that lets SPRIGHT
// keep the chain warm and sidestep cold starts).
//
//	go run ./examples/iot-motion
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"sync/atomic"
	"time"

	spright "github.com/spright-go/spright"
	"github.com/spright-go/spright/internal/proto"
)

func main() {
	cluster := spright.NewCluster(1)

	var lightOn, lightOff atomic.Int64
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: "motion",
		Functions: []spright.FunctionSpec{
			{
				Name: "sensor",
				Handler: func(ctx *spright.Ctx) error {
					// classify the motion event and route by topic
					if strings.Contains(string(ctx.Payload()), "ON") {
						ctx.SetTopic("lights/on")
					} else {
						ctx.SetTopic("lights/off")
					}
					return nil
				},
			},
			{
				Name: "actuator",
				Handler: func(ctx *spright.Ctx) error {
					if ctx.Topic == "lights/on" {
						lightOn.Add(1)
					} else {
						lightOff.Add(1)
					}
					ctx.Drop() // terminal: no response for IoT events
					return nil
				},
			},
		},
		Routes: []spright.RouteSpec{
			{From: "", To: []string{"sensor"}},
			{Topic: "lights/on", From: "sensor", To: []string{"actuator"}},
			{Topic: "lights/off", From: "sensor", To: []string{"actuator"}},
		},
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer dep.Close()

	// attach the MQTT adapter at the gateway hook point (dynamic, §3.6)
	dep.Gateway.Adapters().Attach(spright.MQTTAdapter{})

	// an MQTT client session: CONNECT is answered by the gateway itself
	ack, err := dep.Gateway.IngestRaw(context.Background(), "mqtt", proto.MarshalMQTTConnect("hall-sensor-3"))
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	fmt.Printf("MQTT CONNECT handled by gateway, CONNACK % x\n", ack)

	// publish a burst of motion events (a person walking through)
	events := []string{`{"state":"ON"}`, `{"state":"ON"}`, `{"state":"OFF"}`}
	for i, ev := range events {
		pub := proto.MarshalMQTTPublish("sensors/motion/hall-3", []byte(ev))
		if _, err := dep.Gateway.IngestRaw(context.Background(), "mqtt", pub); err != nil {
			log.Fatalf("publish %d: %v", i, err)
		}
	}

	// fire-and-forget: give the chain a moment to drain
	deadline := time.Now().Add(2 * time.Second)
	for lightOn.Load()+lightOff.Load() < int64(len(events)) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	fmt.Printf("actuator: light switched ON %d times, OFF %d times\n", lightOn.Load(), lightOff.Load())
	if pkts, bytes := dep.Gateway.EProxy().L3Stats(); true {
		fmt.Printf("EPROXY L3 metrics (from the eBPF metrics map): %d events, %d bytes\n", pkts, bytes)
	}
	fmt.Println("note: while idle, this chain consumes no CPU — no polling anywhere.")
}
