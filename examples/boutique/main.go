// Online boutique (§4.2.1, Table 3): the ten-service microservice demo
// running as one SPRIGHT chain on the real in-process dataplane. Every
// Table 3 call sequence executes with a single shared-memory allocation
// per request — Ch-6's 24 hops move only 16-byte descriptors.
//
//	go run ./examples/boutique
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	spright "github.com/spright-go/spright"
	"github.com/spright-go/spright/internal/boutique"
)

func main() {
	cluster := spright.NewCluster(1)
	dep, err := cluster.Controller.DeployChain(boutique.Spec(boutique.SpecOptions{
		Name: "boutique",
		Mode: spright.ModeEvent,
	}))
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer dep.Close()

	fmt.Println("chain deployed: 10 services,", len(dep.Chain.Instances()), "instances")

	// run each Table 3 chain once, then a concurrent mixed load
	for ci, c := range boutique.Chains() {
		start := time.Now()
		out, err := dep.Gateway.Invoke(context.Background(), "", boutique.EncodeRequest(ci, []byte("user-42")))
		if err != nil {
			log.Fatalf("%s: %v", c.Index, err)
		}
		_, steps, _, _ := boutique.DecodeResponse(out)
		fmt.Printf("  %-5s %-22s %2d hops in %8v\n", c.Index, c.API, steps, time.Since(start).Round(time.Microsecond))
	}

	// concurrent mixed load with the Locust task weights
	const requests = 600
	var wg sync.WaitGroup
	weights := boutique.Weights()
	var total float64
	for _, w := range weights {
		total += w
	}
	start := time.Now()
	for i := 0; i < requests; i++ {
		// deterministic weighted pick
		x := float64(i%int(total*10)) / 10.0
		ci := 0
		for j, w := range weights {
			if x < w {
				ci = j
				break
			}
			x -= w
		}
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if _, err := dep.Gateway.Invoke(ctx, "", boutique.EncodeRequest(ci, []byte("u"))); err != nil {
				log.Printf("request failed: %v", err)
			}
		}(ci)
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := dep.Gateway.Stats()
	ps := dep.Chain.Pool().Stats()
	fmt.Printf("\n%d requests in %v — %.0f req/s, mean %.3fms, p95 %.3fms\n",
		requests, elapsed.Round(time.Millisecond),
		float64(requests)/elapsed.Seconds(), st.Mean*1e3, st.P95*1e3)
	fmt.Printf("pool: %d allocs for %d requests (1 buffer per request, zero-copy through up to 24 hops)\n",
		ps.Allocs, st.Admitted)

	sp := dep.Chain.SProxy()
	fmt.Println("\nper-service L7 request counts (from the SPROXY metrics map):")
	for _, in := range dep.Chain.Instances() {
		fmt.Printf("  %-16s %6d\n", in.Function(), sp.RequestCount(in.ID()))
	}
}
