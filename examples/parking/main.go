// Parking: image detection & charging (§4.1, Table 4). Cameras post ~3 KB
// snapshots over CoAP; the chain runs plate detection → plate search →
// (plate-index → persist-metadata for unknown plates) → charging, with the
// plate database held in an in-memory store shared by reference through
// the chain's shared-memory pool.
//
//	go run ./examples/parking
package main

import (
	"context"
	"fmt"
	"hash/fnv"
	"log"
	"sync"
	"time"

	spright "github.com/spright-go/spright"
	"github.com/spright-go/spright/internal/proto"
)

// plateDB is the "in-memory DB" of Fig. 8(c).
type plateDB struct {
	mu     sync.Mutex
	plates map[string]int // plate -> charge count
}

func main() {
	cluster := spright.NewCluster(1)
	db := &plateDB{plates: make(map[string]int)}

	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name:    "parking",
		BufSize: 8 * 1024, // snapshots are ~3 KB
		Functions: []spright.FunctionSpec{
			{
				Name:        "detect",
				Concurrency: 8,
				// ServiceTime stands in for VGG-16's 435 ms inference,
				// scaled down 100x so the example runs quickly.
				ServiceTime: 4350 * time.Microsecond,
				Handler: func(ctx *spright.Ctx) error {
					// "detect" the plate: hash the image bytes
					h := fnv.New32a()
					h.Write(ctx.Payload())
					plate := fmt.Sprintf("PL-%04X", h.Sum32()&0xFFFF)
					return ctx.SetPayload([]byte(plate))
				},
			},
			{
				Name:        "search",
				ServiceTime: 200 * time.Microsecond,
				Handler: func(ctx *spright.Ctx) error {
					db.mu.Lock()
					_, known := db.plates[string(ctx.Payload())]
					db.mu.Unlock()
					if known {
						ctx.SetTopic("plate/known")
					} else {
						ctx.SetTopic("plate/new")
					}
					return nil
				},
			},
			{
				Name:        "index",
				ServiceTime: 10 * time.Microsecond,
				Handler:     func(ctx *spright.Ctx) error { return nil },
			},
			{
				Name:        "persist",
				ServiceTime: 100 * time.Microsecond,
				Handler: func(ctx *spright.Ctx) error {
					db.mu.Lock()
					db.plates[string(ctx.Payload())] = 0
					db.mu.Unlock()
					return nil
				},
			},
			{
				Name:        "charge",
				ServiceTime: 500 * time.Microsecond,
				Handler: func(ctx *spright.Ctx) error {
					db.mu.Lock()
					db.plates[string(ctx.Payload())]++
					n := db.plates[string(ctx.Payload())]
					db.mu.Unlock()
					return ctx.SetPayload([]byte(fmt.Sprintf("%s charged (visit %d)", ctx.Payload(), n)))
				},
			},
		},
		Routes: []spright.RouteSpec{
			{From: "", To: []string{"detect"}},
			{From: "detect", To: []string{"search"}},
			// Table 4: Ch-1 (new plate) ①②③⑤④; Ch-2 (known) ①②④
			{Topic: "plate/new", From: "search", To: []string{"index"}},
			{From: "index", To: []string{"persist"}},
			{From: "persist", To: []string{"charge"}},
			{Topic: "plate/known", From: "search", To: []string{"charge"}},
		},
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer dep.Close()
	dep.Gateway.Adapters().Attach(spright.CoAPAdapter{})

	// one burst: snapshots from 16 parking spots (two visits each, so the
	// second round takes the known-plate fast path)
	snapshot := func(spot int) []byte {
		img := make([]byte, 3*1024)
		for i := range img {
			img[i] = byte(spot + i%7)
		}
		return img
	}
	start := time.Now()
	for round := 0; round < 2; round++ {
		for spot := 0; spot < 16; spot++ {
			req := proto.MarshalCoAP(proto.CoAPPost, uint16(spot), "parking/snapshot", snapshot(spot))
			resp, err := dep.Gateway.IngestRaw(context.Background(), "coap", req)
			if err != nil {
				log.Fatalf("spot %d: %v", spot, err)
			}
			if round == 1 && spot < 3 {
				_, _, _, payload, _ := proto.UnmarshalCoAP(resp)
				fmt.Printf("  spot %2d: %s\n", spot, payload)
			}
		}
	}
	elapsed := time.Since(start)

	db.mu.Lock()
	plates := len(db.plates)
	db.mu.Unlock()
	st := dep.Gateway.Stats()
	fmt.Printf("\nprocessed %d snapshots in %v (mean %.2fms): %d distinct plates\n",
		st.Completed, elapsed.Round(time.Millisecond), st.Mean*1e3, plates)
	fmt.Printf("pool stats: %+v\n", dep.Chain.Pool().Stats())
	fmt.Println("round 2 skipped index+persist via topic routing (plate/known fast path)")
}
