// Quickstart: deploy a two-function SPRIGHT chain on the in-process
// dataplane, invoke it programmatically, and show the zero-copy and
// metrics machinery at work.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	spright "github.com/spright-go/spright"
)

func main() {
	cluster := spright.NewCluster(1)

	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: "quickstart",
		Mode: spright.ModeEvent, // S-SPRIGHT: sockmap descriptor delivery
		Functions: []spright.FunctionSpec{
			{
				Name: "tokenize",
				Handler: func(ctx *spright.Ctx) error {
					// zero-copy in-place mutation: uppercase the payload
					b := ctx.Payload()
					for i := range b {
						if b[i] >= 'a' && b[i] <= 'z' {
							b[i] -= 32
						}
					}
					return nil
				},
			},
			{
				Name: "annotate",
				Handler: func(ctx *spright.Ctx) error {
					return ctx.SetPayload(append(ctx.Payload(), []byte(" [processed by spright]")...))
				},
			},
		},
		Routes: []spright.RouteSpec{
			{From: "", To: []string{"tokenize"}},         // gateway → head
			{From: "tokenize", To: []string{"annotate"}}, // DFR: direct, no gateway bounce
		},
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer dep.Close()

	out, err := dep.Gateway.Invoke(context.Background(), "", []byte("hello shared memory"))
	if err != nil {
		log.Fatalf("invoke: %v", err)
	}
	fmt.Printf("response: %s\n", out)

	// Every hop ran through the SPROXY program in the eBPF VM; its L7
	// metrics map counted the invocations.
	sp := dep.Chain.SProxy()
	for _, in := range dep.Chain.Instances() {
		fmt.Printf("  %-9s (instance %d): %d requests via sockmap redirect\n",
			in.Function(), in.ID(), sp.RequestCount(in.ID()))
	}
	stats := dep.Chain.Pool().Stats()
	fmt.Printf("shared-memory pool: %d allocation(s) for 1 request across 2 functions (zero-copy)\n",
		stats.Allocs)
	gw := dep.Gateway.Stats()
	fmt.Printf("gateway: admitted=%d completed=%d mean=%.3fms\n",
		gw.Admitted, gw.Completed, gw.Mean*1e3)
}
