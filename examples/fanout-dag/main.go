// Fan-out/fan-in DAG over the ephemeral shared-memory object store:
// a producer materialises a 10MB intermediate ONCE as a pool-backed
// object, the chain fans the descriptor out to three consumers that each
// read the object zero-copy (their slab views alias the same shared
// memory), and an aggregator fans back in, replying once all branches
// have reported.
//
// This is the data-intensive-chain pattern from the SPRIGHT paper taken
// past the single-buffer limit: payloads larger than one pool buffer ride
// as compact 8-byte object handles in descriptor headroom, so the hop
// cost stays O(descriptor) no matter the intermediate's size.
//
//	go run ./examples/fanout-dag
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"unsafe"

	spright "github.com/spright-go/spright"
)

const (
	consumers = 3
	objSize   = 10 << 20 // the 10MB intermediate, ~640 pool slabs
)

func main() {
	cluster := spright.NewCluster(1)

	// One guard per branch proves zero-copy: every consumer records the
	// base address of the object's first slab; they must all match.
	var mu sync.Mutex
	slabAddr := make(map[string]uintptr)
	arrivals := 0

	consumer := func(name string) spright.FunctionSpec {
		return spright.FunctionSpec{
			Name: name,
			Handler: func(ctx *spright.Ctx) error {
				r, err := ctx.OpenObject() // pinned: cannot spill while open
				if err != nil {
					return err
				}
				defer r.Close()
				// Digest the intermediate slab by slab — no copies, the
				// views alias pool memory directly.
				var sum uint64
				for i := 0; i < r.Slabs(); i++ {
					for _, b := range r.Slab(i) {
						sum += uint64(b)
					}
				}
				s0 := r.Slab(0)
				mu.Lock()
				slabAddr[name] = uintptr(unsafe.Pointer(&s0[0]))
				mu.Unlock()
				fmt.Printf("  %s: read %d bytes across %d slabs (digest %d)\n",
					name, r.Size(), r.Slabs(), sum)
				return nil // default route → collect
			},
		}
	}

	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name:        "fanout-dag",
		PoolBuffers: 4096,
		BufSize:     16 * 1024,
		Functions: []spright.FunctionSpec{
			{
				Name: "produce",
				Handler: func(ctx *spright.Ctx) error {
					// Build the 10MB intermediate directly into pool slabs
					// via the streaming writer — written exactly once.
					w, err := ctx.CreateObject("intermediate")
					if err != nil {
						return err
					}
					chunk := make([]byte, 64*1024)
					for i := range chunk {
						chunk[i] = byte(i)
					}
					for written := 0; written < objSize; written += len(chunk) {
						if _, err := w.Write(chunk); err != nil {
							w.Abort()
							return err
						}
					}
					h, err := w.Commit()
					if err != nil {
						return err
					}
					// Attach transfers our reference to the in-flight
					// message: the object now lives exactly as long as the
					// request, shared by every fan-out branch.
					if err := ctx.AttachObject(h); err != nil {
						return err
					}
					return ctx.SetPayload(nil)
				},
			},
			consumer("map-a"), consumer("map-b"), consumer("map-c"),
			{
				Name: "collect",
				Handler: func(ctx *spright.Ctx) error {
					mu.Lock()
					arrivals++
					last := arrivals == consumers
					mu.Unlock()
					if !last {
						ctx.Drop() // fan-in: swallow all but the final branch
						return nil
					}
					ctx.DetachObject() // reply small, not the 10MB object
					ctx.Reply()
					return ctx.SetPayload([]byte("all branches done"))
				},
			},
		},
		Routes: []spright.RouteSpec{
			{From: "", To: []string{"produce"}},
			{From: "produce", To: []string{"map-a", "map-b", "map-c"}},
			{From: "map-a", To: []string{"collect"}},
			{From: "map-b", To: []string{"collect"}},
			{From: "map-c", To: []string{"collect"}},
		},
	})
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	defer dep.Close()

	out, err := dep.Gateway.Invoke(context.Background(), "", []byte("go"))
	if err != nil {
		log.Fatalf("invoke: %v", err)
	}
	fmt.Printf("reply: %s\n", out)

	// Zero-copy proof: all three consumers read the same backing memory.
	var base uintptr
	same := true
	for _, a := range slabAddr {
		if base == 0 {
			base = a
		} else if a != base {
			same = false
		}
	}
	fmt.Printf("zero-copy: %d consumers, shared slab base %#x, aliased=%v\n",
		len(slabAddr), base, same)

	st := dep.Chain.ObjectStore().Stats()
	fmt.Printf("object store: puts=%d opens=%d spills=%d — the 10MB intermediate was written once and read %d times in place\n",
		st.Puts, st.Opens, st.Spills, st.Opens)
}
