// Benchmark harness: one testing.B entry per paper table/figure (each
// regenerates its experiment and reports the headline metrics), plus
// microbenchmarks of the real dataplane and the ablations DESIGN.md §6
// calls out. cmd/spright-bench prints the full rows/series.
package spright_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	spright "github.com/spright-go/spright"
	"github.com/spright-go/spright/internal/boutique"
	"github.com/spright-go/spright/internal/core"
	"github.com/spright-go/spright/internal/ebpf"
	"github.com/spright-go/spright/internal/experiment"
	"github.com/spright-go/spright/internal/grpcbase"
	"github.com/spright-go/spright/internal/obs"
	"github.com/spright-go/spright/internal/proto"
	"github.com/spright-go/spright/internal/shm"
	"github.com/spright-go/spright/internal/shm/objstore"
)

// ---------------------------------------------------------------------------
// Paper tables and figures
// ---------------------------------------------------------------------------

func BenchmarkTable1_KnativeAudit(b *testing.B) {
	var r *experiment.Report
	for i := 0; i < b.N; i++ {
		r = experiment.Table1()
	}
	b.ReportMetric(r.V("kn_copies"), "copies/req")
	b.ReportMetric(r.V("kn_ctx"), "ctxswitch/req")
	b.ReportMetric(r.V("kn_intr"), "interrupts/req")
}

func BenchmarkTable2_SprightAudit(b *testing.B) {
	var r *experiment.Report
	for i := 0; i < b.N; i++ {
		r = experiment.Table2()
	}
	b.ReportMetric(r.V("sp_copies"), "copies/req")
	b.ReportMetric(r.V("sp_ctx"), "ctxswitch/req")
	b.ReportMetric(r.V("sp_intr"), "interrupts/req")
}

func BenchmarkFig2_SidecarComparison(b *testing.B) {
	var r *experiment.Report
	for i := 0; i < b.N; i++ {
		r = experiment.Fig2()
	}
	b.ReportMetric(r.V("null_rps"), "null-rps")
	b.ReportMetric(r.V("qp_rps"), "qp-rps")
	b.ReportMetric(r.V("envoy_rps"), "envoy-rps")
	b.ReportMetric(r.V("ofw_rps"), "ofw-rps")
}

func BenchmarkFig5_SharedMemoryProcessing(b *testing.B) {
	var r *experiment.Report
	for i := 0; i < b.N; i++ {
		r = experiment.Fig5()
	}
	b.ReportMetric(r.V("d_rps_32"), "D-rps@32")
	b.ReportMetric(r.V("s_rps_32"), "S-rps@32")
	b.ReportMetric(r.V("kn_rps_32"), "Kn-rps@32")
	b.ReportMetric(r.V("s_cpu_32"), "S-cpu%@32")
	b.ReportMetric(r.V("d_cpu_32"), "D-cpu%@32")
	b.ReportMetric(r.V("kn_cpu_32"), "Kn-cpu%@32")
}

func BenchmarkChainLengthScaling(b *testing.B) {
	var r *experiment.Report
	for i := 0; i < b.N; i++ {
		r = experiment.ChainScaling()
	}
	b.ReportMetric(r.V("kn8_cycles"), "kn-cycles@8fn")
	b.ReportMetric(r.V("sp8_cycles"), "sp-cycles@8fn")
}

func BenchmarkFig9_BoutiqueRPS(b *testing.B) {
	var r *experiment.Report
	for i := 0; i < b.N; i++ {
		r = experiment.Fig9()
	}
	b.ReportMetric(r.V("kn_rps"), "Kn-rps")
	b.ReportMetric(r.V("grpc_rps"), "gRPC-rps")
	b.ReportMetric(r.V("d_rps"), "D-rps")
	b.ReportMetric(r.V("s_rps"), "S-rps")
}

func BenchmarkFig10_BoutiqueCDFAndCPU(b *testing.B) {
	var r *experiment.Report
	for i := 0; i < b.N; i++ {
		r = experiment.Fig10()
	}
	b.ReportMetric(r.V("kn_p95_ms"), "Kn-p95-ms")
	b.ReportMetric(r.V("s_p95_ms"), "S-p95-ms")
	b.ReportMetric(r.V("s_cpu"), "S-cpu-cores")
	b.ReportMetric(r.V("d_cpu"), "D-cpu-cores")
}

func BenchmarkTable5_BoutiqueLatency(b *testing.B) {
	var r *experiment.Report
	for i := 0; i < b.N; i++ {
		r = experiment.Table5()
	}
	b.ReportMetric(r.V("kn_p95_ms_5000"), "Kn-p95-ms@5K")
	b.ReportMetric(r.V("s_p95_ms_5000"), "S-p95-ms@5K")
	b.ReportMetric(r.V("s_p95_ms_25000"), "S-p95-ms@25K")
}

func BenchmarkFig11_MotionColdStart(b *testing.B) {
	var r *experiment.Report
	for i := 0; i < b.N; i++ {
		r = experiment.Fig11()
	}
	b.ReportMetric(r.V("kn_cold_starts"), "Kn-coldstarts")
	b.ReportMetric(r.V("kn_max_lat_s"), "Kn-max-lat-s")
	b.ReportMetric(r.V("s_max_lat_s")*1e3, "S-max-lat-ms")
}

func BenchmarkFig12_ParkingPrewarm(b *testing.B) {
	var r *experiment.Report
	for i := 0; i < b.N; i++ {
		r = experiment.Fig12()
	}
	b.ReportMetric(r.V("lat_saving")*100, "lat-saving-%")
	b.ReportMetric(r.V("cpu_saving")*100, "cpu-saving-%")
}

func BenchmarkXDP_Ablation(b *testing.B) {
	var r *experiment.Report
	for i := 0; i < b.N; i++ {
		r = experiment.XDPAblation()
	}
	b.ReportMetric(r.V("tput_gain"), "tput-gain-x")
	b.ReportMetric(r.V("lat_cut")*100, "lat-cut-%")
}

func BenchmarkProtocolAdapter_Ablation(b *testing.B) {
	var r *experiment.Report
	for i := 0; i < b.N; i++ {
		r = experiment.AdapterAblation()
	}
	b.ReportMetric(r.V("lat_cut")*100, "lat-cut-%")
}

// ---------------------------------------------------------------------------
// Real-dataplane microbenchmarks
// ---------------------------------------------------------------------------

// benchChainSeq makes deployed chain names unique across benchmark probe
// runs — b.N alone repeats across a -cpu sweep (each cpu count restarts
// its probe sequence at N=1, and chains from consecutive probes can
// briefly coexist).
var benchChainSeq atomic.Uint64

func benchChain(b *testing.B, mode spright.Mode, fns int) *spright.Deployment {
	b.Helper()
	cluster := spright.NewCluster(1)
	var specs []spright.FunctionSpec
	var routes []spright.RouteSpec
	prev := ""
	for i := 0; i < fns; i++ {
		name := fmt.Sprintf("f%d", i)
		specs = append(specs, spright.FunctionSpec{
			Name:    name,
			Handler: func(ctx *spright.Ctx) error { return nil },
		})
		routes = append(routes, spright.RouteSpec{From: prev, To: []string{name}})
		prev = name
	}
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name:      fmt.Sprintf("bench-%d-%d", fns, benchChainSeq.Add(1)),
		Mode:      mode,
		Functions: specs,
		Routes:    routes,
		BufSize:   128 << 10, // room for the large-payload variants
		// The E2E benchmarks measure the dataplane: disable the per-chain
		// metrics-agent goroutine so its 500ms control cadence cannot share
		// the CPU with the hot loop at GOMAXPROCS=1 (polling-mode dispatch
		// spins; a second runnable goroutine skews the tail).
		ScrapeInterval: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(dep.Close)
	return dep
}

// e2eSizes exercises the zero-copy advantage: descriptor passing is
// size-independent while serializing transports pay per byte per hop.
var e2eSizes = []int{100, 10 << 10, 64 << 10}

func sizeName(n int) string {
	if n >= 1024 {
		return fmt.Sprintf("%dKB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}

// BenchmarkE2E_SSpright measures the real dataplane end to end: HTTP-free
// invoke through a 2-function chain with sockmap descriptor delivery.
func BenchmarkE2E_SSpright(b *testing.B) {
	for _, size := range e2eSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			dep := benchChain(b, spright.ModeEvent, 2)
			payload := make([]byte, size)
			resp := make([]byte, size)
			ctx := context.Background()
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dep.Gateway.InvokeInto(ctx, "", payload, resp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2E_DSpright is the polling-transport equivalent. Like the
// S-SPRIGHT variant it uses InvokeInto, so steady state is allocation-free:
// the remaining per-request work is descriptor movement and the two copies
// at the gateway boundary.
func BenchmarkE2E_DSpright(b *testing.B) {
	for _, size := range e2eSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			dep := benchChain(b, spright.ModePolling, 2)
			payload := make([]byte, size)
			resp := make([]byte, size)
			ctx := context.Background()
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dep.Gateway.InvokeInto(ctx, "", payload, resp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchE2EParallel drives the chain from b.RunParallel: every worker owns
// its request/response buffers and issues closed-loop invocations, so the
// measured ns/op is wall time per request across all workers and
// RPS = 1e9/ns_per_op at that GOMAXPROCS. Run with -cpu 1,2,4,8 to sweep
// the scaling curve; after the timed region the gateway's latency
// histogram reports p50/p99 across the whole run.
func benchE2EParallel(b *testing.B, mode spright.Mode, size int) {
	dep := benchChain(b, mode, 2)
	ctx := context.Background()
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		payload := make([]byte, size)
		resp := make([]byte, size)
		for pb.Next() {
			if _, err := dep.Gateway.InvokeInto(ctx, "", payload, resp); err != nil {
				// b.Fatal must not run on RunParallel body goroutines.
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	lat := dep.Gateway.Latency()
	b.ReportMetric(lat.Quantile(0.50)*1e9, "p50-ns")
	b.ReportMetric(lat.Quantile(0.99)*1e9, "p99-ns")
	b.ReportMetric(lat.Quantile(0.999)*1e9, "p999-ns")
}

// BenchmarkE2E_Parallel_SSpright is the multicore RPS harness for the
// event-driven transport.
func BenchmarkE2E_Parallel_SSpright(b *testing.B) {
	for _, size := range e2eSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			benchE2EParallel(b, spright.ModeEvent, size)
		})
	}
}

// BenchmarkE2E_Parallel_DSpright is the polling-transport equivalent.
func BenchmarkE2E_Parallel_DSpright(b *testing.B) {
	for _, size := range e2eSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			benchE2EParallel(b, spright.ModePolling, size)
		})
	}
}

// benchPlacedChain builds a 2-node cluster joined by the loopback mesh and
// deploys a 2-function chain with f0 on worker-1 and f1 on worker-2, so
// every request crosses the wire twice (forward + response).
func benchPlacedChain(b *testing.B) (*spright.Cluster, *spright.PlacedDeployment) {
	b.Helper()
	cluster := spright.NewCluster(2)
	if err := cluster.StartMesh(spright.MeshConfig{}); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cluster.StopMesh)
	pd, err := cluster.Controller.DeployPlacedChain(spright.ChainSpec{
		Name: fmt.Sprintf("bench-xnode-%d", benchChainSeq.Add(1)),
		Mode: spright.ModeEvent,
		Functions: []spright.FunctionSpec{
			{Name: "f0", Node: "worker-1", Handler: func(ctx *spright.Ctx) error { return nil }},
			{Name: "f1", Node: "worker-2", Handler: func(ctx *spright.Ctx) error { return nil }},
		},
		Routes: []spright.RouteSpec{
			{From: "", To: []string{"f0"}},
			{From: "f0", To: []string{"f1"}},
		},
		BufSize: 128 << 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(pd.Close)
	return cluster, pd
}

// BenchmarkE2E_CrossNode is the 2-node variant of BenchmarkE2E_SSpright:
// the f0→f1 hop leaves the node over the batched TCP mesh and the response
// rides it back, so ns/op is the per-request cross-node tax on top of the
// shared-memory path (which BenchmarkE2E_SSpright shows unchanged).
func BenchmarkE2E_CrossNode(b *testing.B) {
	for _, size := range e2eSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			_, pd := benchPlacedChain(b)
			payload := make([]byte, size)
			resp := make([]byte, size)
			ctx := context.Background()
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pd.Gateway().InvokeInto(ctx, "", payload, resp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2E_Parallel_CrossNode is the closed-loop multicore harness over
// the 2-node placement. Concurrent requests share the per-peer send ring,
// so the writer coalesces frames: the reported frames/write is the batching
// amortization the serial bench cannot show (1.0 = no coalescing).
func BenchmarkE2E_Parallel_CrossNode(b *testing.B) {
	for _, size := range e2eSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			cluster, pd := benchPlacedChain(b)
			ctx := context.Background()
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				payload := make([]byte, size)
				resp := make([]byte, size)
				for pb.Next() {
					if _, err := pd.Gateway().InvokeInto(ctx, "", payload, resp); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			for _, ps := range cluster.Nodes()[0].Mesh.Stats().Sent {
				if ps.Peer == "worker-2" && ps.Writes > 0 {
					b.ReportMetric(float64(ps.FramesSent)/float64(ps.Writes), "frames/write")
				}
			}
		})
	}
}

// BenchmarkE2E_GRPCBaseline runs the same 2-function workload over the
// real gRPC direct-call baseline (net.Pipe + per-hop serialization) for a
// like-for-like comparison with BenchmarkE2E_SSpright: the delta is the
// paper's serialization/copy tax on every hop.
func BenchmarkE2E_GRPCBaseline(b *testing.B) {
	for _, size := range e2eSizes {
		b.Run(sizeName(size), func(b *testing.B) {
			mesh := grpcbase.NewMesh()
			defer mesh.Close()
			pass := func(_ string, req []byte) ([]byte, error) { return req, nil }
			for _, name := range []string{"f0", "f1"} {
				if err := mesh.Register(grpcbase.NewServer(name, pass)); err != nil {
					b.Fatal(err)
				}
			}
			payload := make([]byte, size)
			chain := []string{"f0", "f1"}
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mesh.CallChain(chain, "/bench", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDFR_Ablation compares a 4-function chain (DFR: messages flow
// function-to-function) against 4 chained 1-function invocations (every
// hop returning to the gateway).
func BenchmarkDFR_Ablation(b *testing.B) {
	b.Run("dfr-chain", func(b *testing.B) {
		dep := benchChain(b, spright.ModeEvent, 4)
		ctx := context.Background()
		payload := make([]byte, 100)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dep.Gateway.Invoke(ctx, "", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gateway-bounce", func(b *testing.B) {
		dep := benchChain(b, spright.ModeEvent, 1)
		ctx := context.Background()
		payload := make([]byte, 100)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for hop := 0; hop < 4; hop++ {
				if _, err := dep.Gateway.Invoke(ctx, "", payload); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkSProxySend measures one sockmap-redirect descriptor delivery
// through the verified SK_MSG program.
func BenchmarkSProxySend(b *testing.B) {
	kernel := ebpf.NewKernel()
	sp, err := core.NewSProxy(kernel, "bench")
	if err != nil {
		b.Fatal(err)
	}
	sock := core.NewSocket(7, 1024)
	if err := sp.RegisterSocket(sock); err != nil {
		b.Fatal(err)
	}
	if err := sp.Allow(1, 7); err != nil {
		b.Fatal(err)
	}
	d := shm.Descriptor{NextFn: 7, Buf: 1, Len: 100, Caller: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sp.Send(1, d); err != nil {
			b.Fatal(err)
		}
		<-sock.Recv() // delivery is synchronous; drain in-loop
	}
	b.StopTimer()
	sock.Close()
}

// BenchmarkFilterMap_Ablation isolates the security-domain lookup cost:
// SPROXY send with the filter populated vs a direct socket delivery.
func BenchmarkFilterMap_Ablation(b *testing.B) {
	b.Run("with-sproxy-filter", BenchmarkSProxySend)
	b.Run("raw-socket-delivery", func(b *testing.B) {
		sock := core.NewSocket(7, 1024)
		d := shm.Descriptor{NextFn: 7}
		wire := d.Marshal()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sock.DeliverDescriptor(wire[:]); err != nil {
				b.Fatal(err)
			}
			<-sock.Recv()
		}
		b.StopTimer()
		sock.Close()
	})
}

// BenchmarkShmPool measures the gateway's per-request pool cycle.
func BenchmarkShmPool(b *testing.B) {
	pool, err := shm.NewPool("bench", 1024, 16*1024)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := pool.Get()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pool.Write(h, payload); err != nil {
			b.Fatal(err)
		}
		if err := pool.Put(h); err != nil {
			b.Fatal(err)
		}
	}
}

// benchObjStore builds a pool + object store sized for the 10MB
// intermediate (640 × 16KiB slabs, with headroom).
func benchObjStore(b *testing.B, cfg objstore.Config) (*shm.Pool, *objstore.Store) {
	b.Helper()
	pool, err := shm.NewPool("bench-obj", 1024, 16*1024)
	if err != nil {
		b.Fatal(err)
	}
	return pool, objstore.New(pool, cfg)
}

// BenchmarkObjStorePut10MB measures materialising the ROADMAP item 4
// intermediate: one 10MB object written into pool slabs and released.
// This is the write-once cost the fan-out DAG pays exactly once per
// request, regardless of the consumer count.
func BenchmarkObjStorePut10MB(b *testing.B) {
	_, st := benchObjStore(b, objstore.Config{})
	data := make([]byte, 10<<20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := st.Put("", data)
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Release(h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObjStoreOpenRead10MB is the consumer side of the fan-out DAG:
// open the shared 10MB object, walk every slab view in place, close. The
// reader is pooled and the slab views alias pool memory, so steady state
// is allocation-free — the acceptance bar for the zero-copy N-consumer
// read path.
func BenchmarkObjStoreOpenRead10MB(b *testing.B) {
	_, st := benchObjStore(b, objstore.Config{})
	h, err := st.Put("intermediate", make([]byte, 10<<20))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Release(h)
	b.SetBytes(10 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	var sink byte
	for i := 0; i < b.N; i++ {
		r, err := st.Open(h)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < r.Slabs(); s++ {
			v := r.Slab(s)
			sink += v[0] + v[len(v)-1]
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
	_ = sink
}

// BenchmarkObjStoreSpillReload1MB measures one full eviction round trip:
// a 1MB object spilled to the file tier and transparently reloaded into
// pool slabs on the next Open. This is the cost of overflowing
// MaxResidentBytes — the price of keeping the pool available for the hot
// path when cold intermediates pile up.
func BenchmarkObjStoreSpillReload1MB(b *testing.B) {
	_, st := benchObjStore(b, objstore.Config{SpillDir: b.TempDir()})
	h, err := st.Put("cold", make([]byte, 1<<20))
	if err != nil {
		b.Fatal(err)
	}
	defer st.Release(h)
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Spill(h); err != nil {
			b.Fatal(err)
		}
		r, err := st.Open(h) // transparent reload
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2E_LargePayload drives a >BufSize request end to end through
// the gateway's chunked-object admission: a 1MB body over a 16KiB-buffer
// chain rides as an attached object handle and is reassembled for the
// response — the path a serializing transport would pay per hop for.
func BenchmarkE2E_LargePayload(b *testing.B) {
	cluster := spright.NewCluster(1)
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name:        fmt.Sprintf("bench-large-%d", benchChainSeq.Add(1)),
		Mode:        spright.ModeEvent,
		PoolBuffers: 512,
		BufSize:     16 * 1024,
		Functions: []spright.FunctionSpec{
			{Name: "f0", Handler: func(ctx *spright.Ctx) error { return nil }},
		},
		Routes: []spright.RouteSpec{{From: "", To: []string{"f0"}}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(dep.Close)
	payload := make([]byte, 1<<20)
	ctx := context.Background()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Gateway.Invoke(ctx, "", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEBPFInterpreter measures the bytecode interpreter — the
// differential oracle — on the SPROXY-sized program. The JIT is switched
// off explicitly so this tracked series keeps measuring the oracle across
// snapshots; BenchmarkJIT_vs_Interp carries the engine comparison.
func BenchmarkEBPFInterpreter(b *testing.B) {
	kernel := ebpf.NewKernel()
	kernel.SetJIT(false)
	m, _ := kernel.CreateMap(ebpf.MapSpec{Name: "m", Type: ebpf.MapTypeArray, KeySize: 4, ValueSize: 8, MaxEntries: 8})
	bl := ebpf.NewBuilder("bench", ebpf.ProgTypeXDP)
	bl.Ins(
		ebpf.StoreImm(ebpf.R10, -4, 0, ebpf.W),
		ebpf.LoadMapFD(ebpf.R1, m.FD()),
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -4),
		ebpf.Call(ebpf.HelperMapLookupElem),
	)
	bl.Jmp(ebpf.JeqImm(ebpf.R0, 0, 0), "out")
	bl.Ins(ebpf.Mov64Imm(ebpf.R2, 1), ebpf.AtomicAdd(ebpf.R0, 0, ebpf.R2, ebpf.DW))
	bl.Label("out")
	bl.Ins(ebpf.Mov64Imm(ebpf.R0, ebpf.XDPPass), ebpf.Exit())
	prog, err := kernel.Load(bl.MustProgram())
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kernel.Run(prog, data, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJIT_vs_Interp compares the execution engines on each program
// shape: the shape-specialized SPROXY and EPROXY fast paths (through the
// real dataplane entry points), and the general closure-chain backend on
// the map-lookup XDP program. The interp variants run the same programs
// with the JIT switched off — the per-shape delta is the compilation win.
func BenchmarkJIT_vs_Interp(b *testing.B) {
	engines := []struct {
		name string
		jit  bool
	}{{"jit", true}, {"interp", false}}

	b.Run("sproxy", func(b *testing.B) {
		for _, eng := range engines {
			b.Run(eng.name, func(b *testing.B) {
				kernel := ebpf.NewKernel()
				kernel.SetJIT(eng.jit)
				sp, err := core.NewSProxy(kernel, "jb")
				if err != nil {
					b.Fatal(err)
				}
				sock := core.NewSocket(7, 1024)
				if err := sp.RegisterSocket(sock); err != nil {
					b.Fatal(err)
				}
				if err := sp.Allow(1, 7); err != nil {
					b.Fatal(err)
				}
				d := shm.Descriptor{NextFn: 7, Buf: 1, Len: 100, Caller: 1}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := sp.Send(1, d); err != nil {
						b.Fatal(err)
					}
					<-sock.Recv()
				}
				b.StopTimer()
				sock.Close()
			})
		}
	})

	b.Run("eproxy", func(b *testing.B) {
		for _, eng := range engines {
			b.Run(eng.name, func(b *testing.B) {
				kernel := ebpf.NewKernel()
				kernel.SetJIT(eng.jit)
				ep, err := core.NewEProxy(kernel, "jb")
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ep.OnIngress(128)
				}
			})
		}
	})

	b.Run("closure-chain", func(b *testing.B) {
		for _, eng := range engines {
			b.Run(eng.name, func(b *testing.B) {
				kernel := ebpf.NewKernel()
				kernel.SetJIT(eng.jit)
				m, _ := kernel.CreateMap(ebpf.MapSpec{Name: "m", Type: ebpf.MapTypeArray, KeySize: 4, ValueSize: 8, MaxEntries: 8})
				bl := ebpf.NewBuilder("jb", ebpf.ProgTypeXDP)
				bl.Ins(
					ebpf.StoreImm(ebpf.R10, -4, 0, ebpf.W),
					ebpf.LoadMapFD(ebpf.R1, m.FD()),
					ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
					ebpf.Add64Imm(ebpf.R2, -4),
					ebpf.Call(ebpf.HelperMapLookupElem),
				)
				bl.Jmp(ebpf.JeqImm(ebpf.R0, 0, 0), "out")
				bl.Ins(ebpf.Mov64Imm(ebpf.R2, 1), ebpf.AtomicAdd(ebpf.R0, 0, ebpf.R2, ebpf.DW))
				bl.Label("out")
				bl.Ins(ebpf.Mov64Imm(ebpf.R0, ebpf.XDPPass), ebpf.Exit())
				prog, err := kernel.Load(bl.MustProgram())
				if err != nil {
					b.Fatal(err)
				}
				if eng.jit && prog.Engine() == ebpf.EngineInterp {
					b.Fatalf("program did not compile: %s", prog.FallbackReason())
				}
				data := make([]byte, 64)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := kernel.Run(prog, data, 0, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
}

// BenchmarkProtoCodecs measures the L7 codecs the gateway executes.
func BenchmarkProtoCodecs(b *testing.B) {
	msg := &proto.Message{Method: "POST", Path: "/cart", Headers: map[string]string{"Host": "x"}, Body: make([]byte, 1024)}
	b.Run("http-marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			proto.MarshalHTTPRequest(msg)
		}
	})
	wire := proto.MarshalHTTPRequest(msg)
	b.Run("http-unmarshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := proto.UnmarshalHTTPRequest(wire); err != nil {
				b.Fatal(err)
			}
		}
	})
	mq := proto.MarshalMQTTPublish("sensors/motion", make([]byte, 128))
	b.Run("mqtt-unmarshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := proto.UnmarshalMQTTPublish(mq); err != nil {
				b.Fatal(err)
			}
		}
	})
	co := proto.MarshalCoAP(proto.CoAPPost, 1, "parking/snapshot", make([]byte, 3072))
	b.Run("coap-unmarshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, _, err := proto.UnmarshalCoAP(co); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLoadBalancing_Ablation compares residual-capacity instance
// selection against the first-instance (no balancing) choice under a
// multi-instance chain.
func BenchmarkLoadBalancing_Ablation(b *testing.B) {
	cluster := spright.NewCluster(1)
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: fmt.Sprintf("lb-%d", b.N),
		Functions: []spright.FunctionSpec{{
			Name:      "f",
			Instances: 4,
			Handler:   func(ctx *spright.Ctx) error { return nil },
		}},
		Routes: []spright.RouteSpec{{From: "", To: []string{"f"}}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(dep.Close)
	ctx := context.Background()
	payload := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Gateway.Invoke(ctx, "", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTraceChain deploys the 2-function bench chain with an explicit
// head-sampling period for the tracing-overhead benchmarks.
func benchTraceChain(b *testing.B, every int) *spright.Deployment {
	b.Helper()
	cluster := spright.NewCluster(1)
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: fmt.Sprintf("bench-tr-%d-%d", every, benchChainSeq.Add(1)),
		Functions: []spright.FunctionSpec{
			{Name: "f0", Handler: func(ctx *spright.Ctx) error { return nil }},
			{Name: "f1", Handler: func(ctx *spright.Ctx) error { return nil }},
		},
		Routes: []spright.RouteSpec{
			{From: "", To: []string{"f0"}},
			{From: "f0", To: []string{"f1"}},
		},
		TraceSampleEvery: every,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(dep.Close)
	return dep
}

// BenchmarkTraceUnsampled is the tracing hot-path contract: with the
// always-on tracer installed but the request not head-sampled (and under
// the tail-latency threshold), the end-to-end invoke must not allocate —
// the per-stage cost is one atomic flags load.
func BenchmarkTraceUnsampled(b *testing.B) {
	dep := benchTraceChain(b, 1<<30)
	payload := make([]byte, 100)
	resp := make([]byte, 100)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Gateway.InvokeInto(ctx, "", payload, resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceSampled measures the fully traced request: every stage
// records a span (alloc, enqueue/redirect, queue wait, handler, drain)
// into the bounded ring.
func BenchmarkTraceSampled(b *testing.B) {
	dep := benchTraceChain(b, 1)
	payload := make([]byte, 100)
	resp := make([]byte, 100)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Gateway.InvokeInto(ctx, "", payload, resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlightEmit is the flight-recorder hot-path contract: a disabled
// recorder (and a nil one, as core sees before any sink is wired) must cost
// one atomic load and zero allocations, and even the enabled journal path
// must stay allocation-free — events overwrite preallocated ring slots.
func BenchmarkFlightEmit(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		r := obs.NewFlightRecorder(0)
		r.RegisterChain("bench")
		r.SetEnabled(false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Emit("bench", obs.EventShed, "fn", "overload", int64(i))
		}
		b.StopTimer()
		if testing.AllocsPerRun(100, func() {
			r.Emit("bench", obs.EventShed, "fn", "overload", 1)
		}) != 0 {
			b.Fatal("disabled Emit allocates")
		}
	})
	b.Run("nil", func(b *testing.B) {
		var r *obs.FlightRecorder
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Emit("bench", obs.EventShed, "fn", "overload", int64(i))
		}
	})
	b.Run("enabled", func(b *testing.B) {
		r := obs.NewFlightRecorder(0)
		r.RegisterChain("bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Emit("bench", obs.EventShed, "fn", "overload", int64(i))
		}
	})
}

// BenchmarkBoutiqueCh6 drives the heaviest Table 3 sequence (24 hops) on
// the real dataplane.
func BenchmarkBoutiqueCh6(b *testing.B) {
	cluster := spright.NewCluster(1)
	spec := boutique.Spec(boutique.SpecOptions{Name: fmt.Sprintf("bq-%d", b.N)})
	dep, err := cluster.Controller.DeployChain(spec)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(dep.Close)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Gateway.Invoke(ctx, "", boutique.EncodeRequest(5, []byte("u"))); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Autoscaling control-plane benchmarks (cold start, prewarm, shed path)
// ---------------------------------------------------------------------------

// benchParkChain deploys a single-function chain with request parking
// enabled, for the scale-from-zero benchmarks.
func benchParkChain(b *testing.B) *spright.Deployment {
	b.Helper()
	cluster := spright.NewCluster(1)
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: fmt.Sprintf("bench-park-%d", benchChainSeq.Add(1)),
		Functions: []spright.FunctionSpec{{
			Name:    "f0",
			Handler: func(ctx *spright.Ctx) error { return nil },
		}},
		Routes: []spright.RouteSpec{{From: "", To: []string{"f0"}}},
		Admission: spright.AdmissionPolicy{
			ParkCapacity: 64,
			ParkTimeout:  10 * time.Second,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return dep
}

// BenchmarkColdStartResume measures the full scale-from-zero path without
// prewarming: the request parks at the gateway, a cold ScaleUp wires a
// fresh instance (socket, sockmap entry, filter edges, worker pool), and
// the park wake dispatches the request. Instance IDs are never reused, so
// the chain is redeployed every ~200 iterations outside the timer.
func BenchmarkColdStartResume(b *testing.B) {
	var dep *spright.Deployment
	budget := 0
	payload := []byte("x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if budget == 0 {
			b.StopTimer()
			if dep != nil {
				dep.Close()
			}
			dep = benchParkChain(b)
			budget = 200
			b.StartTimer()
		}
		budget--
		if _, err := dep.Chain.ScaleToZero("f0"); err != nil {
			b.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			_, err := dep.Gateway.Invoke(context.Background(), "", payload)
			done <- err
		}()
		for dep.Gateway.Parked() == 0 {
			runtime.Gosched()
		}
		if _, err := dep.Chain.ScaleUp("f0"); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if dep != nil {
		dep.Close()
	}
}

// BenchmarkColdStartPrewarmed is the mitigated variant: the instance is
// prewarmed (wired, authorized, pooled shm attach) outside the timer, so
// the timed region is park → Activate (a router insert) → resume. The
// delta against BenchmarkColdStartResume is the cold-start latency the
// prewarm pool hides from the first request.
func BenchmarkColdStartPrewarmed(b *testing.B) {
	var dep *spright.Deployment
	budget := 0
	payload := []byte("x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if budget == 0 {
			if dep != nil {
				dep.Close()
			}
			dep = benchParkChain(b)
			budget = 120
		}
		budget--
		if _, err := dep.Chain.ScaleToZero("f0"); err != nil {
			b.Fatal(err)
		}
		pw, err := dep.Chain.Prewarm("f0")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		done := make(chan error, 1)
		go func() {
			_, err := dep.Gateway.Invoke(context.Background(), "", payload)
			done <- err
		}()
		for dep.Gateway.Parked() == 0 {
			runtime.Gosched()
		}
		if _, err := dep.Chain.Activate(pw); err != nil {
			b.Fatal(err)
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if dep != nil {
		dep.Close()
	}
}

// BenchmarkOverloadShed measures the admission-control fast path: with
// MaxPending saturated by a blocked request, every invocation is refused
// up front with a typed OverloadError — before touching the shared-memory
// pool. This is the cost of saying no under overload.
func BenchmarkOverloadShed(b *testing.B) {
	cluster := spright.NewCluster(1)
	block := make(chan struct{})
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: fmt.Sprintf("bench-shed-%d", benchChainSeq.Add(1)),
		Functions: []spright.FunctionSpec{{
			Name: "f0",
			Handler: func(ctx *spright.Ctx) error {
				<-block
				return nil
			},
		}},
		Routes:    []spright.RouteSpec{{From: "", To: []string{"f0"}}},
		Admission: spright.AdmissionPolicy{MaxPending: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(dep.Close)

	occupied := make(chan error, 1)
	go func() {
		_, err := dep.Gateway.Invoke(context.Background(), "", []byte("hold"))
		occupied <- err
	}()
	for dep.Gateway.Pending() == 0 {
		runtime.Gosched()
	}

	ctx := context.Background()
	payload := []byte("x")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Gateway.Invoke(ctx, "", payload); !errors.Is(err, spright.ErrOverload) {
			b.Fatalf("want ErrOverload, got %v", err)
		}
	}
	b.StopTimer()
	close(block)
	if err := <-occupied; err != nil {
		b.Fatal(err)
	}
}
