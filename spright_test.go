package spright_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	spright "github.com/spright-go/spright"
)

// TestPublicAPIQuickstart exercises exactly the flow the package doc
// promises.
func TestPublicAPIQuickstart(t *testing.T) {
	cluster := spright.NewCluster(1)
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: "hello",
		Functions: []spright.FunctionSpec{
			{Name: "greet", Handler: func(ctx *spright.Ctx) error {
				return ctx.SetPayload(append([]byte("hello, "), ctx.Payload()...))
			}},
		},
		Routes: []spright.RouteSpec{{From: "", To: []string{"greet"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	out, err := dep.Gateway.Invoke(context.Background(), "", []byte("world"))
	if err != nil || string(out) != "hello, world" {
		t.Fatalf("got %q, %v", out, err)
	}
}

func TestPublicAPIHTTPServing(t *testing.T) {
	cluster := spright.NewCluster(1)
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: "rev",
		Mode: spright.ModeEvent,
		Functions: []spright.FunctionSpec{
			{Name: "reverse", Handler: func(ctx *spright.Ctx) error {
				b := ctx.Payload()
				for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
					b[i], b[j] = b[j], b[i]
				}
				return nil
			}},
		},
		Routes: []spright.RouteSpec{{From: "", To: []string{"reverse"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	srv := httptest.NewServer(dep.Gateway)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/x", "text/plain", strings.NewReader("abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "fedcba" {
		t.Fatalf("got %q", body)
	}
}

func TestPublicAPIPollingMode(t *testing.T) {
	cluster := spright.NewCluster(1)
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: "dmode",
		Mode: spright.ModePolling,
		Functions: []spright.FunctionSpec{
			{Name: "id", Handler: func(ctx *spright.Ctx) error { return nil }},
		},
		Routes: []spright.RouteSpec{{From: "", To: []string{"id"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if _, err := dep.Gateway.Invoke(context.Background(), "", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIErrorSentinels(t *testing.T) {
	cluster := spright.NewCluster(1)
	block := make(chan struct{})
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name:        "tiny",
		PoolBuffers: 1,
		Functions: []spright.FunctionSpec{
			{Name: "stall", Handler: func(ctx *spright.Ctx) error { <-block; return nil }},
		},
		Routes: []spright.RouteSpec{{From: "", To: []string{"stall"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	defer close(block) // LIFO: unblock the handler before Close waits on it

	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		dep.Gateway.Invoke(ctx, "", []byte("a"))
	}()
	// wait until the first request holds the single pool buffer
	deadline := time.Now().Add(5 * time.Second)
	for dep.Chain.Pool().Stats().InUse == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired the buffer")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = dep.Gateway.Invoke(ctx, "", []byte("b"))
	if !errors.Is(err, spright.ErrBackpressure) {
		t.Fatalf("expected ErrBackpressure, got %v", err)
	}
}

func TestPublicAPIAutoscaler(t *testing.T) {
	cluster := spright.NewCluster(1)
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: "as",
		Functions: []spright.FunctionSpec{
			{Name: "f", Handler: func(ctx *spright.Ctx) error { return nil }},
		},
		Routes: []spright.RouteSpec{{From: "", To: []string{"f"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	as := spright.NewAutoscaler(dep, 8)
	if d := as.Evaluate(); len(d) != 0 {
		t.Fatalf("idle chain must not scale: %+v", d)
	}
}
