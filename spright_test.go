package spright_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	spright "github.com/spright-go/spright"
)

// TestPublicAPIQuickstart exercises exactly the flow the package doc
// promises.
func TestPublicAPIQuickstart(t *testing.T) {
	cluster := spright.NewCluster(1)
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: "hello",
		Functions: []spright.FunctionSpec{
			{Name: "greet", Handler: func(ctx *spright.Ctx) error {
				return ctx.SetPayload(append([]byte("hello, "), ctx.Payload()...))
			}},
		},
		Routes: []spright.RouteSpec{{From: "", To: []string{"greet"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	out, err := dep.Gateway.Invoke(context.Background(), "", []byte("world"))
	if err != nil || string(out) != "hello, world" {
		t.Fatalf("got %q, %v", out, err)
	}
}

func TestPublicAPIHTTPServing(t *testing.T) {
	cluster := spright.NewCluster(1)
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: "rev",
		Mode: spright.ModeEvent,
		Functions: []spright.FunctionSpec{
			{Name: "reverse", Handler: func(ctx *spright.Ctx) error {
				b := ctx.Payload()
				for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
					b[i], b[j] = b[j], b[i]
				}
				return nil
			}},
		},
		Routes: []spright.RouteSpec{{From: "", To: []string{"reverse"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	srv := httptest.NewServer(dep.Gateway)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/x", "text/plain", strings.NewReader("abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "fedcba" {
		t.Fatalf("got %q", body)
	}
}

func TestPublicAPIPollingMode(t *testing.T) {
	cluster := spright.NewCluster(1)
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: "dmode",
		Mode: spright.ModePolling,
		Functions: []spright.FunctionSpec{
			{Name: "id", Handler: func(ctx *spright.Ctx) error { return nil }},
		},
		Routes: []spright.RouteSpec{{From: "", To: []string{"id"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	if _, err := dep.Gateway.Invoke(context.Background(), "", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIErrorSentinels(t *testing.T) {
	cluster := spright.NewCluster(1)
	block := make(chan struct{})
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name:        "tiny",
		PoolBuffers: 1,
		Functions: []spright.FunctionSpec{
			{Name: "stall", Handler: func(ctx *spright.Ctx) error { <-block; return nil }},
		},
		Routes: []spright.RouteSpec{{From: "", To: []string{"stall"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	defer close(block) // LIFO: unblock the handler before Close waits on it

	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		dep.Gateway.Invoke(ctx, "", []byte("a"))
	}()
	// wait until the first request holds the single pool buffer
	deadline := time.Now().Add(5 * time.Second)
	for dep.Chain.Pool().Stats().InUse == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired the buffer")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err = dep.Gateway.Invoke(ctx, "", []byte("b"))
	if !errors.Is(err, spright.ErrBackpressure) {
		t.Fatalf("expected ErrBackpressure, got %v", err)
	}
}

func TestPublicAPIAutoscaler(t *testing.T) {
	cluster := spright.NewCluster(1)
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: "as",
		Functions: []spright.FunctionSpec{
			{Name: "f", Handler: func(ctx *spright.Ctx) error { return nil }},
		},
		Routes: []spright.RouteSpec{{From: "", To: []string{"f"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	as := spright.NewAutoscaler(dep, 8)
	if d := as.Evaluate(); len(d) != 0 {
		t.Fatalf("idle chain must not scale: %+v", d)
	}
}

// TestPublicAPIFaultTolerance exercises the failure-recovery knobs
// exactly as the README documents them: seeded injection, panic
// isolation, deadline, retry, and the failure counters in GatewayStats.
func TestPublicAPIFaultTolerance(t *testing.T) {
	cluster := spright.NewCluster(1)
	dep, err := cluster.Controller.DeployChain(spright.ChainSpec{
		Name: "chaos",
		Functions: []spright.FunctionSpec{
			{Name: "greet", Handler: func(ctx *spright.Ctx) error { return nil }},
		},
		Routes:   []spright.RouteSpec{{From: "", To: []string{"greet"}}},
		Deadline: 2 * time.Second,
		Retry:    spright.RetryPolicy{MaxAttempts: 3},
		Health:   spright.HealthPolicy{ConsecutiveFailures: 5},
		Injector: spright.NewFaultInjector(42).
			Add(spright.FaultRule{Op: spright.FaultPanic, Function: "greet", MaxCount: 1}).
			Add(spright.FaultRule{Op: spright.FaultError, Function: "greet", MaxCount: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	if _, err := dep.Gateway.Invoke(context.Background(), "", []byte("x")); !errors.Is(err, spright.ErrHandlerPanic) {
		t.Fatalf("want ErrHandlerPanic, got %v", err)
	}
	if _, err := dep.Gateway.Invoke(context.Background(), "", []byte("x")); !errors.Is(err, spright.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	// fault budget exhausted: clean service
	if _, err := dep.Gateway.Invoke(context.Background(), "", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s := dep.Gateway.Stats()
	if s.Crashes != 1 || s.FaultsInjected != 2 || s.Failed != 2 {
		t.Fatalf("stats crashes=%d injected=%d failed=%d, want 1/2/2",
			s.Crashes, s.FaultsInjected, s.Failed)
	}
	if err := dep.Chain.Pool().LeakCheck(); err != nil {
		t.Fatal(err)
	}
}
