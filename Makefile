GO ?= go

.PHONY: build test race vet verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# verify is the gate for every change: static analysis plus the full test
# suite (chaos tests included) under the race detector.
verify: vet race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

clean:
	$(GO) clean ./...
