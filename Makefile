GO ?= go

BENCH_OUT ?= BENCH_1.json
# the hot-path benchmarks tracked in BENCH_*.json snapshots
BENCH_PAT ?= BenchmarkSProxySend$$|BenchmarkShmPool$$|BenchmarkEBPFInterpreter$$|BenchmarkE2E_

.PHONY: build test race vet fmt-check verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# verify is the gate for every change: formatting, static analysis, and the
# full test suite (chaos tests included) under the race detector.
verify: fmt-check vet race

# bench runs the tracked hot-path benchmarks with allocation reporting and
# writes a machine-readable snapshot (ns/op, B/op, allocs/op) to
# $(BENCH_OUT) via cmd/benchjson. Raw output stays in bench.out.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchmem . | tee bench.out
	$(GO) run ./cmd/benchjson < bench.out > $(BENCH_OUT)
	@rm -f bench.out
	@echo "wrote $(BENCH_OUT)"

clean:
	$(GO) clean ./...
	rm -f bench.out
