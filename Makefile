GO ?= go

BENCH_OUT ?= BENCH_5.json
# the hot-path serial benchmarks tracked in BENCH_*.json snapshots
BENCH_PAT ?= BenchmarkSProxySend$$|BenchmarkShmPool$$|BenchmarkEBPFInterpreter$$|BenchmarkE2E_SSpright|BenchmarkE2E_DSpright|BenchmarkE2E_GRPCBaseline|BenchmarkTraceUnsampled$$|BenchmarkTraceSampled$$|BenchmarkColdStartResume$$|BenchmarkColdStartPrewarmed$$|BenchmarkOverloadShed$$
# the multicore RPS harness, swept across BENCH_CPUS
BENCH_PAR_PAT ?= BenchmarkE2E_Parallel_
# benchmark knobs: time per benchmark and the GOMAXPROCS sweep for the
# parallel suite (testing's -benchtime / -cpu flags)
BENCH_TIME ?= 1s
BENCH_CPUS ?= 1,2,4,8
# regression gate inputs for bench-compare
OLD ?= BENCH_4.json
NEW ?= BENCH_5.json

.PHONY: build test race race-obs race-scale vet fmt-check verify bench bench-compare clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# race-obs races the observability layer and its exporter conformance test
# specifically (concurrent scrapes against live counters) — an explicit
# gate even when the full race suite is skipped locally.
race-obs:
	$(GO) test -race -count=1 ./internal/obs/...

# race-scale races the autoscaling control plane: park/resume, overload
# shedding, scale-down drain chaos (ScaleDown racing RestartInstance), the
# autoscaler's evaluate loop, and the burst acceptance scenario.
race-scale:
	$(GO) test -race -count=1 -run 'TestPark|TestPrewarm|TestMaxPending|TestServeHTTPSheds|TestScaleToZero|TestZeroReplica|TestScaleDown' ./internal/core/
	$(GO) test -race -count=1 -run 'TestEvaluate|TestDecisionRing|TestUpCooldown|TestHysteresis|TestMaxStep|TestSelfHeal|TestEnableAutoscaling|TestBurst|TestAutoscaler' ./internal/orchestrator/

# verify is the gate for every change: formatting, static analysis, and the
# full test suite (chaos tests included) under the race detector, with the
# observability conformance test and the autoscaling control plane raced
# explicitly.
verify: fmt-check vet race race-obs race-scale

# bench runs the tracked serial benchmarks, then the parallel RPS harness
# across the BENCH_CPUS sweep, and writes one machine-readable snapshot
# (ns/op, B/op, allocs/op, derived RPS, p50/p99) to $(BENCH_OUT) via
# cmd/benchjson. Raw output stays in bench.out until the JSON is written.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchmem -benchtime $(BENCH_TIME) . | tee bench.out
	$(GO) test -run '^$$' -bench '$(BENCH_PAR_PAT)' -benchmem -benchtime $(BENCH_TIME) -cpu $(BENCH_CPUS) . | tee -a bench.out
	$(GO) run ./cmd/benchjson < bench.out > $(BENCH_OUT)
	@rm -f bench.out
	@echo "wrote $(BENCH_OUT)"

# bench-compare diffs two snapshots and fails on >10% ns/op regression in
# any tracked serial benchmark (parallel results are informational):
#   make bench-compare OLD=BENCH_1.json NEW=BENCH_2.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(OLD) $(NEW)

clean:
	$(GO) clean ./...
	rm -f bench.out
