GO ?= go

BENCH_OUT ?= BENCH_9.json
# the hot-path serial benchmarks tracked in BENCH_*.json snapshots
BENCH_PAT ?= BenchmarkSProxySend$$|BenchmarkShmPool$$|BenchmarkEBPFInterpreter$$|BenchmarkJIT_vs_Interp/|BenchmarkE2E_SSpright|BenchmarkE2E_DSpright|BenchmarkE2E_CrossNode|BenchmarkE2E_GRPCBaseline|BenchmarkE2E_LargePayload$$|BenchmarkTraceUnsampled$$|BenchmarkTraceSampled$$|BenchmarkColdStartResume$$|BenchmarkColdStartPrewarmed$$|BenchmarkOverloadShed$$|BenchmarkObjStorePut10MB$$|BenchmarkObjStoreOpenRead10MB$$|BenchmarkObjStoreSpillReload1MB$$|BenchmarkFlightEmit/
# the multicore RPS harness, swept across BENCH_CPUS
BENCH_PAR_PAT ?= BenchmarkE2E_Parallel_
# benchmark knobs: time per benchmark, samples per serial benchmark
# (benchjson keeps the fastest — the noise floor on a shared host), and
# the GOMAXPROCS sweep for the parallel suite
BENCH_TIME ?= 1s
BENCH_COUNT ?= 3
BENCH_CPUS ?= 1,2,4,8
# regression gate inputs for bench-compare; BENCH_GAIN lists benchmarks
# that must have IMPROVED between the snapshots (empty: regressions only —
# the object-store PR must leave the pre-existing serial benches unchanged).
# BENCH_7R.json re-records the BENCH_7 code on the current host: its speed
# still oscillates in multi-minute windows (a first single-pass record
# flagged BenchmarkE2E_GRPCBaseline, untouched by the PR, among the
# "regressions"), so — as for BENCH_6R — both snapshots' serial suites
# were recorded in interleaved rounds (old tree / new tree alternating,
# best-of-3 via benchjson's min-dedupe) to keep the diff measuring the PR.
# BENCH_7.json stays PR 8's record. The observability PR adds only
# passive instrumentation (flight recorder hooks, SLO window snapshots on
# the metrics agent), so the pre-existing serial suite must be unchanged —
# but this host still drifts in multi-minute windows (a single-pass record
# flagged BenchmarkE2E_GRPCBaseline and BenchmarkE2E_CrossNode, untouched
# by the PR), so as for BENCH_6R/BENCH_7R both snapshots' serial suites
# were recorded in interleaved rounds (old tree / new tree alternating,
# best-of-3 via benchjson's min-dedupe): BENCH_8R.json re-records the
# BENCH_8 code, BENCH_8.json stays PR 9's record. Both trees' benchChain
# pins ScrapeInterval -1 for the recording: the serial E2E benches measure
# the dataplane, and this PR extends the metrics agent to polling-mode
# chains (SLO windowing), whose 500ms goroutine otherwise skews the
# spin-polling D-SPRIGHT loop at GOMAXPROCS=1.
OLD ?= BENCH_8R.json
NEW ?= BENCH_9.json
BENCH_GAIN ?=

.PHONY: build test race race-obs race-scale race-ebpf race-net race-store race-flight vet fmt-check verify bench bench-compare clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# -p 1 runs one package's race binary at a time: the control-plane scenarios
# (burst capacity, autoscaler evaluate) assert replica growth under a timed
# load window and get starved when other packages' race tests share the host.
race:
	$(GO) test -race -p 1 ./...

# race-obs races the observability layer and its exporter conformance test
# specifically (concurrent scrapes against live counters) — an explicit
# gate even when the full race suite is skipped locally.
race-obs:
	$(GO) test -race -count=1 ./internal/obs/...

# race-scale races the autoscaling control plane: park/resume, overload
# shedding, scale-down drain chaos (ScaleDown racing RestartInstance), the
# autoscaler's evaluate loop, and the burst acceptance scenario.
race-scale:
	$(GO) test -race -count=1 -run 'TestPark|TestPrewarm|TestMaxPending|TestServeHTTPSheds|TestScaleToZero|TestZeroReplica|TestScaleDown' ./internal/core/
	$(GO) test -race -count=1 -run 'TestEvaluate|TestDecisionRing|TestUpCooldown|TestHysteresis|TestMaxStep|TestSelfHeal|TestEnableAutoscaling|TestBurst|TestAutoscaler' ./internal/orchestrator/

# race-ebpf races the eBPF execution engines specifically: the JIT/interp
# differential suites, concurrent Load/Run/SetJIT on one kernel, and the
# dataplane engine-parity scenario — the gate for the compiled dispatch
# path.
race-ebpf:
	$(GO) test -race -count=1 ./internal/ebpf/
	$(GO) test -race -count=1 -run 'TestEngineParity|TestProxyProgramsCompile' ./internal/core/

# race-net races the multi-node path specifically: the wire codec, the
# batched mesh transport (reconnect/backlog/chaos paths), and the placed
# cross-node deployment scenarios (E2E, chaos, exporter conformance).
race-net:
	$(GO) test -race -count=1 ./internal/wire/ ./internal/transport/
	$(GO) test -race -count=1 -run 'TestPlacedChain|TestNetMetrics' ./internal/orchestrator/

# race-store races the shared-memory tier specifically: the pool's
# Get/Ref/Put/Close accounting, the object store (concurrent readers vs
# spill/release churn, the buffer-hook release path), and the large-payload
# gateway scenarios (fan-out shared objects, 413 shedding, lifetime on
# handler error).
race-store:
	$(GO) test -race -count=1 ./internal/shm/...
	$(GO) test -race -count=1 -run 'TestE2ELarge|TestFanOutSharedObject|TestServeHTTPPayloadTooLarge|TestPayloadOverObjectCap|TestObjectL|TestCtxObjectAPIs' ./internal/core/

# race-flight races the black-box flight recorder and the SLO watchdog
# specifically: concurrent emitters against ring wrap + cursor pagination,
# the /events and /traces handler conformance suites, the sliding-window
# SLO monitor, and the end-to-end watchdog bundle capture.
race-flight:
	$(GO) test -race -count=1 -run 'TestFlight|TestEventsHandler|TestTracesHandlerInput|TestSLO' ./internal/obs/
	$(GO) test -race -count=1 -run 'TestSLOWatchdog|TestFlight' ./internal/orchestrator/

# verify is the gate for every change: formatting, static analysis, and the
# full test suite (chaos tests included) under the race detector, with the
# observability conformance test, the autoscaling control plane, the
# multi-node transport, the shared-memory object store, and the flight
# recorder / SLO watchdog raced explicitly.
verify: fmt-check vet race race-obs race-scale race-ebpf race-net race-store race-flight

# bench runs the tracked serial benchmarks, then the parallel RPS harness
# across the BENCH_CPUS sweep, and writes one machine-readable snapshot
# (ns/op, B/op, allocs/op, derived RPS, p50/p99) to $(BENCH_OUT) via
# cmd/benchjson. Raw output stays in bench.out until the JSON is written.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PAT)' -benchmem -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) . | tee bench.out
	$(GO) test -run '^$$' -bench '$(BENCH_PAR_PAT)' -benchmem -benchtime $(BENCH_TIME) -cpu $(BENCH_CPUS) . | tee -a bench.out
	$(GO) run ./cmd/benchjson < bench.out > $(BENCH_OUT)
	@rm -f bench.out
	@echo "wrote $(BENCH_OUT)"

# bench-compare diffs two snapshots: it fails on >10% ns/op regression in
# any tracked serial benchmark, and on any BENCH_GAIN benchmark that did
# not improve by its required fraction:
#   make bench-compare OLD=BENCH_5.json NEW=BENCH_6.json
bench-compare:
	$(GO) run ./cmd/benchjson -compare -mingain '$(BENCH_GAIN)' $(OLD) $(NEW)

clean:
	$(GO) clean ./...
	rm -f bench.out
