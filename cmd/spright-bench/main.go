// Command spright-bench regenerates the paper's tables and figures from
// the platform models. Run with no arguments for the full evaluation, or
// name experiments: spright-bench table1 fig5 fig11
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/spright-go/spright/internal/experiment"
)

func main() {
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, r := range experiment.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	runners := experiment.All()
	if args := flag.Args(); len(args) > 0 {
		runners = runners[:0]
		for _, id := range args {
			r, ok := experiment.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		fmt.Printf("==================================================================\n")
		fmt.Printf("%s — %s\n", r.ID, r.Title)
		fmt.Printf("==================================================================\n")
		start := time.Now()
		rep := r.Run()
		fmt.Print(rep.Text)
		fmt.Printf("\n[%s completed in %.1fs]\n\n", r.ID, time.Since(start).Seconds())
	}
}
