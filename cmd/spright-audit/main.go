// Command spright-audit prints the per-request overhead audits of Tables 1
// and 2 for a configurable chain length and payload size.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/spright-go/spright/internal/cost"
	"github.com/spright-go/spright/internal/platform"
)

func main() {
	pipeline := flag.String("pipeline", "both", "pipeline to audit: knative, spright, or both")
	nFns := flag.Int("functions", 2, "number of functions in the chain")
	size := flag.Int("size", 100, "payload size in bytes")
	flag.Parse()

	print := func(r platform.AuditResult) {
		fmt.Printf("\n=== %s: 1 broker/front-end + %d functions, %dB payload ===\n",
			r.Pipeline, *nFns, *size)
		fmt.Printf("%-28s", "step")
		for _, s := range r.Steps {
			fmt.Printf("%5s", s.Label)
		}
		fmt.Printf("  %6s %6s %6s\n", "ext", "within", "total")
		rows := []struct {
			name string
			get  func(cost.Audit) int
		}{
			{"copies", func(a cost.Audit) int { return a.Copies }},
			{"context switches", func(a cost.Audit) int { return a.CtxSwitches }},
			{"interrupts", func(a cost.Audit) int { return a.Interrupts }},
			{"protocol tasks", func(a cost.Audit) int { return a.ProtoTasks }},
			{"serializations", func(a cost.Audit) int { return a.Serialize }},
			{"deserializations", func(a cost.Audit) int { return a.Deserialize }},
		}
		for _, row := range rows {
			fmt.Printf("%-28s", row.name)
			for _, s := range r.Steps {
				fmt.Printf("%5d", row.get(s.Audit))
			}
			fmt.Printf("  %6d %6d %6d\n", row.get(r.External), row.get(r.Within), row.get(r.Total))
		}
		m := cost.DefaultModel()
		fmt.Printf("%-28s-> %.0f cycles (%.1f us at 2.2 GHz)\n",
			"modeled per-request cost", m.Cycles(r.Total), m.Seconds(m.Cycles(r.Total))*1e6)
	}

	switch *pipeline {
	case "knative":
		print(platform.KnativeAudit(*nFns, *size))
	case "spright":
		print(platform.SprightAudit(*nFns, *size))
	case "both":
		print(platform.KnativeAudit(*nFns, *size))
		print(platform.SprightAudit(*nFns, *size))
	default:
		fmt.Fprintf(os.Stderr, "unknown pipeline %q\n", *pipeline)
		os.Exit(2)
	}
}
