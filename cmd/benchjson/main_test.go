package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeSnapshot(t *testing.T, dir, name string, results []Result) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(Report{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareMissingBenchesAreInformational(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", []Result{
		{Name: "BenchmarkStable", Cpus: 1, NsPerOp: 100},
		{Name: "BenchmarkRemoved", Cpus: 1, NsPerOp: 50},
	})
	newPath := writeSnapshot(t, dir, "new.json", []Result{
		{Name: "BenchmarkStable", Cpus: 1, NsPerOp: 105},
		{Name: "BenchmarkAdded", Cpus: 1, NsPerOp: 70},
	})
	// A bench present only in one snapshot must neither gate nor crash.
	if code := runCompare(oldPath, newPath, 0.10); code != 0 {
		t.Fatalf("exit %d, want 0: added/removed benches must be informational", code)
	}
}

func TestCompareZeroBaselineNotComparable(t *testing.T) {
	dir := t.TempDir()
	// Old snapshot has a zero ns/op record (e.g. parse artifact): the diff
	// must not divide by it — previously the delta became ±Inf.
	oldPath := writeSnapshot(t, dir, "old.json", []Result{
		{Name: "BenchmarkZeroBase", Cpus: 1, NsPerOp: 0},
	})
	newPath := writeSnapshot(t, dir, "new.json", []Result{
		{Name: "BenchmarkZeroBase", Cpus: 1, NsPerOp: 9999},
	})
	if code := runCompare(oldPath, newPath, 0.10); code != 0 {
		t.Fatalf("exit %d, want 0: zero baseline must be informational", code)
	}
}

func TestCompareRealRegressionStillGates(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", []Result{
		{Name: "BenchmarkHot", Cpus: 1, NsPerOp: 100},
	})
	newPath := writeSnapshot(t, dir, "new.json", []Result{
		{Name: "BenchmarkHot", Cpus: 1, NsPerOp: 150},
	})
	if code := runCompare(oldPath, newPath, 0.10); code != 1 {
		t.Fatalf("exit %d, want 1: 50%% serial regression must gate", code)
	}
}

func TestCompareParallelNeverGates(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", []Result{
		{Name: "BenchmarkHotParallel", Cpus: 8, NsPerOp: 100},
	})
	newPath := writeSnapshot(t, dir, "new.json", []Result{
		{Name: "BenchmarkHotParallel", Cpus: 8, NsPerOp: 500},
	})
	if code := runCompare(oldPath, newPath, 0.10); code != 0 {
		t.Fatalf("exit %d, want 0: parallel benches are informational", code)
	}
}

func TestCompareEmptySnapshots(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", nil)
	newPath := writeSnapshot(t, dir, "new.json", nil)
	if code := runCompare(oldPath, newPath, 0.10); code != 2 {
		t.Fatalf("exit %d, want 2: nothing to compare is a usage error", code)
	}
}

func TestParseBenchLine(t *testing.T) {
	r, err := parseBenchLine("BenchmarkSProxySend-4  4235170  256.1 ns/op  0 B/op  0 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "BenchmarkSProxySend" || r.Cpus != 4 || r.NsPerOp != 256.1 {
		t.Fatalf("parsed %+v", r)
	}
}
