package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeSnapshot(t *testing.T, dir, name string, results []Result) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(Report{Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareMissingBenchesAreInformational(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", []Result{
		{Name: "BenchmarkStable", Cpus: 1, NsPerOp: 100},
		{Name: "BenchmarkRemoved", Cpus: 1, NsPerOp: 50},
	})
	newPath := writeSnapshot(t, dir, "new.json", []Result{
		{Name: "BenchmarkStable", Cpus: 1, NsPerOp: 105},
		{Name: "BenchmarkAdded", Cpus: 1, NsPerOp: 70},
	})
	// A bench present only in one snapshot must neither gate nor crash.
	if code := runCompare(oldPath, newPath, 0.10, nil); code != 0 {
		t.Fatalf("exit %d, want 0: added/removed benches must be informational", code)
	}
}

func TestCompareZeroBaselineNotComparable(t *testing.T) {
	dir := t.TempDir()
	// Old snapshot has a zero ns/op record (e.g. parse artifact): the diff
	// must not divide by it — previously the delta became ±Inf.
	oldPath := writeSnapshot(t, dir, "old.json", []Result{
		{Name: "BenchmarkZeroBase", Cpus: 1, NsPerOp: 0},
	})
	newPath := writeSnapshot(t, dir, "new.json", []Result{
		{Name: "BenchmarkZeroBase", Cpus: 1, NsPerOp: 9999},
	})
	if code := runCompare(oldPath, newPath, 0.10, nil); code != 0 {
		t.Fatalf("exit %d, want 0: zero baseline must be informational", code)
	}
}

func TestCompareRealRegressionStillGates(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", []Result{
		{Name: "BenchmarkHot", Cpus: 1, NsPerOp: 100},
	})
	newPath := writeSnapshot(t, dir, "new.json", []Result{
		{Name: "BenchmarkHot", Cpus: 1, NsPerOp: 150},
	})
	if code := runCompare(oldPath, newPath, 0.10, nil); code != 1 {
		t.Fatalf("exit %d, want 1: 50%% serial regression must gate", code)
	}
}

func TestCompareParallelNeverGates(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", []Result{
		{Name: "BenchmarkHotParallel", Cpus: 8, NsPerOp: 100},
	})
	newPath := writeSnapshot(t, dir, "new.json", []Result{
		{Name: "BenchmarkHotParallel", Cpus: 8, NsPerOp: 500},
	})
	if code := runCompare(oldPath, newPath, 0.10, nil); code != 0 {
		t.Fatalf("exit %d, want 0: parallel benches are informational", code)
	}
}

func TestCompareEmptySnapshots(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", nil)
	newPath := writeSnapshot(t, dir, "new.json", nil)
	if code := runCompare(oldPath, newPath, 0.10, nil); code != 2 {
		t.Fatalf("exit %d, want 2: nothing to compare is a usage error", code)
	}
}

func TestParseBenchLine(t *testing.T) {
	r, err := parseBenchLine("BenchmarkSProxySend-4  4235170  256.1 ns/op  0 B/op  0 allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "BenchmarkSProxySend" || r.Cpus != 4 || r.NsPerOp != 256.1 {
		t.Fatalf("parsed %+v", r)
	}
}

func TestCompareMinGainGates(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", []Result{
		{Name: "BenchmarkHot", Cpus: 1, NsPerOp: 100},
	})
	newPath := writeSnapshot(t, dir, "new.json", []Result{
		{Name: "BenchmarkHot", Cpus: 1, NsPerOp: 80},
	})
	// 20% faster, but the gate demands 30%: must fail.
	if code := runCompare(oldPath, newPath, 0.10, map[string]float64{"BenchmarkHot": 0.30}); code != 1 {
		t.Fatalf("exit %d, want 1: 20%% gain below a 30%% -mingain must fail", code)
	}
	// Same snapshots with a 10% requirement: passes.
	if code := runCompare(oldPath, newPath, 0.10, map[string]float64{"BenchmarkHot": 0.10}); code != 0 {
		t.Fatalf("exit %d, want 0: 20%% gain satisfies a 10%% -mingain", code)
	}
}

func TestCompareMinGainMissingBenchmarkFails(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", []Result{
		{Name: "BenchmarkHot", Cpus: 1, NsPerOp: 100},
	})
	newPath := writeSnapshot(t, dir, "new.json", []Result{
		{Name: "BenchmarkHot", Cpus: 1, NsPerOp: 60},
	})
	// A -mingain name absent from the new snapshot means the speedup the PR
	// promises was never measured; that must fail loudly, not pass silently.
	if code := runCompare(oldPath, newPath, 0.10, map[string]float64{"BenchmarkGone": 0.30}); code != 1 {
		t.Fatalf("exit %d, want 1: -mingain benchmark missing from new snapshot", code)
	}
}

func TestParseMinGains(t *testing.T) {
	gains, err := parseMinGains("BenchmarkA=0.30, BenchmarkB=0.05")
	if err != nil {
		t.Fatalf("parseMinGains: %v", err)
	}
	if gains["BenchmarkA"] != 0.30 || gains["BenchmarkB"] != 0.05 {
		t.Fatalf("parsed %v", gains)
	}
	for _, bad := range []string{"NoEquals", "BenchmarkA=1.5", "BenchmarkA=0", "BenchmarkA=x"} {
		if _, err := parseMinGains(bad); err == nil {
			t.Fatalf("parseMinGains(%q): want error", bad)
		}
	}
	if gains, err := parseMinGains(""); err != nil || gains != nil {
		t.Fatalf("empty spec: got %v, %v", gains, err)
	}
}

func TestDedupeMinKeepsFastestSample(t *testing.T) {
	in := []Result{
		{Name: "BenchmarkA", Cpus: 1, NsPerOp: 120, AllocsPerOp: 1},
		{Name: "BenchmarkB", Cpus: 1, NsPerOp: 50},
		{Name: "BenchmarkA", Cpus: 1, NsPerOp: 100, AllocsPerOp: 2},
		{Name: "BenchmarkA", Cpus: 2, NsPerOp: 90}, // distinct cpus: kept apart
		{Name: "BenchmarkA", Cpus: 1, NsPerOp: 130},
	}
	out := dedupeMin(in)
	if len(out) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(out), out)
	}
	if out[0].Name != "BenchmarkA" || out[0].Cpus != 1 || out[0].NsPerOp != 100 {
		t.Fatalf("first entry not the fastest cpus=1 sample: %+v", out[0])
	}
	// The whole winning sample rides along, not just its ns/op.
	if out[0].AllocsPerOp != 2 {
		t.Fatalf("winning sample's fields not preserved: %+v", out[0])
	}
	if out[1].Name != "BenchmarkB" || out[2].Cpus != 2 {
		t.Fatalf("first-seen order not preserved: %+v", out)
	}
}
