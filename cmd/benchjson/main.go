// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON report on stdout, one record per benchmark with ns/op,
// B/op, allocs/op and (when present) MB/s. `make bench` pipes through it
// to produce the committed BENCH_*.json snapshots.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	GoOS      string   `json:"goos,omitempty"`
	GoArch    string   `json:"goarch,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	Pkg       []string `json:"packages,omitempty"`
	Results   []Result `json:"results"`
	FailCount int      `json:"parse_failures"`
}

func main() {
	rep := Report{Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = append(rep.Pkg, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		r, err := parseBenchLine(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
			rep.FailCount++
			continue
		}
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
}

// parseBenchLine parses a single benchmark result line, e.g.
//
//	BenchmarkSProxySend-4  4235170  256.1 ns/op  0 B/op  0 allocs/op
func parseBenchLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, fmt.Errorf("too few fields (%d)", len(fields))
	}
	name := fields[0]
	// strip the -GOMAXPROCS suffix so names are stable across machines
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations: %w", err)
	}
	r := Result{Name: name, Iterations: iters}
	// remaining fields come in "<value> <unit>" pairs
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		case "MB/s":
			r.MBPerSec, err = strconv.ParseFloat(val, 64)
		default:
			continue // custom metric; ignore
		}
		if err != nil {
			return Result{}, fmt.Errorf("%s: %w", unit, err)
		}
	}
	if r.NsPerOp == 0 && r.Iterations == 0 {
		return Result{}, fmt.Errorf("no ns/op value")
	}
	return r, nil
}
