// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON report on stdout, one record per benchmark with ns/op,
// B/op, allocs/op, derived RPS and (when present) MB/s and custom metrics.
// `make bench` pipes through it to produce the committed BENCH_*.json
// snapshots.
//
// With -compare OLD NEW it instead diffs two snapshots, printing per-bench
// ns/op deltas and exiting non-zero when any tracked serial benchmark
// (name not containing "Parallel") regressed more than -threshold.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Cpus is the GOMAXPROCS the run used (the -N name suffix; 1 when the
	// suffix is absent). A -cpu sweep yields one record per cpu count.
	Cpus        int     `json:"cpus,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	// RPS is derived throughput: closed-loop benchmarks report wall time
	// per operation, so requests/sec = 1e9 / ns_per_op.
	RPS float64 `json:"rps,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. p50-ns, p99-ns,
	// p999-ns — the parallel harness's tail percentiles).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	GoOS      string   `json:"goos,omitempty"`
	GoArch    string   `json:"goarch,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	Pkg       []string `json:"packages,omitempty"`
	Results   []Result `json:"results"`
	FailCount int      `json:"parse_failures"`
}

func main() {
	compare := flag.Bool("compare", false, "compare two snapshots: benchjson -compare OLD NEW")
	threshold := flag.Float64("threshold", 0.10, "max allowed ns/op regression fraction in -compare mode")
	mingain := flag.String("mingain", "", "required ns/op improvements in -compare mode, e.g. 'BenchmarkFoo=0.30,BenchmarkBar=0.10'")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare OLD.json NEW.json")
			os.Exit(2)
		}
		gains, err := parseMinGains(*mingain)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *threshold, gains))
	}

	rep := Report{Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = append(rep.Pkg, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		r, err := parseBenchLine(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
			rep.FailCount++
			continue
		}
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	rep.Results = dedupeMin(rep.Results)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
}

// dedupeMin collapses repeated samples of one benchmark (a -count run)
// into the sample with the lowest ns/op, preserving first-seen order.
// Minimum-of-N is the benchstat-style noise floor: a shared host can only
// slow a run down, so the fastest sample is the closest to the code's
// true cost and the committed snapshots stay stable across noisy runs.
func dedupeMin(results []Result) []Result {
	type key struct {
		name string
		cpus int
	}
	idx := make(map[key]int, len(results))
	out := results[:0]
	for _, r := range results {
		k := key{r.Name, r.Cpus}
		if i, dup := idx[k]; dup {
			if r.NsPerOp < out[i].NsPerOp {
				out[i] = r
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, r)
	}
	return out
}

// parseBenchLine parses a single benchmark result line, e.g.
//
//	BenchmarkSProxySend-4  4235170  256.1 ns/op  0 B/op  0 allocs/op
func parseBenchLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, fmt.Errorf("too few fields (%d)", len(fields))
	}
	name := fields[0]
	cpus := 1
	// The -N suffix encodes GOMAXPROCS; keep it as a field so a -cpu sweep
	// yields distinguishable records under one stable name.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			cpus = n
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("iterations: %w", err)
	}
	r := Result{Name: name, Iterations: iters, Cpus: cpus}
	// remaining fields come in "<value> <unit>" pairs
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		case "MB/s":
			r.MBPerSec, err = strconv.ParseFloat(val, 64)
		default:
			v, perr := strconv.ParseFloat(val, 64)
			if perr != nil {
				continue // not a value/unit pair
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
		if err != nil {
			return Result{}, fmt.Errorf("%s: %w", unit, err)
		}
	}
	if r.NsPerOp == 0 && r.Iterations == 0 {
		return Result{}, fmt.Errorf("no ns/op value")
	}
	if r.NsPerOp > 0 {
		r.RPS = 1e9 / r.NsPerOp
	}
	return r, nil
}

// benchKey identifies one benchmark configuration across snapshots.
type benchKey struct {
	name string
	cpus int
}

func loadReport(path string) (map[benchKey]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[benchKey]Result, len(rep.Results))
	for _, r := range rep.Results {
		cpus := r.Cpus
		if cpus == 0 {
			cpus = 1 // snapshots predating the cpus field are single-proc
		}
		m[benchKey{r.Name, cpus}] = r
	}
	return m, nil
}

// parseMinGains parses the -mingain spec: comma-separated name=fraction
// pairs, each requiring the named serial benchmark's new ns/op to be at
// least that fraction below the baseline.
func parseMinGains(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -mingain entry %q (want name=fraction)", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f <= 0 || f >= 1 {
			return nil, fmt.Errorf("bad -mingain fraction %q (want 0 < f < 1)", val)
		}
		out[strings.TrimSpace(name)] = f
	}
	return out, nil
}

// runCompare diffs two snapshots. Serial benchmarks (names not containing
// "Parallel") gate the exit status: any ns/op regression beyond threshold
// fails, and a benchmark named in mingain must have improved by at least
// its required fraction (the gate for a change whose whole point is a
// speedup). Parallel benchmarks are informational — their ns/op depends on
// GOMAXPROCS and machine load, so they are printed but never gate.
func runCompare(oldPath, newPath string, threshold float64, mingain map[string]float64) int {
	oldRes, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newRes, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	// Union of both snapshots, stable order: by name, then cpus. Keys
	// present in only one snapshot are reported informationally — a bench
	// added or removed between snapshots must not crash or gate the diff
	// (and dividing by a missing baseline's zero ns/op would previously
	// poison the delta).
	seen := make(map[benchKey]bool, len(oldRes)+len(newRes))
	keys := make([]benchKey, 0, len(oldRes)+len(newRes))
	for k := range oldRes {
		seen[k] = true
		keys = append(keys, k)
	}
	for k := range newRes {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && (keys[j-1].name > keys[j].name ||
			(keys[j-1].name == keys[j].name && keys[j-1].cpus > keys[j].cpus)); j-- {
			keys[j-1], keys[j] = keys[j], keys[j-1]
		}
	}
	if len(keys) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks in either snapshot")
		return 2
	}
	failed, compared := 0, 0
	for _, k := range keys {
		o, inOld := oldRes[k]
		n, inNew := newRes[k]
		switch {
		case !inNew:
			fmt.Printf("%-60s cpus=%-2d %12.1f ns/op baseline, missing in new snapshot  (info)\n",
				k.name, k.cpus, o.NsPerOp)
			continue
		case !inOld:
			fmt.Printf("%-60s cpus=%-2d %12.1f ns/op, new benchmark (no baseline)  (info)\n",
				k.name, k.cpus, n.NsPerOp)
			continue
		case o.NsPerOp <= 0:
			// A zero/absent baseline ns/op cannot produce a meaningful
			// fraction; report instead of dividing by it.
			fmt.Printf("%-60s cpus=%-2d baseline ns/op is %v, not comparable  (info)\n",
				k.name, k.cpus, o.NsPerOp)
			continue
		}
		compared++
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		status := "ok"
		gated := !strings.Contains(k.name, "Parallel")
		if need, wantGain := mingain[k.name]; gated && wantGain {
			if -delta < need {
				status = fmt.Sprintf("TOO SLOW (need >=%.0f%% gain)", need*100)
				failed++
			} else {
				status = "gain ok"
			}
		} else if gated && delta > threshold {
			status = "REGRESSED"
			failed++
		} else if !gated {
			status = "info"
		}
		fmt.Printf("%-60s cpus=%-2d %12.1f -> %12.1f ns/op  %+6.1f%%  %s\n",
			k.name, k.cpus, o.NsPerOp, n.NsPerOp, delta*100, status)
	}
	for name := range mingain {
		if _, ok := newRes[benchKey{name, 1}]; !ok {
			fmt.Fprintf(os.Stderr, "benchjson: -mingain benchmark %q missing from new snapshot\n", name)
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%%\n",
			failed, threshold*100)
		return 1
	}
	fmt.Printf("benchjson: no serial regression beyond %.0f%% across %d compared benchmark(s)\n",
		threshold*100, compared)
	return 0
}
