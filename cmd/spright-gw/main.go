// Command spright-gw runs a real SPRIGHT node: it deploys a demo function
// chain (an uppercase echo chain or the full online boutique) on the
// in-process dataplane and serves it over HTTP through the cluster ingress
// gateway.
//
//	spright-gw -listen :8080 -app boutique
//	curl -d 'hello' http://localhost:8080/boutique/   (chain 0, GET "/")
//
// With -nodes N the cluster simulates N worker nodes joined by the
// loopback mesh transport, and -place pins functions to nodes:
//
//	spright-gw -app echo -nodes 2 -place upper=worker-1,exclaim=worker-2
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/spright-go/spright/internal/boutique"
	"github.com/spright-go/spright/internal/core"
	"github.com/spright-go/spright/internal/orchestrator"
	"github.com/spright-go/spright/internal/transport"
)

func main() {
	listen := flag.String("listen", ":8080", "HTTP listen address")
	app := flag.String("app", "echo", "application to deploy: echo or boutique")
	mode := flag.String("mode", "event", "descriptor transport: event (S-SPRIGHT) or polling (D-SPRIGHT)")
	traceFile := flag.String("trace-file", "", "append completed traces to this file as OTLP JSON lines")
	autoscale := flag.Bool("autoscale", false, "enable the autoscaling control plane (EWMA, hysteresis, scale-to-zero)")
	asTarget := flag.Int("autoscale-target", 32, "concurrency target per instance")
	minReplicas := flag.Int("min-replicas", 0, "replica floor per function (0 allows scale-to-zero)")
	maxReplicas := flag.Int("max-replicas", 8, "replica ceiling per function")
	scaleToZeroAfter := flag.Duration("scale-to-zero-after", 30*time.Second, "retire an idle chain to zero replicas after this long (0 disables)")
	prewarm := flag.Int("prewarm", 1, "prewarmed instances to hold per function for fast scale-from-zero (0 disables)")
	parkCapacity := flag.Int("park-capacity", 256, "requests parked at the gateway while a zero-replica function resumes (0 disables parking)")
	parkTimeout := flag.Duration("park-timeout", time.Second, "longest a parked request waits for an instance before being shed")
	maxPending := flag.Int("max-pending", 0, "admission ceiling on in-flight requests; beyond it requests shed with Retry-After (0 = unlimited)")
	nodes := flag.Int("nodes", 1, "simulated worker nodes; >1 starts the loopback mesh transport between them")
	place := flag.String("place", "", "comma-separated fn=node placements, e.g. upper=worker-1,exclaim=worker-2")
	sloP99 := flag.Duration("slo-p99", 0, "SLO watchdog: window p99 latency target; a breach captures a diagnostic bundle (0 disables the watchdog)")
	sloWindow := flag.Duration("slo-window", 10*time.Second, "SLO watchdog: sliding evaluation window")
	sloMaxErrRate := flag.Float64("slo-max-error-rate", 0, "SLO watchdog: window error-rate ceiling, e.g. 0.01 (0 disables the error objective)")
	bundleDir := flag.String("bundle-dir", "", "directory for breach diagnostic bundles, served at /debug/bundle/ (empty disables capture)")
	flag.Parse()

	if *nodes < 1 {
		fmt.Fprintln(os.Stderr, "-nodes must be >= 1")
		os.Exit(2)
	}

	m := core.ModeEvent
	if *mode == "polling" {
		m = core.ModePolling
	}

	cluster := orchestrator.NewCluster(*nodes)
	var spec core.ChainSpec
	switch *app {
	case "echo":
		spec = core.ChainSpec{
			Name: "echo",
			Mode: m,
			Functions: []core.FunctionSpec{
				{Name: "upper", Handler: func(ctx *core.Ctx) error {
					b := ctx.Payload()
					for i := range b {
						if b[i] >= 'a' && b[i] <= 'z' {
							b[i] -= 32
						}
					}
					return nil
				}},
				{Name: "exclaim", Handler: func(ctx *core.Ctx) error {
					return ctx.SetPayload(append(ctx.Payload(), '!'))
				}},
			},
			Routes: []core.RouteSpec{
				{From: "", To: []string{"upper"}},
				{From: "upper", To: []string{"exclaim"}},
			},
		}
	case "boutique":
		spec = boutique.Spec(boutique.SpecOptions{Mode: m})
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		os.Exit(2)
	}

	if *autoscale {
		spec.Admission = core.AdmissionPolicy{
			MaxPending:   *maxPending,
			ParkCapacity: *parkCapacity,
			ParkTimeout:  *parkTimeout,
		}
	}

	if *place != "" {
		byFn := make(map[string]int, len(spec.Functions))
		for i := range spec.Functions {
			byFn[spec.Functions[i].Name] = i
		}
		for _, kv := range strings.Split(*place, ",") {
			fn, node, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok || fn == "" || node == "" {
				fmt.Fprintf(os.Stderr, "bad -place entry %q (want fn=node)\n", kv)
				os.Exit(2)
			}
			i, known := byFn[fn]
			if !known {
				fmt.Fprintf(os.Stderr, "-place names unknown function %q\n", fn)
				os.Exit(2)
			}
			spec.Functions[i].Node = node
		}
	}

	var (
		dep *orchestrator.Deployment
		pd  *orchestrator.PlacedDeployment
		err error
	)
	if *nodes > 1 || *place != "" {
		if err = cluster.StartMesh(transport.Config{}); err != nil {
			log.Fatalf("mesh: %v", err)
		}
		pd, err = cluster.Controller.DeployPlacedChain(spec)
		if err != nil {
			log.Fatalf("deploy: %v", err)
		}
		dep = pd.Head()
		for fn, node := range pd.Placement() {
			log.Printf("placed %s on %s", fn, node)
		}
	} else {
		dep, err = cluster.Controller.DeployChain(spec)
		if err != nil {
			log.Fatalf("deploy: %v", err)
		}
	}
	log.Printf("chain %q deployed (%s) with %d function instances",
		spec.Name, m, len(dep.Chain.Instances()))

	if *autoscale {
		asCfg := orchestrator.AutoscalerConfig{
			Target:           *asTarget,
			MinReplicas:      *minReplicas,
			MaxReplicas:      *maxReplicas,
			ScaleToZeroAfter: *scaleToZeroAfter,
			Prewarm:          *prewarm,
			SelfHeal:         true,
		}
		var as *orchestrator.Autoscaler
		if pd != nil {
			as, err = pd.EnableAutoscaling(asCfg)
		} else {
			as, err = cluster.Controller.EnableAutoscaling(spec.Name, asCfg)
		}
		if err != nil {
			log.Fatalf("autoscale: %v", err)
		}
		defer as.Close()
		log.Printf("autoscaling enabled: target=%d replicas=[%d,%d] scale-to-zero-after=%s prewarm=%d park=%d/%s max-pending=%d",
			*asTarget, *minReplicas, *maxReplicas, *scaleToZeroAfter, *prewarm, *parkCapacity, *parkTimeout, *maxPending)
	}

	if *bundleDir != "" {
		cluster.Observability().SetBundleDir(*bundleDir)
	}
	if *sloP99 > 0 || *sloMaxErrRate > 0 {
		wd, err := cluster.Controller.EnableSLOWatchdog(spec.Name, orchestrator.SLOPolicy{
			TargetP99:    *sloP99,
			MaxErrorRate: *sloMaxErrRate,
			Window:       *sloWindow,
			BundleDir:    *bundleDir,
		})
		if err != nil {
			log.Fatalf("slo watchdog: %v", err)
		}
		log.Printf("SLO watchdog enabled: p99<=%s error-rate<=%.4f window=%s bundles=%q (cooldown %s)",
			*sloP99, *sloMaxErrRate, *sloWindow, *bundleDir, wd.Policy().BundleCooldown)
	}

	mux := http.NewServeMux()
	mux.Handle("/", boutiqueAware(cluster.Ingress, *app, spec.Name))
	// Admin surface: /metrics (Prometheus exposition), /healthz
	// (circuit-breaker and pool-leak aware), /traces (retained distributed
	// traces as JSON; ?format=otlp for OTLP JSON, ?limit=N to bound) and
	// /debug/pprof/ — all backed by the cluster's observability layer, into
	// which every deployed chain registers.
	cluster.Observability().Attach(mux)
	if *traceFile != "" {
		stopExp, err := cluster.Observability().StartFileExporter(*traceFile, time.Second)
		if err != nil {
			log.Fatalf("trace exporter: %v", err)
		}
		defer stopExp()
		log.Printf("exporting traces to %s (OTLP JSON lines)", *traceFile)
	}
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		s := dep.Gateway.Stats()
		fmt.Fprintf(w, "admitted=%d completed=%d rejected=%d mean=%.3fms p95=%.3fms\n",
			s.Admitted, s.Completed, s.Rejected, s.Mean*1e3, s.P95*1e3)
		ps := dep.Chain.Pool().Stats()
		fmt.Fprintf(w, "pool: inuse=%d/%d highwater=%d allocs=%d\n",
			ps.InUse, ps.Capacity, ps.HighWater, ps.Allocs)
		if ep := dep.Gateway.EProxy(); ep != nil {
			pkts, bytes := ep.L3Stats()
			fmt.Fprintf(w, "eproxy L3: packets=%d bytes=%d\n", pkts, bytes)
		}
		if as := dep.Autoscaler(); as != nil {
			fmt.Fprintf(w, "shed: overload=%d park_full=%d park_timeout=%d pool_exhausted=%d parked=%d resumed=%d coldstart_p99=%.3fms\n",
				s.ShedOverload, s.ShedParkFull, s.ShedParkTimeout, s.ShedPoolExhausted,
				s.ParkedTotal, s.Resumed, s.ColdStartP99*1e3)
			for _, v := range as.Views() {
				fmt.Fprintf(w, "scale %s: replicas=%d healthy=%d desired=%d ewma=%.1f parked=%d\n",
					v.Function, v.Replicas, v.Healthy, v.Desired, v.EWMA, v.Parked)
			}
		}
	})

	log.Printf("serving on %s (POST /%s/<path>, GET /metrics /healthz /traces /events /slo /stats /debug/bundle/ /debug/pprof/)",
		*listen, spec.Name)
	log.Fatal(http.ListenAndServe(*listen, mux))
}

// boutiqueAware wraps the ingress: for the boutique app it translates a
// ?chain=N query into the in-payload {chain, step} header the functions
// expect.
func boutiqueAware(ingress http.Handler, app, chainName string) http.Handler {
	if app != "boutique" {
		return ingress
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ci := 0
		if q := r.URL.Query().Get("chain"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v >= 0 && v < 6 {
				ci = v
			}
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		payload := boutique.EncodeRequest(ci, body)
		r2 := r.Clone(r.Context())
		r2.URL.Path = "/" + chainName + "/"
		r2.Body = io.NopCloser(bytes.NewReader(payload))
		r2.ContentLength = int64(len(payload))
		ingress.ServeHTTP(w, r2)
	})
}
