// Package objstore implements SPRIGHT's ephemeral shared-memory object
// store: a per-chain keyed tier for intermediates that outlive a single
// hop or exceed a single pool slab (ML pipeline tensors, analytics DAG
// partials, >BufSize request payloads).
//
// An object is a ref-counted sequence of pool slabs — assembled once by a
// chunked write, then read in place by any number of consumers holding its
// compact 64-bit handle. Handles ride the pool's descriptor-adjacent
// headroom (shm.Pool.SetObjHandle), so descriptors stay 16 bytes and the
// handle follows the message across hops, fan-out branches and the
// response path exactly like the trace context does. The reference the
// buffer carries is released by the pool's object release hook when the
// buffer's own reference count reaches zero: object lifetime is tied to
// request completion, and a leaked object surfaces in LeakCheck (the
// store's, and — while resident — the pool's).
//
// Cold objects spill to a file-backed tier (LRU, pinned objects exempt)
// when a resident-byte budget is exceeded or when the pool itself runs
// dry, and reload transparently on the next Open. This is the tiered
// ephemeral-storage shape of "Shattering the Ephemeral Storage Cost
// Barrier": the hot tier is the chain's shared memory, the cold tier is a
// local file, and callers never see the difference beyond latency.
package objstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"github.com/spright-go/spright/internal/shm"
)

// Store errors.
var (
	// ErrStoreClosed marks operations against a closed store.
	ErrStoreClosed = errors.New("objstore: store closed")
	// ErrStaleHandle marks a handle whose object was already released (or
	// never existed) — the use-after-free of the object tier, made loud.
	ErrStaleHandle = errors.New("objstore: stale object handle")
	// ErrNoObject marks Open/Ref of the zero handle (no object attached).
	ErrNoObject = errors.New("objstore: no object")
	// ErrWriterCommitted marks writes to an already sealed writer.
	ErrWriterCommitted = errors.New("objstore: writer already committed")
	// ErrObjectPinned marks an explicit Spill of an object with open
	// readers: their slab views alias pool memory, so eviction must wait.
	ErrObjectPinned = errors.New("objstore: object pinned by open readers")
)

// Handle is the compact object identity carried in buffer headroom:
// generation in the high 32 bits, object ID in the low 32. The zero Handle
// means "no object".
type Handle uint64

// handleOf packs an object's identity.
func handleOf(id, gen uint32) Handle { return Handle(uint64(gen)<<32 | uint64(id)) }

func (h Handle) id() uint32  { return uint32(h) }
func (h Handle) gen() uint32 { return uint32(h >> 32) }

// Valid reports whether the handle names an object at all (it may still be
// stale).
func (h Handle) Valid() bool { return h != 0 }

func (h Handle) String() string {
	return fmt.Sprintf("obj{id=%d gen=%d}", h.id(), h.gen())
}

// Config tunes one store.
type Config struct {
	// MaxResidentBytes bounds the store's shared-memory footprint
	// (slab-capacity bytes of resident objects). Beyond it the coldest
	// unpinned objects spill to the file tier. 0 disables the budget:
	// objects spill only when the pool itself is exhausted.
	MaxResidentBytes int64
	// MaxObjectBytes caps a single object; a chunked write that would
	// exceed it fails with shm.ErrPayloadTooLarge (the gateway maps that
	// to HTTP 413). 0 = unlimited.
	MaxObjectBytes int64
	// SpillDir is the file-backed tier's directory ("" = os.TempDir()).
	SpillDir string
}

// Stats is a snapshot of store activity for the metrics exporter.
type Stats struct {
	// Objects is the number of live objects; Resident/Spilled split them
	// by tier.
	Objects  int
	Resident int
	Spilled  int
	// ResidentBytes is the shared-memory footprint (slab capacity) of
	// resident objects; SpilledBytes the payload bytes parked in files.
	ResidentBytes int64
	SpilledBytes  int64
	// Puts counts committed objects; Deletes objects whose last reference
	// dropped; Refs/Opens reference and reader activity.
	Puts    uint64
	Deletes uint64
	Refs    uint64
	Opens   uint64
	// Spills/Reloads count tier transitions, with byte totals;
	// ExhaustSpills is the subset of spills forced by pool exhaustion
	// rather than the resident-byte budget.
	Spills        uint64
	Reloads       uint64
	SpillBytes    uint64
	ReloadBytes   uint64
	ExhaustSpills uint64
	// SpillErrors counts failed spill attempts (file-tier I/O errors).
	SpillErrors uint64
}

// object is one stored object. Slab membership and tier state are guarded
// by the store mutex; while pins > 0 the object is wired resident and its
// slab slice is immutable, so readers touch it without the lock.
type object struct {
	id   uint32
	gen  uint32
	key  string
	size int64

	refs int // lifetime references (creator, buffers, explicit Refs)
	pins int // open readers; pinned objects cannot spill

	// busy marks a tier transition (spill or reload) whose file I/O is
	// running with the store mutex RELEASED: the object is excluded from
	// spill candidacy, Open/Spill wait it out on Store.cond, and the
	// transition holds its own reference so the object cannot be deleted
	// mid-I/O.
	busy bool

	slabs   []uint32 // pool handles (resident)
	spilled bool
	path    string // spill file (spilled)

	prev, next *object // LRU links (resident objects only)
}

// footprint is the object's shared-memory cost in slab-capacity bytes.
func (o *object) footprint(bufSize int) int64 {
	return int64(len(o.slabs)) * int64(bufSize)
}

// Store is a keyed, ref-counted object store layered on one chain's pool.
// It is safe for concurrent use.
type Store struct {
	pool *shm.Pool
	cfg  Config

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when a busy tier transition finishes
	objs     map[uint32]*object
	byKey    map[string]uint32 // key → latest object ID (non-empty keys)
	nextID   uint32
	nextGen  uint32
	resident int64 // footprint bytes of resident objects
	closed   bool

	// lruHead/lruTail: most-recently-used at head; spill victims come from
	// the tail. Sentinel-free: nil ends.
	lruHead, lruTail *object

	stats Stats

	// eventHook observes tier transitions ("spill"/"reload" with payload
	// bytes) for the flight recorder. Guarded by mu; invoked with mu held,
	// so it must be fast and must not call back into the store.
	eventHook func(event string, bytes int64)

	readerPool sync.Pool // *Object
}

// New builds a store over pool and registers its release hook, so object
// references attached to buffers (shm.Pool.SetObjHandle) are returned when
// the buffer dies. One store per pool.
func New(pool *shm.Pool, cfg Config) *Store {
	s := &Store{
		pool:  pool,
		cfg:   cfg,
		objs:  make(map[uint32]*object),
		byKey: make(map[string]uint32),
	}
	s.cond = sync.NewCond(&s.mu)
	s.readerPool.New = func() any { return new(Object) }
	pool.SetObjReleaseHook(func(obj uint64) { _ = s.Release(Handle(obj)) })
	return s
}

// Pool returns the pool the store is layered on.
func (s *Store) Pool() *shm.Pool { return s.pool }

// SetEventHook installs an observer for tier transitions: fn is called
// with "spill" or "reload" and the object's payload byte count whenever an
// object changes tier. The hook runs with the store lock held — it must be
// fast, non-blocking, and must never call back into the store.
func (s *Store) SetEventHook(fn func(event string, bytes int64)) {
	s.mu.Lock()
	s.eventHook = fn
	s.mu.Unlock()
}

// notifyLocked fires the event hook. Callers hold s.mu.
func (s *Store) notifyLocked(event string, bytes int64) {
	if s.eventHook != nil {
		s.eventHook(event, bytes)
	}
}

// MaxObjectBytes returns the per-object size cap (0 = unlimited) — the
// gateway sizes its HTTP body limiter from it so an oversized request is
// refused while streaming in, not after being buffered whole.
func (s *Store) MaxObjectBytes() int64 { return s.cfg.MaxObjectBytes }

// --- LRU maintenance (store.mu held) ---

func (s *Store) lruPushFront(o *object) {
	o.prev, o.next = nil, s.lruHead
	if s.lruHead != nil {
		s.lruHead.prev = o
	}
	s.lruHead = o
	if s.lruTail == nil {
		s.lruTail = o
	}
}

func (s *Store) lruRemove(o *object) {
	if o.prev != nil {
		o.prev.next = o.next
	} else if s.lruHead == o {
		s.lruHead = o.next
	}
	if o.next != nil {
		o.next.prev = o.prev
	} else if s.lruTail == o {
		s.lruTail = o.prev
	}
	o.prev, o.next = nil, nil
}

func (s *Store) lruTouch(o *object) {
	if s.lruHead == o {
		return
	}
	s.lruRemove(o)
	s.lruPushFront(o)
}

// --- writing ---

// Writer assembles one object from pool slabs via chunked writes. It is
// not safe for concurrent use. Either Commit or Abort must be called, or
// the staged slabs leak (and surface in the pool's LeakCheck).
type Writer struct {
	s      *Store
	key    string
	slabs  []uint32
	size   int64
	cur    []byte // unwritten remainder of the last slab
	sealed bool
}

// Create starts a chunked object write under key ("" = anonymous).
func (s *Store) Create(key string) *Writer {
	return &Writer{s: s, key: key}
}

// Write appends p to the object, allocating pool slabs as needed. On pool
// exhaustion the store spills its coldest unpinned objects to the file
// tier and retries; only a pool with nothing left to spill refuses the
// write. Implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.sealed {
		return 0, ErrWriterCommitted
	}
	if max := w.s.cfg.MaxObjectBytes; max > 0 && w.size+int64(len(p)) > max {
		return 0, fmt.Errorf("%w: object %d > %d",
			shm.ErrPayloadTooLarge, w.size+int64(len(p)), max)
	}
	written := 0
	for len(p) > 0 {
		if len(w.cur) == 0 {
			h, err := w.s.allocSlab()
			if err != nil {
				return written, err
			}
			w.slabs = append(w.slabs, h)
			b, berr := w.s.pool.Bytes(h)
			if berr != nil {
				return written, berr
			}
			w.cur = b
		}
		n := copy(w.cur, p)
		w.cur = w.cur[n:]
		p = p[n:]
		w.size += int64(n)
		written += n
	}
	return written, nil
}

// Commit seals the object and returns its handle, holding one reference
// for the caller (release it with Store.Release, or transfer it by
// attaching the handle to a buffer).
func (w *Writer) Commit() (Handle, error) {
	if w.sealed {
		return 0, ErrWriterCommitted
	}
	w.sealed = true
	s := w.s
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		w.releaseSlabs()
		return 0, ErrStoreClosed
	}
	s.nextID++
	s.nextGen++
	o := &object{
		id:    s.nextID,
		gen:   s.nextGen,
		key:   w.key,
		size:  w.size,
		refs:  1,
		slabs: w.slabs,
	}
	s.objs[o.id] = o
	if o.key != "" {
		s.byKey[o.key] = o.id
	}
	s.resident += o.footprint(s.pool.BufSize())
	s.lruPushFront(o)
	s.stats.Puts++
	s.enforceBudgetLocked(o)
	s.mu.Unlock()
	w.slabs = nil
	return handleOf(o.id, o.gen), nil
}

// Abort discards an uncommitted object, returning its slabs to the pool.
func (w *Writer) Abort() {
	if w.sealed {
		return
	}
	w.sealed = true
	w.releaseSlabs()
}

func (w *Writer) releaseSlabs() {
	for _, h := range w.slabs {
		_ = w.s.pool.Put(h)
	}
	w.slabs = nil
}

// Put stores data as one object under key in a single chunked write.
func (s *Store) Put(key string, data []byte) (Handle, error) {
	w := s.Create(key)
	if _, err := w.Write(data); err != nil {
		w.Abort()
		return 0, err
	}
	return w.Commit()
}

// allocSlab gets one pool buffer, spilling cold objects on exhaustion.
func (s *Store) allocSlab() (uint32, error) {
	for {
		h, err := s.pool.Get()
		if err == nil {
			return h, nil
		}
		if !errors.Is(err, shm.ErrPoolExhausted) {
			return 0, err
		}
		s.mu.Lock()
		spilled := s.spillColdestLocked(nil)
		if spilled {
			s.stats.ExhaustSpills++
		}
		s.mu.Unlock()
		if !spilled {
			return 0, err
		}
	}
}

// enforceBudgetLocked spills LRU-cold objects until the resident footprint
// fits the configured budget. keep (may be nil) is exempted so a freshly
// committed or reloaded object is never immediately re-spilled.
func (s *Store) enforceBudgetLocked(keep *object) {
	if s.cfg.MaxResidentBytes <= 0 {
		return
	}
	for s.resident > s.cfg.MaxResidentBytes {
		if !s.spillColdestLocked(keep) {
			return
		}
	}
}

// spillColdestLocked spills the least-recently-used unpinned resident
// object, reporting whether one was found. Called with s.mu held; the
// victim's file I/O runs with the lock released (see spillObjectLocked),
// so the lock may be dropped and re-acquired before this returns.
func (s *Store) spillColdestLocked(keep *object) bool {
	for o := s.lruTail; o != nil; o = o.prev {
		if o.pins > 0 || o.busy || o == keep || len(o.slabs) == 0 {
			continue
		}
		if err := s.spillObjectLocked(o); err != nil {
			s.stats.SpillErrors++
			if s.closed {
				return false
			}
			// o survived the failed spill (still resident, still linked),
			// so the walk can continue past it.
			continue
		}
		return true
	}
	return false
}

// unrefLocked drops one reference with s.mu held, removing the object when
// the count reaches zero. The freed slab handles are returned so the caller
// can release them to the pool (safe under s.mu — object slabs never carry
// attached handles, so pool.Put cannot re-enter the store).
func (s *Store) unrefLocked(o *object) []uint32 {
	o.refs--
	if o.refs > 0 {
		return nil
	}
	// Last reference: remove the object. Open readers hold a reference, so
	// pins are necessarily zero here.
	delete(s.objs, o.id)
	if o.key != "" && s.byKey[o.key] == o.id {
		delete(s.byKey, o.key)
	}
	if o.spilled {
		if o.path != "" {
			_ = os.Remove(o.path)
			o.path = ""
		}
	} else {
		s.resident -= o.footprint(s.pool.BufSize())
		s.lruRemove(o)
	}
	slabs := o.slabs
	o.slabs = nil
	s.stats.Deletes++
	return slabs
}

// putSlabs returns freed slab handles to the pool.
func (s *Store) putSlabs(slabs []uint32) {
	for _, h := range slabs {
		_ = s.pool.Put(h)
	}
}

// spillObjectLocked writes o's payload to the file tier and frees its
// slabs. Called with s.mu held and returns with it held, but the file
// creation and writes run with the lock RELEASED: o is marked busy (no
// other transition or reader touches it — Open and Spill wait on s.cond)
// and holds a transition reference so a concurrent Release cannot delete
// it mid-write. Hot-path Open/Release/Put on other objects therefore never
// stall behind spill I/O.
func (s *Store) spillObjectLocked(o *object) error {
	o.busy = true
	o.refs++ // transition reference
	slabs := o.slabs
	size := o.size
	s.mu.Unlock()

	var path string
	f, err := os.CreateTemp(s.spillDir(), fmt.Sprintf("spright-obj-%d-%d-*", o.id, o.gen))
	if err == nil {
		path = f.Name()
		left := size
		for _, h := range slabs {
			if left <= 0 {
				break
			}
			b, berr := s.pool.Bytes(h)
			if berr != nil {
				err = berr
				break
			}
			n := int64(len(b))
			if n > left {
				n = left
			}
			if _, werr := f.Write(b[:n]); werr != nil {
				err = werr
				break
			}
			left -= n
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}

	s.mu.Lock()
	o.busy = false
	s.cond.Broadcast()
	if err == nil && s.closed {
		// Close ran mid-spill: keep the object resident (Close's contract
		// leaves leaked residents attributable in the pool's LeakCheck)
		// and discard the file.
		err = ErrStoreClosed
	}
	if err != nil {
		if path != "" {
			_ = os.Remove(path)
		}
		s.putSlabs(s.unrefLocked(o))
		return err
	}
	s.resident -= o.footprint(s.pool.BufSize())
	s.lruRemove(o)
	s.putSlabs(o.slabs)
	o.slabs = nil
	o.spilled = true
	o.path = path
	s.stats.Spills++
	s.stats.SpillBytes += uint64(size)
	s.notifyLocked("spill", size)
	s.putSlabs(s.unrefLocked(o))
	return nil
}

// reloadObjectLocked brings a spilled object back into pool slabs. Same
// locking contract as spillObjectLocked: called and returns with s.mu
// held, file reads and slab fills run with the lock released while o is
// busy and holds a transition reference.
func (s *Store) reloadObjectLocked(o *object) error {
	o.busy = true
	o.refs++ // transition reference
	path := o.path
	size := o.size
	s.mu.Unlock()

	bufSize := s.pool.BufSize()
	nSlabs := int((size + int64(bufSize) - 1) / int64(bufSize))
	slabs := make([]uint32, 0, nSlabs)
	var exhaustSpills uint64
	f, err := os.Open(path)
	if err == nil {
		left := size
		for len(slabs) < nSlabs {
			h, gerr := s.pool.Get()
			if gerr != nil {
				if !errors.Is(gerr, shm.ErrPoolExhausted) {
					err = gerr
					break
				}
				// Pool pressure during reload spills *other* cold objects;
				// o itself is busy and therefore never its own victim.
				s.mu.Lock()
				ok := s.spillColdestLocked(o)
				s.mu.Unlock()
				if !ok {
					err = gerr
					break
				}
				exhaustSpills++
				continue
			}
			slabs = append(slabs, h)
			b, berr := s.pool.Bytes(h)
			if berr != nil {
				err = berr
				break
			}
			n := int64(len(b))
			if n > left {
				n = left
			}
			if _, rerr := io.ReadFull(f, b[:n]); rerr != nil {
				err = fmt.Errorf("objstore: reload %s: %w", path, rerr)
				break
			}
			left -= n
		}
		_ = f.Close()
	}

	s.mu.Lock()
	o.busy = false
	s.cond.Broadcast()
	s.stats.ExhaustSpills += exhaustSpills
	if err != nil {
		s.putSlabs(slabs)
		s.putSlabs(s.unrefLocked(o))
		// Close skipped this object's spill file while the reload owned
		// it; with the reload abandoned, finish that cleanup here.
		if s.closed && o.spilled && o.path != "" {
			_ = os.Remove(o.path)
			o.path = ""
		}
		return err
	}
	_ = os.Remove(path)
	o.path = ""
	o.spilled = false
	o.slabs = slabs
	s.resident += o.footprint(bufSize)
	s.lruPushFront(o)
	s.stats.Reloads++
	s.stats.ReloadBytes += uint64(size)
	s.notifyLocked("reload", size)
	s.enforceBudgetLocked(o)
	s.putSlabs(s.unrefLocked(o))
	return nil
}

// Spill forces the object to the file tier immediately, regardless of
// the resident budget — for tests, benchmarks and callers that know an
// intermediate has gone cold. Spilling an object with open readers fails
// with ErrObjectPinned; an already spilled object is a no-op.
func (s *Store) Spill(h Handle) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return ErrStoreClosed
		}
		o, err := s.lookupLocked(h)
		if err != nil {
			return err
		}
		if o.busy {
			// Another transition owns the object; wait it out and
			// re-evaluate (it may land in either tier).
			s.cond.Wait()
			continue
		}
		if o.spilled {
			return nil
		}
		if o.pins > 0 {
			return fmt.Errorf("%w: %s", ErrObjectPinned, h)
		}
		if err := s.spillObjectLocked(o); err != nil {
			s.stats.SpillErrors++
			return err
		}
		return nil
	}
}

func (s *Store) spillDir() string {
	if s.cfg.SpillDir != "" {
		return s.cfg.SpillDir
	}
	return os.TempDir()
}

// --- reference counting ---

// lookupLocked resolves a handle, failing loudly on stale generations.
func (s *Store) lookupLocked(h Handle) (*object, error) {
	if h == 0 {
		return nil, ErrNoObject
	}
	o, ok := s.objs[h.id()]
	if !ok || o.gen != h.gen() {
		return nil, fmt.Errorf("%w: %s", ErrStaleHandle, h)
	}
	return o, nil
}

// Ref takes one additional reference on the object (fan-out consumers,
// caching a handle past the current request).
func (s *Store) Ref(h Handle) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrStoreClosed
	}
	o, err := s.lookupLocked(h)
	if err != nil {
		return err
	}
	o.refs++
	s.stats.Refs++
	return nil
}

// Release drops one reference; the object is deleted — slabs freed or
// spill file removed — when the count reaches zero. Releasing on a closed
// store still works: teardown must be able to drain.
func (s *Store) Release(h Handle) error {
	s.mu.Lock()
	o, err := s.lookupLocked(h)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	// A busy object cannot die here: its tier transition holds a reference
	// of its own, so refs stays positive until the transition commits.
	slabs := s.unrefLocked(o)
	s.mu.Unlock()
	for _, sh := range slabs {
		_ = s.pool.Put(sh)
	}
	return nil
}

// Attach transfers one object reference onto buffer buf: the handle rides
// the buffer's headroom downstream, and the pool's release hook returns
// the reference when the buffer dies. A handle already attached to the
// buffer is displaced and its reference released.
func (s *Store) Attach(buf uint32, h Handle) error {
	if err := s.Ref(h); err != nil {
		return err
	}
	if prev := s.pool.SetObjHandle(buf, uint64(h)); prev != 0 {
		_ = s.Release(Handle(prev))
	}
	return nil
}

// Attached returns the handle riding buffer buf (0 when none).
func (s *Store) Attached(buf uint32) Handle {
	return Handle(s.pool.ObjHandle(buf))
}

// Detach removes buf's attached handle and releases the reference it
// carried.
func (s *Store) Detach(buf uint32) {
	if prev := s.pool.SetObjHandle(buf, 0); prev != 0 {
		_ = s.Release(Handle(prev))
	}
}

// Lookup resolves a key to the handle of the most recently committed
// object stored under it.
func (s *Store) Lookup(key string) (Handle, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.byKey[key]
	if !ok {
		return 0, false
	}
	return handleOf(id, s.objs[id].gen), true
}

// --- reading ---

// Object is one open reader: a pinned, zero-copy view over the object's
// slabs. Readers are pooled — Close returns them — so steady-state
// Open/read/Close cycles allocate nothing. An Object is valid until Close.
type Object struct {
	s *Store
	o *object
}

// Open pins the object resident (reloading it from the file tier if it
// spilled) and returns a zero-copy reader. Every Open must be balanced by
// Close; while open the object cannot spill, so slab views stay valid.
func (s *Store) Open(h Handle) (*Object, error) {
	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return nil, ErrStoreClosed
		}
		o, err := s.lookupLocked(h)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		if o.busy {
			// A spill or reload owns the object with the lock dropped for
			// its file I/O; wait for the transition to commit rather than
			// pinning slabs out from under it.
			s.cond.Wait()
			continue
		}
		if o.spilled {
			if err := s.reloadObjectLocked(o); err != nil {
				s.mu.Unlock()
				return nil, err
			}
			continue // revalidate: the lock was dropped during the reload
		}
		o.refs++ // the reader's reference: Close releases it
		o.pins++
		s.lruTouch(o)
		s.stats.Opens++
		s.mu.Unlock()
		r := s.readerPool.Get().(*Object)
		r.s, r.o = s, o
		return r, nil
	}
}

// OpenKey opens the latest object stored under key.
func (s *Store) OpenKey(key string) (*Object, error) {
	h, ok := s.Lookup(key)
	if !ok {
		return nil, fmt.Errorf("%w: key %q", ErrNoObject, key)
	}
	return s.Open(h)
}

// Close unpins the reader and recycles it. The reader must not be used
// afterwards.
func (r *Object) Close() error {
	s, o := r.s, r.o
	if s == nil {
		return nil
	}
	r.s, r.o = nil, nil
	s.mu.Lock()
	o.pins--
	s.mu.Unlock()
	err := s.Release(handleOf(o.id, o.gen))
	s.readerPool.Put(r)
	return err
}

// Handle returns the open object's handle.
func (r *Object) Handle() Handle { return handleOf(r.o.id, r.o.gen) }

// Key returns the key the object was stored under ("" = anonymous).
func (r *Object) Key() string { return r.o.key }

// Size returns the object's payload size in bytes.
func (r *Object) Size() int64 { return r.o.size }

// Slabs returns the number of pool slabs backing the object.
func (r *Object) Slabs() int { return len(r.o.slabs) }

// Slab returns the zero-copy view of slab i's valid bytes: the slice
// aliases the pool, so N consumers reading the same object touch one set
// of pages and allocate nothing.
func (r *Object) Slab(i int) []byte {
	b, err := r.s.pool.Bytes(r.o.slabs[i])
	if err != nil {
		return nil
	}
	lo := int64(i) * int64(r.s.pool.BufSize())
	n := r.o.size - lo
	if n > int64(len(b)) {
		n = int64(len(b))
	}
	if n < 0 {
		n = 0
	}
	return b[:n]
}

// ReadAt copies object bytes at off into p (io.ReaderAt): the convenience
// path for consumers that want contiguous bytes and accept the copy.
func (r *Object) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("objstore: negative offset %d", off)
	}
	if off >= r.o.size {
		return 0, io.EOF
	}
	bufSize := int64(r.s.pool.BufSize())
	read := 0
	for read < len(p) && off < r.o.size {
		b := r.Slab(int(off / bufSize))
		if b == nil {
			return read, shm.ErrNotOwned
		}
		n := copy(p[read:], b[off%bufSize:])
		read += n
		off += int64(n)
	}
	if read < len(p) {
		return read, io.EOF
	}
	return read, nil
}

// --- lifecycle ---

// Stats returns a snapshot of store activity.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Objects = len(s.objs)
	st.ResidentBytes = s.resident
	for _, o := range s.objs {
		if o.spilled {
			st.Spilled++
			st.SpilledBytes += o.size
		} else {
			st.Resident++
		}
	}
	return st
}

// LeakCheck reports objects still holding references — the object-tier
// analogue of shm.Pool.LeakCheck. Once all in-flight requests have drained
// and callers have released their handles, it must return nil: an entry
// here is an object reference that escaped its request's lifetime.
func (s *Store) LeakCheck() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.objs) == 0 {
		return nil
	}
	var leaked []string
	for _, o := range s.objs {
		tier := "resident"
		if o.spilled {
			tier = "spilled"
		}
		key := o.key
		if key == "" {
			key = "(anon)"
		}
		leaked = append(leaked, fmt.Sprintf("%s key=%s refs=%d %s %dB",
			handleOf(o.id, o.gen), key, o.refs, tier, o.size))
	}
	sort.Strings(leaked)
	return fmt.Errorf("objstore: %d leaked objects: %s",
		len(leaked), strings.Join(leaked, ", "))
}

// Close marks the store closed and removes its spill files. Resident
// slabs of leaked objects are deliberately left allocated so the pool's
// LeakCheck still attributes them; Release keeps working for late drains.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, o := range s.objs {
		// A busy object's file belongs to its in-flight transition, which
		// observes closed at commit time and cleans up itself.
		if o.spilled && o.path != "" && !o.busy {
			_ = os.Remove(o.path)
			o.path = ""
		}
	}
}
