package objstore

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"github.com/spright-go/spright/internal/shm"
)

// testPool builds a small pool whose geometry forces multi-slab objects.
func testPool(t *testing.T, n, bufSize int) *shm.Pool {
	t.Helper()
	p, err := shm.NewPool("/objstore-test", n, bufSize)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return p
}

// pattern fills n bytes with a position-dependent sequence so slab
// misalignment shows up as content corruption, not just length mismatch.
func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	return b
}

// readAll copies an open object's content via its slab views.
func readAll(t *testing.T, r *Object) []byte {
	t.Helper()
	out := make([]byte, 0, r.Size())
	for i := 0; i < r.Slabs(); i++ {
		out = append(out, r.Slab(i)...)
	}
	return out
}

func TestObjStoreRoundtrip(t *testing.T) {
	pool := testPool(t, 64, 1024)
	s := New(pool, Config{SpillDir: t.TempDir()})

	// 10000 bytes over 1 KiB slabs: 10 slabs, last one partial.
	want := pattern(10000, 3)
	h, err := s.Put("tensor", want)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if !h.Valid() {
		t.Fatal("Put returned zero handle")
	}

	r, err := s.Open(h)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if r.Size() != int64(len(want)) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(want))
	}
	if r.Slabs() != 10 {
		t.Fatalf("Slabs = %d, want 10", r.Slabs())
	}
	if r.Key() != "tensor" {
		t.Fatalf("Key = %q", r.Key())
	}
	if got := readAll(t, r); !bytes.Equal(got, want) {
		t.Fatal("slab-view content mismatch")
	}

	// ReadAt across a slab boundary.
	chunk := make([]byte, 2048)
	if _, err := r.ReadAt(chunk, 512); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(chunk, want[512:512+2048]) {
		t.Fatal("ReadAt content mismatch")
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if err := s.Release(h); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := s.LeakCheck(); err != nil {
		t.Fatalf("store LeakCheck: %v", err)
	}
	if err := pool.LeakCheck(); err != nil {
		t.Fatalf("pool LeakCheck: %v", err)
	}
}

func TestObjStoreStaleHandle(t *testing.T) {
	pool := testPool(t, 16, 1024)
	s := New(pool, Config{SpillDir: t.TempDir()})

	h, err := s.Put("", pattern(100, 1))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Release(h); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := s.Ref(h); !errors.Is(err, ErrStaleHandle) {
		t.Fatalf("Ref after delete = %v, want ErrStaleHandle", err)
	}
	if _, err := s.Open(h); !errors.Is(err, ErrStaleHandle) {
		t.Fatalf("Open after delete = %v, want ErrStaleHandle", err)
	}
	if _, err := s.Open(0); !errors.Is(err, ErrNoObject) {
		t.Fatalf("Open(0) = %v, want ErrNoObject", err)
	}
}

func TestObjStoreRefCounting(t *testing.T) {
	pool := testPool(t, 16, 1024)
	s := New(pool, Config{SpillDir: t.TempDir()})

	h, err := s.Put("k", pattern(3000, 2))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Two extra refs (fan-out consumers): object must survive the
	// creator's release and each consumer's.
	if err := s.Ref(h); err != nil {
		t.Fatalf("Ref: %v", err)
	}
	if err := s.Ref(h); err != nil {
		t.Fatalf("Ref: %v", err)
	}
	if err := s.Release(h); err != nil { // creator
		t.Fatalf("Release: %v", err)
	}
	if err := s.Release(h); err != nil { // consumer 1
		t.Fatalf("Release: %v", err)
	}
	if st := s.Stats(); st.Objects != 1 {
		t.Fatalf("Objects = %d before final release", st.Objects)
	}
	if err := s.Release(h); err != nil { // consumer 2: deletes
		t.Fatalf("Release: %v", err)
	}
	if st := s.Stats(); st.Objects != 0 || st.Deletes != 1 {
		t.Fatalf("after final release: %+v", st)
	}
	if pool.InUse() != 0 {
		t.Fatalf("InUse = %d after delete", pool.InUse())
	}
}

func TestObjStoreAttachLifetime(t *testing.T) {
	pool := testPool(t, 16, 1024)
	s := New(pool, Config{SpillDir: t.TempDir()})

	h, err := s.Put("intermediate", pattern(2500, 4))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}

	// A request buffer carries the handle downstream; the buffer's final
	// Put fires the pool hook, which releases the attached reference.
	buf, err := pool.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := s.Attach(buf, h); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	if got := s.Attached(buf); got != h {
		t.Fatalf("Attached = %v, want %v", got, h)
	}
	if err := s.Release(h); err != nil { // creator drops its reference
		t.Fatalf("Release: %v", err)
	}
	if st := s.Stats(); st.Objects != 1 {
		t.Fatal("object died while still attached to a live buffer")
	}

	// Fan-out: the buffer gains a second reference, both branches Put. The
	// object must die exactly once, on the last Put.
	if err := pool.Ref(buf); err != nil {
		t.Fatalf("pool.Ref: %v", err)
	}
	if err := pool.Put(buf); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if st := s.Stats(); st.Objects != 1 {
		t.Fatal("object released before the buffer's last reference")
	}
	if err := pool.Put(buf); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if st := s.Stats(); st.Objects != 0 {
		t.Fatal("buffer death did not release the attached object")
	}
	if err := pool.LeakCheck(); err != nil {
		t.Fatalf("pool LeakCheck: %v", err)
	}
}

func TestObjStoreDetachAndDisplace(t *testing.T) {
	pool := testPool(t, 16, 1024)
	s := New(pool, Config{SpillDir: t.TempDir()})

	h1, _ := s.Put("a", pattern(100, 1))
	h2, _ := s.Put("b", pattern(100, 2))
	buf, err := pool.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := s.Attach(buf, h1); err != nil {
		t.Fatalf("Attach h1: %v", err)
	}
	_ = s.Release(h1) // buffer now holds h1's only reference

	// Attaching h2 displaces h1: its reference must be released, not leaked.
	if err := s.Attach(buf, h2); err != nil {
		t.Fatalf("Attach h2: %v", err)
	}
	if err := s.Ref(h1); !errors.Is(err, ErrStaleHandle) {
		t.Fatalf("displaced object not released: %v", err)
	}

	s.Detach(buf)
	if got := s.Attached(buf); got != 0 {
		t.Fatalf("Attached after Detach = %v", got)
	}
	_ = s.Release(h2) // creator reference; detach already dropped the buffer's
	if err := pool.Put(buf); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.LeakCheck(); err != nil {
		t.Fatalf("LeakCheck: %v", err)
	}
	if err := pool.LeakCheck(); err != nil {
		t.Fatalf("pool LeakCheck: %v", err)
	}
}

func TestObjStoreLookup(t *testing.T) {
	pool := testPool(t, 32, 1024)
	s := New(pool, Config{SpillDir: t.TempDir()})

	h1, _ := s.Put("model", pattern(100, 1))
	h2, _ := s.Put("model", pattern(200, 2)) // latest wins
	got, ok := s.Lookup("model")
	if !ok || got != h2 {
		t.Fatalf("Lookup = %v,%v want %v", got, ok, h2)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Fatal("Lookup(missing) succeeded")
	}

	r, err := s.OpenKey("model")
	if err != nil {
		t.Fatalf("OpenKey: %v", err)
	}
	if r.Size() != 200 {
		t.Fatalf("OpenKey size = %d", r.Size())
	}
	_ = r.Close()

	// Deleting the latest clears the key; the older object (different ID)
	// does not resurrect under it.
	_ = s.Release(h2)
	if _, ok := s.Lookup("model"); ok {
		t.Fatal("key still resolves after latest object deleted")
	}
	_ = s.Release(h1)
}

func TestObjStoreSpillAndReload(t *testing.T) {
	dir := t.TempDir()
	pool := testPool(t, 64, 1024)
	// Budget of 4 slabs: committing the second 4-slab object must spill the
	// first to the file tier.
	s := New(pool, Config{MaxResidentBytes: 4 * 1024, SpillDir: dir})

	want1 := pattern(4000, 10)
	want2 := pattern(4000, 20)
	h1, err := s.Put("cold", want1)
	if err != nil {
		t.Fatalf("Put cold: %v", err)
	}
	h2, err := s.Put("hot", want2)
	if err != nil {
		t.Fatalf("Put hot: %v", err)
	}

	st := s.Stats()
	if st.Spills != 1 || st.Spilled != 1 || st.Resident != 1 {
		t.Fatalf("after budget spill: %+v", st)
	}
	if st.SpillBytes != 4000 {
		t.Fatalf("SpillBytes = %d", st.SpillBytes)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "spright-obj-*"))
	if len(files) != 1 {
		t.Fatalf("spill files = %v", files)
	}

	// Transparent reload: Open of the spilled object must return its exact
	// content and evict the other one (budget still 4 slabs).
	r, err := s.Open(h1)
	if err != nil {
		t.Fatalf("Open spilled: %v", err)
	}
	if got := readAll(t, r); !bytes.Equal(got, want1) {
		t.Fatal("content corrupted across spill+reload")
	}
	_ = r.Close()

	st = s.Stats()
	if st.Reloads != 1 || st.ReloadBytes != 4000 {
		t.Fatalf("after reload: %+v", st)
	}
	if st.Spills != 2 { // reload pushed "hot" over budget
		t.Fatalf("Spills = %d, want 2 (reload evicts the other)", st.Spills)
	}

	// The second object survives its own spill round-trip too.
	r2, err := s.Open(h2)
	if err != nil {
		t.Fatalf("Open h2: %v", err)
	}
	if got := readAll(t, r2); !bytes.Equal(got, want2) {
		t.Fatal("h2 corrupted across spill+reload")
	}
	_ = r2.Close()

	_ = s.Release(h1)
	_ = s.Release(h2)
	if err := s.LeakCheck(); err != nil {
		t.Fatalf("LeakCheck: %v", err)
	}
	if err := pool.LeakCheck(); err != nil {
		t.Fatalf("pool LeakCheck: %v", err)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "spright-obj-*")); len(files) != 0 {
		t.Fatalf("spill files left after release: %v", files)
	}
}

// TestObjStoreSpillReloadChurnConcurrent hammers the busy-transition
// machinery: a tight resident budget forces every Open to reload its target
// and evict a sibling, while explicit Spill calls race the reloads. Tier
// transitions drop s.mu around their file I/O, so this is the test that
// makes a mid-transition object visible to concurrent Open/Spill/Release —
// run under -race it pins the lock-free I/O rework.
func TestObjStoreSpillReloadChurnConcurrent(t *testing.T) {
	pool := testPool(t, 256, 1024)
	// Budget of 8 slabs with 4-slab objects: at most two resident, so
	// every reload evicts and every commit spills.
	s := New(pool, Config{MaxResidentBytes: 8 * 1024, SpillDir: t.TempDir()})

	const objects = 6
	handles := make([]Handle, objects)
	wants := make([][]byte, objects)
	for i := range handles {
		wants[i] = pattern(4000, byte(i*3+1))
		h, err := s.Put(fmt.Sprintf("churn-%d", i), wants[i])
		if err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		handles[i] = h
	}

	const goroutines = 8
	const iters = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (seed + it) % objects
				if (seed+it)%3 == 0 {
					// Racing explicit spill: ErrObjectPinned just means a
					// reader beat us to it.
					if err := s.Spill(handles[i]); err != nil && !errors.Is(err, ErrObjectPinned) {
						errs <- fmt.Errorf("Spill %d: %w", i, err)
						return
					}
					continue
				}
				r, err := s.Open(handles[i])
				if err != nil {
					errs <- fmt.Errorf("Open %d: %w", i, err)
					return
				}
				if !bytes.Equal(readAll(t, r), wants[i]) {
					_ = r.Close()
					errs <- fmt.Errorf("object %d corrupted across churn", i)
					return
				}
				if err := r.Close(); err != nil {
					errs <- fmt.Errorf("Close %d: %w", i, err)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	for i, h := range handles {
		if err := s.Release(h); err != nil {
			t.Fatalf("Release %d: %v", i, err)
		}
	}
	if err := s.LeakCheck(); err != nil {
		t.Fatalf("LeakCheck: %v", err)
	}
	if err := pool.LeakCheck(); err != nil {
		t.Fatalf("pool LeakCheck: %v", err)
	}
	s.Close()
}

func TestObjStorePinBlocksSpill(t *testing.T) {
	pool := testPool(t, 64, 1024)
	s := New(pool, Config{MaxResidentBytes: 4 * 1024, SpillDir: t.TempDir()})

	h1, _ := s.Put("pinned", pattern(4000, 1))
	r, err := s.Open(h1) // pin: h1 cannot spill while open
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	h2, err := s.Put("other", pattern(4000, 2))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}

	// The budget wants a spill, but the only other resident object is
	// pinned — the freshly committed one is exempt, so nothing spills and
	// the store simply runs over budget.
	st := s.Stats()
	if st.Spilled != 0 {
		t.Fatalf("pinned or fresh object spilled: %+v", st)
	}
	if got := readAll(t, r); !bytes.Equal(got, pattern(4000, 1)) {
		t.Fatal("pinned object content changed")
	}
	_ = r.Close()
	_ = s.Release(h1)
	_ = s.Release(h2)
}

func TestObjStorePoolExhaustionSpills(t *testing.T) {
	// Pool of 8 slabs, no byte budget: the second object's writes exhaust
	// the pool and must push the first object out to the file tier.
	pool := testPool(t, 8, 1024)
	s := New(pool, Config{SpillDir: t.TempDir()})

	want1 := pattern(6000, 5) // 6 slabs
	want2 := pattern(6000, 9) // needs 6 of the remaining 2 → forces spill
	h1, err := s.Put("first", want1)
	if err != nil {
		t.Fatalf("Put first: %v", err)
	}
	h2, err := s.Put("second", want2)
	if err != nil {
		t.Fatalf("Put second: %v", err)
	}

	st := s.Stats()
	if st.ExhaustSpills == 0 {
		t.Fatalf("expected exhaustion-driven spill: %+v", st)
	}
	r1, err := s.Open(h1) // reload: evicts h2 or fails? budget unlimited → pool pressure again
	if err != nil {
		t.Fatalf("Open first after spill: %v", err)
	}
	if got := readAll(t, r1); !bytes.Equal(got, want1) {
		t.Fatal("first object corrupted")
	}
	_ = r1.Close()
	r2, err := s.Open(h2)
	if err != nil {
		t.Fatalf("Open second: %v", err)
	}
	if got := readAll(t, r2); !bytes.Equal(got, want2) {
		t.Fatal("second object corrupted")
	}
	_ = r2.Close()

	_ = s.Release(h1)
	_ = s.Release(h2)
	if err := pool.LeakCheck(); err != nil {
		t.Fatalf("pool LeakCheck: %v", err)
	}
}

func TestObjStoreMaxObjectBytes(t *testing.T) {
	pool := testPool(t, 16, 1024)
	s := New(pool, Config{MaxObjectBytes: 2048, SpillDir: t.TempDir()})

	if _, err := s.Put("big", pattern(4096, 1)); !errors.Is(err, shm.ErrPayloadTooLarge) {
		t.Fatalf("oversize Put = %v, want ErrPayloadTooLarge", err)
	}
	// The aborted write must not leak slabs.
	if pool.InUse() != 0 {
		t.Fatalf("InUse = %d after rejected Put", pool.InUse())
	}
	// At the cap exactly is fine.
	if _, err := s.Put("fits", pattern(2048, 2)); err != nil {
		t.Fatalf("Put at cap: %v", err)
	}
}

func TestObjStoreWriterAbort(t *testing.T) {
	pool := testPool(t, 16, 1024)
	s := New(pool, Config{SpillDir: t.TempDir()})

	w := s.Create("aborted")
	if _, err := w.Write(pattern(3000, 1)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if pool.InUse() != 3 {
		t.Fatalf("InUse = %d mid-write", pool.InUse())
	}
	w.Abort()
	if pool.InUse() != 0 {
		t.Fatalf("InUse = %d after Abort", pool.InUse())
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrWriterCommitted) {
		t.Fatalf("Write after Abort = %v", err)
	}
	if _, err := w.Commit(); !errors.Is(err, ErrWriterCommitted) {
		t.Fatalf("Commit after Abort = %v", err)
	}
	if _, ok := s.Lookup("aborted"); ok {
		t.Fatal("aborted object visible under its key")
	}
}

func TestObjStoreClose(t *testing.T) {
	dir := t.TempDir()
	pool := testPool(t, 64, 1024)
	s := New(pool, Config{MaxResidentBytes: 4 * 1024, SpillDir: dir})

	h1, _ := s.Put("a", pattern(4000, 1))
	h2, _ := s.Put("b", pattern(4000, 2)) // spills h1
	s.Close()

	// Spill files are gone; new work is refused; draining still works.
	if files, _ := filepath.Glob(filepath.Join(dir, "spright-obj-*")); len(files) != 0 {
		t.Fatalf("spill files after Close: %v", files)
	}
	if _, err := s.Put("c", []byte("x")); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("Put after Close = %v", err)
	}
	if _, err := s.Open(h2); !errors.Is(err, ErrStoreClosed) {
		t.Fatalf("Open after Close = %v", err)
	}
	if err := s.Release(h1); err != nil {
		t.Fatalf("Release after Close: %v", err)
	}
	if err := s.Release(h2); err != nil {
		t.Fatalf("Release after Close: %v", err)
	}
	if err := pool.LeakCheck(); err != nil {
		t.Fatalf("pool LeakCheck: %v", err)
	}
}

func TestObjStoreLeakCheckReports(t *testing.T) {
	pool := testPool(t, 16, 1024)
	s := New(pool, Config{SpillDir: t.TempDir()})

	h, _ := s.Put("leaky", pattern(100, 1))
	err := s.LeakCheck()
	if err == nil {
		t.Fatal("LeakCheck nil with a live object")
	}
	for _, frag := range []string{"leaky", "1 leaked"} {
		if !bytes.Contains([]byte(err.Error()), []byte(frag)) {
			t.Fatalf("LeakCheck error %q missing %q", err, frag)
		}
	}
	_ = s.Release(h)
	if err := s.LeakCheck(); err != nil {
		t.Fatalf("LeakCheck after release: %v", err)
	}
}

// TestObjStoreConcurrentReaders is the fan-out shape under race: one 10-slab
// object, many goroutines opening, verifying content zero-copy, and closing,
// while a writer goroutine churns unrelated objects to keep the allocator and
// the LRU busy.
func TestObjStoreConcurrentReaders(t *testing.T) {
	pool := testPool(t, 256, 1024)
	s := New(pool, Config{MaxResidentBytes: 64 * 1024, SpillDir: t.TempDir()})

	want := pattern(10240, 7)
	h, err := s.Put("shared", want)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}

	const readers = 8
	const rounds = 200
	var wg sync.WaitGroup
	errs := make(chan error, readers+1)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				r, err := s.Open(h)
				if err != nil {
					errs <- fmt.Errorf("Open: %w", err)
					return
				}
				ok := true
				for j := 0; j < r.Slabs(); j++ {
					lo := j * pool.BufSize()
					hi := lo + len(r.Slab(j))
					if !bytes.Equal(r.Slab(j), want[lo:hi]) {
						ok = false
					}
				}
				if cerr := r.Close(); cerr != nil {
					errs <- fmt.Errorf("Close: %w", cerr)
					return
				}
				if !ok {
					errs <- errors.New("content mismatch under concurrency")
					return
				}
			}
		}()
	}
	// Churn: unrelated objects come and go, stressing spill decisions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			hc, err := s.Put("", pattern(5000, byte(i)))
			if err != nil {
				errs <- fmt.Errorf("churn Put: %w", err)
				return
			}
			if err := s.Release(hc); err != nil {
				errs <- fmt.Errorf("churn Release: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := s.Release(h); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if err := s.LeakCheck(); err != nil {
		t.Fatalf("LeakCheck: %v", err)
	}
	if err := pool.LeakCheck(); err != nil {
		t.Fatalf("pool LeakCheck: %v", err)
	}
}

// TestObjStoreOpenAllocFree asserts the steady-state read path allocates
// nothing: pooled readers, zero-copy slab views.
func TestObjStoreOpenAllocFree(t *testing.T) {
	pool := testPool(t, 64, 1024)
	s := New(pool, Config{SpillDir: t.TempDir()})
	h, err := s.Put("hot", pattern(8192, 3))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Warm the reader pool.
	r, _ := s.Open(h)
	_ = r.Close()

	var total int64
	allocs := testing.AllocsPerRun(100, func() {
		r, err := s.Open(h)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		for i := 0; i < r.Slabs(); i++ {
			total += int64(len(r.Slab(i)))
		}
		_ = r.Close()
	})
	if allocs > 0 {
		t.Fatalf("read path allocates %v per op, want 0", allocs)
	}
	if total == 0 {
		t.Fatal("read nothing")
	}
	_ = s.Release(h)
}

// TestObjStoreExplicitSpill covers the forced-eviction API: Spill moves a
// resident object to the file tier immediately, refuses pinned objects,
// and is a no-op on an already spilled one.
func TestObjStoreExplicitSpill(t *testing.T) {
	pool := testPool(t, 64, 1024)
	s := New(pool, Config{SpillDir: t.TempDir()})
	want := pattern(3000, 7)
	h, err := s.Put("cold", want)
	if err != nil {
		t.Fatal(err)
	}

	// Pinned: an open reader blocks eviction.
	r, err := s.Open(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Spill(h); !errors.Is(err, ErrObjectPinned) {
		t.Fatalf("Spill of pinned object: got %v, want ErrObjectPinned", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	if err := s.Spill(h); err != nil {
		t.Fatalf("Spill: %v", err)
	}
	if st := s.Stats(); st.Spilled != 1 || st.Resident != 0 || st.Spills != 1 {
		t.Fatalf("after Spill: %+v", st)
	}
	if err := s.Spill(h); err != nil { // idempotent
		t.Fatalf("second Spill: %v", err)
	}
	if st := s.Stats(); st.Spills != 1 {
		t.Fatalf("no-op Spill must not recount: %+v", st)
	}

	// Transparent reload round-trips the content.
	r, err = s.Open(h)
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, r); !bytes.Equal(got, want) {
		t.Fatal("content corrupted across explicit spill")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	if err := s.Spill(Handle(0)); !errors.Is(err, ErrNoObject) {
		t.Fatalf("Spill of zero handle: %v", err)
	}
	if err := s.Release(h); err != nil {
		t.Fatal(err)
	}
	if err := s.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	if err := pool.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}
