package shm

import (
	"errors"
	"fmt"
	"sync"
)

// Manager is the per-node shared-memory manager. It plays the role of the
// DPDK *primary process* of §3.4: it alone may initialize pools
// (rte_mempool_create), each under a unique shared-data file prefix, while
// gateways and functions attach as *secondary processes*
// (rte_memzone_lookup) by presenting the correct prefix.
type Manager struct {
	mu    sync.Mutex
	pools map[string]*Pool

	// attachFree caches detached Attachment handles per prefix so a
	// prewarmed instance reuses a prior secondary-process mapping instead
	// of paying lookup + wiring again (the pooled-attach half of cold-start
	// mitigation).
	attachFree map[string][]*Attachment
	attaches   uint64
	reuses     uint64
	detaches   uint64
	live       int
}

// ErrUnknownPrefix is returned when attaching with a prefix that no primary
// has created — the isolation failure mode of the paper's trust model.
var ErrUnknownPrefix = errors.New("shm: unknown shared-data file prefix")

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{
		pools:      make(map[string]*Pool),
		attachFree: make(map[string][]*Attachment),
	}
}

// Attachment is one pooled secondary-process attach handle: the result of
// a prefix lookup that can be detached back to the manager and handed to
// the next attacher without repeating the lookup.
type Attachment struct {
	m      *Manager
	pool   *Pool
	prefix string
	mu     sync.Mutex
	done   bool
}

// Pool returns the attached pool.
func (a *Attachment) Pool() *Pool { return a.pool }

// Prefix returns the shared-data file prefix this handle is bound to.
func (a *Attachment) Prefix() string { return a.prefix }

// Detach returns the handle to the manager's per-prefix free list for
// reuse. Detaching twice is a no-op.
func (a *Attachment) Detach() {
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return
	}
	a.done = true
	a.mu.Unlock()

	m := a.m
	m.mu.Lock()
	m.detaches++
	m.live--
	// Only cache the handle while its pool is still registered; a released
	// prefix must not resurrect through the free list.
	if _, ok := m.pools[a.prefix]; ok {
		m.attachFree[a.prefix] = append(m.attachFree[a.prefix],
			&Attachment{m: m, pool: a.pool, prefix: a.prefix})
	}
	m.mu.Unlock()
}

// AttachPooled attaches to prefix like Attach, but returns a reusable
// handle: Detach recycles it, and the next AttachPooled for the same
// prefix is served from the free list (a reuse) instead of a fresh
// lookup. This is the shm side of the prewarm pool.
func (m *Manager) AttachPooled(prefix string) (*Attachment, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if free := m.attachFree[prefix]; len(free) > 0 {
		a := free[len(free)-1]
		m.attachFree[prefix] = free[:len(free)-1]
		m.reuses++
		m.live++
		return a, nil
	}
	p, ok := m.pools[prefix]
	if !ok {
		return nil, ErrUnknownPrefix
	}
	m.attaches++
	m.live++
	return &Attachment{m: m, pool: p, prefix: prefix}, nil
}

// AttachStats reports pooled-attach activity.
type AttachStats struct {
	// Attaches counts fresh prefix lookups; Reuses counts handles served
	// from the free list instead.
	Attaches uint64
	Reuses   uint64
	Detaches uint64
	// Live is the number of handles currently checked out; Pooled the
	// number waiting on free lists.
	Live   int
	Pooled int
}

// AttachStats returns a snapshot of pooled-attach counters.
func (m *Manager) AttachStats() AttachStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	pooled := 0
	for _, free := range m.attachFree {
		pooled += len(free)
	}
	return AttachStats{
		Attaches: m.attaches,
		Reuses:   m.reuses,
		Detaches: m.detaches,
		Live:     m.live,
		Pooled:   pooled,
	}
}

// CreatePool initializes a private pool for one function chain. Creating a
// second pool under the same prefix is an error: prefixes are the isolation
// boundary and must be unique.
func (m *Manager) CreatePool(prefix string, n, bufSize int) (*Pool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pools[prefix]; ok {
		return nil, fmt.Errorf("shm: prefix %q already in use", prefix)
	}
	p, err := NewPool(prefix, n, bufSize)
	if err != nil {
		return nil, err
	}
	m.pools[prefix] = p
	return p, nil
}

// Attach looks up the pool for prefix, as a DPDK secondary process would.
// Functions of other chains do not know the prefix and therefore cannot
// attach: this is the first of the two security-domain abstractions (§3.4).
func (m *Manager) Attach(prefix string) (*Pool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[prefix]
	if !ok {
		return nil, ErrUnknownPrefix
	}
	return p, nil
}

// Release tears down the pool for prefix (chain deletion).
func (m *Manager) Release(prefix string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[prefix]
	if !ok {
		return ErrUnknownPrefix
	}
	p.Close()
	delete(m.pools, prefix)
	delete(m.attachFree, prefix)
	return nil
}

// Pools returns the number of live pools.
func (m *Manager) Pools() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pools)
}
