package shm

import (
	"errors"
	"fmt"
	"sync"
)

// Manager is the per-node shared-memory manager. It plays the role of the
// DPDK *primary process* of §3.4: it alone may initialize pools
// (rte_mempool_create), each under a unique shared-data file prefix, while
// gateways and functions attach as *secondary processes*
// (rte_memzone_lookup) by presenting the correct prefix.
type Manager struct {
	mu    sync.Mutex
	pools map[string]*Pool
}

// ErrUnknownPrefix is returned when attaching with a prefix that no primary
// has created — the isolation failure mode of the paper's trust model.
var ErrUnknownPrefix = errors.New("shm: unknown shared-data file prefix")

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{pools: make(map[string]*Pool)}
}

// CreatePool initializes a private pool for one function chain. Creating a
// second pool under the same prefix is an error: prefixes are the isolation
// boundary and must be unique.
func (m *Manager) CreatePool(prefix string, n, bufSize int) (*Pool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pools[prefix]; ok {
		return nil, fmt.Errorf("shm: prefix %q already in use", prefix)
	}
	p, err := NewPool(prefix, n, bufSize)
	if err != nil {
		return nil, err
	}
	m.pools[prefix] = p
	return p, nil
}

// Attach looks up the pool for prefix, as a DPDK secondary process would.
// Functions of other chains do not know the prefix and therefore cannot
// attach: this is the first of the two security-domain abstractions (§3.4).
func (m *Manager) Attach(prefix string) (*Pool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[prefix]
	if !ok {
		return nil, ErrUnknownPrefix
	}
	return p, nil
}

// Release tears down the pool for prefix (chain deletion).
func (m *Manager) Release(prefix string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[prefix]
	if !ok {
		return ErrUnknownPrefix
	}
	p.Close()
	delete(m.pools, prefix)
	return nil
}

// Pools returns the number of live pools.
func (m *Manager) Pools() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pools)
}
