package shm

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDescriptorRoundTrip(t *testing.T) {
	f := func(fn, buf, ln, caller uint32) bool {
		d := Descriptor{NextFn: fn, Buf: buf, Len: ln, Caller: caller}
		w := d.Marshal()
		got, err := UnmarshalDescriptor(w[:])
		return err == nil && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptorWireSize(t *testing.T) {
	d := Descriptor{NextFn: 1, Buf: 2, Len: 3, Caller: 4}
	w := d.Marshal()
	if len(w) != 16 {
		t.Fatalf("descriptor must be exactly 16 bytes (paper §3.2.1), got %d", len(w))
	}
}

func TestDescriptorShortBuffer(t *testing.T) {
	if _, err := UnmarshalDescriptor(make([]byte, 15)); err == nil {
		t.Fatal("short buffer must fail")
	}
}

func TestPoolGetPut(t *testing.T) {
	p, err := NewPool("chain-a", 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(h, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := p.Payload(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("payload mismatch: %q", got)
	}
	if err := p.Put(h); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Payload(h); err != ErrNotOwned {
		t.Fatalf("released buffer must not be readable, got %v", err)
	}
}

func TestPoolExhaustionIsBackpressure(t *testing.T) {
	p, _ := NewPool("x", 2, 64)
	a, _ := p.Get()
	b, _ := p.Get()
	if _, err := p.Get(); err != ErrPoolExhausted {
		t.Fatalf("want ErrPoolExhausted, got %v", err)
	}
	if p.Stats().Failures != 1 {
		t.Fatal("failure must be counted")
	}
	p.Put(a)
	if _, err := p.Get(); err != nil {
		t.Fatalf("freed buffer must be reusable: %v", err)
	}
	_ = b
}

func TestPoolZeroCopyAliasing(t *testing.T) {
	p, _ := NewPool("x", 1, 64)
	h, _ := p.Get()
	p.Write(h, []byte("abc"))
	b1, _ := p.Payload(h)
	b2, _ := p.Payload(h)
	b1[0] = 'Z'
	if b2[0] != 'Z' {
		t.Fatal("payload views must alias the same slab (zero-copy)")
	}
}

func TestPoolRefCounting(t *testing.T) {
	p, _ := NewPool("x", 1, 64)
	h, _ := p.Get()
	if err := p.Ref(h); err != nil {
		t.Fatal(err)
	}
	p.Put(h)
	if _, err := p.Payload(h); err != nil {
		t.Fatal("buffer must stay live with one reference remaining")
	}
	p.Put(h)
	if _, err := p.Payload(h); err != ErrNotOwned {
		t.Fatal("buffer must be freed when last reference drops")
	}
	if err := p.Ref(h); err != ErrNotOwned {
		t.Fatal("Ref on a free buffer must fail")
	}
}

func TestPoolWriteOverflow(t *testing.T) {
	p, _ := NewPool("x", 1, 8)
	h, _ := p.Get()
	if _, err := p.Write(h, make([]byte, 9)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("oversized write must fail with ErrPayloadTooLarge, got %v", err)
	}
}

func TestPoolSetLenBounds(t *testing.T) {
	p, _ := NewPool("x", 1, 8)
	h, _ := p.Get()
	if err := p.SetLen(h, 9); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("SetLen beyond buffer must fail with ErrPayloadTooLarge, got %v", err)
	}
	if err := p.SetLen(h, -1); err == nil {
		t.Fatal("negative SetLen must fail")
	} else if errors.Is(err, ErrPayloadTooLarge) {
		t.Fatal("negative SetLen is caller error, not a size refusal")
	}
	if err := p.SetLen(h, 8); err != nil {
		t.Fatal(err)
	}
	if n, _ := p.Len(h); n != 8 {
		t.Fatalf("len=%d want 8", n)
	}
}

func TestPoolBadHandle(t *testing.T) {
	p, _ := NewPool("x", 1, 8)
	if _, err := p.Bytes(99); err != ErrBadHandle {
		t.Fatalf("want ErrBadHandle, got %v", err)
	}
	if err := p.Put(99); err != ErrBadHandle {
		t.Fatalf("want ErrBadHandle, got %v", err)
	}
}

func TestPoolStatsHighWater(t *testing.T) {
	p, _ := NewPool("x", 8, 16)
	var hs []uint32
	for i := 0; i < 5; i++ {
		h, _ := p.Get()
		hs = append(hs, h)
	}
	for _, h := range hs {
		p.Put(h)
	}
	s := p.Stats()
	if s.HighWater != 5 {
		t.Fatalf("high water %d want 5", s.HighWater)
	}
	if s.InUse != 0 || s.Allocs != 5 || s.Frees != 5 {
		t.Fatalf("stats wrong: %+v", s)
	}
}

func TestPoolInvalidGeometry(t *testing.T) {
	if _, err := NewPool("x", 0, 8); err == nil {
		t.Fatal("zero capacity must fail")
	}
	if _, err := NewPool("x", 8, 0); err == nil {
		t.Fatal("zero buffer size must fail")
	}
}

func TestPoolClosedRejectsGet(t *testing.T) {
	p, _ := NewPool("x", 1, 8)
	p.Close()
	if _, err := p.Get(); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestPoolConcurrentGetPut(t *testing.T) {
	p, _ := NewPool("x", 64, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h, err := p.Get()
				if err != nil {
					continue // exhaustion is legal under contention
				}
				if _, err := p.Write(h, []byte{seed}); err != nil {
					t.Error(err)
				}
				b, err := p.Payload(h)
				if err != nil || b[0] != seed {
					t.Errorf("corrupted buffer: %v %v", b, err)
				}
				if err := p.Put(h); err != nil {
					t.Error(err)
				}
			}
		}(byte(g))
	}
	wg.Wait()
	if p.Stats().InUse != 0 {
		t.Fatalf("leaked buffers: %d in use", p.Stats().InUse)
	}
}

// Property: under any sequence of get/put operations the number of live
// buffers never exceeds capacity and frees never exceed allocs.
func TestPoolAccountingInvariant(t *testing.T) {
	f := func(ops []bool) bool {
		p, _ := NewPool("x", 4, 8)
		var live []uint32
		for _, get := range ops {
			if get {
				if h, err := p.Get(); err == nil {
					live = append(live, h)
				}
			} else if len(live) > 0 {
				p.Put(live[len(live)-1])
				live = live[:len(live)-1]
			}
			s := p.Stats()
			if s.InUse != len(live) || s.InUse > s.Capacity || s.Frees > s.Allocs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestManagerPrimarySecondary(t *testing.T) {
	m := NewManager()
	p, err := m.CreatePool("chain-1", 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Attach("chain-1")
	if err != nil || got != p {
		t.Fatalf("secondary attach must return the primary's pool: %v", err)
	}
}

func TestManagerIsolationByPrefix(t *testing.T) {
	m := NewManager()
	m.CreatePool("chain-1", 8, 64)
	if _, err := m.Attach("chain-2"); err != ErrUnknownPrefix {
		t.Fatalf("attaching with a foreign prefix must fail, got %v", err)
	}
}

func TestManagerDuplicatePrefixRejected(t *testing.T) {
	m := NewManager()
	m.CreatePool("chain-1", 8, 64)
	if _, err := m.CreatePool("chain-1", 8, 64); err == nil {
		t.Fatal("duplicate prefix must be rejected")
	}
}

func TestManagerRelease(t *testing.T) {
	m := NewManager()
	m.CreatePool("chain-1", 8, 64)
	if err := m.Release("chain-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach("chain-1"); err != ErrUnknownPrefix {
		t.Fatal("released prefix must be unknown")
	}
	if err := m.Release("chain-1"); err != ErrUnknownPrefix {
		t.Fatal("double release must fail")
	}
	if m.Pools() != 0 {
		t.Fatal("pool count should be zero")
	}
}

func TestPoolInUseAndLeakCheck(t *testing.T) {
	p, err := NewPool("leak", 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.InUse() != 0 {
		t.Fatalf("fresh pool InUse %d", p.InUse())
	}
	if err := p.LeakCheck(); err != nil {
		t.Fatalf("fresh pool leaks: %v", err)
	}
	a, _ := p.Get()
	b, _ := p.Get()
	if err := p.Ref(b); err != nil { // b now holds 2 refs
		t.Fatal(err)
	}
	if p.InUse() != 2 {
		t.Fatalf("InUse %d want 2", p.InUse())
	}
	err = p.LeakCheck()
	if err == nil {
		t.Fatal("LeakCheck must report live buffers")
	}
	if err := p.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Put(b); err != nil {
		t.Fatal(err)
	}
	// b still has one residual reference: still a leak
	if err := p.LeakCheck(); err == nil {
		t.Fatal("LeakCheck must see b's residual reference")
	}
	if err := p.Put(b); err != nil {
		t.Fatal(err)
	}
	if err := p.LeakCheck(); err != nil {
		t.Fatalf("balanced pool reported a leak: %v", err)
	}
	if p.InUse() != 0 {
		t.Fatalf("InUse %d want 0", p.InUse())
	}
}

// Regression: Ref on a closed pool must fail with ErrClosed instead of
// silently resurrecting a handle whose lifetime ended at teardown.
func TestPoolRefOnClosedPool(t *testing.T) {
	p, _ := NewPool("x", 2, 16)
	h, _ := p.Get()
	p.Close()
	if err := p.Ref(h); err != ErrClosed {
		t.Fatalf("Ref on closed pool: got %v, want ErrClosed", err)
	}
	// Bad handles still report as such, even closed.
	if err := p.Ref(99); err != ErrBadHandle {
		t.Fatalf("Ref with bad handle on closed pool: got %v, want ErrBadHandle", err)
	}
}

// Race-exercised regression for the same bug: goroutines hammering Ref/Put
// while Close lands concurrently. Every Ref that succeeds must be matched
// by a Put that succeeds, so the final accounting is exact; run with -race.
func TestPoolRefCloseRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		p, _ := NewPool("x", 4, 16)
		h, _ := p.Get()
		var extra atomic.Int64 // successful Refs not yet Put back
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					if err := p.Ref(h); err == nil {
						extra.Add(1)
					} else if err != ErrClosed {
						t.Errorf("Ref: unexpected error %v", err)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Close()
		}()
		wg.Wait()
		// Drain: the base reference plus every successful extra Ref.
		for n := extra.Load() + 1; n > 0; n-- {
			if err := p.Put(h); err != nil {
				t.Fatalf("Put while draining: %v", err)
			}
		}
		if err := p.LeakCheck(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// Regression: a recycled buffer must not leak the previous request's trace
// identity. Flags were reset all along; span and stamp were not — a stale
// span ID would parent the new request's spans and a stale stamp fabricates
// queue-wait attribution. This test reads the trace header words directly
// (same package) after a Put/Get recycle.
func TestPoolRecycledTraceHeaderReset(t *testing.T) {
	p, _ := NewPool("x", 1, 16)
	h, _ := p.Get()
	p.SetTraceContext(h, TraceContext{TraceHi: 1, TraceLo: 2, Span: 3, Flags: TraceSampled})
	p.SetTraceSpan(h, 0xdeadbeef)
	p.StampTrace(h, 123456789)
	if err := p.Put(h); err != nil {
		t.Fatal(err)
	}
	h2, err := p.Get() // capacity 1: must recycle the same slab
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatalf("expected recycled handle %d, got %d", h, h2)
	}
	tr := &p.trace[h2]
	if fl := tr.flags.Load(); fl != 0 {
		t.Fatalf("recycled flags = %#x, want 0", fl)
	}
	if sp := tr.span.Load(); sp != 0 {
		t.Fatalf("recycled span = %#x, want 0 (stale span would parent new request's spans)", sp)
	}
	if st := tr.stamp.Load(); st != 0 {
		t.Fatalf("recycled stamp = %d, want 0 (stale stamp fabricates queue wait)", st)
	}
	if p.TraceSampled(h2) {
		t.Fatal("recycled buffer must not inherit sampling")
	}
}

// Concurrent Get/Ref/Put with multi-reference buffers and a concluding
// Close: accounting must be exact — every owner tracks its own references,
// and after all goroutines drain, InUse is 0 and LeakCheck passes. Run
// with -race.
func TestPoolConcurrentRefPutCloseAccounting(t *testing.T) {
	p, _ := NewPool("x", 64, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h, err := p.Get()
				if err != nil {
					continue // exhaustion is legal under contention
				}
				refs := 1
				// Simulate fan-out: take up to 3 extra references, hand
				// each to a "branch" that releases it.
				for k := 0; k < i%4; k++ {
					if err := p.Ref(h); err != nil {
						t.Errorf("Ref on owned buffer: %v", err)
						break
					}
					refs++
				}
				if _, err := p.Write(h, []byte{seed}); err != nil {
					t.Error(err)
				}
				for ; refs > 0; refs-- {
					if err := p.Put(h); err != nil {
						t.Errorf("Put: %v", err)
					}
				}
				// The buffer is now fully released: further access fails.
				if err := p.Ref(h); err != ErrNotOwned && err != nil {
					// Another goroutine may legitimately have re-Got this
					// handle; a successful Ref here would double-count, so
					// only ErrNotOwned or success-on-recycled is possible.
					// Balance a success immediately.
					t.Errorf("Ref after release: %v", err)
				} else if err == nil {
					if err := p.Put(h); err != nil {
						t.Errorf("balancing Put: %v", err)
					}
				}
			}
		}(byte(g))
	}
	wg.Wait()
	s := p.Stats()
	if s.InUse != 0 {
		t.Fatalf("InUse = %d after drain, want 0", s.InUse)
	}
	if s.Frees != s.Allocs {
		t.Fatalf("frees %d != allocs %d", s.Frees, s.Allocs)
	}
	if err := p.LeakCheck(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Get(); err != ErrClosed {
		t.Fatalf("Get after Close: %v", err)
	}
}
