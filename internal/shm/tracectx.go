package shm

import (
	"fmt"
	"strconv"
)

// Trace flags carried in the per-buffer trace header.
const (
	// TraceSampled marks a head-sampled request: every stage it passes
	// through records a span for it.
	TraceSampled uint32 = 1 << 0
	// TraceTail marks a context whose trace must be retained by the tail
	// sampler regardless of outcome — propagated from an upstream chain
	// that already made the retention decision.
	TraceTail uint32 = 1 << 1
)

// TraceContext is the distributed-tracing identity a request carries
// through the zero-copy path: a 128-bit trace ID, the span the next stage
// parents onto, and the sampled/tail flags. It travels in the shared-memory
// buffer *header* — per-handle metadata maintained by the Pool, the
// SPRIGHT analog of DPDK mbuf headroom — not in the descriptor, so
// descriptors stay 16 bytes.
type TraceContext struct {
	TraceHi uint64
	TraceLo uint64
	Span    uint64
	Flags   uint32
}

// Sampled reports whether the context belongs to a sampled trace.
func (tc TraceContext) Sampled() bool { return tc.Flags&TraceSampled != 0 }

// Traceparent renders the context as a W3C trace-context header value
// (version 00), the wire form gateways accept from external callers.
func (tc TraceContext) Traceparent() string {
	flags := 0
	if tc.Sampled() {
		flags = 1
	}
	return fmt.Sprintf("00-%016x%016x-%016x-%02x", tc.TraceHi, tc.TraceLo, tc.Span, flags)
}

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex trace id>-<16 hex span id>-<2 hex flags>"). It reports
// false for malformed values and for the all-zero trace or span IDs the
// spec declares invalid.
func ParseTraceparent(s string) (TraceContext, bool) {
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceContext{}, false
	}
	if s[0] != '0' || s[1] != '0' {
		return TraceContext{}, false // only version 00 is understood
	}
	hi, err := strconv.ParseUint(s[3:19], 16, 64)
	if err != nil {
		return TraceContext{}, false
	}
	lo, err := strconv.ParseUint(s[19:35], 16, 64)
	if err != nil {
		return TraceContext{}, false
	}
	span, err := strconv.ParseUint(s[36:52], 16, 64)
	if err != nil {
		return TraceContext{}, false
	}
	fl, err := strconv.ParseUint(s[53:55], 16, 8)
	if err != nil {
		return TraceContext{}, false
	}
	if (hi == 0 && lo == 0) || span == 0 {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceHi: hi, TraceLo: lo, Span: span}
	if fl&1 != 0 {
		tc.Flags = TraceSampled
	}
	return tc, true
}
