package shm

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Common pool errors.
var (
	ErrPoolExhausted = errors.New("shm: pool exhausted")
	ErrBadHandle     = errors.New("shm: invalid buffer handle")
	ErrNotOwned      = errors.New("shm: buffer not allocated")
	ErrClosed        = errors.New("shm: pool closed")
	// ErrPayloadTooLarge marks writes (and SetLen adjustments) that exceed
	// the fixed buffer size. It is a sentinel so the gateway can map it onto
	// a distinct refusal (HTTP 413 + its own shed counter) instead of a
	// generic admission failure — and so callers can fall back to the
	// multi-slab object tier (objstore) for payloads one slab cannot hold.
	ErrPayloadTooLarge = errors.New("shm: payload exceeds buffer size")
)

// PoolStats reports allocation behaviour, used by tests and by the metrics
// agent in the SPRIGHT gateway.
type PoolStats struct {
	Capacity  int
	BufSize   int
	InUse     int
	Allocs    uint64
	Frees     uint64
	Failures  uint64
	HighWater int
	// Steals counts allocations served from a non-home freelist shard — a
	// contention/imbalance signal: a high steal rate means the sharded
	// freelist is behaving like one lock again.
	Steals uint64
}

// traceHdr is one buffer's trace header: the buffer-resident half of the
// distributed-tracing context (TraceContext) plus the enqueue timestamp the
// receiving side turns into a queue-wait span. hi/lo are written once at
// admission, before the descriptor is handed to the transport — the
// channel/ring handoff orders them for every downstream reader. span and
// stamp are updated per hop and may race between fan-out branches, so they
// are atomic; attribution under fan-out is approximate by design (the
// branches share one buffer).
//
// obj is the buffer's attached object handle (objstore): like the trace
// context it rides in this descriptor-adjacent headroom so descriptors stay
// 16 bytes. The reference the handle represents is owned by the buffer and
// released through the pool's object release hook when the buffer's own
// reference count reaches zero.
type traceHdr struct {
	hi, lo uint64
	span   atomic.Uint64
	flags  atomic.Uint32
	stamp  atomic.Int64  // UnixNano of the most recent enqueue of this buffer
	obj    atomic.Uint64 // attached objstore handle (0 = none)
	// objCarrier marks the attached object as BEING the message payload
	// (gateway large-payload admission, Ctx.ReplyObject) rather than an
	// auxiliary intermediate riding alongside it. Any in-buffer payload
	// write clears it: whoever wrote last owns the message body, so the
	// gateway never has to guess from Len==0 whether to echo the object.
	objCarrier atomic.Uint32
}

// freelistShards is the number of independent freelist segments (power of
// two, so the home shard of a handle is a mask away). Concurrent Get/Put
// from different workers land on different shard locks instead of
// serializing on one pool-wide mutex.
const freelistShards = 8

// freeShard is one freelist segment. The pad keeps adjacent shards' locks
// off a shared cache line.
type freeShard struct {
	mu   sync.Mutex
	list []uint32 // LIFO for cache locality
	_    [40]byte
}

// Pool is a fixed-capacity slab of equally sized buffers. It is safe for
// concurrent use. The backing slab is allocated in one piece, mirroring a
// HugePages-backed DPDK mempool: buffer i is slab[i*bufSize:(i+1)*bufSize].
//
// The freelist is sharded: a freed handle returns to its home shard
// (h & (freelistShards-1)) and Get scans shards from a rotating cursor,
// stealing from any non-empty shard before declaring exhaustion, so the
// backpressure signal stays exact while uncontended Get/Put pairs touch
// only one uncontended lock. InUse and the allocation stats are maintained
// with the same atomics as before and remain exact.
type Pool struct {
	prefix  string
	bufSize int
	slab    []byte
	refs    []atomic.Int32 // 0 = free, >0 = live references
	lens    []atomic.Int32 // valid payload length per buffer
	trace   []traceHdr     // per-buffer trace context (the "mbuf headroom")

	shards [freelistShards]freeShard
	cursor atomic.Uint32
	closed atomic.Bool

	// objHook, when set, receives the attached object handle of every
	// buffer whose last reference is released — the lifetime tie between
	// a request's buffer and the objects it carried.
	objHook atomic.Pointer[func(obj uint64)]

	allocs    atomic.Uint64
	frees     atomic.Uint64
	failures  atomic.Uint64
	steals    atomic.Uint64
	inUse     atomic.Int64
	highWater atomic.Int64
}

// NewPool creates a pool of n buffers of bufSize bytes each under the given
// shared-data file prefix. Prefer Manager.CreatePool, which enforces the
// primary-process creation rule.
func NewPool(prefix string, n, bufSize int) (*Pool, error) {
	if n <= 0 || bufSize <= 0 {
		return nil, fmt.Errorf("shm: invalid pool geometry n=%d bufSize=%d", n, bufSize)
	}
	p := &Pool{
		prefix:  prefix,
		bufSize: bufSize,
		slab:    make([]byte, n*bufSize),
		refs:    make([]atomic.Int32, n),
		lens:    make([]atomic.Int32, n),
		trace:   make([]traceHdr, n),
	}
	for s := range p.shards {
		p.shards[s].list = make([]uint32, 0, n/freelistShards+1)
	}
	// Handles live in their home shard (h mod shards), low handles on top
	// of each LIFO.
	for i := n - 1; i >= 0; i-- {
		h := uint32(i)
		s := &p.shards[h&(freelistShards-1)]
		s.list = append(s.list, h)
	}
	return p, nil
}

// Prefix returns the pool's shared-data file prefix (its isolation key).
func (p *Pool) Prefix() string { return p.prefix }

// BufSize returns the fixed buffer size.
func (p *Pool) BufSize() int { return p.bufSize }

// Capacity returns the number of buffers in the pool.
func (p *Pool) Capacity() int { return len(p.refs) }

// Get allocates a buffer with reference count 1. It fails with
// ErrPoolExhausted when no buffer is free — the chain's queueing capacity
// (§3.2.1) is exactly the pool capacity, so exhaustion is the backpressure
// signal.
func (p *Pool) Get() (uint32, error) {
	if p.closed.Load() {
		return 0, ErrClosed
	}
	h, ok := p.popFree()
	if !ok {
		p.failures.Add(1)
		return 0, ErrPoolExhausted
	}

	p.refs[h].Store(1)
	p.lens[h].Store(0)
	// A recycled buffer must never leak its previous request's trace
	// identity: flags (the sampling gate), the span word (a stale span ID
	// would parent the new request's spans) and the enqueue stamp (a stale
	// stamp fabricates queue-wait attribution) are all reset. The
	// load-then-store keeps the common case (previous user unsampled,
	// words already zero) plain reads: atomic stores are locked ops on
	// amd64, loads are not.
	t := &p.trace[h]
	if t.flags.Load() != 0 {
		t.flags.Store(0)
	}
	if t.span.Load() != 0 {
		t.span.Store(0)
	}
	if t.stamp.Load() != 0 {
		t.stamp.Store(0)
	}
	if t.objCarrier.Load() != 0 {
		t.objCarrier.Store(0)
	}
	p.allocs.Add(1)
	in := p.inUse.Add(1)
	for {
		hw := p.highWater.Load()
		if in <= hw || p.highWater.CompareAndSwap(hw, in) {
			break
		}
	}
	return h, nil
}

// Ref increments the reference count of a live buffer (multi-consumer
// fan-out in DFR pub/sub routing). Ref on a closed pool fails with
// ErrClosed: after Close has stopped allocations, a racing fan-out branch
// must not resurrect a handle and extend its lifetime past teardown.
func (p *Pool) Ref(h uint32) error {
	if int(h) >= len(p.refs) {
		return ErrBadHandle
	}
	if p.closed.Load() {
		return ErrClosed
	}
	for {
		r := p.refs[h].Load()
		if r <= 0 {
			return ErrNotOwned
		}
		if p.refs[h].CompareAndSwap(r, r+1) {
			return nil
		}
	}
}

// Put releases one reference; the buffer returns to the freelist when the
// count reaches zero.
func (p *Pool) Put(h uint32) error {
	if int(h) >= len(p.refs) {
		return ErrBadHandle
	}
	for {
		r := p.refs[h].Load()
		if r <= 0 {
			return ErrNotOwned
		}
		if !p.refs[h].CompareAndSwap(r, r-1) {
			continue
		}
		if r == 1 {
			p.frees.Add(1)
			p.inUse.Add(-1)
			// The freeing caller is the exclusive owner here: detach the
			// buffer's object handle before the handle can be recycled, so
			// the attached reference is released exactly once and never
			// against a successor request's object. The hook runs with no
			// pool locks held (it may re-enter Put for the object's slabs).
			var obj uint64
			if p.trace[h].obj.Load() != 0 {
				obj = p.trace[h].obj.Swap(0)
			}
			if p.trace[h].objCarrier.Load() != 0 {
				p.trace[h].objCarrier.Store(0)
			}
			if !p.closed.Load() {
				s := &p.shards[h&(freelistShards-1)]
				s.mu.Lock()
				s.list = append(s.list, h)
				s.mu.Unlock()
			}
			if obj != 0 {
				if hook := p.objHook.Load(); hook != nil {
					(*hook)(obj)
				}
			}
		}
		return nil
	}
}

// popFree pops a handle, starting at a rotating shard and stealing from
// the others when the first is empty. Only when every shard is empty is
// the pool exhausted.
func (p *Pool) popFree() (uint32, bool) {
	start := p.cursor.Add(1)
	for i := uint32(0); i < freelistShards; i++ {
		s := &p.shards[(start+i)&(freelistShards-1)]
		s.mu.Lock()
		if n := len(s.list); n > 0 {
			h := s.list[n-1]
			s.list = s.list[:n-1]
			s.mu.Unlock()
			if i > 0 {
				p.steals.Add(1)
			}
			return h, true
		}
		s.mu.Unlock()
	}
	return 0, false
}

// Bytes returns the full buffer backing slice for handle h. The returned
// slice aliases the pool slab: writes are zero-copy visible to every
// reference holder.
func (p *Pool) Bytes(h uint32) ([]byte, error) {
	if int(h) >= len(p.refs) {
		return nil, ErrBadHandle
	}
	if p.refs[h].Load() <= 0 {
		return nil, ErrNotOwned
	}
	off := int(h) * p.bufSize
	return p.slab[off : off+p.bufSize : off+p.bufSize], nil
}

// Write copies payload into buffer h and records its length. This is the
// single copy the SPRIGHT gateway performs when admitting an external
// request into the chain.
func (p *Pool) Write(h uint32, payload []byte) (int, error) {
	b, err := p.Bytes(h)
	if err != nil {
		return 0, err
	}
	if len(payload) > len(b) {
		return 0, fmt.Errorf("%w: %d > %d", ErrPayloadTooLarge, len(payload), len(b))
	}
	n := copy(b, payload)
	p.lens[h].Store(int32(n))
	// The in-buffer payload is now authoritative: an attached object is a
	// rider again, not the message body.
	if p.trace[h].objCarrier.Load() != 0 {
		p.trace[h].objCarrier.Store(0)
	}
	return n, nil
}

// Payload returns the valid payload slice of buffer h (zero-copy view).
func (p *Pool) Payload(h uint32) ([]byte, error) {
	b, err := p.Bytes(h)
	if err != nil {
		return nil, err
	}
	return b[:p.lens[h].Load()], nil
}

// SetLen adjusts the valid payload length after in-place mutation.
func (p *Pool) SetLen(h uint32, n int) error {
	b, err := p.Bytes(h)
	if err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("shm: negative length %d", n)
	}
	if n > len(b) {
		return fmt.Errorf("%w: length %d > %d", ErrPayloadTooLarge, n, len(b))
	}
	p.lens[h].Store(int32(n))
	if p.trace[h].objCarrier.Load() != 0 {
		p.trace[h].objCarrier.Store(0)
	}
	return nil
}

// Len returns the valid payload length of buffer h.
func (p *Pool) Len(h uint32) (int, error) {
	if int(h) >= len(p.refs) {
		return 0, ErrBadHandle
	}
	if p.refs[h].Load() <= 0 {
		return 0, ErrNotOwned
	}
	return int(p.lens[h].Load()), nil
}

// SetTraceContext installs tc in buffer h's trace header (gateway
// admission: the context then rides the buffer across every hop, fan-out
// branch and chain boundary without widening the 16-byte descriptor).
// Flags are stored last so a reader that observes TraceSampled also
// observes the trace ID.
func (p *Pool) SetTraceContext(h uint32, tc TraceContext) {
	if int(h) >= len(p.trace) {
		return
	}
	t := &p.trace[h]
	t.hi, t.lo = tc.TraceHi, tc.TraceLo
	t.span.Store(tc.Span)
	t.stamp.Store(0)
	t.flags.Store(tc.Flags)
}

// TraceContext returns buffer h's trace header (zero value when the buffer
// carries no sampled trace).
func (p *Pool) TraceContext(h uint32) TraceContext {
	if int(h) >= len(p.trace) {
		return TraceContext{}
	}
	t := &p.trace[h]
	fl := t.flags.Load()
	if fl == 0 {
		return TraceContext{}
	}
	return TraceContext{TraceHi: t.hi, TraceLo: t.lo, Span: t.span.Load(), Flags: fl}
}

// TraceSampled is the per-hop sampling gate: one atomic load decides
// whether a stage records spans for this buffer.
func (p *Pool) TraceSampled(h uint32) bool {
	return int(h) < len(p.trace) && p.trace[h].flags.Load()&TraceSampled != 0
}

// SetTraceSpan updates the span downstream stages parent onto (each
// handler installs its own span before forwarding).
func (p *Pool) SetTraceSpan(h uint32, span uint64) {
	if int(h) < len(p.trace) {
		p.trace[h].span.Store(span)
	}
}

// StampTrace records the enqueue time of the buffer's most recent send;
// the receiving side subtracts it from its dequeue time to produce the
// queue-wait span.
func (p *Pool) StampTrace(h uint32, unixNano int64) {
	if int(h) < len(p.trace) {
		p.trace[h].stamp.Store(unixNano)
	}
}

// TraceStamp returns the most recent enqueue stamp (0 when never stamped
// since admission).
func (p *Pool) TraceStamp(h uint32) int64 {
	if int(h) >= len(p.trace) {
		return 0
	}
	return p.trace[h].stamp.Load()
}

// SetObjHandle attaches an object handle to buffer h's headroom, returning
// the previously attached handle (0 when none). The handle rides the buffer
// across every hop and fan-out branch exactly like the trace context —
// descriptors stay 16 bytes. The caller transfers one object reference to
// the buffer; the pool's object release hook returns it when the buffer's
// last reference is released. A displaced previous handle is returned so
// the caller can release the reference it carried.
func (p *Pool) SetObjHandle(h uint32, obj uint64) (prev uint64) {
	if int(h) >= len(p.trace) {
		return 0
	}
	// A freshly attached (or detached) object starts as a rider; callers
	// for whom the object IS the payload (gateway large-payload admission,
	// Ctx.ReplyObject) assert that explicitly via SetObjCarrier afterwards.
	if p.trace[h].objCarrier.Load() != 0 {
		p.trace[h].objCarrier.Store(0)
	}
	return p.trace[h].obj.Swap(obj)
}

// SetObjCarrier marks (or unmarks) buffer h's attached object as being the
// message payload itself — the >BufSize carrier convention. The mark is
// cleared by any in-buffer payload write (Write, SetLen), by SetObjHandle,
// and when the buffer is recycled, so it can never outlive the attachment
// that set it.
func (p *Pool) SetObjCarrier(h uint32, on bool) {
	if int(h) >= len(p.trace) {
		return
	}
	v := uint32(0)
	if on {
		v = 1
	}
	p.trace[h].objCarrier.Store(v)
}

// ObjCarrier reports whether buffer h's attached object is the message
// payload (the gateway assembles the external response from it) rather
// than an auxiliary rider.
func (p *Pool) ObjCarrier(h uint32) bool {
	return int(h) < len(p.trace) && p.trace[h].objCarrier.Load() != 0
}

// ObjHandle returns the object handle attached to buffer h (0 when none).
func (p *Pool) ObjHandle(h uint32) uint64 {
	if int(h) >= len(p.trace) {
		return 0
	}
	return p.trace[h].obj.Load()
}

// SetObjReleaseHook installs the callback that receives each dying buffer's
// attached object handle — the object store registers itself here so object
// lifetime follows request/buffer lifetime. The hook runs on the goroutine
// performing the final Put, with no pool locks held; it may call back into
// the pool (the store releases the object's slab buffers through Put).
func (p *Pool) SetObjReleaseHook(hook func(obj uint64)) {
	if hook == nil {
		p.objHook.Store(nil)
		return
	}
	p.objHook.Store(&hook)
}

// InUse returns the number of currently allocated buffers — the chain's
// instantaneous queue occupancy, and the quantity that must reach zero at
// teardown for the dataplane to be leak-free.
func (p *Pool) InUse() int { return int(p.inUse.Load()) }

// LeakCheck reports buffers still holding references: the invariant every
// dataplane failure path must preserve is that LeakCheck returns nil once
// all in-flight work has drained. The error names the leaked handles and
// their residual reference counts.
func (p *Pool) LeakCheck() error {
	var leaked []string
	for i := range p.refs {
		if r := p.refs[i].Load(); r > 0 {
			leaked = append(leaked, fmt.Sprintf("buf %d (refs=%d)", i, r))
		}
	}
	if len(leaked) == 0 {
		return nil
	}
	return fmt.Errorf("shm: pool %q leaked %d buffers: %s",
		p.prefix, len(leaked), strings.Join(leaked, ", "))
}

// Stats returns a snapshot of allocation statistics.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Capacity:  len(p.refs),
		BufSize:   p.bufSize,
		InUse:     int(p.inUse.Load()),
		Allocs:    p.allocs.Load(),
		Frees:     p.frees.Load(),
		Failures:  p.failures.Load(),
		HighWater: int(p.highWater.Load()),
		Steals:    p.steals.Load(),
	}
}

// Close marks the pool closed; outstanding buffers stay readable until
// released but no new allocations succeed.
func (p *Pool) Close() {
	p.closed.Store(true)
}
