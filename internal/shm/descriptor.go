// Package shm implements SPRIGHT's private shared-memory pools and the
// 16-byte packet descriptors used for zero-copy message delivery within a
// function chain (§3.2.1).
//
// A pool is a contiguous slab (standing in for a HugePages-backed DPDK
// mempool) cut into fixed-size buffers with reference counts. Descriptors
// carry {next-function instance ID, buffer handle} so that the payload is
// written once by the gateway and then only *referenced* as it moves down
// the chain. A Manager owns pool creation (the DPDK "primary process") and
// gates attachment by shared-data file prefix (the paper's per-chain
// isolation mechanism, §3.4).
package shm

import (
	"encoding/binary"
	"fmt"
)

// DescriptorSize is the wire size of a packet descriptor. The paper fixes
// this at 16 bytes to minimize per-message overhead.
const DescriptorSize = 16

// Descriptor is SPRIGHT's packet descriptor. It is the only thing that
// travels between functions; the payload stays in shared memory.
//
// NextFn is the instance ID of the destination function (used by SPROXY to
// look up the target socket in the sockmap). Buf and Len locate the payload
// in the chain's pool. Caller carries the caller-ID used to route responses
// in the asynchronous request/response decomposition of §3.8.
type Descriptor struct {
	NextFn uint32
	Buf    uint32
	Len    uint32
	Caller uint32
}

// Marshal encodes the descriptor into its 16-byte wire form (little endian,
// matching the x86 layout the paper's eBPF programs parse).
func (d Descriptor) Marshal() [DescriptorSize]byte {
	var b [DescriptorSize]byte
	binary.LittleEndian.PutUint32(b[0:4], d.NextFn)
	binary.LittleEndian.PutUint32(b[4:8], d.Buf)
	binary.LittleEndian.PutUint32(b[8:12], d.Len)
	binary.LittleEndian.PutUint32(b[12:16], d.Caller)
	return b
}

// UnmarshalDescriptor decodes a 16-byte wire descriptor.
func UnmarshalDescriptor(b []byte) (Descriptor, error) {
	if len(b) < DescriptorSize {
		return Descriptor{}, fmt.Errorf("shm: short descriptor: %d bytes", len(b))
	}
	return Descriptor{
		NextFn: binary.LittleEndian.Uint32(b[0:4]),
		Buf:    binary.LittleEndian.Uint32(b[4:8]),
		Len:    binary.LittleEndian.Uint32(b[8:12]),
		Caller: binary.LittleEndian.Uint32(b[12:16]),
	}, nil
}

func (d Descriptor) String() string {
	return fmt.Sprintf("desc{fn=%d buf=%d len=%d caller=%d}", d.NextFn, d.Buf, d.Len, d.Caller)
}
