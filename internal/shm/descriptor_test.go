package shm

import (
	"bytes"
	"math"
	"testing"
)

// boundaryValues are the uint32 edge cases exercised for every descriptor
// field: zero, one, the byte boundaries where little-endian encoding rolls
// over, and the reserved sentinels (0xFFFFFFFF is the NoReply caller).
var boundaryValues = []uint32{
	0, 1, 0x7F, 0x80, 0xFF, 0x100, 0xFFFF, 0x10000,
	0x7FFFFFFF, 0x80000000, 0xFFFFFFFE, math.MaxUint32,
}

func TestDescriptorRoundTripBoundaries(t *testing.T) {
	for _, v := range boundaryValues {
		cases := []Descriptor{
			{NextFn: v},
			{Buf: v},
			{Len: v},
			{Caller: v},
			{NextFn: v, Buf: v, Len: v, Caller: v},
			{NextFn: v, Buf: ^v, Len: v ^ 0xA5A5A5A5, Caller: ^v},
		}
		for _, d := range cases {
			wire := d.Marshal()
			got, err := UnmarshalDescriptor(wire[:])
			if err != nil {
				t.Fatalf("UnmarshalDescriptor(%v): %v", d, err)
			}
			if got != d {
				t.Fatalf("round trip mismatch: sent %v, got %v", d, got)
			}
		}
	}
}

func TestDescriptorMarshalLayout(t *testing.T) {
	// The wire layout is little endian and field order is fixed: SPROXY's
	// eBPF program parses these offsets directly.
	d := Descriptor{NextFn: 0x04030201, Buf: 0x08070605, Len: 0x0C0B0A09, Caller: 0x100F0E0D}
	wire := d.Marshal()
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	if !bytes.Equal(wire[:], want) {
		t.Fatalf("wire layout = % x, want % x", wire[:], want)
	}
}

func TestDescriptorUnmarshalTruncated(t *testing.T) {
	d := Descriptor{NextFn: 7, Buf: 9, Len: 1024, Caller: 3}
	wire := d.Marshal()
	for n := 0; n < DescriptorSize; n++ {
		if _, err := UnmarshalDescriptor(wire[:n]); err == nil {
			t.Fatalf("UnmarshalDescriptor accepted %d-byte wire form", n)
		}
	}
	// Exactly DescriptorSize bytes and longer inputs both succeed; extra
	// bytes beyond the descriptor are ignored (descriptors ride at the
	// front of larger frames).
	long := append(wire[:], 0xDE, 0xAD)
	got, err := UnmarshalDescriptor(long)
	if err != nil {
		t.Fatalf("UnmarshalDescriptor with trailing bytes: %v", err)
	}
	if got != d {
		t.Fatalf("descriptor with trailing bytes = %v, want %v", got, d)
	}
}

// FuzzUnmarshalDescriptor checks that arbitrary wire input never panics,
// that the short-input error fires exactly below DescriptorSize, and that
// accepted inputs survive a Marshal/Unmarshal round trip bit-exactly.
func FuzzUnmarshalDescriptor(f *testing.F) {
	seed := Descriptor{NextFn: 1, Buf: 2, Len: 3, Caller: 4}.Marshal()
	f.Add(seed[:])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, DescriptorSize))
	f.Add(bytes.Repeat([]byte{0x00}, DescriptorSize-1))
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := UnmarshalDescriptor(b)
		if len(b) < DescriptorSize {
			if err == nil {
				t.Fatalf("accepted %d-byte input", len(b))
			}
			return
		}
		if err != nil {
			t.Fatalf("rejected %d-byte input: %v", len(b), err)
		}
		wire := d.Marshal()
		if !bytes.Equal(wire[:], b[:DescriptorSize]) {
			t.Fatalf("re-marshal mismatch: % x != % x", wire[:], b[:DescriptorSize])
		}
	})
}
