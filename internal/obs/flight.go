package obs

// The flight recorder is the node's black box: a bounded ring journal of
// the reason-attributed happenings every subsystem already counts —
// admission sheds, circuit-breaker flips, autoscaler decisions, cold-start
// resumes, mesh reconnects and drops, object-store tier transitions,
// leak-check failures, SLO breaches — so that when a tail-latency incident
// is noticed after the fact, the events *around* it are still addressable
// instead of having scrolled out of per-subsystem counters. Emission is a
// hook: subsystems that cannot import obs (internal/core, internal/shm)
// call a nil-checked function pointer, so a chain without a recorder pays
// one atomic load per event site and allocates nothing.
//
// Memory model: one cluster ring plus one ring per registered chain, each
// a preallocated []Event overwritten in place — steady-state emission
// allocates nothing (Event holds only string headers and integers; the
// emitting sites pass constant strings). A single atomic sequence numbers
// every event across all rings, so /events consumers paginate with a
// cursor exactly like the trace file exporter drains Seq-stamped traces:
// ?after=<seq> returns only newer events, stable across ring wrap.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds recorded by the flight recorder. Core subsystems emit the
// same strings through their hook (they cannot import obs); keep the two
// lists in sync.
const (
	// EventShed is an admission-control refusal; Reason carries the
	// OverloadError reason (overload, park_full, park_timeout,
	// pool_exhausted, payload_too_large). Core samples emission — the
	// first shed per reason, then every 64th — so Value carries the
	// cumulative per-reason shed count at emit time, not 1.
	EventShed = "shed"
	// EventCircuitOpen is a circuit-breaker flip to open; Subject is the
	// function, Value the reopen deadline in unix nanos.
	EventCircuitOpen = "circuit_open"
	// EventScale is one autoscaler decision; Subject is the function,
	// Reason the decision reason, Value packs from<<32|to replicas.
	EventScale = "scale"
	// EventColdStartResume is a parked request dispatched after capacity
	// resumed; Value is the park-to-dispatch latency in nanos.
	EventColdStartResume = "coldstart_resume"
	// EventMeshReconnect is a peer link re-established after a failure;
	// Subject is the peer name.
	EventMeshReconnect = "mesh_reconnect"
	// EventMeshDrop is a frame batch the mesh gave up on; Subject is the
	// peer, Reason the drop reason (backlog, conn_down, closed), Value the
	// frame count.
	EventMeshDrop = "mesh_drop"
	// EventObjSpill / EventObjReload are object-store tier transitions;
	// Value is the payload byte count.
	EventObjSpill  = "objstore_spill"
	EventObjReload = "objstore_reload"
	// EventLeakCheck is a failed leak heuristic or LeakCheck; Reason holds
	// the failure text.
	EventLeakCheck = "leak_check"
	// EventSLOBreach is a watchdog policy violation; Reason is the breach
	// kind (latency, error_rate), Value the measured quantity in nanos
	// (latency) or error rate in parts per million (error_rate).
	EventSLOBreach = "slo_breach"
	// EventBundleCaptured marks a diagnostic bundle write; Reason is the
	// bundle ID.
	EventBundleCaptured = "bundle_captured"
	// EventBundleFailed marks a diagnostic bundle write that failed;
	// Reason carries the error text.
	EventBundleFailed = "bundle_failed"
)

// Event is one flight-recorder entry. Events are small and self-contained:
// a global sequence number, a wall-clock stamp, the chain it belongs to
// ("" for cluster-scope events), a kind, and kind-specific subject/reason
// strings plus one integer payload.
type Event struct {
	Seq      uint64 `json:"seq"`
	UnixNano int64  `json:"unix_nano"`
	Chain    string `json:"chain,omitempty"`
	Kind     string `json:"kind"`
	Subject  string `json:"subject,omitempty"`
	Reason   string `json:"reason,omitempty"`
	Value    int64  `json:"value,omitempty"`
}

// Time returns the event's wall-clock stamp.
func (e Event) Time() time.Time { return time.Unix(0, e.UnixNano) }

// EventRing is one bounded journal: a preallocated ring overwritten in
// place. It is safe for concurrent use and never allocates after creation
// (snapshots allocate, appends do not).
type EventRing struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	n     int    // live entries (== len(buf) once wrapped)
	total uint64 // events ever appended
}

// NewEventRing creates a ring retaining up to capacity events.
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = defaultFlightCapacity
	}
	return &EventRing{buf: make([]Event, capacity)}
}

// Append records one event, evicting the oldest when full.
func (r *EventRing) Append(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.total++
	r.mu.Unlock()
}

// Total returns how many events were ever appended (not bounded by
// capacity) — the exposition consumers reconcile against.
func (r *EventRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap returns the ring's retention capacity.
func (r *EventRing) Cap() int { return len(r.buf) }

// Snapshot returns retained events with Seq > afterSeq, oldest first, up
// to limit (<= 0: all retained).
func (r *EventRing) Snapshot(afterSeq uint64, limit int) []Event {
	r.mu.Lock()
	out := make([]Event, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		e := r.buf[(start+i)%len(r.buf)]
		if e.Seq > afterSeq {
			out = append(out, e)
		}
	}
	r.mu.Unlock()
	if limit > 0 && len(out) > limit {
		out = out[:limit] // oldest first: the cursor advances through them
	}
	return out
}

const defaultFlightCapacity = 1024

// FlightRecorder journals events into one cluster-wide ring plus one ring
// per registered chain. Emit is the single entry point; it is zero-alloc
// and, when the recorder is disabled, a single atomic load.
type FlightRecorder struct {
	enabled atomic.Bool
	seq     atomic.Uint64
	cap     int

	cluster *EventRing
	mu      sync.RWMutex
	chains  map[string]*EventRing
}

// NewFlightRecorder creates an enabled recorder whose rings retain up to
// capacity events each (<= 0: the 1024 default).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = defaultFlightCapacity
	}
	r := &FlightRecorder{
		cap:     capacity,
		cluster: NewEventRing(capacity),
		chains:  make(map[string]*EventRing),
	}
	r.enabled.Store(true)
	return r
}

// SetEnabled toggles recording. While disabled, Emit returns after one
// atomic load without reading the clock or touching any ring.
func (r *FlightRecorder) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the recorder is recording.
func (r *FlightRecorder) Enabled() bool { return r.enabled.Load() }

// RegisterChain creates (or returns) the chain's dedicated ring, so its
// events stay addressable even when a noisy neighbour floods the cluster
// ring. Unregister on chain teardown.
func (r *FlightRecorder) RegisterChain(chain string) *EventRing {
	r.mu.Lock()
	defer r.mu.Unlock()
	ring, ok := r.chains[chain]
	if !ok {
		ring = NewEventRing(r.cap)
		r.chains[chain] = ring
	}
	return ring
}

// UnregisterChain drops the chain's ring (its events stay in the cluster
// ring until evicted).
func (r *FlightRecorder) UnregisterChain(chain string) {
	r.mu.Lock()
	delete(r.chains, chain)
	r.mu.Unlock()
}

// Emit journals one event into the cluster ring and, when chain names a
// registered chain, into that chain's ring. Safe on a nil receiver and
// free when disabled — emitting sites need no guards of their own.
func (r *FlightRecorder) Emit(chain, kind, subject, reason string, value int64) {
	if r == nil || !r.enabled.Load() {
		return
	}
	e := Event{
		Seq:      r.seq.Add(1),
		UnixNano: time.Now().UnixNano(),
		Chain:    chain,
		Kind:     kind,
		Subject:  subject,
		Reason:   reason,
		Value:    value,
	}
	r.cluster.Append(e)
	if chain == "" {
		return
	}
	r.mu.RLock()
	ring := r.chains[chain]
	r.mu.RUnlock()
	if ring != nil {
		ring.Append(e)
	}
}

// Total returns how many events the recorder ever journaled.
func (r *FlightRecorder) Total() uint64 { return r.cluster.Total() }

// Events returns retained events with Seq > afterSeq, oldest first, up to
// limit. chain "" reads the cluster ring; a chain name reads that chain's
// ring (nil when the chain is not registered).
func (r *FlightRecorder) Events(chain string, afterSeq uint64, limit int) []Event {
	ring := r.cluster
	if chain != "" {
		r.mu.RLock()
		ring = r.chains[chain]
		r.mu.RUnlock()
		if ring == nil {
			return nil
		}
	}
	return ring.Snapshot(afterSeq, limit)
}

// Chains returns the registered chain names, sorted.
func (r *FlightRecorder) Chains() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.chains))
	for n := range r.chains {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}
