package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// OTLP-compatible JSON export of completed traces. The obs package cannot
// import internal/core (the orchestrator sits between them), so chains
// publish their traces through the neutral SpanData/TraceData shapes and
// this file renders them in the OpenTelemetry OTLP/HTTP JSON encoding —
// resourceSpans → scopeSpans → spans, hex IDs, nanosecond-string
// timestamps — which any OTLP collector or trace viewer ingests directly.

// SpanData is one stage span in exporter-neutral form.
type SpanData struct {
	SpanID        uint64
	ParentID      uint64 // 0 for the root span
	Name          string // stage name ("request", "handler", "ring.wait", …)
	Function      string // function involved ("" when not applicable)
	Instance      uint32
	StartUnixNano int64
	EndUnixNano   int64
	Error         string
}

// TraceData is one completed trace in exporter-neutral form.
type TraceData struct {
	TraceIDHi uint64
	TraceIDLo uint64
	// Seq is the chain-local retention sequence number; exporters use it
	// as a high-water cursor to ship each trace exactly once.
	Seq    uint64
	Chain  string
	Caller uint32
	Error  string
	Tail   bool
	Spans  []SpanData
}

// otlp* mirror the OTLP/HTTP JSON schema (only the fields we emit).
type otlpDoc struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKV `json:"attributes"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID      string      `json:"traceId"`
	SpanID       string      `json:"spanId"`
	ParentSpanID string      `json:"parentSpanId,omitempty"`
	Name         string      `json:"name"`
	Kind         int         `json:"kind"`
	Start        string      `json:"startTimeUnixNano"`
	End          string      `json:"endTimeUnixNano"`
	Attributes   []otlpKV    `json:"attributes,omitempty"`
	Status       *otlpStatus `json:"status,omitempty"`
}

type otlpKV struct {
	Key   string    `json:"key"`
	Value otlpValue `json:"value"`
}

type otlpValue struct {
	StringValue string `json:"stringValue,omitempty"`
	IntValue    string `json:"intValue,omitempty"`
}

type otlpStatus struct {
	Code    int    `json:"code"`
	Message string `json:"message,omitempty"`
}

const (
	otlpSpanKindInternal = 1
	otlpStatusError      = 2
)

func strAttr(key, v string) otlpKV {
	return otlpKV{Key: key, Value: otlpValue{StringValue: v}}
}

func intAttr(key string, v uint64) otlpKV {
	return otlpKV{Key: key, Value: otlpValue{IntValue: fmt.Sprintf("%d", v)}}
}

// OTLPJSON renders completed traces as one OTLP/HTTP JSON document, one
// resourceSpans entry per chain (resource service.name "spright/<chain>").
// Empty input yields {"resourceSpans":[]}.
func OTLPJSON(traces []TraceData) ([]byte, error) {
	byChain := make(map[string][]TraceData)
	for _, t := range traces {
		byChain[t.Chain] = append(byChain[t.Chain], t)
	}
	chains := make([]string, 0, len(byChain))
	for c := range byChain {
		chains = append(chains, c)
	}
	sort.Strings(chains)

	doc := otlpDoc{ResourceSpans: []otlpResourceSpans{}}
	for _, chain := range chains {
		ss := otlpScopeSpans{Scope: otlpScope{Name: "spright.tracer"}}
		for _, t := range byChain[chain] {
			traceID := fmt.Sprintf("%016x%016x", t.TraceIDHi, t.TraceIDLo)
			for _, s := range t.Spans {
				sp := otlpSpan{
					TraceID: traceID,
					SpanID:  fmt.Sprintf("%016x", s.SpanID),
					Name:    s.Name,
					Kind:    otlpSpanKindInternal,
					Start:   fmt.Sprintf("%d", s.StartUnixNano),
					End:     fmt.Sprintf("%d", s.EndUnixNano),
				}
				if s.ParentID != 0 {
					sp.ParentSpanID = fmt.Sprintf("%016x", s.ParentID)
				}
				if s.Function != "" {
					sp.Attributes = append(sp.Attributes, strAttr("spright.function", s.Function))
				}
				sp.Attributes = append(sp.Attributes, intAttr("spright.instance", uint64(s.Instance)))
				if s.ParentID == 0 {
					sp.Attributes = append(sp.Attributes, intAttr("spright.caller", uint64(t.Caller)))
					if t.Tail {
						sp.Attributes = append(sp.Attributes, strAttr("spright.tail", "true"))
					}
				}
				if s.Error != "" {
					sp.Status = &otlpStatus{Code: otlpStatusError, Message: s.Error}
				}
				ss.Spans = append(ss.Spans, sp)
			}
		}
		doc.ResourceSpans = append(doc.ResourceSpans, otlpResourceSpans{
			Resource: otlpResource{
				Attributes: []otlpKV{strAttr("service.name", "spright/"+chain)},
			},
			ScopeSpans: []otlpScopeSpans{ss},
		})
	}
	return json.Marshal(doc)
}

// TraceFileExporter appends completed traces to a file, one OTLP JSON
// document per line (JSONL). It keeps a per-chain high-water Seq cursor so
// repeated Export calls over overlapping snapshots write each trace once.
type TraceFileExporter struct {
	mu      sync.Mutex
	f       *os.File
	cursors map[string]uint64
}

// NewTraceFileExporter opens (appending) the export file.
func NewTraceFileExporter(path string) (*TraceFileExporter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &TraceFileExporter{f: f, cursors: make(map[string]uint64)}, nil
}

// Export writes the traces not yet shipped (by per-chain Seq cursor) as one
// OTLP JSON line. Returns how many traces were written.
func (e *TraceFileExporter) Export(traces []TraceData) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fresh := make([]TraceData, 0, len(traces))
	for _, t := range traces {
		if t.Seq > e.cursors[t.Chain] {
			fresh = append(fresh, t)
		}
	}
	if len(fresh) == 0 {
		return 0, nil
	}
	b, err := OTLPJSON(fresh)
	if err != nil {
		return 0, err
	}
	if _, err := e.f.Write(append(b, '\n')); err != nil {
		return 0, err
	}
	// Advance cursors only after a successful write.
	for _, t := range fresh {
		if t.Seq > e.cursors[t.Chain] {
			e.cursors[t.Chain] = t.Seq
		}
	}
	return len(fresh), nil
}

// Close closes the export file.
func (e *TraceFileExporter) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.f.Close()
}
