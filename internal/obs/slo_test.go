package obs

import (
	"sync"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/metrics"
)

// fakeSLOSource simulates a chain whose cumulative histograms drift over
// time, so the monitor's window differencing can be checked exactly.
type fakeSLOSource struct {
	latency   *metrics.Histogram
	stages    map[string]*metrics.Histogram
	completed uint64
	failed    uint64
}

func (f *fakeSLOSource) source() SLOSource {
	return SLOSource{
		Latency: func() *metrics.Histogram {
			snap := metrics.NewHistogram()
			snap.Merge(f.latency)
			return snap
		},
		Stages: func() map[string]*metrics.Histogram {
			out := make(map[string]*metrics.Histogram, len(f.stages))
			for k, v := range f.stages {
				snap := metrics.NewHistogram()
				snap.Merge(v)
				out[k] = snap
			}
			return out
		},
		Counts: func() (uint64, uint64) { return f.completed, f.failed },
	}
}

func (f *fakeSLOSource) observe(latency float64, stage string, stageLat float64, fail bool) {
	f.latency.Observe(latency)
	f.stages[stage].Observe(stageLat)
	if fail {
		f.failed++
	} else {
		f.completed++
	}
}

func newFakeSLOSource(stages ...string) *fakeSLOSource {
	f := &fakeSLOSource{
		latency: metrics.NewHistogram(),
		stages:  make(map[string]*metrics.Histogram, len(stages)),
	}
	for _, s := range stages {
		f.stages[s] = metrics.NewHistogram()
	}
	return f
}

// TestSLOMonitorWindowForgetsOldTail: a slow burst followed by a fast
// window must report the fast window's percentiles, not the lifetime tail —
// the whole point of differencing cumulative histograms.
func TestSLOMonitorWindowForgetsOldTail(t *testing.T) {
	f := newFakeSLOSource("handler", "ring.wait")
	m := NewSLOMonitor(f.source(), time.Second, 100*time.Millisecond)
	t0 := time.Now()

	// Baseline tick first, then a slow era: 100 requests at 50ms.
	m.Tick(t0)
	for i := 0; i < 100; i++ {
		f.observe(0.050, "handler", 0.045, false)
	}
	rep := m.Report("c", t0.Add(time.Millisecond))
	if rep.P99Ms < 40 {
		t.Fatalf("slow-era window p99 %.1fms, want >= 40ms", rep.P99Ms)
	}

	// Fast era: ticks walk the slow snapshot out of the window, then 1000
	// requests at 1ms dominate the fresh window.
	for i := 0; i < 15; i++ {
		m.Tick(t0.Add(time.Duration(i+1) * 100 * time.Millisecond))
	}
	for i := 0; i < 1000; i++ {
		f.observe(0.001, "handler", 0.0009, false)
	}
	rep = m.Report("c", t0.Add(1600*time.Millisecond))
	if rep.P99Ms > 10 {
		t.Fatalf("fast-era window p99 %.1fms still polluted by the slow era, want <= 10ms", rep.P99Ms)
	}
	if rep.Requests != 1000 {
		t.Fatalf("window requests %d, want 1000", rep.Requests)
	}
}

func TestSLOMonitorDominantStage(t *testing.T) {
	f := newFakeSLOSource("handler", "ring.wait", "sproxy.redirect")
	m := NewSLOMonitor(f.source(), time.Second, 100*time.Millisecond)
	now := time.Now()
	for i := 0; i < 200; i++ {
		f.latency.Observe(0.020)
		f.completed++
		f.stages["handler"].Observe(0.002)
		f.stages["ring.wait"].Observe(0.017) // the tail lives here
		f.stages["sproxy.redirect"].Observe(0.0005)
	}
	rep := m.Report("c", now)
	if rep.Dominant != "ring.wait" {
		t.Fatalf("dominant stage %q, want ring.wait (stages: %+v)", rep.Dominant, rep.Stages)
	}
	if len(rep.Stages) != 3 {
		t.Fatalf("%d stages, want 3", len(rep.Stages))
	}
	if rep.Stages[0].Stage != "ring.wait" {
		t.Fatalf("stages not sorted by p99: %+v", rep.Stages)
	}
	var share float64
	for _, s := range rep.Stages {
		share += s.P99Share
	}
	if share < 0.99 || share > 1.01 {
		t.Fatalf("p99 shares sum to %.3f, want ~1", share)
	}
	if rep.Stages[0].P99Share < 0.5 {
		t.Fatalf("dominant stage share %.3f, want majority", rep.Stages[0].P99Share)
	}
}

func TestSLOMonitorErrorRateAndTrend(t *testing.T) {
	f := newFakeSLOSource("handler")
	m := NewSLOMonitor(f.source(), time.Second, 100*time.Millisecond)
	t0 := time.Now()
	m.Tick(t0) // baseline before the traffic it will be diffed against
	for i := 0; i < 90; i++ {
		f.observe(0.002, "handler", 0.002, false)
	}
	for i := 0; i < 10; i++ {
		f.observe(0.002, "handler", 0.002, true)
	}
	m.Tick(t0.Add(100 * time.Millisecond))
	rep := m.Report("c", t0.Add(150*time.Millisecond))
	if rep.ErrorRate < 0.09 || rep.ErrorRate > 0.11 {
		t.Fatalf("error rate %.3f, want ~0.10", rep.ErrorRate)
	}
	if rep.Failed != 10 {
		t.Fatalf("window failed %d, want 10", rep.Failed)
	}
	if len(rep.TrendP99Ms) == 0 {
		t.Fatal("p99 trend empty after ticks with traffic")
	}
}

// TestSLOMonitorConcurrentTickReport: Tick runs on the metrics-agent
// goroutine while Report serves /slo; the monitor must be race-free — in
// particular the shared p99 trend series, whose grow() is not atomic —
// and never hand Report a baseline that a concurrent Tick is overwriting.
func TestSLOMonitorConcurrentTickReport(t *testing.T) {
	f := newFakeSLOSource("handler")
	for i := 0; i < 100; i++ {
		f.observe(0.002, "handler", 0.002, false)
	}
	m := NewSLOMonitor(f.source(), 50*time.Millisecond, time.Millisecond)
	t0 := time.Now()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			m.Tick(t0.Add(time.Duration(i) * time.Millisecond))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			rep := m.Report("c", t0.Add(time.Duration(i)*time.Millisecond))
			if rep.Requests > 100 {
				t.Errorf("window requests %d, want <= 100", rep.Requests)
				return
			}
		}
	}()
	wg.Wait()
}

// TestSLOReportBeforeFirstTick: with no retained snapshot the report
// degrades to lifetime percentiles instead of zeros.
func TestSLOReportBeforeFirstTick(t *testing.T) {
	f := newFakeSLOSource("handler")
	m := NewSLOMonitor(f.source(), 0, 0)
	for i := 0; i < 50; i++ {
		f.observe(0.010, "handler", 0.009, false)
	}
	rep := m.Report("c", time.Now())
	if rep.Requests != 50 {
		t.Fatalf("lifetime requests %d, want 50", rep.Requests)
	}
	if rep.P99Ms < 8 {
		t.Fatalf("lifetime p99 %.2fms, want ~10ms", rep.P99Ms)
	}
}

func TestObservabilitySLOReports(t *testing.T) {
	o := New()
	f := newFakeSLOSource("handler")
	f.observe(0.005, "handler", 0.004, false)
	o.RegisterSLOMonitor("alpha", NewSLOMonitor(f.source(), 0, 0))
	reps := o.SLOReports(time.Now())
	if _, ok := reps["alpha"]; !ok {
		t.Fatalf("SLOReports missing alpha: %v", reps)
	}
	o.UnregisterSLOMonitor("alpha")
	if len(o.SLOReports(time.Now())) != 0 {
		t.Fatal("unregistered monitor still reported")
	}
}
