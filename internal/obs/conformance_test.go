package obs_test

// Exporter conformance: deploy real chains through the orchestrator, drive
// concurrent load, scrape /metrics over HTTP, and assert the exposition's
// counters equal the in-process sources exactly. Runs under -race in
// `make verify` — concurrent scrapes during load must be race-clean.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/core"
	"github.com/spright-go/spright/internal/orchestrator"
)

func echoSpec(name string, mode core.Mode) core.ChainSpec {
	return core.ChainSpec{
		Name: name,
		Mode: mode,
		Functions: []core.FunctionSpec{{
			Name: "echo",
			Handler: func(ctx *core.Ctx) error {
				b := ctx.Payload()
				for i := range b {
					if b[i] >= 'a' && b[i] <= 'z' {
						b[i] -= 32
					}
				}
				return nil
			},
		}},
		Routes: []core.RouteSpec{{From: "", To: []string{"echo"}}},
	}
}

// parseExposition indexes an exposition body: "name{labels}" -> value.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func scrape(t *testing.T, cluster *orchestrator.Cluster) (map[string]float64, string) {
	t.Helper()
	srv := httptest.NewServer(cluster.Observability().AdminMux())
	defer srv.Close()
	rec := httptest.NewRecorder()
	cluster.Observability().Registry().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q, want Prometheus text exposition 0.0.4", ct)
	}
	body := rec.Body.String()
	return parseExposition(t, body), body
}

func TestExporterConformance(t *testing.T) {
	cluster := orchestrator.NewCluster(1)
	evDep, err := cluster.Controller.DeployChain(echoSpec("conf_event", core.ModeEvent))
	if err != nil {
		t.Fatal(err)
	}
	plDep, err := cluster.Controller.DeployChain(echoSpec("conf_poll", core.ModePolling))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cluster.Controller.DeleteChain("conf_event")
		_ = cluster.Controller.DeleteChain("conf_poll")
	}()

	// Concurrent load on both chains while a scraper hammers /metrics —
	// the race-cleanliness half of the conformance contract.
	stopScraper := make(chan struct{})
	var scraperWG sync.WaitGroup
	scraperWG.Add(1)
	go func() {
		defer scraperWG.Done()
		for {
			select {
			case <-stopScraper:
				return
			default:
				rec := httptest.NewRecorder()
				cluster.Observability().Registry().ServeHTTP(rec,
					httptest.NewRequest("GET", "/metrics", nil))
				time.Sleep(time.Millisecond)
			}
		}
	}()
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				for _, d := range []*orchestrator.Deployment{evDep, plDep} {
					out, err := d.Gateway.Invoke(context.Background(), "",
						[]byte(fmt.Sprintf("req-%d-%d", w, i)))
					if err != nil {
						t.Errorf("invoke: %v", err)
						return
					}
					if !strings.HasPrefix(string(out), "REQ-") {
						t.Errorf("bad response %q", out)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopScraper)
	scraperWG.Wait()

	vals, body := scrape(t, cluster)

	// Counters in the exposition must equal the in-process sources exactly
	// (traffic is quiescent now).
	for _, d := range []*orchestrator.Deployment{evDep, plDep} {
		name := d.Chain.Name()
		gs := d.Gateway.Stats()
		for metric, want := range map[string]uint64{
			"spright_gateway_admitted_total":  gs.Admitted,
			"spright_gateway_completed_total": gs.Completed,
			"spright_gateway_rejected_total":  gs.Rejected,
			"spright_gateway_failed_total":    gs.Failed,
		} {
			key := fmt.Sprintf(`%s{chain="%s"}`, metric, name)
			got, ok := vals[key]
			if !ok {
				t.Fatalf("%s missing from exposition:\n%s", key, body)
			}
			if got != float64(want) {
				t.Errorf("%s = %v, want %d (Gateway.Stats)", key, got, want)
			}
		}
		if want := gs.Admitted; want != workers*perWorker {
			t.Errorf("%s admitted %d, want %d", name, want, workers*perWorker)
		}
		inuse := vals[fmt.Sprintf(`spright_shm_inuse_buffers{chain="%s"}`, name)]
		if got := float64(d.Chain.Pool().InUse()); inuse != got {
			t.Errorf("%s inuse gauge %v, want %v (Pool.InUse)", name, inuse, got)
		}
		lat := fmt.Sprintf(`spright_gateway_latency_seconds_count{chain="%s"}`, name)
		if got := vals[lat]; got != float64(gs.Completed) {
			t.Errorf("%s = %v, want %d", lat, got, gs.Completed)
		}
	}

	// Event-mode chain exposes EPROXY and SPROXY series; polling-mode chain
	// exposes ring series. Both merge into shared families.
	for _, want := range []string{
		`spright_eproxy_l3_packets_total{chain="conf_event"}`,
		`spright_sproxy_requests_total{chain="conf_event",function="echo",instance="1"}`,
		`spright_ring_enqueues_total{chain="conf_poll",instance="1"}`,
		`spright_socket_delivered_total{chain="conf_event",function="gateway",instance="0"}`,
		`spright_socket_delivered_total{chain="conf_poll",function="gateway",instance="0"}`,
		`spright_failures_total{chain="conf_event",kind="crash"}`,
		`spright_trace_sampled_total{chain="conf_event"}`,
	} {
		if _, ok := vals[want]; !ok {
			t.Errorf("exposition missing %s", want)
		}
	}
	// The EPROXY packet counter must equal admissions (one monitor run per
	// admitted request), and the SPROXY redirect count must equal the
	// instance socket's delivered count.
	if pk := vals[`spright_eproxy_l3_packets_total{chain="conf_event"}`]; pk != workers*perWorker {
		t.Errorf("eproxy packets %v, want %d", pk, workers*perWorker)
	}
	// One TYPE header per family even with two chains merged into it.
	if n := strings.Count(body, "# TYPE spright_gateway_admitted_total "); n != 1 {
		t.Errorf("%d TYPE headers for merged family, want 1", n)
	}

	// /healthz must be green, and /traces must carry both chains.
	srv := httptest.NewServer(cluster.Observability().AdminMux())
	defer srv.Close()
	rec := httptest.NewRecorder()
	cluster.Observability().HealthzHandler(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("/healthz %d: %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	cluster.Observability().TracesHandler(rec, httptest.NewRequest("GET", "/traces", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "conf_event") {
		t.Errorf("/traces %d missing chains: %s", rec.Code, rec.Body.String())
	}

	// Teardown drops a chain's series from the next scrape.
	if err := cluster.Controller.DeleteChain("conf_poll"); err != nil {
		t.Fatal(err)
	}
	vals2, body2 := scrape(t, cluster)
	if _, ok := vals2[`spright_gateway_admitted_total{chain="conf_poll"}`]; ok {
		t.Errorf("deleted chain still in exposition:\n%s", body2)
	}
	if _, ok := vals2[`spright_gateway_admitted_total{chain="conf_event"}`]; !ok {
		t.Errorf("surviving chain vanished from exposition:\n%s", body2)
	}
}

// TestHealthzReflectsCircuitBreaker: an instance with an open breaker must
// flip /healthz to 503 with the chain's check named.
func TestHealthzReflectsCircuitBreaker(t *testing.T) {
	cluster := orchestrator.NewCluster(1)
	spec := echoSpec("conf_health", core.ModeEvent)
	boom := true
	spec.Functions = append(spec.Functions, core.FunctionSpec{
		Name: "flaky",
		Handler: func(ctx *core.Ctx) error {
			if boom {
				return fmt.Errorf("boom")
			}
			return nil
		},
	})
	spec.Routes = []core.RouteSpec{{From: "", To: []string{"flaky"}}}
	spec.Health = core.HealthPolicy{ConsecutiveFailures: 3, OpenDuration: time.Minute}
	dep, err := cluster.Controller.DeployChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Controller.DeleteChain("conf_health")

	for i := 0; i < 5; i++ {
		_, _ = dep.Gateway.Invoke(context.Background(), "", []byte("x"))
	}
	rec := httptest.NewRecorder()
	cluster.Observability().HealthzHandler(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Fatalf("/healthz %d after breaker opened, want 503: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "conf_health") {
		t.Fatalf("/healthz failure does not name the chain: %s", rec.Body.String())
	}
}
