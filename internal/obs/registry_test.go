package obs

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/spright-go/spright/internal/metrics"
)

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Register("a", func() []Family {
		return []Family{
			CounterFamily("spright_test_total", "A counter.", L("chain", "c1"), 42),
			GaugeFamily("spright_test_gauge", "A gauge.", nil, 1.5),
		}
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP spright_test_total A counter.",
		"# TYPE spright_test_total counter",
		`spright_test_total{chain="c1"} 42`,
		"# TYPE spright_test_gauge gauge",
		"spright_test_gauge 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFamilyMergeAcrossCollectors(t *testing.T) {
	r := NewRegistry()
	r.Register("c1", func() []Family {
		return []Family{CounterFamily("spright_merge_total", "h", L("chain", "one"), 1)}
	})
	r.Register("c2", func() []Family {
		return []Family{CounterFamily("spright_merge_total", "h", L("chain", "two"), 2)}
	})
	fams := r.Gather()
	if len(fams) != 1 {
		t.Fatalf("families %d want 1 (merged)", len(fams))
	}
	if len(fams[0].Samples) != 2 {
		t.Fatalf("samples %d want 2", len(fams[0].Samples))
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// exactly one TYPE header for the merged family
	if n := strings.Count(b.String(), "# TYPE spright_merge_total"); n != 1 {
		t.Fatalf("TYPE headers %d want 1:\n%s", n, b.String())
	}
}

func TestUnregisterRemovesFamilies(t *testing.T) {
	r := NewRegistry()
	r.Register("gone", func() []Family {
		return []Family{CounterFamily("spright_gone_total", "h", nil, 1)}
	})
	r.Unregister("gone")
	if fams := r.Gather(); len(fams) != 0 {
		t.Fatalf("families after unregister: %v", fams)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Register("esc", func() []Family {
		return []Family{CounterFamily("spright_esc_total", "h",
			L("path", "a\"b\\c\nd"), 1)}
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

func TestInvalidMetricNameRejected(t *testing.T) {
	r := NewRegistry()
	r.Register("bad", func() []Family {
		return []Family{CounterFamily("bad name", "h", nil, 1)}
	})
	if err := r.WritePrometheus(&strings.Builder{}); err == nil {
		t.Fatal("invalid metric name must fail exposition")
	}
}

func TestSummaryFamilyRendering(t *testing.T) {
	h := metrics.NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	f := SummaryFamily("spright_lat_seconds", "h", L("chain", "c"), h, 0.5, 0.99)
	// 2 quantiles + _sum + _count
	if len(f.Samples) != 4 {
		t.Fatalf("samples %d want 4", len(f.Samples))
	}
	var b strings.Builder
	if err := writeFamily(&b, f); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`spright_lat_seconds{chain="c",quantile="0.5"}`,
		`spright_lat_seconds_count{chain="c"} 100`,
		`spright_lat_seconds_sum{chain="c"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestHealthzAggregation(t *testing.T) {
	o := New()
	o.RegisterHealthCheck("good", func() error { return nil })
	rec := httptest.NewRecorder()
	o.HealthzHandler(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthy node: code=%d body=%q", rec.Code, rec.Body.String())
	}

	o.RegisterHealthCheck("bad", func() error { return errors.New("pool leaked") })
	rec = httptest.NewRecorder()
	o.HealthzHandler(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "pool leaked") {
		t.Fatalf("unhealthy node: code=%d body=%q", rec.Code, rec.Body.String())
	}

	o.UnregisterHealthCheck("bad")
	rec = httptest.NewRecorder()
	o.HealthzHandler(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("after unregister: code=%d", rec.Code)
	}
}

func TestAdminMuxEndpoints(t *testing.T) {
	o := New()
	o.RegisterTraceSource("chainA", func(limit int) any { return []string{"t1"} })
	mux := o.AdminMux()

	for path, want := range map[string]string{
		"/metrics": "spright_go_goroutines",
		"/healthz": "ok",
		"/traces":  "chainA",
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s: code %d", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("%s missing %q:\n%s", path, want, rec.Body.String())
		}
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("pprof index: code %d", rec.Code)
	}
}
