package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Observability bundles the admin surface of one SPRIGHT node: the metrics
// registry, the health checks /healthz aggregates, the trace sources
// /traces drains, the flight recorder behind /events, and the SLO monitors
// behind /slo. Chains register on deploy and unregister on teardown.
type Observability struct {
	reg    *Registry
	flight *FlightRecorder

	mu        sync.Mutex
	checks    map[string]func() error
	traces    map[string]func(limit int) any
	spans     map[string]func(limit int) []TraceData
	slos      map[string]*SLOMonitor
	bundleDir string
}

// New creates an Observability with an empty registry plus the built-in
// process collector (goroutines, heap, GC) — the node-level counterpart of
// the per-chain collectors — and an enabled flight recorder.
func New() *Observability {
	o := &Observability{
		reg:    NewRegistry(),
		flight: NewFlightRecorder(0),
		checks: make(map[string]func() error),
		traces: make(map[string]func(limit int) any),
		spans:  make(map[string]func(limit int) []TraceData),
		slos:   make(map[string]*SLOMonitor),
	}
	o.reg.Register("process", processCollector)
	return o
}

// Registry returns the metrics registry (also the /metrics http.Handler).
func (o *Observability) Registry() *Registry { return o.reg }

// Flight returns the node's flight recorder (never nil).
func (o *Observability) Flight() *FlightRecorder { return o.flight }

// RegisterSLOMonitor installs the chain's sliding-window SLO monitor
// behind /slo.
func (o *Observability) RegisterSLOMonitor(chain string, m *SLOMonitor) {
	o.mu.Lock()
	o.slos[chain] = m
	o.mu.Unlock()
}

// UnregisterSLOMonitor removes a chain's SLO monitor.
func (o *Observability) UnregisterSLOMonitor(chain string) {
	o.mu.Lock()
	delete(o.slos, chain)
	o.mu.Unlock()
}

// SLOReports computes the current sliding-window report of every
// registered monitor, keyed by chain.
func (o *Observability) SLOReports(now time.Time) map[string]SLOReport {
	o.mu.Lock()
	ms := make(map[string]*SLOMonitor, len(o.slos))
	for k, v := range o.slos {
		ms[k] = v
	}
	o.mu.Unlock()
	out := make(map[string]SLOReport, len(ms))
	for chain, m := range ms {
		out[chain] = m.Report(chain, now)
	}
	return out
}

// SetBundleDir configures where diagnostic bundles live; /debug/bundle/
// serves the directory read-only. "" disables serving.
func (o *Observability) SetBundleDir(dir string) {
	o.mu.Lock()
	o.bundleDir = dir
	o.mu.Unlock()
}

// BundleDir returns the configured diagnostic-bundle directory.
func (o *Observability) BundleDir() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.bundleDir
}

// RegisterHealthCheck installs a named health check; /healthz fails when
// any registered check returns an error.
func (o *Observability) RegisterHealthCheck(name string, fn func() error) {
	o.mu.Lock()
	o.checks[name] = fn
	o.mu.Unlock()
}

// UnregisterHealthCheck removes a health check.
func (o *Observability) UnregisterHealthCheck(name string) {
	o.mu.Lock()
	delete(o.checks, name)
	o.mu.Unlock()
}

// RegisterTraceSource installs a named source of recent sampled traces;
// the returned value must be JSON-marshalable. limit bounds how many
// recent traces the source renders (<= 0: source default).
func (o *Observability) RegisterTraceSource(name string, fn func(limit int) any) {
	o.mu.Lock()
	o.traces[name] = fn
	o.mu.Unlock()
}

// UnregisterTraceSource removes a trace source.
func (o *Observability) UnregisterTraceSource(name string) {
	o.mu.Lock()
	delete(o.traces, name)
	o.mu.Unlock()
}

// RegisterSpanSource installs a named source of completed traces in
// exporter-neutral TraceData form — the feed behind /traces?format=otlp
// and the file exporter.
func (o *Observability) RegisterSpanSource(name string, fn func(limit int) []TraceData) {
	o.mu.Lock()
	o.spans[name] = fn
	o.mu.Unlock()
}

// UnregisterSpanSource removes a span source.
func (o *Observability) UnregisterSpanSource(name string) {
	o.mu.Lock()
	delete(o.spans, name)
	o.mu.Unlock()
}

// Health runs every registered check and returns the failures by name
// (empty when the node is healthy).
func (o *Observability) Health() map[string]error {
	o.mu.Lock()
	fns := make(map[string]func() error, len(o.checks))
	for k, v := range o.checks {
		fns[k] = v
	}
	o.mu.Unlock()
	out := make(map[string]error)
	for name, fn := range fns {
		if err := fn(); err != nil {
			out[name] = err
		}
	}
	return out
}

// Traces snapshots every registered trace source, rendering up to limit
// recent traces per source (<= 0: source default).
func (o *Observability) Traces(limit int) map[string]any {
	o.mu.Lock()
	fns := make(map[string]func(int) any, len(o.traces))
	for k, v := range o.traces {
		fns[k] = v
	}
	o.mu.Unlock()
	out := make(map[string]any, len(fns))
	for name, fn := range fns {
		out[name] = fn(limit)
	}
	return out
}

// CompletedTraces gathers up to limit completed traces per registered span
// source (<= 0: source default), for OTLP rendering and file export.
func (o *Observability) CompletedTraces(limit int) []TraceData {
	o.mu.Lock()
	fns := make([]func(int) []TraceData, 0, len(o.spans))
	for _, v := range o.spans {
		fns = append(fns, v)
	}
	o.mu.Unlock()
	var out []TraceData
	for _, fn := range fns {
		out = append(out, fn(limit)...)
	}
	return out
}

// HealthzHandler serves /healthz: 200 "ok" when every check passes, 503
// with one line per failing check otherwise.
func (o *Observability) HealthzHandler(w http.ResponseWriter, _ *http.Request) {
	failures := o.Health()
	if len(failures) == 0 {
		fmt.Fprintln(w, "ok")
		return
	}
	names := make([]string, 0, len(failures))
	for n := range failures {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s: %v\n", n, failures[n])
	}
	http.Error(w, strings.TrimRight(b.String(), "\n"), http.StatusServiceUnavailable)
}

// MaxTraceRenderLimit caps ?limit= on /traces at the largest trace ring
// any chain retains, so a huge requested limit degrades to "everything
// retained" instead of sizing allocations from client input.
const MaxTraceRenderLimit = 1024

// jsonError writes a JSON error body ({"error": ...}) with the status.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
	})
}

// parseLimit validates an optional ?limit= query parameter: absent is 0
// (source default), non-numeric or negative is a 400, anything above
// MaxTraceRenderLimit clamps to it.
func parseLimit(w http.ResponseWriter, r *http.Request) (int, bool) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return 0, true
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "invalid limit %q: not an integer", raw)
		return 0, false
	}
	if n < 0 {
		jsonError(w, http.StatusBadRequest, "invalid limit %d: must be >= 0", n)
		return 0, false
	}
	if n > MaxTraceRenderLimit {
		n = MaxTraceRenderLimit
	}
	return n, true
}

// TracesHandler serves /traces: by default the recent sampled traces of
// every source as one JSON object keyed by source (chain) name;
// ?format=otlp switches to one OTLP/HTTP JSON document of all completed
// spans. ?limit=N bounds the traces rendered per source (clamped to
// MaxTraceRenderLimit). Malformed limit or an unknown format is a 400
// with a JSON error, not a silent coercion.
func (o *Observability) TracesHandler(w http.ResponseWriter, r *http.Request) {
	if r == nil {
		r = &http.Request{URL: &url.URL{}}
	}
	limit, ok := parseLimit(w, r)
	if !ok {
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(o.Traces(limit)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case "otlp":
		b, err := OTLPJSON(o.CompletedTraces(limit))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(b)
	default:
		jsonError(w, http.StatusBadRequest,
			"unknown format %q: want \"json\" or \"otlp\"", format)
	}
}

// EventsHandler serves /events: the flight recorder's journal as JSON,
// seq-cursor paginated. ?chain=<name> reads one chain's ring (default:
// the cluster ring), ?after=<seq> returns only events newer than the
// cursor, ?limit=N bounds the page. The response carries next_after — the
// last returned seq — so consumers resume where they left off even across
// ring wrap.
func (o *Observability) EventsHandler(w http.ResponseWriter, r *http.Request) {
	limit, ok := parseLimit(w, r)
	if !ok {
		return
	}
	var after uint64
	if raw := r.URL.Query().Get("after"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "invalid after %q: not a sequence number", raw)
			return
		}
		after = n
	}
	chain := r.URL.Query().Get("chain")
	events := o.flight.Events(chain, after, limit)
	if events == nil && chain != "" {
		jsonError(w, http.StatusNotFound, "chain %q has no flight ring", chain)
		return
	}
	nextAfter := after
	if len(events) > 0 {
		nextAfter = events[len(events)-1].Seq
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{
		"enabled":    o.flight.Enabled(),
		"total":      o.flight.Total(),
		"chains":     o.flight.Chains(),
		"chain":      chain,
		"after":      after,
		"next_after": nextAfter,
		"events":     events,
	})
}

// SLOHandler serves /slo: every registered chain's sliding-window
// latency attribution and error rate as one JSON object keyed by chain.
func (o *Observability) SLOHandler(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(o.SLOReports(time.Now()))
}

// BundleHandler serves /debug/bundle/: a read-only listing of captured
// diagnostic bundles. 404 until a bundle dir is configured.
func (o *Observability) BundleHandler(w http.ResponseWriter, r *http.Request) {
	dir := o.BundleDir()
	if dir == "" {
		jsonError(w, http.StatusNotFound, "no bundle dir configured (-bundle-dir)")
		return
	}
	http.StripPrefix("/debug/bundle/", http.FileServer(http.Dir(dir))).ServeHTTP(w, r)
}

// StartFileExporter launches a background loop appending newly completed
// traces (across all span sources) to path as OTLP JSON lines every
// `every`. The returned stop function flushes once more and closes the
// file.
func (o *Observability) StartFileExporter(path string, every time.Duration) (func(), error) {
	exp, err := NewTraceFileExporter(path)
	if err != nil {
		return nil, err
	}
	if every <= 0 {
		every = time.Second
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				_, _ = exp.Export(o.CompletedTraces(0))
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stop)
			<-done
			_, _ = exp.Export(o.CompletedTraces(0))
			_ = exp.Close()
		})
	}, nil
}

// AdminMux builds the full admin endpoint catalog: /metrics (Prometheus
// exposition), /healthz, /traces (recent sampled traces as JSON) and the
// standard net/http/pprof tree under /debug/pprof/.
func (o *Observability) AdminMux() *http.ServeMux {
	mux := http.NewServeMux()
	o.Attach(mux)
	return mux
}

// Attach registers the admin endpoints on an existing mux, so a server can
// serve them alongside application routes.
func (o *Observability) Attach(mux *http.ServeMux) {
	mux.Handle("/metrics", o.reg)
	mux.HandleFunc("/healthz", o.HealthzHandler)
	mux.HandleFunc("/traces", o.TracesHandler)
	mux.HandleFunc("/events", o.EventsHandler)
	mux.HandleFunc("/slo", o.SLOHandler)
	mux.HandleFunc("/debug/bundle/", o.BundleHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// processCollector reports node-process vitals alongside the dataplane
// metrics.
func processCollector() []Family {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return []Family{
		GaugeFamily("spright_go_goroutines", "Number of live goroutines.", nil,
			float64(runtime.NumGoroutine())),
		GaugeFamily("spright_go_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
			float64(ms.HeapAlloc)),
		CounterFamily("spright_go_gc_cycles_total", "Completed GC cycles.", nil,
			float64(ms.NumGC)),
	}
}
