// Package obs is SPRIGHT's unified observability layer: a metrics
// registry every subsystem registers into (gateway admission/completion,
// EPROXY L3 and failure maps, SPROXY per-function invocation counts,
// per-socket delivery counters, shared-memory pool occupancy, ring
// occupancy), rendered as Prometheus text exposition, plus the admin
// surface (/metrics, /healthz, /traces, pprof) the §3.3 metrics server
// scrapes. The registry is pull-based: collectors are closures over live
// counters, so a scrape always observes the current atomic values and the
// dataplane pays nothing between scrapes.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/spright-go/spright/internal/metrics"
)

// Type is the Prometheus metric type of a family.
type Type int

// Metric types, mapping onto Prometheus exposition TYPE lines.
const (
	Counter Type = iota
	Gauge
	Summary
	Untyped
)

func (t Type) String() string {
	switch t {
	case Counter:
		return "counter"
	case Gauge:
		return "gauge"
	case Summary:
		return "summary"
	default:
		return "untyped"
	}
}

// Label is one name/value pair of a sample's label set.
type Label struct {
	K, V string
}

// L is shorthand for building a label set in collector closures.
func L(kv ...string) []Label {
	if len(kv)%2 != 0 {
		panic("obs: L requires key/value pairs")
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{K: kv[i], V: kv[i+1]})
	}
	return out
}

// Sample is one exposition line within a family. Suffix ("_sum", "_count")
// distinguishes the synthetic series of a summary; it is empty for plain
// counters and gauges.
type Sample struct {
	Suffix string
	Labels []Label
	Value  float64
}

// Family is one named metric with its samples — the unit collectors emit.
type Family struct {
	Name    string
	Help    string
	Type    Type
	Samples []Sample
}

// CollectorFunc produces the families of one subsystem at scrape time.
type CollectorFunc func() []Family

// Registry multiplexes collectors into one exposition document. Collectors
// are keyed by a registration name so a chain teardown can unregister its
// collectors without identity games.
type Registry struct {
	mu         sync.Mutex
	collectors map[string]CollectorFunc
	order      []string
	scrapes    uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{collectors: make(map[string]CollectorFunc)}
}

// Register installs (or replaces) the collector under key. Registration
// order is preserved for same-name family merging; a replaced key keeps
// its original position.
func (r *Registry) Register(key string, c CollectorFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.collectors[key]; !ok {
		r.order = append(r.order, key)
	}
	r.collectors[key] = c
}

// Unregister removes the collector under key (a no-op when absent).
func (r *Registry) Unregister(key string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.collectors[key]; !ok {
		return
	}
	delete(r.collectors, key)
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// Scrapes returns how many expositions the registry has rendered.
func (r *Registry) Scrapes() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.scrapes
}

// Gather runs every collector and merges same-name families (collectors of
// different chains emit into one family, distinguished by labels). Families
// come back sorted by name so the exposition is deterministic.
func (r *Registry) Gather() []Family {
	r.mu.Lock()
	fns := make([]CollectorFunc, 0, len(r.order))
	for _, k := range r.order {
		fns = append(fns, r.collectors[k])
	}
	r.scrapes++
	r.mu.Unlock()

	byName := make(map[string]*Family)
	var names []string
	for _, fn := range fns {
		for _, f := range fn() {
			if got, ok := byName[f.Name]; ok {
				got.Samples = append(got.Samples, f.Samples...)
				continue
			}
			cp := f
			cp.Samples = append([]Sample(nil), f.Samples...)
			byName[f.Name] = &cp
			names = append(names, f.Name)
		}
	}
	sort.Strings(names)
	out := make([]Family, 0, len(names))
	for _, n := range names {
		out = append(out, *byName[n])
	}
	return out
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers followed by one line per
// sample, label values escaped per the spec.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.Gather() {
		if err := writeFamily(w, f); err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP makes the registry the /metrics endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	_, _ = io.WriteString(w, b.String())
}

func writeFamily(w io.Writer, f Family) error {
	if !validName(f.Name) {
		return fmt.Errorf("obs: invalid metric name %q", f.Name)
	}
	if f.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
		return err
	}
	for _, s := range f.Samples {
		if err := writeSample(w, f.Name, s); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(w io.Writer, name string, s Sample) error {
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(s.Suffix)
	if len(s.Labels) > 0 {
		b.WriteByte('{')
		for i, l := range s.Labels {
			if !validName(l.K) {
				return fmt.Errorf("obs: invalid label name %q on %s", l.K, name)
			}
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.K)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.V))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(s.Value))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// formatValue renders a sample value: integral values (the common case —
// uint64 counters) print without an exponent so scrapes diff cleanly.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// validName checks the Prometheus metric/label name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		letter := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !letter && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// CounterFamily builds a single-sample counter family.
func CounterFamily(name, help string, labels []Label, v float64) Family {
	return Family{Name: name, Help: help, Type: Counter,
		Samples: []Sample{{Labels: labels, Value: v}}}
}

// GaugeFamily builds a single-sample gauge family.
func GaugeFamily(name, help string, labels []Label, v float64) Family {
	return Family{Name: name, Help: help, Type: Gauge,
		Samples: []Sample{{Labels: labels, Value: v}}}
}

// SummaryFamily renders a latency histogram as a Prometheus summary:
// quantile series plus _sum and _count, all sharing the base label set.
func SummaryFamily(name, help string, labels []Label, h *metrics.Histogram, quantiles ...float64) Family {
	if len(quantiles) == 0 {
		quantiles = []float64{0.5, 0.95, 0.99}
	}
	f := Family{Name: name, Help: help, Type: Summary}
	for _, q := range quantiles {
		ls := make([]Label, 0, len(labels)+1)
		ls = append(ls, labels...)
		ls = append(ls, Label{K: "quantile", V: strconv.FormatFloat(q, 'g', -1, 64)})
		f.Samples = append(f.Samples, Sample{Labels: ls, Value: h.Quantile(q)})
	}
	n := float64(h.Count())
	f.Samples = append(f.Samples,
		Sample{Suffix: "_sum", Labels: labels, Value: h.Mean() * n},
		Sample{Suffix: "_count", Labels: labels, Value: n},
	)
	return f
}
