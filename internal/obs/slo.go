package obs

// Tail-latency attribution and SLO evaluation. The tracer already keeps
// cumulative per-stage histograms (ring.wait, handler, gateway.drain, …)
// and the gateway a cumulative end-to-end latency histogram; what they
// cannot answer is "what is the p99 *now*". The SLOMonitor turns those
// cumulative signals into sliding-window percentiles by snapshotting them
// on the chain's scrape-interval agent tick and differencing the newest
// snapshot against the one just older than the window
// (metrics.Histogram.Sub) — the classic two-cumulative-counters window
// without a second set of per-request observations. /slo renders the
// result per chain: window p50/p99/p999 end to end and per stage, the
// error rate, and a "p99 budget breakdown" naming the stage that dominates
// the tail.

import (
	"math"
	"sync"
	"time"

	"github.com/spright-go/spright/internal/metrics"
)

// SLOSource exposes one chain's cumulative latency signals to the monitor.
// All three funcs must be safe for concurrent use (they snapshot live
// counters, like registry collectors do).
type SLOSource struct {
	// Latency returns the cumulative end-to-end latency histogram.
	Latency func() *metrics.Histogram
	// Stages returns the cumulative per-stage duration histograms.
	Stages func() map[string]*metrics.Histogram
	// Counts returns cumulative completed and failed request counts.
	Counts func() (completed, failed uint64)
}

// sloSnap is one cumulative snapshot taken at a tick.
type sloSnap struct {
	at        time.Time
	latency   *metrics.Histogram
	stages    map[string]*metrics.Histogram
	completed uint64
	failed    uint64
}

// SLOMonitor maintains the sliding-window view of one chain.
type SLOMonitor struct {
	src    SLOSource
	window time.Duration
	start  time.Time

	mu    sync.Mutex // guards the snapshot ring and trend (TimeSeries has no internal locking)
	snaps []sloSnap  // ring, oldest overwritten
	next  int
	n     int
	trend *metrics.TimeSeries // window p99 (ms) over time, ModeMean
}

// NewSLOMonitor builds a monitor over src with the given sliding window.
// The snapshot ring holds enough ticks to always span the window at the
// given tick interval (both <= 0 fall back to 10s window, 500ms ticks).
func NewSLOMonitor(src SLOSource, window, tick time.Duration) *SLOMonitor {
	if window <= 0 {
		window = 10 * time.Second
	}
	if tick <= 0 {
		tick = 500 * time.Millisecond
	}
	depth := int(window/tick) + 2
	if depth < 4 {
		depth = 4
	}
	if depth > 4096 {
		depth = 4096
	}
	// Trend buckets at tick resolution, floored at 100ms so a fast agent
	// does not balloon the series.
	bucket := tick.Seconds()
	if bucket < 0.1 {
		bucket = 0.1
	}
	return &SLOMonitor{
		src:    src,
		window: window,
		start:  time.Now(),
		snaps:  make([]sloSnap, depth),
		trend:  metrics.NewTimeSeries(bucket, metrics.ModeMean),
	}
}

// Window returns the monitor's sliding window.
func (m *SLOMonitor) Window() time.Duration { return m.window }

// snapshot captures the source's cumulative state.
func (m *SLOMonitor) snapshot(now time.Time) sloSnap {
	s := sloSnap{at: now}
	if m.src.Latency != nil {
		s.latency = m.src.Latency()
	}
	if m.src.Stages != nil {
		s.stages = m.src.Stages()
	}
	if m.src.Counts != nil {
		s.completed, s.failed = m.src.Counts()
	}
	return s
}

// Tick records one snapshot (called from the chain's metrics-agent cadence
// or a test) and feeds the p99 trend series. The trend observation stays
// inside the critical section: Report reads trend concurrently from the
// /slo handler, and the snapshot histograms are immutable copies, so the
// Sub under the lock is cheap and race-free.
func (m *SLOMonitor) Tick(now time.Time) {
	s := m.snapshot(now)
	m.mu.Lock()
	m.snaps[m.next] = s
	m.next = (m.next + 1) % len(m.snaps)
	if m.n < len(m.snaps) {
		m.n++
	}
	base := m.baselineLocked(now)
	if s.latency != nil {
		win := s.latency.Sub(baseLatency(base))
		if win.Count() > 0 {
			m.trend.Observe(now.Sub(m.start).Seconds(), win.Quantile(0.99)*1e3)
		}
	}
	m.mu.Unlock()
}

func baseLatency(base *sloSnap) *metrics.Histogram {
	if base == nil {
		return nil
	}
	return base.latency
}

// baselineLocked returns the newest retained snapshot at least window old
// (falling back to the oldest retained one), or nil when none exists yet.
// Callers hold mu.
func (m *SLOMonitor) baselineLocked(now time.Time) *sloSnap {
	var best *sloSnap
	for i := 0; i < m.n; i++ {
		idx := m.next - 1 - i
		for idx < 0 {
			idx += len(m.snaps)
		}
		s := &m.snaps[idx]
		if s.at.IsZero() {
			continue
		}
		best = s
		if now.Sub(s.at) >= m.window {
			break
		}
	}
	return best
}

// StageSLO is one stage's share of the window tail.
type StageSLO struct {
	Stage  string  `json:"stage"`
	Count  uint64  `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	// P99Share is this stage's fraction of the summed per-stage p99 —
	// the "p99 budget breakdown" of the window.
	P99Share float64 `json:"p99_share"`
}

// SLOReport is the sliding-window view rendered at /slo for one chain.
type SLOReport struct {
	Chain         string     `json:"chain"`
	WindowSeconds float64    `json:"window_seconds"`
	Requests      uint64     `json:"requests"`
	Failed        uint64     `json:"failed"`
	ErrorRate     float64    `json:"error_rate"`
	P50Ms         float64    `json:"p50_ms"`
	P99Ms         float64    `json:"p99_ms"`
	P999Ms        float64    `json:"p999_ms"`
	Dominant      string     `json:"p99_dominant_stage,omitempty"`
	Stages        []StageSLO `json:"stages,omitempty"`
	TrendP99Ms    []float64  `json:"p99_trend_ms,omitempty"`
}

// Report computes the current sliding-window view: a fresh snapshot
// differenced against the retained baseline. Before the first tick the
// report covers the chain's whole lifetime.
func (m *SLOMonitor) Report(chain string, now time.Time) SLOReport {
	cur := m.snapshot(now)
	m.mu.Lock()
	var base *sloSnap
	if b := m.baselineLocked(now); b != nil {
		// Copy out of the ring: a concurrent Tick may overwrite the slot.
		// The snap's histograms are immutable snapshots, so a shallow copy
		// is enough.
		cp := *b
		base = &cp
	}
	m.mu.Unlock()

	rep := SLOReport{Chain: chain, WindowSeconds: m.window.Seconds()}
	if base != nil {
		if span := now.Sub(base.at); span > 0 {
			rep.WindowSeconds = span.Seconds()
		}
		rep.Requests = sat(cur.completed, base.completed) + sat(cur.failed, base.failed)
		rep.Failed = sat(cur.failed, base.failed)
	} else {
		rep.Requests = cur.completed + cur.failed
		rep.Failed = cur.failed
	}
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Failed) / float64(rep.Requests)
	}
	if cur.latency != nil {
		win := cur.latency.Sub(baseLatency(base))
		rep.P50Ms = win.Quantile(0.50) * 1e3
		rep.P99Ms = win.Quantile(0.99) * 1e3
		rep.P999Ms = win.Quantile(0.999) * 1e3
	}

	var budget float64
	for stage, h := range cur.stages {
		var old *metrics.Histogram
		if base != nil {
			old = base.stages[stage]
		}
		win := h.Sub(old)
		if win.Count() == 0 {
			continue
		}
		s := StageSLO{
			Stage:  stage,
			Count:  win.Count(),
			P50Ms:  win.Quantile(0.50) * 1e3,
			P99Ms:  win.Quantile(0.99) * 1e3,
			P999Ms: win.Quantile(0.999) * 1e3,
		}
		budget += s.P99Ms
		rep.Stages = append(rep.Stages, s)
	}
	// Deterministic order: biggest p99 first; the head names the tail.
	sortStages(rep.Stages)
	if budget > 0 {
		for i := range rep.Stages {
			rep.Stages[i].P99Share = rep.Stages[i].P99Ms / budget
		}
		rep.Dominant = rep.Stages[0].Stage
	}

	m.mu.Lock()
	pts := m.trend.Points()
	m.mu.Unlock()
	if len(pts) > 0 {
		const keep = 32
		if len(pts) > keep {
			pts = pts[len(pts)-keep:]
		}
		rep.TrendP99Ms = make([]float64, 0, len(pts))
		for _, p := range pts {
			rep.TrendP99Ms = append(rep.TrendP99Ms, round3(p.V))
		}
	}
	return rep
}

func sat(a, b uint64) uint64 {
	if a <= b {
		return 0
	}
	return a - b
}

func round3(v float64) float64 { return math.Round(v*1e3) / 1e3 }

func sortStages(ss []StageSLO) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0; j-- {
			a, b := &ss[j-1], &ss[j]
			if a.P99Ms > b.P99Ms || (a.P99Ms == b.P99Ms && a.Stage < b.Stage) {
				break
			}
			*a, *b = *b, *a
		}
	}
}
