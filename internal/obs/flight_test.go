package obs

// Flight-recorder conformance suite (run race-clean via `make race-flight`):
// concurrent emitters stay safe, memory stays bounded by the ring capacity,
// cursor pagination is stable across ring wrap, and the /events handler's
// exposition reconciles with the emitted counts.

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestFlightRingBoundedAndOrdered(t *testing.T) {
	r := NewFlightRecorder(8)
	ring := r.RegisterChain("c")
	for i := 0; i < 100; i++ {
		r.Emit("c", EventShed, "fn", "overload", int64(i))
	}
	if got := r.Total(); got != 100 {
		t.Fatalf("Total=%d, want 100", got)
	}
	if got := ring.Total(); got != 100 {
		t.Fatalf("chain ring Total=%d, want 100", got)
	}
	evs := r.Events("c", 0, 0)
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want ring capacity 8", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events not oldest-first by seq: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	// The retained window is the newest 8: values 92..99.
	if evs[0].Value != 92 || evs[7].Value != 99 {
		t.Fatalf("retained window [%d..%d], want [92..99]", evs[0].Value, evs[7].Value)
	}
}

func TestFlightConcurrentEmitters(t *testing.T) {
	const (
		emitters = 8
		perG     = 500
	)
	r := NewFlightRecorder(64)
	r.RegisterChain("c")
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Emit("c", EventShed, "fn", "overload", int64(g))
			}
		}(g)
	}
	wg.Wait()
	if got := r.Total(); got != emitters*perG {
		t.Fatalf("Total=%d, want %d", got, emitters*perG)
	}
	evs := r.Events("c", 0, 0)
	if len(evs) != 64 {
		t.Fatalf("retained %d, want capacity 64", len(evs))
	}
	seen := make(map[uint64]bool, len(evs))
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// TestFlightCursorAcrossWrap drains the journal through a paginating cursor
// while new events keep wrapping the ring: every page must be strictly
// newer than the cursor, with no duplicates, exactly as a /events consumer
// polling ?after=N would see.
func TestFlightCursorAcrossWrap(t *testing.T) {
	r := NewFlightRecorder(16)
	r.RegisterChain("c")
	var after uint64
	var got []uint64
	for round := 0; round < 10; round++ {
		// Emit a burst larger than a page but smaller than the ring, so the
		// cursor can keep up while the ring wraps many times over the run.
		for i := 0; i < 12; i++ {
			r.Emit("c", EventScale, "fn", "load", int64(round))
		}
		for {
			page := r.Events("c", after, 5)
			if len(page) == 0 {
				break
			}
			for _, e := range page {
				if e.Seq <= after {
					t.Fatalf("page returned seq %d <= cursor %d", e.Seq, after)
				}
				after = e.Seq
				got = append(got, e.Seq)
			}
		}
	}
	if len(got) != 120 {
		t.Fatalf("cursor drained %d events, want all 120", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("cursor missed events between seq %d and %d", got[i-1], got[i])
		}
	}
}

func TestFlightDisabledAndNil(t *testing.T) {
	var nilRec *FlightRecorder
	nilRec.Emit("c", EventShed, "", "", 0) // must not panic

	r := NewFlightRecorder(4)
	r.RegisterChain("c")
	r.SetEnabled(false)
	r.Emit("c", EventShed, "", "", 0)
	if r.Total() != 0 {
		t.Fatal("disabled recorder journaled an event")
	}
	r.SetEnabled(true)
	r.Emit("c", EventShed, "", "", 0)
	if r.Total() != 1 {
		t.Fatal("re-enabled recorder did not journal")
	}
}

func TestFlightUnregisteredChainClusterOnly(t *testing.T) {
	r := NewFlightRecorder(4)
	r.Emit("ghost", EventShed, "", "", 0)
	if got := len(r.Events("", 0, 0)); got != 1 {
		t.Fatalf("cluster ring has %d events, want 1", got)
	}
	if evs := r.Events("ghost", 0, 0); evs != nil {
		t.Fatalf("unregistered chain returned %d events, want nil", len(evs))
	}
}

// TestEventsHandlerConformance reconciles the HTTP exposition against the
// emitted counts and exercises the cursor + error paths.
func TestEventsHandlerConformance(t *testing.T) {
	o := New()
	o.Flight().RegisterChain("c")
	const emitted = 40
	for i := 0; i < emitted; i++ {
		o.Flight().Emit("c", EventShed, "fn", "overload", int64(i))
	}

	get := func(url string) (int, map[string]any) {
		rec := httptest.NewRecorder()
		o.EventsHandler(rec, httptest.NewRequest("GET", url, nil))
		var body map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: bad JSON: %v\n%s", url, err, rec.Body.String())
		}
		return rec.Code, body
	}

	code, body := get("/events?chain=c")
	if code != 200 {
		t.Fatalf("/events?chain=c -> %d", code)
	}
	if total := body["total"].(float64); total != emitted {
		t.Fatalf("total=%v, want %d", total, emitted)
	}
	if n := len(body["events"].([]any)); n != emitted {
		t.Fatalf("returned %d events, want %d", n, emitted)
	}

	// Cursor pagination: drain in pages of 7 and count every event once.
	var after float64
	drained := 0
	for {
		code, body = get(fmt.Sprintf("/events?chain=c&after=%d&limit=7", int(after)))
		if code != 200 {
			t.Fatalf("paged GET -> %d", code)
		}
		evs := body["events"].([]any)
		if len(evs) == 0 {
			break
		}
		drained += len(evs)
		next := body["next_after"].(float64)
		if next <= after {
			t.Fatalf("next_after did not advance: %v -> %v", after, next)
		}
		after = next
	}
	if drained != emitted {
		t.Fatalf("cursor drained %d, want %d", drained, emitted)
	}

	// Error paths: malformed cursor/limit are 400s, an unknown chain 404.
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/events?after=banana", 400},
		{"/events?limit=banana", 400},
		{"/events?limit=-3", 400},
		{"/events?chain=ghost", 404},
	} {
		rec := httptest.NewRecorder()
		o.EventsHandler(rec, httptest.NewRequest("GET", tc.url, nil))
		if rec.Code != tc.code {
			t.Fatalf("GET %s -> %d, want %d", tc.url, rec.Code, tc.code)
		}
		if !strings.Contains(rec.Body.String(), `"error"`) {
			t.Fatalf("GET %s: no JSON error body: %s", tc.url, rec.Body.String())
		}
	}
}

// TestTracesHandlerInputValidation: malformed query input is a 400 with a
// JSON error, never a silent coercion; oversized limits clamp.
func TestTracesHandlerInputValidation(t *testing.T) {
	o := New()
	gotLimit := -1
	o.RegisterTraceSource("c", func(limit int) any {
		gotLimit = limit
		return map[string]int{}
	})

	for _, tc := range []struct{ url, wantErr string }{
		{"/traces?limit=abc", "not an integer"},
		{"/traces?limit=-1", "must be >= 0"},
		{"/traces?format=xml", "unknown format"},
		{"/traces?format=OTLP", "unknown format"},
	} {
		rec := httptest.NewRecorder()
		o.TracesHandler(rec, httptest.NewRequest("GET", tc.url, nil))
		if rec.Code != 400 {
			t.Fatalf("GET %s -> %d, want 400", tc.url, rec.Code)
		}
		var body map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("GET %s: non-JSON error body %q", tc.url, rec.Body.String())
		}
		if !strings.Contains(body["error"], tc.wantErr) {
			t.Fatalf("GET %s: error %q, want %q", tc.url, body["error"], tc.wantErr)
		}
	}

	// A limit beyond the render cap clamps instead of erroring.
	rec := httptest.NewRecorder()
	o.TracesHandler(rec, httptest.NewRequest("GET",
		fmt.Sprintf("/traces?limit=%d", MaxTraceRenderLimit*10), nil))
	if rec.Code != 200 {
		t.Fatalf("oversized limit -> %d, want 200", rec.Code)
	}
	if gotLimit != MaxTraceRenderLimit {
		t.Fatalf("source saw limit %d, want clamp to %d", gotLimit, MaxTraceRenderLimit)
	}
}
