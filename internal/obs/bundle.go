package obs

// Diagnostic bundles: when the SLO watchdog trips, the evidence — the
// flight events and tail traces around the breach, the full stats
// snapshot, and process profiles — is written to disk *at breach time*,
// before the bounded rings evict it. A bundle is one directory under the
// configured bundle dir, served read-only at /debug/bundle/.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync/atomic"
	"time"
)

// BundleSpec describes one diagnostic bundle capture.
type BundleSpec struct {
	// Dir is the parent directory; the bundle is written to Dir/ID/.
	Dir string
	// ID names the bundle (e.g. "<chain>-<unixnano>").
	ID string
	// Meta is marshaled to meta.json: the why (chain, breach kind,
	// measured vs target, timestamps).
	Meta any
	// Events (events.json) are the flight events surrounding the breach.
	Events []Event
	// Traces (traces.json) are the retained traces, trace IDs included.
	Traces any
	// Stats (stats.json) is the full gateway/chain stats snapshot.
	Stats any
	// SLO (slo.json) is the window report that tripped the watchdog.
	SLO any
	// CPUProfile, when > 0, samples a CPU profile for that long into
	// cpu.pprof (skipped if another CPU profile is already running).
	CPUProfile time.Duration
}

// cpuProfileBusy serializes CPU profiling: the runtime supports one
// profile at a time process-wide, and a watchdog may trip on several
// chains at once.
var cpuProfileBusy atomic.Bool

// WriteBundle captures spec into Dir/ID, returning the bundle directory.
// Profile failures are recorded in profile_errors.txt rather than failing
// the bundle: partial evidence beats none.
func WriteBundle(spec BundleSpec) (string, error) {
	if spec.Dir == "" {
		return "", fmt.Errorf("obs: bundle dir not configured")
	}
	dir := filepath.Join(spec.Dir, spec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var profErrs []string
	writeJSON := func(name string, v any) {
		if v == nil {
			return
		}
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			profErrs = append(profErrs, fmt.Sprintf("%s: %v", name, err))
			return
		}
		if err := os.WriteFile(filepath.Join(dir, name), append(b, '\n'), 0o644); err != nil {
			profErrs = append(profErrs, fmt.Sprintf("%s: %v", name, err))
		}
	}
	writeJSON("meta.json", spec.Meta)
	if spec.Events != nil {
		writeJSON("events.json", spec.Events)
	}
	writeJSON("traces.json", spec.Traces)
	writeJSON("stats.json", spec.Stats)
	writeJSON("slo.json", spec.SLO)

	// Goroutine dump (debug=2: full stacks, the "what was everyone doing"
	// view) and a heap profile.
	if f, err := os.Create(filepath.Join(dir, "goroutine.txt")); err == nil {
		if p := pprof.Lookup("goroutine"); p != nil {
			_ = p.WriteTo(f, 2)
		}
		_ = f.Close()
	} else {
		profErrs = append(profErrs, fmt.Sprintf("goroutine.txt: %v", err))
	}
	if f, err := os.Create(filepath.Join(dir, "heap.pprof")); err == nil {
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			profErrs = append(profErrs, fmt.Sprintf("heap.pprof: %v", werr))
		}
		_ = f.Close()
	} else {
		profErrs = append(profErrs, fmt.Sprintf("heap.pprof: %v", err))
	}

	if spec.CPUProfile > 0 {
		if cpuProfileBusy.CompareAndSwap(false, true) {
			if f, err := os.Create(filepath.Join(dir, "cpu.pprof")); err == nil {
				if serr := pprof.StartCPUProfile(f); serr == nil {
					time.Sleep(spec.CPUProfile)
					pprof.StopCPUProfile()
				} else {
					profErrs = append(profErrs, fmt.Sprintf("cpu.pprof: %v", serr))
				}
				_ = f.Close()
			} else {
				profErrs = append(profErrs, fmt.Sprintf("cpu.pprof: %v", err))
			}
			cpuProfileBusy.Store(false)
		} else {
			profErrs = append(profErrs, "cpu.pprof: another CPU profile in progress, skipped")
		}
	}

	if len(profErrs) > 0 {
		body := ""
		for _, e := range profErrs {
			body += e + "\n"
		}
		_ = os.WriteFile(filepath.Join(dir, "profile_errors.txt"), []byte(body), 0o644)
	}
	return dir, nil
}
