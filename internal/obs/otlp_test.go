package obs

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleTrace(chain string, seq uint64) TraceData {
	return TraceData{
		TraceIDHi: 0xaaaa000000000000 + seq, TraceIDLo: 0xbbbb,
		Seq: seq, Chain: chain, Caller: 7,
		Spans: []SpanData{
			{SpanID: 0x10 + seq, Name: "request", StartUnixNano: 1000, EndUnixNano: 9000},
			{SpanID: 0x20 + seq, ParentID: 0x10 + seq, Name: "handler", Function: "fn",
				Instance: 1, StartUnixNano: 2000, EndUnixNano: 8000, Error: "boom"},
		},
	}
}

// decodeOTLP unmarshals an OTLP doc into the generic shape tests inspect.
func decodeOTLP(t *testing.T, b []byte) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("OTLP output is not valid JSON: %v\n%s", err, b)
	}
	return doc
}

func TestOTLPJSONShape(t *testing.T) {
	b, err := OTLPJSON([]TraceData{sampleTrace("alpha", 1), sampleTrace("beta", 2)})
	if err != nil {
		t.Fatal(err)
	}
	doc := decodeOTLP(t, b)
	rs := doc["resourceSpans"].([]any)
	if len(rs) != 2 {
		t.Fatalf("resourceSpans per chain: %d, want 2", len(rs))
	}
	// Chains are emitted sorted; each carries service.name spright/<chain>.
	for i, chain := range []string{"alpha", "beta"} {
		entry := rs[i].(map[string]any)
		attrs := entry["resource"].(map[string]any)["attributes"].([]any)
		kv := attrs[0].(map[string]any)
		svc := kv["value"].(map[string]any)["stringValue"].(string)
		if kv["key"] != "service.name" || svc != "spright/"+chain {
			t.Fatalf("resource %d: %v=%q, want service.name=spright/%s", i, kv["key"], svc, chain)
		}
		spans := entry["scopeSpans"].([]any)[0].(map[string]any)["spans"].([]any)
		if len(spans) != 2 {
			t.Fatalf("chain %s: %d spans, want 2", chain, len(spans))
		}
		for _, raw := range spans {
			sp := raw.(map[string]any)
			if got := len(sp["traceId"].(string)); got != 32 {
				t.Fatalf("traceId hex length %d, want 32", got)
			}
			if got := len(sp["spanId"].(string)); got != 16 {
				t.Fatalf("spanId hex length %d, want 16", got)
			}
			if sp["kind"].(float64) != 1 {
				t.Fatalf("span kind %v, want 1 (internal)", sp["kind"])
			}
			switch sp["name"] {
			case "request":
				if _, has := sp["parentSpanId"]; has {
					t.Fatal("root span must omit parentSpanId")
				}
				if _, has := sp["status"]; has {
					t.Fatal("clean root span must omit status")
				}
			case "handler":
				if got := len(sp["parentSpanId"].(string)); got != 16 {
					t.Fatalf("parentSpanId hex length %d, want 16", got)
				}
				st := sp["status"].(map[string]any)
				if st["code"].(float64) != 2 || st["message"] != "boom" {
					t.Fatalf("errored span status %v, want code 2 message boom", st)
				}
			}
		}
	}
}

func TestOTLPJSONEmpty(t *testing.T) {
	b, err := OTLPJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"resourceSpans":[]}` {
		t.Fatalf("empty export: %s, want {\"resourceSpans\":[]}", b)
	}
}

func TestTraceFileExporterSeqDedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	exp, err := NewTraceFileExporter(path)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	if n, err := exp.Export([]TraceData{sampleTrace("a", 1), sampleTrace("a", 2)}); err != nil || n != 2 {
		t.Fatalf("first export: n=%d err=%v, want 2", n, err)
	}
	// Overlapping snapshot: only Seq 3 is new; Seq 1-2 must not rewrite.
	if n, err := exp.Export([]TraceData{sampleTrace("a", 2), sampleTrace("a", 3)}); err != nil || n != 1 {
		t.Fatalf("overlapping export: n=%d err=%v, want 1", n, err)
	}
	// Fully stale snapshot writes nothing.
	if n, err := exp.Export([]TraceData{sampleTrace("a", 3)}); err != nil || n != 0 {
		t.Fatalf("stale export: n=%d err=%v, want 0", n, err)
	}
	// Cursors are per chain: chain b starts fresh.
	if n, err := exp.Export([]TraceData{sampleTrace("b", 1)}); err != nil || n != 1 {
		t.Fatalf("new chain export: n=%d err=%v, want 1", n, err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d JSONL lines, want 3 (one per non-empty export)", len(lines))
	}
	for _, ln := range lines {
		decodeOTLP(t, []byte(ln))
	}
}

func TestTracesHandlerFormatsAndLimit(t *testing.T) {
	o := New()
	o.RegisterSpanSource("chainX", func(limit int) []TraceData {
		ts := []TraceData{sampleTrace("chainX", 1), sampleTrace("chainX", 2)}
		if limit > 0 && limit < len(ts) {
			ts = ts[len(ts)-limit:]
		}
		return ts
	})
	o.RegisterTraceSource("chainX", func(limit int) any {
		return map[string]int{"limit": limit}
	})

	// Default JSON view: Content-Type and the registered source.
	rec := httptest.NewRecorder()
	o.TracesHandler(rec, httptest.NewRequest("GET", "/traces", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("Content-Type %q, want application/json", ct)
	}
	if !strings.Contains(rec.Body.String(), "chainX") {
		t.Fatalf("/traces missing chainX: %s", rec.Body.String())
	}

	// ?limit is forwarded to the sources.
	rec = httptest.NewRecorder()
	o.TracesHandler(rec, httptest.NewRequest("GET", "/traces?limit=1", nil))
	if !strings.Contains(rec.Body.String(), `"limit": 1`) {
		t.Fatalf("limit not forwarded: %s", rec.Body.String())
	}

	// ?format=otlp returns the OTLP document across span sources.
	rec = httptest.NewRecorder()
	o.TracesHandler(rec, httptest.NewRequest("GET", "/traces?format=otlp&limit=1", nil))
	doc := decodeOTLP(t, rec.Body.Bytes())
	rs := doc["resourceSpans"].([]any)
	if len(rs) != 1 {
		t.Fatalf("otlp resourceSpans: %d, want 1", len(rs))
	}
	spans := rs[0].(map[string]any)["scopeSpans"].([]any)[0].(map[string]any)["spans"].([]any)
	if len(spans) != 2 { // one trace (limit=1) x two spans
		t.Fatalf("otlp spans: %d, want 2 (limit honoured)", len(spans))
	}

	// No sources -> empty JSON object / empty OTLP doc, never null.
	o.UnregisterSpanSource("chainX")
	o.UnregisterTraceSource("chainX")
	rec = httptest.NewRecorder()
	o.TracesHandler(rec, httptest.NewRequest("GET", "/traces?format=otlp", nil))
	if got := strings.TrimSpace(rec.Body.String()); got != `{"resourceSpans":[]}` {
		t.Fatalf("empty otlp body %q", got)
	}
}
