// Package transport is the inter-node half of D-SPRIGHT: a batched,
// length-prefixed TCP transport (stdlib net only) connecting the SPRIGHT
// gateways of different nodes. Within a node descriptors never touch it —
// intra-node hops stay on the zero-copy shm + SPROXY path. Between nodes,
// frames (wire.Frame: descriptor-equivalent + payload + trace context) are
// staged in pooled per-peer slots, enqueued on a per-peer rte_ring, and
// coalesced by a per-peer writer goroutine into single writev-style
// net.Buffers writes — Palladium's rule that cross-node descriptor passing
// must stay off the per-request allocation path, applied to a TCP fabric.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spright-go/spright/internal/fault"
	"github.com/spright-go/spright/internal/metrics"
	"github.com/spright-go/spright/internal/wire"
)

// Transport errors.
var (
	ErrBacklog    = errors.New("transport: peer send ring full")
	ErrMeshClosed = errors.New("transport: mesh closed")
	ErrNoPeer     = errors.New("transport: unknown peer")
	ErrPeerDown   = errors.New("transport: peer unreachable")
)

// Drop reasons for the reason-attributed drop counters.
const (
	DropBacklog  = "backlog"   // send ring full at Send
	DropConnDown = "conn_down" // reconnect budget exhausted
	DropClosed   = "closed"    // mesh shut down with frames queued
)

// Config tunes a node's mesh endpoint. The zero value picks defaults
// suitable for tests and the loopback benchmarks.
type Config struct {
	// SendRing is the per-peer send-ring slot count (default 1024). Each
	// slot owns a reusable encode buffer, so it also bounds staged bytes.
	SendRing int
	// MaxBatch caps frames coalesced into one writev-style write
	// (default 64, the dataplane's burst size).
	MaxBatch int
	// DialBackoff is the base reconnect backoff (default 1ms), doubled per
	// attempt up to MaxBackoff (default 100ms).
	DialBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxAttempts bounds connect/write attempts per batch before its
	// frames are dropped with reason conn_down (default 8).
	MaxAttempts int
	// Injector, when set, is consulted before every flush with the
	// src/dst pair ("net:<node>", "net:<peer>"): a firing queue-full rule
	// kills the connection mid-stream (chaos: link failure).
	Injector *fault.Injector
}

func (c Config) withDefaults() Config {
	if c.SendRing <= 0 {
		c.SendRing = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 100 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	return c
}

// FrameMeta is the header-only view of a staged frame handed to the drop
// callback, so an undeliverable request can fail its pending caller.
type FrameMeta struct {
	Type   uint8
	Flags  uint8
	Chain  string
	Fn     string
	Caller uint32
}

// Handler consumes one received frame. from is the sender's node name (from
// its hello frame; "" if the peer never identified). The frame's Payload is
// only valid for the duration of the call — the receive buffer is pooled.
type Handler func(from string, f *wire.Frame)

// DropFunc is notified for every frame the mesh gives up on, with the
// attributed reason (DropBacklog frames are refused at Send and never reach
// this callback — the caller still owns them there).
type DropFunc func(meta FrameMeta, reason string, err error)

// Mesh is one node's transport endpoint: a listener for inbound frames and
// one batched sender per peer.
type Mesh struct {
	node string
	cfg  Config

	ln net.Listener

	handlerMu sync.RWMutex
	handler   Handler

	dropMu sync.RWMutex
	dropCb DropFunc

	reconnMu sync.RWMutex
	reconnCb ReconnectFunc

	peerMu sync.RWMutex
	peers  map[string]*Peer

	recvMu sync.Mutex
	recv   map[string]*recvStats // by remote node name ("" before hello)

	connMu sync.Mutex
	conns  map[net.Conn]struct{} // inbound connections, for Close

	readPool sync.Pool // *[]byte receive buffers

	recvErrors atomic.Uint64

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

type recvStats struct {
	frames atomic.Uint64
	bytes  atomic.Uint64
}

// NewMesh creates a mesh endpoint for the named node. Call Listen to accept
// inbound frames and AddPeer to wire outbound links.
func NewMesh(node string, cfg Config) *Mesh {
	return &Mesh{
		node:  node,
		cfg:   cfg.withDefaults(),
		peers: make(map[string]*Peer),
		recv:  make(map[string]*recvStats),
		conns: make(map[net.Conn]struct{}),
		stop:  make(chan struct{}),
	}
}

// Node returns the mesh's node name.
func (m *Mesh) Node() string { return m.node }

// SetHandler installs the inbound-frame consumer. Install before Listen to
// avoid dropping early frames.
func (m *Mesh) SetHandler(h Handler) {
	m.handlerMu.Lock()
	m.handler = h
	m.handlerMu.Unlock()
}

// SetDropHandler installs the undeliverable-frame callback.
func (m *Mesh) SetDropHandler(f DropFunc) {
	m.dropMu.Lock()
	m.dropCb = f
	m.dropMu.Unlock()
}

func (m *Mesh) notifyDrop(meta FrameMeta, reason string, err error) {
	m.dropMu.RLock()
	cb := m.dropCb
	m.dropMu.RUnlock()
	if cb != nil {
		cb(meta, reason, err)
	}
}

// ReconnectFunc is notified when a peer link is re-established after a
// failure (the writer redialed a previously connected peer). attempts is
// how many dial attempts the writer made for this flush.
type ReconnectFunc func(peer string, attempts int)

// SetReconnectHandler installs the link-recovery callback — the flight
// recorder's mesh_reconnect feed. The callback runs on the peer's writer
// goroutine and must not block.
func (m *Mesh) SetReconnectHandler(f ReconnectFunc) {
	m.reconnMu.Lock()
	m.reconnCb = f
	m.reconnMu.Unlock()
}

func (m *Mesh) notifyReconnect(peer string, attempts int) {
	m.reconnMu.RLock()
	cb := m.reconnCb
	m.reconnMu.RUnlock()
	if cb != nil {
		cb(peer, attempts)
	}
}

// Listen starts accepting inbound connections on addr (e.g. "127.0.0.1:0").
func (m *Mesh) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	m.ln = ln
	m.wg.Add(1)
	go m.acceptLoop(ln)
	return nil
}

// Addr returns the listener's address ("" before Listen).
func (m *Mesh) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// AddPeer wires an outbound link to the named peer at addr. The connection
// is dialed lazily on first send. Re-adding an existing peer updates nothing
// and returns the existing link.
func (m *Mesh) AddPeer(name, addr string) *Peer {
	m.peerMu.Lock()
	defer m.peerMu.Unlock()
	if p, ok := m.peers[name]; ok {
		return p
	}
	p := newPeer(m, name, addr)
	m.peers[name] = p
	m.wg.Add(1)
	go p.writer()
	return p
}

// Peer returns the outbound link to name (nil when not wired).
func (m *Mesh) Peer(name string) *Peer {
	m.peerMu.RLock()
	defer m.peerMu.RUnlock()
	return m.peers[name]
}

// Peers returns the wired peer names.
func (m *Mesh) Peers() []string {
	m.peerMu.RLock()
	defer m.peerMu.RUnlock()
	out := make([]string, 0, len(m.peers))
	for n := range m.peers {
		out = append(out, n)
	}
	return out
}

// Send stages one frame for the named peer. It is non-blocking: a full send
// ring refuses the frame with ErrBacklog (counted as a backlog drop) — the
// caller still owns the request and must fail it attributably.
func (m *Mesh) Send(peer string, f *wire.Frame) error {
	m.peerMu.RLock()
	p := m.peers[peer]
	m.peerMu.RUnlock()
	if p == nil {
		return fmt.Errorf("%w: %q", ErrNoPeer, peer)
	}
	return p.Send(f)
}

// QueuedTo returns the number of frames staged for peer but not yet written
// — the per-peer send-ring depth the autoscaler folds into its demand
// signal. Unknown peers report 0.
func (m *Mesh) QueuedTo(peer string) int {
	m.peerMu.RLock()
	p := m.peers[peer]
	m.peerMu.RUnlock()
	if p == nil {
		return 0
	}
	return p.send.Len()
}

// acceptLoop accepts inbound connections until the listener closes.
func (m *Mesh) acceptLoop(ln net.Listener) {
	defer m.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.connMu.Lock()
		m.conns[conn] = struct{}{}
		m.connMu.Unlock()
		m.wg.Add(1)
		go m.serveConn(conn)
	}
}

func (m *Mesh) getReadBuf(n int) *[]byte {
	bp, _ := m.readPool.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// serveConn is the receive loop of one inbound connection: read the length
// prefix, read the frame body into a pooled buffer, decode, dispatch. A
// framing error tears the connection down (counted); the peer's writer will
// reconnect and resend what the kernel had not accepted.
func (m *Mesh) serveConn(conn net.Conn) {
	defer m.wg.Done()
	defer func() {
		conn.Close()
		m.connMu.Lock()
		delete(m.conns, conn)
		m.connMu.Unlock()
	}()
	from := ""
	var prefix [wire.PrefixLen]byte
	for {
		if _, err := readFull(conn, prefix[:]); err != nil {
			return // EOF or peer reset: normal teardown
		}
		n := int(uint32(prefix[0]) | uint32(prefix[1])<<8 | uint32(prefix[2])<<16 | uint32(prefix[3])<<24)
		if n <= 0 || n > wire.MaxFrame {
			m.recvErrors.Add(1)
			return
		}
		bp := m.getReadBuf(n)
		if _, err := readFull(conn, *bp); err != nil {
			m.readPool.Put(bp)
			return
		}
		f, err := wire.DecodeFrame(*bp)
		if err != nil {
			m.readPool.Put(bp)
			m.recvErrors.Add(1)
			return
		}
		if f.Type == wire.TypeHello {
			from = f.Fn
			m.readPool.Put(bp)
			continue
		}
		rs := m.recvStatsFor(from)
		rs.frames.Add(1)
		rs.bytes.Add(uint64(wire.PrefixLen + n))
		m.handlerMu.RLock()
		h := m.handler
		m.handlerMu.RUnlock()
		if h != nil {
			h(from, &f)
		}
		m.readPool.Put(bp)
	}
}

func (m *Mesh) recvStatsFor(from string) *recvStats {
	m.recvMu.Lock()
	defer m.recvMu.Unlock()
	rs, ok := m.recv[from]
	if !ok {
		rs = &recvStats{}
		m.recv[from] = rs
	}
	return rs
}

// readFull fills b from conn (io.ReadFull without the import churn).
func readFull(conn net.Conn, b []byte) (int, error) {
	read := 0
	for read < len(b) {
		n, err := conn.Read(b[read:])
		read += n
		if err != nil {
			return read, err
		}
	}
	return read, nil
}

// Close stops the mesh: the listener, every inbound connection, and every
// peer writer (queued frames are dropped with reason closed).
func (m *Mesh) Close() {
	m.once.Do(func() {
		close(m.stop)
		if m.ln != nil {
			m.ln.Close()
		}
		m.connMu.Lock()
		for c := range m.conns {
			c.Close()
		}
		m.connMu.Unlock()
	})
	m.wg.Wait()
}

// PeerStatsSnapshot is one outbound link's counters.
type PeerStatsSnapshot struct {
	Peer       string
	FramesSent uint64
	BytesSent  uint64
	// Writes counts successful writev-style flushes; FramesSent/Writes is
	// the mean batching factor.
	Writes     uint64
	Reconnects uint64
	// QueueDepth is the instantaneous send-ring occupancy.
	QueueDepth int
	// Drops by reason (backlog, conn_down, closed).
	Drops map[string]uint64
	// FramesPerWrite is the distribution of batch sizes per flush.
	FramesPerWrite *metrics.Histogram
}

// RecvStatsSnapshot is the inbound counters attributed to one remote peer.
type RecvStatsSnapshot struct {
	Peer           string
	FramesReceived uint64
	BytesReceived  uint64
}

// MeshStats is a point-in-time snapshot of one node's transport activity.
type MeshStats struct {
	Node       string
	Sent       []PeerStatsSnapshot
	Received   []RecvStatsSnapshot
	RecvErrors uint64
}

// Stats snapshots the mesh's counters (approximate under load, exact when
// quiescent) — the source of truth the exporter conformance test compares
// the /metrics exposition against.
func (m *Mesh) Stats() MeshStats {
	st := MeshStats{Node: m.node, RecvErrors: m.recvErrors.Load()}
	m.peerMu.RLock()
	for name, p := range m.peers {
		st.Sent = append(st.Sent, p.snapshot(name))
	}
	m.peerMu.RUnlock()
	m.recvMu.Lock()
	for name, rs := range m.recv {
		st.Received = append(st.Received, RecvStatsSnapshot{
			Peer:           name,
			FramesReceived: rs.frames.Load(),
			BytesReceived:  rs.bytes.Load(),
		})
	}
	m.recvMu.Unlock()
	return st
}
