package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/fault"
	"github.com/spright-go/spright/internal/wire"
)

// reservedDeadAddr returns a loopback address that actively refuses
// connections: bind a listener to pick a free port, then close it.
func reservedDeadAddr(t *testing.T) string {
	t.Helper()
	m := NewMesh("probe", Config{})
	if err := m.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := m.Addr()
	m.Close()
	return addr
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestMeshSendReceiveAndHelloAttribution(t *testing.T) {
	b := NewMesh("node-b", Config{})
	defer b.Close()

	var mu sync.Mutex
	var gotFrom string
	var got wire.Frame
	frames := 0
	b.SetHandler(func(from string, f *wire.Frame) {
		mu.Lock()
		defer mu.Unlock()
		gotFrom = from
		got = *f
		got.Payload = append([]byte(nil), f.Payload...) // pooled: copy out
		frames++
	})
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}

	a := NewMesh("node-a", Config{})
	defer a.Close()
	a.AddPeer("node-b", b.Addr())

	want := wire.Frame{
		Type: wire.TypeRequest, Caller: 7,
		TraceHi: 1, TraceLo: 2, TraceSpan: 3, TraceFlags: 1,
		Chain: "c", Fn: "f2", Topic: "/t", Payload: []byte("cross-node"),
	}
	if err := a.Send("node-b", &want); err != nil {
		t.Fatalf("send: %v", err)
	}
	waitFor(t, "frame delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return frames == 1
	})

	mu.Lock()
	defer mu.Unlock()
	if gotFrom != "node-a" {
		t.Fatalf("hello attribution: from=%q, want node-a", gotFrom)
	}
	if got.Caller != want.Caller || got.Chain != want.Chain || got.Fn != want.Fn ||
		got.Topic != want.Topic || string(got.Payload) != string(want.Payload) {
		t.Fatalf("frame mismatch: got %+v", got)
	}
	if got.TraceHi != 1 || got.TraceLo != 2 || got.TraceSpan != 3 || got.TraceFlags != 1 {
		t.Fatalf("trace context did not survive the wire: %+v", got)
	}

	st := b.Stats()
	if len(st.Received) != 1 || st.Received[0].Peer != "node-a" || st.Received[0].FramesReceived != 1 {
		t.Fatalf("receive stats not attributed to node-a: %+v", st.Received)
	}
	if st.Received[0].BytesReceived == 0 {
		t.Fatalf("receive stats missing bytes")
	}
	sent := a.Stats().Sent
	if len(sent) != 1 || sent[0].FramesSent != 1 || sent[0].BytesSent == 0 {
		t.Fatalf("send stats wrong: %+v", sent)
	}
}

func TestMeshSendUnknownPeer(t *testing.T) {
	m := NewMesh("lonely", Config{})
	defer m.Close()
	if err := m.Send("ghost", &wire.Frame{Type: wire.TypeRequest}); !errors.Is(err, ErrNoPeer) {
		t.Fatalf("unknown peer: got %v, want ErrNoPeer", err)
	}
}

// TestMeshBatchingUnderBacklog stages a burst of frames while the peer is
// unreachable, then brings the listener up: the writer must coalesce the
// backlog into far fewer writes than frames (the writev batching claim).
func TestMeshBatchingUnderBacklog(t *testing.T) {
	addr := reservedDeadAddr(t)

	const frames = 50
	var mu sync.Mutex
	received := 0

	a := NewMesh("node-a", Config{DialBackoff: 10 * time.Millisecond, MaxBackoff: 10 * time.Millisecond, MaxAttempts: 1 << 20})
	defer a.Close()
	a.AddPeer("node-b", addr)

	for i := 0; i < frames; i++ {
		f := wire.Frame{Type: wire.TypeRequest, Caller: uint32(i), Chain: "c", Fn: "f", Payload: []byte("x")}
		if err := a.Send("node-b", &f); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	// Now let the peer come up on the reserved address.
	b := NewMesh("node-b", Config{})
	defer b.Close()
	b.SetHandler(func(from string, f *wire.Frame) {
		mu.Lock()
		received++
		mu.Unlock()
	})
	if err := b.Listen(addr); err != nil {
		t.Fatalf("listen on reserved addr: %v", err)
	}

	waitFor(t, "backlog delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return received == frames
	})

	st := a.Stats().Sent[0]
	if st.FramesSent != frames {
		t.Fatalf("FramesSent=%d, want %d", st.FramesSent, frames)
	}
	if st.Writes >= frames {
		t.Fatalf("no batching: %d writes for %d frames", st.Writes, frames)
	}
	perWrite := float64(st.FramesSent) / float64(st.Writes)
	if perWrite <= 1 {
		t.Fatalf("frames per write %.2f, want > 1", perWrite)
	}
	if st.FramesPerWrite.Count() != st.Writes {
		t.Fatalf("per-write histogram count %d != writes %d", st.FramesPerWrite.Count(), st.Writes)
	}
	if st.FramesPerWrite.Max() <= 1 {
		t.Fatalf("per-write histogram max %.1f, want > 1", st.FramesPerWrite.Max())
	}
}

// TestMeshChaosReconnect kills the live connection via the fault injector
// mid-stream and asserts the writer reconnects (with the reconnect counted)
// and still delivers every frame.
func TestMeshChaosReconnect(t *testing.T) {
	inj := fault.New(1)

	b := NewMesh("node-b", Config{})
	defer b.Close()
	var mu sync.Mutex
	received := 0
	b.SetHandler(func(from string, f *wire.Frame) {
		mu.Lock()
		received++
		mu.Unlock()
	})
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}

	a := NewMesh("node-a", Config{Injector: inj})
	defer a.Close()
	a.AddPeer("node-b", b.Addr())

	// First frame establishes the connection.
	if err := a.Send("node-b", &wire.Frame{Type: wire.TypeRequest, Caller: 0, Chain: "c", Fn: "f"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	waitFor(t, "first frame", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return received == 1
	})

	// Now arm a one-shot link kill on the a→b mesh edge and keep sending.
	inj.Add(fault.Rule{Op: fault.OpQueueFull, Function: "net:node-a", Hop: "net:node-b", Probability: 1, MaxCount: 1})
	const more = 20
	for i := 1; i <= more; i++ {
		f := wire.Frame{Type: wire.TypeRequest, Caller: uint32(i), Chain: "c", Fn: "f"}
		if err := a.Send("node-b", &f); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		time.Sleep(time.Millisecond) // separate flushes so the kill lands on a live conn
	}
	waitFor(t, "delivery after reconnect", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return received == 1+more
	})

	st := a.Stats().Sent[0]
	if st.Reconnects == 0 {
		t.Fatalf("no reconnect counted after injected link kill")
	}
	if st.FramesSent != 1+more {
		t.Fatalf("FramesSent=%d, want %d", st.FramesSent, 1+more)
	}
	if inj.Stats().Total == 0 {
		t.Fatalf("injector never fired")
	}
}

// TestMeshBacklogRefusal fills a tiny send ring against an unreachable peer:
// Send must refuse with ErrBacklog and count the drop, never block.
func TestMeshBacklogRefusal(t *testing.T) {
	addr := reservedDeadAddr(t)
	a := NewMesh("node-a", Config{SendRing: 2, DialBackoff: time.Second, MaxBackoff: time.Second, MaxAttempts: 1 << 20})
	defer a.Close()
	a.AddPeer("dead", addr)

	sawBacklog := false
	for i := 0; i < 16; i++ {
		f := wire.Frame{Type: wire.TypeRequest, Caller: uint32(i), Chain: "c", Fn: "f"}
		if err := a.Send("dead", &f); errors.Is(err, ErrBacklog) {
			sawBacklog = true
			break
		}
	}
	if !sawBacklog {
		t.Fatalf("16 sends into a 2-slot ring against a dead peer never hit ErrBacklog")
	}
	if a.Stats().Sent[0].Drops[DropBacklog] == 0 {
		t.Fatalf("backlog drop not counted")
	}
}

// TestMeshConnDownDrop exhausts the reconnect budget and asserts the staged
// frame is surrendered through the drop callback with reason conn_down and
// intact metadata, so the origin gateway can fail the pending caller.
func TestMeshConnDownDrop(t *testing.T) {
	addr := reservedDeadAddr(t)

	type droppedFrame struct {
		meta   FrameMeta
		reason string
		err    error
	}
	dropped := make(chan droppedFrame, 4)

	a := NewMesh("node-a", Config{DialBackoff: time.Millisecond, MaxBackoff: time.Millisecond, MaxAttempts: 3})
	defer a.Close()
	a.SetDropHandler(func(meta FrameMeta, reason string, err error) {
		dropped <- droppedFrame{meta, reason, err}
	})
	a.AddPeer("dead", addr)

	f := wire.Frame{Type: wire.TypeRequest, Caller: 99, Chain: "c", Fn: "f"}
	if err := a.Send("dead", &f); err != nil {
		t.Fatalf("send: %v", err)
	}

	select {
	case d := <-dropped:
		if d.reason != DropConnDown {
			t.Fatalf("drop reason %q, want %q", d.reason, DropConnDown)
		}
		if !errors.Is(d.err, ErrPeerDown) {
			t.Fatalf("drop error %v, want ErrPeerDown", d.err)
		}
		if d.meta.Caller != 99 || d.meta.Chain != "c" || d.meta.Fn != "f" || d.meta.Type != wire.TypeRequest {
			t.Fatalf("drop meta mangled: %+v", d.meta)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("drop callback never fired")
	}
	if a.Stats().Sent[0].Drops[DropConnDown] == 0 {
		t.Fatalf("conn_down drop not counted")
	}
	if a.QueuedTo("dead") != 0 {
		t.Fatalf("send ring not drained after drop")
	}
}

// TestMeshCloseDropsQueued shuts the mesh down with frames still staged for
// an unreachable peer: they must surface as reason-closed drops, not leak.
func TestMeshCloseDropsQueued(t *testing.T) {
	addr := reservedDeadAddr(t)
	var mu sync.Mutex
	reasons := map[string]int{}

	a := NewMesh("node-a", Config{DialBackoff: time.Second, MaxBackoff: time.Second, MaxAttempts: 1 << 20})
	a.SetDropHandler(func(meta FrameMeta, reason string, err error) {
		mu.Lock()
		reasons[reason]++
		mu.Unlock()
	})
	a.AddPeer("dead", addr)
	const n = 8
	for i := 0; i < n; i++ {
		f := wire.Frame{Type: wire.TypeRequest, Caller: uint32(i), Chain: "c", Fn: "f"}
		if err := a.Send("dead", &f); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	a.Close()

	mu.Lock()
	closed := reasons[DropClosed]
	mu.Unlock()
	if closed != n {
		t.Fatalf("closed drops %d, want %d", closed, n)
	}
	if err := a.Send("dead", &wire.Frame{Type: wire.TypeRequest}); !errors.Is(err, ErrMeshClosed) {
		t.Fatalf("send after close: got %v, want ErrMeshClosed", err)
	}
}

// TestMeshCorruptFrameTearsConnDown feeds the receive loop garbage bytes and
// asserts it counts the error and survives (later good connections work).
func TestMeshCorruptFrameTearsConnDown(t *testing.T) {
	b := NewMesh("node-b", Config{})
	defer b.Close()
	if err := b.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}

	// A raw connection writing a hostile length prefix.
	conn, err := net.Dial("tcp", b.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	// Length prefix claiming > MaxFrame.
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatalf("write: %v", err)
	}
	waitFor(t, "recv error counted", func() bool { return b.Stats().RecvErrors >= 1 })
	conn.Close()

	// The mesh must still accept well-formed traffic.
	a := NewMesh("node-a", Config{})
	defer a.Close()
	got := make(chan struct{}, 1)
	b.SetHandler(func(from string, f *wire.Frame) { got <- struct{}{} })
	a.AddPeer("node-b", b.Addr())
	if err := a.Send("node-b", &wire.Frame{Type: wire.TypeRequest, Chain: "c", Fn: "f"}); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatalf("mesh stopped accepting after corrupt connection")
	}
}
