package transport

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spright-go/spright/internal/metrics"
	"github.com/spright-go/spright/internal/ring"
	"github.com/spright-go/spright/internal/wire"
)

// dialTimeout bounds one connect attempt so a dead peer costs at most
// MaxAttempts × (dialTimeout + backoff) before the batch is dropped.
const dialTimeout = 250 * time.Millisecond

// slot is one reusable encode cell of a peer's send ring: the frame bytes
// (length prefix included) plus the header-only metadata needed to attribute
// a drop back to its pending caller.
type slot struct {
	buf  []byte
	meta FrameMeta
}

// Peer is one outbound link: a fixed pool of encode slots cycled through two
// rte_rings (free → staged → free), and a single writer goroutine that
// drains staged slots in bursts and flushes each burst as one
// writev-style net.Buffers write. Send never blocks and never allocates in
// steady state — a full ring is explicit backpressure (ErrBacklog), exactly
// like a full SPROXY ring inside a node.
type Peer struct {
	mesh *Mesh
	name string
	addr string

	slots []slot
	free  *ring.Ring // slot indices available for staging (MP: many senders)
	send  *ring.Ring // slot indices staged for the writer   (MP prod, SP cons)

	// notify wakes the writer; capacity 1 so senders never block on it.
	notify chan struct{}

	// Writer-owned connection state: only the writer goroutine touches it.
	conn      net.Conn
	connected bool

	framesSent atomic.Uint64
	bytesSent  atomic.Uint64
	writes     atomic.Uint64
	reconnects atomic.Uint64

	dropMu sync.Mutex
	drops  map[string]uint64

	// perWrite records the batch size of every successful flush — the
	// batching-factor distribution exported as a summary.
	perWrite *metrics.StripedHistogram
}

func newPeer(m *Mesh, name, addr string) *Peer {
	n := m.cfg.SendRing
	free, err := ring.New(n, ring.MP)
	if err != nil {
		panic("transport: bad send ring size: " + err.Error())
	}
	send, err := ring.New(n, ring.MP)
	if err != nil {
		panic("transport: bad send ring size: " + err.Error())
	}
	p := &Peer{
		mesh:     m,
		name:     name,
		addr:     addr,
		slots:    make([]slot, free.Capacity()),
		free:     free,
		send:     send,
		notify:   make(chan struct{}, 1),
		drops:    make(map[string]uint64),
		perWrite: metrics.NewStripedHistogram(),
	}
	// Seed the free ring with every slot index.
	idxs := make([]uint64, len(p.slots))
	for i := range idxs {
		idxs[i] = uint64(i)
	}
	if got := p.free.EnqueueBulk(idxs); got != len(idxs) {
		panic("transport: seeding free ring failed")
	}
	return p
}

// Name returns the peer's node name.
func (p *Peer) Name() string { return p.name }

// Send encodes f into a free slot and stages it for the writer. Non-blocking:
// a full ring returns ErrBacklog (counted), leaving ownership of the request
// with the caller. The frame is copied during encode, so f and its Payload
// may be reused immediately after Send returns.
func (p *Peer) Send(f *wire.Frame) error {
	select {
	case <-p.mesh.stop:
		return ErrMeshClosed
	default:
	}
	ix, err := p.free.Dequeue()
	if err != nil {
		p.countDrop(DropBacklog)
		return ErrBacklog
	}
	s := &p.slots[ix]
	buf, err := wire.AppendFrame(s.buf[:0], f)
	if err != nil {
		p.freeSlot(ix)
		return err
	}
	s.buf = buf
	s.meta = FrameMeta{Type: f.Type, Flags: f.Flags, Chain: f.Chain, Fn: f.Fn, Caller: f.Caller}
	var one [1]uint64
	one[0] = ix
	// Cannot fail: free+send+in-flight never exceed the slot count, and we
	// hold one slot out of the free ring right now.
	if p.send.EnqueueBulk(one[:]) != 1 {
		p.freeSlot(ix)
		p.countDrop(DropBacklog)
		return ErrBacklog
	}
	select {
	case p.notify <- struct{}{}:
	default:
	}
	return nil
}

func (p *Peer) freeSlot(ix uint64) {
	var one [1]uint64
	one[0] = ix
	p.free.EnqueueBulk(one[:])
}

func (p *Peer) countDrop(reason string) {
	p.dropMu.Lock()
	p.drops[reason]++
	p.dropMu.Unlock()
}

// writer is the peer's single flush goroutine: drain staged slots in bursts
// of MaxBatch, write each burst as one net.Buffers (writev) call, return the
// slots to the free ring. Connection failures reconnect with exponential
// backoff; an exhausted attempt budget drops the burst with reason conn_down
// so the origin gateway can fail the pending callers attributably.
func (p *Peer) writer() {
	defer p.mesh.wg.Done()
	defer func() {
		if p.conn != nil {
			p.conn.Close()
		}
	}()
	idxs := make([]uint64, p.mesh.cfg.MaxBatch)
	bufs := make(net.Buffers, 0, p.mesh.cfg.MaxBatch)
	for {
		n := p.send.DequeueBurst(idxs)
		if n == 0 {
			select {
			case <-p.notify:
				continue
			case <-p.mesh.stop:
				p.drainClosed(idxs)
				return
			}
		}
		p.flush(idxs[:n], &bufs)
		select {
		case <-p.mesh.stop:
			p.drainClosed(idxs)
			return
		default:
		}
	}
}

// flush delivers one burst. Delivery is at-most-once per frame per
// connection: on a write error, frames the kernel fully accepted are counted
// sent and freed; a partially-written frame is resent in full on a fresh
// connection (the receiver discards the truncated prefix at EOF).
func (p *Peer) flush(idxs []uint64, bufs *net.Buffers) {
	cfg := p.mesh.cfg
	attempts := 0
	backoff := cfg.DialBackoff
	for len(idxs) > 0 {
		if cfg.Injector != nil && p.conn != nil {
			// Chaos hook: a queue-full rule on the net:src→net:dst hop
			// models a link failure by killing the live connection.
			if cfg.Injector.DecideSend("net:"+p.mesh.node, "net:"+p.name) {
				p.conn.Close()
				p.conn = nil
			}
		}
		if p.conn == nil {
			if attempts >= cfg.MaxAttempts {
				p.dropBatch(idxs, DropConnDown, ErrPeerDown)
				return
			}
			attempts++
			conn, err := net.DialTimeout("tcp", p.addr, dialTimeout)
			if err != nil {
				if !p.sleepBackoff(backoff) {
					p.dropBatch(idxs, DropClosed, ErrMeshClosed)
					return
				}
				backoff *= 2
				if backoff > cfg.MaxBackoff {
					backoff = cfg.MaxBackoff
				}
				continue
			}
			if p.connected {
				p.reconnects.Add(1)
				p.mesh.notifyReconnect(p.name, attempts)
			}
			p.connected = true
			p.conn = conn
			if err := p.sendHello(conn); err != nil {
				conn.Close()
				p.conn = nil
				continue
			}
		}
		*bufs = (*bufs)[:0]
		total := 0
		for _, ix := range idxs {
			b := p.slots[ix].buf
			*bufs = append(*bufs, b)
			total += len(b)
		}
		batch := len(idxs)
		// net.Buffers.WriteTo consumes the slice (writev under the hood);
		// bufs is rebuilt from the slots on every attempt.
		nw, err := bufs.WriteTo(p.conn)
		if err == nil {
			p.writes.Add(1)
			p.perWrite.Observe(p.writes.Load(), float64(batch))
			p.framesSent.Add(uint64(batch))
			p.bytesSent.Add(uint64(total))
			p.freeBatch(idxs)
			return
		}
		// Partial write: credit fully-accepted frames, keep the rest.
		written := nw
		for len(idxs) > 0 {
			b := p.slots[idxs[0]].buf
			if written < int64(len(b)) {
				break
			}
			written -= int64(len(b))
			p.framesSent.Add(1)
			p.bytesSent.Add(uint64(len(b)))
			p.freeSlot(idxs[0])
			idxs = idxs[1:]
		}
		p.conn.Close()
		p.conn = nil
	}
}

// sendHello writes the per-connection hello frame announcing this node's
// name, so the receiver attributes inbound counters to the right peer.
func (p *Peer) sendHello(conn net.Conn) error {
	hello, err := wire.AppendFrame(nil, &wire.Frame{Type: wire.TypeHello, Fn: p.mesh.node})
	if err != nil {
		return err
	}
	_, err = conn.Write(hello)
	return err
}

func (p *Peer) sleepBackoff(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.mesh.stop:
		return false
	}
}

func (p *Peer) freeBatch(idxs []uint64) {
	for _, ix := range idxs {
		p.freeSlot(ix)
	}
}

// dropBatch gives up on a burst: every frame is reported to the mesh's drop
// callback with its attributed reason, then its slot is recycled.
func (p *Peer) dropBatch(idxs []uint64, reason string, err error) {
	for _, ix := range idxs {
		meta := p.slots[ix].meta
		p.countDrop(reason)
		p.freeSlot(ix)
		p.mesh.notifyDrop(meta, reason, err)
	}
}

// drainClosed empties the send ring at shutdown, dropping staged frames
// with reason closed.
func (p *Peer) drainClosed(idxs []uint64) {
	for {
		n := p.send.DequeueBurst(idxs)
		if n == 0 {
			return
		}
		p.dropBatch(idxs[:n], DropClosed, ErrMeshClosed)
	}
}

func (p *Peer) snapshot(name string) PeerStatsSnapshot {
	p.dropMu.Lock()
	drops := make(map[string]uint64, len(p.drops))
	for k, v := range p.drops {
		drops[k] = v
	}
	p.dropMu.Unlock()
	return PeerStatsSnapshot{
		Peer:           name,
		FramesSent:     p.framesSent.Load(),
		BytesSent:      p.bytesSent.Load(),
		Writes:         p.writes.Load(),
		Reconnects:     p.reconnects.Load(),
		QueueDepth:     p.send.Len(),
		Drops:          drops,
		FramesPerWrite: p.perWrite.Snapshot(),
	}
}
