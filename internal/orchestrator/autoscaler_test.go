package orchestrator

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/core"
)

// pollUntil polls cond up to the deadline, failing the test on timeout.
func pollUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// blockedSpec is a chain whose handler parks on a channel, so tests can
// hold an exact amount of demand (inflight + queued) in the dataplane.
func blockedSpec(name string, block chan struct{}) core.ChainSpec {
	return core.ChainSpec{
		Name: name,
		Functions: []core.FunctionSpec{{
			Name:        "slow",
			Concurrency: 4,
			Handler: func(ctx *core.Ctx) error {
				<-block
				return nil
			},
		}},
		Routes: []core.RouteSpec{{From: "", To: []string{"slow"}}},
		Admission: core.AdmissionPolicy{
			ParkCapacity: 32,
			ParkTimeout:  10 * time.Second,
		},
	}
}

// offerLoad fires n fire-and-forget invocations and returns a wait func.
func offerLoad(t *testing.T, d *Deployment, n int) func() {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			d.Gateway.Invoke(ctx, "", []byte("x"))
		}()
	}
	return wg.Wait
}

func totalInflight(d *Deployment) int {
	total := 0
	for _, in := range d.Chain.Instances() {
		total += in.Inflight() + in.QueueDepth()
	}
	return total
}

// Satellite regression: the controller must see zero-replica functions.
// The old implementation built its per-function view from Chain.Instances,
// so a function scaled to zero vanished from the evaluation entirely and
// could never come back.
func TestEvaluateResumesZeroReplicaFunction(t *testing.T) {
	cl := NewCluster(1)
	spec := upperSpec("zero")
	spec.Admission = core.AdmissionPolicy{ParkCapacity: 8, ParkTimeout: 10 * time.Second}
	d, err := cl.Controller.DeployChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	as := NewAutoscalerWithConfig(d, AutoscalerConfig{
		Target: 2, MinReplicas: 0, MaxReplicas: 4, ScaleToZeroAfter: time.Hour,
	})

	if _, err := d.Chain.ScaleToZero("up"); err != nil {
		t.Fatal(err)
	}
	if len(d.Chain.Router().Instances("up")) != 0 {
		t.Fatal("setup: function must be at zero replicas")
	}

	// With no demand the idled function must STAY at zero despite being
	// visible to the controller.
	if decs := as.Evaluate(); len(decs) != 0 {
		t.Fatalf("idle zero-replica function must not scale, got %+v", decs)
	}

	// A parked request is the resume signal.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := d.Gateway.Invoke(ctx, "", []byte("hi"))
		done <- err
	}()
	pollUntil(t, 2*time.Second, "request to park", func() bool {
		return d.Gateway.ParkedFor("up") == 1
	})

	decs := as.Evaluate()
	if len(decs) != 1 || decs[0].From != 0 || decs[0].To < 1 {
		t.Fatalf("want resume decision 0->1, got %+v", decs)
	}
	if decs[0].Reason != ReasonResume {
		t.Fatalf("reason %q, want %q", decs[0].Reason, ReasonResume)
	}
	if decs[0].At.IsZero() {
		t.Fatal("decision must carry its timestamp")
	}
	if err := <-done; err != nil {
		t.Fatalf("parked request failed after resume: %v", err)
	}
}

// Satellite regression: the decision history must be bounded. The old
// implementation appended every decision to a slice for the life of the
// deployment — unbounded growth on a long-lived control loop.
func TestDecisionRingBounded(t *testing.T) {
	cl := NewCluster(1)
	block := make(chan struct{})
	unblock := sync.OnceFunc(func() { close(block) })
	defer unblock()
	d, err := cl.Controller.DeployChain(blockedSpec("ring", block))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	as := NewAutoscalerWithConfig(d, AutoscalerConfig{
		Target: 1, MinReplicas: 1, MaxReplicas: 6, MaxStep: 1, DecisionHistory: 4,
	})

	wait := offerLoad(t, d, 8)
	pollUntil(t, 2*time.Second, "demand to accumulate", func() bool {
		return totalInflight(d) >= 4
	})

	// MaxStep 1: each evaluation adds exactly one replica, 1 -> 6.
	for i := 0; i < 5; i++ {
		if decs := as.Evaluate(); len(decs) != 1 {
			t.Fatalf("evaluation %d: want 1 decision, got %+v", i, decs)
		}
	}
	if got := len(d.Chain.Router().Instances("slow")); got != 6 {
		t.Fatalf("replicas %d, want 6", got)
	}
	if as.Evaluate(); len(d.Chain.Router().Instances("slow")) != 6 {
		t.Fatal("MaxReplicas must cap growth")
	}

	if total := as.TotalDecisions(); total != 5 {
		t.Fatalf("total decisions %d, want 5", total)
	}
	decs := as.Decisions()
	if len(decs) != 4 {
		t.Fatalf("retained decisions %d, want ring bound 4", len(decs))
	}
	// Chronological, most recent last, each stamped and attributed.
	for i, dec := range decs {
		if dec.At.IsZero() || dec.Reason == "" {
			t.Fatalf("decision %d missing timestamp/reason: %+v", i, dec)
		}
		if i > 0 && dec.At.Before(decs[i-1].At) {
			t.Fatalf("ring order broken: %+v", decs)
		}
	}
	if last := decs[len(decs)-1]; last.To != 6 {
		t.Fatalf("latest decision %+v, want To=6", last)
	}
	if counts := as.DecisionCounts(); counts[ReasonLoad] != 5 {
		t.Fatalf("reason counts %+v, want load=5", counts)
	}
	unblock()
	wait()
}

func TestUpCooldownBlocksImmediateSecondScaleUp(t *testing.T) {
	cl := NewCluster(1)
	block := make(chan struct{})
	unblock := sync.OnceFunc(func() { close(block) })
	defer unblock()
	d, err := cl.Controller.DeployChain(blockedSpec("cool", block))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	as := NewAutoscalerWithConfig(d, AutoscalerConfig{
		Target: 1, MinReplicas: 1, MaxReplicas: 8, MaxStep: 1,
		UpCooldown: 10 * time.Minute,
	})

	wait := offerLoad(t, d, 8)
	pollUntil(t, 2*time.Second, "demand to accumulate", func() bool {
		return totalInflight(d) >= 4
	})

	if decs := as.Evaluate(); len(decs) != 1 {
		t.Fatalf("first evaluation must scale up, got %+v", decs)
	}
	// Demand still exceeds capacity, but the cooldown window is open.
	if decs := as.Evaluate(); len(decs) != 0 {
		t.Fatalf("cooldown must block the second scale-up, got %+v", decs)
	}
	if got := len(d.Chain.Router().Instances("slow")); got != 2 {
		t.Fatalf("replicas %d, want 2 (one bounded step)", got)
	}
	unblock()
	wait()
}

func TestHysteresisDeadBandSuppressesMarginalScaleUp(t *testing.T) {
	cl := NewCluster(1)
	block := make(chan struct{})
	unblock := sync.OnceFunc(func() { close(block) })
	defer unblock()
	d, err := cl.Controller.DeployChain(blockedSpec("hyst", block))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	as := NewAutoscalerWithConfig(d, AutoscalerConfig{
		Target: 2, MinReplicas: 1, MaxReplicas: 8,
		ScaleUpRatio: 2.0, // scale up only when demand ≥ 2× capacity
	})

	// Demand 3 on capacity 2: desired is 2 > 1 replica, but 3 < 2×2 — the
	// dead band holds the line against a marginal, probably-transient need.
	wait := offerLoad(t, d, 3)
	pollUntil(t, 2*time.Second, "demand to accumulate", func() bool {
		return totalInflight(d) == 3
	})
	if decs := as.Evaluate(); len(decs) != 0 {
		t.Fatalf("dead band must suppress marginal scale-up, got %+v", decs)
	}

	// Push demand past the threshold: now it scales.
	wait2 := offerLoad(t, d, 3)
	pollUntil(t, 2*time.Second, "demand to accumulate", func() bool {
		return totalInflight(d) >= 4
	})
	if decs := as.Evaluate(); len(decs) != 1 {
		t.Fatalf("demand past threshold must scale, got %+v", decs)
	}
	unblock()
	wait()
	wait2()
}

func TestMaxStepBoundsScaleDown(t *testing.T) {
	cl := NewCluster(1)
	d, err := cl.Controller.DeployChain(upperSpec("stepdown"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 4; i++ {
		if _, err := d.Chain.ScaleUp("up"); err != nil {
			t.Fatal(err)
		}
	}
	as := NewAutoscalerWithConfig(d, AutoscalerConfig{
		Target: 1, MinReplicas: 1, MaxReplicas: 8, MaxStep: 2,
	})

	// Idle at 5 replicas: the controller wants 1, but may only shed 2 per
	// evaluation — capacity drains gradually, never in one cliff.
	for i, want := range []int{3, 1} {
		decs := as.Evaluate()
		if len(decs) != 1 {
			t.Fatalf("evaluation %d: want 1 decision, got %+v", i, decs)
		}
		if got := len(d.Chain.Router().Instances("up")); got != want {
			t.Fatalf("evaluation %d: replicas %d, want %d", i, got, want)
		}
	}
	if decs := as.Evaluate(); len(decs) != 0 {
		t.Fatalf("at floor, no further decisions, got %+v", decs)
	}
}

func TestSelfHealReplacesCircuitOpenInstance(t *testing.T) {
	var badID atomic.Uint32
	spec := core.ChainSpec{
		Name: "heal",
		Functions: []core.FunctionSpec{{
			Name:      "w",
			Instances: 2,
			Handler: func(ctx *core.Ctx) error {
				if ctx.Instance() == badID.Load() {
					panic("replica corrupted")
				}
				return nil
			},
		}},
		Routes: []core.RouteSpec{{From: "", To: []string{"w"}}},
		Health: core.HealthPolicy{ConsecutiveFailures: 2, OpenDuration: time.Minute},
	}
	cl := NewCluster(1)
	d, err := cl.Controller.DeployChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// MinReplicas 2 keeps the idle-sizing pass from also shrinking the
	// freshly healed pair, so the assertion isolates the self-heal path.
	as := NewAutoscalerWithConfig(d, AutoscalerConfig{
		Target: 32, MinReplicas: 2, MaxReplicas: 8, SelfHeal: true,
	})

	bad := d.Chain.Router().Instances("w")[0]
	badID.Store(bad.ID())
	for i := 0; i < 100 && !bad.CircuitOpen(); i++ {
		if _, err := d.Gateway.Invoke(context.Background(), "", []byte("x")); err != nil {
			if !errors.Is(err, core.ErrHandlerPanic) {
				t.Fatalf("unexpected error: %v", err)
			}
		}
	}
	if !bad.CircuitOpen() {
		t.Fatal("breaker never opened on the crashing replica")
	}

	decs := as.Evaluate()
	healed := false
	for _, dec := range decs {
		if dec.Reason == ReasonSelfHeal {
			healed = true
		}
	}
	if !healed {
		t.Fatalf("want a self-heal decision, got %+v", decs)
	}
	insts := d.Chain.Router().Instances("w")
	if len(insts) != 2 {
		t.Fatalf("replicas %d after self-heal, want 2", len(insts))
	}
	for _, in := range insts {
		if in.ID() == bad.ID() {
			t.Fatal("circuit-open replica still routable after self-heal")
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := d.Gateway.Invoke(context.Background(), "", []byte("x")); err != nil {
			t.Fatalf("invoke %d after self-heal: %v", i, err)
		}
	}
}

// The full control-plane loop through the controller: an idle chain
// retires to zero, its prewarm pool stays warm, and the first request
// afterwards parks, kicks the controller, and completes from a prewarmed
// instance — never surfacing an error.
func TestEnableAutoscalingScaleToZeroAndResume(t *testing.T) {
	cl := NewCluster(1)
	spec := upperSpec("stz")
	spec.Admission = core.AdmissionPolicy{ParkCapacity: 32, ParkTimeout: 10 * time.Second}
	d, err := cl.Controller.DeployChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	as, err := cl.Controller.EnableAutoscaling("stz", AutoscalerConfig{
		Target: 8, MinReplicas: 0, MaxReplicas: 4,
		ScaleToZeroAfter: 30 * time.Millisecond,
		Prewarm:          1,
		Interval:         5 * time.Millisecond,
		SelfHeal:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Controller.EnableAutoscaling("stz", AutoscalerConfig{}); err == nil {
		t.Fatal("double enable must fail")
	}
	if d.Autoscaler() != as {
		t.Fatal("deployment must expose its autoscaler")
	}

	// Serve once warm, then go idle.
	if out, err := d.Gateway.Invoke(context.Background(), "", []byte("warm")); err != nil || string(out) != "WARM" {
		t.Fatalf("warm invoke: %q, %v", out, err)
	}
	pollUntil(t, 5*time.Second, "chain to retire to zero replicas", func() bool {
		return len(d.Chain.Router().Instances("up")) == 0
	})
	pollUntil(t, 5*time.Second, "prewarm pool to fill", func() bool {
		return as.PrewarmPool().Stats().Size >= 1
	})

	// First request after scale-to-zero: parks, resumes, completes.
	out, err := d.Gateway.Invoke(contextWithDeadline(t, 10*time.Second), "", []byte("cold"))
	if err != nil {
		t.Fatalf("first request after scale-to-zero must complete, got %v", err)
	}
	if string(out) != "COLD" {
		t.Fatalf("got %q want COLD", out)
	}

	gs := d.Gateway.Stats()
	if gs.ParkedTotal < 1 || gs.Resumed < 1 {
		t.Fatalf("parked_total=%d resumed=%d, want ≥1 each", gs.ParkedTotal, gs.Resumed)
	}
	if gs.ShedPoolExhausted != 0 {
		t.Fatalf("pool-exhaustion blackhole fired %d times", gs.ShedPoolExhausted)
	}
	if n := d.Gateway.ColdStartLatency().Count(); n < 1 {
		t.Fatalf("cold-start histogram count %d, want ≥1", n)
	}
	if ps := as.PrewarmPool().Stats(); ps.Hits < 1 {
		t.Fatalf("prewarm stats %+v: resume must activate a prewarmed instance", ps)
	}
	counts := as.DecisionCounts()
	if counts[ReasonToZero] < 1 || counts[ReasonResume] < 1 {
		t.Fatalf("decision counts %+v, want to_zero and resume", counts)
	}
}

func contextWithDeadline(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}
