package orchestrator

// Multi-node D-SPRIGHT: chains whose functions are placed on different
// worker nodes. Within a node every hop stays on the unchanged zero-copy
// shm + SPROXY path; a hop whose next function lives elsewhere runs a
// transport *stub* instead — a normal chain instance whose handler encodes
// the descriptor-equivalent (caller, routing target, trace context) plus
// payload into a wire frame and stages it on the mesh's batched per-peer
// send ring. The receiving node's gateway re-materializes the payload into
// its own shm pool (Gateway.InvokeRemote) and re-enters the local dispatch
// path; the response rides back as a frame and completes the origin's
// pending request (Gateway.CompleteRemote). Trace context crosses on the
// frame, so one trace ID spans both nodes.

import (
	"fmt"
	"time"

	"github.com/spright-go/spright/internal/core"
	"github.com/spright-go/spright/internal/obs"
	"github.com/spright-go/spright/internal/shm"
	"github.com/spright-go/spright/internal/transport"
	"github.com/spright-go/spright/internal/wire"
)

// StartMesh wires every worker node into a full transport mesh: one
// listener and one batched sender per peer, each node's frame handler bound
// to its placed-chain table, and a per-node obs collector under
// "mesh:<node>". Idempotent per node.
func (c *Cluster) StartMesh(cfg transport.Config) error {
	for _, n := range c.nodes {
		if n.Mesh != nil {
			continue
		}
		m := transport.NewMesh(n.Name, cfg)
		node := n
		m.SetHandler(node.handleFrame)
		m.SetDropHandler(node.handleDrop)
		if c.obsv != nil {
			// Journal link events on the flight recorder: drops carry the
			// victim chain (the frame metadata names it), reconnects are
			// cluster-scope link facts.
			fr := c.obsv.Flight()
			nodeName := n.Name
			m.SetDropHandler(func(meta transport.FrameMeta, reason string, err error) {
				fr.Emit(meta.Chain, obs.EventMeshDrop, nodeName, reason, 1)
				node.handleDrop(meta, reason, err)
			})
			m.SetReconnectHandler(func(peer string, attempts int) {
				fr.Emit("", obs.EventMeshReconnect, nodeName+"->"+peer, "", int64(attempts))
			})
		}
		if err := m.Listen("127.0.0.1:0"); err != nil {
			return fmt.Errorf("orchestrator: mesh listen on %s: %w", n.Name, err)
		}
		n.Mesh = m
		if c.obsv != nil {
			c.obsv.Registry().Register("mesh:"+n.Name, func() []obs.Family { return collectMesh(m) })
		}
	}
	for _, a := range c.nodes {
		for _, b := range c.nodes {
			if a != b {
				a.Mesh.AddPeer(b.Name, b.Mesh.Addr())
			}
		}
	}
	return nil
}

// StopMesh shuts every node's transport endpoint down and drops the mesh
// collectors. Placed chains must be closed first.
func (c *Cluster) StopMesh() {
	for _, n := range c.nodes {
		if n.Mesh == nil {
			continue
		}
		if c.obsv != nil {
			c.obsv.Registry().Unregister("mesh:" + n.Name)
		}
		n.Mesh.Close()
		n.Mesh = nil
	}
}

// handleFrame is the node's inbound dispatch: requests re-enter the local
// gateway, responses complete the local pending request they answer.
func (n *WorkerNode) handleFrame(from string, f *wire.Frame) {
	n.mu.Lock()
	d := n.placed[f.Chain]
	n.mu.Unlock()
	mesh := n.Mesh
	switch f.Type {
	case wire.TypeRequest:
		noReply := f.Flags&wire.FlagNoReply != 0
		if d == nil {
			if !noReply && from != "" {
				rf := wire.Frame{Type: wire.TypeResponse, Caller: f.Caller, Chain: f.Chain,
					Flags: wire.FlagError, Err: fmt.Sprintf("node %s: chain %q not placed here", n.Name, f.Chain)}
				_ = mesh.Send(from, &rf)
			}
			return
		}
		tc := shm.TraceContext{TraceHi: f.TraceHi, TraceLo: f.TraceLo, Span: f.TraceSpan, Flags: f.TraceFlags}
		if noReply {
			_ = d.Gateway.InvokeRemote(f.Fn, f.Topic, f.Payload, f.Obj, tc, true, nil)
			return
		}
		// Capture by value: f.Payload aliases a pooled receive buffer that
		// dies when this handler returns; InvokeRemote copies it into the
		// local pool before returning.
		chain, caller := f.Chain, f.Caller
		respond := func(payload []byte, ierr error) {
			rf := wire.Frame{Type: wire.TypeResponse, Caller: caller, Chain: chain}
			if ierr != nil {
				rf.Flags = wire.FlagError
				rf.Err = ierr.Error()
			} else {
				rf.Payload = payload
			}
			if serr := mesh.Send(from, &rf); serr != nil && rf.Flags&wire.FlagError == 0 {
				// The response itself was unsendable (e.g. a reply object
				// larger than MaxFrame). An error frame is small and always
				// encodable — deliver that so the origin fails fast instead
				// of timing out on a blackholed caller slot.
				ef := wire.Frame{Type: wire.TypeResponse, Caller: caller, Chain: chain,
					Flags: wire.FlagError,
					Err:   fmt.Sprintf("node %s: response undeliverable: %v", n.Name, serr)}
				_ = mesh.Send(from, &ef)
			}
		}
		if err := d.Gateway.InvokeRemote(f.Fn, f.Topic, f.Payload, f.Obj, tc, false, respond); err != nil {
			// Admission refused (overload shed, pool exhaustion): answer
			// immediately so the origin fails fast instead of waiting out
			// its deadline.
			respond(nil, err)
		}
	case wire.TypeResponse:
		if d == nil {
			return
		}
		var rerr error
		if f.Flags&wire.FlagError != 0 {
			rerr = fmt.Errorf("orchestrator: remote node %s: %s", from, f.Err)
		}
		d.Gateway.CompleteRemote(f.Caller, f.Payload, rerr)
	}
}

// handleDrop attributes a frame the transport gave up on: an undeliverable
// request fails its local pending caller immediately (reason carried in the
// error) instead of leaving it to die of deadline.
func (n *WorkerNode) handleDrop(meta transport.FrameMeta, reason string, err error) {
	if meta.Type != wire.TypeRequest || meta.Caller == core.NoReply {
		return
	}
	n.mu.Lock()
	d := n.placed[meta.Chain]
	n.mu.Unlock()
	if d == nil {
		return
	}
	d.Gateway.CompleteRemote(meta.Caller, nil,
		fmt.Errorf("orchestrator: cross-node forward of %s dropped (%s): %w", meta.Fn, reason, err))
}

// stubEnv late-binds the stub handlers of one variant to their deployment
// and mesh: handlers are constructed before the chain (the spec needs them),
// but cannot run until traffic flows, by which time env is filled.
type stubEnv struct {
	dep  *Deployment
	mesh *transport.Mesh
}

// makeStub builds the transport stub for fn placed on peer: the local chain
// routes descriptors to it exactly like a real instance, and it converts
// each one into a wire frame on peer's send ring. The local buffer is
// always surrendered — Drop on success, the chain's failure path (release +
// notify) on error — so cross-node forwarding can never leak pool buffers.
func makeStub(env *stubEnv, chainName, fn, peer string) core.Handler {
	return func(ctx *core.Ctx) error {
		tc := ctx.TraceContext()
		start := time.Now()
		caller := ctx.Caller()
		f := wire.Frame{
			Type:    wire.TypeRequest,
			Caller:  caller,
			Chain:   chainName,
			Fn:      fn,
			Topic:   ctx.Topic,
			Payload: ctx.Payload(),
		}
		if caller == core.NoReply {
			f.Flags = wire.FlagNoReply
		}
		// An attached object must cross with the message — the local buffer
		// (and with it the object reference) is surrendered below, so a frame
		// without the object's bytes would silently deliver an empty body. A
		// carrier object IS the body (>BufSize admission, ReplyObject): it
		// travels as the frame payload and the remote gateway re-admits it
		// through its own large-payload path. An auxiliary object rides the
		// frame's object section and is re-materialized into the remote
		// store. Objects too big for one frame fail the caller explicitly
		// via Send's ErrFrameTooBig — never a silent truncation.
		if h := ctx.ObjectHandle(); h.Valid() {
			r, err := ctx.OpenObject()
			if err != nil {
				return fmt.Errorf("orchestrator: forward %s to %s: open attached object: %w", fn, peer, err)
			}
			obj := make([]byte, r.Size())
			if r.Size() > 0 {
				if _, err := r.ReadAt(obj, 0); err != nil {
					_ = r.Close()
					return fmt.Errorf("orchestrator: forward %s to %s: read attached object: %w", fn, peer, err)
				}
			}
			_ = r.Close()
			if ctx.ObjectIsPayload() {
				f.Payload = obj
			} else {
				f.Obj = obj
				f.Flags |= wire.FlagObject
			}
		}
		// The cross-node hop gets its own span; the remote node's request
		// span parents under it (the frame carries its ID), so the hop is
		// visible in the assembled trace as the bridge between nodes.
		if tc.Sampled() {
			if tr := env.dep.Chain.Tracer(); tr != nil {
				sid := tr.RecordSpan(caller, core.Span{
					Parent: tc.Span, Stage: core.StageXNodeForward, Function: fn,
					Instance: ctx.Instance(), Start: start, End: time.Now(),
				})
				if sid != 0 {
					tc.Span = sid
				}
			}
		}
		f.TraceHi, f.TraceLo, f.TraceSpan, f.TraceFlags = tc.TraceHi, tc.TraceLo, tc.Span, tc.Flags
		if err := env.mesh.Send(peer, &f); err != nil {
			// The chain's handler-error path releases the buffer and fails
			// the pending caller with this error.
			return fmt.Errorf("orchestrator: forward %s to %s: %w", fn, peer, err)
		}
		ctx.Drop()
		return nil
	}
}

// PlacedDeployment is one chain deployed across nodes: a per-node variant
// (real handlers for the functions placed there, transport stubs for the
// rest) plus the placement map. The head variant — the one holding the
// ingress hop — carries the chain's base name and serves Invoke traffic.
type PlacedDeployment struct {
	Name      string
	ctl       *Controller
	head      *Deployment
	placement map[string]string      // function → node name
	variants  map[string]*Deployment // node name → variant
	nodes     map[string]*WorkerNode // node name → node
}

// Head returns the head-node variant (the chain under its base name).
func (pd *PlacedDeployment) Head() *Deployment { return pd.head }

// Gateway returns the head variant's gateway — the chain's ingress.
func (pd *PlacedDeployment) Gateway() *core.Gateway { return pd.head.Gateway }

// Variant returns the named node's variant of the chain (nil if the node
// is not involved).
func (pd *PlacedDeployment) Variant(node string) *Deployment { return pd.variants[node] }

// Placement returns a copy of the function → node map.
func (pd *PlacedDeployment) Placement() map[string]string {
	out := make(map[string]string, len(pd.placement))
	for fn, nd := range pd.placement {
		out[fn] = nd
	}
	return out
}

// DeployPlacedChain deploys a chain whose FunctionSpec.Node fields place
// functions on named worker nodes ("" places on the head node). Requires
// Cluster.StartMesh first. Each involved node gets a variant chain; the
// head node's variant keeps the base name and is registered with the
// controller, so the ingress gateway and EnableAutoscaling address it as
// usual.
func (ctl *Controller) DeployPlacedChain(spec core.ChainSpec) (*PlacedDeployment, error) {
	ctl.mu.Lock()
	if _, dup := ctl.deploys[spec.Name]; dup {
		ctl.mu.Unlock()
		return nil, fmt.Errorf("orchestrator: chain %q already deployed", spec.Name)
	}
	ctl.mu.Unlock()

	nodes := ctl.sched.nodes
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	byName := make(map[string]*WorkerNode, len(nodes))
	for _, n := range nodes {
		byName[n.Name] = n
	}

	// Resolve the head node: the placement of the ingress function, or the
	// first worker when unplaced.
	ingressFn := ""
	for _, r := range spec.Routes {
		if r.From == "" && len(r.To) > 0 {
			ingressFn = r.To[0]
			break
		}
	}
	if ingressFn == "" {
		return nil, fmt.Errorf("orchestrator: chain %q has no ingress route", spec.Name)
	}
	headNode := nodes[0].Name
	for _, fs := range spec.Functions {
		if fs.Name == ingressFn && fs.Node != "" {
			headNode = fs.Node
		}
	}

	// Full placement: every unplaced function rides on the head node.
	placement := make(map[string]string, len(spec.Functions))
	involved := []string{headNode}
	for _, fs := range spec.Functions {
		node := fs.Node
		if node == "" {
			node = headNode
		}
		if _, ok := byName[node]; !ok {
			return nil, fmt.Errorf("orchestrator: function %q placed on unknown node %q", fs.Name, node)
		}
		if byName[node].Mesh == nil {
			return nil, fmt.Errorf("orchestrator: node %q has no mesh (call Cluster.StartMesh)", node)
		}
		placement[fs.Name] = node
		seen := false
		for _, in := range involved {
			if in == node {
				seen = true
			}
		}
		if !seen {
			involved = append(involved, node)
		}
	}

	pd := &PlacedDeployment{
		Name: spec.Name, ctl: ctl,
		placement: placement,
		variants:  make(map[string]*Deployment, len(involved)),
		nodes:     make(map[string]*WorkerNode, len(involved)),
	}
	envs := make(map[string]*stubEnv, len(involved))

	fail := func(err error) (*PlacedDeployment, error) {
		for _, d := range pd.variants {
			d.Close()
		}
		return nil, err
	}

	for _, nodeName := range involved {
		nd := byName[nodeName]
		env := &stubEnv{mesh: nd.Mesh}
		envs[nodeName] = env
		vspec := spec
		if nodeName != headNode {
			vspec.Name = spec.Name + "@" + nodeName
		}
		fns := make([]core.FunctionSpec, len(spec.Functions))
		for i, fs := range spec.Functions {
			fs.Node = placement[fs.Name]
			if fs.Node != nodeName {
				// Remote function: a single stub instance forwards to its
				// placement node.
				fs = core.FunctionSpec{
					Name: fs.Name, Node: fs.Node, Instances: 1,
					Handler: makeStub(env, spec.Name, fs.Name, fs.Node),
				}
			}
			fns[i] = fs
		}
		vspec.Functions = fns
		d, err := nd.Kubelet.CreateChain(vspec)
		if err != nil {
			return fail(fmt.Errorf("orchestrator: variant on %s: %w", nodeName, err))
		}
		env.dep = d
		for fn, node := range placement {
			d.Chain.Router().SetPlacement(fn, node)
		}
		// Cross-node entry points: a local function whose route
		// predecessor lives on another node is re-injected by this
		// node's gateway when the frame arrives, so the gateway needs
		// the direct dispatch edge — now and for future instances.
		for _, r := range spec.Routes {
			if r.From == "" || placement[r.From] == nodeName {
				continue
			}
			for _, to := range r.To {
				if placement[to] != nodeName {
					continue
				}
				if err := d.Chain.AllowGatewayIngress(to); err != nil {
					return fail(fmt.Errorf("orchestrator: ingress grant on %s: %w", nodeName, err))
				}
			}
		}
		d.unobserve = observeDeployment(ctl.obsv, d)
		pd.variants[nodeName] = d
		pd.nodes[nodeName] = nd
	}
	pd.head = pd.variants[headNode]

	// Expose the variants to the frame handlers only after every node's
	// stub environment is bound — no frame may find a half-built chain.
	for nodeName, d := range pd.variants {
		nd := byName[nodeName]
		nd.mu.Lock()
		nd.placed[spec.Name] = d
		nd.mu.Unlock()
	}
	ctl.mu.Lock()
	ctl.deploys[spec.Name] = pd.head
	ctl.mu.Unlock()
	return pd, nil
}

// EnableAutoscaling attaches the autoscaler to the head variant and extends
// its demand signal with the cross-node send-ring backlog: frames queued
// for a remotely-placed function count toward that function's demand, so a
// backed-up mesh link drives the same scale-up a deep local queue would.
func (pd *PlacedDeployment) EnableAutoscaling(cfg AutoscalerConfig) (*Autoscaler, error) {
	as, err := pd.ctl.EnableAutoscaling(pd.Name, cfg)
	if err != nil {
		return nil, err
	}
	headNode := pd.nodes[pd.head.Node.Name]
	as.SetRemoteBacklog(func(fn string) int {
		peer := pd.placement[fn]
		if peer == "" || peer == headNode.Name || headNode.Mesh == nil {
			return 0
		}
		return headNode.Mesh.QueuedTo(peer)
	})
	return as, nil
}

// Close tears down every variant and removes the chain from the frame
// handlers and the controller.
func (pd *PlacedDeployment) Close() {
	for nodeName, nd := range pd.nodes {
		nd.mu.Lock()
		delete(nd.placed, pd.Name)
		nd.mu.Unlock()
		_ = nodeName
	}
	pd.ctl.mu.Lock()
	if pd.ctl.deploys[pd.Name] == pd.head {
		delete(pd.ctl.deploys, pd.Name)
	}
	pd.ctl.mu.Unlock()
	for _, d := range pd.variants {
		d.Close()
	}
}

// collectMesh snapshots one node's transport counters into the
// spright_net_* families: per-peer frames/bytes sent and received, writev
// flush count, the batched-frames-per-write summary, send-ring depth,
// reconnects, and reason-attributed drops.
func collectMesh(m *transport.Mesh) []obs.Family {
	st := m.Stats()
	node := m.Node()

	framesSent := obs.Family{Name: "spright_net_frames_sent_total",
		Help: "Wire frames fully handed to the kernel per peer link.", Type: obs.Counter}
	bytesSent := obs.Family{Name: "spright_net_bytes_sent_total",
		Help: "Encoded frame bytes sent per peer link.", Type: obs.Counter}
	writes := obs.Family{Name: "spright_net_writes_total",
		Help: "Batched writev-style flushes per peer link.", Type: obs.Counter}
	reconnects := obs.Family{Name: "spright_net_reconnects_total",
		Help: "Times a peer link was re-dialed after a connection loss.", Type: obs.Counter}
	depth := obs.Family{Name: "spright_net_send_ring_depth",
		Help: "Frames staged on the per-peer send ring awaiting flush.", Type: obs.Gauge}
	drops := obs.Family{Name: "spright_net_drops_total",
		Help: "Frames the transport gave up on, by reason (backlog, conn_down, closed).",
		Type: obs.Counter}
	perWrite := obs.Family{Name: "spright_net_frames_per_write",
		Help: "Distribution of frames coalesced into each flush.", Type: obs.Summary}

	for _, ps := range st.Sent {
		ls := obs.L("node", node, "peer", ps.Peer)
		framesSent.Samples = append(framesSent.Samples, obs.Sample{Labels: ls, Value: float64(ps.FramesSent)})
		bytesSent.Samples = append(bytesSent.Samples, obs.Sample{Labels: ls, Value: float64(ps.BytesSent)})
		writes.Samples = append(writes.Samples, obs.Sample{Labels: ls, Value: float64(ps.Writes)})
		reconnects.Samples = append(reconnects.Samples, obs.Sample{Labels: ls, Value: float64(ps.Reconnects)})
		depth.Samples = append(depth.Samples, obs.Sample{Labels: ls, Value: float64(ps.QueueDepth)})
		for _, reason := range []string{transport.DropBacklog, transport.DropConnDown, transport.DropClosed} {
			drops.Samples = append(drops.Samples, obs.Sample{
				Labels: obs.L("node", node, "peer", ps.Peer, "reason", reason),
				Value:  float64(ps.Drops[reason]),
			})
		}
		sub := obs.SummaryFamily("spright_net_frames_per_write", "", ls, ps.FramesPerWrite)
		perWrite.Samples = append(perWrite.Samples, sub.Samples...)
	}

	framesRecv := obs.Family{Name: "spright_net_frames_received_total",
		Help: "Wire frames decoded per remote peer.", Type: obs.Counter}
	bytesRecv := obs.Family{Name: "spright_net_bytes_received_total",
		Help: "Frame bytes (prefix included) received per remote peer.", Type: obs.Counter}
	for _, rs := range st.Received {
		ls := obs.L("node", node, "peer", rs.Peer)
		framesRecv.Samples = append(framesRecv.Samples, obs.Sample{Labels: ls, Value: float64(rs.FramesReceived)})
		bytesRecv.Samples = append(bytesRecv.Samples, obs.Sample{Labels: ls, Value: float64(rs.BytesReceived)})
	}

	return []obs.Family{
		framesSent, bytesSent, writes, reconnects, depth, drops, perWrite,
		framesRecv, bytesRecv,
		obs.CounterFamily("spright_net_recv_errors_total",
			"Inbound connections torn down on framing or decode errors.",
			obs.L("node", node), float64(st.RecvErrors)),
	}
}
