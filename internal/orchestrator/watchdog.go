package orchestrator

// SLO watchdog: the per-chain breach detector layered on the sliding-window
// SLO monitor. It evaluates on the gateway's metrics-agent tick (no
// goroutine of its own), counts breaches by kind into /metrics, journals
// them on the flight recorder, and — rate-limited — captures a diagnostic
// bundle at breach time: the flight events and tail traces around the
// breach, the full stats snapshot, the window report that tripped it, and
// process profiles. The bundle is written while the evidence is still in
// the bounded rings, which is the whole point of a black box.

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/spright-go/spright/internal/obs"
)

// SLOPolicy is one chain's service-level objective plus the capture knobs
// of its watchdog.
type SLOPolicy struct {
	// TargetP99 breaches when the window p99 latency exceeds it (0: the
	// latency objective is unchecked).
	TargetP99 time.Duration
	// MaxErrorRate breaches when the window error rate (failed/requests)
	// exceeds it (0: the error objective is unchecked).
	MaxErrorRate float64
	// Window overrides the monitor's sliding window (0: keep the monitor's).
	Window time.Duration
	// MinRequests is the minimum window request count before either
	// objective is evaluated, so an idle chain's stale tail cannot breach
	// (<= 0: 16).
	MinRequests uint64

	// BundleDir is where breach bundles are written ("" falls back to the
	// observability layer's configured dir; both empty disables capture).
	BundleDir string
	// BundleCooldown is the minimum gap between bundle captures — the rate
	// limit that keeps a sustained breach from filling the disk (<= 0: 30s).
	BundleCooldown time.Duration
	// CPUProfile, when > 0, samples a CPU profile of that duration into
	// each bundle.
	CPUProfile time.Duration
	// FlightEvents bounds how many of the chain's most recent flight
	// events a bundle retains (<= 0: 256).
	FlightEvents int
	// TraceLimit bounds the retained traces rendered per bundle (<= 0: 64).
	TraceLimit int
}

// Breach kinds (the `kind` label of spright_slo_breaches_total).
const (
	BreachLatency   = "latency"
	BreachErrorRate = "error_rate"
)

// SLOWatchdog evaluates one deployment's SLOPolicy against its monitor.
type SLOWatchdog struct {
	dep    *Deployment
	obsv   *obs.Observability
	mon    *obs.SLOMonitor
	policy SLOPolicy

	breachLatency atomic.Uint64
	breachErrRate atomic.Uint64
	captured      atomic.Uint64
	suppressed    atomic.Uint64
	failed        atomic.Uint64

	// capturing serializes bundle writes per chain; lastBundle is the
	// unix-nano stamp of the newest capture (the cooldown clock).
	capturing  atomic.Bool
	lastBundle atomic.Int64

	unobserve func()
}

// EnableSLOWatchdog attaches a watchdog to a deployed chain. It evaluates
// on the chain's metrics-agent tick; Evaluate is exported for deterministic
// tests. Returns the watchdog; Deployment.Close (or DeleteChain) tears it
// down.
func (ctl *Controller) EnableSLOWatchdog(name string, policy SLOPolicy) (*SLOWatchdog, error) {
	d, ok := ctl.Deployment(name)
	if !ok {
		return nil, fmt.Errorf("orchestrator: chain %q not deployed", name)
	}
	if policy.MinRequests <= 0 {
		policy.MinRequests = 16
	}
	if policy.BundleCooldown <= 0 {
		policy.BundleCooldown = 30 * time.Second
	}
	if policy.FlightEvents <= 0 {
		policy.FlightEvents = 256
	}
	if policy.TraceLimit <= 0 {
		policy.TraceLimit = 64
	}
	// Check-and-install is one critical section so two concurrent calls
	// cannot both pass the "already" check, double-register the slo:
	// collector, and leak a watchdog. The registry and /slo registrations
	// ride inside it: both only take their own short-lived locks, and no
	// collector or report path locks sloMu, so the order is deadlock-free.
	d.sloMu.Lock()
	defer d.sloMu.Unlock()
	if d.watchdog != nil {
		return nil, fmt.Errorf("orchestrator: chain %q already has an SLO watchdog", name)
	}
	mon := d.sloMon
	if mon == nil {
		return nil, fmt.Errorf("orchestrator: chain %q has no SLO monitor (observability off)", name)
	}
	if policy.Window > 0 {
		// A policy window replaces the default monitor so the breach math
		// and /slo agree on what "the window" means. The agent tick reads
		// d.sloMon on every tick, so the replacement starts ticking here.
		mon = obs.NewSLOMonitor(sloSource(d), policy.Window, d.Chain.ScrapeInterval())
		ctl.obsv.RegisterSLOMonitor(name, mon)
	}
	w := &SLOWatchdog{dep: d, obsv: ctl.obsv, mon: mon, policy: policy}
	if ctl.obsv != nil {
		key := "slo:" + name
		o := ctl.obsv
		o.Registry().Register(key, func() []obs.Family { return collectWatchdog(name, w) })
		w.unobserve = func() { o.Registry().Unregister(key) }
	}
	d.sloMon = mon
	d.watchdog = w
	return w, nil
}

// close drops the watchdog's collector (called from Deployment.Close).
func (w *SLOWatchdog) close() {
	if w.unobserve != nil {
		w.unobserve()
	}
}

// Policy returns the resolved policy.
func (w *SLOWatchdog) Policy() SLOPolicy { return w.policy }

// Breaches returns the all-time breach counts by kind.
func (w *SLOWatchdog) Breaches() (latency, errorRate uint64) {
	return w.breachLatency.Load(), w.breachErrRate.Load()
}

// Bundles returns how many diagnostic bundles were captured and how many
// breaches were suppressed by the rate limit.
func (w *SLOWatchdog) Bundles() (captured, suppressed uint64) {
	return w.captured.Load(), w.suppressed.Load()
}

// BundleFailures returns how many bundle captures failed on disk I/O
// (journaled as bundle_failed flight events carrying the error).
func (w *SLOWatchdog) BundleFailures() uint64 { return w.failed.Load() }

// Evaluate runs one breach check against the monitor's current window and
// returns the breach kinds found (empty: within SLO). Called on every
// metrics-agent tick; safe to call concurrently.
func (w *SLOWatchdog) Evaluate(now time.Time) []string {
	chain := w.dep.Chain.Name()
	rep := w.mon.Report(chain, now)
	if rep.Requests < w.policy.MinRequests {
		return nil
	}
	fr := flightOf(w.obsv)
	var kinds []string
	if t := w.policy.TargetP99; t > 0 && rep.P99Ms > t.Seconds()*1e3 {
		w.breachLatency.Add(1)
		kinds = append(kinds, BreachLatency)
		fr.Emit(chain, obs.EventSLOBreach, rep.Dominant, BreachLatency,
			int64(rep.P99Ms*1e6)) // measured p99 in nanos
	}
	if m := w.policy.MaxErrorRate; m > 0 && rep.ErrorRate > m {
		w.breachErrRate.Add(1)
		kinds = append(kinds, BreachErrorRate)
		fr.Emit(chain, obs.EventSLOBreach, "", BreachErrorRate,
			int64(rep.ErrorRate*1e6)) // parts per million
	}
	if len(kinds) > 0 {
		w.maybeCapture(now, rep, kinds)
	}
	return kinds
}

// flightOf tolerates a nil observability (tests constructing a watchdog by
// hand); FlightRecorder.Emit is already nil-safe.
func flightOf(o *obs.Observability) *obs.FlightRecorder {
	if o == nil {
		return nil
	}
	return o.Flight()
}

// maybeCapture writes one diagnostic bundle unless the cooldown or an
// in-flight capture suppresses it. The evidence (events, traces, stats,
// report) is gathered synchronously — the rings are still hot — and only
// the disk writes and profiles run on a background goroutine, so the agent
// tick never blocks on a CPU profile.
func (w *SLOWatchdog) maybeCapture(now time.Time, rep obs.SLOReport, kinds []string) {
	dir := w.policy.BundleDir
	if dir == "" && w.obsv != nil {
		dir = w.obsv.BundleDir()
	}
	if dir == "" {
		return
	}
	last := w.lastBundle.Load()
	if last != 0 && now.Sub(time.Unix(0, last)) < w.policy.BundleCooldown {
		w.suppressed.Add(1)
		return
	}
	if !w.capturing.CompareAndSwap(false, true) {
		w.suppressed.Add(1)
		return
	}
	w.lastBundle.Store(now.UnixNano())

	chain := w.dep.Chain.Name()
	id := chain + "-" + strconv.FormatInt(now.UnixNano(), 10)
	fr := flightOf(w.obsv)
	// Last N flight events: the ring snapshot is oldest-first, so keep the
	// tail.
	var events []obs.Event
	if fr != nil {
		events = fr.Events(chain, 0, 0)
		if n := w.policy.FlightEvents; len(events) > n {
			events = events[len(events)-n:]
		}
	}
	spec := obs.BundleSpec{
		Dir: dir,
		ID:  id,
		Meta: map[string]any{
			"chain":          chain,
			"breach_kinds":   kinds,
			"captured_at":    now.Format(time.RFC3339Nano),
			"target_p99_ms":  float64(w.policy.TargetP99) / 1e6,
			"max_error_rate": w.policy.MaxErrorRate,
			"window_p99_ms":  rep.P99Ms,
			"error_rate":     rep.ErrorRate,
		},
		Events:     events,
		Traces:     traceSnapshot(w.dep.Chain, w.policy.TraceLimit),
		Stats:      w.dep.Gateway.Stats(),
		SLO:        rep,
		CPUProfile: w.policy.CPUProfile,
	}
	go func() {
		defer w.capturing.Store(false)
		if _, err := obs.WriteBundle(spec); err != nil {
			// A failed write is not a suppression: count it under its own
			// outcome and journal the error so disk trouble is diagnosable.
			w.failed.Add(1)
			fr.Emit(chain, obs.EventBundleFailed, "", err.Error(), 0)
			return
		}
		w.captured.Add(1)
		fr.Emit(chain, obs.EventBundleCaptured, "", id, 0)
	}()
}

// collectWatchdog exports the watchdog's breach and bundle counters.
func collectWatchdog(chain string, w *SLOWatchdog) []obs.Family {
	breaches := obs.Family{
		Name: "spright_slo_breaches_total",
		Help: "SLO watchdog breaches, by kind.",
		Type: obs.Counter,
		Samples: []obs.Sample{
			{Labels: obs.L("chain", chain, "kind", BreachLatency),
				Value: float64(w.breachLatency.Load())},
			{Labels: obs.L("chain", chain, "kind", BreachErrorRate),
				Value: float64(w.breachErrRate.Load())},
		},
	}
	bundles := obs.Family{
		Name: "spright_slo_bundles_total",
		Help: "Diagnostic bundle captures, by outcome (captured, suppressed, failed).",
		Type: obs.Counter,
		Samples: []obs.Sample{
			{Labels: obs.L("chain", chain, "outcome", "captured"),
				Value: float64(w.captured.Load())},
			{Labels: obs.L("chain", chain, "outcome", "suppressed"),
				Value: float64(w.suppressed.Load())},
			{Labels: obs.L("chain", chain, "outcome", "failed"),
				Value: float64(w.failed.Load())},
		},
	}
	return []obs.Family{breaches, bundles}
}
