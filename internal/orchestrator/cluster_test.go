package orchestrator

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/core"
)

func upperSpec(name string) core.ChainSpec {
	return core.ChainSpec{
		Name: name,
		Functions: []core.FunctionSpec{{
			Name: "up",
			Handler: func(ctx *core.Ctx) error {
				b := ctx.Payload()
				for i := range b {
					if b[i] >= 'a' && b[i] <= 'z' {
						b[i] -= 32
					}
				}
				return nil
			},
		}},
		Routes: []core.RouteSpec{{From: "", To: []string{"up"}}},
	}
}

func TestDeployAndInvokeThroughController(t *testing.T) {
	cl := NewCluster(2)
	d, err := cl.Controller.DeployChain(upperSpec("c1"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	out, err := d.Gateway.Invoke(context.Background(), "", []byte("hi"))
	if err != nil || string(out) != "HI" {
		t.Fatalf("got %q, %v", out, err)
	}
}

func TestDuplicateChainRejected(t *testing.T) {
	cl := NewCluster(1)
	d, err := cl.Controller.DeployChain(upperSpec("c1"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := cl.Controller.DeployChain(upperSpec("c1")); err == nil {
		t.Fatal("duplicate deploy must fail")
	}
}

func TestSchedulerBalancesChains(t *testing.T) {
	cl := NewCluster(3)
	for i := 0; i < 6; i++ {
		name := "chain-" + string(rune('a'+i))
		if _, err := cl.Controller.DeployChain(upperSpec(name)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range cl.Nodes() {
		if n.Chains() != 2 {
			t.Fatalf("node %s has %d chains, want 2 (balanced placement)", n.Name, n.Chains())
		}
	}
}

func TestChainLevelPlacement(t *testing.T) {
	// All instances of a chain share one node's kernel: scale-ups must
	// not cross nodes.
	cl := NewCluster(2)
	d, err := cl.Controller.DeployChain(upperSpec("c1"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Chain.ScaleUp("up"); err != nil {
		t.Fatal(err)
	}
	// both instances answer through the same gateway/kernel
	out, err := d.Gateway.Invoke(context.Background(), "", []byte("x"))
	if err != nil || string(out) != "X" {
		t.Fatalf("%q %v", out, err)
	}
}

func TestDeleteChainReleasesPrefix(t *testing.T) {
	cl := NewCluster(1)
	d, err := cl.Controller.DeployChain(upperSpec("c1"))
	if err != nil {
		t.Fatal(err)
	}
	node := d.Node
	if err := cl.Controller.DeleteChain("c1"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Controller.DeleteChain("c1"); err == nil {
		t.Fatal("double delete must fail")
	}
	// prefix is reusable: redeploy on the same node
	if _, err := node.Kubelet.CreateChain(upperSpec("c1")); err != nil {
		t.Fatalf("prefix not released: %v", err)
	}
}

func TestIngressGatewayRoutesByChain(t *testing.T) {
	cl := NewCluster(1)
	d1, err := cl.Controller.DeployChain(upperSpec("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	srv := httptest.NewServer(cl.Ingress)
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/alpha/do", "text/plain", strings.NewReader("abc"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ABC" {
		t.Fatalf("got %d %q", resp.StatusCode, body)
	}

	resp, err = http.Post(srv.URL+"/ghost/do", "text/plain", strings.NewReader("abc"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown chain must 404, got %d", resp.StatusCode)
	}
}

func TestKubeletProbe(t *testing.T) {
	cl := NewCluster(1)
	d, err := cl.Controller.DeployChain(upperSpec("c1"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	res := d.Node.Kubelet.Probe(d)
	if len(res) != 1 || !res[0].Healthy {
		t.Fatalf("probe results %+v", res)
	}
}

func TestAutoscalerScalesUpUnderLoad(t *testing.T) {
	cl := NewCluster(1)
	block := make(chan struct{})
	spec := core.ChainSpec{
		Name: "busy",
		Functions: []core.FunctionSpec{{
			Name:        "slow",
			Concurrency: 4,
			Handler: func(ctx *core.Ctx) error {
				<-block
				return nil
			},
		}},
		Routes: []core.RouteSpec{{From: "", To: []string{"slow"}}},
	}
	d, err := cl.Controller.DeployChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	blockOnce := sync.Once{}
	unblock := func() { blockOnce.Do(func() { close(block) }) }
	defer unblock()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			d.Gateway.Invoke(ctx, "", []byte("x"))
		}()
	}
	// wait for inflight to accumulate
	deadline := time.Now().Add(2 * time.Second)
	for {
		total := 0
		for _, in := range d.Chain.Instances() {
			total += in.Inflight()
		}
		if total >= 4 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	as := NewAutoscaler(d, 2)
	decisions := as.Evaluate()
	if len(decisions) == 0 || decisions[0].To <= decisions[0].From {
		t.Fatalf("autoscaler must scale up, got %+v", decisions)
	}
	if len(d.Chain.Instances()) < 2 {
		t.Fatal("instances must increase")
	}
	unblock()
	wg.Wait()

	// idle: wait for handlers to drain, then scale back to MinReplicas
	deadline = time.Now().Add(2 * time.Second)
	for {
		total := 0
		for _, in := range d.Chain.Instances() {
			total += in.Inflight()
		}
		if total == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	as.Evaluate()
	if got := len(d.Chain.Instances()); got != 1 {
		t.Fatalf("idle chain must return to 1 warm instance, has %d", got)
	}
	if len(as.Decisions()) < 2 {
		t.Fatalf("decision history incomplete: %+v", as.Decisions())
	}
}

func TestAutoscalerStartStop(t *testing.T) {
	cl := NewCluster(1)
	d, err := cl.Controller.DeployChain(upperSpec("c1"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	as := NewAutoscaler(d, 0) // default target
	as.Start(time.Millisecond)
	as.Start(time.Millisecond) // idempotent
	time.Sleep(10 * time.Millisecond)
	as.Stop()
	as.Stop() // idempotent
}

func TestEmptySchedulerFails(t *testing.T) {
	s := &Scheduler{}
	if _, err := s.Place(); err != ErrNoNodes {
		t.Fatalf("want ErrNoNodes, got %v", err)
	}
}

// TestNodeEngineMetricsExposed: the cluster exposition carries per-node
// eBPF engine series, and driving traffic through a deployed chain moves
// the jit counter (the dataplane programs compile to the fast paths) while
// the interpreter counter stays put.
func TestNodeEngineMetricsExposed(t *testing.T) {
	cl := NewCluster(1)
	d, err := cl.Controller.DeployChain(upperSpec("engmet"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Gateway.Invoke(context.Background(), "", []byte("x")); err != nil {
		t.Fatal(err)
	}

	scrape := func() string {
		rec := httptest.NewRecorder()
		cl.Observability().Registry().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		return rec.Body.String()
	}
	body := scrape()
	for _, want := range []string{
		`spright_ebpf_runs_total{engine="jit",node="worker-1"}`,
		`spright_ebpf_runs_total{engine="interp",node="worker-1"}`,
		`spright_ebpf_loaded_programs{node="worker-1"}`,
		`spright_ebpf_compiled_programs{node="worker-1"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %s:\n%s", want, body)
		}
	}
	val := func(body, series string) float64 {
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, series+" ") {
				var v float64
				if _, err := fmt.Sscanf(strings.TrimPrefix(line, series+" "), "%g", &v); err != nil {
					t.Fatalf("parse %q: %v", line, err)
				}
				return v
			}
		}
		t.Fatalf("series %s not found", series)
		return 0
	}
	jit := val(body, `spright_ebpf_runs_total{engine="jit",node="worker-1"}`)
	if jit <= 0 {
		t.Fatalf("jit runs = %v, want > 0 after traffic", jit)
	}
	if interp := val(body, `spright_ebpf_runs_total{engine="interp",node="worker-1"}`); interp != 0 {
		t.Fatalf("interp runs = %v, want 0 (dataplane programs should be compiled)", interp)
	}
	if compiled := val(body, `spright_ebpf_compiled_programs{node="worker-1"}`); compiled < 2 {
		t.Fatalf("compiled programs = %v, want >= 2 (sproxy + eproxy)", compiled)
	}

	// More traffic moves the counter monotonically.
	if _, err := d.Gateway.Invoke(context.Background(), "", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if jit2 := val(scrape(), `spright_ebpf_runs_total{engine="jit",node="worker-1"}`); jit2 <= jit {
		t.Fatalf("jit runs did not advance: %v -> %v", jit, jit2)
	}
}
