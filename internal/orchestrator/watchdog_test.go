package orchestrator

// End-to-end SLO watchdog test: faults injected via internal/fault (delay +
// error) push a chain past its SLO, the watchdog breaches on both
// objectives, and exactly one rate-limited diagnostic bundle lands on disk
// containing the breaching trace IDs and the surrounding shed / circuit
// flight events.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/core"
	"github.com/spright-go/spright/internal/fault"
	"github.com/spright-go/spright/internal/obs"
)

func TestSLOWatchdogE2E(t *testing.T) {
	cl := NewCluster(1)
	// Faults: the first 2 invocations error (error-rate breach + one
	// circuit flip with ConsecutiveFailures 2), every later one is delayed
	// 3ms (latency breach against a 1ms target). The bounded error rule
	// comes first — the injector's first firing rule wins.
	inj := fault.New(11).
		Add(fault.Rule{Op: fault.OpError, Function: "work", Probability: 1, MaxCount: 2}).
		Add(fault.Rule{Op: fault.OpDelay, Delay: 3 * time.Millisecond})
	dep, err := cl.Controller.DeployChain(core.ChainSpec{
		Name:             "wd",
		TraceSampleEvery: 1, // sample everything: the bundle must name trace IDs
		TraceTailLatency: time.Millisecond,
		ScrapeInterval:   -1, // no agent goroutine: the test drives Evaluate
		Injector:         inj,
		Health:           core.HealthPolicy{ConsecutiveFailures: 2, OpenDuration: time.Millisecond},
		Admission:        core.AdmissionPolicy{MaxPending: 2},
		Functions: []core.FunctionSpec{{
			Name:    "work",
			Handler: func(ctx *core.Ctx) error { return nil },
		}},
		Routes: []core.RouteSpec{{From: "", To: []string{"work"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	bundleDir := t.TempDir()
	wd, err := cl.Controller.EnableSLOWatchdog("wd", SLOPolicy{
		TargetP99:    time.Millisecond,
		MaxErrorRate: 0.01,
		BundleDir:    bundleDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Controller.EnableSLOWatchdog("wd", SLOPolicy{}); err == nil {
		t.Fatal("second EnableSLOWatchdog must fail")
	}

	// Drive faulted traffic in phases. First the errors: 2 serial requests
	// burn the 2-shot error rule and flip the breaker (circuit events).
	for i := 0; i < 2; i++ {
		_, _ = dep.Gateway.Invoke(context.Background(), "", []byte("x"))
	}
	time.Sleep(5 * time.Millisecond) // let the breaker's open window lapse

	// Then the delays: a concurrent burst of slow (3ms) requests overruns
	// MaxPending=2, shedding most of it (overload events), and serial slow
	// requests fill the window well past MinRequests.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = dep.Gateway.Invoke(context.Background(), "", []byte("x"))
		}()
	}
	wg.Wait()
	for i := 0; i < 40; i++ {
		_, _ = dep.Gateway.Invoke(context.Background(), "", []byte("x"))
	}

	gs := dep.Gateway.Stats()
	if gs.ShedOverload == 0 {
		t.Fatalf("burst shed nothing (stats %+v): the bundle needs shed events", gs)
	}

	// One evaluation breaches both objectives and captures a bundle; an
	// immediate second evaluation breaches again but is rate-limited away.
	kinds := wd.Evaluate(time.Now())
	if len(kinds) != 2 {
		t.Fatalf("breach kinds %v, want [latency error_rate]", kinds)
	}
	kinds = wd.Evaluate(time.Now())
	if len(kinds) == 0 {
		t.Fatal("second evaluation should still breach (only the bundle is rate-limited)")
	}

	// The bundle write runs on a background goroutine; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if captured, _ := wd.Bundles(); captured == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("bundle never captured")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, suppressed := wd.Bundles(); suppressed == 0 {
		t.Fatal("second breach not suppressed by the bundle cooldown")
	}

	entries, err := os.ReadDir(bundleDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d bundles on disk, want exactly 1 (rate limit)", len(entries))
	}
	bundle := filepath.Join(bundleDir, entries[0].Name())

	// meta.json names the chain and both breach kinds.
	meta := readBundleFile(t, bundle, "meta.json")
	for _, want := range []string{`"wd"`, BreachLatency, BreachErrorRate} {
		if !strings.Contains(meta, want) {
			t.Fatalf("meta.json missing %q:\n%s", want, meta)
		}
	}

	// events.json holds the surrounding shed and circuit-breaker events.
	events := readBundleFile(t, bundle, "events.json")
	for _, want := range []string{obs.EventShed, obs.EventCircuitOpen, obs.EventSLOBreach} {
		if !strings.Contains(events, want) {
			t.Fatalf("events.json missing %q events:\n%s", want, events)
		}
	}

	// traces.json reconstructs the breach: it must carry the tail-retained
	// trace IDs of the slow/errored requests.
	traces := readBundleFile(t, bundle, "traces.json")
	tail := dep.Chain.Tracer().TailRetained()
	if len(tail) == 0 {
		t.Fatal("no tail-retained traces despite injected faults")
	}
	found := 0
	for _, tr := range tail {
		if strings.Contains(traces, tr.ID.String()) {
			found++
		}
	}
	if found == 0 {
		t.Fatalf("traces.json names none of the %d breaching trace IDs", len(tail))
	}

	// stats.json, slo.json and the profiles ride along.
	var stats map[string]any
	if err := json.Unmarshal([]byte(readBundleFile(t, bundle, "stats.json")), &stats); err != nil {
		t.Fatalf("stats.json not JSON: %v", err)
	}
	slo := readBundleFile(t, bundle, "slo.json")
	if !strings.Contains(slo, `"p99_ms"`) {
		t.Fatalf("slo.json missing window report:\n%s", slo)
	}
	for _, f := range []string{"goroutine.txt", "heap.pprof"} {
		if _, err := os.Stat(filepath.Join(bundle, f)); err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
	}

	// The breach counters are on /metrics via the slo: collector.
	exp := scrape(t, cl)
	for _, want := range []string{
		`spright_slo_breaches_total{chain="wd",kind="latency"}`,
		`spright_slo_breaches_total{chain="wd",kind="error_rate"}`,
		`spright_slo_bundles_total{chain="wd",outcome="captured"} 1`,
	} {
		if !strings.Contains(exp, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestSLOWatchdogPolicyWindowMonitorTicked: a policy window swaps a
// replacement monitor into the deployment; the gateway's agent tick must
// pick up the replacement (not a captured original), or its snapshot ring
// stays empty, the window never slides, and the p99 trend never populates.
func TestSLOWatchdogPolicyWindowMonitorTicked(t *testing.T) {
	cl := NewCluster(1)
	dep, err := cl.Controller.DeployChain(core.ChainSpec{
		Name:           "wdwin",
		ScrapeInterval: 2 * time.Millisecond,
		Functions: []core.FunctionSpec{{
			Name:    "work",
			Handler: func(ctx *core.Ctx) error { return nil },
		}},
		Routes: []core.RouteSpec{{From: "", To: []string{"work"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	orig := dep.SLOMonitor()
	if _, err := cl.Controller.EnableSLOWatchdog("wdwin", SLOPolicy{
		TargetP99: time.Second,
		Window:    250 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	mon := dep.SLOMonitor()
	if mon == orig {
		t.Fatal("policy window did not replace the deployment's monitor")
	}
	if got := mon.Window(); got != 250*time.Millisecond {
		t.Fatalf("replacement monitor window %v, want 250ms", got)
	}
	// Keep traffic flowing while the agent ticks every 2ms: the trend only
	// fills if those ticks reach the replacement monitor (an un-ticked
	// monitor has an empty ring, so its window never sees a delta).
	deadline := time.Now().Add(5 * time.Second)
	for {
		for i := 0; i < 5; i++ {
			if _, err := dep.Gateway.Invoke(context.Background(), "", []byte("x")); err != nil {
				t.Fatal(err)
			}
		}
		if rep := mon.Report("wdwin", time.Now()); len(rep.TrendP99Ms) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replacement monitor never ticked: p99 trend still empty")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEnableSLOWatchdogConcurrent: racing enables on one chain must elect
// exactly one watchdog (the check-and-install is a single critical
// section) instead of double-registering the slo: collector.
func TestEnableSLOWatchdogConcurrent(t *testing.T) {
	cl := NewCluster(1)
	dep, err := cl.Controller.DeployChain(core.ChainSpec{
		Name:           "wdrace",
		ScrapeInterval: -1,
		Functions: []core.FunctionSpec{{
			Name:    "work",
			Handler: func(ctx *core.Ctx) error { return nil },
		}},
		Routes: []core.RouteSpec{{From: "", To: []string{"work"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	var won, lost atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl.Controller.EnableSLOWatchdog("wdrace", SLOPolicy{
				Window: 100 * time.Millisecond,
			})
			if err != nil {
				lost.Add(1)
			} else {
				won.Add(1)
			}
		}()
	}
	wg.Wait()
	if won.Load() != 1 || lost.Load() != 7 {
		t.Fatalf("concurrent enables: %d won / %d lost, want exactly 1 winner", won.Load(), lost.Load())
	}
	if dep.Watchdog() == nil {
		t.Fatal("no watchdog installed after the race")
	}
}

func readBundleFile(t *testing.T, dir, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatalf("bundle file %s: %v", name, err)
	}
	return string(b)
}

func scrape(t *testing.T, cl *Cluster) string {
	t.Helper()
	rec := httptest.NewRecorder()
	cl.Observability().Registry().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	return rec.Body.String()
}
