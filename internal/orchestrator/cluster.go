// Package orchestrator provides SPRIGHT's control plane (Fig. 3): the
// cluster-wide SPRIGHT controller cooperating with per-node kubelets to
// create chains (the Fig. 6 startup flow), a chain-level placement engine
// (functions of one chain are co-located on a node, §3.8), a cluster-wide
// ingress gateway routing external requests to per-chain SPRIGHT gateways,
// health probing, and a metrics-driven autoscaler hook.
package orchestrator

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"github.com/spright-go/spright/internal/core"
	"github.com/spright-go/spright/internal/ebpf"
	"github.com/spright-go/spright/internal/netstack"
	"github.com/spright-go/spright/internal/obs"
	"github.com/spright-go/spright/internal/shm"
	"github.com/spright-go/spright/internal/transport"
)

// WorkerNode is one node's infrastructure: its eBPF kernel, its shared
// memory manager (the DPDK primary process), and its simulated network.
type WorkerNode struct {
	Name    string
	Kernel  *ebpf.Kernel
	ShmMgr  *shm.Manager
	Net     *netstack.Node
	Kubelet *Kubelet

	// Mesh is the node's inter-node transport endpoint (nil until
	// Cluster.StartMesh). placed maps base chain name → this node's
	// variant of a placed chain, the frame handler's dispatch table.
	Mesh *transport.Mesh

	mu     sync.Mutex
	chains map[string]*Deployment
	placed map[string]*Deployment
}

// NewWorkerNode provisions a node.
func NewWorkerNode(name string) *WorkerNode {
	n := &WorkerNode{
		Name:   name,
		Kernel: ebpf.NewKernel(),
		ShmMgr: shm.NewManager(),
		Net:    netstack.NewNode(name),
		chains: make(map[string]*Deployment),
		placed: make(map[string]*Deployment),
	}
	n.Kubelet = &Kubelet{node: n}
	return n
}

// Chains returns the number of chains deployed on the node.
func (n *WorkerNode) Chains() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.chains)
}

// Deployment is one deployed chain: where it runs and its dataplane.
type Deployment struct {
	Node    *WorkerNode
	Chain   *core.Chain
	Gateway *core.Gateway

	unobserve func() // drops the chain's obs registrations (may be nil)

	asMu        sync.Mutex
	autoscaler  *Autoscaler
	unobserveAS func()

	// sloMon is the chain's sliding-window SLO monitor (set by
	// observeDeployment); watchdog is the breach detector layered on top of
	// it (nil until EnableSLOWatchdog). Both are ticked by the gateway's
	// metrics agent, so neither owns a goroutine.
	sloMu    sync.Mutex
	sloMon   *obs.SLOMonitor
	watchdog *SLOWatchdog
}

// SLOMonitor returns the deployment's sliding-window SLO monitor (nil when
// the cluster runs without observability).
func (d *Deployment) SLOMonitor() *obs.SLOMonitor {
	d.sloMu.Lock()
	defer d.sloMu.Unlock()
	return d.sloMon
}

// Watchdog returns the deployment's SLO watchdog (nil until
// EnableSLOWatchdog).
func (d *Deployment) Watchdog() *SLOWatchdog {
	d.sloMu.Lock()
	defer d.sloMu.Unlock()
	return d.watchdog
}

// Autoscaler returns the deployment's autoscaling control plane (nil
// until EnableAutoscaling).
func (d *Deployment) Autoscaler() *Autoscaler {
	d.asMu.Lock()
	defer d.asMu.Unlock()
	return d.autoscaler
}

// Close tears the deployment down.
func (d *Deployment) Close() {
	// The watchdog goes before the monitor it reads; both go before the
	// gateway whose agent ticks them.
	d.sloMu.Lock()
	wd := d.watchdog
	d.watchdog = nil
	d.sloMu.Unlock()
	if wd != nil {
		wd.close()
	}
	// The control plane goes first: no scale actions may race teardown.
	d.asMu.Lock()
	as, unobsAS := d.autoscaler, d.unobserveAS
	d.autoscaler, d.unobserveAS = nil, nil
	d.asMu.Unlock()
	if as != nil {
		as.Close()
	}
	if unobsAS != nil {
		unobsAS()
	}
	if d.unobserve != nil {
		d.unobserve()
	}
	d.Gateway.Close()
	d.Chain.Close()
	d.Node.mu.Lock()
	delete(d.Node.chains, d.Chain.Name())
	d.Node.mu.Unlock()
	_ = d.Node.ShmMgr.Release(d.Chain.Name())
}

// Kubelet is the per-node pod manager the controller instructs (§3.1). It
// performs the node-local steps of the Fig. 6 startup flow.
type Kubelet struct {
	node *WorkerNode
}

// CreateChain executes the node-local startup flow of Fig. 6:
// ① a dedicated shared-memory manager/pool for the chain, ② pool
// initialization, ③ a dedicated SPRIGHT gateway, ④ function startup with
// SPROXY attachment and filter-rule configuration. Steps ①②④ happen inside
// core.NewChain (pool creation, instance startup, filter configuration);
// step ③ is the gateway construction.
func (k *Kubelet) CreateChain(spec core.ChainSpec) (*Deployment, error) {
	c, err := core.NewChain(k.node.Kernel, k.node.ShmMgr, spec)
	if err != nil {
		return nil, err
	}
	g, err := core.NewGateway(c)
	if err != nil {
		c.Close()
		_ = k.node.ShmMgr.Release(spec.Name)
		return nil, err
	}
	d := &Deployment{Node: k.node, Chain: c, Gateway: g}
	k.node.mu.Lock()
	k.node.chains[spec.Name] = d
	k.node.mu.Unlock()
	return d, nil
}

// ProbeResult is one instance's health state.
type ProbeResult struct {
	Function    string
	Instance    uint32
	Healthy     bool
	Crashes     uint64
	CircuitOpen bool
}

// Probe performs the §3.3 health checks: SPRIGHT dispenses with the queue
// proxy's probing and instead asks each function's socket directly (the
// "minimal change of opening an additional socket" — here the descriptor
// socket doubles as the probe target). An instance whose circuit breaker
// is open — the dataplane has stopped routing to it — is unhealthy.
func (k *Kubelet) Probe(d *Deployment) []ProbeResult {
	var out []ProbeResult
	for _, in := range d.Chain.Instances() {
		open := in.CircuitOpen()
		healthy := in.ResidualCapacity() > -1 && !open // socket alive, not wedged, routable
		out = append(out, ProbeResult{
			Function:    in.Function(),
			Instance:    in.ID(),
			Healthy:     healthy,
			Crashes:     in.Crashes(),
			CircuitOpen: open,
		})
	}
	return out
}

// Repair restarts every unhealthy instance found by Probe — the kubelet's
// half of failure recovery: the dataplane's circuit breaker stops routing
// to a crashing pod, and the kubelet replaces it with a fresh one. The
// replacement is routable before the victim is removed, so the function
// never drops to zero instances. Returns how many instances were
// restarted; restart failures are joined into err.
func (k *Kubelet) Repair(d *Deployment) (restarted int, err error) {
	for _, pr := range k.Probe(d) {
		if pr.Healthy {
			continue
		}
		if _, rerr := d.Chain.RestartInstance(pr.Instance); rerr != nil {
			err = errors.Join(err, fmt.Errorf("restart %s/%d: %w", pr.Function, pr.Instance, rerr))
			continue
		}
		restarted++
	}
	return restarted, err
}

// Scheduler places chains onto nodes. SPRIGHT's deployment constraint
// (§3.8) is chain-granular: every function of a chain lands on one node.
type Scheduler struct {
	mu    sync.Mutex
	nodes []*WorkerNode
}

// ErrNoNodes is returned when the cluster has no workers.
var ErrNoNodes = errors.New("orchestrator: no worker nodes")

// Place picks the least-loaded node (fewest chains) for a new chain.
func (s *Scheduler) Place() (*WorkerNode, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.nodes) == 0 {
		return nil, ErrNoNodes
	}
	best := s.nodes[0]
	for _, n := range s.nodes[1:] {
		if n.Chains() < best.Chains() {
			best = n
		}
	}
	return best, nil
}

// Controller is the cluster-wide SPRIGHT controller (Fig. 3): it receives
// chain creation requests, drives placement, and instructs the selected
// node's kubelet.
type Controller struct {
	sched *Scheduler
	obsv  *obs.Observability

	mu      sync.Mutex
	deploys map[string]*Deployment
}

// Cluster bundles the control plane with its worker nodes.
type Cluster struct {
	Controller *Controller
	Ingress    *IngressGateway
	nodes      []*WorkerNode
	obsv       *obs.Observability
}

// NewCluster provisions n worker nodes with a controller, a cluster-wide
// ingress gateway, and the observability layer every deployed chain
// registers its collectors into.
func NewCluster(n int) *Cluster {
	if n <= 0 {
		n = 1
	}
	nodes := make([]*WorkerNode, n)
	for i := range nodes {
		nodes[i] = NewWorkerNode(fmt.Sprintf("worker-%d", i+1))
	}
	o := obs.New()
	// Each node's eBPF engine counters are scraped for the node's lifetime
	// (nodes are never removed from a cluster).
	for _, wn := range nodes {
		wn := wn
		o.Registry().Register("node:"+wn.Name, func() []obs.Family { return collectNode(wn) })
	}
	ctrl := &Controller{
		sched:   &Scheduler{nodes: nodes},
		obsv:    o,
		deploys: make(map[string]*Deployment),
	}
	return &Cluster{
		Controller: ctrl,
		Ingress:    &IngressGateway{controller: ctrl},
		nodes:      nodes,
		obsv:       o,
	}
}

// Nodes returns the cluster's worker nodes.
func (c *Cluster) Nodes() []*WorkerNode { return c.nodes }

// Observability returns the cluster's metrics/health/trace layer — the
// registry behind the admin endpoints (/metrics, /healthz, /traces).
func (c *Cluster) Observability() *obs.Observability { return c.obsv }

// DeployChain places and creates a chain, returning its deployment.
func (ctl *Controller) DeployChain(spec core.ChainSpec) (*Deployment, error) {
	ctl.mu.Lock()
	if _, dup := ctl.deploys[spec.Name]; dup {
		ctl.mu.Unlock()
		return nil, fmt.Errorf("orchestrator: chain %q already deployed", spec.Name)
	}
	ctl.mu.Unlock()

	node, err := ctl.sched.Place()
	if err != nil {
		return nil, err
	}
	d, err := node.Kubelet.CreateChain(spec)
	if err != nil {
		return nil, err
	}
	d.unobserve = observeDeployment(ctl.obsv, d)
	ctl.mu.Lock()
	ctl.deploys[spec.Name] = d
	ctl.mu.Unlock()
	return d, nil
}

// EnableAutoscaling attaches the autoscaling control plane to a deployed
// chain: an EWMA controller evaluating every cfg.Interval (kicked awake
// immediately when a request parks on a zero-replica function), an
// optional prewarm pool, and an obs collector exporting the controller's
// state. Returns the running autoscaler; call Deployment.Close (or
// Autoscaler.Close) to stop it.
func (ctl *Controller) EnableAutoscaling(name string, cfg AutoscalerConfig) (*Autoscaler, error) {
	d, ok := ctl.Deployment(name)
	if !ok {
		return nil, fmt.Errorf("orchestrator: chain %q not deployed", name)
	}
	d.asMu.Lock()
	defer d.asMu.Unlock()
	if d.autoscaler != nil {
		return nil, fmt.Errorf("orchestrator: chain %q already autoscaled", name)
	}
	as := NewAutoscalerWithConfig(d, cfg)
	if cfg.Prewarm > 0 {
		as.prewarm = NewPrewarmPool(d, cfg.Prewarm)
		as.prewarm.Fill()
	}
	// A parked request kicks the controller awake: resume latency is the
	// scheduler's, not the evaluation interval's.
	d.Gateway.SetParkNotifier(func(string) { as.Kick() })
	if ctl.obsv != nil {
		key := "autoscaler:" + name
		o := ctl.obsv
		o.Registry().Register(key, func() []obs.Family { return collectAutoscaler(d, as) })
		d.unobserveAS = func() { o.Registry().Unregister(key) }
		// Bridge the decision ring onto the flight recorder: every scale
		// action also lands in the chain's event journal (Value packs
		// from<<32|to replicas).
		fr := o.Flight()
		as.SetDecisionSink(func(sd ScaleDecision) {
			fr.Emit(name, obs.EventScale, sd.Function, sd.Reason,
				int64(sd.From)<<32|int64(sd.To))
		})
	}
	as.Start(as.cfg.Interval)
	d.autoscaler = as
	return as, nil
}

// DeleteChain tears down a chain.
func (ctl *Controller) DeleteChain(name string) error {
	ctl.mu.Lock()
	d, ok := ctl.deploys[name]
	delete(ctl.deploys, name)
	ctl.mu.Unlock()
	if !ok {
		return fmt.Errorf("orchestrator: chain %q not deployed", name)
	}
	d.Close()
	return nil
}

// Deployment looks a chain up by name.
func (ctl *Controller) Deployment(name string) (*Deployment, bool) {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	d, ok := ctl.deploys[name]
	return d, ok
}

// Deployments returns all deployments.
func (ctl *Controller) Deployments() []*Deployment {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	out := make([]*Deployment, 0, len(ctl.deploys))
	for _, d := range ctl.deploys {
		out = append(out, d)
	}
	return out
}

// IngressGateway is the cluster-wide ingress (Fig. 3) distributing
// external requests to the SPRIGHT gateways of different chains. Requests
// address a chain by the first path segment: /<chain>/rest-of-path.
type IngressGateway struct {
	controller *Controller
}

// ServeHTTP implements http.Handler.
func (ig *IngressGateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	chain, rest, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/"), "/")
	d, ok := ig.controller.Deployment(chain)
	if !ok {
		http.NotFound(w, r)
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/" + rest
	d.Gateway.ServeHTTP(w, r2)
}
