package orchestrator

import (
	"sync"

	"github.com/spright-go/spright/internal/core"
	"github.com/spright-go/spright/internal/shm"
)

// PrewarmPool keeps pre-wired instances ready per function so that
// resuming a scaled-to-zero function skips the expensive startup steps:
// the instance's socket is already transport-registered, its filter edges
// authorized, its worker pool running, and its shared-memory attachment
// drawn from the manager's pooled-attach free list. Activation is then a
// router insert — the cold start the parked request observes shrinks to
// roughly a warm dispatch.
//
// This leans on §4.2.2's economics: a warm SPRIGHT instance is an idle
// goroutine set parked on a channel, so keeping a few per function costs
// no CPU.
type PrewarmPool struct {
	dep *Deployment
	per int // warm instances to hold per function

	mu     sync.Mutex
	warm   map[string][]warmEntry
	hits   uint64
	misses uint64
	closed bool
}

// warmEntry pairs a prewarmed instance with the pooled shm attachment it
// holds while waiting.
type warmEntry struct {
	pw  *core.PrewarmedInstance
	att *shm.Attachment
}

// NewPrewarmPool builds a pool holding per warm instances per function.
func NewPrewarmPool(dep *Deployment, per int) *PrewarmPool {
	if per <= 0 {
		per = 1
	}
	return &PrewarmPool{
		dep:  dep,
		per:  per,
		warm: make(map[string][]warmEntry),
	}
}

// Fill tops every function up to the pool's per-function size. Errors
// (instance limit, closed chain) stop filling that function but are not
// fatal: a short pool degrades to cold ScaleUp, not failure.
func (p *PrewarmPool) Fill() {
	c := p.dep.Chain
	for _, fn := range c.Functions() {
		for {
			p.mu.Lock()
			if p.closed || len(p.warm[fn]) >= p.per {
				p.mu.Unlock()
				break
			}
			p.mu.Unlock()
			att, err := p.dep.Node.ShmMgr.AttachPooled(c.Name())
			if err != nil {
				return
			}
			pw, err := c.Prewarm(fn)
			if err != nil {
				att.Detach()
				return
			}
			p.mu.Lock()
			if p.closed {
				p.mu.Unlock()
				c.DiscardPrewarmed(pw)
				att.Detach()
				return
			}
			p.warm[fn] = append(p.warm[fn], warmEntry{pw: pw, att: att})
			p.mu.Unlock()
		}
	}
}

// Take activates one prewarmed instance of fn, reporting whether the pool
// could serve the request (false is a miss: the caller falls back to a
// cold ScaleUp). The entry's shm attachment recycles to the manager's
// free list, so the next Fill's attach is a reuse, not a fresh lookup.
func (p *PrewarmPool) Take(fn string) (*core.Instance, bool) {
	p.mu.Lock()
	entries := p.warm[fn]
	if len(entries) == 0 {
		p.misses++
		p.mu.Unlock()
		return nil, false
	}
	e := entries[len(entries)-1]
	p.warm[fn] = entries[:len(entries)-1]
	p.hits++
	p.mu.Unlock()

	inst, err := p.dep.Chain.Activate(e.pw)
	e.att.Detach()
	if err != nil {
		return nil, false
	}
	return inst, true
}

// PrewarmStats summarizes pool activity.
type PrewarmStats struct {
	// Size is the current number of warm instances across functions.
	Size int
	// Hits counts Takes served warm; Misses counts Takes that fell
	// through to cold starts.
	Hits   uint64
	Misses uint64
}

// Stats returns a snapshot.
func (p *PrewarmPool) Stats() PrewarmStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	size := 0
	for _, entries := range p.warm {
		size += len(entries)
	}
	return PrewarmStats{Size: size, Hits: p.hits, Misses: p.misses}
}

// Close discards every warm instance and stops future fills.
func (p *PrewarmPool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	drained := p.warm
	p.warm = make(map[string][]warmEntry)
	p.mu.Unlock()
	for _, entries := range drained {
		for _, e := range entries {
			p.dep.Chain.DiscardPrewarmed(e.pw)
			e.att.Detach()
		}
	}
}
