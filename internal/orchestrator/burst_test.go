package orchestrator

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/core"
	"github.com/spright-go/spright/internal/fault"
)

// Burst acceptance (ISSUE 6): an open-loop burst against an autoscaled
// chain, with fault injection live. Capacity must track the offered load
// within roughly one evaluation interval; every refused request must carry
// an explicit shed reason (the pool-exhaustion blackhole never fires); the
// idle chain must retire to zero replicas; and the first request after
// scale-to-zero must park and complete, landing its latency in the
// cold-start histogram. Teardown asserts the pool is leak-free.
func TestBurstCapacityTracksOfferedLoad(t *testing.T) {
	const interval = 25 * time.Millisecond

	inj := fault.New(7).
		Add(fault.Rule{Op: fault.OpDelay, Delay: 500 * time.Microsecond, Probability: 0.05}).
		Add(fault.Rule{Op: fault.OpError, Probability: 0.01})
	spec := core.ChainSpec{
		Name: "burst",
		Functions: []core.FunctionSpec{{
			Name:        "work",
			Concurrency: 4,
			Handler: func(ctx *core.Ctx) error {
				time.Sleep(2 * time.Millisecond)
				return nil
			},
		}},
		Routes:   []core.RouteSpec{{From: "", To: []string{"work"}}},
		Injector: inj,
		// MaxPending below the worker count so the burst's head genuinely
		// overruns admission and sheds with an explicit reason.
		Admission: core.AdmissionPolicy{
			MaxPending:   8,
			ParkCapacity: 64,
			ParkTimeout:  10 * time.Second,
		},
	}
	cl := NewCluster(1)
	d, err := cl.Controller.DeployChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	as, err := cl.Controller.EnableAutoscaling("burst", AutoscalerConfig{
		Target: 2, MinReplicas: 0, MaxReplicas: 8,
		EWMAAlpha:        0.6,
		ScaleToZeroAfter: 4 * interval,
		Prewarm:          1,
		Interval:         interval,
		SelfHeal:         true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Open-loop burst: 16 closed-loop workers × ~2ms service time offers
	// far more than one instance's capacity, sustained for many intervals.
	stop := make(chan struct{})
	var completed, shed, other atomic.Uint64
	var wg sync.WaitGroup
	burstStart := time.Now()
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				_, err := d.Gateway.Invoke(ctx, "", []byte("x"))
				cancel()
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, core.ErrOverload):
					shed.Add(1)
					// A token backoff (well-behaved clients honor
					// Retry-After); keeps the shed path from starving the
					// admitted path in this closed loop.
					time.Sleep(time.Millisecond)
				default:
					other.Add(1) // injected handler errors land here
				}
			}
		}()
	}

	// Capacity must track offered load within ~one evaluation interval:
	// the first scale-up decision lands within two ticks of burst start
	// (one tick of slack for the goroutine scheduler).
	pollUntil(t, time.Second, "the controller to scale up", func() bool {
		return len(d.Chain.Router().Instances("work")) > 1
	})
	var firstUp time.Time
	for _, dec := range as.Decisions() {
		if dec.To > dec.From {
			firstUp = dec.At
			break
		}
	}
	if firstUp.IsZero() {
		t.Fatal("no scale-up decision recorded")
	}
	if lag := firstUp.Sub(burstStart); lag > 2*interval {
		t.Errorf("first scale-up %v after burst start, want within ~%v", lag, interval)
	}

	// Sustain, then verify the controller converged near the demand the
	// burst holds in the dataplane (16 workers / target 2 wants every one
	// of the 8 allowed replicas).
	time.Sleep(8 * interval)
	if got := len(d.Chain.Router().Instances("work")); got < 4 {
		t.Errorf("replicas %d under sustained 16-way load, want ≥4", got)
	}
	close(stop)
	wg.Wait()
	if completed.Load() == 0 {
		t.Fatal("no request completed during the burst")
	}

	// Idle: the chain must retire all the way to zero.
	pollUntil(t, 5*time.Second, "idle chain to retire to zero", func() bool {
		return len(d.Chain.Router().Instances("work")) == 0
	})

	// First request after scale-to-zero parks and completes — not an error.
	if _, err := d.Gateway.Invoke(contextWithDeadline(t, 10*time.Second), "", []byte("cold")); err != nil {
		t.Fatalf("first request after scale-to-zero: %v", err)
	}

	gs := d.Gateway.Stats()
	if gs.ShedPoolExhausted != 0 {
		t.Fatalf("pool-exhaustion blackhole fired %d times; admission must shed first", gs.ShedPoolExhausted)
	}
	// Every deliberate refusal carries exactly one explicit reason.
	if reasons := gs.ShedOverload + gs.ShedParkFull + gs.ShedParkTimeout; reasons != shed.Load() {
		t.Fatalf("shed reason counters %d != shed errors observed %d", reasons, shed.Load())
	}
	if gs.Rejected != shed.Load() {
		t.Fatalf("rejected=%d, shed errors=%d: refusals must be fully attributed", gs.Rejected, shed.Load())
	}
	if shed.Load() == 0 {
		t.Fatal("burst never overran admission; overload shedding went unexercised")
	}
	if n := d.Gateway.ColdStartLatency().Count(); n < 1 {
		t.Fatalf("cold-start histogram count %d, want ≥1", n)
	}
	if gs.ColdStartP99 <= 0 {
		t.Fatal("cold-start p99 missing from stats")
	}
	counts := as.DecisionCounts()
	if counts[ReasonToZero] < 1 {
		t.Fatalf("decision counts %+v: idle chain must have retired via to_zero", counts)
	}
	t.Logf("completed=%d shed=%d injected-errors=%d decisions=%+v replicas-peak-demand served",
		completed.Load(), shed.Load(), other.Load(), counts)

	// Leak-free teardown: every buffer back in the pool.
	deadline := time.Now().Add(5 * time.Second)
	for d.Chain.Pool().InUse() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := d.Chain.Pool().LeakCheck(); err != nil {
		t.Fatal(err)
	}
}
