package orchestrator

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/core"
)

func TestReplicatedChainSpansNodes(t *testing.T) {
	cl := NewCluster(3)
	rc, err := cl.Controller.DeployChainReplicated(upperSpec("multi"), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if len(rc.Units) != 3 {
		t.Fatalf("%d units, want 3", len(rc.Units))
	}
	nodes := map[string]bool{}
	for _, u := range rc.Units {
		nodes[u.Node.Name] = true
	}
	if len(nodes) != 3 {
		t.Fatalf("units must land on distinct nodes, got %v", nodes)
	}
	out, err := rc.Invoke(context.Background(), "", []byte("hi"))
	if err != nil || string(out) != "HI" {
		t.Fatalf("%q %v", out, err)
	}
}

func TestReplicatedChainInsufficientNodes(t *testing.T) {
	cl := NewCluster(1)
	if _, err := cl.Controller.DeployChainReplicated(upperSpec("multi"), 2); err == nil {
		t.Fatal("must fail with too few nodes")
	}
}

func TestReplicatedChainBalancesLoad(t *testing.T) {
	cl := NewCluster(2)
	spec := core.ChainSpec{
		Name: "lb",
		Functions: []core.FunctionSpec{{
			Name: "work",
			Handler: func(ctx *core.Ctx) error {
				time.Sleep(5 * time.Millisecond)
				return nil
			},
		}},
		Routes: []core.RouteSpec{{From: "", To: []string{"work"}}},
	}
	rc, err := cl.Controller.DeployChainReplicated(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := rc.Invoke(ctx, "", []byte("x")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// both units must have served traffic
	for i, u := range rc.Units {
		if u.Gateway.Stats().Completed == 0 {
			t.Fatalf("unit %d served nothing — load balancing broken", i)
		}
	}
	agg := rc.Stats()
	if agg.Completed != 16 {
		t.Fatalf("aggregate completed %d, want 16", agg.Completed)
	}
}

func TestReplicatedChainRollbackOnFailure(t *testing.T) {
	cl := NewCluster(2)
	// occupy the prefix "dup-unit1" on node 2 to force the second unit
	// deployment to fail
	if _, err := cl.Nodes()[1].ShmMgr.CreatePool("dup-unit1", 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Controller.DeployChainReplicated(upperSpec("dup"), 2); err == nil {
		t.Fatal("expected failure from prefix collision")
	}
	// unit 0 must have been rolled back: redeploying works
	rc, err := cl.Controller.DeployChainReplicated(upperSpec("dup2"), 2)
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
}
