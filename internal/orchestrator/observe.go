package orchestrator

// Collector glue between the dataplane and the obs registry: each deployed
// chain registers one collector closure that snapshots the live counters at
// scrape time — gateway admission/completion/latency, EPROXY L3 and failure
// maps, SPROXY per-instance invocation counts, per-socket delivery
// counters, shared-memory pool occupancy, ring queue flow, and the sampled
// hop tracer — plus a health check and a recent-trace source. Registration
// is keyed by chain name, so teardown drops a chain's series atomically.

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/spright-go/spright/internal/core"
	"github.com/spright-go/spright/internal/metrics"
	"github.com/spright-go/spright/internal/obs"
)

// transportLabel maps a chain mode onto the stable `transport` label value.
func transportLabel(m core.Mode) string {
	if m == core.ModePolling {
		return "ring"
	}
	return "sockmap"
}

// observeDeployment registers the deployment's collector, health check and
// trace source under its chain name, wires the chain's dataplane event
// hooks into the node's flight recorder, and installs the sliding-window
// SLO monitor behind /slo. Returns the matching unregister.
func observeDeployment(o *obs.Observability, d *Deployment) func() {
	if o == nil {
		return func() {}
	}
	name := d.Chain.Name()
	key := "chain:" + name
	o.Registry().Register(key, func() []obs.Family { return collectChain(d) })
	o.RegisterHealthCheck(key, func() error { return checkFlightDeployment(o, d) })
	o.RegisterTraceSource(name, func(limit int) any { return traceSnapshot(d.Chain, limit) })
	o.RegisterSpanSource(name, func(limit int) []obs.TraceData {
		return completedTraceData(d.Chain, limit)
	})

	// Flight recorder: the chain gets its own ring, and the dataplane's
	// hook-emitted events (sheds, breaker flips, cold-start resumes) are
	// adapted into it with the chain name attached. The core kinds are the
	// same strings as the obs kinds, so the sink forwards them verbatim.
	fr := o.Flight()
	fr.RegisterChain(name)
	d.Chain.SetFlightSink(func(kind, subject, reason string, value int64) {
		fr.Emit(name, kind, subject, reason, value)
	})
	if st := d.Chain.ObjectStore(); st != nil {
		st.SetEventHook(func(event string, bytes int64) {
			kind := obs.EventObjSpill
			if event == "reload" {
				kind = obs.EventObjReload
			}
			fr.Emit(name, kind, "", "", bytes)
		})
	}

	// SLO monitor: cumulative latency/stage/count signals snapshotted on
	// the gateway's metrics-agent tick, differenced into window percentiles
	// for /slo. The watchdog (EnableSLOWatchdog) evaluates on the same tick.
	mon := obs.NewSLOMonitor(sloSource(d), 0, d.Chain.ScrapeInterval())
	o.RegisterSLOMonitor(name, mon)
	d.sloMu.Lock()
	d.sloMon = mon
	d.sloMu.Unlock()
	d.Gateway.SetAgentTick(func() {
		now := time.Now()
		// Read the live monitor on every tick: EnableSLOWatchdog swaps in a
		// policy-window replacement after deployment, and a captured local
		// would leave that replacement un-ticked (its window never slides).
		d.sloMu.Lock()
		mon := d.sloMon
		wd := d.watchdog
		d.sloMu.Unlock()
		if mon != nil {
			mon.Tick(now)
		}
		if wd != nil {
			wd.Evaluate(now)
		}
	})

	return func() {
		d.Gateway.SetAgentTick(nil)
		d.Chain.SetFlightSink(nil)
		if st := d.Chain.ObjectStore(); st != nil {
			st.SetEventHook(nil)
		}
		fr.UnregisterChain(name)
		o.UnregisterSLOMonitor(name)
		d.sloMu.Lock()
		d.sloMon = nil
		d.sloMu.Unlock()
		o.Registry().Unregister(key)
		o.UnregisterHealthCheck(key)
		o.UnregisterTraceSource(name)
		o.UnregisterSpanSource(name)
	}
}

// sloSource adapts one deployment's cumulative counters into the monitor's
// source funcs. Stage histograms come from the tracer when one is attached.
func sloSource(d *Deployment) obs.SLOSource {
	return obs.SLOSource{
		Latency: d.Gateway.Latency,
		Stages: func() map[string]*metrics.Histogram {
			if tr := d.Chain.Tracer(); tr != nil {
				return tr.StageDurations()
			}
			return nil
		},
		Counts: func() (uint64, uint64) {
			return d.Gateway.Completed(), d.Gateway.Failed()
		},
	}
}

// checkFlightDeployment runs the health check and journals a failed leak
// heuristic on the flight recorder, so the suspicion is addressable later
// even after /healthz recovers.
func checkFlightDeployment(o *obs.Observability, d *Deployment) error {
	err := checkDeployment(d)
	if err != nil && strings.Contains(err.Error(), "suspected leak") {
		ps := d.Chain.Pool().Stats()
		o.Flight().Emit(d.Chain.Name(), obs.EventLeakCheck, "", err.Error(), int64(ps.InUse))
	}
	return err
}

// collectChain snapshots every subsystem of one chain into metric families.
// Families share names across chains; the registry merges them, so the
// exposition carries one spright_gateway_admitted_total family with one
// sample per chain.
func collectChain(d *Deployment) []obs.Family {
	c, g := d.Chain, d.Gateway
	chain := obs.L("chain", c.Name())
	// Gateway.Stats also publishes the failure counters into the EPROXY
	// map, so the kernel-side failure series below stays current.
	gs := g.Stats()

	fams := []obs.Family{
		obs.GaugeFamily("spright_transport_info",
			"Chain transport (value is always 1; transport in the label).",
			obs.L("chain", c.Name(), "transport", transportLabel(c.Mode())), 1),
		obs.CounterFamily("spright_gateway_admitted_total",
			"Requests admitted into the chain's shared-memory pool.", chain, float64(gs.Admitted)),
		obs.CounterFamily("spright_gateway_rejected_total",
			"Requests rejected at admission (pool backpressure).", chain, float64(gs.Rejected)),
		obs.CounterFamily("spright_gateway_completed_total",
			"Requests completed with a response descriptor.", chain, float64(gs.Completed)),
		obs.CounterFamily("spright_gateway_failed_total",
			"Requests terminated by a dataplane error.", chain, float64(gs.Failed)),
		obs.GaugeFamily("spright_gateway_pending",
			"Requests currently awaiting a response.", chain, float64(g.Pending())),
		obs.GaugeFamily("spright_scrape_rate_pps",
			"Packet rate measured by the metrics agent's last EPROXY scrape.",
			chain, g.LastScrapeRate()),
		obs.SummaryFamily("spright_gateway_latency_seconds",
			"End-to-end invocation latency through the chain.", chain, g.Latency()),
	}

	// Admission control: shed counters by reason, the park queue, and the
	// cold-start latency of parked requests that resumed.
	shed := obs.Family{
		Name: "spright_gateway_shed_total",
		Help: "Requests deliberately refused by admission control, by reason.",
		Type: obs.Counter,
	}
	for _, kv := range []struct {
		reason string
		v      uint64
	}{
		{core.ShedOverload, gs.ShedOverload},
		{core.ShedParkFull, gs.ShedParkFull},
		{core.ShedParkTimeout, gs.ShedParkTimeout},
		{core.ShedPoolExhausted, gs.ShedPoolExhausted},
		{core.ShedPayloadTooLarge, gs.ShedPayloadTooLarge},
	} {
		shed.Samples = append(shed.Samples, obs.Sample{
			Labels: obs.L("chain", c.Name(), "reason", kv.reason),
			Value:  float64(kv.v),
		})
	}
	fams = append(fams, shed,
		obs.GaugeFamily("spright_gateway_parked",
			"Requests currently parked awaiting scale-from-zero capacity.",
			chain, float64(gs.Parked)),
		obs.CounterFamily("spright_gateway_parked_total",
			"Requests that parked at the gateway.", chain, float64(gs.ParkedTotal)),
		obs.CounterFamily("spright_gateway_resumed_total",
			"Parked requests dispatched after capacity resumed.", chain, float64(gs.Resumed)),
		obs.SummaryFamily("spright_coldstart_seconds",
			"Park-to-dispatch latency of requests that arrived at zero replicas.",
			chain, g.ColdStartLatency()),
	)

	// Failure counters, read back from the EPROXY failure map when the
	// chain has one (the kernel-side path an external scraper would see);
	// chains without an EPROXY (polling mode) report userspace counters.
	fs := c.Failures()
	if ep := g.EProxy(); ep != nil {
		fs = ep.FailureStats()
		pkts, bytes := ep.L3Stats()
		fams = append(fams,
			obs.CounterFamily("spright_eproxy_l3_packets_total",
				"Packets counted by the EPROXY XDP monitor.", chain, float64(pkts)),
			obs.CounterFamily("spright_eproxy_l3_bytes_total",
				"Bytes counted by the EPROXY XDP monitor.", chain, float64(bytes)),
		)
	}
	failures := obs.Family{
		Name: "spright_failures_total",
		Help: "Failure-recovery events by kind.",
		Type: obs.Counter,
	}
	for _, kv := range []struct {
		kind string
		v    uint64
	}{
		{"crash", fs.Crashes},
		{"retry", fs.Retries},
		{"circuit_open", fs.CircuitOpens},
		{"reclaimed", fs.Reclaimed},
		{"deadline", fs.DeadlinesExceeded},
		{"injected", fs.FaultsInjected},
	} {
		failures.Samples = append(failures.Samples, obs.Sample{
			Labels: obs.L("chain", c.Name(), "kind", kv.kind),
			Value:  float64(kv.v),
		})
	}
	fams = append(fams, failures)

	// Shared-memory pool.
	ps := c.Pool().Stats()
	fams = append(fams,
		obs.GaugeFamily("spright_shm_inuse_buffers",
			"Pool buffers currently referenced.", chain, float64(ps.InUse)),
		obs.GaugeFamily("spright_shm_free_buffers",
			"Pool buffers currently free.", chain, float64(ps.Capacity-ps.InUse)),
		obs.GaugeFamily("spright_shm_capacity_buffers",
			"Pool capacity.", chain, float64(ps.Capacity)),
		obs.GaugeFamily("spright_shm_highwater_buffers",
			"Peak concurrent pool occupancy.", chain, float64(ps.HighWater)),
		obs.CounterFamily("spright_shm_allocs_total",
			"Pool buffer allocations.", chain, float64(ps.Allocs)),
		obs.CounterFamily("spright_shm_frees_total",
			"Pool buffer releases.", chain, float64(ps.Frees)),
		obs.CounterFamily("spright_shm_alloc_failures_total",
			"Allocations refused by pool exhaustion (backpressure).", chain, float64(ps.Failures)),
		obs.CounterFamily("spright_shm_steals_total",
			"Allocations served from a non-home freelist shard.", chain, float64(ps.Steals)),
	)

	// Ephemeral object store: live objects split by tier, byte footprints,
	// and activity/spill counters (absent when the chain disabled it).
	if st := c.ObjectStore(); st != nil {
		ss := st.Stats()
		fams = append(fams,
			obs.GaugeFamily("spright_objstore_objects",
				"Live objects in the chain's ephemeral object store.", chain, float64(ss.Objects)),
			obs.GaugeFamily("spright_objstore_resident_objects",
				"Objects resident in shared-memory slabs.", chain, float64(ss.Resident)),
			obs.GaugeFamily("spright_objstore_spilled_objects",
				"Objects parked in the file-backed cold tier.", chain, float64(ss.Spilled)),
			obs.GaugeFamily("spright_objstore_resident_bytes",
				"Shared-memory footprint (slab capacity) of resident objects.",
				chain, float64(ss.ResidentBytes)),
			obs.GaugeFamily("spright_objstore_spilled_bytes",
				"Payload bytes parked in spill files.", chain, float64(ss.SpilledBytes)),
			obs.CounterFamily("spright_objstore_puts_total",
				"Objects committed to the store.", chain, float64(ss.Puts)),
			obs.CounterFamily("spright_objstore_deletes_total",
				"Objects whose last reference was released.", chain, float64(ss.Deletes)),
			obs.CounterFamily("spright_objstore_opens_total",
				"Zero-copy reader opens.", chain, float64(ss.Opens)),
			obs.CounterFamily("spright_objstore_refs_total",
				"Explicit object reference grabs.", chain, float64(ss.Refs)),
			obs.CounterFamily("spright_objstore_spills_total",
				"Objects spilled to the file tier (LRU budget or pool pressure).",
				chain, float64(ss.Spills)),
			obs.CounterFamily("spright_objstore_reloads_total",
				"Spilled objects transparently reloaded on access.", chain, float64(ss.Reloads)),
			obs.CounterFamily("spright_objstore_spill_bytes_total",
				"Payload bytes written to the file tier.", chain, float64(ss.SpillBytes)),
			obs.CounterFamily("spright_objstore_reload_bytes_total",
				"Payload bytes read back from the file tier.", chain, float64(ss.ReloadBytes)),
			obs.CounterFamily("spright_objstore_spill_errors_total",
				"Spill attempts that failed on file-tier I/O.", chain, float64(ss.SpillErrors)),
		)
	}

	// Per-socket delivery counters: the gateway's response socket plus one
	// sample per function instance; SPROXY invocation counts ride along in
	// event mode.
	delivered := obs.Family{Name: "spright_socket_delivered_total",
		Help: "Descriptors enqueued into instance sockets.", Type: obs.Counter}
	dropped := obs.Family{Name: "spright_socket_dropped_total",
		Help: "Descriptors the transport gave up delivering.", Type: obs.Counter}
	gd, gdr := g.SocketStats()
	gwLabels := obs.L("chain", c.Name(), "function", "gateway", "instance", "0")
	delivered.Samples = append(delivered.Samples, obs.Sample{Labels: gwLabels, Value: float64(gd)})
	dropped.Samples = append(dropped.Samples, obs.Sample{Labels: gwLabels, Value: float64(gdr)})

	sproxyReqs := obs.Family{Name: "spright_sproxy_requests_total",
		Help: "Descriptors redirected to each instance by the SPROXY SK_MSG program.",
		Type: obs.Counter}
	sp := c.SProxy()
	for _, in := range c.Instances() {
		ls := obs.L("chain", c.Name(), "function", in.Function(),
			"instance", strconv.FormatUint(uint64(in.ID()), 10))
		de, dr := in.SocketStats()
		delivered.Samples = append(delivered.Samples, obs.Sample{Labels: ls, Value: float64(de)})
		dropped.Samples = append(dropped.Samples, obs.Sample{Labels: ls, Value: float64(dr)})
		if sp != nil {
			sproxyReqs.Samples = append(sproxyReqs.Samples, obs.Sample{
				Labels: ls, Value: float64(sp.RequestCount(in.ID())),
			})
		}
	}
	fams = append(fams, delivered, dropped)
	if sp != nil {
		fams = append(fams, sproxyReqs)
	}

	// Ring queues (polling mode only).
	if rs := c.RingStats(); len(rs) > 0 {
		occupancy := obs.Family{Name: "spright_ring_occupancy",
			Help: "Descriptors queued in each instance's rte_ring.", Type: obs.Gauge}
		enq := obs.Family{Name: "spright_ring_enqueues_total",
			Help: "Descriptors accepted by instance rings.", Type: obs.Counter}
		deq := obs.Family{Name: "spright_ring_dequeues_total",
			Help: "Descriptors drained from instance rings.", Type: obs.Counter}
		fulls := obs.Family{Name: "spright_ring_full_total",
			Help: "Enqueue attempts refused by a full ring.", Type: obs.Counter}
		for _, r := range rs {
			ls := obs.L("chain", c.Name(),
				"instance", strconv.FormatUint(uint64(r.Instance), 10))
			occupancy.Samples = append(occupancy.Samples, obs.Sample{Labels: ls, Value: float64(r.Stats.Len)})
			enq.Samples = append(enq.Samples, obs.Sample{Labels: ls, Value: float64(r.Stats.Enqueues)})
			deq.Samples = append(deq.Samples, obs.Sample{Labels: ls, Value: float64(r.Stats.Dequeues)})
			fulls.Samples = append(fulls.Samples, obs.Sample{Labels: ls, Value: float64(r.Stats.Fulls)})
		}
		fams = append(fams, occupancy, enq, deq, fulls)
	}

	// Ring queue-wait accounting (sampled enqueue→dequeue residency).
	if rs := c.RingStats(); len(rs) > 0 {
		waitSecs := obs.Family{Name: "spright_ring_wait_seconds_total",
			Help: "Accumulated sampled ring residency (enqueue to dequeue).", Type: obs.Counter}
		waits := obs.Family{Name: "spright_ring_waits_total",
			Help: "Sampled descriptors whose ring residency was measured.", Type: obs.Counter}
		for _, r := range rs {
			ls := obs.L("chain", c.Name(),
				"instance", strconv.FormatUint(uint64(r.Instance), 10))
			waitSecs.Samples = append(waitSecs.Samples, obs.Sample{
				Labels: ls, Value: float64(r.Stats.WaitNanos) / 1e9})
			waits.Samples = append(waits.Samples, obs.Sample{
				Labels: ls, Value: float64(r.Stats.Waits)})
		}
		fams = append(fams, waitSecs, waits)
	}

	// Distributed tracer: sampling counters, per-function handler and
	// per-stage durations, and latency exemplars linking the summary to
	// concrete retained trace IDs.
	if tr := c.Tracer(); tr != nil {
		fams = append(fams,
			obs.CounterFamily("spright_trace_sampled_total",
				"Requests sampled into the tracer.", chain, float64(tr.TotalSampled())),
			obs.CounterFamily("spright_trace_tail_retained_total",
				"Traces retained by tail sampling (errors and slow requests).",
				chain, float64(tr.TotalTailRetained())),
			obs.GaugeFamily("spright_trace_sample_period",
				"Tracer sampling period (1 = every request).", chain, float64(tr.SampleEvery())),
		)
		hop := obs.Family{Name: "spright_trace_hop_duration_seconds",
			Help: "Sampled per-function handler durations.", Type: obs.Summary}
		for fn, h := range tr.HopDurations() {
			sub := obs.SummaryFamily("spright_trace_hop_duration_seconds", "",
				obs.L("chain", c.Name(), "function", fn), h)
			hop.Samples = append(hop.Samples, sub.Samples...)
		}
		fams = append(fams, hop)
		stage := obs.Family{Name: "spright_trace_stage_duration_seconds",
			Help: "Sampled per-stage durations (queue wait, redirect, handler, drain).",
			Type: obs.Summary}
		for st, h := range tr.StageDurations() {
			sub := obs.SummaryFamily("spright_trace_stage_duration_seconds", "",
				obs.L("chain", c.Name(), "stage", st), h)
			stage.Samples = append(stage.Samples, sub.Samples...)
		}
		fams = append(fams, stage)
		if exs := tr.Exemplars(4); len(exs) > 0 {
			ex := obs.Family{Name: "spright_gateway_latency_exemplar",
				Help: "Slowest retained traces: end-to-end seconds keyed by trace ID.",
				Type: obs.Gauge}
			for _, e := range exs {
				ex.Samples = append(ex.Samples, obs.Sample{
					Labels: obs.L("chain", c.Name(), "trace_id", e.TraceID),
					Value:  e.Seconds,
				})
			}
			fams = append(fams, ex)
		}
	}
	return fams
}

// collectAutoscaler snapshots the autoscaling control plane of one chain:
// per-function replica/desired/EWMA state, decision counters by reason,
// prewarm pool activity, and the node manager's pooled-attach counters.
func collectAutoscaler(d *Deployment, a *Autoscaler) []obs.Family {
	name := d.Chain.Name()
	chain := obs.L("chain", name)

	replicas := obs.Family{Name: "spright_autoscaler_replicas",
		Help: "Routable instances per function.", Type: obs.Gauge}
	healthy := obs.Family{Name: "spright_autoscaler_healthy_replicas",
		Help: "Routable instances whose circuit breaker is closed.", Type: obs.Gauge}
	desired := obs.Family{Name: "spright_autoscaler_desired_replicas",
		Help: "Controller-computed desired instances per function.", Type: obs.Gauge}
	ewma := obs.Family{Name: "spright_autoscaler_demand_ewma",
		Help: "Smoothed demand signal (inflight + backlog + parked).", Type: obs.Gauge}
	parked := obs.Family{Name: "spright_autoscaler_parked",
		Help: "Requests parked per function awaiting resume.", Type: obs.Gauge}
	for _, v := range a.Views() {
		ls := obs.L("chain", name, "function", v.Function)
		replicas.Samples = append(replicas.Samples, obs.Sample{Labels: ls, Value: float64(v.Replicas)})
		healthy.Samples = append(healthy.Samples, obs.Sample{Labels: ls, Value: float64(v.Healthy)})
		desired.Samples = append(desired.Samples, obs.Sample{Labels: ls, Value: float64(v.Desired)})
		ewma.Samples = append(ewma.Samples, obs.Sample{Labels: ls, Value: v.EWMA})
		parked.Samples = append(parked.Samples, obs.Sample{Labels: ls, Value: float64(v.Parked)})
	}

	decisions := obs.Family{Name: "spright_autoscaler_decisions_total",
		Help: "Scaling actions taken, by reason.", Type: obs.Counter}
	for reason, n := range a.DecisionCounts() {
		decisions.Samples = append(decisions.Samples, obs.Sample{
			Labels: obs.L("chain", name, "reason", reason),
			Value:  float64(n),
		})
	}

	fams := []obs.Family{replicas, healthy, desired, ewma, parked, decisions,
		obs.GaugeFamily("spright_autoscaler_admit_rate_rps",
			"Smoothed gateway admission rate between evaluations.", chain, a.AdmitRate()),
	}

	if pw := a.PrewarmPool(); pw != nil {
		ps := pw.Stats()
		fams = append(fams,
			obs.GaugeFamily("spright_prewarm_pool_size",
				"Warm instances held ready for activation.", chain, float64(ps.Size)),
			obs.CounterFamily("spright_prewarm_hits_total",
				"Scale-ups served by activating a prewarmed instance.", chain, float64(ps.Hits)),
			obs.CounterFamily("spright_prewarm_misses_total",
				"Scale-ups that fell back to a cold instance start.", chain, float64(ps.Misses)),
		)
	}

	as := d.Node.ShmMgr.AttachStats()
	node := obs.L("node", d.Node.Name)
	fams = append(fams,
		obs.CounterFamily("spright_shm_attaches_total",
			"Fresh secondary-process pool attaches on the node.", node, float64(as.Attaches)),
		obs.CounterFamily("spright_shm_attach_reuses_total",
			"Attaches served from the pooled-attach free list.", node, float64(as.Reuses)),
		obs.CounterFamily("spright_shm_detaches_total",
			"Attach handles recycled to the free list.", node, float64(as.Detaches)),
		obs.GaugeFamily("spright_shm_attach_live",
			"Attach handles currently checked out.", node, float64(as.Live)),
		obs.GaugeFamily("spright_shm_attach_pooled",
			"Attach handles waiting on free lists.", node, float64(as.Pooled)),
	)
	return fams
}

// checkDeployment is the per-chain health check behind /healthz: every
// instance must probe healthy (no open circuit breakers), and the pool must
// not look leaked — exhausted while the gateway has nothing pending means
// buffers are held with nobody waiting for them.
func checkDeployment(d *Deployment) error {
	for _, pr := range d.Node.Kubelet.Probe(d) {
		if pr.Healthy {
			continue
		}
		if pr.CircuitOpen {
			return fmt.Errorf("instance %s/%d circuit breaker open", pr.Function, pr.Instance)
		}
		return fmt.Errorf("instance %s/%d unhealthy", pr.Function, pr.Instance)
	}
	ps := d.Chain.Pool().Stats()
	if ps.InUse >= ps.Capacity && d.Gateway.Pending() == 0 {
		return fmt.Errorf("pool exhausted (%d/%d buffers) with no pending requests: suspected leak",
			ps.InUse, ps.Capacity)
	}
	return nil
}

// traceSpan is the JSON shape of one span in /traces output.
type traceSpan struct {
	SpanID   string        `json:"span_id"`
	ParentID string        `json:"parent_id,omitempty"`
	Stage    string        `json:"stage"`
	Function string        `json:"function,omitempty"`
	Instance uint32        `json:"instance"`
	Duration time.Duration `json:"duration_ns"`
	Error    string        `json:"error,omitempty"`
}

// traceEntry is one completed trace in /traces output.
type traceEntry struct {
	TraceID string        `json:"trace_id"`
	Caller  uint32        `json:"caller"`
	Path    string        `json:"path"`
	Elapsed time.Duration `json:"elapsed_ns"`
	Error   string        `json:"error,omitempty"`
	Tail    bool          `json:"tail,omitempty"`
	Spans   []traceSpan   `json:"spans"`
}

// renderTraces converts retained traces to their /traces JSON shape,
// keeping the most recent `limit` (<= 0: all). The result is never nil.
func renderTraces(ts []*core.Trace, limit int) []traceEntry {
	if limit > 0 && len(ts) > limit {
		ts = ts[len(ts)-limit:]
	}
	entries := make([]traceEntry, 0, len(ts))
	for _, t := range ts {
		e := traceEntry{
			TraceID: t.ID.String(), Caller: t.Caller, Path: t.Path(),
			Elapsed: t.Elapsed(), Error: t.Err, Tail: t.Tail,
			Spans: make([]traceSpan, 0, len(t.Spans)),
		}
		for _, s := range t.Spans {
			ts := traceSpan{
				SpanID:   fmt.Sprintf("%016x", s.ID),
				Stage:    s.Stage,
				Function: s.Function,
				Instance: s.Instance,
				Duration: s.Duration(),
				Error:    s.Err,
			}
			if s.Parent != 0 {
				ts.ParentID = fmt.Sprintf("%016x", s.Parent)
			}
			e.Spans = append(e.Spans, ts)
		}
		entries = append(entries, e)
	}
	return entries
}

// traceSnapshot renders the chain's retained traces for /traces.
func traceSnapshot(c *core.Chain, limit int) any {
	tr := c.Tracer()
	if tr == nil {
		return map[string]any{"tracing": false, "recent": []traceEntry{}}
	}
	return map[string]any{
		"tracing":             true,
		"sample_every":        tr.SampleEvery(),
		"total_sampled":       tr.TotalSampled(),
		"total_tail_retained": tr.TotalTailRetained(),
		"recent":              renderTraces(tr.Completed(), limit),
		"tail":                renderTraces(tr.TailRetained(), limit),
	}
}

// completedTraceData converts the chain's retained traces (head-sampled and
// tail-retained, deduplicated) into exporter-neutral TraceData for OTLP
// rendering and file export, keeping the most recent `limit` (<= 0: all).
func completedTraceData(c *core.Chain, limit int) []obs.TraceData {
	tr := c.Tracer()
	if tr == nil {
		return nil
	}
	ts := tr.Retained(0)
	if limit > 0 && len(ts) > limit {
		ts = ts[len(ts)-limit:]
	}
	out := make([]obs.TraceData, 0, len(ts))
	for _, t := range ts {
		td := obs.TraceData{
			TraceIDHi: t.ID.Hi, TraceIDLo: t.ID.Lo, Seq: t.Seq,
			Chain: c.Name(), Caller: t.Caller, Error: t.Err, Tail: t.Tail,
			Spans: make([]obs.SpanData, 0, len(t.Spans)),
		}
		for _, s := range t.Spans {
			td.Spans = append(td.Spans, obs.SpanData{
				SpanID: s.ID, ParentID: s.Parent, Name: s.Stage,
				Function: s.Function, Instance: s.Instance,
				StartUnixNano: s.Start.UnixNano(), EndUnixNano: s.End.UnixNano(),
				Error: s.Err,
			})
		}
		out = append(out, td)
	}
	return out
}

// collectNode snapshots one worker node's eBPF kernel engine counters: how
// many program executions ran on the compiled engines versus the
// interpreter oracle, and how many loaded programs compiled. A healthy
// dataplane shows runs_total{engine="interp"} near zero — interpreter runs
// in steady state mean a program fell back (see
// LoadedProgram.FallbackReason) or the JIT was switched off.
func collectNode(n *WorkerNode) []obs.Family {
	es := n.Kernel.EngineStats()
	node := n.Name
	return []obs.Family{
		{
			Name: "spright_ebpf_runs_total",
			Help: "eBPF program executions by engine (jit: compiled closure chain or shape-specialized fast path; interp: bytecode interpreter).",
			Type: obs.Counter,
			Samples: []obs.Sample{
				{Labels: obs.L("engine", "jit", "node", node), Value: float64(es.JITRuns)},
				{Labels: obs.L("engine", "interp", "node", node), Value: float64(es.InterpRuns)},
			},
		},
		obs.GaugeFamily("spright_ebpf_loaded_programs",
			"Programs loaded into the node's eBPF kernel.",
			obs.L("node", node), float64(es.Loaded)),
		obs.GaugeFamily("spright_ebpf_compiled_programs",
			"Loaded programs that compiled to a native engine (rest run on the interpreter).",
			obs.L("node", node), float64(es.Compiled)),
	}
}
