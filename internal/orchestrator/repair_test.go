package orchestrator

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/core"
)

// TestProbeAndRepairRestartCrashedInstance is the control-plane half of
// failure recovery: the dataplane's circuit breaker ejects a crashing
// replica, the kubelet's probe reports it unhealthy, and Repair replaces
// it with a fresh instance — after which the chain serves cleanly again.
func TestProbeAndRepairRestartCrashedInstance(t *testing.T) {
	var badID atomic.Uint32
	spec := core.ChainSpec{
		Name: "fragile",
		Functions: []core.FunctionSpec{{
			Name:      "w",
			Instances: 2,
			Handler: func(ctx *core.Ctx) error {
				if ctx.Instance() == badID.Load() {
					panic("replica corrupted")
				}
				return nil
			},
		}},
		Routes: []core.RouteSpec{{From: "", To: []string{"w"}}},
		Health: core.HealthPolicy{ConsecutiveFailures: 2, OpenDuration: time.Minute},
	}
	cl := NewCluster(1)
	d, err := cl.Controller.DeployChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	bad := d.Chain.Router().Instances("w")[0]
	badID.Store(bad.ID())

	// healthy deployment probes healthy
	for _, pr := range d.Node.Kubelet.Probe(d) {
		if !pr.Healthy || pr.CircuitOpen || pr.Crashes != 0 {
			t.Fatalf("fresh deployment probed unhealthy: %+v", pr)
		}
	}
	// nothing to repair yet
	if n, err := d.Node.Kubelet.Repair(d); n != 0 || err != nil {
		t.Fatalf("repair on healthy deployment did %d restarts, %v", n, err)
	}

	// crash the bad replica until its breaker opens
	for i := 0; i < 100 && !bad.CircuitOpen(); i++ {
		if _, err := d.Gateway.Invoke(context.Background(), "", []byte("x")); err != nil {
			if !errors.Is(err, core.ErrHandlerPanic) {
				t.Fatalf("unexpected error: %v", err)
			}
		}
	}
	if !bad.CircuitOpen() {
		t.Fatal("breaker never opened on the crashing replica")
	}

	// the probe surfaces the ejected replica
	unhealthy := 0
	for _, pr := range d.Node.Kubelet.Probe(d) {
		if pr.Instance == bad.ID() {
			if pr.Healthy || !pr.CircuitOpen || pr.Crashes == 0 {
				t.Fatalf("crashed replica probed %+v", pr)
			}
			unhealthy++
		} else if !pr.Healthy {
			t.Fatalf("healthy replica probed unhealthy: %+v", pr)
		}
	}
	if unhealthy != 1 {
		t.Fatalf("probe saw %d unhealthy instances, want 1", unhealthy)
	}

	// repair replaces exactly the crashed replica
	restarted, err := d.Node.Kubelet.Repair(d)
	if err != nil || restarted != 1 {
		t.Fatalf("repair restarted %d, %v; want 1, nil", restarted, err)
	}
	insts := d.Chain.Router().Instances("w")
	if len(insts) != 2 {
		t.Fatalf("function has %d routable instances after repair, want 2", len(insts))
	}
	for _, in := range insts {
		if in.ID() == bad.ID() {
			t.Fatal("crashed replica still routable after repair")
		}
	}
	// fully healthy again, and serving
	for _, pr := range d.Node.Kubelet.Probe(d) {
		if !pr.Healthy {
			t.Fatalf("post-repair probe unhealthy: %+v", pr)
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := d.Gateway.Invoke(context.Background(), "", []byte("x")); err != nil {
			t.Fatalf("invoke %d after repair: %v", i, err)
		}
	}
	// no stranded buffers
	deadline := time.Now().Add(2 * time.Second)
	for d.Chain.Pool().InUse() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := d.Chain.Pool().LeakCheck(); err != nil {
		t.Fatal(err)
	}
}
