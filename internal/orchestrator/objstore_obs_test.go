package orchestrator

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/core"
)

// TestObjstoreMetricsExposed: a deployed chain's /metrics exposition
// carries the spright_objstore_* families, and driving a large payload
// through the chain — with a resident budget tight enough to force a
// spill+reload cycle — moves them.
func TestObjstoreMetricsExposed(t *testing.T) {
	cl := NewCluster(1)
	spec := core.ChainSpec{
		Name:        "objmet",
		PoolBuffers: 256,
		BufSize:     4096,
		// Budget of 2 slabs: any multi-slab object over 8 KiB must spill
		// as soon as the next one commits.
		Objects: core.ObjectPolicy{MaxResidentBytes: 8 * 1024, SpillDir: t.TempDir()},
		Functions: []core.FunctionSpec{{
			Name: "keep",
			Handler: func(ctx *core.Ctx) error {
				// Cache the request object under a key, unattached, so it
				// outlives this request and becomes a spill victim when the
				// next request's object commits.
				r, err := ctx.OpenObject()
				if err != nil {
					return err
				}
				sz := r.Size()
				if err := r.Close(); err != nil {
					return err
				}
				if _, err := ctx.PutObject(fmt.Sprintf("cached-%d", sz), largeBody(int(sz))); err != nil {
					return err
				}
				ctx.DetachObject()
				ctx.Reply()
				return ctx.SetPayload([]byte(fmt.Sprintf("%d", sz)))
			},
		}},
		Routes: []core.RouteSpec{{From: "", To: []string{"keep"}}},
	}
	d, err := cl.Controller.DeployChain(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Two large requests: the second commit evicts the first cached object
	// over the 8 KiB budget; opening the first afterwards reloads it.
	for _, n := range []int{20_000, 20_001} {
		out, err := d.Gateway.Invoke(context.Background(), "", largeBody(n))
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != fmt.Sprintf("%d", n) {
			t.Fatalf("reply %q for %d-byte payload", out, n)
		}
	}
	st := d.Chain.ObjectStore()
	h, ok := st.Lookup("cached-20000")
	if !ok {
		t.Fatal("cached object vanished")
	}
	r, err := st.Open(h) // transparent reload of the spilled cache entry
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r.Slab(0), largeBody(20_000)[:len(r.Slab(0))]) {
		t.Fatal("cached object corrupted across spill+reload")
	}
	_ = r.Close()

	// Let asynchronous request teardown release the request objects so the
	// gauges below are deterministic (only the two cache entries remain).
	deadline := time.Now().Add(2 * time.Second)
	for st.Stats().Objects > 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	rec := httptest.NewRecorder()
	cl.Observability().Registry().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	series := func(name string) float64 {
		prefix := name + `{chain="objmet"} `
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, prefix) {
				var v float64
				if _, err := fmt.Sscanf(strings.TrimPrefix(line, prefix), "%g", &v); err != nil {
					t.Fatalf("parse %q: %v", line, err)
				}
				return v
			}
		}
		t.Fatalf("exposition missing %s{chain=\"objmet\"}:\n%s", name, body)
		return 0
	}

	if v := series("spright_objstore_puts_total"); v < 4 { // 2 admissions + 2 cache entries
		t.Fatalf("puts_total = %v, want >= 4", v)
	}
	if v := series("spright_objstore_objects"); v != 2 {
		t.Fatalf("objects = %v, want 2 (the cache entries)", v)
	}
	if v := series("spright_objstore_spills_total"); v < 1 {
		t.Fatalf("spills_total = %v, want >= 1", v)
	}
	if v := series("spright_objstore_reloads_total"); v < 1 {
		t.Fatalf("reloads_total = %v, want >= 1", v)
	}
	if v := series("spright_objstore_spill_bytes_total"); v < 20_000 {
		t.Fatalf("spill_bytes_total = %v, want >= 20000", v)
	}
	if v := series("spright_objstore_opens_total"); v < 3 {
		t.Fatalf("opens_total = %v, want >= 3", v)
	}
	// Presence of the remaining families (values are timing-dependent).
	for _, name := range []string{
		"spright_objstore_resident_objects", "spright_objstore_spilled_objects",
		"spright_objstore_resident_bytes", "spright_objstore_spilled_bytes",
		"spright_objstore_deletes_total", "spright_objstore_refs_total",
		"spright_objstore_reload_bytes_total", "spright_objstore_spill_errors_total",
	} {
		series(name)
	}
	// The new shed reason is exported alongside the existing ones.
	if !strings.Contains(body, `spright_gateway_shed_total{chain="objmet",reason="payload_too_large"}`) {
		t.Fatalf("exposition missing payload_too_large shed series:\n%s", body)
	}

	// Teardown hygiene: release the deliberate cache entries and verify
	// the store drains clean.
	for _, key := range []string{"cached-20000", "cached-20001"} {
		if h, ok := st.Lookup(key); ok {
			if err := st.Release(h); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := st.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// largeBody builds a deterministic >BufSize payload.
func largeBody(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*11 + 3)
	}
	return b
}
