package orchestrator

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/spright-go/spright/internal/core"
)

// Multi-node scaling (§3.8): because shared memory only works within a
// node, SPRIGHT scales across nodes by replicating the *whole chain* as a
// unit onto each node and load-balancing between the chain units. This
// trades resource fragmentation for the intra-node zero-copy property —
// the paper's stated deployment constraint.

// ReplicatedChain is a chain deployed as one unit per node.
type ReplicatedChain struct {
	Name  string
	Units []*Deployment

	next atomic.Uint64
}

// DeployChainReplicated deploys spec as a chain unit on each of n distinct
// nodes. Fails (and rolls back) if fewer than n nodes exist.
func (ctl *Controller) DeployChainReplicated(spec core.ChainSpec, n int) (*ReplicatedChain, error) {
	if n <= 0 {
		n = 1
	}
	ctl.sched.mu.Lock()
	nodes := append([]*WorkerNode(nil), ctl.sched.nodes...)
	ctl.sched.mu.Unlock()
	if len(nodes) < n {
		return nil, fmt.Errorf("orchestrator: need %d nodes, cluster has %d", n, len(nodes))
	}

	rc := &ReplicatedChain{Name: spec.Name}
	for i := 0; i < n; i++ {
		unitSpec := spec
		unitSpec.Name = fmt.Sprintf("%s-unit%d", spec.Name, i)
		d, err := nodes[i].Kubelet.CreateChain(unitSpec)
		if err != nil {
			rc.Close()
			return nil, fmt.Errorf("unit %d: %w", i, err)
		}
		rc.Units = append(rc.Units, d)
	}
	return rc, nil
}

// pick selects a unit: least in-flight first (residual capacity at chain
// granularity), with round-robin tie-breaking.
func (rc *ReplicatedChain) pick() *Deployment {
	best := -1
	bestLoad := int(^uint(0) >> 1)
	start := int(rc.next.Add(1))
	for i := range rc.Units {
		u := rc.Units[(start+i)%len(rc.Units)]
		load := 0
		for _, in := range u.Chain.Instances() {
			load += in.Inflight()
		}
		if load < bestLoad {
			best, bestLoad = (start+i)%len(rc.Units), load
		}
	}
	return rc.Units[best]
}

// Invoke load-balances one request across the chain units.
func (rc *ReplicatedChain) Invoke(ctx context.Context, topic string, payload []byte) ([]byte, error) {
	if len(rc.Units) == 0 {
		return nil, fmt.Errorf("orchestrator: replicated chain %q has no units", rc.Name)
	}
	return rc.pick().Gateway.Invoke(ctx, topic, payload)
}

// Stats aggregates gateway stats across units.
func (rc *ReplicatedChain) Stats() core.GatewayStats {
	var out core.GatewayStats
	for _, u := range rc.Units {
		s := u.Gateway.Stats()
		out.Admitted += s.Admitted
		out.Completed += s.Completed
		out.Rejected += s.Rejected
	}
	return out
}

// Close tears down every unit.
func (rc *ReplicatedChain) Close() {
	var wg sync.WaitGroup
	for _, u := range rc.Units {
		if u == nil {
			continue
		}
		wg.Add(1)
		go func(u *Deployment) {
			defer wg.Done()
			u.Close()
		}(u)
	}
	wg.Wait()
}
