package orchestrator

import (
	"sync"
	"time"
)

// Autoscaler scrapes per-instance concurrency from the deployment's
// event-driven proxies and scales functions between minReplicas and
// maxReplicas (§3.7). SPRIGHT never scales to zero: warm instances cost no
// CPU when idle, which is the whole point of §4.2.2.
type Autoscaler struct {
	dep *Deployment

	// Target is the desired per-instance concurrency (Knative's
	// container-concurrency target analog).
	Target int
	// MinReplicas and MaxReplicas bound each function's instance count.
	MinReplicas int
	MaxReplicas int

	mu      sync.Mutex
	ticker  *time.Ticker
	stop    chan struct{}
	started bool

	decisions []ScaleDecision
}

// ScaleDecision records one autoscaling action for observability.
type ScaleDecision struct {
	Function string
	From     int
	To       int
}

// NewAutoscaler builds an autoscaler for a deployment with a concurrency
// target per instance.
func NewAutoscaler(dep *Deployment, target int) *Autoscaler {
	if target <= 0 {
		target = 32
	}
	return &Autoscaler{
		dep:         dep,
		Target:      target,
		MinReplicas: 1,
		MaxReplicas: 8,
		stop:        make(chan struct{}),
	}
}

// Evaluate performs one scaling pass and returns the decisions taken.
// Desired replicas per function = ceil(total inflight / target).
func (a *Autoscaler) Evaluate() []ScaleDecision {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []ScaleDecision

	byFn := map[string][]int{}
	for _, in := range a.dep.Chain.Instances() {
		byFn[in.Function()] = append(byFn[in.Function()], in.Inflight())
	}
	for fn, loads := range byFn {
		total := 0
		for _, l := range loads {
			total += l
		}
		have := len(loads)
		want := (total + a.Target - 1) / a.Target
		if want < a.MinReplicas {
			want = a.MinReplicas
		}
		if want > a.MaxReplicas {
			want = a.MaxReplicas
		}
		for have < want {
			if _, err := a.dep.Chain.ScaleUp(fn); err != nil {
				break
			}
			have++
		}
		for have > want {
			if err := a.dep.Chain.ScaleDown(fn); err != nil {
				break
			}
			have--
		}
		if have != len(loads) {
			d := ScaleDecision{Function: fn, From: len(loads), To: have}
			out = append(out, d)
			a.decisions = append(a.decisions, d)
		}
	}
	return out
}

// Start runs Evaluate on a period until Stop.
func (a *Autoscaler) Start(period time.Duration) {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return
	}
	a.started = true
	a.ticker = time.NewTicker(period)
	ticker, stop := a.ticker, a.stop
	a.mu.Unlock()
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				a.Evaluate()
			}
		}
	}()
}

// Stop halts the background loop.
func (a *Autoscaler) Stop() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.started {
		a.ticker.Stop()
		close(a.stop)
		a.started = false
		a.stop = make(chan struct{})
	}
}

// Decisions returns the history of scaling actions.
func (a *Autoscaler) Decisions() []ScaleDecision {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]ScaleDecision(nil), a.decisions...)
}
