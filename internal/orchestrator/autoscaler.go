package orchestrator

import (
	"math"
	"sync"
	"time"
)

// Autoscaler is the per-chain scaling control plane (§3.7, ROADMAP item 1):
// an EWMA controller over the dataplane's live signals — per-instance
// inflight, socket queue backlog, ring occupancy, parked scale-from-zero
// requests, gateway admission rate, circuit-breaker state — with
// hysteresis, cooldown windows, and a max step to keep it from flapping.
//
// It is self-healing: circuit-open instances are replaced through
// Chain.RestartInstance and never counted as capacity. With
// ScaleToZeroAfter set, an idle chain retires every function to zero
// replicas; the first request afterwards parks at the gateway, kicks the
// controller awake, and is served by a resumed (ideally prewarmed)
// instance rather than failed.
type Autoscaler struct {
	dep *Deployment

	// Target is the desired per-instance concurrency (Knative's
	// container-concurrency target analog).
	Target int
	// MinReplicas and MaxReplicas bound each function's instance count.
	// MinReplicas applies while the chain is active; a chain idled to
	// zero by ScaleToZeroAfter stays at zero until demand returns.
	MinReplicas int
	MaxReplicas int

	cfg     AutoscalerConfig
	prewarm *PrewarmPool

	mu    sync.Mutex
	state map[string]*fnState

	// Bounded decision ring (the tracer's recent-trace ring discipline):
	// ring[total % len] is the next slot; Decisions reconstructs
	// chronological order from total.
	ring    []ScaleDecision
	total   uint64
	reasons map[string]uint64

	// decisionSink, when set, mirrors every recorded decision onto the
	// node's flight recorder so scale actions interleave with sheds and
	// breaker flips in one timeline. Called with a.mu held: the sink must
	// not call back into the autoscaler.
	decisionSink func(ScaleDecision)

	// idleSince marks when the whole chain last went quiet (scale-to-zero
	// clock); zero while any demand exists.
	idleSince time.Time

	// Admission-rate signal: EWMA of Δadmitted/Δt between evaluations.
	lastAdmitted uint64
	lastEval     time.Time
	admitRate    float64

	// remoteBacklog, when set, reports frames queued on inter-node send
	// rings bound for fn — cross-node demand the local queueing signals
	// cannot see (a backed-up mesh link means the remote replica set is
	// undersized exactly like a deep local socket queue would).
	remoteBacklog func(fn string) int

	ticker  *time.Ticker
	stop    chan struct{}
	kick    chan struct{}
	started bool
}

// fnState is the controller's per-function memory.
type fnState struct {
	ewma     float64
	seen     bool
	desired  int
	lastUp   time.Time
	lastDown time.Time
}

// AutoscalerConfig tunes the controller. The zero value of every knob
// reproduces the legacy instantaneous controller: no smoothing
// (EWMAAlpha 1), no hysteresis (ratios 1), no cooldowns, unbounded step,
// scale-to-zero off.
type AutoscalerConfig struct {
	// Target is the per-instance concurrency target (<=0: 32).
	Target int
	// MinReplicas is the active-chain floor (0 permits scale-to-zero as
	// a floor even without ScaleToZeroAfter; the legacy constructor uses 1).
	MinReplicas int
	// MaxReplicas caps each function (<=0: 8).
	MaxReplicas int

	// EWMAAlpha is the demand-smoothing factor in (0,1]; <=0 means 1
	// (no smoothing — the instantaneous signal).
	EWMAAlpha float64

	// ScaleUpRatio and ScaleDownRatio are the hysteresis thresholds:
	// scale up only when smoothed demand exceeds ScaleUpRatio × current
	// capacity, down only when it falls below ScaleDownRatio × capacity.
	// <=0 means 1 (no dead band). Sensible production values bracket 1,
	// e.g. 1.1 / 0.9.
	ScaleUpRatio   float64
	ScaleDownRatio float64

	// UpCooldown / DownCooldown are minimum gaps between scale actions in
	// the same direction per function. Resume-from-zero ignores them:
	// cold starts must not wait out a cooldown.
	UpCooldown   time.Duration
	DownCooldown time.Duration

	// MaxStep bounds how many replicas one evaluation may add or remove
	// per function (0: unbounded). Resume-from-zero ignores it.
	MaxStep int

	// ScaleToZeroAfter retires the whole chain to zero replicas after
	// being idle this long (0: never scale to zero).
	ScaleToZeroAfter time.Duration

	// Prewarm keeps this many pre-wired instances per function ready for
	// activation (0: no prewarm pool).
	Prewarm int

	// SelfHeal replaces circuit-open instances via RestartInstance on
	// every evaluation.
	SelfHeal bool

	// Interval is the evaluation period used by EnableAutoscaling
	// (<=0: 50ms).
	Interval time.Duration

	// DecisionHistory bounds the retained decision ring (<=0: 256).
	DecisionHistory int
}

// Scale-decision reasons.
const (
	// ReasonLoad: demand crossed a hysteresis threshold.
	ReasonLoad = "load"
	// ReasonResume: a parked request forced a zero-replica function back up.
	ReasonResume = "resume"
	// ReasonToZero: the idle chain retired to zero replicas.
	ReasonToZero = "to_zero"
	// ReasonSelfHeal: a circuit-open instance was replaced.
	ReasonSelfHeal = "self_heal"
)

// ScaleDecision records one autoscaling action for observability.
type ScaleDecision struct {
	Function string
	From     int
	To       int
	// Reason is one of the Reason* constants.
	Reason string
	// At is when the decision was taken.
	At time.Time
}

const (
	defaultDecisionHistory = 256
	defaultInterval        = 50 * time.Millisecond
)

// NewAutoscaler builds the legacy-shaped autoscaler: instantaneous (no
// smoothing, no hysteresis, no cooldowns), floor 1, cap 8, self-healing on.
func NewAutoscaler(dep *Deployment, target int) *Autoscaler {
	return NewAutoscalerWithConfig(dep, AutoscalerConfig{
		Target:      target,
		MinReplicas: 1,
		SelfHeal:    true,
	})
}

// NewAutoscalerWithConfig builds an autoscaler from an explicit config.
func NewAutoscalerWithConfig(dep *Deployment, cfg AutoscalerConfig) *Autoscaler {
	if cfg.Target <= 0 {
		cfg.Target = 32
	}
	if cfg.MinReplicas < 0 {
		cfg.MinReplicas = 0
	}
	if cfg.MaxReplicas <= 0 {
		cfg.MaxReplicas = 8
	}
	if cfg.EWMAAlpha <= 0 || cfg.EWMAAlpha > 1 {
		cfg.EWMAAlpha = 1
	}
	if cfg.ScaleUpRatio <= 0 {
		cfg.ScaleUpRatio = 1
	}
	if cfg.ScaleDownRatio <= 0 {
		cfg.ScaleDownRatio = 1
	}
	if cfg.DecisionHistory <= 0 {
		cfg.DecisionHistory = defaultDecisionHistory
	}
	if cfg.Interval <= 0 {
		cfg.Interval = defaultInterval
	}
	return &Autoscaler{
		dep:         dep,
		Target:      cfg.Target,
		MinReplicas: cfg.MinReplicas,
		MaxReplicas: cfg.MaxReplicas,
		cfg:         cfg,
		state:       make(map[string]*fnState),
		ring:        make([]ScaleDecision, cfg.DecisionHistory),
		reasons:     make(map[string]uint64),
		stop:        make(chan struct{}),
		kick:        make(chan struct{}, 1),
	}
}

// Config returns the resolved configuration.
func (a *Autoscaler) Config() AutoscalerConfig { return a.cfg }

// SetRemoteBacklog installs the cross-node demand hook: fn's queued frame
// count on this node's outbound mesh rings is folded into fn's demand
// signal each evaluation. Safe to call while the evaluate loop runs (the
// placed deployment wires it after EnableAutoscaling has started it).
func (a *Autoscaler) SetRemoteBacklog(f func(fn string) int) {
	a.mu.Lock()
	a.remoteBacklog = f
	a.mu.Unlock()
}

// Kick requests an immediate out-of-band evaluation — the gateway calls
// this (via the park notifier) when a request parks on a zero-replica
// function, so resume latency is bounded by the scheduler, not the
// evaluation interval. Non-blocking; coalesces while an evaluation runs.
func (a *Autoscaler) Kick() {
	select {
	case a.kick <- struct{}{}:
	default:
	}
}

func (a *Autoscaler) fnState(fn string) *fnState {
	st, ok := a.state[fn]
	if !ok {
		st = &fnState{}
		a.state[fn] = st
	}
	return st
}

// SetDecisionSink installs the flight-recorder bridge (nil clears). The
// bounded ring and reason counters keep working regardless — the sink is a
// mirror, not a replacement.
func (a *Autoscaler) SetDecisionSink(fn func(ScaleDecision)) {
	a.mu.Lock()
	a.decisionSink = fn
	a.mu.Unlock()
}

// record appends d to the bounded ring, bumps its reason counter, and
// mirrors it to the decision sink when one is attached.
func (a *Autoscaler) record(d ScaleDecision) ScaleDecision {
	a.ring[a.total%uint64(len(a.ring))] = d
	a.total++
	a.reasons[d.Reason]++
	if a.decisionSink != nil {
		a.decisionSink(d)
	}
	return d
}

// Evaluate performs one control pass and returns the decisions taken.
func (a *Autoscaler) Evaluate() []ScaleDecision {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.evaluateLocked(time.Now())
}

func (a *Autoscaler) evaluateLocked(now time.Time) []ScaleDecision {
	c := a.dep.Chain
	g := a.dep.Gateway
	var out []ScaleDecision

	// Self-heal first: a circuit-open instance is not capacity, it is a
	// fault. Replace it before sizing so the demand below lands on
	// instances that can serve it.
	if a.cfg.SelfHeal {
		for _, in := range c.Instances() {
			if !in.CircuitOpen() {
				continue
			}
			fn := in.Function()
			n := len(c.Router().Instances(fn))
			if _, err := c.RestartInstance(in.ID()); err == nil {
				out = append(out, a.record(ScaleDecision{
					Function: fn, From: n, To: n, Reason: ReasonSelfHeal, At: now,
				}))
			}
		}
	}

	// Admission-rate signal (EWMA of Δadmitted/Δt): exported for
	// observability and dashboards; the sizing below keys on the queueing
	// signals, which lead it.
	admitted := g.Admitted()
	if !a.lastEval.IsZero() {
		if dt := now.Sub(a.lastEval).Seconds(); dt > 0 {
			inst := float64(admitted-a.lastAdmitted) / dt
			a.admitRate = a.cfg.EWMAAlpha*inst + (1-a.cfg.EWMAAlpha)*a.admitRate
		}
	}
	a.lastAdmitted, a.lastEval = admitted, now

	// Ring occupancy per instance (polling mode; empty map in event mode).
	ringLen := map[uint32]int{}
	for _, r := range c.RingStats() {
		ringLen[r.Instance] = int(r.Stats.Len)
	}

	totalParked := g.Parked()
	totalDemand := 0.0

	for _, fn := range c.Functions() {
		insts := c.Router().Instances(fn)
		routable := len(insts)
		healthy := 0
		// Demand = requests parked on fn + in-flight work + socket and
		// ring backlog across its instances.
		demand := float64(g.ParkedFor(fn))
		for _, in := range insts {
			if !in.CircuitOpen() {
				healthy++
			}
			demand += float64(in.Inflight() + in.QueueDepth() + ringLen[in.ID()])
		}
		if a.remoteBacklog != nil {
			demand += float64(a.remoteBacklog(fn))
		}
		totalDemand += demand

		st := a.fnState(fn)
		if !st.seen {
			st.ewma, st.seen = demand, true
		} else {
			st.ewma = a.cfg.EWMAAlpha*demand + (1-a.cfg.EWMAAlpha)*st.ewma
		}

		parked := g.ParkedFor(fn)
		desired := int(math.Ceil(st.ewma / float64(a.Target)))
		// Any parked request resumes the whole chain: a zero-replica
		// mid-chain function must come back too, or the head's forward
		// would fail the request the park just saved.
		if desired < 1 && (parked > 0 || (totalParked > 0 && routable == 0)) {
			desired = 1
		}
		if desired < a.MinReplicas {
			desired = a.MinReplicas
		}
		if desired > a.MaxReplicas {
			desired = a.MaxReplicas
		}
		st.desired = desired

		// A function deliberately idled to zero stays there: the min-
		// replica floor yields to the scale-to-zero policy until demand
		// (anywhere in the chain — mid-chain functions must come back
		// before the head forwards to them) reappears.
		atZeroIdle := routable == 0 && demand == 0 && totalParked == 0 &&
			a.cfg.ScaleToZeroAfter > 0
		if atZeroIdle {
			continue
		}

		switch {
		case healthy == 0 && desired > 0:
			// Resume / zero-replica restore: hysteresis, cooldown and
			// MaxStep do not apply — there is nothing serving, and a
			// parked request is waiting on this decision.
			reason := ReasonLoad
			if totalParked > 0 {
				reason = ReasonResume
			}
			if d, ok := a.scaleUpTo(fn, routable, routable+desired, reason, now); ok {
				out = append(out, d)
				st.lastUp = now
			}
		case desired > healthy:
			capacity := float64(healthy * a.Target)
			if st.ewma >= a.cfg.ScaleUpRatio*capacity && now.Sub(st.lastUp) >= a.cfg.UpCooldown {
				add := desired - healthy
				if a.cfg.MaxStep > 0 && add > a.cfg.MaxStep {
					add = a.cfg.MaxStep
				}
				if d, ok := a.scaleUpTo(fn, routable, routable+add, ReasonLoad, now); ok {
					out = append(out, d)
					st.lastUp = now
				}
			}
		case desired < healthy:
			capacity := float64(healthy * a.Target)
			if st.ewma <= a.cfg.ScaleDownRatio*capacity && now.Sub(st.lastDown) >= a.cfg.DownCooldown {
				drop := healthy - desired
				if a.cfg.MaxStep > 0 && drop > a.cfg.MaxStep {
					drop = a.cfg.MaxStep
				}
				if d, ok := a.scaleDownTo(fn, routable, routable-drop, now); ok {
					out = append(out, d)
					st.lastDown = now
				}
			}
		}
	}

	// Scale-to-zero: the whole chain must be quiet — no demand at any
	// function, no pending responses, no parked requests — for the full
	// idle window before it retires.
	if a.cfg.ScaleToZeroAfter > 0 {
		if totalDemand == 0 && totalParked == 0 && g.Pending() == 0 {
			if a.idleSince.IsZero() {
				a.idleSince = now
			} else if now.Sub(a.idleSince) >= a.cfg.ScaleToZeroAfter {
				for _, fn := range c.Functions() {
					from := len(c.Router().Instances(fn))
					if from == 0 {
						continue
					}
					if n, err := c.ScaleToZero(fn); err == nil && n > 0 {
						out = append(out, a.record(ScaleDecision{
							Function: fn, From: from, To: from - n,
							Reason: ReasonToZero, At: now,
						}))
					}
				}
			}
		} else {
			a.idleSince = time.Time{}
		}
	}

	// Keep the prewarm pool topped up for the next cold start.
	if a.prewarm != nil {
		a.prewarm.Fill()
	}
	return out
}

// scaleUpTo grows fn from `from` routable instances toward `to`,
// activating prewarmed instances first and falling back to cold ScaleUp.
func (a *Autoscaler) scaleUpTo(fn string, from, to int, reason string, now time.Time) (ScaleDecision, bool) {
	c := a.dep.Chain
	if to > a.MaxReplicas {
		to = a.MaxReplicas
	}
	have := from
	for have < to {
		if a.prewarm != nil {
			if _, ok := a.prewarm.Take(fn); ok {
				have++
				continue
			}
		}
		if _, err := c.ScaleUp(fn); err != nil {
			break
		}
		have++
	}
	if have == from {
		return ScaleDecision{}, false
	}
	return a.record(ScaleDecision{Function: fn, From: from, To: have, Reason: reason, At: now}), true
}

// scaleDownTo shrinks fn from `from` routable instances toward `to`
// (never below one — full retirement goes through ScaleToZero).
func (a *Autoscaler) scaleDownTo(fn string, from, to int, now time.Time) (ScaleDecision, bool) {
	c := a.dep.Chain
	if to < 1 {
		to = 1
	}
	have := from
	for have > to {
		if err := c.ScaleDown(fn); err != nil {
			break
		}
		have--
	}
	if have == from {
		return ScaleDecision{}, false
	}
	return a.record(ScaleDecision{Function: fn, From: from, To: have, Reason: ReasonLoad, At: now}), true
}

// Start runs Evaluate on a period (and immediately on every Kick) until
// Stop.
func (a *Autoscaler) Start(period time.Duration) {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return
	}
	a.started = true
	a.ticker = time.NewTicker(period)
	ticker, stop, kick := a.ticker, a.stop, a.kick
	a.mu.Unlock()
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				a.Evaluate()
			case <-kick:
				a.Evaluate()
			}
		}
	}()
}

// Stop halts the background loop.
func (a *Autoscaler) Stop() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.started {
		a.ticker.Stop()
		close(a.stop)
		a.started = false
		a.stop = make(chan struct{})
	}
}

// Close stops the loop and tears down the prewarm pool.
func (a *Autoscaler) Close() {
	a.Stop()
	if a.prewarm != nil {
		a.prewarm.Close()
	}
}

// Prewarm returns the controller's prewarm pool (nil without one).
func (a *Autoscaler) PrewarmPool() *PrewarmPool { return a.prewarm }

// Decisions returns the retained scaling actions, oldest first. The
// history is bounded by DecisionHistory; older decisions are evicted.
func (a *Autoscaler) Decisions() []ScaleDecision {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := a.total
	size := uint64(len(a.ring))
	if n > size {
		n = size
	}
	out := make([]ScaleDecision, 0, n)
	for i := a.total - n; i < a.total; i++ {
		out = append(out, a.ring[i%size])
	}
	return out
}

// TotalDecisions returns the all-time decision count (the ring only
// retains the most recent DecisionHistory of them).
func (a *Autoscaler) TotalDecisions() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// DecisionCounts returns all-time decision counts by reason.
func (a *Autoscaler) DecisionCounts() map[string]uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]uint64, len(a.reasons))
	for k, v := range a.reasons {
		out[k] = v
	}
	return out
}

// AdmitRate returns the smoothed gateway admission rate (requests/s)
// observed between evaluations.
func (a *Autoscaler) AdmitRate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitRate
}

// FunctionScaleView is one function's controller state for observability.
type FunctionScaleView struct {
	Function string
	Replicas int // routable instances
	Healthy  int // routable minus circuit-open
	Desired  int // last computed desired replicas
	EWMA     float64
	Parked   int
}

// Views snapshots the controller's per-function state.
func (a *Autoscaler) Views() []FunctionScaleView {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := a.dep.Chain
	g := a.dep.Gateway
	var out []FunctionScaleView
	for _, fn := range c.Functions() {
		insts := c.Router().Instances(fn)
		healthy := 0
		for _, in := range insts {
			if !in.CircuitOpen() {
				healthy++
			}
		}
		v := FunctionScaleView{
			Function: fn,
			Replicas: len(insts),
			Healthy:  healthy,
			Parked:   g.ParkedFor(fn),
		}
		if st, ok := a.state[fn]; ok {
			v.Desired = st.desired
			v.EWMA = st.ewma
		}
		out = append(out, v)
	}
	return out
}
