package orchestrator

// Multi-node E2E: chains placed across two simulated worker nodes talking
// over the loopback mesh. Covers the tentpole acceptance criteria — correct
// results across the wire, one trace ID spanning both nodes with the
// cross-node hop visible as a span, clean shm pools on both sides — plus
// the chaos path (injected link kill → reconnect; exhausted link → a
// reason-attributed failure, not a leak or a deadline blackhole).

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/core"
	"github.com/spright-go/spright/internal/fault"
	"github.com/spright-go/spright/internal/transport"
)

// placedSpec builds a two-function chain with f1 on worker-1 and f2 on
// worker-2: f1 uppercases, f2 appends a suffix and replies.
func placedSpec(name string) core.ChainSpec {
	return core.ChainSpec{
		Name:             name,
		Mode:             core.ModeEvent,
		TraceSampleEvery: 1,
		Deadline:         5 * time.Second,
		Functions: []core.FunctionSpec{
			{
				Name: "f1", Node: "worker-1",
				Handler: func(ctx *core.Ctx) error {
					b := ctx.Payload()
					for i := range b {
						if b[i] >= 'a' && b[i] <= 'z' {
							b[i] -= 32
						}
					}
					return nil
				},
			},
			{
				Name: "f2", Node: "worker-2",
				Handler: func(ctx *core.Ctx) error {
					return ctx.SetPayload(append(ctx.Payload(), []byte("+f2")...))
				},
			},
		},
		Routes: []core.RouteSpec{
			{From: "", To: []string{"f1"}},
			{From: "f1", To: []string{"f2"}},
		},
	}
}

func TestPlacedChainCrossNodeE2E(t *testing.T) {
	cluster := NewCluster(2)
	if err := cluster.StartMesh(transport.Config{}); err != nil {
		t.Fatalf("StartMesh: %v", err)
	}
	defer cluster.StopMesh()

	pd, err := cluster.Controller.DeployPlacedChain(placedSpec("xnode"))
	if err != nil {
		t.Fatalf("DeployPlacedChain: %v", err)
	}

	out, err := pd.Gateway().Invoke(context.Background(), "/x", []byte("hello"))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if !bytes.Equal(out, []byte("HELLO+f2")) {
		t.Fatalf("cross-node result %q, want %q", out, "HELLO+f2")
	}

	// One trace ID spans both nodes, and the cross-node hop is a span.
	headTr := pd.Head().Chain.Tracer()
	if headTr == nil {
		t.Fatalf("head variant has no tracer")
	}
	headTraces := headTr.Completed()
	if len(headTraces) == 0 {
		t.Fatalf("no completed trace on head node")
	}
	ht := headTraces[len(headTraces)-1]
	sawForward := false
	for _, s := range ht.Spans {
		if s.Stage == core.StageXNodeForward {
			sawForward = true
			if s.Function != "f2" {
				t.Fatalf("forward span function %q, want f2", s.Function)
			}
		}
	}
	if !sawForward {
		t.Fatalf("head trace has no %s span: %+v", core.StageXNodeForward, ht.Spans)
	}
	remote := pd.Variant("worker-2")
	if remote == nil {
		t.Fatalf("no worker-2 variant")
	}
	var remoteMatch bool
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !remoteMatch {
		for _, rt := range remote.Chain.Tracer().Completed() {
			if rt.ID == ht.ID {
				remoteMatch = true
				if len(rt.Spans) == 0 {
					t.Fatalf("remote trace %s has no spans", rt.ID)
				}
			}
		}
		if !remoteMatch {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if !remoteMatch {
		t.Fatalf("trace %s did not span worker-2 (remote traces: %d)",
			ht.ID, len(remote.Chain.Tracer().Completed()))
	}

	// Fire-and-forget crosses nodes too.
	if err := pd.Gateway().InvokeAsync("/x", []byte("async")); err != nil {
		t.Fatalf("InvokeAsync: %v", err)
	}

	// Both nodes' pools come back clean once traffic drains.
	waitLeakFree(t, pd)
	pd.Close()
}

func waitLeakFree(t *testing.T, pd *PlacedDeployment) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		clean := true
		for _, node := range []string{"worker-1", "worker-2"} {
			if v := pd.Variant(node); v != nil && v.Chain.Pool().LeakCheck() != nil {
				clean = false
			}
		}
		if clean {
			return
		}
		if time.Now().After(deadline) {
			for _, node := range []string{"worker-1", "worker-2"} {
				if v := pd.Variant(node); v != nil {
					if err := v.Chain.Pool().LeakCheck(); err != nil {
						t.Errorf("%s pool leak: %v", node, err)
					}
				}
			}
			t.Fatalf("pools did not drain clean before deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitStoresDrained polls until every involved node's object store is
// leak-free (request teardown is asynchronous to the response).
func waitStoresDrained(t *testing.T, pd *PlacedDeployment, nodes ...string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		clean := true
		for _, node := range nodes {
			v := pd.Variant(node)
			if v == nil {
				continue
			}
			if st := v.Chain.ObjectStore(); st != nil && st.LeakCheck() != nil {
				clean = false
			}
		}
		if clean {
			return
		}
		if time.Now().After(deadline) {
			for _, node := range nodes {
				if v := pd.Variant(node); v != nil {
					if st := v.Chain.ObjectStore(); st != nil {
						if err := st.LeakCheck(); err != nil {
							t.Errorf("%s object store leak: %v", node, err)
						}
					}
				}
			}
			t.Fatalf("object stores did not drain before deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPlacedChainCrossNodeLargePayload drives a >BufSize request across the
// mesh: worker-1 admits it into the object tier (Len=0 carrier buffer), the
// transport stub must forward the OBJECT's bytes — not the empty in-buffer
// payload — and worker-2 re-admits them through its own large-payload path.
// The untouched echo response crosses back the same way.
func TestPlacedChainCrossNodeLargePayload(t *testing.T) {
	cluster := NewCluster(2)
	if err := cluster.StartMesh(transport.Config{}); err != nil {
		t.Fatalf("StartMesh: %v", err)
	}
	defer cluster.StopMesh()

	var remoteSawObject bool
	spec := core.ChainSpec{
		Name:        "xnode-large",
		Mode:        core.ModeEvent,
		PoolBuffers: 128,
		BufSize:     4096,
		Deadline:    5 * time.Second,
		Functions: []core.FunctionSpec{
			{
				Name: "relay", Node: "worker-1",
				Handler: func(ctx *core.Ctx) error { return nil },
			},
			{
				Name: "sink", Node: "worker-2",
				Handler: func(ctx *core.Ctx) error {
					// The body must arrive via worker-2's own object tier,
					// not as a (impossible) >BufSize in-buffer payload.
					remoteSawObject = len(ctx.Payload()) == 0 && ctx.ObjectHandle().Valid()
					return nil
				},
			},
		},
		Routes: []core.RouteSpec{
			{From: "", To: []string{"relay"}},
			{From: "relay", To: []string{"sink"}},
		},
	}
	pd, err := cluster.Controller.DeployPlacedChain(spec)
	if err != nil {
		t.Fatalf("DeployPlacedChain: %v", err)
	}

	want := make([]byte, 50_000)
	for i := range want {
		want[i] = byte(i*13 + 7)
	}
	out, err := pd.Gateway().Invoke(context.Background(), "/big", want)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if !bytes.Equal(out, want) {
		t.Fatalf("cross-node large echo: %d bytes back, want %d (match=%v)",
			len(out), len(want), bytes.Equal(out, want))
	}
	if !remoteSawObject {
		t.Fatalf("remote handler did not receive the body through the object tier")
	}

	waitLeakFree(t, pd)
	waitStoresDrained(t, pd, "worker-1", "worker-2")
	pd.Close()
}

// TestPlacedChainCrossNodeAttachedObject covers the auxiliary flavor: a
// handler on worker-1 attaches an object alongside a small in-buffer
// payload; the frame's object section carries it to worker-2, where it is
// re-materialized into that node's store and readable via OpenObject.
func TestPlacedChainCrossNodeAttachedObject(t *testing.T) {
	cluster := NewCluster(2)
	if err := cluster.StartMesh(transport.Config{}); err != nil {
		t.Fatalf("StartMesh: %v", err)
	}
	defer cluster.StopMesh()

	blob := make([]byte, 30_000)
	for i := range blob {
		blob[i] = byte(i*31 + 11)
	}
	spec := core.ChainSpec{
		Name:        "xnode-attach",
		Mode:        core.ModeEvent,
		PoolBuffers: 128,
		BufSize:     4096,
		Deadline:    5 * time.Second,
		Functions: []core.FunctionSpec{
			{
				Name: "producer", Node: "worker-1",
				Handler: func(ctx *core.Ctx) error {
					h, err := ctx.PutObject("", blob)
					if err != nil {
						return err
					}
					if err := ctx.AttachObject(h); err != nil {
						return err
					}
					return ctx.SetPayload([]byte("meta"))
				},
			},
			{
				Name: "consumer", Node: "worker-2",
				Handler: func(ctx *core.Ctx) error {
					if got := string(ctx.Payload()); got != "meta" {
						return fmt.Errorf("payload %q, want %q", got, "meta")
					}
					r, err := ctx.OpenObject()
					if err != nil {
						return fmt.Errorf("open forwarded object: %w", err)
					}
					defer r.Close()
					got := make([]byte, r.Size())
					if r.Size() > 0 {
						if _, err := r.ReadAt(got, 0); err != nil {
							return err
						}
					}
					if !bytes.Equal(got, blob) {
						return fmt.Errorf("forwarded object %d bytes, corrupt or truncated", len(got))
					}
					ctx.DetachObject()
					ctx.Reply()
					return ctx.SetPayload([]byte("verified"))
				},
			},
		},
		Routes: []core.RouteSpec{
			{From: "", To: []string{"producer"}},
			{From: "producer", To: []string{"consumer"}},
		},
	}
	pd, err := cluster.Controller.DeployPlacedChain(spec)
	if err != nil {
		t.Fatalf("DeployPlacedChain: %v", err)
	}

	out, err := pd.Gateway().Invoke(context.Background(), "/attach", []byte("go"))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(out) != "verified" {
		t.Fatalf("consumer verdict %q, want %q", out, "verified")
	}

	waitLeakFree(t, pd)
	waitStoresDrained(t, pd, "worker-1", "worker-2")
	pd.Close()
}

func TestPlacedChainChaosReconnectAndDropAttribution(t *testing.T) {
	inj := fault.New(7)
	cluster := NewCluster(2)
	cfg := transport.Config{Injector: inj, MaxAttempts: 4,
		DialBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	if err := cluster.StartMesh(cfg); err != nil {
		t.Fatalf("StartMesh: %v", err)
	}
	defer cluster.StopMesh()

	pd, err := cluster.Controller.DeployPlacedChain(placedSpec("chaos"))
	if err != nil {
		t.Fatalf("DeployPlacedChain: %v", err)
	}
	defer pd.Close()

	// Warm the link.
	if _, err := pd.Gateway().Invoke(context.Background(), "/x", []byte("warm")); err != nil {
		t.Fatalf("warm invoke: %v", err)
	}

	// Phase 1 — transient link kills: the peer listener stays up, so every
	// injected kill is followed by a reconnect and the traffic still lands.
	inj.Add(fault.Rule{Op: fault.OpQueueFull, Function: "net:worker-1", Hop: "net:worker-2",
		Probability: 1, MaxCount: 2})
	for i := 0; i < 5; i++ {
		out, err := pd.Gateway().Invoke(context.Background(), "/x", []byte("back"))
		if err != nil {
			t.Fatalf("invoke %d during chaos: %v", i, err)
		}
		if !bytes.Equal(out, []byte("BACK+f2")) {
			t.Fatalf("chaos result %q", out)
		}
	}

	// Phase 2 — peer node goes dark: its mesh (listener included) closes,
	// and one more injected kill discards worker-1's stale conn so the
	// writer must redial. The dial is refused until the reconnect budget
	// exhausts, and the in-flight forward fails fast with the drop reason
	// attributed — no leak, no deadline blackhole.
	inj.Add(fault.Rule{Op: fault.OpQueueFull, Function: "net:worker-1", Hop: "net:worker-2",
		Probability: 1, MaxCount: 1})
	cluster.Nodes()[1].Mesh.Close()
	_, err = pd.Gateway().Invoke(context.Background(), "/x", []byte("doomed"))
	if err == nil {
		t.Fatalf("invoke through a dead node succeeded")
	}
	if !strings.Contains(err.Error(), transport.DropConnDown) {
		t.Fatalf("failure not attributed to conn_down: %v", err)
	}

	node1 := cluster.Nodes()[0]
	st := node1.Mesh.Stats()
	var reconnects, connDown uint64
	for _, ps := range st.Sent {
		if ps.Peer == "worker-2" {
			reconnects = ps.Reconnects
			connDown = ps.Drops[transport.DropConnDown]
		}
	}
	if reconnects == 0 {
		t.Fatalf("no reconnect counted after injected link kills")
	}
	if connDown == 0 {
		t.Fatalf("conn_down drop not counted on worker-1→worker-2")
	}
	if inj.Stats().Total == 0 {
		t.Fatalf("injector never fired")
	}
	gs := pd.Gateway().Stats()
	if gs.Failed == 0 {
		t.Fatalf("gateway failure counter did not attribute the dropped forward")
	}
	waitLeakFree(t, pd)
}

// TestPlacedChainBatchingUnderLoad drives concurrent cross-node traffic and
// asserts the writer coalesced frames (batched-frames-per-write > 1).
func TestPlacedChainBatchingUnderLoad(t *testing.T) {
	cluster := NewCluster(2)
	if err := cluster.StartMesh(transport.Config{}); err != nil {
		t.Fatalf("StartMesh: %v", err)
	}
	defer cluster.StopMesh()

	spec := placedSpec("batch")
	spec.Functions[1].Instances = 4
	spec.Functions[1].Concurrency = 64
	pd, err := cluster.Controller.DeployPlacedChain(spec)
	if err != nil {
		t.Fatalf("DeployPlacedChain: %v", err)
	}
	defer pd.Close()

	node1 := cluster.Nodes()[0]
	maxBatch := func() float64 {
		for _, ps := range node1.Mesh.Stats().Sent {
			if ps.Peer == "worker-2" && ps.FramesPerWrite.Count() > 0 {
				return ps.FramesPerWrite.Max()
			}
		}
		return 0
	}

	deadline := time.Now().Add(10 * time.Second)
	for maxBatch() <= 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no batched write observed under concurrent load (max batch %.1f)", maxBatch())
		}
		var wg sync.WaitGroup
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				payload := []byte(fmt.Sprintf("req-%d", i))
				if _, err := pd.Gateway().Invoke(context.Background(), "/x", payload); err != nil {
					t.Errorf("invoke: %v", err)
				}
			}(i)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
	}
	waitLeakFree(t, pd)
}

// TestPlacedChainAutoscalerRemoteBacklog wires the autoscaler to the mesh
// backlog hook and checks the demand signal includes queued frames.
func TestPlacedChainAutoscalerRemoteBacklog(t *testing.T) {
	cluster := NewCluster(2)
	if err := cluster.StartMesh(transport.Config{}); err != nil {
		t.Fatalf("StartMesh: %v", err)
	}
	defer cluster.StopMesh()

	pd, err := cluster.Controller.DeployPlacedChain(placedSpec("scalemesh"))
	if err != nil {
		t.Fatalf("DeployPlacedChain: %v", err)
	}
	defer pd.Close()

	as, err := pd.EnableAutoscaling(AutoscalerConfig{Target: 1, MaxReplicas: 4, Interval: time.Hour})
	if err != nil {
		t.Fatalf("EnableAutoscaling: %v", err)
	}
	if as == nil {
		t.Fatalf("nil autoscaler")
	}
	// The hook resolves f2's backlog through the mesh ring (0 when idle)
	// and f1's (local) to 0.
	if got := as.remoteBacklog("f2"); got != 0 {
		t.Fatalf("idle remote backlog %d, want 0", got)
	}
	if got := as.remoteBacklog("f1"); got != 0 {
		t.Fatalf("local fn backlog %d, want 0", got)
	}
	// Evaluate must run clean with the hook installed.
	as.Evaluate()
}

// TestNetMetricsConformance is the exporter conformance test for the
// spright_net_* families: drive cross-node traffic, scrape the registry,
// and assert the exposition equals Mesh.Stats exactly.
func TestNetMetricsConformance(t *testing.T) {
	cluster := NewCluster(2)
	if err := cluster.StartMesh(transport.Config{}); err != nil {
		t.Fatalf("StartMesh: %v", err)
	}
	defer cluster.StopMesh()

	pd, err := cluster.Controller.DeployPlacedChain(placedSpec("netconf"))
	if err != nil {
		t.Fatalf("DeployPlacedChain: %v", err)
	}
	defer pd.Close()

	for i := 0; i < 32; i++ {
		if _, err := pd.Gateway().Invoke(context.Background(), "/x", []byte("ping")); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}

	var buf bytes.Buffer
	if err := cluster.Observability().Registry().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	expo := parseNetExposition(t, buf.String())

	for _, n := range cluster.Nodes() {
		st := n.Mesh.Stats()
		for _, ps := range st.Sent {
			base := fmt.Sprintf(`{node=%q,peer=%q}`, st.Node, ps.Peer)
			assertExpo(t, expo, "spright_net_frames_sent_total"+base, float64(ps.FramesSent))
			assertExpo(t, expo, "spright_net_bytes_sent_total"+base, float64(ps.BytesSent))
			assertExpo(t, expo, "spright_net_writes_total"+base, float64(ps.Writes))
			assertExpo(t, expo, "spright_net_reconnects_total"+base, float64(ps.Reconnects))
			assertExpo(t, expo, "spright_net_send_ring_depth"+base, float64(ps.QueueDepth))
			for _, reason := range []string{transport.DropBacklog, transport.DropConnDown, transport.DropClosed} {
				key := fmt.Sprintf(`spright_net_drops_total{node=%q,peer=%q,reason=%q}`, st.Node, ps.Peer, reason)
				assertExpo(t, expo, key, float64(ps.Drops[reason]))
			}
			if ps.Writes > 0 {
				cnt := fmt.Sprintf(`spright_net_frames_per_write_count{node=%q,peer=%q}`, st.Node, ps.Peer)
				if _, ok := expo[cnt]; !ok {
					t.Errorf("missing per-write summary count sample %s", cnt)
				}
			}
		}
		for _, rs := range st.Received {
			base := fmt.Sprintf(`{node=%q,peer=%q}`, st.Node, rs.Peer)
			assertExpo(t, expo, "spright_net_frames_received_total"+base, float64(rs.FramesReceived))
			assertExpo(t, expo, "spright_net_bytes_received_total"+base, float64(rs.BytesReceived))
		}
		assertExpo(t, expo, fmt.Sprintf(`spright_net_recv_errors_total{node=%q}`, st.Node), float64(st.RecvErrors))
	}
}

func parseNetExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func assertExpo(t *testing.T, expo map[string]float64, key string, want float64) {
	t.Helper()
	got, ok := expo[key]
	if !ok {
		t.Errorf("exposition missing %s", key)
		return
	}
	if got != want {
		t.Errorf("%s = %g, want %g", key, got, want)
	}
}
