package orchestrator

// End-to-end distributed-tracing tests: one request crossing two deployed
// chains (via Ctx.TraceContext + core.WithTraceContext) and a DFR fan-out
// must yield a single trace ID with correctly parented spans, visible
// through the cluster observability layer's /traces?format=otlp endpoint;
// and tail-based sampling must retain faulted / over-threshold requests
// even when head sampling would drop them.

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/core"
	"github.com/spright-go/spright/internal/fault"
)

// handlerSpans returns the handler-stage spans of a trace keyed by function.
func handlerSpans(tr *core.Trace) map[string][]core.Span {
	out := make(map[string][]core.Span)
	for _, s := range tr.Spans {
		if s.Stage == core.StageHandler {
			out[s.Function] = append(out[s.Function], s)
		}
	}
	return out
}

func TestCrossChainFanOutSingleTrace(t *testing.T) {
	cl := NewCluster(1)

	// Downstream chain "beta": a plain echo, sampling every request so an
	// adopted inbound context is always traced.
	depB, err := cl.Controller.DeployChain(core.ChainSpec{
		Name:             "beta",
		TraceSampleEvery: 1,
		Functions: []core.FunctionSpec{{
			Name: "b1",
			Handler: func(ctx *core.Ctx) error {
				return ctx.SetPayload(append(ctx.Payload(), ":beta"...))
			},
		}},
		Routes: []core.RouteSpec{{From: "", To: []string{"b1"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer depB.Close()

	// Upstream chain "alpha": a1 fans out to {a2, a3}; a2 crosses into
	// chain beta carrying the shared-memory trace context, then replies;
	// a3 is a fire-and-forget branch that drops.
	depA, err := cl.Controller.DeployChain(core.ChainSpec{
		Name:             "alpha",
		TraceSampleEvery: 1,
		Functions: []core.FunctionSpec{
			{Name: "a1", Handler: func(ctx *core.Ctx) error { return nil }},
			{Name: "a2", Handler: func(ctx *core.Ctx) error {
				downstream := core.WithTraceContext(context.Background(), ctx.TraceContext())
				out, err := depB.Gateway.Invoke(downstream, "", ctx.Payload())
				if err != nil {
					return err
				}
				if err := ctx.SetPayload(out); err != nil {
					return err
				}
				ctx.Reply()
				return nil
			}},
			{Name: "a3", Handler: func(ctx *core.Ctx) error { ctx.Drop(); return nil }},
		},
		Routes: []core.RouteSpec{
			{From: "", To: []string{"a1"}},
			{From: "a1", To: []string{"a2", "a3"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer depA.Close()

	out, err := depA.Gateway.Invoke(context.Background(), "", []byte("req"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "req:beta" {
		t.Fatalf("cross-chain payload %q, want %q", out, "req:beta")
	}

	trA, trB := depA.Chain.Tracer(), depB.Chain.Tracer()
	if trA == nil || trB == nil {
		t.Fatal("both chains must have tracers")
	}

	// Spans recorded on branch goroutines may land just after the waiter
	// returns (the tracer keeps a late-attach window for them): poll until
	// the full picture is visible.
	var tA, tB *core.Trace
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if da, db := trA.Completed(), trB.Completed(); len(da) > 0 && len(db) > 0 {
			tA, tB = da[len(da)-1], db[len(db)-1]
			if len(handlerSpans(tA)) == 3 {
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	if tA == nil || tB == nil {
		t.Fatalf("traces not retained: alpha=%d beta=%d",
			trA.TotalSampled(), trB.TotalSampled())
	}

	// One distributed trace across both chains.
	if tA.ID.IsZero() {
		t.Fatal("alpha trace has a zero trace ID")
	}
	if tB.ID != tA.ID {
		t.Fatalf("beta trace ID %s != alpha trace ID %s (context not propagated)",
			tB.ID, tA.ID)
	}

	// The fan-out produced a handler span per branch plus the head.
	hs := handlerSpans(tA)
	for _, fn := range []string{"a1", "a2", "a3"} {
		if len(hs[fn]) != 1 {
			t.Fatalf("handler spans for %s: %d, want 1 (spans: %+v)", fn, len(hs[fn]), tA.Spans)
		}
	}

	// Every parent resolves within the union of both chains' spans; beta's
	// root must be parented on an alpha handler span (the cross-chain hop).
	ids := make(map[uint64]core.Span)
	for _, s := range append(append([]core.Span{}, tA.Spans...), tB.Spans...) {
		if s.ID == 0 {
			t.Fatalf("span with zero ID: %+v", s)
		}
		ids[s.ID] = s
	}
	roots := 0
	for _, s := range append(append([]core.Span{}, tA.Spans...), tB.Spans...) {
		if s.Parent == 0 {
			roots++
			continue
		}
		if _, ok := ids[s.Parent]; !ok {
			t.Fatalf("span %016x (%s) has unresolvable parent %016x", s.ID, s.Stage, s.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("%d parentless spans across both chains, want exactly 1 root", roots)
	}
	var bRoot *core.Span
	for i, s := range tB.Spans {
		if s.Stage == core.StageRequest {
			bRoot = &tB.Spans[i]
		}
	}
	if bRoot == nil {
		t.Fatalf("beta trace has no request span: %+v", tB.Spans)
	}
	if p, ok := ids[bRoot.Parent]; !ok || p.Stage != core.StageHandler {
		t.Fatalf("beta root parent %016x is not an alpha handler span (got %+v)",
			bRoot.Parent, p)
	}

	// The distributed trace is visible on the admin surface as OTLP JSON.
	mux := cl.Observability().AdminMux()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/traces?format=otlp", nil))
	if rec.Code != 200 {
		t.Fatalf("/traces?format=otlp: code %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/traces Content-Type %q, want application/json", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"resourceSpans"`) {
		t.Fatalf("OTLP body missing resourceSpans: %s", body)
	}
	if !strings.Contains(body, tA.ID.String()) {
		t.Fatalf("OTLP body missing trace ID %s:\n%s", tA.ID, body)
	}
	for _, svc := range []string{"spright/alpha", "spright/beta"} {
		if !strings.Contains(body, svc) {
			t.Fatalf("OTLP body missing service %q", svc)
		}
	}
}

// TestTailSamplingRetainsFaultedRequest: at the production head-sampling
// period (1-in-1024) a single faulted request would normally be invisible;
// tail-based sampling must retain it anyway.
func TestTailSamplingRetainsFaultedRequest(t *testing.T) {
	cl := NewCluster(1)
	inj := fault.New(42).Add(fault.Rule{Op: fault.OpError, Function: "g1", Probability: 1})
	dep, err := cl.Controller.DeployChain(core.ChainSpec{
		Name:             "gamma",
		TraceSampleEvery: 1024,
		Injector:         inj,
		Functions: []core.FunctionSpec{{
			Name:    "g1",
			Handler: func(ctx *core.Ctx) error { return nil },
		}},
		Routes: []core.RouteSpec{{From: "", To: []string{"g1"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	if _, err := dep.Gateway.Invoke(context.Background(), "", []byte("x")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("injected fault not surfaced: %v", err)
	}

	tr := dep.Chain.Tracer()
	tail := tr.TailRetained()
	if len(tail) == 0 {
		t.Fatal("faulted request not tail-retained at sample period 1024")
	}
	got := tail[len(tail)-1]
	if !got.Tail {
		t.Fatal("tail-retained trace not flagged Tail")
	}
	if got.Err == "" {
		t.Fatalf("tail-retained trace has no error: %+v", got)
	}
	if got.ID.IsZero() {
		t.Fatal("tail-retained trace has a zero trace ID")
	}
}

// TestTailSamplingRetainsSlowRequest: a request slower than the chain's
// TraceTailLatency threshold is retained even when head sampling skips it.
func TestTailSamplingRetainsSlowRequest(t *testing.T) {
	cl := NewCluster(1)
	dep, err := cl.Controller.DeployChain(core.ChainSpec{
		Name:             "delta",
		TraceSampleEvery: 1024,
		TraceTailLatency: time.Millisecond,
		Functions: []core.FunctionSpec{{
			Name:        "d1",
			ServiceTime: 5 * time.Millisecond,
			Handler:     func(ctx *core.Ctx) error { return nil },
		}},
		Routes: []core.RouteSpec{{From: "", To: []string{"d1"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	if _, err := dep.Gateway.Invoke(context.Background(), "", []byte("x")); err != nil {
		t.Fatal(err)
	}
	tr := dep.Chain.Tracer()
	tail := tr.TailRetained()
	if len(tail) == 0 {
		t.Fatal("over-threshold request not tail-retained")
	}
	got := tail[len(tail)-1]
	if !got.Tail || got.Err != "" {
		t.Fatalf("tail trace: Tail=%v Err=%q, want latency-retained success", got.Tail, got.Err)
	}
	if got.Elapsed() < time.Millisecond {
		t.Fatalf("tail trace elapsed %v, want >= threshold 1ms", got.Elapsed())
	}
}
