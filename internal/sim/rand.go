package sim

import "math"

// Rand is a small deterministic PRNG (xorshift64*) so simulations are
// reproducible without seeding global math/rand state. The zero value is
// not usable; construct with NewRand.
type Rand struct{ s uint64 }

// NewRand returns a PRNG seeded with seed (0 is remapped to a fixed seed).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). Panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed float with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}
