// Package sim is a deterministic discrete-event simulation engine with a
// CPU-contention model. It drives the comparative platform evaluation
// (Knative vs gRPC vs D-/S-SPRIGHT): virtual time advances from event to
// event, and work executes on modeled cores so that CPU saturation, queueing
// delay and the resulting closed-loop overload cycles emerge naturally.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time int64

// Seconds converts virtual time to float seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration converts a time.Duration into simulation ticks.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

type event struct {
	at  Time
	seq uint64 // tie-break for determinism
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event executor. It is not safe for
// concurrent use; all model code runs inside event callbacks.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	halted bool
}

// NewEngine returns an engine at virtual time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.events)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a model bug rather than a recoverable condition.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Halt stops the run loop after the current event returns.
func (e *Engine) Halt() { e.halted = true }

// Run executes events in timestamp order until the queue drains, the halt
// flag is set, or virtual time would pass `until` (inclusive). It returns
// the number of events executed.
func (e *Engine) Run(until Time) int {
	n := 0
	e.halted = false
	for e.events.Len() > 0 && !e.halted {
		next := e.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		next.fn()
		n++
	}
	if e.now < until && !e.halted {
		e.now = until
	}
	return n
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }

// core is one CPU core with a FIFO run queue.
type core struct {
	freeAt Time // when the core finishes its current queue
	busy   Time // cumulative busy ticks (for utilization accounting)
}

// CPUSet models a set of identical cores shared by one or more components.
// Work items are placed on the earliest-available core (FIFO per core, work
// never migrates). Pollers permanently occupy whole cores.
type CPUSet struct {
	eng     *Engine
	name    string
	cores   []core
	pollers int

	// usage sampling
	lastSample     Time
	busyAtSample   Time
	sampleInterval Time
	samples        []Sample
	groups         map[string]*groupAccount
}

// Sample is one CPU-usage observation: Busy is in units of cores (e.g. 2.5
// means 250% CPU) over the sampling window ending at At.
type Sample struct {
	At   Time
	Busy float64
}

type groupAccount struct {
	busy        Time
	busyAt      Time
	pollerCores int
	samples     []Sample
}

// NewCPUSet creates a CPU set with n cores managed by eng. sampleInterval
// controls usage time-series granularity (0 disables sampling).
func NewCPUSet(eng *Engine, name string, n int, sampleInterval Time) *CPUSet {
	if n <= 0 {
		panic("sim: CPUSet needs at least one core")
	}
	c := &CPUSet{
		eng:            eng,
		name:           name,
		cores:          make([]core, n),
		sampleInterval: sampleInterval,
		groups:         make(map[string]*groupAccount),
	}
	if sampleInterval > 0 {
		eng.After(sampleInterval, c.sample)
	}
	return c
}

// Cores returns the number of cores (including poller-occupied ones).
func (c *CPUSet) Cores() int { return len(c.cores) }

// AddPoller dedicates one core to a busy poller belonging to group. The
// core's full time counts as busy from now on. Returns false if no core is
// left to dedicate.
func (c *CPUSet) AddPoller(group string) bool {
	if c.pollers >= len(c.cores) {
		return false
	}
	c.pollers++
	// Pollers burn time continuously; account at sampling instants.
	g := c.group(group)
	g.pollerCores++
	return true
}

func (c *CPUSet) group(name string) *groupAccount {
	g, ok := c.groups[name]
	if !ok {
		g = &groupAccount{}
		c.groups[name] = g
	}
	return g
}

// Exec schedules `cycles`-worth of work (expressed as virtual duration d)
// on the earliest-free shared core and calls done (may be nil) when the
// work completes. group attributes the busy time for per-component usage
// accounting. Exec returns the completion time.
func (c *CPUSet) Exec(group string, d Time, done func()) Time {
	if d < 0 {
		d = 0
	}
	// choose the earliest-free non-poller core
	best := -1
	var bestFree Time = math.MaxInt64
	now := c.eng.Now()
	for i := c.pollers; i < len(c.cores); i++ {
		f := c.cores[i].freeAt
		if f < now {
			f = now
		}
		if f < bestFree {
			bestFree = f
			best = i
		}
	}
	if best < 0 {
		// fully dedicated to pollers: queue behind a synthetic core to
		// avoid deadlock; model as one extra implicit core.
		best = 0
		bestFree = c.cores[0].freeAt
		if bestFree < now {
			bestFree = now
		}
	}
	start := bestFree
	end := start + d
	c.cores[best].freeAt = end
	c.cores[best].busy += d
	c.group(group).busy += d
	if done != nil {
		c.eng.At(end, done)
	}
	return end
}

// QueueDelay reports how long a new work item would wait before starting.
func (c *CPUSet) QueueDelay() Time {
	now := c.eng.Now()
	var best Time = math.MaxInt64
	for i := c.pollers; i < len(c.cores); i++ {
		f := c.cores[i].freeAt
		if f < now {
			f = now
		}
		if w := f - now; w < best {
			best = w
		}
	}
	if best == math.MaxInt64 {
		return 0
	}
	return best
}

func (c *CPUSet) sample() {
	now := c.eng.Now()
	window := now - c.lastSample
	if window <= 0 {
		window = c.sampleInterval
	}
	var busy Time
	for i := range c.cores {
		busy += c.coreBusyInWindow(i)
	}
	delta := busy - c.busyAtSample
	c.busyAtSample = busy
	total := float64(delta)/float64(window) + float64(c.pollers)
	c.samples = append(c.samples, Sample{At: now, Busy: total})
	for name, g := range c.groups {
		_ = name
		gd := g.busy - g.busyAt
		g.busyAt = g.busy
		gb := float64(gd) / float64(window)
		gb += float64(g.pollerCores)
		g.samples = append(g.samples, Sample{At: now, Busy: gb})
	}
	c.lastSample = now
	c.eng.After(c.sampleInterval, c.sample)
}

func (c *CPUSet) coreBusyInWindow(i int) Time { return c.cores[i].busy }

// Samples returns the aggregate usage time series collected so far.
func (c *CPUSet) Samples() []Sample { return c.samples }

// GroupSamples returns the usage time series attributed to one group.
func (c *CPUSet) GroupSamples(group string) []Sample {
	if g, ok := c.groups[group]; ok {
		return g.samples
	}
	return nil
}

// GroupBusy returns the cumulative busy virtual time attributed to a group,
// including poller-core time accumulated up to now.
func (c *CPUSet) GroupBusy(group string) Time {
	g, ok := c.groups[group]
	if !ok {
		return 0
	}
	t := g.busy
	t += Time(g.pollerCores) * c.eng.Now()
	return t
}

// TotalBusy returns cumulative busy time across all cores plus poller time.
func (c *CPUSet) TotalBusy() Time {
	var t Time
	for i := range c.cores {
		t += c.cores[i].busy
	}
	t += Time(c.pollers) * c.eng.Now()
	return t
}
