package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	if n := e.Run(100); n != 3 {
		t.Fatalf("ran %d events, want 3", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events must run FIFO, got %v", order)
		}
	}
}

func TestEngineRunStopsAtUntil(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(100, func() { ran = true })
	e.Run(50)
	if ran {
		t.Fatal("event past `until` must not run")
	}
	if e.Now() != 50 {
		t.Fatalf("clock should advance to until=50, got %d", e.Now())
	}
	e.Run(200)
	if !ran {
		t.Fatal("event should run on the next window")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(10, tick)
		}
	}
	e.After(0, tick)
	e.Run(1000)
	if count != 5 {
		t.Fatalf("tick ran %d times, want 5", count)
	}
	if e.Now() != 1000 {
		t.Fatalf("now=%d want 1000", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past must panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run(200)
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++; e.Halt() })
	e.At(2, func() { n++ })
	e.Run(10)
	if n != 1 {
		t.Fatalf("halt should stop after first event, ran %d", n)
	}
}

func TestDurationConversion(t *testing.T) {
	if Duration(time.Millisecond) != 1e6 {
		t.Fatal("1ms must be 1e6 ticks")
	}
	if Time(2e9).Seconds() != 2.0 {
		t.Fatal("2e9 ticks must be 2 seconds")
	}
}

func TestCPUSetSerializesWorkOnOneCore(t *testing.T) {
	e := NewEngine()
	c := NewCPUSet(e, "node", 1, 0)
	var done []Time
	for i := 0; i < 3; i++ {
		c.Exec("g", 100, func() { done = append(done, e.Now()) })
	}
	e.Run(1000)
	want := []Time{100, 200, 300}
	for i, w := range want {
		if done[i] != w {
			t.Fatalf("completion %d at %d, want %d (FIFO on one core)", i, done[i], w)
		}
	}
}

func TestCPUSetParallelismAcrossCores(t *testing.T) {
	e := NewEngine()
	c := NewCPUSet(e, "node", 4, 0)
	var last Time
	for i := 0; i < 4; i++ {
		c.Exec("g", 100, func() { last = e.Now() })
	}
	e.Run(1000)
	if last != 100 {
		t.Fatalf("4 items on 4 cores should all finish at 100, last=%d", last)
	}
}

func TestCPUSetQueueDelay(t *testing.T) {
	e := NewEngine()
	c := NewCPUSet(e, "node", 1, 0)
	c.Exec("g", 500, nil)
	if d := c.QueueDelay(); d != 500 {
		t.Fatalf("queue delay %d, want 500", d)
	}
}

func TestCPUSetPollerOccupiesCore(t *testing.T) {
	e := NewEngine()
	c := NewCPUSet(e, "node", 2, 0)
	if !c.AddPoller("dpdk") {
		t.Fatal("AddPoller failed")
	}
	// only one shared core remains: two 100-tick items serialize.
	var last Time
	for i := 0; i < 2; i++ {
		c.Exec("g", 100, func() { last = e.Now() })
	}
	e.Run(1000)
	if last != 200 {
		t.Fatalf("with a poller, work must serialize on remaining core: last=%d want 200", last)
	}
	if got := c.GroupBusy("dpdk"); got != Time(1000) {
		t.Fatalf("poller busy time %d, want full 1000", got)
	}
}

func TestCPUSetPollerExhaustionReturnsFalse(t *testing.T) {
	e := NewEngine()
	c := NewCPUSet(e, "node", 1, 0)
	if !c.AddPoller("p1") {
		t.Fatal("first poller should fit")
	}
	if c.AddPoller("p2") {
		t.Fatal("second poller must not fit on a 1-core set")
	}
}

func TestCPUSetUsageSampling(t *testing.T) {
	e := NewEngine()
	c := NewCPUSet(e, "node", 2, 1000)
	// keep one core 100% busy for 10 windows
	var feed func()
	feed = func() {
		if e.Now() < 10000 {
			c.Exec("busy", 1000, feed)
		}
	}
	feed()
	e.Run(10000)
	s := c.Samples()
	if len(s) == 0 {
		t.Fatal("no samples collected")
	}
	// one of two cores busy -> about 1.0 core busy per window
	mid := s[len(s)/2]
	if mid.Busy < 0.9 || mid.Busy > 1.1 {
		t.Fatalf("expected ~1 core busy, got %v", mid.Busy)
	}
	gs := c.GroupSamples("busy")
	if len(gs) == 0 {
		t.Fatal("no group samples")
	}
}

func TestCPUSetGroupBusyAccounting(t *testing.T) {
	e := NewEngine()
	c := NewCPUSet(e, "node", 2, 0)
	c.Exec("a", 300, nil)
	c.Exec("b", 200, nil)
	e.Run(1000)
	if c.GroupBusy("a") != 300 || c.GroupBusy("b") != 200 {
		t.Fatalf("group accounting wrong: a=%d b=%d", c.GroupBusy("a"), c.GroupBusy("b"))
	}
	if c.TotalBusy() != 500 {
		t.Fatalf("total busy %d want 500", c.TotalBusy())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	var sum float64
	n := 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(5.0)
	}
	mean := sum / float64(n)
	if mean < 4.5 || mean > 5.5 {
		t.Fatalf("exponential mean drifted: %v", mean)
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must be remapped to a usable state")
	}
}
