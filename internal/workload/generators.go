// Package workload implements the paper's load generators and traces:
// ab-style fixed-concurrency closed loops (§3.2.2), Locust-style ramped
// user swarms with think time (§4.2.1), the wrk variable-size HTTP mix of
// §2 (98% 100 B / 2% 10 KB), a MERL-like intermittent motion-event trace
// (§4.2.2), and the periodic parking-camera burst trace (§4.1).
//
// Generators drive a discrete-event simulation: they schedule on a
// sim.Engine and call an Issue function for every request, which must call
// done exactly once when the response arrives (closed-loop semantics).
package workload

import (
	"github.com/spright-go/spright/internal/sim"
)

// IssueFunc submits one request. Implementations call done exactly once
// when the request completes (or fails).
type IssueFunc func(user int, done func())

// ClosedLoop is an Apache-Bench-style generator: Concurrency virtual users
// in a closed loop with zero think time, optionally ramped at SpawnPerSec
// users per second (Locust's spawn rate; 0 = all users start immediately).
type ClosedLoop struct {
	Eng         *sim.Engine
	Concurrency int
	SpawnPerSec float64

	// ThinkTime, if set, returns the per-iteration think time drawn for
	// a user (Locust-style wait between requests). nil = zero think.
	ThinkTime func(r *sim.Rand) sim.Time

	Issue IssueFunc
	Seed  uint64

	issued    int
	completed int
	active    int
	stopped   bool
}

// Start launches the generator; users run until Stop or the engine's run
// window ends.
func (c *ClosedLoop) Start() {
	if c.Concurrency <= 0 || c.Issue == nil {
		panic("workload: ClosedLoop needs Concurrency and Issue")
	}
	rng := sim.NewRand(c.Seed)
	if c.SpawnPerSec <= 0 {
		for u := 0; u < c.Concurrency; u++ {
			c.spawnUser(u, rng)
		}
		return
	}
	interval := sim.Time(1e9 / c.SpawnPerSec)
	for u := 0; u < c.Concurrency; u++ {
		u := u
		c.Eng.After(sim.Time(u)*interval, func() { c.spawnUser(u, rng) })
	}
}

func (c *ClosedLoop) spawnUser(u int, rng *sim.Rand) {
	if c.stopped {
		return
	}
	c.active++
	var loop func()
	loop = func() {
		if c.stopped {
			c.active--
			return
		}
		c.issued++
		c.Issue(u, func() {
			c.completed++
			if c.stopped {
				c.active--
				return
			}
			next := sim.Time(0)
			if c.ThinkTime != nil {
				next = c.ThinkTime(rng)
			}
			c.Eng.After(next, loop)
		})
	}
	loop()
}

// Stop halts new issues (in-flight requests drain).
func (c *ClosedLoop) Stop() { c.stopped = true }

// Stats returns issued/completed counters.
func (c *ClosedLoop) Stats() (issued, completed int) { return c.issued, c.completed }

// UniformThink returns a Locust-style uniform think-time in [lo, hi].
func UniformThink(lo, hi sim.Time) func(*sim.Rand) sim.Time {
	if hi < lo {
		lo, hi = hi, lo
	}
	span := hi - lo
	return func(r *sim.Rand) sim.Time {
		if span == 0 {
			return lo
		}
		return lo + sim.Time(r.Uint64()%uint64(span+1))
	}
}

// WrkMix draws payload sizes per the §2 experiment: 2% at 10 KB, 98% at
// 100 B.
func WrkMix(r *sim.Rand) int {
	if r.Float64() < 0.02 {
		return 10 * 1024
	}
	return 100
}

// PoissonOpenLoop issues requests with exponential inter-arrival times at
// `rate` requests/second until the engine's run window ends or Stop is
// called — open-loop traffic for saturation studies (unlike the closed
// loops, arrivals do not slow down when the system backs up).
type PoissonOpenLoop struct {
	Eng   *sim.Engine
	Rate  float64 // mean arrivals per second
	Issue func(done func())
	Seed  uint64

	issued  int
	stopped bool
}

// Start schedules the first arrival.
func (p *PoissonOpenLoop) Start() {
	if p.Rate <= 0 || p.Issue == nil {
		panic("workload: PoissonOpenLoop needs Rate and Issue")
	}
	rng := sim.NewRand(p.Seed)
	meanGap := 1e9 / p.Rate
	var arrive func()
	arrive = func() {
		if p.stopped {
			return
		}
		p.issued++
		p.Issue(func() {})
		p.Eng.After(sim.Time(rng.Exp(meanGap)), arrive)
	}
	p.Eng.After(sim.Time(rng.Exp(meanGap)), arrive)
}

// Stop halts further arrivals.
func (p *PoissonOpenLoop) Stop() { p.stopped = true }

// Issued returns the number of arrivals generated.
func (p *PoissonOpenLoop) Issued() int { return p.issued }

// WeightedChoice picks index i with probability weights[i]/sum.
func WeightedChoice(r *sim.Rand, weights []float64) int {
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		return 0
	}
	x := r.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
