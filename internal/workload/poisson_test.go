package workload

import (
	"testing"

	"github.com/spright-go/spright/internal/sim"
)

func TestPoissonOpenLoopRate(t *testing.T) {
	eng := sim.NewEngine()
	count := 0
	p := &PoissonOpenLoop{
		Eng:   eng,
		Rate:  100,
		Seed:  3,
		Issue: func(done func()) { count++; done() },
	}
	p.Start()
	eng.Run(sim.Time(100e9)) // 100 virtual seconds
	// ~10000 arrivals expected; Poisson sd ~100
	if count < 9500 || count > 10500 {
		t.Fatalf("arrivals %d, want ~10000", count)
	}
	if p.Issued() != count {
		t.Fatalf("issued %d != counted %d", p.Issued(), count)
	}
}

func TestPoissonOpenLoopIsOpenLoop(t *testing.T) {
	// arrivals must not slow down when requests never complete
	eng := sim.NewEngine()
	count := 0
	p := &PoissonOpenLoop{
		Eng:  eng,
		Rate: 50,
		Seed: 5,
		Issue: func(done func()) {
			count++ // never call done
		},
	}
	p.Start()
	eng.Run(sim.Time(10e9))
	if count < 400 {
		t.Fatalf("open loop stalled: %d arrivals in 10s at 50/s", count)
	}
}

func TestPoissonOpenLoopStop(t *testing.T) {
	eng := sim.NewEngine()
	p := &PoissonOpenLoop{Eng: eng, Rate: 1000, Seed: 1, Issue: func(done func()) {}}
	p.Start()
	eng.Run(sim.Time(1e9))
	at := p.Issued()
	p.Stop()
	eng.Run(sim.Time(2e9))
	if p.Issued() != at {
		t.Fatalf("arrivals continued after stop: %d -> %d", at, p.Issued())
	}
}

func TestPoissonOpenLoopValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate must panic")
		}
	}()
	(&PoissonOpenLoop{Eng: sim.NewEngine(), Issue: func(func()) {}}).Start()
}
