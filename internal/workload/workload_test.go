package workload

import (
	"testing"

	"github.com/spright-go/spright/internal/sim"
)

func TestClosedLoopZeroThinkKeepsConcurrency(t *testing.T) {
	eng := sim.NewEngine()
	inflight, maxInflight := 0, 0
	cl := &ClosedLoop{
		Eng:         eng,
		Concurrency: 4,
		Issue: func(_ int, done func()) {
			inflight++
			if inflight > maxInflight {
				maxInflight = inflight
			}
			eng.After(sim.Time(10e6), func() { // 10ms service
				inflight--
				done()
			})
		},
	}
	cl.Start()
	eng.Run(sim.Time(1e9)) // 1 second
	issued, completed := cl.Stats()
	// each user completes ~100 requests/second at 10ms each
	if completed < 350 || completed > 400 {
		t.Fatalf("completed %d, want ~400", completed)
	}
	if issued < completed {
		t.Fatal("issued must be >= completed")
	}
	if maxInflight != 4 {
		t.Fatalf("max inflight %d, want exactly the concurrency", maxInflight)
	}
}

func TestClosedLoopSpawnRateRamps(t *testing.T) {
	eng := sim.NewEngine()
	started := map[int]sim.Time{}
	cl := &ClosedLoop{
		Eng:         eng,
		Concurrency: 10,
		SpawnPerSec: 5, // 10 users over 2 seconds
		Issue: func(u int, done func()) {
			if _, ok := started[u]; !ok {
				started[u] = eng.Now()
			}
			eng.After(sim.Time(1e6), done)
		},
	}
	cl.Start()
	eng.Run(sim.Time(5e9))
	if len(started) != 10 {
		t.Fatalf("only %d users started", len(started))
	}
	if started[9] < sim.Time(1700e6) {
		t.Fatalf("user 9 started at %v — ramp too fast", started[9])
	}
	if started[0] != 0 {
		t.Fatalf("user 0 must start immediately, started %v", started[0])
	}
}

func TestClosedLoopStopHaltsIssues(t *testing.T) {
	eng := sim.NewEngine()
	cl := &ClosedLoop{
		Eng:         eng,
		Concurrency: 1,
		Issue: func(_ int, done func()) {
			eng.After(sim.Time(1e6), done)
		},
	}
	cl.Start()
	eng.Run(sim.Time(10e6))
	cl.Stop()
	issuedAtStop, _ := cl.Stats()
	eng.Run(sim.Time(1e9))
	issued, _ := cl.Stats()
	if issued > issuedAtStop+1 {
		t.Fatalf("issues continued after stop: %d -> %d", issuedAtStop, issued)
	}
}

func TestUniformThinkRange(t *testing.T) {
	think := UniformThink(sim.Time(1e9), sim.Time(10e9))
	r := sim.NewRand(3)
	var sum sim.Time
	n := 10000
	for i := 0; i < n; i++ {
		v := think(r)
		if v < sim.Time(1e9) || v > sim.Time(10e9) {
			t.Fatalf("think %v out of range", v)
		}
		sum += v
	}
	mean := float64(sum) / float64(n)
	if mean < 5e9 || mean > 6e9 {
		t.Fatalf("mean think %.2fs, want ~5.5s", mean/1e9)
	}
	// degenerate and swapped ranges
	if UniformThink(5, 5)(r) != 5 {
		t.Fatal("constant range broken")
	}
	if v := UniformThink(10, 1)(r); v < 1 || v > 10 {
		t.Fatal("swapped range broken")
	}
}

func TestWrkMixProportions(t *testing.T) {
	r := sim.NewRand(7)
	big := 0
	n := 100000
	for i := 0; i < n; i++ {
		if WrkMix(r) == 10*1024 {
			big++
		}
	}
	frac := float64(big) / float64(n)
	if frac < 0.015 || frac > 0.025 {
		t.Fatalf("10KB fraction %.4f, want ~0.02", frac)
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	r := sim.NewRand(5)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[WeightedChoice(r, []float64{1, 2, 7})]++
	}
	if counts[2] < 19000 || counts[0] > 5000 {
		t.Fatalf("weights not respected: %v", counts)
	}
	if WeightedChoice(r, []float64{0, 0}) != 0 {
		t.Fatal("degenerate weights must return 0")
	}
}

func TestMotionTraceIntermittency(t *testing.T) {
	cfg := DefaultMotionTrace()
	events := MotionTrace(cfg)
	if len(events) < 50 {
		t.Fatalf("only %d events in an hour", len(events))
	}
	// must contain at least one idle gap > 30s (the Knative grace
	// period) — otherwise Fig. 11 could not show cold starts.
	longGaps := 0
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatal("events must be time ordered")
		}
		if events[i].At-events[i-1].At > sim.Time(30e9) {
			longGaps++
		}
	}
	if longGaps < 5 {
		t.Fatalf("only %d idle gaps > 30s; trace not intermittent enough", longGaps)
	}
	// and bursts: some inter-arrivals of a few seconds
	short := 0
	for i := 1; i < len(events); i++ {
		if d := events[i].At - events[i-1].At; d < sim.Time(10e9) {
			short++
		}
	}
	if short < len(events)/2 {
		t.Fatalf("bursts missing: %d short gaps of %d", short, len(events))
	}
}

func TestMotionTraceDeterministic(t *testing.T) {
	a := MotionTrace(DefaultMotionTrace())
	b := MotionTrace(DefaultMotionTrace())
	if len(a) != len(b) {
		t.Fatal("trace must be deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace must be deterministic")
		}
	}
}

func TestParkingTraceStructure(t *testing.T) {
	cfg := DefaultParkingTrace()
	events := ParkingTrace(cfg)
	// 700s with bursts at 240s and 480s: 2 bursts of 164
	if len(events) != 2*164 {
		t.Fatalf("%d events, want 328", len(events))
	}
	if events[0].At != sim.Time(240e9) {
		t.Fatalf("first burst at %v, want 240s", events[0].At)
	}
	if events[0].Size != 3*1024 {
		t.Fatalf("snapshot size %d", events[0].Size)
	}
	starts := BurstStarts(cfg)
	if len(starts) != 2 || starts[0] != sim.Time(240e9) || starts[1] != sim.Time(480e9) {
		t.Fatalf("burst starts %v", starts)
	}
}

func TestReplayFiresAllEvents(t *testing.T) {
	eng := sim.NewEngine()
	events := []Event{{At: 10, Size: 1}, {At: 20, Size: 2}, {At: 30, Size: 3}}
	var got []Event
	Replay(eng, events, func(e Event) { got = append(got, e) })
	eng.Run(100)
	if len(got) != 3 || got[1].Size != 2 {
		t.Fatalf("replay wrong: %v", got)
	}
}
