package workload

import (
	"github.com/spright-go/spright/internal/sim"
)

// Event is one open-loop trace arrival.
type Event struct {
	At   sim.Time
	Size int // payload bytes
}

// MotionTraceConfig shapes the synthetic MERL-like motion-detector trace:
// intermittent activity periods (someone walking through the corridor
// triggers a burst of sensor events seconds apart) separated by long idle
// gaps — the arrival pattern whose gaps exceed Knative's 30 s scale-down
// grace period and provoke cold starts (§4.2.2, Fig. 11).
type MotionTraceConfig struct {
	Duration sim.Time
	// MeanIdle is the mean gap between activity periods (exponential).
	MeanIdle sim.Time
	// BurstEvents is the mean number of events per activity period.
	BurstEvents int
	// IntraBurst is the mean inter-arrival within a burst (a few seconds:
	// "a number of motion events occur one after another (inter-arrival
	// time of a few seconds)").
	IntraBurst sim.Time
	Size       int
	Seed       uint64
}

// DefaultMotionTrace is the Fig. 11 configuration: one hour with ~2-minute
// mean idle gaps (long enough to trigger zero-scaling) and bursts of ~8
// events a few seconds apart.
func DefaultMotionTrace() MotionTraceConfig {
	return MotionTraceConfig{
		Duration:    sim.Time(3600e9),
		MeanIdle:    sim.Time(120e9),
		BurstEvents: 8,
		IntraBurst:  sim.Time(3e9),
		Size:        128,
		Seed:        11,
	}
}

// MotionTrace synthesizes the event sequence.
func MotionTrace(cfg MotionTraceConfig) []Event {
	rng := sim.NewRand(cfg.Seed)
	var out []Event
	t := sim.Time(rng.Exp(float64(cfg.MeanIdle)))
	for t < cfg.Duration {
		n := 1 + rng.Intn(cfg.BurstEvents*2) // ~uniform around the mean
		for i := 0; i < n && t < cfg.Duration; i++ {
			out = append(out, Event{At: t, Size: cfg.Size})
			t += sim.Time(rng.Exp(float64(cfg.IntraBurst)))
		}
		t += sim.Time(rng.Exp(float64(cfg.MeanIdle)))
	}
	return out
}

// ParkingTraceConfig shapes the CNRPark-like camera trace of §4.1: every
// Interval, Spots snapshots (~3 KB each) arrive back to back.
type ParkingTraceConfig struct {
	Duration sim.Time
	Interval sim.Time
	Spots    int
	Size     int
	// Spacing is the gap between successive snapshots within a burst
	// (cameras upload sequentially).
	Spacing sim.Time
}

// DefaultParkingTrace is the Fig. 12 configuration: 700 s, 164 snapshots
// of ~3 KB every 240 s.
func DefaultParkingTrace() ParkingTraceConfig {
	return ParkingTraceConfig{
		Duration: sim.Time(700e9),
		Interval: sim.Time(240e9),
		Spots:    164,
		Size:     3 * 1024,
		Spacing:  sim.Time(50e6), // 50 ms apart within the burst
	}
}

// ParkingTrace synthesizes the burst sequence. Bursts start at t=Interval
// ("every 240-second interval, 164 snapshots are sent").
func ParkingTrace(cfg ParkingTraceConfig) []Event {
	var out []Event
	for start := cfg.Interval; start < cfg.Duration; start += cfg.Interval {
		for i := 0; i < cfg.Spots; i++ {
			at := start + sim.Time(i)*cfg.Spacing
			if at >= cfg.Duration {
				break
			}
			out = append(out, Event{At: at, Size: cfg.Size})
		}
	}
	return out
}

// Replay schedules fire for every event on the engine (open-loop traffic).
func Replay(eng *sim.Engine, events []Event, fire func(Event)) {
	for _, ev := range events {
		ev := ev
		eng.At(ev.At, func() { fire(ev) })
	}
}

// BurstStarts returns the burst start times of a parking trace — what the
// §4.2.2 pre-warm controller knows ("a distinct periodic arrival pattern").
func BurstStarts(cfg ParkingTraceConfig) []sim.Time {
	var out []sim.Time
	for start := cfg.Interval; start < cfg.Duration; start += cfg.Interval {
		out = append(out, start)
	}
	return out
}
