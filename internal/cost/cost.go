// Package cost defines the per-request overhead accounting used throughout
// the repository: the audit counters of the paper's Tables 1 and 2 (data
// copies, context switches, interrupts, protocol-processing tasks,
// serializations and deserializations), the per-hop profiles those audits
// are composed from, and the cycle model that converts op counts into CPU
// time for the discrete-event simulation.
//
// The package is the single source of truth: the netstack increments Audit
// counters structurally as a request traverses simulated kernel primitives,
// and the platform models derive stage latencies and CPU consumption from
// the very same profiles via Model.
package cost

import "fmt"

// Audit counts the per-request overheads the paper audits in §2 and §3.8.
// The zero value is an empty audit ready for use.
type Audit struct {
	Copies       int // data copies between user and kernel space (or proxies)
	CtxSwitches  int // context switches
	Interrupts   int // hardware + software interrupts
	ProtoTasks   int // kernel protocol-stack processing tasks
	Serialize    int // L7 serialization operations
	Deserialize  int // L7 deserialization operations
	BytesCopied  int // total bytes moved by the counted copies
	IptablesHits int // iptables rules evaluated
}

// Add accumulates o into a.
func (a *Audit) Add(o Audit) {
	a.Copies += o.Copies
	a.CtxSwitches += o.CtxSwitches
	a.Interrupts += o.Interrupts
	a.ProtoTasks += o.ProtoTasks
	a.Serialize += o.Serialize
	a.Deserialize += o.Deserialize
	a.BytesCopied += o.BytesCopied
	a.IptablesHits += o.IptablesHits
}

// Sub returns a minus o (used to attribute a pipeline segment).
func (a Audit) Sub(o Audit) Audit {
	return Audit{
		Copies:       a.Copies - o.Copies,
		CtxSwitches:  a.CtxSwitches - o.CtxSwitches,
		Interrupts:   a.Interrupts - o.Interrupts,
		ProtoTasks:   a.ProtoTasks - o.ProtoTasks,
		Serialize:    a.Serialize - o.Serialize,
		Deserialize:  a.Deserialize - o.Deserialize,
		BytesCopied:  a.BytesCopied - o.BytesCopied,
		IptablesHits: a.IptablesHits - o.IptablesHits,
	}
}

func (a Audit) String() string {
	return fmt.Sprintf("copies=%d ctx=%d intr=%d proto=%d ser=%d deser=%d",
		a.Copies, a.CtxSwitches, a.Interrupts, a.ProtoTasks, a.Serialize, a.Deserialize)
}

// Hop is a structural primitive of the simulated node network. Every
// traversal a request makes is one of these primitives; pipeline audits are
// sums of hop profiles (see DESIGN.md §5 for the calibration).
type Hop int

const (
	// HopExternalIn is NIC → pod delivery of an external request: the
	// receive half of a traversal plus NIC interrupt costs.
	HopExternalIn Hop = iota
	// HopExternalOut is pod → NIC transmission of the response.
	HopExternalOut
	// HopCrossPod is a pod → pod traversal over a veth pair with full
	// kernel protocol-stack processing on both ends.
	HopCrossPod
	// HopIntraPod is a sidecar ↔ user-container traversal over loopback
	// within one pod.
	HopIntraPod
	// HopSockmapRedirect is SPROXY's SK_MSG descriptor delivery between
	// sockets: zero-copy, bypasses the protocol stack.
	HopSockmapRedirect
	// HopRingDelivery is D-SPRIGHT's polled RTE-ring descriptor delivery:
	// zero kernel involvement (the poller burns a core instead).
	HopRingDelivery
	// HopXDPRedirect is the eBPF XDP/TC raw-frame redirect used for
	// traffic outside the chain (§3.5): skips iptables and the stack.
	HopXDPRedirect
)

var hopNames = map[Hop]string{
	HopExternalIn:      "external-in",
	HopExternalOut:     "external-out",
	HopCrossPod:        "cross-pod",
	HopIntraPod:        "intra-pod",
	HopSockmapRedirect: "sockmap-redirect",
	HopRingDelivery:    "ring-delivery",
	HopXDPRedirect:     "xdp-redirect",
}

func (h Hop) String() string {
	if s, ok := hopNames[h]; ok {
		return s
	}
	return fmt.Sprintf("hop(%d)", int(h))
}

// Profile returns the op-count profile of one hop, excluding byte-dependent
// fields (BytesCopied is filled by the caller from the actual payload size)
// and excluding endpoint serde (serialization belongs to the component that
// produces the message; see HopSerde).
func (h Hop) Profile() Audit {
	switch h {
	case HopExternalIn:
		// NIC hard IRQ + RX softirq + receiver wake; one kernel→user
		// copy; one protocol-processing task in the receiving stack.
		return Audit{Copies: 1, CtxSwitches: 1, Interrupts: 3, ProtoTasks: 1}
	case HopExternalOut:
		// user→kernel copy, send syscall context switch, TX completion
		// interrupt, sender-stack protocol task.
		return Audit{Copies: 1, CtxSwitches: 1, Interrupts: 1, ProtoTasks: 1}
	case HopCrossPod:
		// send copy + recv copy; send syscall + receiver wake; TX
		// completion + two veth softirqs + wake IPI; both stacks
		// process the packet.
		return Audit{Copies: 2, CtxSwitches: 2, Interrupts: 4, ProtoTasks: 2}
	case HopIntraPod:
		// loopback: no veth softirqs; a single (shared) stack task.
		return Audit{Copies: 2, CtxSwitches: 2, Interrupts: 2, ProtoTasks: 1}
	case HopSockmapRedirect:
		// send syscall + receiver wake; softirq event + wake; the
		// 16-byte descriptor is redirected in-kernel without copies
		// or protocol processing.
		return Audit{CtxSwitches: 2, Interrupts: 2}
	case HopRingDelivery:
		// CAS enqueue observed by a busy-polling consumer.
		return Audit{}
	case HopXDPRedirect:
		// driver-level frame redirect: one softirq, no copies, no
		// stack traversal, no iptables.
		return Audit{Interrupts: 1}
	default:
		return Audit{}
	}
}

// Model converts op counts into CPU cycles. All durations are expressed in
// cycles of a 2.2 GHz core (the paper's c220g5 testbed CPU) so that CPU
// usage and latency share one currency.
type Model struct {
	HzPerCore float64 // core frequency (cycles per second)

	CtxSwitchCycles   float64 // one context switch
	InterruptCycles   float64 // one hard or soft interrupt
	ProtoBaseCycles   float64 // fixed part of one protocol-processing task
	ProtoPerByte      float64 // checksum etc. per payload byte
	CopyPerByte       float64 // memcpy cost per byte
	CopyBaseCycles    float64 // fixed per-copy cost (syscall path)
	SerdePerByte      float64 // serialization or deserialization per byte
	SerdeBaseCycles   float64 // fixed per-serde cost
	IptablesPerRule   float64 // one iptables rule evaluation
	DescriptorCycles  float64 // SPROXY/ring descriptor handling (16 B msg)
	EBPFOverheadRatio float64 // extra cycles ratio for running eBPF programs
}

// DefaultModel is calibrated once (DESIGN.md §5) so the absolute scale of
// fig5 approximates the paper; every comparative result then follows from
// the structural op counts.
func DefaultModel() Model {
	return Model{
		HzPerCore:         2.2e9,
		CtxSwitchCycles:   4400, // ~2 µs
		InterruptCycles:   2200, // ~1 µs
		ProtoBaseCycles:   4400, // ~2 µs per stack traversal task
		ProtoPerByte:      1.0,  // software checksum & friends
		CopyPerByte:       0.5,  // ~4.4 GB/s effective copy bandwidth
		CopyBaseCycles:    1100, // ~0.5 µs syscall/copy setup
		SerdePerByte:      3.0,  // HTTP/JSON-ish marshal cost
		SerdeBaseCycles:   2200, // ~1 µs
		IptablesPerRule:   150,  // per-rule match cost
		DescriptorCycles:  660,  // ~0.3 µs descriptor parse+map lookup
		EBPFOverheadRatio: 0.05,
	}
}

// Cycles returns the total CPU cycles implied by an audit for a payload of
// the audited size. BytesCopied must already be populated; serde bytes are
// approximated by the same payload volume.
func (m Model) Cycles(a Audit) float64 {
	c := float64(a.CtxSwitches)*m.CtxSwitchCycles +
		float64(a.Interrupts)*m.InterruptCycles +
		float64(a.ProtoTasks)*m.ProtoBaseCycles +
		float64(a.Copies)*m.CopyBaseCycles +
		float64(a.BytesCopied)*m.CopyPerByte +
		float64(a.IptablesHits)*m.IptablesPerRule
	if a.ProtoTasks > 0 && a.Copies > 0 {
		// per-byte protocol work scales with bytes that actually
		// traversed a stack; approximate by copied bytes.
		c += float64(a.BytesCopied) * m.ProtoPerByte
	}
	serdeOps := a.Serialize + a.Deserialize
	if serdeOps > 0 {
		perOpBytes := 0
		if a.Copies > 0 {
			perOpBytes = a.BytesCopied / a.Copies
		}
		c += float64(serdeOps)*m.SerdeBaseCycles + float64(serdeOps*perOpBytes)*m.SerdePerByte
	}
	return c
}

// Seconds converts cycles to seconds under the model's core frequency.
func (m Model) Seconds(cycles float64) float64 { return cycles / m.HzPerCore }

// HopCycles is a convenience: cycles for one hop moving size payload bytes.
func (m Model) HopCycles(h Hop, size int) float64 {
	a := h.Profile()
	a.BytesCopied = a.Copies * size
	c := m.Cycles(a)
	if h == HopSockmapRedirect || h == HopXDPRedirect {
		c += m.DescriptorCycles
		c *= 1 + m.EBPFOverheadRatio
	}
	if h == HopRingDelivery {
		c += m.DescriptorCycles
	}
	return c
}
