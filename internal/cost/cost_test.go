package cost

import (
	"testing"
	"testing/quick"
)

func TestAuditAdd(t *testing.T) {
	var a Audit
	a.Add(Audit{Copies: 1, CtxSwitches: 2, Interrupts: 3, ProtoTasks: 4, Serialize: 5, Deserialize: 6, BytesCopied: 7, IptablesHits: 8})
	a.Add(Audit{Copies: 1, CtxSwitches: 1, Interrupts: 1, ProtoTasks: 1, Serialize: 1, Deserialize: 1, BytesCopied: 1, IptablesHits: 1})
	want := Audit{Copies: 2, CtxSwitches: 3, Interrupts: 4, ProtoTasks: 5, Serialize: 6, Deserialize: 7, BytesCopied: 8, IptablesHits: 9}
	if a != want {
		t.Fatalf("Add mismatch: got %+v want %+v", a, want)
	}
}

func TestAuditSubInvertsAdd(t *testing.T) {
	f := func(a, b Audit) bool {
		sum := a
		sum.Add(b)
		return sum.Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopProfilesMatchDesignCalibration(t *testing.T) {
	cases := []struct {
		hop  Hop
		want Audit
	}{
		{HopExternalIn, Audit{Copies: 1, CtxSwitches: 1, Interrupts: 3, ProtoTasks: 1}},
		{HopCrossPod, Audit{Copies: 2, CtxSwitches: 2, Interrupts: 4, ProtoTasks: 2}},
		{HopIntraPod, Audit{Copies: 2, CtxSwitches: 2, Interrupts: 2, ProtoTasks: 1}},
		{HopSockmapRedirect, Audit{CtxSwitches: 2, Interrupts: 2}},
		{HopRingDelivery, Audit{}},
		{HopXDPRedirect, Audit{Interrupts: 1}},
	}
	for _, c := range cases {
		if got := c.hop.Profile(); got != c.want {
			t.Errorf("%v profile: got %+v want %+v", c.hop, got, c.want)
		}
	}
}

// TestKnativeStep4Composition checks the DESIGN.md §5 claim: the Table 1
// step-④ row (broker → function pod with sidecar) is the sum of a cross-pod
// and an intra-pod traversal.
func TestKnativeStep4Composition(t *testing.T) {
	var a Audit
	a.Add(HopCrossPod.Profile())
	a.Add(HopIntraPod.Profile())
	// serde attributed to endpoints: broker ser + sidecar deser+ser + user deser.
	a.Serialize += 2
	a.Deserialize += 2
	want := Audit{Copies: 4, CtxSwitches: 4, Interrupts: 6, ProtoTasks: 3, Serialize: 2, Deserialize: 2}
	if a != want {
		t.Fatalf("step ④ composition: got %+v want %+v", a, want)
	}
}

func TestModelCyclesMonotonicInOps(t *testing.T) {
	m := DefaultModel()
	base := Audit{Copies: 1, CtxSwitches: 1, Interrupts: 1, ProtoTasks: 1, BytesCopied: 100}
	more := base
	more.CtxSwitches++
	if m.Cycles(more) <= m.Cycles(base) {
		t.Fatal("adding a context switch must increase cycles")
	}
	bigger := base
	bigger.BytesCopied *= 10
	if m.Cycles(bigger) <= m.Cycles(base) {
		t.Fatal("more bytes must increase cycles")
	}
}

func TestModelCyclesNonNegative(t *testing.T) {
	m := DefaultModel()
	f := func(copies, ctx, intr, proto uint8, bytes uint16) bool {
		a := Audit{
			Copies: int(copies), CtxSwitches: int(ctx), Interrupts: int(intr),
			ProtoTasks: int(proto), BytesCopied: int(bytes),
		}
		return m.Cycles(a) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSockmapHopCheaperThanCrossPod(t *testing.T) {
	m := DefaultModel()
	for _, size := range []int{100, 1000, 10000} {
		if m.HopCycles(HopSockmapRedirect, size) >= m.HopCycles(HopCrossPod, size) {
			t.Errorf("size %d: sockmap redirect should be cheaper than a cross-pod traversal", size)
		}
	}
}

func TestXDPCheaperThanKernelPath(t *testing.T) {
	m := DefaultModel()
	if m.HopCycles(HopXDPRedirect, 1500) >= m.HopCycles(HopCrossPod, 1500) {
		t.Fatal("XDP redirect must beat the kernel-stack cross-pod path")
	}
}

func TestSecondsConversion(t *testing.T) {
	m := DefaultModel()
	if got := m.Seconds(m.HzPerCore); got != 1.0 {
		t.Fatalf("HzPerCore cycles should be 1 second, got %v", got)
	}
}

func TestHopString(t *testing.T) {
	if HopSockmapRedirect.String() != "sockmap-redirect" {
		t.Fatalf("unexpected name %q", HopSockmapRedirect.String())
	}
	if Hop(99).String() != "hop(99)" {
		t.Fatalf("unexpected fallback %q", Hop(99).String())
	}
}

func TestAuditString(t *testing.T) {
	a := Audit{Copies: 1, CtxSwitches: 2, Interrupts: 3, ProtoTasks: 4, Serialize: 5, Deserialize: 6}
	want := "copies=1 ctx=2 intr=3 proto=4 ser=5 deser=6"
	if a.String() != want {
		t.Fatalf("got %q want %q", a.String(), want)
	}
}
