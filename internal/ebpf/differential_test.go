package ebpf

import (
	"testing"
	"testing/quick"
)

// Differential testing: generate random straight-line ALU programs and
// check the VM against an independent reference evaluator operating on a
// plain register array. Any divergence is an interpreter bug.

type aluCase struct {
	op  Op
	dst Register
	src Register
	imm int64
}

var aluOps = []Op{
	OpAddReg, OpAddImm, OpSubReg, OpSubImm, OpMulReg, OpMulImm,
	OpAndReg, OpAndImm, OpOrReg, OpOrImm, OpXorReg, OpXorImm,
	OpLshImm, OpRshImm, OpArshImm, OpNeg, OpMovReg, OpMovImm,
}

// refEval evaluates the ALU subset directly.
func refEval(prog []aluCase) uint64 {
	var reg [10]uint64
	for _, c := range prog {
		d, s := &reg[c.dst], reg[c.src]
		switch c.op {
		case OpAddReg:
			*d += s
		case OpAddImm:
			*d += uint64(c.imm)
		case OpSubReg:
			*d -= s
		case OpSubImm:
			*d -= uint64(c.imm)
		case OpMulReg:
			*d *= s
		case OpMulImm:
			*d *= uint64(c.imm)
		case OpAndReg:
			*d &= s
		case OpAndImm:
			*d &= uint64(c.imm)
		case OpOrReg:
			*d |= s
		case OpOrImm:
			*d |= uint64(c.imm)
		case OpXorReg:
			*d ^= s
		case OpXorImm:
			*d ^= uint64(c.imm)
		case OpLshImm:
			*d <<= uint64(c.imm) & 63
		case OpRshImm:
			*d >>= uint64(c.imm) & 63
		case OpArshImm:
			*d = uint64(int64(*d) >> (uint64(c.imm) & 63))
		case OpNeg:
			*d = uint64(-int64(*d))
		case OpMovReg:
			*d = s
		case OpMovImm:
			*d = uint64(c.imm)
		}
	}
	return reg[R0]
}

func TestVMDifferentialALU(t *testing.T) {
	f := func(seedOps []uint64) bool {
		if len(seedOps) > 200 {
			seedOps = seedOps[:200]
		}
		// build: initialize r0-r5 deterministically, then random ALU ops
		var cases []aluCase
		var insns []Insn
		for r := Register(0); r <= R5; r++ {
			imm := int64(r) * 7779
			cases = append(cases, aluCase{op: OpMovImm, dst: r, imm: imm})
			insns = append(insns, Mov64Imm(r, imm))
		}
		for _, s := range seedOps {
			op := aluOps[int(s%uint64(len(aluOps)))]
			dst := Register(s>>8) % 6 // r0..r5 only (initialized)
			src := Register(s>>16) % 6
			imm := int64(int32(s >> 24))
			if imm == 0 {
				imm = 1
			}
			cases = append(cases, aluCase{op: op, dst: dst, src: src, imm: imm})
			insns = append(insns, Insn{Op: op, Dst: dst, Src: src, Imm: imm})
		}
		insns = append(insns, Exit())

		k := NewKernel()
		lp, err := k.Load(&Program{Name: "diff", Type: ProgTypeXDP, Insns: insns})
		if err != nil {
			t.Logf("unexpected verifier rejection: %v", err)
			return false
		}
		res, err := k.Run(lp, nil, 0, nil)
		if err != nil {
			t.Logf("unexpected runtime error: %v", err)
			return false
		}
		want := refEval(cases)
		if uint64(res.Ret) != want {
			t.Logf("VM returned %#x, reference %#x", uint64(res.Ret), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestVMDifferentialStackMemory: random store/load pairs to the stack must
// behave like a byte array.
func TestVMDifferentialStackMemory(t *testing.T) {
	f := func(writes []uint32) bool {
		if len(writes) > 60 {
			writes = writes[:60]
		}
		ref := make([]byte, StackSize)
		var insns []Insn
		sizes := []Size{B, H, W, DW}
		for _, w := range writes {
			size := sizes[int(w)%len(sizes)]
			maxOff := StackSize - int(size)
			off := int(w>>4) % maxOff
			val := int64(int32(w))
			// reference write (little endian at offset)
			for i := 0; i < int(size); i++ {
				ref[off+i] = byte(uint64(val) >> (8 * i))
			}
			insns = append(insns,
				Mov64Imm(R2, val),
				StoreMem(R10, int16(off-StackSize), R2, size),
			)
		}
		// checksum: read every 8-byte word and xor
		var want uint64
		for off := 0; off+8 <= StackSize; off += 8 {
			var v uint64
			for i := 0; i < 8; i++ {
				v |= uint64(ref[off+i]) << (8 * i)
			}
			want ^= v
		}
		insns = append(insns, Mov64Imm(R0, 0))
		for off := 0; off+8 <= StackSize; off += 8 {
			insns = append(insns,
				LoadMem(R3, R10, int16(off-StackSize), DW),
				Insn{Op: OpXorReg, Dst: R0, Src: R3},
			)
		}
		insns = append(insns, Exit())

		// Stack is zeroed at entry in both models. But the real VM
		// doesn't guarantee zeroed stack in the kernel; ours does
		// (fresh allocation), which the reference mirrors.
		k := NewKernel()
		lp, err := k.Load(&Program{Name: "mem", Type: ProgTypeXDP, Insns: insns})
		if err != nil {
			t.Logf("verifier: %v", err)
			return false
		}
		res, err := k.Run(lp, nil, 0, nil)
		if err != nil {
			t.Logf("runtime: %v", err)
			return false
		}
		return uint64(res.Ret) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
