package ebpf

import "fmt"

// Builder assembles programs with symbolic labels so jump displacements are
// computed instead of hand-counted. Usage:
//
//	b := NewBuilder("sproxy", ProgTypeSKMsg)
//	b.Ins(LoadMem(R6, R1, 0, DW))
//	b.Jmp(JgtReg(R2, R7, 0), "drop")
//	...
//	b.Label("drop")
//	b.Ins(Mov64Imm(R0, SKDrop), Exit())
//	prog, err := b.Program()
type Builder struct {
	name  string
	typ   ProgType
	insns []Insn
	// jumps to fix up: insn index -> label
	fixups map[int]string
	labels map[string]int
	errs   []error
}

// NewBuilder starts a program.
func NewBuilder(name string, typ ProgType) *Builder {
	return &Builder{
		name:   name,
		typ:    typ,
		fixups: make(map[int]string),
		labels: make(map[string]int),
	}
}

// Ins appends instructions verbatim.
func (b *Builder) Ins(insns ...Insn) *Builder {
	b.insns = append(b.insns, insns...)
	return b
}

// Jmp appends a jump instruction whose target is the named label; the Off
// field of in is ignored and resolved at Program() time.
func (b *Builder) Jmp(in Insn, label string) *Builder {
	if !in.Op.isJump() {
		b.errs = append(b.errs, fmt.Errorf("ebpf: Jmp with non-jump op %d", in.Op))
	}
	b.fixups[len(b.insns)] = label
	b.insns = append(b.insns, in)
	return b
}

// Label marks the next instruction's position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("ebpf: duplicate label %q", name))
	}
	b.labels[name] = len(b.insns)
	return b
}

// Program resolves labels and returns the assembled program.
func (b *Builder) Program() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for idx, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("ebpf: undefined label %q", label)
		}
		off := target - idx - 1
		if off < -32768 || off > 32767 {
			return nil, fmt.Errorf("ebpf: jump to %q out of int16 range", label)
		}
		b.insns[idx].Off = int16(off)
	}
	return &Program{Name: b.name, Type: b.typ, Insns: b.insns}, nil
}

// MustProgram is Program for statically known-good assembly.
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}
