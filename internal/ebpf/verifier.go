package ebpf

import (
	"errors"
	"fmt"
)

// MaxProgInsns is the static program size limit (the classic 4096-insn
// kernel limit).
const MaxProgInsns = 4096

// ErrVerifier wraps all verification failures.
var ErrVerifier = errors.New("ebpf: verifier")

func verr(pc int, format string, args ...interface{}) error {
	return fmt.Errorf("%w: insn %d: %s", ErrVerifier, pc, fmt.Sprintf(format, args...))
}

// progAnalysis carries the static facts the verifier proves while checking
// a program. The JIT compiler (jit.go) consumes them instead of re-deriving
// control flow: leaders partition the program into basic blocks, and a
// verified program is guaranteed to have in-range jump targets everywhere,
// so block formation over leaders needs no further validation.
type progAnalysis struct {
	// leaders[pc] is true when pc starts a basic block: the entry, every
	// jump target, and every instruction following a jump or exit.
	leaders []bool
}

// verify performs the static checks the kernel verifier would: structural
// validity, jump targets, guaranteed termination paths, register
// initialization before use, R10 immutability, known helpers, and valid map
// references. Dynamic properties (pointer bounds, division by a zero
// register) are enforced at runtime by the interpreter's checked address
// space and budget — the standard trade-off for an interpreter-based clone.
// On success it returns the control-flow analysis for the compile pass.
func (k *Kernel) verify(p *Program) (*progAnalysis, error) {
	insns := p.Insns
	if len(insns) == 0 {
		return nil, fmt.Errorf("%w: empty program", ErrVerifier)
	}
	if len(insns) > MaxProgInsns {
		return nil, fmt.Errorf("%w: program too large: %d insns", ErrVerifier, len(insns))
	}

	an := &progAnalysis{leaders: make([]bool, len(insns))}
	an.leaders[0] = true

	// Pass 1: structural checks, collecting block leaders as a side effect.
	for pc, in := range insns {
		if in.Dst >= numRegisters || in.Src >= numRegisters {
			return nil, verr(pc, "bad register (dst=%d src=%d)", in.Dst, in.Src)
		}
		if in.Op == OpInvalid || in.Op > OpExit {
			return nil, verr(pc, "invalid opcode %d", in.Op)
		}
		if in.Op.writesDst() && in.Dst == R10 {
			return nil, verr(pc, "write to frame pointer r10")
		}
		switch in.Op {
		case OpLoad, OpStore, OpStoreImm, OpAtomicAdd:
			switch in.Size {
			case B, H, W, DW:
			default:
				return nil, verr(pc, "bad access size %d", in.Size)
			}
		case OpDivImm, OpModImm:
			if in.Imm == 0 {
				return nil, verr(pc, "division by zero immediate")
			}
		case OpCall:
			if !knownHelper(HelperID(in.Imm)) {
				return nil, verr(pc, "unknown helper %d", in.Imm)
			}
		case OpLoadMapFD:
			if k.mapByFD(int(in.Imm)) == nil {
				return nil, verr(pc, "reference to unknown map fd %d", in.Imm)
			}
		}
		if in.Op.isJump() {
			t := pc + 1 + int(in.Off)
			if t < 0 || t >= len(insns) {
				return nil, verr(pc, "jump target %d out of range", t)
			}
			an.leaders[t] = true
		}
		if (in.Op.isJump() || in.Op == OpExit) && pc+1 < len(insns) {
			an.leaders[pc+1] = true
		}
	}

	// Pass 2: every path from the entry must be able to reach an exit, and
	// fall-through past the last instruction is forbidden.
	if err := checkTermination(insns); err != nil {
		return nil, err
	}

	// Pass 3: registers must be initialized before use. Worklist dataflow
	// over a bitmask of initialized registers; entry has R1 (context) and
	// R10 (frame pointer) live.
	if err := checkInit(insns); err != nil {
		return nil, err
	}
	return an, nil
}

// checkTermination verifies no control flow can run off the end of the
// program and at least one exit is reachable.
func checkTermination(insns []Insn) error {
	n := len(insns)
	visited := make([]bool, n)
	stack := []int{0}
	sawExit := false
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[pc] {
			continue
		}
		visited[pc] = true
		in := insns[pc]
		if in.Op == OpExit {
			sawExit = true
			continue
		}
		var succs []int
		if in.Op == OpJa {
			succs = []int{pc + 1 + int(in.Off)}
		} else if in.Op.isConditional() {
			succs = []int{pc + 1, pc + 1 + int(in.Off)}
		} else {
			succs = []int{pc + 1}
		}
		for _, s := range succs {
			if s >= n {
				return verr(pc, "control flow falls off the program end")
			}
			if !visited[s] {
				stack = append(stack, s)
			}
		}
	}
	if !sawExit {
		return fmt.Errorf("%w: no reachable exit", ErrVerifier)
	}
	return nil
}

// regMask tracks which registers are definitely initialized.
type regMask uint16

func (m regMask) has(r Register) bool    { return m&(1<<r) != 0 }
func (m regMask) set(r Register) regMask { return m | (1 << r) }

// checkInit runs a forward may-analysis: at a join point a register is
// initialized only if it is initialized on every incoming edge.
func checkInit(insns []Insn) error {
	n := len(insns)
	const unseen = regMask(0xFFFF) // lattice top: all-initialized until first visit
	in := make([]regMask, n)
	seen := make([]bool, n)
	entry := regMask(0).set(R1).set(R10)

	type edge struct {
		to   int
		mask regMask
	}
	work := []edge{{0, entry}}
	for len(work) > 0 {
		e := work[len(work)-1]
		work = work[:len(work)-1]
		m := e.mask
		if seen[e.to] {
			merged := in[e.to] & m
			if merged == in[e.to] {
				continue // no change
			}
			in[e.to] = merged
			m = merged
		} else {
			seen[e.to] = true
			in[e.to] = m
		}
		pc := e.to
		insn := insns[pc]

		if insn.Op.readsSrc() && !m.has(insn.Src) {
			return verr(pc, "read of uninitialized register r%d", insn.Src)
		}
		if insn.Op.readsDst() && !m.has(insn.Dst) {
			return verr(pc, "read of uninitialized register r%d", insn.Dst)
		}
		out := m
		switch insn.Op {
		case OpCall:
			// helper args must be initialized per helper signature;
			// conservatively require R1 for all, and R2.. as used is
			// checked at runtime. Calls clobber R1-R5 and set R0.
			nargs := helperArgCount(HelperID(insn.Imm))
			for r := R1; r < R1+Register(nargs); r++ {
				if !m.has(r) {
					return verr(pc, "helper %v needs initialized r%d", HelperID(insn.Imm), r)
				}
			}
			out = out.set(R0)
			for r := R1; r <= R5; r++ {
				out &^= 1 << r
			}
		case OpExit:
			if !m.has(R0) {
				return verr(pc, "exit with uninitialized r0")
			}
			continue
		default:
			if insn.Op.writesDst() {
				out = out.set(insn.Dst)
			}
		}

		if insn.Op == OpJa {
			work = append(work, edge{pc + 1 + int(insn.Off), out})
		} else if insn.Op.isConditional() {
			work = append(work, edge{pc + 1, out}, edge{pc + 1 + int(insn.Off), out})
		} else {
			work = append(work, edge{pc + 1, out})
		}
	}
	_ = unseen
	return nil
}

// helperArgCount returns how many argument registers a helper consumes.
func helperArgCount(h HelperID) int {
	switch h {
	case HelperKtimeGetNs, HelperGetSmpProcessorID:
		return 0
	case HelperMapLookupElem, HelperMapDeleteElem:
		return 2
	case HelperRedirect:
		return 2
	case HelperMapUpdateElem:
		return 4
	case HelperMsgRedirectMap, HelperFibLookup:
		return 4
	default:
		return 5
	}
}
