package ebpf

// JIT: translation of verified bytecode into native Go.
//
// The interpreter in vm.go pays a fetch/decode/dispatch cycle per dynamic
// instruction. Loading is rare and execution is per-descriptor, so Load
// trades compile time for run time in two tiers:
//
//  1. A general closure-chain backend. Each instruction becomes one
//     pre-bound Go closure (operands resolved at compile time, no decode at
//     run time), and the closures of a basic block are threaded together so
//     straight-line code runs as direct calls. Blocks end at jumps/exits
//     and return the next block's index to a small trampoline, which keeps
//     the call depth bounded by the block length rather than the dynamic
//     instruction count.
//
//  2. Shape-specialized fast paths. The SPROXY and EPROXY programs the
//     dataplane actually runs per descriptor are recognized structurally
//     (instruction-by-instruction match, map fds and the descriptor size
//     extracted as wildcards) and collapsed into a handful of direct map
//     operations with no exec state at all.
//
// Both tiers preserve exact interpreter semantics: identical verdicts, map
// state, atomic-counter behavior, fault classes, and — load-bearing for
// Kernel.Stats and the budget limit — identical dynamic instruction counts.
// The closure chain accounts instructions per block (amortized, not
// per-step); a fault inside a block rewinds Result.Insns to the faulting
// instruction's exact position, and a run within one block of the
// MaxRuntimeInsns budget bails out to the interpreter (execState.runFrom),
// which finishes with the canonical per-instruction accounting. The
// interpreter therefore stays fully exercised: it is the budget-boundary
// continuation, the backend for programs the compiler rejects, and the
// differential-test oracle (Kernel.SetJIT(false)).
//
// Compilation is total over the ISA except helpers with by-reference
// parameter blocks (bpf_fib_lookup writes results through a program-visible
// pointer): those stay interpreter-only, which keeps a real production
// program (the netstack forwarding program) on the fallback path at all
// times rather than only in tests.

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// fastBufPool stages RunCopy frames for the fast runners. A runner is an
// indirect call, so a caller's stack-backed frame handed to it directly
// would escape to the heap; copying into a pooled buffer first keeps the
// descriptor send path allocation-free.
var fastBufPool = sync.Pool{New: func() any { return new([pktCopySize]byte) }}

// EngineKind identifies which execution backend runs a loaded program.
type EngineKind int

// Engine kinds, from slowest to fastest.
const (
	// EngineInterp: the per-instruction interpreter (vm.go).
	EngineInterp EngineKind = iota
	// EngineJIT: the general closure-chain backend.
	EngineJIT
	// EngineFast: a shape-specialized fast path (SPROXY/EPROXY).
	EngineFast
)

func (e EngineKind) String() string {
	switch e {
	case EngineInterp:
		return "interp"
	case EngineJIT:
		return "jit"
	case EngineFast:
		return "fast"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// step executes from one instruction through the end of its basic block and
// returns the index of the successor block, or a terminal code.
type step func(st *execState) int

// Terminal codes returned by a block's step chain.
const (
	jitNextExit  = -1 // program exited; verdict is in R0
	jitNextFault = -2 // a fault occurred; error is in st.jitErr
)

// jitBlock is one compiled basic block.
type jitBlock struct {
	start int  // pc of the block's first instruction
	n     int  // static instruction count (every instruction executes)
	step  step // the block's threaded closure chain
}

// jitProg is a program compiled to closure chains.
type jitProg struct {
	blocks []jitBlock
}

// jitFault records a fault from inside a compiled block. idx is the faulting
// instruction's index within its block; Result.Insns was bulk-charged at
// block entry, so it is rewound here to exactly the count the interpreter
// would report (instructions before the fault, plus the faulting one).
func (st *execState) jitFault(err error, idx int) int {
	st.res.Insns = st.blockBase + idx + 1
	st.jitErr = err
	return jitNextFault
}

// run drives a compiled program: charge the block's instructions, execute
// its closure chain, follow the returned successor. When the remaining
// budget is smaller than the next block, the machine state is handed to the
// interpreter (runFrom), which finishes the run with canonical
// per-instruction budget semantics — so ErrBudget fires at exactly the same
// dynamic instruction on both engines.
func (jp *jitProg) run(st *execState) (Result, error) {
	bi := 0
	for {
		blk := &jp.blocks[bi]
		if st.res.Insns+blk.n > MaxRuntimeInsns {
			return st.runFrom(blk.start)
		}
		st.blockBase = st.res.Insns
		st.res.Insns += blk.n
		switch next := blk.step(st); next {
		case jitNextExit:
			st.res.Ret = int64(st.reg[R0])
			return st.res, nil
		case jitNextFault:
			err := st.jitErr
			st.jitErr = nil
			return st.res, err
		default:
			bi = next
		}
	}
}

// compile translates a verified program into closure chains, using the
// verifier's block-leader analysis. A verified program has in-range jump
// targets and sane operands everywhere, so compilation cannot fail on
// structure — only on instructions designated interpreter-only, in which
// case it returns a nil program and the reason (surfaced via
// LoadedProgram.FallbackReason and the obs engine counters).
func compile(p *Program, an *progAnalysis) (*jitProg, string) {
	insns := p.Insns
	for pc, in := range insns {
		if in.Op == OpCall && HelperID(in.Imm) == HelperFibLookup {
			return nil, fmt.Sprintf("insn %d: helper %v has by-reference parameters and is interpreter-only", pc, HelperFibLookup)
		}
	}

	// Block extents from the leaders. Every instruction after a jump or
	// exit is a leader, so a block is simply [leader, next leader).
	var starts []int
	for pc, l := range an.leaders {
		if l {
			starts = append(starts, pc)
		}
	}
	blockIdx := make([]int, len(insns))
	for i, s := range starts {
		blockIdx[s] = i
	}

	jp := &jitProg{blocks: make([]jitBlock, len(starts))}
	for bi, s := range starts {
		end := len(insns)
		if bi+1 < len(starts) {
			end = starts[bi+1]
		}
		n := end - s
		last := insns[end-1]
		lastIdx := n - 1

		// The block's final step decides the successor. Control flow that
		// would run off the program end (only reachable in unreachable
		// trailing code the verifier's DFS never visits) compiles to the
		// same errPCOutOfRange fault the interpreter raises.
		var tail step
		switch {
		case last.Op == OpExit:
			tail = func(st *execState) int { return jitNextExit }
		case last.Op == OpJa:
			tgt := blockIdx[end+int(last.Off)]
			tail = func(st *execState) int { return tgt }
		case last.Op.isConditional():
			pred := emitPred(last)
			tgt := blockIdx[end+int(last.Off)]
			if end < len(insns) {
				fall := blockIdx[end]
				tail = func(st *execState) int {
					if pred(st) {
						return tgt
					}
					return fall
				}
			} else {
				idx := lastIdx
				tail = func(st *execState) int {
					if pred(st) {
						return tgt
					}
					return st.jitFault(errPCOutOfRange, idx)
				}
			}
		default:
			// Straight-line final instruction: execute it, then fall
			// through into the next block.
			var fall step
			if end < len(insns) {
				fi := blockIdx[end]
				fall = func(st *execState) int { return fi }
			} else {
				idx := lastIdx
				fall = func(st *execState) int { return st.jitFault(errPCOutOfRange, idx) }
			}
			var ok bool
			if tail, ok = emitStep(last, lastIdx, fall); !ok {
				return nil, fmt.Sprintf("insn %d: op %d not compilable", end-1, last.Op)
			}
		}

		// Thread the remaining instructions in reverse so each closure
		// calls the next directly — fallthrough costs one call, not a
		// dispatch.
		chain := tail
		for j := n - 2; j >= 0; j-- {
			var ok bool
			if chain, ok = emitStep(insns[s+j], j, chain); !ok {
				return nil, fmt.Sprintf("insn %d: op %d not compilable", s+j, insns[s+j].Op)
			}
		}
		jp.blocks[bi] = jitBlock{start: s, n: n, step: chain}
	}
	return jp, ""
}

// emitStep compiles one non-control-flow instruction into a closure with
// its operands pre-bound, threaded onto next. idx is the instruction's
// index within its block, captured by faulting closures so jitFault can
// rewind the bulk-charged instruction count.
func emitStep(in Insn, idx int, next step) (step, bool) {
	dst, src := in.Dst, in.Src
	imm := uint64(in.Imm)
	switch in.Op {
	case OpMovImm:
		return func(st *execState) int { st.reg[dst] = imm; return next(st) }, true
	case OpMovReg:
		return func(st *execState) int { st.reg[dst] = st.reg[src]; return next(st) }, true
	case OpAddImm:
		return func(st *execState) int { st.reg[dst] += imm; return next(st) }, true
	case OpAddReg:
		return func(st *execState) int { st.reg[dst] += st.reg[src]; return next(st) }, true
	case OpSubImm:
		return func(st *execState) int { st.reg[dst] -= imm; return next(st) }, true
	case OpSubReg:
		return func(st *execState) int { st.reg[dst] -= st.reg[src]; return next(st) }, true
	case OpMulImm:
		return func(st *execState) int { st.reg[dst] *= imm; return next(st) }, true
	case OpMulReg:
		return func(st *execState) int { st.reg[dst] *= st.reg[src]; return next(st) }, true
	case OpDivImm:
		return func(st *execState) int { st.reg[dst] /= imm; return next(st) }, true // imm==0 rejected by verifier
	case OpDivReg:
		return func(st *execState) int {
			if st.reg[src] == 0 {
				return st.jitFault(ErrDivByZero, idx)
			}
			st.reg[dst] /= st.reg[src]
			return next(st)
		}, true
	case OpModImm:
		return func(st *execState) int { st.reg[dst] %= imm; return next(st) }, true
	case OpModReg:
		return func(st *execState) int {
			if st.reg[src] == 0 {
				return st.jitFault(ErrDivByZero, idx)
			}
			st.reg[dst] %= st.reg[src]
			return next(st)
		}, true
	case OpAndImm:
		return func(st *execState) int { st.reg[dst] &= imm; return next(st) }, true
	case OpAndReg:
		return func(st *execState) int { st.reg[dst] &= st.reg[src]; return next(st) }, true
	case OpOrImm:
		return func(st *execState) int { st.reg[dst] |= imm; return next(st) }, true
	case OpOrReg:
		return func(st *execState) int { st.reg[dst] |= st.reg[src]; return next(st) }, true
	case OpXorImm:
		return func(st *execState) int { st.reg[dst] ^= imm; return next(st) }, true
	case OpXorReg:
		return func(st *execState) int { st.reg[dst] ^= st.reg[src]; return next(st) }, true
	case OpLshImm:
		sh := imm & 63
		return func(st *execState) int { st.reg[dst] <<= sh; return next(st) }, true
	case OpLshReg:
		return func(st *execState) int { st.reg[dst] <<= st.reg[src] & 63; return next(st) }, true
	case OpRshImm:
		sh := imm & 63
		return func(st *execState) int { st.reg[dst] >>= sh; return next(st) }, true
	case OpRshReg:
		return func(st *execState) int { st.reg[dst] >>= st.reg[src] & 63; return next(st) }, true
	case OpArshImm:
		sh := imm & 63
		return func(st *execState) int {
			st.reg[dst] = uint64(int64(st.reg[dst]) >> sh)
			return next(st)
		}, true
	case OpArshReg:
		return func(st *execState) int {
			st.reg[dst] = uint64(int64(st.reg[dst]) >> (st.reg[src] & 63))
			return next(st)
		}, true
	case OpNeg:
		return func(st *execState) int { st.reg[dst] = uint64(-int64(st.reg[dst])); return next(st) }, true

	case OpLoad:
		off, size := uint64(int64(in.Off)), in.Size
		return func(st *execState) int {
			b, err := st.access(st.reg[src]+off, int(size), false)
			if err != nil {
				return st.jitFault(err, idx)
			}
			st.reg[dst] = loadUint(b, size)
			return next(st)
		}, true
	case OpStore:
		off, size := uint64(int64(in.Off)), in.Size
		return func(st *execState) int {
			b, err := st.access(st.reg[dst]+off, int(size), true)
			if err != nil {
				return st.jitFault(err, idx)
			}
			storeUint(b, size, st.reg[src])
			return next(st)
		}, true
	case OpStoreImm:
		off, size := uint64(int64(in.Off)), in.Size
		return func(st *execState) int {
			b, err := st.access(st.reg[dst]+off, int(size), true)
			if err != nil {
				return st.jitFault(err, idx)
			}
			storeUint(b, size, imm)
			return next(st)
		}, true
	case OpAtomicAdd:
		off, size := uint64(int64(in.Off)), in.Size
		return func(st *execState) int {
			b, err := st.access(st.reg[dst]+off, int(size), true)
			if err != nil {
				return st.jitFault(err, idx)
			}
			atomicAddBytes(b, size, st.reg[src])
			return next(st)
		}, true

	case OpLoadMapFD:
		handle := mapHandleTag | uint64(uint32(in.Imm))
		return func(st *execState) int { st.reg[dst] = handle; return next(st) }, true

	case OpCall:
		id := HelperID(in.Imm)
		return func(st *execState) int {
			if err := st.call(id); err != nil {
				return st.jitFault(err, idx)
			}
			return next(st)
		}, true
	}
	// Jumps and exits only terminate blocks (handled in compile); anything
	// else here is a compiler gap — fall back rather than miscompile.
	return nil, false
}

// emitPred compiles a conditional jump's predicate with operands pre-bound.
func emitPred(in Insn) func(st *execState) bool {
	dst, src := in.Dst, in.Src
	uimm, simm := uint64(in.Imm), in.Imm
	switch in.Op {
	case OpJeqImm:
		return func(st *execState) bool { return st.reg[dst] == uimm }
	case OpJeqReg:
		return func(st *execState) bool { return st.reg[dst] == st.reg[src] }
	case OpJneImm:
		return func(st *execState) bool { return st.reg[dst] != uimm }
	case OpJneReg:
		return func(st *execState) bool { return st.reg[dst] != st.reg[src] }
	case OpJgtImm:
		return func(st *execState) bool { return st.reg[dst] > uimm }
	case OpJgtReg:
		return func(st *execState) bool { return st.reg[dst] > st.reg[src] }
	case OpJgeImm:
		return func(st *execState) bool { return st.reg[dst] >= uimm }
	case OpJgeReg:
		return func(st *execState) bool { return st.reg[dst] >= st.reg[src] }
	case OpJltImm:
		return func(st *execState) bool { return st.reg[dst] < uimm }
	case OpJltReg:
		return func(st *execState) bool { return st.reg[dst] < st.reg[src] }
	case OpJleImm:
		return func(st *execState) bool { return st.reg[dst] <= uimm }
	case OpJleReg:
		return func(st *execState) bool { return st.reg[dst] <= st.reg[src] }
	case OpJsgtImm:
		return func(st *execState) bool { return int64(st.reg[dst]) > simm }
	case OpJsgtReg:
		return func(st *execState) bool { return int64(st.reg[dst]) > int64(st.reg[src]) }
	default:
		// Unreachable: compile only calls emitPred for conditional ops.
		return func(st *execState) bool { return false }
	}
}

// ---------------------------------------------------------------------------
// Shape-specialized fast paths.

// fastRunner executes a recognized program shape directly over the frame:
// pkt is the accessible packet bytes (nil/short for metadata-only runs),
// frameLen the ctx data_end-data distance, ifindex the ctx ifindex field.
// It must reproduce the interpreter's observable behavior exactly: verdict,
// redirect, map mutations, fault class, and dynamic instruction count.
type fastRunner func(pkt []byte, frameLen int, ifindex uint32) (Result, error)

// insnPat matches one instruction. All fields are compared except Imm when
// wildImm is set; wildcard Imms are extracted in program order.
type insnPat struct {
	op       Op
	dst, src Register
	off      int16
	imm      int64
	size     Size
	wildImm  bool
}

func pat(in Insn) insnPat {
	return insnPat{op: in.Op, dst: in.Dst, src: in.Src, off: in.Off, imm: in.Imm, size: in.Size}
}

func wild(in Insn) insnPat {
	p := pat(in)
	p.wildImm, p.imm = true, 0
	return p
}

// matchInsns compares a program against a pattern, returning the wildcard
// immediates in order on a full match.
func matchInsns(insns []Insn, pats []insnPat) ([]int64, bool) {
	if len(insns) != len(pats) {
		return nil, false
	}
	var wilds []int64
	for i, p := range pats {
		in := insns[i]
		if in.Op != p.op || in.Dst != p.dst || in.Src != p.src || in.Off != p.off || in.Size != p.size {
			return nil, false
		}
		if p.wildImm {
			wilds = append(wilds, in.Imm)
		} else if in.Imm != p.imm {
			return nil, false
		}
	}
	return wilds, true
}

// countPath counts the dynamic instructions the interpreter executes along
// one control-flow path, selected by the taken map (conditional pc → branch
// outcome; absent means fall through). Used by the matchers to pre-compute
// exact Result.Insns values per fast-path outcome instead of hard-coding
// them.
func countPath(insns []Insn, taken map[int]bool) int {
	pc, n := 0, 0
	for n <= 2*len(insns) { // matched shapes are loop-free; bound defensively
		in := insns[pc]
		n++
		switch {
		case in.Op == OpExit:
			return n
		case in.Op == OpJa:
			pc += 1 + int(in.Off)
		case in.Op.isConditional() && taken[pc]:
			pc += 1 + int(in.Off)
		default:
			pc++
		}
	}
	return n
}

// matchFast tries the known program shapes against a freshly compiled
// program. Matching happens after the map table is built, so the extracted
// fds resolve through the program's own references.
func matchFast(lp *LoadedProgram) fastRunner {
	if f := matchSProxy(lp); f != nil {
		return f
	}
	if f := matchEProxy(lp); f != nil {
		return f
	}
	return nil
}

// mapRef resolves a map fd through the program's load-time map table.
func (lp *LoadedProgram) mapRef(fd int) *Map {
	for i := range lp.maps {
		if lp.maps[i].fd == fd {
			return lp.maps[i].m
		}
	}
	return nil
}

// sproxyPats is the SPROXY descriptor-redirect shape (core.buildSProxyProgram):
// bounds-check the descriptor, look up src<<32|dst in the filter hash, bump
// metrics[dst], msg_redirect_map to sockmap[dst]. Wildcards: descriptor
// size, filter fd, metrics fd, sockmap fd.
func sproxyPats() []insnPat {
	return []insnPat{
		pat(Mov64Reg(R6, R1)),
		pat(LoadMem(R7, R6, 0, DW)), // data
		pat(LoadMem(R2, R6, 8, DW)), // data_end
		pat(Mov64Reg(R3, R7)),
		wild(Add64Imm(R3, 0)),       // + descriptor size
		pat(JgtReg(R3, R2, 25)),     // short frame → drop
		pat(LoadMem(R8, R7, 0, W)),  // dst instance id from the descriptor
		pat(LoadMem(R9, R6, 16, W)), // src instance id from ctx ifindex
		pat(Mov64Reg(R2, R9)),
		pat(Lsh64Imm(R2, 32)),
		pat(Or64Reg(R2, R8)),
		pat(StoreMem(R10, -8, R2, DW)),
		wild(LoadMapFD(R1, 0)), // filter map
		pat(Mov64Reg(R2, R10)),
		pat(Add64Imm(R2, -8)),
		pat(Call(HelperMapLookupElem)),
		pat(JeqImm(R0, 0, 14)), // unauthorized → drop
		pat(StoreMem(R10, -12, R8, W)),
		wild(LoadMapFD(R1, 0)), // metrics map
		pat(Mov64Reg(R2, R10)),
		pat(Add64Imm(R2, -12)),
		pat(Call(HelperMapLookupElem)),
		pat(JeqImm(R0, 0, 2)), // no metrics slot → skip the bump
		pat(Mov64Imm(R2, 1)),
		pat(AtomicAdd(R0, 0, R2, DW)),
		pat(Mov64Reg(R1, R6)),
		wild(LoadMapFD(R2, 0)), // sockmap
		pat(Mov64Reg(R3, R8)),
		pat(Mov64Imm(R4, 0)),
		pat(Call(HelperMsgRedirectMap)),
		pat(Exit()),
		pat(Mov64Imm(R0, SKDrop)),
		pat(Exit()),
	}
}

// sproxyPktLoadPC is the pattern index of the first packet dereference (the
// dst-id load): a metadata-only run whose claimed frame passes the bounds
// check faults there, exactly as the interpreter does.
const sproxyPktLoadPC = 6

// matchSProxy recognizes the SPROXY shape and returns its fast runner.
func matchSProxy(lp *LoadedProgram) fastRunner {
	insns := lp.prog.Insns
	wilds, ok := matchInsns(insns, sproxyPats())
	if !ok {
		return nil
	}
	descSize := int(wilds[0])
	filter := lp.mapRef(int(uint32(wilds[1])))
	metrics := lp.mapRef(int(uint32(wilds[2])))
	sockmap := lp.mapRef(int(uint32(wilds[3])))
	// Geometry guards: everything the bytecode path relies on implicitly.
	// A shape that matched but whose maps disagree (or whose descriptor is
	// shorter than the 4-byte dst-id load) falls back to the closure chain,
	// which handles every case by construction.
	if descSize < 4 {
		return nil
	}
	if filter == nil || filter.spec.Type != MapTypeHash || filter.spec.KeySize != 8 {
		return nil
	}
	if metrics == nil || metrics.spec.Type != MapTypeArray || metrics.spec.ValueSize < 8 || metrics.valWords == 0 {
		return nil
	}
	if sockmap == nil || sockmap.spec.Type != MapTypeSockMap {
		return nil
	}

	// Exact per-outcome instruction counts, derived from the matched
	// bytecode rather than hard-coded.
	nShort := countPath(insns, map[int]bool{5: true})
	nDenied := countPath(insns, map[int]bool{16: true})
	nNoSlot := countPath(insns, map[int]bool{22: true})
	nFull := countPath(insns, nil)
	nPktFault := sproxyPktLoadPC + 1

	slab, valWords, maxEntries := metrics.slab, metrics.valWords, metrics.spec.MaxEntries
	return func(pkt []byte, frameLen int, ifindex uint32) (Result, error) {
		if frameLen < descSize {
			return Result{Ret: SKDrop, Insns: nShort}, nil
		}
		if len(pkt) < 4 {
			// Frame bounds claim a descriptor but the bytes aren't
			// accessible (RunMeta): the packet load faults.
			return Result{Insns: nPktFault}, ErrOutOfBounds
		}
		dst := leU32(pkt)
		var key [8]byte // filter key: little-endian src<<32 | dst
		putLeU32(key[0:4], dst)
		putLeU32(key[4:8], ifindex)
		if _, err := filter.LookupRef(key[:]); err != nil {
			return Result{Ret: SKDrop, Insns: nDenied}, nil
		}
		res := Result{Insns: nFull}
		if int(dst) < maxEntries {
			// metrics[dst]++ on the aligned slab word, the same atomic
			// the interpreter's OpAtomicAdd fast path issues.
			atomic.AddUint64(&slab[int(dst)*valWords], 1)
		} else {
			res.Insns = nNoSlot
		}
		if s, err := sockmap.LookupSock(dst); err == nil {
			res.RedirectSock = s
			res.Ret = SKPass
		} else {
			res.Ret = SKDrop
		}
		return res, nil
	}
}

// eproxyPats is the EPROXY L3-monitor shape (core.buildEProxyProgram):
// packets++ and bytes += frame length in an array map, then pass. The
// program touches only ctx bounds, never packet bytes, so it runs over
// metadata-only frames. Wildcards: packets slot, packets-map fd, bytes
// slot, bytes-map fd, pass verdict.
func eproxyPats() []insnPat {
	return []insnPat{
		pat(LoadMem(R6, R1, 0, DW)), // data
		pat(LoadMem(R7, R1, 8, DW)), // data_end
		pat(Mov64Reg(R8, R7)),
		pat(Insn{Op: OpSubReg, Dst: R8, Src: R6}), // r8 = frame length
		wild(StoreImm(R10, -4, 0, W)),             // packets slot
		wild(LoadMapFD(R1, 0)),
		pat(Mov64Reg(R2, R10)),
		pat(Add64Imm(R2, -4)),
		pat(Call(HelperMapLookupElem)),
		pat(JeqImm(R0, 0, 2)),
		pat(Mov64Imm(R2, 1)),
		pat(AtomicAdd(R0, 0, R2, DW)),
		wild(StoreImm(R10, -4, 0, W)), // bytes slot
		wild(LoadMapFD(R1, 0)),
		pat(Mov64Reg(R2, R10)),
		pat(Add64Imm(R2, -4)),
		pat(Call(HelperMapLookupElem)),
		pat(JeqImm(R0, 0, 1)),
		pat(AtomicAdd(R0, 0, R8, DW)),
		wild(Mov64Imm(R0, 0)), // pass verdict
		pat(Exit()),
	}
}

// matchEProxy recognizes the EPROXY shape and returns its fast runner.
func matchEProxy(lp *LoadedProgram) fastRunner {
	insns := lp.prog.Insns
	wilds, ok := matchInsns(insns, eproxyPats())
	if !ok {
		return nil
	}
	pktSlot, byteSlot := int(wilds[0]), int(wilds[2])
	pktMap := lp.mapRef(int(uint32(wilds[1])))
	byteMap := lp.mapRef(int(uint32(wilds[3])))
	ret := wilds[4]
	// Both slots must be valid array entries wide enough for the DW adds —
	// then both lookups hit and the full path always executes, so one
	// instruction count covers every run.
	okSlot := func(m *Map, slot int) bool {
		return m != nil && m.spec.Type == MapTypeArray && m.spec.ValueSize >= 8 &&
			m.valWords > 0 && slot >= 0 && slot < m.spec.MaxEntries
	}
	if !okSlot(pktMap, pktSlot) || !okSlot(byteMap, byteSlot) {
		return nil
	}
	nAll := countPath(insns, nil)

	pktWord := &pktMap.slab[pktSlot*pktMap.valWords]
	byteWord := &byteMap.slab[byteSlot*byteMap.valWords]
	return func(_ []byte, frameLen int, _ uint32) (Result, error) {
		atomic.AddUint64(pktWord, 1)
		atomic.AddUint64(byteWord, uint64(frameLen))
		return Result{Ret: ret, Insns: nAll}, nil
	}
}
