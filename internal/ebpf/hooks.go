package ebpf

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Hook points where programs attach. In the paper's design (§3.5, Fig. 7),
// XDP programs sit on the physical NIC RX path, TC programs on the
// host-side veth RX path, and SK_MSG programs on function sockets.
type AttachPoint int

// Attach points.
const (
	AttachXDP AttachPoint = iota
	AttachTCIngress
	AttachSKMsg
)

func (a AttachPoint) String() string {
	switch a {
	case AttachXDP:
		return "xdp"
	case AttachTCIngress:
		return "tc-ingress"
	case AttachSKMsg:
		return "sk_msg"
	default:
		return fmt.Sprintf("attach(%d)", int(a))
	}
}

// ErrTypeMismatch is returned when a program's type does not fit the hook.
var ErrTypeMismatch = errors.New("ebpf: program type does not match attach point")

// Link is an attached program; Close detaches it (like bpf_link).
type Link struct {
	hook *Hook
	lp   *LoadedProgram
	once sync.Once
}

// Program returns the attached program.
func (l *Link) Program() *LoadedProgram { return l.lp }

// Close detaches the program from its hook.
func (l *Link) Close() {
	l.once.Do(func() {
		h := l.hook
		h.mu.Lock()
		defer h.mu.Unlock()
		cur := h.links.Load().([]*Link)
		next := make([]*Link, 0, len(cur))
		for _, cand := range cur {
			if cand != l {
				next = append(next, cand)
			}
		}
		h.links.Store(next)
	})
}

// Hook is one attachment point instance (e.g. the XDP hook of one NIC, the
// SK_MSG hook of one socket). Programs run in attach order until one
// returns a non-pass verdict. The link list is copy-on-write: attach and
// detach copy under the mutex, so Fire reads a stable snapshot without
// locking or copying per event.
type Hook struct {
	point AttachPoint
	kern  *Kernel

	mu    sync.Mutex   // serializes writers
	links atomic.Value // []*Link
}

// NewHook creates a hook of the given kind bound to a kernel.
func NewHook(k *Kernel, point AttachPoint) *Hook {
	h := &Hook{point: point, kern: k}
	h.links.Store([]*Link{})
	return h
}

// Point returns the hook's attach point kind.
func (h *Hook) Point() AttachPoint { return h.point }

// Attach verifies type compatibility and attaches the program.
func (h *Hook) Attach(lp *LoadedProgram) (*Link, error) {
	ok := false
	switch h.point {
	case AttachXDP:
		ok = lp.Type() == ProgTypeXDP
	case AttachTCIngress:
		ok = lp.Type() == ProgTypeTC
	case AttachSKMsg:
		ok = lp.Type() == ProgTypeSKMsg
	}
	if !ok {
		return nil, fmt.Errorf("%w: %v program on %v hook", ErrTypeMismatch, lp.Type(), h.point)
	}
	l := &Link{hook: h, lp: lp}
	h.mu.Lock()
	cur := h.links.Load().([]*Link)
	next := make([]*Link, len(cur), len(cur)+1)
	copy(next, cur)
	h.links.Store(append(next, l))
	h.mu.Unlock()
	return l, nil
}

// Attached returns the number of attached programs.
func (h *Hook) Attached() int {
	return len(h.links.Load().([]*Link))
}

// passVerdict is the verdict that lets the next program run.
func (h *Hook) passVerdict() int64 {
	switch h.point {
	case AttachXDP:
		return XDPPass
	case AttachTCIngress:
		return TCActOK
	default:
		return SKPass
	}
}

// Fire runs the attached programs over data. Programs run in order until
// one returns a verdict other than pass; that result is returned. With no
// programs attached, Fire returns the pass verdict (the event-driven
// property: no attached program, no work).
func (h *Hook) Fire(data []byte, ifindex uint32, env Env) (Result, error) {
	links := h.links.Load().([]*Link)
	res := Result{Ret: h.passVerdict()}
	for _, l := range links {
		r, err := l.lp.kernel.Run(l.lp, data, ifindex, env)
		if err != nil {
			return r, fmt.Errorf("hook %v program %q: %w", h.point, l.lp.Name(), err)
		}
		if r.Ret != h.passVerdict() || r.RedirectSock != nil || r.HasIfRedir {
			return r, nil
		}
		res = r
	}
	return res, nil
}
