package ebpf

import (
	"errors"
	"strings"
	"testing"
)

func mustReject(t *testing.T, k *Kernel, p *Program, substr string) {
	t.Helper()
	_, err := k.Load(p)
	if err == nil {
		t.Fatalf("verifier accepted bad program %q", p.Name)
	}
	if !errors.Is(err, ErrVerifier) {
		t.Fatalf("want ErrVerifier, got %v", err)
	}
	if substr != "" && !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not mention %q", err, substr)
	}
}

func TestVerifierRejectsEmptyProgram(t *testing.T) {
	mustReject(t, NewKernel(), retProg(), "empty")
}

func TestVerifierRejectsOversizedProgram(t *testing.T) {
	insns := make([]Insn, MaxProgInsns+1)
	for i := range insns {
		insns[i] = Mov64Imm(R0, 0)
	}
	insns[len(insns)-1] = Exit()
	mustReject(t, NewKernel(), retProg(insns...), "too large")
}

func TestVerifierRejectsMissingExit(t *testing.T) {
	mustReject(t, NewKernel(), retProg(Mov64Imm(R0, 1)), "falls off")
}

func TestVerifierRejectsJumpOutOfRange(t *testing.T) {
	mustReject(t, NewKernel(), retProg(
		Mov64Imm(R0, 0),
		Ja(100),
		Exit(),
	), "jump target")
	mustReject(t, NewKernel(), retProg(
		Mov64Imm(R0, 0),
		Ja(-100),
		Exit(),
	), "jump target")
}

func TestVerifierRejectsUninitializedRead(t *testing.T) {
	mustReject(t, NewKernel(), retProg(
		Mov64Reg(R0, R5), // r5 never written
		Exit(),
	), "uninitialized register r5")
}

func TestVerifierRejectsUninitializedR0AtExit(t *testing.T) {
	mustReject(t, NewKernel(), retProg(Exit()), "uninitialized r0")
}

func TestVerifierRejectsWriteToR10(t *testing.T) {
	mustReject(t, NewKernel(), retProg(
		Mov64Imm(R10, 0),
		Mov64Imm(R0, 0),
		Exit(),
	), "frame pointer")
}

func TestVerifierRejectsDivByZeroImmediate(t *testing.T) {
	mustReject(t, NewKernel(), retProg(
		Mov64Imm(R0, 1),
		Insn{Op: OpDivImm, Dst: R0, Imm: 0},
		Exit(),
	), "division by zero")
}

func TestVerifierRejectsUnknownHelper(t *testing.T) {
	mustReject(t, NewKernel(), retProg(
		Call(HelperID(9999)),
		Exit(),
	), "unknown helper")
}

func TestVerifierRejectsUnknownMapFD(t *testing.T) {
	mustReject(t, NewKernel(), retProg(
		LoadMapFD(R1, 77),
		Mov64Imm(R0, 0),
		Exit(),
	), "unknown map")
}

func TestVerifierRejectsBadRegister(t *testing.T) {
	mustReject(t, NewKernel(), retProg(
		Insn{Op: OpMovImm, Dst: Register(14)},
		Exit(),
	), "bad register")
}

func TestVerifierRejectsBadAccessSize(t *testing.T) {
	mustReject(t, NewKernel(), retProg(
		Mov64Imm(R0, 0),
		Insn{Op: OpLoad, Dst: R0, Src: R10, Off: -8, Size: 3},
		Exit(),
	), "bad access size")
}

func TestVerifierRejectsClobberedHelperArgs(t *testing.T) {
	// R1-R5 are dead after a call; reading R3 afterwards must fail.
	k := NewKernel()
	mustReject(t, k, retProg(
		Call(HelperKtimeGetNs),
		Mov64Reg(R0, R3),
		Exit(),
	), "uninitialized register r3")
}

func TestVerifierRejectsUninitializedHelperArg(t *testing.T) {
	k := NewKernel()
	m, err := k.CreateMap(MapSpec{Name: "m", Type: MapTypeArray, KeySize: 4, ValueSize: 8, MaxEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	// map_lookup_elem needs r1 (map) and r2 (key ptr); r2 missing.
	mustReject(t, k, retProg(
		LoadMapFD(R1, m.FD()),
		Call(HelperMapLookupElem),
		Exit(),
	), "needs initialized r2")
}

func TestVerifierAcceptsBranchJoinBothInitialized(t *testing.T) {
	k := NewKernel()
	p := retProg(
		Mov64Imm(R2, 1),
		JeqImm(R2, 1, 2),
		Mov64Imm(R3, 10), // path A inits r3
		Ja(1),
		Mov64Imm(R3, 20), // path B inits r3
		Mov64Reg(R0, R3), // join: r3 initialized on both paths
		Exit(),
	)
	if _, err := k.Load(p); err != nil {
		t.Fatalf("join-point program should verify: %v", err)
	}
}

func TestVerifierRejectsBranchJoinPartialInit(t *testing.T) {
	mustReject(t, NewKernel(), retProg(
		Mov64Imm(R2, 1),
		JeqImm(R2, 1, 1), // branch may skip the init
		Mov64Imm(R3, 10), // only fall-through inits r3
		Mov64Reg(R0, R3), // join: r3 not initialized on the branch path
		Exit(),
	), "uninitialized register r3")
}

func TestVerifierAcceptsR1AndR10AtEntry(t *testing.T) {
	k := NewKernel()
	p := retProg(
		Mov64Reg(R0, R1), // ctx pointer is live at entry
		Mov64Reg(R2, R10),
		Add64Reg(R0, R2),
		Exit(),
	)
	if _, err := k.Load(p); err != nil {
		t.Fatalf("entry registers must be live: %v", err)
	}
}

func TestVerifierAcceptsBackwardJumpWithExitPath(t *testing.T) {
	k := NewKernel()
	p := retProg(
		Mov64Imm(R0, 0),
		Mov64Imm(R2, 10),
		Add64Imm(R0, 1),
		Sub64Imm(R2, 1),
		JneImm(R2, 0, -3),
		Exit(),
	)
	if _, err := k.Load(p); err != nil {
		t.Fatalf("bounded loop should verify: %v", err)
	}
}

func TestVerifierDeadCodeAfterExitIgnored(t *testing.T) {
	// Unreachable garbage after exit must not block loading (it is never
	// reached, mirroring kernel behaviour for pruned paths)... except the
	// structural pass still validates registers. Use valid-but-dead code.
	k := NewKernel()
	p := retProg(
		Mov64Imm(R0, 1),
		Exit(),
		Mov64Imm(R0, 2),
		Exit(),
	)
	if _, err := k.Load(p); err != nil {
		t.Fatalf("dead code should not block load: %v", err)
	}
}

func TestLoadAssignsDistinctFDs(t *testing.T) {
	k := NewKernel()
	a, err := k.Load(retProg(Mov64Imm(R0, 0), Exit()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := k.Load(retProg(Mov64Imm(R0, 1), Exit()))
	if err != nil {
		t.Fatal(err)
	}
	if a.FD() == b.FD() {
		t.Fatal("programs must get distinct fds")
	}
	if a.FD() < 3 {
		t.Fatal("fds 0-2 are reserved")
	}
}
