// Package ebpf implements the eBPF-like in-kernel virtual machine that
// SPRIGHT's event-driven dataplane is built on: a register machine with a
// static verifier, maps (array/hash/sockmap and friends), a helper-call
// interface (map access, msg_redirect_map, fib_lookup, redirect, ...), and
// kernel hook points (XDP, TC, SK_MSG).
//
// SPROXY and EPROXY (paper §3.2–§3.3, §3.5) are real programs assembled
// against this ISA and executed by this interpreter — the event-driven
// control flow of the paper (descriptor parse → sockmap lookup → in-kernel
// redirect) runs as verified bytecode, not as native Go shortcuts.
//
// The ISA is a faithful subset of Linux eBPF: eleven 64-bit registers
// (R0–R9 general purpose, R10 read-only frame pointer), ALU64, memory
// (byte/half/word/dword), conditional jumps, helper calls and exit.
package ebpf

import "fmt"

// Register names R0..R10.
type Register uint8

// The eBPF register file. R0 holds return values, R1–R5 carry helper
// arguments, R6–R9 are callee-saved scratch, R10 is the frame pointer.
const (
	R0 Register = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	numRegisters
)

// Op is an operation code. The encoding is flattened (one constant per
// operation+operand-form) rather than bit-packed; Size carries the memory
// access width for load/store ops.
type Op uint8

const (
	OpInvalid Op = iota

	// ALU64, register and immediate forms.
	OpAddReg
	OpAddImm
	OpSubReg
	OpSubImm
	OpMulReg
	OpMulImm
	OpDivReg
	OpDivImm
	OpModReg
	OpModImm
	OpAndReg
	OpAndImm
	OpOrReg
	OpOrImm
	OpXorReg
	OpXorImm
	OpLshReg
	OpLshImm
	OpRshReg
	OpRshImm
	OpArshReg
	OpArshImm
	OpNeg
	OpMovReg
	OpMovImm

	// Memory. Off is the signed displacement from the base register.
	OpLoad     // dst = *(size *)(src + off)
	OpStore    // *(size *)(dst + off) = src
	OpStoreImm // *(size *)(dst + off) = imm

	// Pseudo-instruction: load a map handle into dst (ld_imm64 with a
	// map fd in real eBPF). The verifier resolves Imm to a loaded map.
	OpLoadMapFD

	// Atomic add: *(size *)(dst + off) += src. Mirrors BPF_XADD, which
	// the paper's metric-collection programs rely on.
	OpAtomicAdd

	// Jumps. Off is a relative instruction displacement.
	OpJa
	OpJeqReg
	OpJeqImm
	OpJneReg
	OpJneImm
	OpJgtReg
	OpJgtImm
	OpJgeReg
	OpJgeImm
	OpJltReg
	OpJltImm
	OpJleReg
	OpJleImm
	OpJsgtReg
	OpJsgtImm

	// Call a helper identified by Imm.
	OpCall
	// Exit: return R0.
	OpExit
)

// Size is a memory access width.
type Size uint8

// Memory access widths.
const (
	B  Size = 1 // byte
	H  Size = 2 // half word
	W  Size = 4 // word
	DW Size = 8 // double word
)

// Insn is one decoded instruction.
type Insn struct {
	Op   Op
	Dst  Register
	Src  Register
	Off  int16
	Imm  int64
	Size Size
}

func (i Insn) String() string {
	switch i.Op {
	case OpMovImm:
		return fmt.Sprintf("r%d = %d", i.Dst, i.Imm)
	case OpMovReg:
		return fmt.Sprintf("r%d = r%d", i.Dst, i.Src)
	case OpLoad:
		return fmt.Sprintf("r%d = *(u%d *)(r%d %+d)", i.Dst, i.Size*8, i.Src, i.Off)
	case OpStore:
		return fmt.Sprintf("*(u%d *)(r%d %+d) = r%d", i.Size*8, i.Dst, i.Off, i.Src)
	case OpStoreImm:
		return fmt.Sprintf("*(u%d *)(r%d %+d) = %d", i.Size*8, i.Dst, i.Off, i.Imm)
	case OpAtomicAdd:
		return fmt.Sprintf("lock *(u%d *)(r%d %+d) += r%d", i.Size*8, i.Dst, i.Off, i.Src)
	case OpLoadMapFD:
		return fmt.Sprintf("r%d = map_fd(%d)", i.Dst, i.Imm)
	case OpCall:
		return fmt.Sprintf("call %s", HelperID(i.Imm))
	case OpExit:
		return "exit"
	case OpJa:
		return fmt.Sprintf("goto %+d", i.Off)
	default:
		return fmt.Sprintf("op%d dst=r%d src=r%d off=%d imm=%d", i.Op, i.Dst, i.Src, i.Off, i.Imm)
	}
}

// isJump reports whether the op transfers control via Off.
func (o Op) isJump() bool {
	switch o {
	case OpJa, OpJeqReg, OpJeqImm, OpJneReg, OpJneImm, OpJgtReg, OpJgtImm,
		OpJgeReg, OpJgeImm, OpJltReg, OpJltImm, OpJleReg, OpJleImm,
		OpJsgtReg, OpJsgtImm:
		return true
	}
	return false
}

// isConditional reports whether a jump can fall through.
func (o Op) isConditional() bool { return o.isJump() && o != OpJa }

// readsSrc reports whether the op reads its Src register.
func (o Op) readsSrc() bool {
	switch o {
	case OpAddReg, OpSubReg, OpMulReg, OpDivReg, OpModReg, OpAndReg, OpOrReg,
		OpXorReg, OpLshReg, OpRshReg, OpArshReg, OpMovReg, OpLoad, OpStore,
		OpAtomicAdd, OpJeqReg, OpJneReg, OpJgtReg, OpJgeReg, OpJltReg,
		OpJleReg, OpJsgtReg:
		return true
	}
	return false
}

// readsDst reports whether the op reads its Dst register before writing.
func (o Op) readsDst() bool {
	switch o {
	case OpMovReg, OpMovImm, OpLoad, OpLoadMapFD, OpCall, OpExit, OpJa:
		return false
	}
	return true
}

// writesDst reports whether the op writes its Dst register.
func (o Op) writesDst() bool {
	switch o {
	case OpStore, OpStoreImm, OpAtomicAdd, OpExit, OpCall:
		return false
	}
	return !o.isJump()
}
