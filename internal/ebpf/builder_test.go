package ebpf

import (
	"strings"
	"testing"
)

func TestBuilderResolvesForwardAndBackwardLabels(t *testing.T) {
	b := NewBuilder("loop", ProgTypeXDP)
	b.Ins(Mov64Imm(R0, 0), Mov64Imm(R2, 5))
	b.Label("loop")
	b.Ins(Add64Imm(R0, 2), Sub64Imm(R2, 1))
	b.Jmp(JneImm(R2, 0, 0), "loop")
	b.Jmp(Ja(0), "out")
	b.Ins(Mov64Imm(R0, 999)) // dead
	b.Label("out")
	b.Ins(Exit())
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	k := NewKernel()
	res, err := loadAndRun(t, k, p, nil)
	if err != nil || res.Ret != 10 {
		t.Fatalf("got %d, %v; want 10", res.Ret, err)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad", ProgTypeXDP)
	b.Jmp(Ja(0), "nowhere")
	b.Ins(Mov64Imm(R0, 0), Exit())
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Fatalf("want undefined label error, got %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("bad", ProgTypeXDP)
	b.Label("x")
	b.Ins(Mov64Imm(R0, 0))
	b.Label("x")
	b.Ins(Exit())
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("want duplicate label error, got %v", err)
	}
}

func TestBuilderNonJumpInJmp(t *testing.T) {
	b := NewBuilder("bad", ProgTypeXDP)
	b.Jmp(Mov64Imm(R0, 0), "x")
	b.Label("x")
	b.Ins(Exit())
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "non-jump") {
		t.Fatalf("want non-jump error, got %v", err)
	}
}

func TestBuilderMustProgramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustProgram must panic on bad assembly")
		}
	}()
	b := NewBuilder("bad", ProgTypeXDP)
	b.Jmp(Ja(0), "nowhere")
	b.MustProgram()
}
