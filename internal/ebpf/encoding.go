package ebpf

import (
	"encoding/binary"
	"fmt"
)

// Kernel wire format: every eBPF instruction encodes to the classic 8-byte
// layout (opcode u8, dst:src packed u8, offset s16, immediate s32), with
// ld_imm64-style wide instructions occupying two slots. This lets programs
// round-trip through the same byte representation the kernel's
// bpf(BPF_PROG_LOAD, ...) consumes, and gives tests a second, independent
// representation to cross-check the in-memory form against.

// InsnSize is the wire size of one instruction slot.
const InsnSize = 8

// Wire opcode construction, following include/uapi/linux/bpf.h.
const (
	classALU64 = 0x07
	classJMP   = 0x05
	classLDX   = 0x61 // base for sized loads (we store class+size resolved)
	classSTX   = 0x63
	classST    = 0x62
	classXADD  = 0xdb // BPF_STX | BPF_DW | BPF_ATOMIC (simplified)
)

// wireOp maps our flattened Op to a (mostly) UAPI-faithful opcode byte.
// ALU ops use BPF_ALU64 with the K/X source bit; jumps use BPF_JMP.
var wireOp = map[Op]byte{
	OpAddReg: 0x0f, OpAddImm: 0x07,
	OpSubReg: 0x1f, OpSubImm: 0x17,
	OpMulReg: 0x2f, OpMulImm: 0x27,
	OpDivReg: 0x3f, OpDivImm: 0x37,
	OpModReg: 0x9f, OpModImm: 0x97,
	OpAndReg: 0x5f, OpAndImm: 0x57,
	OpOrReg: 0x4f, OpOrImm: 0x47,
	OpXorReg: 0xaf, OpXorImm: 0xa7,
	OpLshReg: 0x6f, OpLshImm: 0x67,
	OpRshReg: 0x7f, OpRshImm: 0x77,
	OpArshReg: 0xcf, OpArshImm: 0xc7,
	OpNeg:    0x87,
	OpMovReg: 0xbf, OpMovImm: 0xb7,

	OpJa:     0x05,
	OpJeqReg: 0x1d, OpJeqImm: 0x15,
	OpJneReg: 0x5d, OpJneImm: 0x55,
	OpJgtReg: 0x2d, OpJgtImm: 0x25,
	OpJgeReg: 0x3d, OpJgeImm: 0x35,
	OpJltReg: 0xad, OpJltImm: 0xa5,
	OpJleReg: 0xbd, OpJleImm: 0xb5,
	OpJsgtReg: 0x6d, OpJsgtImm: 0x65,

	OpCall: 0x85,
	OpExit: 0x95,
}

// sized memory opcodes: BPF_LDX/STX/ST with the size bits.
func memWireOp(op Op, size Size) (byte, error) {
	var sizeBits byte
	switch size {
	case W:
		sizeBits = 0x00
	case H:
		sizeBits = 0x08
	case B:
		sizeBits = 0x10
	case DW:
		sizeBits = 0x18
	default:
		return 0, fmt.Errorf("ebpf: bad size %d", size)
	}
	switch op {
	case OpLoad:
		return 0x61 | sizeBits, nil
	case OpStore:
		return 0x63 | sizeBits, nil
	case OpStoreImm:
		return 0x62 | sizeBits, nil
	case OpAtomicAdd:
		return 0xc3 | sizeBits, nil // BPF_STX|BPF_ATOMIC
	default:
		return 0, fmt.Errorf("ebpf: not a memory op: %d", op)
	}
}

var wireOpRev map[byte]Op
var memWireRev map[byte]struct {
	op   Op
	size Size
}

func init() {
	wireOpRev = make(map[byte]Op, len(wireOp))
	for op, b := range wireOp {
		wireOpRev[b] = op
	}
	memWireRev = make(map[byte]struct {
		op   Op
		size Size
	})
	for _, op := range []Op{OpLoad, OpStore, OpStoreImm, OpAtomicAdd} {
		for _, size := range []Size{B, H, W, DW} {
			b, _ := memWireOp(op, size)
			memWireRev[b] = struct {
				op   Op
				size Size
			}{op, size}
		}
	}
}

// ldImm64Op is the wide load-map-fd pseudo instruction (BPF_LD|BPF_IMM|BPF_DW
// with src=BPF_PSEUDO_MAP_FD).
const ldImm64Op byte = 0x18
const pseudoMapFD = 1

// MarshalInsns encodes a program's instructions into kernel wire format.
func MarshalInsns(insns []Insn) ([]byte, error) {
	var out []byte
	slot := make([]byte, InsnSize)
	emit := func(opcode byte, dst, src Register, off int16, imm int32) {
		slot[0] = opcode
		slot[1] = byte(src)<<4 | byte(dst)
		binary.LittleEndian.PutUint16(slot[2:4], uint16(off))
		binary.LittleEndian.PutUint32(slot[4:8], uint32(imm))
		out = append(out, slot...)
	}
	for i, in := range insns {
		switch in.Op {
		case OpLoadMapFD:
			// wide instruction: two slots, imm split low/high
			emit(ldImm64Op, in.Dst, pseudoMapFD, 0, int32(in.Imm))
			emit(0, 0, 0, 0, int32(in.Imm>>32))
		case OpLoad, OpStore, OpStoreImm, OpAtomicAdd:
			opc, err := memWireOp(in.Op, in.Size)
			if err != nil {
				return nil, fmt.Errorf("insn %d: %w", i, err)
			}
			emit(opc, in.Dst, in.Src, in.Off, int32(in.Imm))
		default:
			opc, ok := wireOp[in.Op]
			if !ok {
				return nil, fmt.Errorf("ebpf: insn %d: unencodable op %d", i, in.Op)
			}
			emit(opc, in.Dst, in.Src, in.Off, int32(in.Imm))
		}
	}
	return out, nil
}

// UnmarshalInsns decodes kernel wire format back into instructions.
func UnmarshalInsns(data []byte) ([]Insn, error) {
	if len(data)%InsnSize != 0 {
		return nil, fmt.Errorf("ebpf: wire length %d not a multiple of %d", len(data), InsnSize)
	}
	var out []Insn
	for p := 0; p < len(data); p += InsnSize {
		opcode := data[p]
		dst := Register(data[p+1] & 0x0f)
		src := Register(data[p+1] >> 4)
		off := int16(binary.LittleEndian.Uint16(data[p+2 : p+4]))
		imm := int32(binary.LittleEndian.Uint32(data[p+4 : p+8]))

		if opcode == ldImm64Op {
			if src != pseudoMapFD {
				return nil, fmt.Errorf("ebpf: ld_imm64 at %d without map-fd pseudo src", p/InsnSize)
			}
			if p+2*InsnSize > len(data) {
				return nil, fmt.Errorf("ebpf: truncated ld_imm64 at %d", p/InsnSize)
			}
			hi := int32(binary.LittleEndian.Uint32(data[p+InsnSize+4 : p+InsnSize+8]))
			out = append(out, Insn{
				Op:  OpLoadMapFD,
				Dst: dst,
				Imm: int64(hi)<<32 | int64(uint32(imm)),
			})
			p += InsnSize
			continue
		}
		if m, ok := memWireRev[opcode]; ok {
			out = append(out, Insn{Op: m.op, Dst: dst, Src: src, Off: off, Imm: int64(imm), Size: m.size})
			continue
		}
		op, ok := wireOpRev[opcode]
		if !ok {
			return nil, fmt.Errorf("ebpf: unknown wire opcode %#02x at insn %d", opcode, p/InsnSize)
		}
		out = append(out, Insn{Op: op, Dst: dst, Src: src, Off: off, Imm: int64(imm)})
	}
	return out, nil
}
