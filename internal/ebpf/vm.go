package ebpf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// atomicMu serializes OpAtomicAdd read-modify-write sequences across
// concurrent program executions — the interpreter's stand-in for the LOCK
// prefix BPF_XADD compiles to. Map values are shared memory between runs,
// so without this two concurrent counters could lose increments.
var atomicMu sync.Mutex

// StackSize is the per-invocation stack available through R10, matching the
// kernel's 512-byte eBPF stack.
const StackSize = 512

// MaxRuntimeInsns is the dynamic instruction budget per program run — the
// runtime analog of the kernel verifier's one-million-instruction
// complexity limit.
const MaxRuntimeInsns = 1 << 20

// Virtual address-space layout. Regions never overlap: the context struct,
// packet data, stack and map values each live under a distinct base.
const (
	ctxBase    uint64 = 0x0000_1000_0000_0000
	packetBase uint64 = 0x0000_2000_0000_0000
	stackBase  uint64 = 0x0000_7ff0_0000_0000
	mapValBase uint64 = 0x0000_4000_0000_0000
	mapValStep uint64 = 0x0000_0000_0001_0000

	// map handles returned by OpLoadMapFD are tagged so that helpers can
	// tell them apart from pointers.
	mapHandleTag uint64 = 0xEB9F_0000_0000_0000
)

// Runtime errors.
var (
	ErrOutOfBounds  = errors.New("ebpf: memory access out of bounds")
	ErrBudget       = errors.New("ebpf: instruction budget exceeded")
	ErrDivByZero    = errors.New("ebpf: division by zero")
	ErrBadMapHandle = errors.New("ebpf: register does not hold a map handle")
)

type region struct {
	base     uint64
	data     []byte
	writable bool
}

type addrSpace struct {
	regions []region
	nextMap uint64
}

func (a *addrSpace) add(base uint64, data []byte, writable bool) {
	a.regions = append(a.regions, region{base: base, data: data, writable: writable})
}

// mapValue maps a live map-value slice into the address space, returning
// its virtual address (what bpf_map_lookup_elem hands back).
func (a *addrSpace) mapValue(data []byte) uint64 {
	base := mapValBase + a.nextMap*mapValStep
	a.nextMap++
	a.add(base, data, true)
	return base
}

func (a *addrSpace) access(addr uint64, size int, write bool) ([]byte, error) {
	for i := range a.regions {
		r := &a.regions[i]
		if addr >= r.base && addr+uint64(size) <= r.base+uint64(len(r.data)) {
			if write && !r.writable {
				return nil, fmt.Errorf("%w: write to read-only region at %#x", ErrOutOfBounds, addr)
			}
			off := addr - r.base
			return r.data[off : off+uint64(size)], nil
		}
	}
	return nil, fmt.Errorf("%w: %d bytes at %#x", ErrOutOfBounds, size, addr)
}

// Env is the host environment visible to helpers. Hooks provide an Env when
// running programs; a nil Env yields zero time and an empty FIB.
type Env interface {
	// Now returns kernel monotonic time in nanoseconds (bpf_ktime_get_ns).
	Now() int64
	// FIBLookup resolves a destination address to an egress interface
	// index (bpf_fib_lookup). ok is false when no route exists.
	FIBLookup(daddr uint32, ingressIf uint32) (egressIf uint32, ok bool)
}

type nullEnv struct{}

func (nullEnv) Now() int64                            { return 0 }
func (nullEnv) FIBLookup(uint32, uint32) (uint32, bool) { return 0, false }

// Result is the outcome of one program execution.
type Result struct {
	Ret   int64 // R0 at exit (the verdict)
	Insns int   // dynamic instructions executed

	// RedirectIf is set when bpf_redirect chose an egress interface.
	RedirectIf uint32
	HasIfRedir bool

	// RedirectSock is set when bpf_msg_redirect_map selected a socket.
	RedirectSock SockRef

	// FIBHit reports whether a fib_lookup succeeded during the run.
	FIBHit bool
}

type execState struct {
	kernel *Kernel
	prog   *LoadedProgram
	env    Env
	space  addrSpace
	reg    [numRegisters]uint64
	res    Result

	// msgData is the SK_MSG payload (for msg_redirect_map delivery).
	msgData []byte
}

func loadUint(b []byte, size Size) uint64 {
	switch size {
	case B:
		return uint64(b[0])
	case H:
		return uint64(binary.LittleEndian.Uint16(b))
	case W:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

func storeUint(b []byte, size Size, v uint64) {
	switch size {
	case B:
		b[0] = byte(v)
	case H:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case W:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}

// run interprets the program until exit, error, or budget exhaustion.
func (st *execState) run() (Result, error) {
	insns := st.prog.prog.Insns
	pc := 0
	for {
		if st.res.Insns >= MaxRuntimeInsns {
			return st.res, ErrBudget
		}
		if pc < 0 || pc >= len(insns) {
			return st.res, fmt.Errorf("ebpf: pc %d out of program bounds", pc)
		}
		in := insns[pc]
		st.res.Insns++
		switch in.Op {
		case OpMovImm:
			st.reg[in.Dst] = uint64(in.Imm)
		case OpMovReg:
			st.reg[in.Dst] = st.reg[in.Src]
		case OpAddImm:
			st.reg[in.Dst] += uint64(in.Imm)
		case OpAddReg:
			st.reg[in.Dst] += st.reg[in.Src]
		case OpSubImm:
			st.reg[in.Dst] -= uint64(in.Imm)
		case OpSubReg:
			st.reg[in.Dst] -= st.reg[in.Src]
		case OpMulImm:
			st.reg[in.Dst] *= uint64(in.Imm)
		case OpMulReg:
			st.reg[in.Dst] *= st.reg[in.Src]
		case OpDivImm:
			st.reg[in.Dst] /= uint64(in.Imm) // imm==0 rejected by verifier
		case OpDivReg:
			if st.reg[in.Src] == 0 {
				return st.res, ErrDivByZero
			}
			st.reg[in.Dst] /= st.reg[in.Src]
		case OpModImm:
			st.reg[in.Dst] %= uint64(in.Imm)
		case OpModReg:
			if st.reg[in.Src] == 0 {
				return st.res, ErrDivByZero
			}
			st.reg[in.Dst] %= st.reg[in.Src]
		case OpAndImm:
			st.reg[in.Dst] &= uint64(in.Imm)
		case OpAndReg:
			st.reg[in.Dst] &= st.reg[in.Src]
		case OpOrImm:
			st.reg[in.Dst] |= uint64(in.Imm)
		case OpOrReg:
			st.reg[in.Dst] |= st.reg[in.Src]
		case OpXorImm:
			st.reg[in.Dst] ^= uint64(in.Imm)
		case OpXorReg:
			st.reg[in.Dst] ^= st.reg[in.Src]
		case OpLshImm:
			st.reg[in.Dst] <<= uint64(in.Imm) & 63
		case OpLshReg:
			st.reg[in.Dst] <<= st.reg[in.Src] & 63
		case OpRshImm:
			st.reg[in.Dst] >>= uint64(in.Imm) & 63
		case OpRshReg:
			st.reg[in.Dst] >>= st.reg[in.Src] & 63
		case OpArshImm:
			st.reg[in.Dst] = uint64(int64(st.reg[in.Dst]) >> (uint64(in.Imm) & 63))
		case OpArshReg:
			st.reg[in.Dst] = uint64(int64(st.reg[in.Dst]) >> (st.reg[in.Src] & 63))
		case OpNeg:
			st.reg[in.Dst] = uint64(-int64(st.reg[in.Dst]))

		case OpLoad:
			b, err := st.space.access(st.reg[in.Src]+uint64(int64(in.Off)), int(in.Size), false)
			if err != nil {
				return st.res, err
			}
			st.reg[in.Dst] = loadUint(b, in.Size)
		case OpStore:
			b, err := st.space.access(st.reg[in.Dst]+uint64(int64(in.Off)), int(in.Size), true)
			if err != nil {
				return st.res, err
			}
			storeUint(b, in.Size, st.reg[in.Src])
		case OpStoreImm:
			b, err := st.space.access(st.reg[in.Dst]+uint64(int64(in.Off)), int(in.Size), true)
			if err != nil {
				return st.res, err
			}
			storeUint(b, in.Size, uint64(in.Imm))
		case OpAtomicAdd:
			b, err := st.space.access(st.reg[in.Dst]+uint64(int64(in.Off)), int(in.Size), true)
			if err != nil {
				return st.res, err
			}
			atomicMu.Lock()
			storeUint(b, in.Size, loadUint(b, in.Size)+st.reg[in.Src])
			atomicMu.Unlock()

		case OpLoadMapFD:
			st.reg[in.Dst] = mapHandleTag | uint64(uint32(in.Imm))

		case OpJa:
			pc += int(in.Off)
		case OpJeqImm:
			if st.reg[in.Dst] == uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJeqReg:
			if st.reg[in.Dst] == st.reg[in.Src] {
				pc += int(in.Off)
			}
		case OpJneImm:
			if st.reg[in.Dst] != uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJneReg:
			if st.reg[in.Dst] != st.reg[in.Src] {
				pc += int(in.Off)
			}
		case OpJgtImm:
			if st.reg[in.Dst] > uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJgtReg:
			if st.reg[in.Dst] > st.reg[in.Src] {
				pc += int(in.Off)
			}
		case OpJgeImm:
			if st.reg[in.Dst] >= uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJgeReg:
			if st.reg[in.Dst] >= st.reg[in.Src] {
				pc += int(in.Off)
			}
		case OpJltImm:
			if st.reg[in.Dst] < uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJltReg:
			if st.reg[in.Dst] < st.reg[in.Src] {
				pc += int(in.Off)
			}
		case OpJleImm:
			if st.reg[in.Dst] <= uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJleReg:
			if st.reg[in.Dst] <= st.reg[in.Src] {
				pc += int(in.Off)
			}
		case OpJsgtImm:
			if int64(st.reg[in.Dst]) > in.Imm {
				pc += int(in.Off)
			}
		case OpJsgtReg:
			if int64(st.reg[in.Dst]) > int64(st.reg[in.Src]) {
				pc += int(in.Off)
			}

		case OpCall:
			if err := st.call(HelperID(in.Imm)); err != nil {
				return st.res, err
			}
		case OpExit:
			st.res.Ret = int64(st.reg[R0])
			return st.res, nil
		default:
			return st.res, fmt.Errorf("ebpf: invalid opcode %d at pc %d", in.Op, pc)
		}
		pc++
	}
}

// mapFromHandle resolves a tagged map handle in a register.
func (st *execState) mapFromHandle(v uint64) (*Map, error) {
	if v&mapHandleTag != mapHandleTag {
		return nil, ErrBadMapHandle
	}
	m := st.kernel.mapByFD(int(uint32(v)))
	if m == nil {
		return nil, fmt.Errorf("ebpf: no map with fd %d", uint32(v))
	}
	return m, nil
}

func (st *execState) readMem(addr uint64, n int) ([]byte, error) {
	return st.space.access(addr, n, false)
}
