package ebpf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// StackSize is the per-invocation stack available through R10, matching the
// kernel's 512-byte eBPF stack.
const StackSize = 512

// MaxRuntimeInsns is the dynamic instruction budget per program run — the
// runtime analog of the kernel verifier's one-million-instruction
// complexity limit.
const MaxRuntimeInsns = 1 << 20

// Virtual address-space layout. Regions never overlap: the context struct,
// packet data, stack and map values each live under a distinct base, and —
// crucially for the interpreter's load/store fast path — under a distinct
// value of addr>>regionShift, so an access resolves its region in O(1)
// from the address bits instead of scanning a region list.
const (
	ctxBase    uint64 = 0x0000_1000_0000_0000
	packetBase uint64 = 0x0000_2000_0000_0000
	stackBase  uint64 = 0x0000_7ff0_0000_0000
	mapValBase uint64 = 0x0000_4000_0000_0000
	mapValStep uint64 = 0x0000_0000_0001_0000

	// regionShift selects the address bits that identify a region class.
	regionShift = 44

	// map handles returned by OpLoadMapFD are tagged so that helpers can
	// tell them apart from pointers.
	mapHandleTag uint64 = 0xEB9F_0000_0000_0000
)

// Runtime errors.
var (
	ErrOutOfBounds  = errors.New("ebpf: memory access out of bounds")
	ErrBudget       = errors.New("ebpf: instruction budget exceeded")
	ErrDivByZero    = errors.New("ebpf: division by zero")
	ErrBadMapHandle = errors.New("ebpf: register does not hold a map handle")
)

// Pre-built fault errors. Faults are returned from inside the execution hot
// loop (interpreted or compiled), so they must not allocate: a program that
// faults on every run would otherwise turn the 0 allocs/op guarantee into a
// per-fault fmt.Errorf. The sentinels carry the fault class; the faulting
// address is diagnosable from the program counter in Result.Insns.
var (
	errReadOnlyWrite = fmt.Errorf("%w: write to read-only region", ErrOutOfBounds)
	errPCOutOfRange  = errors.New("ebpf: pc out of program bounds")
)

// maxInlineMapVals is how many distinct map-value regions one run can map
// before spilling to a heap slice. SPROXY maps two (filter hit + metrics
// slot); eight leaves generous headroom without growing the exec state.
const maxInlineMapVals = 8

// pktCopySize is the inline staging buffer used by RunCopy: big enough for
// a shm descriptor (16 bytes) with room for richer descriptor formats.
const pktCopySize = 64

// Env is the host environment visible to helpers. Hooks provide an Env when
// running programs; a nil Env yields zero time and an empty FIB.
type Env interface {
	// Now returns kernel monotonic time in nanoseconds (bpf_ktime_get_ns).
	Now() int64
	// FIBLookup resolves a destination address to an egress interface
	// index (bpf_fib_lookup). ok is false when no route exists.
	FIBLookup(daddr uint32, ingressIf uint32) (egressIf uint32, ok bool)
}

type nullEnv struct{}

func (nullEnv) Now() int64                              { return 0 }
func (nullEnv) FIBLookup(uint32, uint32) (uint32, bool) { return 0, false }

// Result is the outcome of one program execution.
type Result struct {
	Ret   int64 // R0 at exit (the verdict)
	Insns int   // dynamic instructions executed

	// RedirectIf is set when bpf_redirect chose an egress interface.
	RedirectIf uint32
	HasIfRedir bool

	// RedirectSock is set when bpf_msg_redirect_map selected a socket.
	RedirectSock SockRef

	// FIBHit reports whether a fib_lookup succeeded during the run.
	FIBHit bool
}

// execState is one program invocation's machine state. Instances are pooled
// (see execPool in prog.go) so a steady-state run performs no allocation:
// the context struct, the 512-byte stack and the RunCopy staging buffer are
// inline arrays, and map-value regions occupy a fixed inline table.
type execState struct {
	kernel *Kernel
	prog   *LoadedProgram
	env    Env
	reg    [numRegisters]uint64
	res    Result

	ctx     [ctxSize]byte
	stack   [StackSize]byte
	pktCopy [pktCopySize]byte

	// packet aliases the caller's data (Run), the inline pktCopy staging
	// buffer (RunCopy), or is empty for metadata-only frames (RunMeta).
	packet   []byte
	pktWrite bool

	// map-value regions, indexed by (addr-mapValBase)/mapValStep. Values
	// wider than mapValStep reserve extra nil continuation slots.
	mapVals  [maxInlineMapVals][]byte
	nSlots   int
	overflow [][]byte

	// msgData is the SK_MSG payload (for msg_redirect_map delivery).
	msgData []byte

	// JIT bookkeeping. blockBase is the dynamic instruction count at entry
	// to the currently executing compiled block (so a faulting instruction
	// can rewind Result.Insns to its exact position), and jitErr carries a
	// fault out of a compiled closure chain to the block driver.
	blockBase int
	jitErr    error
}

func (st *execState) slot(i int) []byte {
	if i < maxInlineMapVals {
		return st.mapVals[i]
	}
	return st.overflow[i-maxInlineMapVals]
}

func (st *execState) addSlot(b []byte) {
	if st.nSlots < maxInlineMapVals {
		st.mapVals[st.nSlots] = b
	} else {
		st.overflow = append(st.overflow, b)
	}
	st.nSlots++
}

func sameSlice(a, b []byte) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// mapValue maps a live map-value slice into the address space, returning
// its virtual address (what bpf_map_lookup_elem hands back). Re-looking-up
// a value already mapped in this run returns the existing region instead of
// growing the table, so lookup loops do not accrete address-space state.
func (st *execState) mapValue(data []byte) uint64 {
	for i := 0; i < st.nSlots; i++ {
		if sameSlice(st.slot(i), data) {
			return mapValBase + uint64(i)*mapValStep
		}
	}
	base := mapValBase + uint64(st.nSlots)*mapValStep
	st.addSlot(data)
	if len(data) > 0 {
		for extra := (len(data) - 1) / int(mapValStep); extra > 0; extra-- {
			st.addSlot(nil) // continuation slots of a wide value
		}
	}
	return base
}

// access resolves a virtual address range to backing bytes. Region classes
// are disjoint in bits [44,48), so resolution is a single switch on the
// address — no scan, no allocation.
func (st *execState) access(addr uint64, size int, write bool) ([]byte, error) {
	n := uint64(size)
	switch addr >> regionShift {
	case ctxBase >> regionShift:
		if off := addr - ctxBase; off < ctxSize && off+n <= ctxSize {
			return st.ctx[off : off+n], nil
		}
	case packetBase >> regionShift:
		if off := addr - packetBase; off < uint64(len(st.packet)) && off+n <= uint64(len(st.packet)) {
			if write && !st.pktWrite {
				return nil, errReadOnlyWrite
			}
			return st.packet[off : off+n], nil
		}
	case stackBase >> regionShift:
		if off := addr - stackBase; off < StackSize && off+n <= StackSize {
			return st.stack[off : off+n], nil
		}
	case mapValBase >> regionShift:
		if idx := int((addr - mapValBase) / mapValStep); idx < st.nSlots {
			for idx > 0 && st.slot(idx) == nil {
				idx-- // walk back to the head slot of a wide value
			}
			data := st.slot(idx)
			if off := addr - (mapValBase + uint64(idx)*mapValStep); off+n <= uint64(len(data)) {
				return data[off : off+n], nil
			}
		}
	}
	return nil, ErrOutOfBounds
}

func loadUint(b []byte, size Size) uint64 {
	switch size {
	case B:
		return uint64(b[0])
	case H:
		return uint64(binary.LittleEndian.Uint16(b))
	case W:
		return uint64(binary.LittleEndian.Uint32(b))
	default:
		return binary.LittleEndian.Uint64(b)
	}
}

func storeUint(b []byte, size Size, v uint64) {
	switch size {
	case B:
		b[0] = byte(v)
	case H:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case W:
		binary.LittleEndian.PutUint32(b, uint32(v))
	default:
		binary.LittleEndian.PutUint64(b, v)
	}
}

// atomicStripes backs the slow path of atomicAddBytes for unaligned or
// sub-word operands. Striped by address, so even the fallback never
// serializes unrelated counters behind one lock.
var atomicStripes [64]sync.Mutex

// atomicAddBytes implements BPF_XADD semantics: a LOCK-prefixed add on the
// target word. Aligned word/dword operands — the only shapes SPRIGHT's
// metric programs emit, guaranteed by the 8-byte-aligned array-map slab —
// map to real CPU atomics, so concurrent executions (across chains or
// within one) never contend on a shared mutex. Unaligned and byte/half
// operands fall back to an address-striped lock.
func atomicAddBytes(b []byte, size Size, delta uint64) {
	p := unsafe.Pointer(&b[0])
	switch size {
	case DW:
		if uintptr(p)&7 == 0 {
			atomic.AddUint64((*uint64)(p), delta)
			return
		}
	case W:
		if uintptr(p)&3 == 0 {
			atomic.AddUint32((*uint32)(p), uint32(delta))
			return
		}
	}
	mu := &atomicStripes[(uintptr(p)>>3)%uintptr(len(atomicStripes))]
	mu.Lock()
	storeUint(b, size, loadUint(b, size)+delta)
	mu.Unlock()
}

// run interprets the program until exit, error, or budget exhaustion.
func (st *execState) run() (Result, error) {
	return st.runFrom(0)
}

// runFrom interprets the program starting at pc, against the exec state's
// current registers, stack and map-value table. Besides backing run, it is
// the bail-out continuation for compiled programs: when a closure-chain
// block cannot guarantee exact per-instruction budget accounting (the run
// is within one block of MaxRuntimeInsns), the block driver hands the
// machine state back to the interpreter here, which finishes the run with
// the canonical per-instruction semantics.
func (st *execState) runFrom(pc int) (Result, error) {
	insns := st.prog.prog.Insns
	for {
		if st.res.Insns >= MaxRuntimeInsns {
			return st.res, ErrBudget
		}
		if pc < 0 || pc >= len(insns) {
			return st.res, errPCOutOfRange
		}
		in := insns[pc]
		st.res.Insns++
		switch in.Op {
		case OpMovImm:
			st.reg[in.Dst] = uint64(in.Imm)
		case OpMovReg:
			st.reg[in.Dst] = st.reg[in.Src]
		case OpAddImm:
			st.reg[in.Dst] += uint64(in.Imm)
		case OpAddReg:
			st.reg[in.Dst] += st.reg[in.Src]
		case OpSubImm:
			st.reg[in.Dst] -= uint64(in.Imm)
		case OpSubReg:
			st.reg[in.Dst] -= st.reg[in.Src]
		case OpMulImm:
			st.reg[in.Dst] *= uint64(in.Imm)
		case OpMulReg:
			st.reg[in.Dst] *= st.reg[in.Src]
		case OpDivImm:
			st.reg[in.Dst] /= uint64(in.Imm) // imm==0 rejected by verifier
		case OpDivReg:
			if st.reg[in.Src] == 0 {
				return st.res, ErrDivByZero
			}
			st.reg[in.Dst] /= st.reg[in.Src]
		case OpModImm:
			st.reg[in.Dst] %= uint64(in.Imm)
		case OpModReg:
			if st.reg[in.Src] == 0 {
				return st.res, ErrDivByZero
			}
			st.reg[in.Dst] %= st.reg[in.Src]
		case OpAndImm:
			st.reg[in.Dst] &= uint64(in.Imm)
		case OpAndReg:
			st.reg[in.Dst] &= st.reg[in.Src]
		case OpOrImm:
			st.reg[in.Dst] |= uint64(in.Imm)
		case OpOrReg:
			st.reg[in.Dst] |= st.reg[in.Src]
		case OpXorImm:
			st.reg[in.Dst] ^= uint64(in.Imm)
		case OpXorReg:
			st.reg[in.Dst] ^= st.reg[in.Src]
		case OpLshImm:
			st.reg[in.Dst] <<= uint64(in.Imm) & 63
		case OpLshReg:
			st.reg[in.Dst] <<= st.reg[in.Src] & 63
		case OpRshImm:
			st.reg[in.Dst] >>= uint64(in.Imm) & 63
		case OpRshReg:
			st.reg[in.Dst] >>= st.reg[in.Src] & 63
		case OpArshImm:
			st.reg[in.Dst] = uint64(int64(st.reg[in.Dst]) >> (uint64(in.Imm) & 63))
		case OpArshReg:
			st.reg[in.Dst] = uint64(int64(st.reg[in.Dst]) >> (st.reg[in.Src] & 63))
		case OpNeg:
			st.reg[in.Dst] = uint64(-int64(st.reg[in.Dst]))

		case OpLoad:
			b, err := st.access(st.reg[in.Src]+uint64(int64(in.Off)), int(in.Size), false)
			if err != nil {
				return st.res, err
			}
			st.reg[in.Dst] = loadUint(b, in.Size)
		case OpStore:
			b, err := st.access(st.reg[in.Dst]+uint64(int64(in.Off)), int(in.Size), true)
			if err != nil {
				return st.res, err
			}
			storeUint(b, in.Size, st.reg[in.Src])
		case OpStoreImm:
			b, err := st.access(st.reg[in.Dst]+uint64(int64(in.Off)), int(in.Size), true)
			if err != nil {
				return st.res, err
			}
			storeUint(b, in.Size, uint64(in.Imm))
		case OpAtomicAdd:
			b, err := st.access(st.reg[in.Dst]+uint64(int64(in.Off)), int(in.Size), true)
			if err != nil {
				return st.res, err
			}
			atomicAddBytes(b, in.Size, st.reg[in.Src])

		case OpLoadMapFD:
			st.reg[in.Dst] = mapHandleTag | uint64(uint32(in.Imm))

		case OpJa:
			pc += int(in.Off)
		case OpJeqImm:
			if st.reg[in.Dst] == uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJeqReg:
			if st.reg[in.Dst] == st.reg[in.Src] {
				pc += int(in.Off)
			}
		case OpJneImm:
			if st.reg[in.Dst] != uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJneReg:
			if st.reg[in.Dst] != st.reg[in.Src] {
				pc += int(in.Off)
			}
		case OpJgtImm:
			if st.reg[in.Dst] > uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJgtReg:
			if st.reg[in.Dst] > st.reg[in.Src] {
				pc += int(in.Off)
			}
		case OpJgeImm:
			if st.reg[in.Dst] >= uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJgeReg:
			if st.reg[in.Dst] >= st.reg[in.Src] {
				pc += int(in.Off)
			}
		case OpJltImm:
			if st.reg[in.Dst] < uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJltReg:
			if st.reg[in.Dst] < st.reg[in.Src] {
				pc += int(in.Off)
			}
		case OpJleImm:
			if st.reg[in.Dst] <= uint64(in.Imm) {
				pc += int(in.Off)
			}
		case OpJleReg:
			if st.reg[in.Dst] <= st.reg[in.Src] {
				pc += int(in.Off)
			}
		case OpJsgtImm:
			if int64(st.reg[in.Dst]) > in.Imm {
				pc += int(in.Off)
			}
		case OpJsgtReg:
			if int64(st.reg[in.Dst]) > int64(st.reg[in.Src]) {
				pc += int(in.Off)
			}

		case OpCall:
			if err := st.call(HelperID(in.Imm)); err != nil {
				return st.res, err
			}
		case OpExit:
			st.res.Ret = int64(st.reg[R0])
			return st.res, nil
		default:
			return st.res, fmt.Errorf("ebpf: invalid opcode %d at pc %d", in.Op, pc)
		}
		pc++
	}
}

// mapFromHandle resolves a tagged map handle in a register. Programs load
// handles through OpLoadMapFD, whose targets were resolved at Load time
// into the program's map table — the common case costs a short scan of
// that table, no kernel lock.
func (st *execState) mapFromHandle(v uint64) (*Map, error) {
	if v&mapHandleTag != mapHandleTag {
		return nil, ErrBadMapHandle
	}
	fd := int(uint32(v))
	for i := range st.prog.maps {
		if st.prog.maps[i].fd == fd {
			return st.prog.maps[i].m, nil
		}
	}
	m := st.kernel.mapByFD(fd)
	if m == nil {
		return nil, fmt.Errorf("ebpf: no map with fd %d", fd)
	}
	return m, nil
}

func (st *execState) readMem(addr uint64, n int) ([]byte, error) {
	return st.access(addr, n, false)
}
