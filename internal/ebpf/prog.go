package ebpf

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// ProgType declares which hook a program may attach to, mirroring
// bpf_prog_type.
type ProgType int

// Program types used by SPRIGHT.
const (
	ProgTypeXDP   ProgType = iota
	ProgTypeTC             // sched_cls
	ProgTypeSKMsg          // sk_msg (the SPROXY program type)
	ProgTypeSockOps
)

func (t ProgType) String() string {
	switch t {
	case ProgTypeXDP:
		return "xdp"
	case ProgTypeTC:
		return "tc"
	case ProgTypeSKMsg:
		return "sk_msg"
	case ProgTypeSockOps:
		return "sock_ops"
	default:
		return fmt.Sprintf("progtype(%d)", int(t))
	}
}

// XDP verdict codes (enum xdp_action).
const (
	XDPAborted  int64 = 0
	XDPDrop     int64 = 1
	XDPPass     int64 = 2
	XDPTx       int64 = 3
	XDPRedirect int64 = 4
)

// TC verdict codes (subset of tc actions).
const (
	TCActOK       int64 = 0
	TCActShot     int64 = 2
	TCActRedirect int64 = 7
)

// SK_MSG verdict codes.
const (
	SKDrop int64 = 0
	SKPass int64 = 1
)

// Program is an unloaded program: a name, a type and its instructions.
type Program struct {
	Name  string
	Type  ProgType
	Insns []Insn
}

// progMapRef caches a map referenced by a program's OpLoadMapFD
// instructions, resolved once at load time so each execution resolves
// handles from this table instead of taking the kernel registry lock.
type progMapRef struct {
	fd int
	m  *Map
}

// LoadedProgram is a verified program resident in the kernel.
type LoadedProgram struct {
	prog   *Program
	kernel *Kernel
	fd     int
	maps   []progMapRef

	// Compiled forms, built at Load time after verification succeeds.
	// jit is the general closure-chain translation (nil when the program
	// uses an interpreter-only helper; jitReason says why), and fast is a
	// shape-specialized runner when the program matched a recognized
	// SPROXY/EPROXY shape.
	jit       *jitProg
	fast      fastRunner
	jitReason string
}

// FD returns the program's file descriptor.
func (lp *LoadedProgram) FD() int { return lp.fd }

// Name returns the program name.
func (lp *LoadedProgram) Name() string { return lp.prog.Name }

// Type returns the program type.
func (lp *LoadedProgram) Type() ProgType { return lp.prog.Type }

// Len returns the instruction count.
func (lp *LoadedProgram) Len() int { return len(lp.prog.Insns) }

// Engine reports the fastest backend this program can execute on. The
// kernel-level JIT switch (SetJIT) can still force the interpreter at run
// time.
func (lp *LoadedProgram) Engine() EngineKind {
	switch {
	case lp.fast != nil:
		return EngineFast
	case lp.jit != nil:
		return EngineJIT
	default:
		return EngineInterp
	}
}

// FallbackReason explains why a program was not compiled (empty when it
// was).
func (lp *LoadedProgram) FallbackReason() string { return lp.jitReason }

// envBox wraps the Env interface in a struct so atomic.Value sees one
// consistent concrete type across stores of different Env implementations.
type envBox struct{ e Env }

// Kernel is the per-node eBPF subsystem: the registry of maps and loaded
// programs plus the execution engine. One Kernel instance backs one
// simulated worker node.
type Kernel struct {
	mu    sync.RWMutex
	maps  map[int]*Map
	progs map[int]*LoadedProgram
	next  int

	env atomic.Value // envBox

	// stats
	runs      atomic.Uint64
	insnTotal atomic.Uint64

	// per-engine accounting: how many runs executed compiled code vs the
	// interpreter, and how many programs are loaded/compiled. Fallback
	// regressions (a hot program silently dropping to the interpreter)
	// show up here and in /metrics.
	jitRuns       atomic.Uint64
	interpRuns    atomic.Uint64
	loadedProgs   atomic.Int64
	compiledProgs atomic.Int64

	// jitOff disables compiled dispatch kernel-wide, forcing every run
	// through the interpreter — the differential-test oracle switch.
	jitOff atomic.Bool
}

// NewKernel creates an empty eBPF subsystem with a null environment.
func NewKernel() *Kernel {
	k := &Kernel{
		maps:  make(map[int]*Map),
		progs: make(map[int]*LoadedProgram),
		next:  3, // fds 0-2 are taken, as on a real system
	}
	k.env.Store(envBox{nullEnv{}})
	return k
}

// SetEnv installs the host environment used by helpers (time, FIB).
func (k *Kernel) SetEnv(e Env) {
	if e == nil {
		e = nullEnv{}
	}
	k.env.Store(envBox{e})
}

func (k *Kernel) currentEnv() Env {
	return k.env.Load().(envBox).e
}

// CreateMap creates a map and assigns it a file descriptor.
func (k *Kernel) CreateMap(spec MapSpec) (*Map, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	fd := k.next
	m, err := newMap(spec, fd)
	if err != nil {
		return nil, err
	}
	k.next++
	k.maps[fd] = m
	return m, nil
}

func (k *Kernel) mapByFD(fd int) *Map {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.maps[fd]
}

// Load verifies a program and makes it executable. The maps referenced by
// OpLoadMapFD instructions are resolved here, once, into the program's map
// table; executions resolve handles against that table lock-free. After
// verification the program is compiled (closure chains, plus a
// shape-specialized fast path when it matches a recognized SPROXY/EPROXY
// shape); programs the compiler declines keep the interpreter as their
// backend.
func (k *Kernel) Load(p *Program) (*LoadedProgram, error) {
	an, err := k.verify(p)
	if err != nil {
		return nil, fmt.Errorf("load %q: %w", p.Name, err)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	lp := &LoadedProgram{prog: p, kernel: k, fd: k.next}
	for _, in := range p.Insns {
		if in.Op != OpLoadMapFD {
			continue
		}
		fd := int(uint32(in.Imm))
		seen := false
		for _, ref := range lp.maps {
			if ref.fd == fd {
				seen = true
				break
			}
		}
		if !seen {
			lp.maps = append(lp.maps, progMapRef{fd: fd, m: k.maps[fd]})
		}
	}
	lp.jit, lp.jitReason = compile(p, an)
	if lp.jit != nil {
		lp.fast = matchFast(lp)
		k.compiledProgs.Add(1)
	}
	k.loadedProgs.Add(1)
	k.next++
	k.progs[lp.fd] = lp
	return lp, nil
}

// SetJIT enables or disables compiled dispatch kernel-wide. Disabling it
// forces every run through the interpreter — differential tests run the
// same programs on both settings and compare everything observable.
func (k *Kernel) SetJIT(on bool) { k.jitOff.Store(!on) }

// JITEnabled reports whether compiled dispatch is active.
func (k *Kernel) JITEnabled() bool { return !k.jitOff.Load() }

// Stats reports cumulative execution statistics.
func (k *Kernel) Stats() (runs, insns uint64) {
	return k.runs.Load(), k.insnTotal.Load()
}

// EngineStats is the per-engine execution breakdown exported to /metrics.
type EngineStats struct {
	JITRuns    uint64 // runs executed by compiled code (closure chain or fast path)
	InterpRuns uint64 // runs executed by the interpreter
	Loaded     int64  // programs loaded
	Compiled   int64  // programs with a compiled form
}

// EngineStats reports the compiled-vs-interpreted run counters and the
// loaded/compiled program gauges.
func (k *Kernel) EngineStats() EngineStats {
	return EngineStats{
		JITRuns:    k.jitRuns.Load(),
		InterpRuns: k.interpRuns.Load(),
		Loaded:     k.loadedProgs.Load(),
		Compiled:   k.compiledProgs.Load(),
	}
}

func (k *Kernel) noteRun(insns int, jit bool) {
	k.runs.Add(1)
	k.insnTotal.Add(uint64(insns))
	if jit {
		k.jitRuns.Add(1)
	} else {
		k.interpRuns.Add(1)
	}
}

// fastOf returns lp's shape-specialized runner if compiled dispatch is on.
func (k *Kernel) fastOf(lp *LoadedProgram) fastRunner {
	if k.jitOff.Load() {
		return nil
	}
	return lp.fast
}

// execute runs a prepared exec state through the best available engine: the
// compiled closure chain when the program has one and the kernel-level JIT
// switch is on, the interpreter otherwise. A compiled run that bails to the
// interpreter at the budget boundary still counts as a JIT run — dispatch
// chose the compiled engine.
func (k *Kernel) execute(st *execState) (Result, error) {
	if lp := st.prog; lp.jit != nil && !k.jitOff.Load() {
		res, err := lp.jit.run(st)
		k.noteRun(res.Insns, true)
		return res, err
	}
	res, err := st.run()
	k.noteRun(res.Insns, false)
	return res, err
}

// ctx layouts. All context structs start with data/data_end pointers like
// their kernel counterparts, so programs written against one hook parse
// packet bounds identically.
const (
	ctxOffData    = 0  // u64: pointer to start of packet/message data
	ctxOffDataEnd = 8  // u64: pointer past the end of data
	ctxOffIfindex = 16 // u32: ingress ifindex (XDP/TC) or local sock id (SK_MSG)
	ctxOffMark    = 20 // u32: mark (TC only)
	ctxSize       = 24
)

// execPool recycles execState instances across runs. All hot-path storage
// (ctx, stack, map-value table, RunCopy staging buffer) is inline in the
// struct, so a pooled run performs zero heap allocation.
var execPool = sync.Pool{New: func() any { return new(execState) }}

// reset re-arms an exec state for one run over a frame of frameLen bytes.
// The stack and registers are zeroed — the verifier does not track
// stack-slot initialization, so a recycled dirty stack must not leak state
// between runs — and the map-value table is emptied so a previous run's
// regions neither alias nor pin this run's.
func (st *execState) reset(frameLen int, ifindex uint32) {
	st.reg = [numRegisters]uint64{}
	clear(st.stack[:])
	st.res = Result{}
	for i := 0; i < st.nSlots && i < maxInlineMapVals; i++ {
		st.mapVals[i] = nil
	}
	st.nSlots = 0
	st.overflow = st.overflow[:0]

	binary.LittleEndian.PutUint64(st.ctx[ctxOffData:], packetBase)
	binary.LittleEndian.PutUint64(st.ctx[ctxOffDataEnd:], packetBase+uint64(frameLen))
	binary.LittleEndian.PutUint32(st.ctx[ctxOffIfindex:], ifindex)
	binary.LittleEndian.PutUint32(st.ctx[ctxOffMark:], 0)

	st.reg[R1] = ctxBase
	st.reg[R10] = stackBase + StackSize
}

// getExec prepares a pooled execState for one run.
func (k *Kernel) getExec(lp *LoadedProgram, frameLen int, ifindex uint32, env Env) *execState {
	st := execPool.Get().(*execState)
	st.kernel = k
	st.prog = lp
	st.env = env
	if env == nil {
		st.env = k.currentEnv()
	}
	st.reset(frameLen, ifindex)
	return st
}

// putExec returns an execState to the pool, dropping references so pooled
// instances don't pin packets, maps or sockets.
func putExec(st *execState) {
	st.kernel = nil
	st.prog = nil
	st.env = nil
	st.packet = nil
	st.pktWrite = false
	st.msgData = nil
	for i := 0; i < st.nSlots && i < maxInlineMapVals; i++ {
		st.mapVals[i] = nil
	}
	st.overflow = nil
	st.nSlots = 0
	st.jitErr = nil
	st.res = Result{} // drops the RedirectSock reference
	execPool.Put(st)
}

// Run executes a loaded program over data (packet or message bytes) with
// the given ingress ifindex. The program reads and writes data in place.
// It is the common engine behind the hook dispatchers in hooks.go.
func (k *Kernel) Run(lp *LoadedProgram, data []byte, ifindex uint32, env Env) (Result, error) {
	if f := k.fastOf(lp); f != nil {
		res, err := f(data, len(data), ifindex)
		k.noteRun(res.Insns, true)
		return res, err
	}
	st := k.getExec(lp, len(data), ifindex, env)
	st.packet = data
	st.pktWrite = true
	st.msgData = data
	res, err := k.execute(st)
	putExec(st)
	return res, err
}

// RunCopy executes a program over a private copy of data, leaving the
// caller's slice unread after return and unaliased by the VM. Small frames
// (descriptors) are staged in the exec state's inline buffer, so the send
// path does not allocate; larger frames fall back to an explicit copy.
func (k *Kernel) RunCopy(lp *LoadedProgram, data []byte, ifindex uint32, env Env) (Result, error) {
	if f := k.fastOf(lp); f != nil {
		// The fast paths neither write nor retain the frame, but f is an
		// indirect call, so escape analysis must assume it leaks its
		// arguments — running directly over the caller's bytes would heap-
		// allocate stack-backed frames (e.g. the marshaled descriptor in
		// SProxy.Send). Stage small frames through a pooled buffer to keep
		// the send path at zero allocations.
		var res Result
		var err error
		if len(data) <= pktCopySize {
			buf := fastBufPool.Get().(*[pktCopySize]byte)
			n := copy(buf[:], data)
			res, err = f(buf[:n], n, ifindex)
			fastBufPool.Put(buf)
		} else {
			big := append([]byte(nil), data...)
			res, err = f(big, len(big), ifindex)
		}
		k.noteRun(res.Insns, true)
		return res, err
	}
	if len(data) > pktCopySize {
		buf := append([]byte(nil), data...)
		return k.Run(lp, buf, ifindex, env)
	}
	st := k.getExec(lp, len(data), ifindex, env)
	n := copy(st.pktCopy[:], data)
	st.packet = st.pktCopy[:n]
	st.pktWrite = true
	st.msgData = st.packet
	res, err := k.execute(st)
	putExec(st)
	return res, err
}

// RunCopyEach is the batch run entry point: it executes lp once per frame
// of an n-frame burst, staging every frame in the same pooled exec state.
// stage(i, buf) writes frame i into buf (at most pktCopySize bytes; larger
// frames must use RunCopy) and returns its length; each(i, res, err)
// receives that run's outcome and may return false to stop the burst
// early.
//
// Program semantics are identical to n individual RunCopy calls — every
// frame gets fresh registers, a zeroed stack and an empty map-value table,
// so filters and per-frame metric updates execute per descriptor. What the
// batch amortizes is the per-run setup around the program: one exec-state
// pool round-trip and one context layout for the burst instead of per
// frame. This is the entry point SPROXY's SendBatch drives.
func (k *Kernel) RunCopyEach(lp *LoadedProgram, ifindex uint32, env Env, n int,
	stage func(i int, buf []byte) int, each func(i int, res Result, err error) bool) {
	if n <= 0 {
		return
	}
	st := execPool.Get().(*execState)
	st.kernel = k
	st.prog = lp
	st.env = env
	if env == nil {
		st.env = k.currentEnv()
	}
	if f := k.fastOf(lp); f != nil {
		// Shape-specialized burst: the pooled exec state is kept only for
		// its inline staging buffer (a local array would escape through
		// the stage callback and allocate per batch); no per-frame reset.
		for i := 0; i < n; i++ {
			ln := stage(i, st.pktCopy[:])
			if ln > pktCopySize {
				ln = pktCopySize
			}
			res, err := f(st.pktCopy[:ln], ln, ifindex)
			k.noteRun(res.Insns, true)
			if !each(i, res, err) {
				break
			}
		}
		putExec(st)
		return
	}
	for i := 0; i < n; i++ {
		ln := stage(i, st.pktCopy[:])
		if ln > pktCopySize {
			ln = pktCopySize
		}
		st.reset(ln, ifindex)
		st.packet = st.pktCopy[:ln]
		st.pktWrite = true
		st.msgData = st.packet
		res, err := k.execute(st)
		if !each(i, res, err) {
			break
		}
	}
	putExec(st)
}

// RunMeta executes a program over a synthetic frame of frameLen bytes whose
// contents are inaccessible: ctx data/data_end describe the frame bounds,
// but any dereference of packet memory faults. Metrics-only programs (the
// EPROXY monitor reads just data/data_end from the ctx) run this way
// without the caller materializing a frame at all.
func (k *Kernel) RunMeta(lp *LoadedProgram, frameLen int, ifindex uint32, env Env) (Result, error) {
	if f := k.fastOf(lp); f != nil {
		res, err := f(nil, frameLen, ifindex)
		k.noteRun(res.Insns, true)
		return res, err
	}
	st := k.getExec(lp, frameLen, ifindex, env)
	res, err := k.execute(st)
	putExec(st)
	return res, err
}
