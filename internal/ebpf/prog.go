package ebpf

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// ProgType declares which hook a program may attach to, mirroring
// bpf_prog_type.
type ProgType int

// Program types used by SPRIGHT.
const (
	ProgTypeXDP   ProgType = iota
	ProgTypeTC             // sched_cls
	ProgTypeSKMsg          // sk_msg (the SPROXY program type)
	ProgTypeSockOps
)

func (t ProgType) String() string {
	switch t {
	case ProgTypeXDP:
		return "xdp"
	case ProgTypeTC:
		return "tc"
	case ProgTypeSKMsg:
		return "sk_msg"
	case ProgTypeSockOps:
		return "sock_ops"
	default:
		return fmt.Sprintf("progtype(%d)", int(t))
	}
}

// XDP verdict codes (enum xdp_action).
const (
	XDPAborted  int64 = 0
	XDPDrop     int64 = 1
	XDPPass     int64 = 2
	XDPTx       int64 = 3
	XDPRedirect int64 = 4
)

// TC verdict codes (subset of tc actions).
const (
	TCActOK       int64 = 0
	TCActShot     int64 = 2
	TCActRedirect int64 = 7
)

// SK_MSG verdict codes.
const (
	SKDrop int64 = 0
	SKPass int64 = 1
)

// Program is an unloaded program: a name, a type and its instructions.
type Program struct {
	Name  string
	Type  ProgType
	Insns []Insn
}

// progMapRef caches a map referenced by a program's OpLoadMapFD
// instructions, resolved once at load time so each execution resolves
// handles from this table instead of taking the kernel registry lock.
type progMapRef struct {
	fd int
	m  *Map
}

// LoadedProgram is a verified program resident in the kernel.
type LoadedProgram struct {
	prog   *Program
	kernel *Kernel
	fd     int
	maps   []progMapRef
}

// FD returns the program's file descriptor.
func (lp *LoadedProgram) FD() int { return lp.fd }

// Name returns the program name.
func (lp *LoadedProgram) Name() string { return lp.prog.Name }

// Type returns the program type.
func (lp *LoadedProgram) Type() ProgType { return lp.prog.Type }

// Len returns the instruction count.
func (lp *LoadedProgram) Len() int { return len(lp.prog.Insns) }

// envBox wraps the Env interface in a struct so atomic.Value sees one
// consistent concrete type across stores of different Env implementations.
type envBox struct{ e Env }

// Kernel is the per-node eBPF subsystem: the registry of maps and loaded
// programs plus the execution engine. One Kernel instance backs one
// simulated worker node.
type Kernel struct {
	mu    sync.RWMutex
	maps  map[int]*Map
	progs map[int]*LoadedProgram
	next  int

	env atomic.Value // envBox

	// stats
	runs      atomic.Uint64
	insnTotal atomic.Uint64
}

// NewKernel creates an empty eBPF subsystem with a null environment.
func NewKernel() *Kernel {
	k := &Kernel{
		maps:  make(map[int]*Map),
		progs: make(map[int]*LoadedProgram),
		next:  3, // fds 0-2 are taken, as on a real system
	}
	k.env.Store(envBox{nullEnv{}})
	return k
}

// SetEnv installs the host environment used by helpers (time, FIB).
func (k *Kernel) SetEnv(e Env) {
	if e == nil {
		e = nullEnv{}
	}
	k.env.Store(envBox{e})
}

func (k *Kernel) currentEnv() Env {
	return k.env.Load().(envBox).e
}

// CreateMap creates a map and assigns it a file descriptor.
func (k *Kernel) CreateMap(spec MapSpec) (*Map, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	fd := k.next
	m, err := newMap(spec, fd)
	if err != nil {
		return nil, err
	}
	k.next++
	k.maps[fd] = m
	return m, nil
}

func (k *Kernel) mapByFD(fd int) *Map {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.maps[fd]
}

// Load verifies a program and makes it executable. The maps referenced by
// OpLoadMapFD instructions are resolved here, once, into the program's map
// table; executions resolve handles against that table lock-free.
func (k *Kernel) Load(p *Program) (*LoadedProgram, error) {
	if err := k.verify(p); err != nil {
		return nil, fmt.Errorf("load %q: %w", p.Name, err)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	lp := &LoadedProgram{prog: p, kernel: k, fd: k.next}
	for _, in := range p.Insns {
		if in.Op != OpLoadMapFD {
			continue
		}
		fd := int(uint32(in.Imm))
		seen := false
		for _, ref := range lp.maps {
			if ref.fd == fd {
				seen = true
				break
			}
		}
		if !seen {
			lp.maps = append(lp.maps, progMapRef{fd: fd, m: k.maps[fd]})
		}
	}
	k.next++
	k.progs[lp.fd] = lp
	return lp, nil
}

// Stats reports cumulative execution statistics.
func (k *Kernel) Stats() (runs, insns uint64) {
	return k.runs.Load(), k.insnTotal.Load()
}

func (k *Kernel) noteRun(insns int) {
	k.runs.Add(1)
	k.insnTotal.Add(uint64(insns))
}

// ctx layouts. All context structs start with data/data_end pointers like
// their kernel counterparts, so programs written against one hook parse
// packet bounds identically.
const (
	ctxOffData    = 0  // u64: pointer to start of packet/message data
	ctxOffDataEnd = 8  // u64: pointer past the end of data
	ctxOffIfindex = 16 // u32: ingress ifindex (XDP/TC) or local sock id (SK_MSG)
	ctxOffMark    = 20 // u32: mark (TC only)
	ctxSize       = 24
)

// execPool recycles execState instances across runs. All hot-path storage
// (ctx, stack, map-value table, RunCopy staging buffer) is inline in the
// struct, so a pooled run performs zero heap allocation.
var execPool = sync.Pool{New: func() any { return new(execState) }}

// reset re-arms an exec state for one run over a frame of frameLen bytes.
// The stack and registers are zeroed — the verifier does not track
// stack-slot initialization, so a recycled dirty stack must not leak state
// between runs — and the map-value table is emptied so a previous run's
// regions neither alias nor pin this run's.
func (st *execState) reset(frameLen int, ifindex uint32) {
	st.reg = [numRegisters]uint64{}
	clear(st.stack[:])
	st.res = Result{}
	for i := 0; i < st.nSlots && i < maxInlineMapVals; i++ {
		st.mapVals[i] = nil
	}
	st.nSlots = 0
	st.overflow = st.overflow[:0]

	binary.LittleEndian.PutUint64(st.ctx[ctxOffData:], packetBase)
	binary.LittleEndian.PutUint64(st.ctx[ctxOffDataEnd:], packetBase+uint64(frameLen))
	binary.LittleEndian.PutUint32(st.ctx[ctxOffIfindex:], ifindex)
	binary.LittleEndian.PutUint32(st.ctx[ctxOffMark:], 0)

	st.reg[R1] = ctxBase
	st.reg[R10] = stackBase + StackSize
}

// getExec prepares a pooled execState for one run.
func (k *Kernel) getExec(lp *LoadedProgram, frameLen int, ifindex uint32, env Env) *execState {
	st := execPool.Get().(*execState)
	st.kernel = k
	st.prog = lp
	st.env = env
	if env == nil {
		st.env = k.currentEnv()
	}
	st.reset(frameLen, ifindex)
	return st
}

// putExec returns an execState to the pool, dropping references so pooled
// instances don't pin packets, maps or sockets.
func putExec(st *execState) {
	st.kernel = nil
	st.prog = nil
	st.env = nil
	st.packet = nil
	st.pktWrite = false
	st.msgData = nil
	for i := 0; i < st.nSlots && i < maxInlineMapVals; i++ {
		st.mapVals[i] = nil
	}
	st.overflow = nil
	st.nSlots = 0
	st.res = Result{} // drops the RedirectSock reference
	execPool.Put(st)
}

// Run executes a loaded program over data (packet or message bytes) with
// the given ingress ifindex. The program reads and writes data in place.
// It is the common engine behind the hook dispatchers in hooks.go.
func (k *Kernel) Run(lp *LoadedProgram, data []byte, ifindex uint32, env Env) (Result, error) {
	st := k.getExec(lp, len(data), ifindex, env)
	st.packet = data
	st.pktWrite = true
	st.msgData = data
	res, err := st.run()
	k.noteRun(res.Insns)
	putExec(st)
	return res, err
}

// RunCopy executes a program over a private copy of data, leaving the
// caller's slice unread after return and unaliased by the VM. Small frames
// (descriptors) are staged in the exec state's inline buffer, so the send
// path does not allocate; larger frames fall back to an explicit copy.
func (k *Kernel) RunCopy(lp *LoadedProgram, data []byte, ifindex uint32, env Env) (Result, error) {
	if len(data) > pktCopySize {
		buf := append([]byte(nil), data...)
		return k.Run(lp, buf, ifindex, env)
	}
	st := k.getExec(lp, len(data), ifindex, env)
	n := copy(st.pktCopy[:], data)
	st.packet = st.pktCopy[:n]
	st.pktWrite = true
	st.msgData = st.packet
	res, err := st.run()
	k.noteRun(res.Insns)
	putExec(st)
	return res, err
}

// RunCopyEach is the batch run entry point: it executes lp once per frame
// of an n-frame burst, staging every frame in the same pooled exec state.
// stage(i, buf) writes frame i into buf (at most pktCopySize bytes; larger
// frames must use RunCopy) and returns its length; each(i, res, err)
// receives that run's outcome and may return false to stop the burst
// early.
//
// Program semantics are identical to n individual RunCopy calls — every
// frame gets fresh registers, a zeroed stack and an empty map-value table,
// so filters and per-frame metric updates execute per descriptor. What the
// batch amortizes is the per-run setup around the program: one exec-state
// pool round-trip and one context layout for the burst instead of per
// frame. This is the entry point SPROXY's SendBatch drives.
func (k *Kernel) RunCopyEach(lp *LoadedProgram, ifindex uint32, env Env, n int,
	stage func(i int, buf []byte) int, each func(i int, res Result, err error) bool) {
	if n <= 0 {
		return
	}
	st := execPool.Get().(*execState)
	st.kernel = k
	st.prog = lp
	st.env = env
	if env == nil {
		st.env = k.currentEnv()
	}
	for i := 0; i < n; i++ {
		ln := stage(i, st.pktCopy[:])
		if ln > pktCopySize {
			ln = pktCopySize
		}
		st.reset(ln, ifindex)
		st.packet = st.pktCopy[:ln]
		st.pktWrite = true
		st.msgData = st.packet
		res, err := st.run()
		k.noteRun(res.Insns)
		if !each(i, res, err) {
			break
		}
	}
	putExec(st)
}

// RunMeta executes a program over a synthetic frame of frameLen bytes whose
// contents are inaccessible: ctx data/data_end describe the frame bounds,
// but any dereference of packet memory faults. Metrics-only programs (the
// EPROXY monitor reads just data/data_end from the ctx) run this way
// without the caller materializing a frame at all.
func (k *Kernel) RunMeta(lp *LoadedProgram, frameLen int, ifindex uint32, env Env) (Result, error) {
	st := k.getExec(lp, frameLen, ifindex, env)
	res, err := st.run()
	k.noteRun(res.Insns)
	putExec(st)
	return res, err
}
