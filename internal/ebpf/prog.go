package ebpf

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// ProgType declares which hook a program may attach to, mirroring
// bpf_prog_type.
type ProgType int

// Program types used by SPRIGHT.
const (
	ProgTypeXDP ProgType = iota
	ProgTypeTC            // sched_cls
	ProgTypeSKMsg         // sk_msg (the SPROXY program type)
	ProgTypeSockOps
)

func (t ProgType) String() string {
	switch t {
	case ProgTypeXDP:
		return "xdp"
	case ProgTypeTC:
		return "tc"
	case ProgTypeSKMsg:
		return "sk_msg"
	case ProgTypeSockOps:
		return "sock_ops"
	default:
		return fmt.Sprintf("progtype(%d)", int(t))
	}
}

// XDP verdict codes (enum xdp_action).
const (
	XDPAborted  int64 = 0
	XDPDrop     int64 = 1
	XDPPass     int64 = 2
	XDPTx       int64 = 3
	XDPRedirect int64 = 4
)

// TC verdict codes (subset of tc actions).
const (
	TCActOK       int64 = 0
	TCActShot     int64 = 2
	TCActRedirect int64 = 7
)

// SK_MSG verdict codes.
const (
	SKDrop int64 = 0
	SKPass int64 = 1
)

// Program is an unloaded program: a name, a type and its instructions.
type Program struct {
	Name  string
	Type  ProgType
	Insns []Insn
}

// LoadedProgram is a verified program resident in the kernel.
type LoadedProgram struct {
	prog   *Program
	kernel *Kernel
	fd     int
}

// FD returns the program's file descriptor.
func (lp *LoadedProgram) FD() int { return lp.fd }

// Name returns the program name.
func (lp *LoadedProgram) Name() string { return lp.prog.Name }

// Type returns the program type.
func (lp *LoadedProgram) Type() ProgType { return lp.prog.Type }

// Len returns the instruction count.
func (lp *LoadedProgram) Len() int { return len(lp.prog.Insns) }

// Kernel is the per-node eBPF subsystem: the registry of maps and loaded
// programs plus the execution engine. One Kernel instance backs one
// simulated worker node.
type Kernel struct {
	mu    sync.RWMutex
	maps  map[int]*Map
	progs map[int]*LoadedProgram
	next  int

	env Env

	// stats
	runs      uint64
	insnTotal uint64
}

// NewKernel creates an empty eBPF subsystem with a null environment.
func NewKernel() *Kernel {
	return &Kernel{
		maps:  make(map[int]*Map),
		progs: make(map[int]*LoadedProgram),
		next:  3, // fds 0-2 are taken, as on a real system
		env:   nullEnv{},
	}
}

// SetEnv installs the host environment used by helpers (time, FIB).
func (k *Kernel) SetEnv(e Env) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if e == nil {
		e = nullEnv{}
	}
	k.env = e
}

func (k *Kernel) currentEnv() Env {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.env
}

// CreateMap creates a map and assigns it a file descriptor.
func (k *Kernel) CreateMap(spec MapSpec) (*Map, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	fd := k.next
	m, err := newMap(spec, fd)
	if err != nil {
		return nil, err
	}
	k.next++
	k.maps[fd] = m
	return m, nil
}

func (k *Kernel) mapByFD(fd int) *Map {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.maps[fd]
}

// Load verifies a program and makes it executable.
func (k *Kernel) Load(p *Program) (*LoadedProgram, error) {
	if err := k.verify(p); err != nil {
		return nil, fmt.Errorf("load %q: %w", p.Name, err)
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	lp := &LoadedProgram{prog: p, kernel: k, fd: k.next}
	k.next++
	k.progs[lp.fd] = lp
	return lp, nil
}

// Stats reports cumulative execution statistics.
func (k *Kernel) Stats() (runs, insns uint64) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.runs, k.insnTotal
}

func (k *Kernel) noteRun(insns int) {
	k.mu.Lock()
	k.runs++
	k.insnTotal += uint64(insns)
	k.mu.Unlock()
}

// ctx layouts. All context structs start with data/data_end pointers like
// their kernel counterparts, so programs written against one hook parse
// packet bounds identically.
const (
	ctxOffData    = 0  // u64: pointer to start of packet/message data
	ctxOffDataEnd = 8  // u64: pointer past the end of data
	ctxOffIfindex = 16 // u32: ingress ifindex (XDP/TC) or local sock id (SK_MSG)
	ctxOffMark    = 20 // u32: mark (TC only)
	ctxSize       = 24
)

// buildCtx assembles the context struct and address space for a run.
func (k *Kernel) newExec(lp *LoadedProgram, data []byte, ifindex uint32, env Env) *execState {
	st := &execState{kernel: k, prog: lp, env: env}
	if env == nil {
		st.env = k.currentEnv()
	}

	ctx := make([]byte, ctxSize)
	binary.LittleEndian.PutUint64(ctx[ctxOffData:], packetBase)
	binary.LittleEndian.PutUint64(ctx[ctxOffDataEnd:], packetBase+uint64(len(data)))
	binary.LittleEndian.PutUint32(ctx[ctxOffIfindex:], ifindex)

	stack := make([]byte, StackSize)
	st.space.add(ctxBase, ctx, true)
	st.space.add(packetBase, data, true)
	st.space.add(stackBase, stack, true)

	st.reg[R1] = ctxBase
	st.reg[R10] = stackBase + StackSize
	st.msgData = data
	return st
}

// Run executes a loaded program over data (packet or message bytes) with
// the given ingress ifindex. It is the common engine behind the hook
// dispatchers in hooks.go.
func (k *Kernel) Run(lp *LoadedProgram, data []byte, ifindex uint32, env Env) (Result, error) {
	st := k.newExec(lp, data, ifindex, env)
	res, err := st.run()
	k.noteRun(res.Insns)
	return res, err
}
