package ebpf

import (
	"errors"
	"testing"
)

// loadAndRun is a test convenience: load prog in k and run over data.
func loadAndRun(t *testing.T, k *Kernel, p *Program, data []byte) (Result, error) {
	t.Helper()
	lp, err := k.Load(p)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return k.Run(lp, data, 0, nil)
}

func retProg(insns ...Insn) *Program {
	return &Program{Name: "test", Type: ProgTypeXDP, Insns: insns}
}

func TestVMMovAndExit(t *testing.T) {
	k := NewKernel()
	res, err := loadAndRun(t, k, retProg(Mov64Imm(R0, 42), Exit()), nil)
	if err != nil || res.Ret != 42 {
		t.Fatalf("got %d, %v; want 42", res.Ret, err)
	}
}

func TestVMArithmetic(t *testing.T) {
	cases := []struct {
		name string
		body []Insn
		want int64
	}{
		{"add", []Insn{Mov64Imm(R0, 40), Add64Imm(R0, 2)}, 42},
		{"add-reg", []Insn{Mov64Imm(R0, 40), Mov64Imm(R1, 2), Add64Reg(R0, R1)}, 42},
		{"sub", []Insn{Mov64Imm(R0, 50), Sub64Imm(R0, 8)}, 42},
		{"mul", []Insn{Mov64Imm(R0, 21), Mul64Imm(R0, 2)}, 42},
		{"div", []Insn{Mov64Imm(R0, 84), {Op: OpDivImm, Dst: R0, Imm: 2}}, 42},
		{"mod", []Insn{Mov64Imm(R0, 142), {Op: OpModImm, Dst: R0, Imm: 100}}, 42},
		{"and", []Insn{Mov64Imm(R0, 0xff), And64Imm(R0, 0x2a)}, 42},
		{"or", []Insn{Mov64Imm(R0, 0x20), {Op: OpOrImm, Dst: R0, Imm: 0x0a}}, 42},
		{"xor", []Insn{Mov64Imm(R0, 0x6b), {Op: OpXorImm, Dst: R0, Imm: 0x41}}, 42},
		{"lsh", []Insn{Mov64Imm(R0, 21), Lsh64Imm(R0, 1)}, 42},
		{"rsh", []Insn{Mov64Imm(R0, 84), Rsh64Imm(R0, 1)}, 42},
		{"arsh", []Insn{Mov64Imm(R0, -84), {Op: OpArshImm, Dst: R0, Imm: 1}}, -42},
		{"neg", []Insn{Mov64Imm(R0, -42), {Op: OpNeg, Dst: R0}}, 42},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k := NewKernel()
			res, err := loadAndRun(t, k, retProg(append(c.body, Exit())...), nil)
			if err != nil || res.Ret != c.want {
				t.Fatalf("got %d, %v; want %d", res.Ret, err, c.want)
			}
		})
	}
}

func TestVMConditionalJumps(t *testing.T) {
	// if r1(ctx ptr) != 0 then 1 else 2 — via a jump over an assignment.
	k := NewKernel()
	p := retProg(
		Mov64Imm(R0, 1),
		Mov64Imm(R2, 10),
		JgtImm(R2, 5, 1), // skip next insn
		Mov64Imm(R0, 2),
		Exit(),
	)
	res, err := loadAndRun(t, k, p, nil)
	if err != nil || res.Ret != 1 {
		t.Fatalf("taken branch: got %d, %v", res.Ret, err)
	}

	p2 := retProg(
		Mov64Imm(R0, 1),
		Mov64Imm(R2, 3),
		JgtImm(R2, 5, 1),
		Mov64Imm(R0, 2),
		Exit(),
	)
	res, err = loadAndRun(t, NewKernel(), p2, nil)
	if err != nil || res.Ret != 2 {
		t.Fatalf("fall-through branch: got %d, %v", res.Ret, err)
	}
}

func TestVMBoundedLoop(t *testing.T) {
	// r0 = sum(1..10) using a backward jump (verifier allows; runtime
	// budget bounds it).
	k := NewKernel()
	p := retProg(
		Mov64Imm(R0, 0),
		Mov64Imm(R2, 10),
		// loop: r0 += r2; r2 -= 1; if r2 != 0 goto loop
		Add64Reg(R0, R2),
		Sub64Imm(R2, 1),
		JneImm(R2, 0, -3),
		Exit(),
	)
	res, err := loadAndRun(t, k, p, nil)
	if err != nil || res.Ret != 55 {
		t.Fatalf("got %d, %v; want 55", res.Ret, err)
	}
}

func TestVMInfiniteLoopHitsBudget(t *testing.T) {
	k := NewKernel()
	// JeqImm always takes the backward branch at runtime, but the
	// verifier sees a reachable exit on the fall-through path.
	p := retProg(
		Mov64Imm(R0, 0),
		JeqImm(R0, 0, -2), // target = pc+1-2 = 0: spins forever
		Exit(),
	)
	_, err := loadAndRun(t, k, p, nil)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestVMDivByZeroRegister(t *testing.T) {
	k := NewKernel()
	p := retProg(
		Mov64Imm(R0, 10),
		Mov64Imm(R2, 0),
		Insn{Op: OpDivReg, Dst: R0, Src: R2},
		Exit(),
	)
	_, err := loadAndRun(t, k, p, nil)
	if !errors.Is(err, ErrDivByZero) {
		t.Fatalf("want ErrDivByZero, got %v", err)
	}
}

func TestVMStackReadWrite(t *testing.T) {
	k := NewKernel()
	p := retProg(
		Mov64Imm(R2, 0x1234),
		StoreMem(R10, -8, R2, DW),
		LoadMem(R0, R10, -8, DW),
		Exit(),
	)
	res, err := loadAndRun(t, k, p, nil)
	if err != nil || res.Ret != 0x1234 {
		t.Fatalf("got %#x, %v", res.Ret, err)
	}
}

func TestVMStackOverflowCaught(t *testing.T) {
	k := NewKernel()
	p := retProg(
		Mov64Imm(R2, 1),
		StoreMem(R10, -(StackSize+8), R2, DW),
		Mov64Imm(R0, 0),
		Exit(),
	)
	_, err := loadAndRun(t, k, p, nil)
	if !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("want ErrOutOfBounds, got %v", err)
	}
}

func TestVMStackOverrunAboveFP(t *testing.T) {
	k := NewKernel()
	p := retProg(
		Mov64Imm(R2, 1),
		StoreMem(R10, 0, R2, DW), // at/above fp is out of the stack region
		Mov64Imm(R0, 0),
		Exit(),
	)
	if _, err := loadAndRun(t, k, p, nil); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("want ErrOutOfBounds, got %v", err)
	}
}

func TestVMPacketAccessViaCtx(t *testing.T) {
	// Read first byte of the packet through the ctx data pointer, with a
	// proper bounds check against data_end.
	k := NewKernel()
	p := retProg(
		LoadMem(R2, R1, ctxOffData, DW),    // r2 = data
		LoadMem(R3, R1, ctxOffDataEnd, DW), // r3 = data_end
		Mov64Reg(R4, R2),
		Add64Imm(R4, 1),
		JgtReg(R4, R3, 2), // if data+1 > data_end: out of bounds -> ret 0
		LoadMem(R0, R2, 0, B),
		Exit(),
		Mov64Imm(R0, 0),
		Exit(),
	)
	res, err := loadAndRun(t, k, p, []byte{0x7f, 0x02})
	if err != nil || res.Ret != 0x7f {
		t.Fatalf("got %#x, %v; want 0x7f", res.Ret, err)
	}
	// empty packet takes the bounds-check branch
	res, err = loadAndRun(t, NewKernel(), p, nil)
	if err != nil || res.Ret != 0 {
		t.Fatalf("empty packet: got %d, %v; want 0", res.Ret, err)
	}
}

func TestVMPacketOutOfBoundsRead(t *testing.T) {
	k := NewKernel()
	p := retProg(
		LoadMem(R2, R1, ctxOffData, DW),
		LoadMem(R0, R2, 100, DW), // way past a 2-byte packet
		Exit(),
	)
	if _, err := loadAndRun(t, k, p, []byte{1, 2}); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("want ErrOutOfBounds, got %v", err)
	}
}

func TestVMCtxWritable(t *testing.T) {
	// TC programs may write the mark field.
	k := NewKernel()
	p := &Program{Name: "mark", Type: ProgTypeTC, Insns: []Insn{
		StoreImm(R1, ctxOffMark, 7, W),
		LoadMem(R0, R1, ctxOffMark, W),
		Exit(),
	}}
	lp, err := k.Load(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := k.Run(lp, nil, 0, nil)
	if err != nil || res.Ret != 7 {
		t.Fatalf("got %d, %v", res.Ret, err)
	}
}

func TestVMIfindexInCtx(t *testing.T) {
	k := NewKernel()
	p := retProg(
		LoadMem(R0, R1, ctxOffIfindex, W),
		Exit(),
	)
	lp, err := k.Load(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := k.Run(lp, nil, 17, nil)
	if err != nil || res.Ret != 17 {
		t.Fatalf("ifindex: got %d, %v; want 17", res.Ret, err)
	}
}

func TestVMAtomicAdd(t *testing.T) {
	k := NewKernel()
	p := retProg(
		Mov64Imm(R2, 5),
		StoreMem(R10, -8, R2, DW),
		Mov64Imm(R3, 37),
		AtomicAdd(R10, -8, R3, DW),
		LoadMem(R0, R10, -8, DW),
		Exit(),
	)
	res, err := loadAndRun(t, k, p, nil)
	if err != nil || res.Ret != 42 {
		t.Fatalf("got %d, %v; want 42", res.Ret, err)
	}
}

func TestKernelStatsAccumulate(t *testing.T) {
	k := NewKernel()
	lp, err := k.Load(retProg(Mov64Imm(R0, 0), Exit()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := k.Run(lp, nil, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	runs, insns := k.Stats()
	if runs != 3 || insns != 6 {
		t.Fatalf("stats runs=%d insns=%d, want 3,6", runs, insns)
	}
}
