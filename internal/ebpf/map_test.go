package ebpf

import (
	"errors"
	"testing"
	"testing/quick"
)

func newTestMap(t *testing.T, spec MapSpec) (*Kernel, *Map) {
	t.Helper()
	k := NewKernel()
	m, err := k.CreateMap(spec)
	if err != nil {
		t.Fatal(err)
	}
	return k, m
}

func TestArrayMapLookupUpdate(t *testing.T) {
	_, m := newTestMap(t, MapSpec{Name: "a", Type: MapTypeArray, KeySize: 4, ValueSize: 8, MaxEntries: 4})
	if err := m.Update(U32Key(2), U64Value(99)); err != nil {
		t.Fatal(err)
	}
	v, err := m.Lookup(U32Key(2))
	if err != nil || U64FromValue(v) != 99 {
		t.Fatalf("got %v, %v", v, err)
	}
	// array maps are pre-allocated: lookup of an untouched index yields zero
	v, err = m.Lookup(U32Key(0))
	if err != nil || U64FromValue(v) != 0 {
		t.Fatalf("untouched index: got %v, %v", v, err)
	}
}

func TestArrayMapOutOfRange(t *testing.T) {
	_, m := newTestMap(t, MapSpec{Name: "a", Type: MapTypeArray, KeySize: 4, ValueSize: 8, MaxEntries: 4})
	if _, err := m.Lookup(U32Key(4)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("want ErrKeyNotFound, got %v", err)
	}
	if err := m.Update(U32Key(4), U64Value(1)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("want ErrKeyNotFound, got %v", err)
	}
}

func TestArrayMapRequiresU32Keys(t *testing.T) {
	k := NewKernel()
	if _, err := k.CreateMap(MapSpec{Name: "a", Type: MapTypeArray, KeySize: 8, ValueSize: 8, MaxEntries: 1}); err == nil {
		t.Fatal("array map with non-4-byte keys must be rejected")
	}
}

func TestArrayMapDeleteZeroes(t *testing.T) {
	_, m := newTestMap(t, MapSpec{Name: "a", Type: MapTypeArray, KeySize: 4, ValueSize: 8, MaxEntries: 2})
	m.Update(U32Key(1), U64Value(7))
	if err := m.Delete(U32Key(1)); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Lookup(U32Key(1))
	if U64FromValue(v) != 0 {
		t.Fatal("delete on array map must zero the slot")
	}
}

func TestHashMapCRUD(t *testing.T) {
	_, m := newTestMap(t, MapSpec{Name: "h", Type: MapTypeHash, KeySize: 4, ValueSize: 8, MaxEntries: 2})
	if _, err := m.Lookup(U32Key(1)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("want ErrKeyNotFound, got %v", err)
	}
	if err := m.Update(U32Key(1), U64Value(11)); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(U32Key(2), U64Value(22)); err != nil {
		t.Fatal(err)
	}
	if err := m.Update(U32Key(3), U64Value(33)); !errors.Is(err, ErrMapFull) {
		t.Fatalf("want ErrMapFull, got %v", err)
	}
	// overwrite within capacity is fine
	if err := m.Update(U32Key(1), U64Value(111)); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(U32Key(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(U32Key(1)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("double delete: want ErrKeyNotFound, got %v", err)
	}
	if m.Entries() != 1 {
		t.Fatalf("entries=%d want 1", m.Entries())
	}
}

func TestHashMapKeyValueSizeEnforced(t *testing.T) {
	_, m := newTestMap(t, MapSpec{Name: "h", Type: MapTypeHash, KeySize: 4, ValueSize: 8, MaxEntries: 4})
	if err := m.Update([]byte{1}, U64Value(1)); !errors.Is(err, ErrBadKey) {
		t.Fatalf("want ErrBadKey, got %v", err)
	}
	if err := m.Update(U32Key(1), []byte{1}); !errors.Is(err, ErrBadValue) {
		t.Fatalf("want ErrBadValue, got %v", err)
	}
}

func TestMapLookupReturnsCopy(t *testing.T) {
	_, m := newTestMap(t, MapSpec{Name: "h", Type: MapTypeHash, KeySize: 4, ValueSize: 8, MaxEntries: 4})
	m.Update(U32Key(1), U64Value(5))
	v, _ := m.Lookup(U32Key(1))
	v[0] = 0xFF
	v2, _ := m.Lookup(U32Key(1))
	if U64FromValue(v2) != 5 {
		t.Fatal("Lookup must return a copy")
	}
}

func TestMapLookupRefAliases(t *testing.T) {
	_, m := newTestMap(t, MapSpec{Name: "h", Type: MapTypeHash, KeySize: 4, ValueSize: 8, MaxEntries: 4})
	m.Update(U32Key(1), U64Value(5))
	ref, err := m.LookupRef(U32Key(1))
	if err != nil {
		t.Fatal(err)
	}
	ref[0] = 42
	v, _ := m.Lookup(U32Key(1))
	if v[0] != 42 {
		t.Fatal("LookupRef must alias the stored value (kernel pointer semantics)")
	}
}

type fakeSock struct {
	id   uint32
	got  [][]byte
	fail error
}

func (f *fakeSock) DeliverDescriptor(b []byte) error {
	cp := make([]byte, len(b))
	copy(cp, b)
	f.got = append(f.got, cp)
	return f.fail
}
func (f *fakeSock) SockID() uint32 { return f.id }

func TestSockMapUpdateLookup(t *testing.T) {
	_, m := newTestMap(t, MapSpec{Name: "s", Type: MapTypeSockMap, KeySize: 4, ValueSize: 4, MaxEntries: 2})
	s1 := &fakeSock{id: 1}
	if err := m.UpdateSock(10, s1); err != nil {
		t.Fatal(err)
	}
	got, err := m.LookupSock(10)
	if err != nil || got.SockID() != 1 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := m.LookupSock(11); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("want ErrKeyNotFound, got %v", err)
	}
}

func TestSockMapCapacity(t *testing.T) {
	_, m := newTestMap(t, MapSpec{Name: "s", Type: MapTypeSockMap, KeySize: 4, ValueSize: 4, MaxEntries: 1})
	m.UpdateSock(1, &fakeSock{id: 1})
	if err := m.UpdateSock(2, &fakeSock{id: 2}); !errors.Is(err, ErrMapFull) {
		t.Fatalf("want ErrMapFull, got %v", err)
	}
	// replacement of an existing key is allowed at capacity
	if err := m.UpdateSock(1, &fakeSock{id: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestSockMapDelete(t *testing.T) {
	_, m := newTestMap(t, MapSpec{Name: "s", Type: MapTypeSockMap, KeySize: 4, ValueSize: 4, MaxEntries: 2})
	m.UpdateSock(1, &fakeSock{id: 1})
	if err := m.Delete(U32Key(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.LookupSock(1); !errors.Is(err, ErrKeyNotFound) {
		t.Fatal("deleted sock must be gone")
	}
}

func TestSockMapRejectsDataOps(t *testing.T) {
	_, m := newTestMap(t, MapSpec{Name: "s", Type: MapTypeSockMap, KeySize: 4, ValueSize: 4, MaxEntries: 2})
	if _, err := m.Lookup(U32Key(1)); err == nil {
		t.Fatal("byte lookup on sockmap must fail")
	}
	if err := m.Update(U32Key(1), U64Value(1)); err == nil {
		t.Fatal("byte update on sockmap must fail")
	}
}

func TestMapSpecValidation(t *testing.T) {
	k := NewKernel()
	if _, err := k.CreateMap(MapSpec{Name: "bad", Type: MapTypeHash, KeySize: 0, ValueSize: 8, MaxEntries: 1}); err == nil {
		t.Fatal("zero key size must be rejected")
	}
	if _, err := k.CreateMap(MapSpec{Name: "bad", Type: MapTypeHash, KeySize: 4, ValueSize: 8, MaxEntries: 0}); err == nil {
		t.Fatal("zero max entries must be rejected")
	}
}

func TestU64ValueRoundTrip(t *testing.T) {
	f := func(v uint64) bool { return U64FromValue(U64Value(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hash map behaves like a Go map under random update/delete.
func TestHashMapModelProperty(t *testing.T) {
	f := func(keys []uint32, vals []uint64) bool {
		_, m := newTestMap(t, MapSpec{Name: "h", Type: MapTypeHash, KeySize: 4, ValueSize: 8, MaxEntries: 1 << 16})
		model := map[uint32]uint64{}
		for i, k := range keys {
			v := uint64(i)
			if i < len(vals) {
				v = vals[i]
			}
			if i%3 == 2 {
				errM := m.Delete(U32Key(k))
				_, inModel := model[k]
				delete(model, k)
				if inModel != (errM == nil) {
					return false
				}
				continue
			}
			if m.Update(U32Key(k), U64Value(v)) != nil {
				return false
			}
			model[k] = v
		}
		if m.Entries() != len(model) {
			return false
		}
		for k, v := range model {
			got, err := m.Lookup(U32Key(k))
			if err != nil || U64FromValue(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
