package ebpf

import (
	"errors"
	"testing"
)

type testEnv struct {
	now int64
	fib map[uint32]uint32
}

func (e *testEnv) Now() int64 { return e.now }
func (e *testEnv) FIBLookup(daddr, _ uint32) (uint32, bool) {
	v, ok := e.fib[daddr]
	return v, ok
}

func TestHookTypeMismatchRejected(t *testing.T) {
	k := NewKernel()
	xdpProg, err := k.Load(&Program{Name: "x", Type: ProgTypeXDP, Insns: []Insn{Mov64Imm(R0, XDPPass), Exit()}})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHook(k, AttachSKMsg)
	if _, err := h.Attach(xdpProg); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("want ErrTypeMismatch, got %v", err)
	}
}

func TestHookFireNoProgramsPasses(t *testing.T) {
	k := NewKernel()
	h := NewHook(k, AttachXDP)
	res, err := h.Fire([]byte{1}, 0, nil)
	if err != nil || res.Ret != XDPPass {
		t.Fatalf("empty hook must pass: %d, %v", res.Ret, err)
	}
}

func TestHookLinkDetach(t *testing.T) {
	k := NewKernel()
	p, _ := k.Load(&Program{Name: "drop", Type: ProgTypeXDP, Insns: []Insn{Mov64Imm(R0, XDPDrop), Exit()}})
	h := NewHook(k, AttachXDP)
	l, err := h.Attach(p)
	if err != nil {
		t.Fatal(err)
	}
	if h.Attached() != 1 {
		t.Fatal("attach count")
	}
	res, _ := h.Fire(nil, 0, nil)
	if res.Ret != XDPDrop {
		t.Fatal("attached program must run")
	}
	l.Close()
	l.Close() // idempotent
	if h.Attached() != 0 {
		t.Fatal("detach must remove the link")
	}
	res, _ = h.Fire(nil, 0, nil)
	if res.Ret != XDPPass {
		t.Fatal("after detach the hook must pass")
	}
}

func TestHookChainStopsAtNonPass(t *testing.T) {
	k := NewKernel()
	pass, _ := k.Load(&Program{Name: "pass", Type: ProgTypeXDP, Insns: []Insn{Mov64Imm(R0, XDPPass), Exit()}})
	drop, _ := k.Load(&Program{Name: "drop", Type: ProgTypeXDP, Insns: []Insn{Mov64Imm(R0, XDPDrop), Exit()}})
	h := NewHook(k, AttachXDP)
	h.Attach(pass)
	h.Attach(drop)
	h.Attach(pass) // must not run
	res, err := h.Fire(nil, 0, nil)
	if err != nil || res.Ret != XDPDrop {
		t.Fatalf("got %d, %v; want drop", res.Ret, err)
	}
}

func TestKtimeHelper(t *testing.T) {
	k := NewKernel()
	p, err := k.Load(&Program{Name: "time", Type: ProgTypeXDP, Insns: []Insn{
		Call(HelperKtimeGetNs),
		Exit(),
	}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := k.Run(p, nil, 0, &testEnv{now: 12345})
	if err != nil || res.Ret != 12345 {
		t.Fatalf("got %d, %v; want 12345", res.Ret, err)
	}
}

// sproxyTestProgram assembles the core of SPROXY: parse the 16-byte
// descriptor from the message, read the 4-byte NextFn field, look up the
// sockmap, and redirect.
func sproxyTestProgram(sockmapFD int) *Program {
	return &Program{Name: "sproxy", Type: ProgTypeSKMsg, Insns: []Insn{
		// r6 = data, r7 = data_end
		LoadMem(R6, R1, ctxOffData, DW),
		LoadMem(R7, R1, ctxOffDataEnd, DW),
		// bounds check: data + 16 <= data_end
		Mov64Reg(R2, R6),
		Add64Imm(R2, 16),
		JgtReg(R2, R7, 5), // too short -> drop (jump to SK_DROP tail)
		// r3 = descriptor.NextFn (u32 at offset 0)
		LoadMem(R3, R6, 0, W),
		LoadMapFD(R2, sockmapFD),
		Mov64Imm(R4, 0), // flags
		Call(HelperMsgRedirectMap),
		// r0 already holds SK_PASS/SK_DROP from the helper
		Exit(),
		Mov64Imm(R0, SKDrop),
		Exit(),
	}}
}

func TestSproxyProgramRedirectsDescriptor(t *testing.T) {
	k := NewKernel()
	sm, err := k.CreateMap(MapSpec{Name: "sock_map", Type: MapTypeSockMap, KeySize: 4, ValueSize: 4, MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	target := &fakeSock{id: 7}
	if err := sm.UpdateSock(7, target); err != nil {
		t.Fatal(err)
	}
	prog, err := k.Load(sproxyTestProgram(sm.FD()))
	if err != nil {
		t.Fatal(err)
	}

	// descriptor with NextFn=7
	desc := make([]byte, 16)
	desc[0] = 7
	res, err := k.Run(prog, desc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != SKPass {
		t.Fatalf("verdict %d, want SK_PASS", res.Ret)
	}
	if res.RedirectSock == nil || res.RedirectSock.SockID() != 7 {
		t.Fatalf("redirect target wrong: %+v", res.RedirectSock)
	}
}

func TestSproxyProgramDropsUnknownTarget(t *testing.T) {
	k := NewKernel()
	sm, _ := k.CreateMap(MapSpec{Name: "sock_map", Type: MapTypeSockMap, KeySize: 4, ValueSize: 4, MaxEntries: 16})
	prog, err := k.Load(sproxyTestProgram(sm.FD()))
	if err != nil {
		t.Fatal(err)
	}
	desc := make([]byte, 16)
	desc[0] = 9 // not in sockmap
	res, err := k.Run(prog, desc, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != SKDrop || res.RedirectSock != nil {
		t.Fatalf("unknown target must drop: ret=%d sock=%v", res.Ret, res.RedirectSock)
	}
}

func TestSproxyProgramDropsShortMessage(t *testing.T) {
	k := NewKernel()
	sm, _ := k.CreateMap(MapSpec{Name: "sock_map", Type: MapTypeSockMap, KeySize: 4, ValueSize: 4, MaxEntries: 16})
	prog, err := k.Load(sproxyTestProgram(sm.FD()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := k.Run(prog, []byte{1, 2, 3}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != SKDrop {
		t.Fatalf("short message must drop, got %d", res.Ret)
	}
}

// metricsTestProgram increments a per-ifindex packet counter in an array
// map — the EPROXY monitor pattern (§3.3).
func metricsTestProgram(mapFD int) *Program {
	return &Program{Name: "metrics", Type: ProgTypeXDP, Insns: []Insn{
		// key = ifindex; store on stack
		LoadMem(R6, R1, ctxOffIfindex, W),
		StoreMem(R10, -4, R6, W),
		LoadMapFD(R1, mapFD),
		Mov64Reg(R2, R10),
		Add64Imm(R2, -4),
		Call(HelperMapLookupElem),
		JeqImm(R0, 0, 2), // null check, as the real verifier demands
		Mov64Imm(R2, 1),
		AtomicAdd(R0, 0, R2, DW),
		Mov64Imm(R0, XDPPass),
		Exit(),
	}}
}

func TestMetricsProgramCountsPerInterface(t *testing.T) {
	k := NewKernel()
	m, err := k.CreateMap(MapSpec{Name: "metrics", Type: MapTypeArray, KeySize: 4, ValueSize: 8, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := k.Load(metricsTestProgram(m.FD()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := k.Run(prog, nil, 3, nil); err != nil {
			t.Fatal(err)
		}
	}
	k.Run(prog, nil, 4, nil)
	v, _ := m.Lookup(U32Key(3))
	if U64FromValue(v) != 5 {
		t.Fatalf("if 3 count = %d, want 5", U64FromValue(v))
	}
	v, _ = m.Lookup(U32Key(4))
	if U64FromValue(v) != 1 {
		t.Fatalf("if 4 count = %d, want 1", U64FromValue(v))
	}
	// out-of-range ifindex takes the null branch and still passes
	res, err := k.Run(prog, nil, 100, nil)
	if err != nil || res.Ret != XDPPass {
		t.Fatalf("null-check path: %d, %v", res.Ret, err)
	}
}

// fibTestProgram is the §3.5 eBPF forwarding program: fib_lookup on the
// packet's daddr (first 4 bytes), then bpf_redirect to the egress if.
func fibTestProgram() *Program {
	return &Program{Name: "xdp_fwd", Type: ProgTypeXDP, Insns: []Insn{
		// load daddr from packet
		LoadMem(R6, R1, ctxOffData, DW),
		LoadMem(R7, R1, ctxOffDataEnd, DW),
		Mov64Reg(R2, R6),
		Add64Imm(R2, 4),
		JgtReg(R2, R7, 14), // short packet -> pass
		LoadMem(R8, R6, 0, W),
		// build fib params on stack: ifindex_in, daddr, out
		LoadMem(R9, R1, ctxOffIfindex, W),
		StoreMem(R10, -12, R9, W),
		StoreMem(R10, -8, R8, W),
		Mov64Reg(R2, R10),
		Add64Imm(R2, -12),
		Mov64Imm(R3, FibParamsSize),
		Mov64Imm(R4, 0),
		Call(HelperFibLookup),
		JneImm(R0, 0, 4),        // no route -> pass
		LoadMem(R1, R10, -4, W), // egress ifindex
		Mov64Imm(R2, 0),
		Call(HelperRedirect),
		Exit(),
		Mov64Imm(R0, XDPPass),
		Exit(),
	}}
}

func TestFibForwardingProgram(t *testing.T) {
	k := NewKernel()
	prog, err := k.Load(fibTestProgram())
	if err != nil {
		t.Fatal(err)
	}
	env := &testEnv{fib: map[uint32]uint32{0x0a000001: 5}}

	// packet destined to 10.0.0.1 (LE u32 0x0a000001)
	pkt := []byte{0x01, 0x00, 0x00, 0x0a}
	res, err := k.Run(prog, pkt, 2, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != XDPRedirect || !res.HasIfRedir || res.RedirectIf != 5 {
		t.Fatalf("want redirect to if 5, got ret=%d redir=%v if=%d", res.Ret, res.HasIfRedir, res.RedirectIf)
	}
	if !res.FIBHit {
		t.Fatal("FIB hit must be recorded")
	}

	// unroutable destination passes to the stack
	pkt2 := []byte{0x02, 0x00, 0x00, 0x0a}
	res, err = k.Run(prog, pkt2, 2, env)
	if err != nil || res.Ret != XDPPass {
		t.Fatalf("unroutable: got %d, %v; want pass", res.Ret, err)
	}

	// short packet passes
	res, err = k.Run(prog, []byte{1}, 2, env)
	if err != nil || res.Ret != XDPPass {
		t.Fatalf("short: got %d, %v; want pass", res.Ret, err)
	}
}

func TestRunWithRedirectViaHookFire(t *testing.T) {
	k := NewKernel()
	prog, _ := k.Load(fibTestProgram())
	h := NewHook(k, AttachXDP)
	if _, err := h.Attach(prog); err != nil {
		t.Fatal(err)
	}
	env := &testEnv{fib: map[uint32]uint32{7: 9}}
	res, err := h.Fire([]byte{7, 0, 0, 0}, 1, env)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasIfRedir || res.RedirectIf != 9 {
		t.Fatalf("hook must surface redirect: %+v", res)
	}
}

func TestMapUpdateDeleteHelpersFromProgram(t *testing.T) {
	k := NewKernel()
	m, _ := k.CreateMap(MapSpec{Name: "h", Type: MapTypeHash, KeySize: 4, ValueSize: 8, MaxEntries: 8})
	// store key=1 on stack, value=99 on stack, call update; then delete.
	p := &Program{Name: "upd", Type: ProgTypeXDP, Insns: []Insn{
		StoreImm(R10, -4, 1, W),
		StoreImm(R10, -16, 99, DW),
		LoadMapFD(R1, m.FD()),
		Mov64Reg(R2, R10),
		Add64Imm(R2, -4),
		Mov64Reg(R3, R10),
		Add64Imm(R3, -16),
		Mov64Imm(R4, 0),
		Call(HelperMapUpdateElem),
		Mov64Imm(R0, XDPPass),
		Exit(),
	}}
	prog, err := k.Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(prog, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	v, err := m.Lookup(U32Key(1))
	if err != nil || U64FromValue(v) != 99 {
		t.Fatalf("program update failed: %v %v", v, err)
	}

	del := &Program{Name: "del", Type: ProgTypeXDP, Insns: []Insn{
		StoreImm(R10, -4, 1, W),
		LoadMapFD(R1, m.FD()),
		Mov64Reg(R2, R10),
		Add64Imm(R2, -4),
		Call(HelperMapDeleteElem),
		Mov64Imm(R0, XDPPass),
		Exit(),
	}}
	dprog, err := k.Load(del)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Run(dprog, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Lookup(U32Key(1)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatal("program delete failed")
	}
}

func TestProgramStringRoundup(t *testing.T) {
	// Smoke-test the disassembler for readability in logs.
	for _, in := range sproxyTestProgram(3).Insns {
		if in.String() == "" {
			t.Fatal("empty disassembly")
		}
	}
}
