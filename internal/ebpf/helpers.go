package ebpf

import (
	"fmt"
)

// HelperID identifies a kernel helper callable from programs. The numeric
// values mirror the Linux UAPI (include/uapi/linux/bpf.h) for the helpers
// SPRIGHT uses.
type HelperID int64

// Supported helpers.
const (
	HelperMapLookupElem     HelperID = 1  // bpf_map_lookup_elem
	HelperMapUpdateElem     HelperID = 2  // bpf_map_update_elem
	HelperMapDeleteElem     HelperID = 3  // bpf_map_delete_elem
	HelperKtimeGetNs        HelperID = 5  // bpf_ktime_get_ns
	HelperGetSmpProcessorID HelperID = 8  // bpf_get_smp_processor_id
	HelperRedirect          HelperID = 23 // bpf_redirect (XDP/TC)
	HelperMsgRedirectMap    HelperID = 60 // bpf_msg_redirect_map (SK_MSG)
	HelperFibLookup         HelperID = 69 // bpf_fib_lookup
)

func (h HelperID) String() string {
	switch h {
	case HelperMapLookupElem:
		return "bpf_map_lookup_elem"
	case HelperMapUpdateElem:
		return "bpf_map_update_elem"
	case HelperMapDeleteElem:
		return "bpf_map_delete_elem"
	case HelperKtimeGetNs:
		return "bpf_ktime_get_ns"
	case HelperGetSmpProcessorID:
		return "bpf_get_smp_processor_id"
	case HelperRedirect:
		return "bpf_redirect"
	case HelperMsgRedirectMap:
		return "bpf_msg_redirect_map"
	case HelperFibLookup:
		return "bpf_fib_lookup"
	default:
		return fmt.Sprintf("helper(%d)", int64(h))
	}
}

func knownHelper(h HelperID) bool {
	switch h {
	case HelperMapLookupElem, HelperMapUpdateElem, HelperMapDeleteElem,
		HelperKtimeGetNs, HelperGetSmpProcessorID, HelperRedirect,
		HelperMsgRedirectMap, HelperFibLookup:
		return true
	}
	return false
}

// FibParamsSize is the byte size of the bpf_fib_lookup parameter block the
// programs build on their stack: {u32 ifindex_in, u32 daddr, u32 ifindex_out}.
const FibParamsSize = 12

// call dispatches one helper. Arguments are R1–R5; the result goes to R0.
// Per the eBPF calling convention, R1–R5 are clobbered afterwards.
func (st *execState) call(id HelperID) error {
	r1, r2, r3, r4 := st.reg[R1], st.reg[R2], st.reg[R3], st.reg[R4]
	var ret uint64

	switch id {
	case HelperMapLookupElem:
		m, err := st.mapFromHandle(r1)
		if err != nil {
			return err
		}
		key, err := st.readMem(r2, m.Spec().KeySize)
		if err != nil {
			return err
		}
		val, err := m.LookupRef(key)
		if err != nil {
			ret = 0 // NULL: program must null-check (the verifier analog is runtime here)
		} else {
			ret = st.mapValue(val)
		}

	case HelperMapUpdateElem:
		m, err := st.mapFromHandle(r1)
		if err != nil {
			return err
		}
		key, err := st.readMem(r2, m.Spec().KeySize)
		if err != nil {
			return err
		}
		val, err := st.readMem(r3, m.Spec().ValueSize)
		if err != nil {
			return err
		}
		if err := m.Update(key, val); err != nil {
			ret = uint64(^uint64(0)) // -1
		}

	case HelperMapDeleteElem:
		m, err := st.mapFromHandle(r1)
		if err != nil {
			return err
		}
		key, err := st.readMem(r2, m.Spec().KeySize)
		if err != nil {
			return err
		}
		if err := m.Delete(key); err != nil {
			ret = uint64(^uint64(0))
		}

	case HelperKtimeGetNs:
		ret = uint64(st.env.Now())

	case HelperGetSmpProcessorID:
		ret = 0

	case HelperRedirect:
		// r1 = egress ifindex, r2 = flags. Record the redirect; the
		// hook turns the XDP_REDIRECT/TC_ACT_REDIRECT verdict into a
		// device forward.
		st.res.RedirectIf = uint32(r1)
		st.res.HasIfRedir = true
		ret = uint64(XDPRedirect)

	case HelperMsgRedirectMap:
		// r1 = msg ctx, r2 = sockmap handle, r3 = key, r4 = flags.
		m, err := st.mapFromHandle(r2)
		if err != nil {
			return err
		}
		sock, err := m.LookupSock(uint32(r3))
		if err != nil {
			ret = uint64(SKDrop)
		} else {
			st.res.RedirectSock = sock
			ret = uint64(SKPass)
		}
		_ = r4

	case HelperFibLookup:
		// r1 = ctx, r2 = params pointer, r3 = params size, r4 = flags.
		if r3 < FibParamsSize {
			return fmt.Errorf("ebpf: fib_lookup params too small: %d", r3)
		}
		params, err := st.access(r2, FibParamsSize, true)
		if err != nil {
			return err
		}
		ifIn := leU32(params[0:4])
		daddr := leU32(params[4:8])
		egress, ok := st.env.FIBLookup(daddr, ifIn)
		if ok {
			putLeU32(params[8:12], egress)
			st.res.FIBHit = true
			ret = 0 // BPF_FIB_LKUP_RET_SUCCESS
		} else {
			ret = 2 // BPF_FIB_LKUP_RET_NOT_FWDED
		}

	default:
		return fmt.Errorf("ebpf: unknown helper %v", id)
	}

	st.reg[R0] = ret
	// Caller-saved registers are clobbered, as on real hardware.
	st.reg[R1], st.reg[R2], st.reg[R3], st.reg[R4], st.reg[R5] = 0, 0, 0, 0, 0
	return nil
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLeU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
