package ebpf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// MapType enumerates the supported eBPF map types.
type MapType int

// Map types used by SPRIGHT: arrays and hashes for metrics and routing,
// sockmaps for SPROXY's socket redirection, and a hash used as the
// inter-function descriptor filter (§3.4).
const (
	MapTypeArray MapType = iota
	MapTypeHash
	MapTypeSockMap
	MapTypePerCPUArray
)

func (t MapType) String() string {
	switch t {
	case MapTypeArray:
		return "array"
	case MapTypeHash:
		return "hash"
	case MapTypeSockMap:
		return "sockmap"
	case MapTypePerCPUArray:
		return "percpu_array"
	default:
		return fmt.Sprintf("maptype(%d)", int(t))
	}
}

// MapSpec declares a map before creation, mirroring struct bpf_map_def.
type MapSpec struct {
	Name       string
	Type       MapType
	KeySize    int
	ValueSize  int
	MaxEntries int
}

// Map errors.
var (
	ErrKeyNotFound = errors.New("ebpf: key not found")
	ErrMapFull     = errors.New("ebpf: map full")
	ErrBadKey      = errors.New("ebpf: bad key size")
	ErrBadValue    = errors.New("ebpf: bad value size")
)

// Map is an in-"kernel" key/value store shared between programs and
// userspace, the configurability mechanism of §3.1. All methods are safe
// for concurrent use.
type Map struct {
	spec MapSpec
	fd   int

	mu      sync.RWMutex
	array   [][]byte          // MapTypeArray / PerCPUArray backing
	hash    map[string][]byte // MapTypeHash backing
	sockets map[uint32]SockRef // MapTypeSockMap backing
}

// SockRef is a sockmap entry: the kernel-side reference to a socket that
// msg_redirect_map can deliver to. Deliver must not block.
type SockRef interface {
	// DeliverDescriptor hands the redirected bytes to the socket's owner.
	DeliverDescriptor(data []byte) error
	// SockID identifies the socket (for tests and diagnostics).
	SockID() uint32
}

func newMap(spec MapSpec, fd int) (*Map, error) {
	if spec.KeySize <= 0 && spec.Type != MapTypeSockMap {
		return nil, fmt.Errorf("ebpf: map %q: key size must be positive", spec.Name)
	}
	if spec.MaxEntries <= 0 {
		return nil, fmt.Errorf("ebpf: map %q: max entries must be positive", spec.Name)
	}
	m := &Map{spec: spec, fd: fd}
	switch spec.Type {
	case MapTypeArray, MapTypePerCPUArray:
		if spec.KeySize != 4 {
			return nil, fmt.Errorf("ebpf: array map %q requires 4-byte keys", spec.Name)
		}
		m.array = make([][]byte, spec.MaxEntries)
		for i := range m.array {
			m.array[i] = make([]byte, spec.ValueSize)
		}
	case MapTypeHash:
		m.hash = make(map[string][]byte)
	case MapTypeSockMap:
		m.sockets = make(map[uint32]SockRef)
	default:
		return nil, fmt.Errorf("ebpf: unsupported map type %v", spec.Type)
	}
	return m, nil
}

// FD returns the map's file descriptor (its handle in programs).
func (m *Map) FD() int { return m.fd }

// Spec returns the creation spec.
func (m *Map) Spec() MapSpec { return m.spec }

func (m *Map) arrayIndex(key []byte) (int, error) {
	if len(key) != 4 {
		return 0, ErrBadKey
	}
	idx := int(binary.LittleEndian.Uint32(key))
	if idx < 0 || idx >= m.spec.MaxEntries {
		return 0, ErrKeyNotFound
	}
	return idx, nil
}

// Lookup returns a copy of the value for key.
func (m *Map) Lookup(key []byte) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, err := m.lookupRefLocked(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// lookupRefLocked returns the live value slice (programs write through it,
// like the pointer bpf_map_lookup_elem returns in the kernel).
func (m *Map) lookupRefLocked(key []byte) ([]byte, error) {
	switch m.spec.Type {
	case MapTypeArray, MapTypePerCPUArray:
		idx, err := m.arrayIndex(key)
		if err != nil {
			return nil, err
		}
		return m.array[idx], nil
	case MapTypeHash:
		if len(key) != m.spec.KeySize {
			return nil, ErrBadKey
		}
		v, ok := m.hash[string(key)]
		if !ok {
			return nil, ErrKeyNotFound
		}
		return v, nil
	default:
		return nil, fmt.Errorf("ebpf: lookup unsupported on %v map", m.spec.Type)
	}
}

// LookupRef returns the live (aliased) value slice for in-place mutation.
func (m *Map) LookupRef(key []byte) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.lookupRefLocked(key)
}

// Update inserts or replaces the value for key.
func (m *Map) Update(key, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.spec.Type {
	case MapTypeArray, MapTypePerCPUArray:
		idx, err := m.arrayIndex(key)
		if err != nil {
			return err
		}
		if len(value) != m.spec.ValueSize {
			return ErrBadValue
		}
		copy(m.array[idx], value)
		return nil
	case MapTypeHash:
		if len(key) != m.spec.KeySize {
			return ErrBadKey
		}
		if len(value) != m.spec.ValueSize {
			return ErrBadValue
		}
		if _, ok := m.hash[string(key)]; !ok && len(m.hash) >= m.spec.MaxEntries {
			return ErrMapFull
		}
		v := make([]byte, len(value))
		copy(v, value)
		m.hash[string(key)] = v
		return nil
	default:
		return fmt.Errorf("ebpf: update unsupported on %v map", m.spec.Type)
	}
}

// Delete removes key.
func (m *Map) Delete(key []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.spec.Type {
	case MapTypeHash:
		if len(key) != m.spec.KeySize {
			return ErrBadKey
		}
		if _, ok := m.hash[string(key)]; !ok {
			return ErrKeyNotFound
		}
		delete(m.hash, string(key))
		return nil
	case MapTypeArray, MapTypePerCPUArray:
		idx, err := m.arrayIndex(key)
		if err != nil {
			return err
		}
		for i := range m.array[idx] {
			m.array[idx][i] = 0
		}
		return nil
	case MapTypeSockMap:
		if len(key) != 4 {
			return ErrBadKey
		}
		k := binary.LittleEndian.Uint32(key)
		if _, ok := m.sockets[k]; !ok {
			return ErrKeyNotFound
		}
		delete(m.sockets, k)
		return nil
	default:
		return fmt.Errorf("ebpf: delete unsupported on %v map", m.spec.Type)
	}
}

// UpdateSock installs a socket reference under key (userspace control-plane
// operation: the SPRIGHT gateway registers each new function instance's
// socket here, §3.2.1).
func (m *Map) UpdateSock(key uint32, s SockRef) error {
	if m.spec.Type != MapTypeSockMap {
		return fmt.Errorf("ebpf: UpdateSock on %v map", m.spec.Type)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.sockets[key]; !ok && len(m.sockets) >= m.spec.MaxEntries {
		return ErrMapFull
	}
	m.sockets[key] = s
	return nil
}

// LookupSock returns the socket registered under key.
func (m *Map) LookupSock(key uint32) (SockRef, error) {
	if m.spec.Type != MapTypeSockMap {
		return nil, fmt.Errorf("ebpf: LookupSock on %v map", m.spec.Type)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.sockets[key]
	if !ok {
		return nil, ErrKeyNotFound
	}
	return s, nil
}

// Entries returns the number of populated entries (hash and sockmap).
func (m *Map) Entries() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	switch m.spec.Type {
	case MapTypeHash:
		return len(m.hash)
	case MapTypeSockMap:
		return len(m.sockets)
	default:
		return m.spec.MaxEntries
	}
}

// U32Key encodes a uint32 map key.
func U32Key(k uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, k)
	return b
}

// U64Value encodes a uint64 map value.
func U64Value(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// U64FromValue decodes a uint64 map value.
func U64FromValue(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
