package ebpf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// MapType enumerates the supported eBPF map types.
type MapType int

// Map types used by SPRIGHT: arrays and hashes for metrics and routing,
// sockmaps for SPROXY's socket redirection, and a hash used as the
// inter-function descriptor filter (§3.4).
const (
	MapTypeArray MapType = iota
	MapTypeHash
	MapTypeSockMap
	MapTypePerCPUArray
)

func (t MapType) String() string {
	switch t {
	case MapTypeArray:
		return "array"
	case MapTypeHash:
		return "hash"
	case MapTypeSockMap:
		return "sockmap"
	case MapTypePerCPUArray:
		return "percpu_array"
	default:
		return fmt.Sprintf("maptype(%d)", int(t))
	}
}

// MapSpec declares a map before creation, mirroring struct bpf_map_def.
type MapSpec struct {
	Name       string
	Type       MapType
	KeySize    int
	ValueSize  int
	MaxEntries int
}

// Map errors.
var (
	ErrKeyNotFound = errors.New("ebpf: key not found")
	ErrMapFull     = errors.New("ebpf: map full")
	ErrBadKey      = errors.New("ebpf: bad key size")
	ErrBadValue    = errors.New("ebpf: bad value size")
)

// Map is an in-"kernel" key/value store shared between programs and
// userspace, the configurability mechanism of §3.1. All methods are safe
// for concurrent use.
//
// Array maps are backed by one 8-byte-aligned slab ([]uint64), each entry
// padded to a word multiple. That alignment is what lets OpAtomicAdd run as
// a real CPU atomic on the value word (see atomicAddBytes), and array
// lookups/updates go through word-wise atomic copies instead of the map
// mutex — concurrent metric reads and increments never serialize.
type Map struct {
	spec MapSpec
	fd   int

	// array backing: slab words, valWords per entry, plus per-entry byte
	// views aliasing the slab. The views are created once and never
	// reassigned, so they are safe to read without a lock.
	slab     []uint64
	valWords int
	array    [][]byte

	mu   sync.RWMutex      // guards hash and sockmap writes
	hash map[string][]byte // MapTypeHash backing

	socks atomic.Value // map[uint32]SockRef, copy-on-write (MapTypeSockMap)
}

// SockRef is a sockmap entry: the kernel-side reference to a socket that
// msg_redirect_map can deliver to. Deliver must not block.
type SockRef interface {
	// DeliverDescriptor hands the redirected bytes to the socket's owner.
	DeliverDescriptor(data []byte) error
	// SockID identifies the socket (for tests and diagnostics).
	SockID() uint32
}

// alignedBytes allocates n bytes with 8-byte alignment by backing them with
// a []uint64 — Go's tiny allocator does not guarantee word alignment for
// small byte slices, and atomicAddBytes needs it.
func alignedBytes(n int) []byte {
	if n == 0 {
		return nil
	}
	w := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&w[0])), n)
}

func newMap(spec MapSpec, fd int) (*Map, error) {
	if spec.KeySize <= 0 && spec.Type != MapTypeSockMap {
		return nil, fmt.Errorf("ebpf: map %q: key size must be positive", spec.Name)
	}
	if spec.MaxEntries <= 0 {
		return nil, fmt.Errorf("ebpf: map %q: max entries must be positive", spec.Name)
	}
	m := &Map{spec: spec, fd: fd}
	switch spec.Type {
	case MapTypeArray, MapTypePerCPUArray:
		if spec.KeySize != 4 {
			return nil, fmt.Errorf("ebpf: array map %q requires 4-byte keys", spec.Name)
		}
		m.valWords = (spec.ValueSize + 7) / 8
		m.array = make([][]byte, spec.MaxEntries)
		if m.valWords > 0 {
			m.slab = make([]uint64, spec.MaxEntries*m.valWords)
			for i := range m.array {
				p := (*byte)(unsafe.Pointer(&m.slab[i*m.valWords]))
				m.array[i] = unsafe.Slice(p, spec.ValueSize)
			}
		}
	case MapTypeHash:
		m.hash = make(map[string][]byte)
	case MapTypeSockMap:
		m.socks.Store(map[uint32]SockRef{})
	default:
		return nil, fmt.Errorf("ebpf: unsupported map type %v", spec.Type)
	}
	return m, nil
}

// FD returns the map's file descriptor (its handle in programs).
func (m *Map) FD() int { return m.fd }

// Spec returns the creation spec.
func (m *Map) Spec() MapSpec { return m.spec }

func (m *Map) arrayIndex(key []byte) (int, error) {
	if len(key) != 4 {
		return 0, ErrBadKey
	}
	idx := int(binary.LittleEndian.Uint32(key))
	if idx < 0 || idx >= m.spec.MaxEntries {
		return 0, ErrKeyNotFound
	}
	return idx, nil
}

// atomicReadInto copies array entry idx into out word-atomically, so a
// reader never observes a torn counter mid-increment and the race detector
// sees properly paired atomics against OpAtomicAdd.
func (m *Map) atomicReadInto(idx int, out []byte) {
	var word [8]byte
	off := 0
	for j := 0; j < m.valWords && off < len(out); j++ {
		binary.NativeEndian.PutUint64(word[:], atomic.LoadUint64(&m.slab[idx*m.valWords+j]))
		off += copy(out[off:], word[:])
	}
}

// atomicWrite stores value into array entry idx word-atomically. A partial
// trailing word is merged read-modify-write; concurrent adds to padding
// bytes cannot occur because padding is never exposed to programs.
func (m *Map) atomicWrite(idx int, value []byte) {
	var word [8]byte
	for j := 0; j < m.valWords; j++ {
		w := &m.slab[idx*m.valWords+j]
		off := j * 8
		if rem := len(value) - off; rem >= 8 {
			atomic.StoreUint64(w, binary.NativeEndian.Uint64(value[off:]))
		} else {
			binary.NativeEndian.PutUint64(word[:], atomic.LoadUint64(w))
			copy(word[:rem], value[off:])
			atomic.StoreUint64(w, binary.NativeEndian.Uint64(word[:]))
		}
	}
}

// Lookup returns a copy of the value for key.
func (m *Map) Lookup(key []byte) ([]byte, error) {
	switch m.spec.Type {
	case MapTypeArray, MapTypePerCPUArray:
		idx, err := m.arrayIndex(key)
		if err != nil {
			return nil, err
		}
		out := make([]byte, m.spec.ValueSize)
		m.atomicReadInto(idx, out)
		return out, nil
	default:
		m.mu.RLock()
		defer m.mu.RUnlock()
		v, err := m.lookupRefLocked(key)
		if err != nil {
			return nil, err
		}
		out := make([]byte, len(v))
		copy(out, v)
		return out, nil
	}
}

// LookupU32Into reads the value for a uint32 key into out without
// allocating a key or a result — the zero-alloc variant for hot userspace
// readers (metric scrapes on the request path).
func (m *Map) LookupU32Into(key uint32, out []byte) error {
	switch m.spec.Type {
	case MapTypeArray, MapTypePerCPUArray:
		if int(key) >= m.spec.MaxEntries {
			return ErrKeyNotFound
		}
		if len(out) < m.spec.ValueSize {
			return ErrBadValue
		}
		m.atomicReadInto(int(key), out[:m.spec.ValueSize])
		return nil
	default:
		var kb [4]byte
		binary.LittleEndian.PutUint32(kb[:], key)
		m.mu.RLock()
		defer m.mu.RUnlock()
		v, err := m.lookupRefLocked(kb[:])
		if err != nil {
			return err
		}
		if len(out) < len(v) {
			return ErrBadValue
		}
		copy(out, v)
		return nil
	}
}

// lookupRefLocked returns the live value slice (programs write through it,
// like the pointer bpf_map_lookup_elem returns in the kernel).
func (m *Map) lookupRefLocked(key []byte) ([]byte, error) {
	switch m.spec.Type {
	case MapTypeArray, MapTypePerCPUArray:
		idx, err := m.arrayIndex(key)
		if err != nil {
			return nil, err
		}
		return m.array[idx], nil
	case MapTypeHash:
		if len(key) != m.spec.KeySize {
			return nil, ErrBadKey
		}
		v, ok := m.hash[string(key)]
		if !ok {
			return nil, ErrKeyNotFound
		}
		return v, nil
	default:
		return nil, fmt.Errorf("ebpf: lookup unsupported on %v map", m.spec.Type)
	}
}

// LookupRef returns the live (aliased) value slice for in-place mutation.
// Array entries alias the fixed slab, so no lock is taken for them.
func (m *Map) LookupRef(key []byte) ([]byte, error) {
	switch m.spec.Type {
	case MapTypeArray, MapTypePerCPUArray:
		idx, err := m.arrayIndex(key)
		if err != nil {
			return nil, err
		}
		return m.array[idx], nil
	default:
		m.mu.RLock()
		defer m.mu.RUnlock()
		return m.lookupRefLocked(key)
	}
}

// Update inserts or replaces the value for key.
func (m *Map) Update(key, value []byte) error {
	switch m.spec.Type {
	case MapTypeArray, MapTypePerCPUArray:
		idx, err := m.arrayIndex(key)
		if err != nil {
			return err
		}
		if len(value) != m.spec.ValueSize {
			return ErrBadValue
		}
		m.atomicWrite(idx, value)
		return nil
	case MapTypeHash:
		m.mu.Lock()
		defer m.mu.Unlock()
		if len(key) != m.spec.KeySize {
			return ErrBadKey
		}
		if len(value) != m.spec.ValueSize {
			return ErrBadValue
		}
		if _, ok := m.hash[string(key)]; !ok && len(m.hash) >= m.spec.MaxEntries {
			return ErrMapFull
		}
		v := alignedBytes(len(value))
		copy(v, value)
		m.hash[string(key)] = v
		return nil
	default:
		return fmt.Errorf("ebpf: update unsupported on %v map", m.spec.Type)
	}
}

// Delete removes key.
func (m *Map) Delete(key []byte) error {
	switch m.spec.Type {
	case MapTypeHash:
		m.mu.Lock()
		defer m.mu.Unlock()
		if len(key) != m.spec.KeySize {
			return ErrBadKey
		}
		if _, ok := m.hash[string(key)]; !ok {
			return ErrKeyNotFound
		}
		delete(m.hash, string(key))
		return nil
	case MapTypeArray, MapTypePerCPUArray:
		idx, err := m.arrayIndex(key)
		if err != nil {
			return err
		}
		for j := 0; j < m.valWords; j++ {
			atomic.StoreUint64(&m.slab[idx*m.valWords+j], 0)
		}
		return nil
	case MapTypeSockMap:
		if len(key) != 4 {
			return ErrBadKey
		}
		return m.DeleteU32(binary.LittleEndian.Uint32(key))
	default:
		return fmt.Errorf("ebpf: delete unsupported on %v map", m.spec.Type)
	}
}

// DeleteU32 removes a uint32 key without allocating the wire form.
func (m *Map) DeleteU32(key uint32) error {
	switch m.spec.Type {
	case MapTypeSockMap:
		m.mu.Lock()
		defer m.mu.Unlock()
		cur := m.socks.Load().(map[uint32]SockRef)
		if _, ok := cur[key]; !ok {
			return ErrKeyNotFound
		}
		next := make(map[uint32]SockRef, len(cur))
		for k, v := range cur {
			if k != key {
				next[k] = v
			}
		}
		m.socks.Store(next)
		return nil
	case MapTypeArray, MapTypePerCPUArray:
		if int(key) >= m.spec.MaxEntries {
			return ErrKeyNotFound
		}
		for j := 0; j < m.valWords; j++ {
			atomic.StoreUint64(&m.slab[int(key)*m.valWords+j], 0)
		}
		return nil
	default:
		var kb [4]byte
		binary.LittleEndian.PutUint32(kb[:], key)
		return m.Delete(kb[:])
	}
}

// UpdateSock installs a socket reference under key (userspace control-plane
// operation: the SPRIGHT gateway registers each new function instance's
// socket here, §3.2.1). The sockmap is copy-on-write: updates copy under
// the mutex, so the per-message LookupSock on the redirect path is
// lock-free.
func (m *Map) UpdateSock(key uint32, s SockRef) error {
	if m.spec.Type != MapTypeSockMap {
		return fmt.Errorf("ebpf: UpdateSock on %v map", m.spec.Type)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.socks.Load().(map[uint32]SockRef)
	if _, ok := cur[key]; !ok && len(cur) >= m.spec.MaxEntries {
		return ErrMapFull
	}
	next := make(map[uint32]SockRef, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = s
	m.socks.Store(next)
	return nil
}

// LookupSock returns the socket registered under key.
func (m *Map) LookupSock(key uint32) (SockRef, error) {
	if m.spec.Type != MapTypeSockMap {
		return nil, fmt.Errorf("ebpf: LookupSock on %v map", m.spec.Type)
	}
	s, ok := m.socks.Load().(map[uint32]SockRef)[key]
	if !ok {
		return nil, ErrKeyNotFound
	}
	return s, nil
}

// Range calls fn for every populated entry with copies of the key and
// value (array maps: every index; hash maps: every present key; sockmaps
// are not supported). Iteration order is unspecified. It stops early if fn
// returns false. Differential tests use this to compare full map state
// across engines.
func (m *Map) Range(fn func(key, value []byte) bool) {
	switch m.spec.Type {
	case MapTypeArray, MapTypePerCPUArray:
		for i := 0; i < m.spec.MaxEntries; i++ {
			key := make([]byte, 4)
			binary.LittleEndian.PutUint32(key, uint32(i))
			val := make([]byte, m.spec.ValueSize)
			m.atomicReadInto(i, val)
			if !fn(key, val) {
				return
			}
		}
	case MapTypeHash:
		m.mu.RLock()
		type kv struct{ k, v []byte }
		entries := make([]kv, 0, len(m.hash))
		for k, v := range m.hash {
			key := []byte(k)
			val := make([]byte, len(v))
			copy(val, v)
			entries = append(entries, kv{key, val})
		}
		m.mu.RUnlock()
		for _, e := range entries {
			if !fn(e.k, e.v) {
				return
			}
		}
	}
}

// Entries returns the number of populated entries (hash and sockmap).
func (m *Map) Entries() int {
	switch m.spec.Type {
	case MapTypeHash:
		m.mu.RLock()
		defer m.mu.RUnlock()
		return len(m.hash)
	case MapTypeSockMap:
		return len(m.socks.Load().(map[uint32]SockRef))
	default:
		return m.spec.MaxEntries
	}
}

// U32Key encodes a uint32 map key.
func U32Key(k uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, k)
	return b
}

// U64Value encodes a uint64 map value.
func U64Value(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// U64FromValue decodes a uint64 map value.
func U64FromValue(b []byte) uint64 {
	if len(b) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
