package ebpf

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// Differential testing of the compiled engines against the interpreter: the
// interpreter is the oracle. Every comparison covers the full observable
// surface — verdict, error class and text, redirects, packet bytes, map
// contents, and the kernel's run/instruction accounting.

// parityEnv is one engine's half of a differential run: a kernel with the
// standard fuzz maps (an array map at fd 3, a hash map at fd 4), identically
// pre-populated.
type parityEnv struct {
	k     *Kernel
	array *Map
	hash  *Map
}

func newParityEnv(t testing.TB, jit bool) *parityEnv {
	t.Helper()
	k := NewKernel()
	k.SetJIT(jit)
	array, err := k.CreateMap(MapSpec{Name: "fuzz_array", Type: MapTypeArray, KeySize: 4, ValueSize: 8, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := k.CreateMap(MapSpec{Name: "fuzz_hash", Type: MapTypeHash, KeySize: 4, ValueSize: 8, MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := array.Update(U32Key(uint32(i)), U64Value(uint64(i)*0x0101)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := hash.Update(U32Key(uint32(i)), U64Value(uint64(i)+7)); err != nil {
			t.Fatal(err)
		}
	}
	return &parityEnv{k: k, array: array, hash: hash}
}

const (
	fuzzArrayFD = 3
	fuzzHashFD  = 4
)

// dumpMap flattens a map into a deterministic key→value form.
func dumpMap(m *Map) map[string]string {
	out := make(map[string]string)
	m.Range(func(k, v []byte) bool {
		out[string(k)] = string(v)
		return true
	})
	return out
}

func sameError(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

// compareRuns executes one program+input on both engines and fails the test
// on any observable divergence.
func compareRuns(t *testing.T, p *Program, pkt []byte, ifindex uint32) {
	t.Helper()
	ej := newParityEnv(t, true)
	ei := newParityEnv(t, false)

	lpJ, errJ := ej.k.Load(p)
	lpI, errI := ei.k.Load(p)
	if (errJ == nil) != (errI == nil) {
		t.Fatalf("load divergence: jit=%v interp=%v", errJ, errI)
	}
	if errJ != nil {
		return // rejected identically; nothing to run
	}
	if lpJ.Engine() == EngineInterp && lpJ.FallbackReason() == "" {
		t.Fatalf("program fell back to the interpreter with no reason")
	}

	pktJ := append([]byte(nil), pkt...)
	pktI := append([]byte(nil), pkt...)
	resJ, runErrJ := ej.k.Run(lpJ, pktJ, ifindex, nil)
	resI, runErrI := ei.k.Run(lpI, pktI, ifindex, nil)

	if !sameError(runErrJ, runErrI) {
		t.Fatalf("error divergence: jit=%v interp=%v", runErrJ, runErrI)
	}
	if resJ.Ret != resI.Ret || resJ.Insns != resI.Insns ||
		resJ.RedirectIf != resI.RedirectIf || resJ.HasIfRedir != resI.HasIfRedir ||
		resJ.FIBHit != resI.FIBHit {
		t.Fatalf("result divergence:\n jit    %+v\n interp %+v", resJ, resI)
	}
	if !bytes.Equal(pktJ, pktI) {
		t.Fatalf("packet divergence:\n jit    %x\n interp %x", pktJ, pktI)
	}
	for name, pair := range map[string][2]*Map{
		"array": {ej.array, ei.array},
		"hash":  {ej.hash, ei.hash},
	} {
		dj, di := dumpMap(pair[0]), dumpMap(pair[1])
		if len(dj) != len(di) {
			t.Fatalf("%s map size divergence: %d vs %d", name, len(dj), len(di))
		}
		for k, v := range dj {
			if di[k] != v {
				t.Fatalf("%s map divergence at key %x: jit %x interp %x", name, k, v, di[k])
			}
		}
	}
	runsJ, insnsJ := ej.k.Stats()
	runsI, insnsI := ei.k.Stats()
	if runsJ != runsI || insnsJ != insnsI {
		t.Fatalf("stats divergence: jit(%d,%d) interp(%d,%d)", runsJ, insnsJ, runsI, insnsI)
	}
	esJ, esI := ej.k.EngineStats(), ei.k.EngineStats()
	if lpJ.Engine() != EngineInterp && esJ.JITRuns != 1 {
		t.Fatalf("jit kernel did not attribute the run to the jit engine: %+v", esJ)
	}
	if esI.InterpRuns != 1 {
		t.Fatalf("interp kernel did not attribute the run to the interpreter: %+v", esI)
	}
}

// ---------------------------------------------------------------------------
// Fuzzed program generation.

var fuzzALUOps = []Op{
	OpAddReg, OpAddImm, OpSubReg, OpSubImm, OpMulReg, OpMulImm,
	OpDivReg, OpDivImm, OpModReg, OpModImm,
	OpAndReg, OpAndImm, OpOrReg, OpOrImm, OpXorReg, OpXorImm,
	OpLshReg, OpLshImm, OpRshReg, OpRshImm, OpArshReg, OpArshImm,
	OpNeg, OpMovReg, OpMovImm,
}

var fuzzJumpOps = []Op{
	OpJa, OpJeqReg, OpJeqImm, OpJneReg, OpJneImm, OpJgtReg, OpJgtImm,
	OpJgeReg, OpJgeImm, OpJltReg, OpJltImm, OpJleReg, OpJleImm,
	OpJsgtReg, OpJsgtImm,
}

var fuzzSizes = []Size{B, H, W, DW}

// genParityProgram turns fuzz bytes into a structured program: a prologue
// saving the ctx and packet bounds and initializing r0–r5, then a sequence
// of "units" (ALU ops, stack and packet accesses, map helper blocks,
// jumps), then exit. Jumps land only on unit boundaries, where the
// register-init state is uniform, so generated programs pass the verifier
// instead of being rejected for reading a helper-clobbered register.
func genParityProgram(seed []byte) *Program {
	var insns []Insn
	var units []int     // start pc of each unit
	var jumps []int     // insn index of each jump needing fixup
	var jumpUnit []int  // unit ordinal of each jump
	var jumpAhead []int // how many units forward each jump wants to go

	// Prologue: R6=ctx, R7=data, R8=data_end, r0..r5 = deterministic values.
	insns = append(insns,
		Mov64Reg(R6, R1),
		LoadMem(R7, R6, 0, DW),
		LoadMem(R8, R6, 8, DW),
	)
	for r := Register(0); r <= R5; r++ {
		insns = append(insns, Mov64Imm(r, int64(r)*0x9E37+1))
	}

	at := 0
	nextByte := func() byte {
		if at >= len(seed) {
			return 0
		}
		b := seed[at]
		at++
		return b
	}
	reinit := func() {
		for r := R1; r <= R5; r++ {
			insns = append(insns, Mov64Imm(r, int64(r)*31))
		}
	}

	nUnits := len(seed) / 3
	if nUnits > 80 {
		nUnits = 80
	}
	for u := 0; u < nUnits; u++ {
		units = append(units, len(insns))
		sel, a, b := nextByte(), nextByte(), nextByte()
		dst := Register(a) % 6
		src := Register(a>>4) % 6
		switch sel % 8 {
		case 0, 1, 2: // ALU
			op := fuzzALUOps[int(b)%len(fuzzALUOps)]
			imm := int64(int8(b)) | 1 // nonzero: keep div/mod-by-imm verifiable
			insns = append(insns, Insn{Op: op, Dst: dst, Src: src, Imm: imm})
		case 3: // stack store + load back
			size := fuzzSizes[int(b)%len(fuzzSizes)]
			off := int16(-(int(b)%500 + int(size)))
			insns = append(insns,
				StoreMem(R10, off, dst, size),
				LoadMem(src, R10, off, size),
			)
		case 4: // packet access; may fault out of bounds (parity either way)
			size := fuzzSizes[int(b)%len(fuzzSizes)]
			off := int16(int(b) % 40)
			if b&0x80 != 0 {
				insns = append(insns, StoreMem(R7, off, dst, size))
			} else {
				insns = append(insns, LoadMem(dst, R7, off, size))
			}
		case 5: // jump to a later unit boundary
			op := fuzzJumpOps[int(b)%len(fuzzJumpOps)]
			in := Insn{Op: op, Dst: dst, Src: src, Imm: int64(int8(b))}
			jumps = append(jumps, len(insns))
			jumpUnit = append(jumpUnit, u)
			jumpAhead = append(jumpAhead, 1+int(b>>5))
			insns = append(insns, in)
		case 6: // array map lookup + atomic add
			insns = append(insns,
				StoreImm(R10, -4, int64(b%10), W), // sometimes out of range → null
				LoadMapFD(R1, fuzzArrayFD),
				Mov64Reg(R2, R10),
				Add64Imm(R2, -4),
				Call(HelperMapLookupElem),
				JeqImm(R0, 0, 2),
				Mov64Imm(R2, int64(a)+1),
				AtomicAdd(R0, 0, R2, DW),
			)
			reinit()
		case 7: // hash map update or delete
			if b&1 == 0 {
				insns = append(insns,
					StoreImm(R10, -4, int64(b%6), W),
					StoreImm(R10, -16, int64(a)<<8|int64(b), DW),
					LoadMapFD(R1, fuzzHashFD),
					Mov64Reg(R2, R10),
					Add64Imm(R2, -4),
					Mov64Reg(R3, R10),
					Add64Imm(R3, -16),
					Mov64Imm(R4, 0),
					Call(HelperMapUpdateElem),
				)
			} else {
				insns = append(insns,
					StoreImm(R10, -4, int64(b%6), W),
					LoadMapFD(R1, fuzzHashFD),
					Mov64Reg(R2, R10),
					Add64Imm(R2, -4),
					Call(HelperMapDeleteElem),
				)
			}
			reinit()
		}
	}

	// Final unit: exit (R0 is always initialized after the prologue).
	units = append(units, len(insns))
	insns = append(insns, Exit())

	// Fix up jumps: forward-only, onto unit boundaries, clamped at the
	// exit. Forward-only control flow guarantees termination.
	for i, pc := range jumps {
		tu := jumpUnit[i] + jumpAhead[i]
		if tu >= len(units) {
			tu = len(units) - 1
		}
		insns[pc].Off = int16(units[tu] - pc - 1)
	}
	return &Program{Name: "fuzz_parity", Type: ProgTypeSKMsg, Insns: insns}
}

// FuzzJITParity: generated programs must behave identically on the
// compiled engines and the interpreter — verdict, faults, packet bytes, map
// state, and instruction accounting.
func FuzzJITParity(f *testing.F) {
	// Seeds biased toward each unit kind (the selector is byte%8), plus
	// mixtures; the fuzzer mutates from here.
	f.Add(bytes.Repeat([]byte{0, 0x12, 0x34}, 30)) // ALU
	f.Add(bytes.Repeat([]byte{3, 0x21, 0x47}, 30)) // stack traffic
	f.Add(bytes.Repeat([]byte{4, 0x05, 0x83}, 30)) // packet loads/stores
	f.Add(bytes.Repeat([]byte{4, 0x05, 0xBF}, 30)) // packet faults
	f.Add(bytes.Repeat([]byte{5, 0x31, 0x62}, 30)) // jump-heavy
	f.Add(bytes.Repeat([]byte{6, 0x44, 0x09}, 30)) // array map + atomics
	f.Add(bytes.Repeat([]byte{7, 0x52, 0x06}, 30)) // hash updates/deletes
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
		13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24}) // mixed
	f.Add(bytes.Repeat([]byte{2, 0x06, 0x07}, 30)) // div/mod by register (may fault)

	f.Fuzz(func(t *testing.T, seed []byte) {
		p := genParityProgram(seed)
		var pkt [32]byte
		for i := range pkt {
			pkt[i] = byte(i * 7)
			if i < len(seed) {
				pkt[i] ^= seed[i]
			}
		}
		ifindex := uint32(1)
		if len(seed) > 0 {
			ifindex = uint32(seed[0])
		}
		compareRuns(t, p, pkt[:], ifindex)
	})
}

// ---------------------------------------------------------------------------
// Deterministic parity suites.

// TestJITBudgetParity: the closure-chain backend charges instructions per
// block and must hand off to the interpreter near the budget so ErrBudget
// fires at exactly the same dynamic instruction. Loop totals are chosen to
// land under, at, and over MaxRuntimeInsns.
func TestJITBudgetParity(t *testing.T) {
	mkLoop := func(n int64) *Program {
		return &Program{Name: "loop", Type: ProgTypeXDP, Insns: []Insn{
			Mov64Imm(R1, n),
			Sub64Imm(R1, 1),
			JneImm(R1, 0, -2),
			Mov64Imm(R0, 7),
			Exit(),
		}}
	}
	for _, n := range []int64{
		4,
		(MaxRuntimeInsns - 3) / 2, // completes just under the budget
		(MaxRuntimeInsns-3)/2 + 1, // first total over the budget
		MaxRuntimeInsns,           // deep overrun
	} {
		p := mkLoop(n)
		kJ, kI := NewKernel(), NewKernel()
		kI.SetJIT(false)
		lpJ, err := kJ.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		lpI, err := kI.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		resJ, errJ := kJ.Run(lpJ, nil, 0, nil)
		resI, errI := kI.Run(lpI, nil, 0, nil)
		if !sameError(errJ, errI) || resJ.Insns != resI.Insns || resJ.Ret != resI.Ret {
			t.Fatalf("n=%d: jit (%+v, %v) vs interp (%+v, %v)", n, resJ, errJ, resI, errI)
		}
		if 2*n+3 > MaxRuntimeInsns {
			if !errors.Is(errJ, ErrBudget) || resJ.Insns != MaxRuntimeInsns {
				t.Fatalf("n=%d: want ErrBudget at %d insns, got %v at %d", n, MaxRuntimeInsns, errJ, resJ.Insns)
			}
		} else if errJ != nil {
			t.Fatalf("n=%d: unexpected error %v", n, errJ)
		}
	}
}

// TestJITFaultParity: every fault class must carry the same error and the
// same instruction count on both engines.
func TestJITFaultParity(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
		want error
	}{
		{
			name: "stack out of bounds",
			p: &Program{Name: "oob", Type: ProgTypeXDP, Insns: []Insn{
				LoadMem(R0, R10, -(StackSize + 8), DW),
				Exit(),
			}},
			want: ErrOutOfBounds,
		},
		{
			name: "packet store beyond frame",
			p: &Program{Name: "pkstore", Type: ProgTypeXDP, Insns: []Insn{
				LoadMem(R2, R1, 0, DW),
				StoreImm(R2, 100, 1, B),
				Mov64Imm(R0, 0),
				Exit(),
			}},
			want: ErrOutOfBounds,
		},
		{
			name: "divide by zero register",
			p: &Program{Name: "div0", Type: ProgTypeXDP, Insns: []Insn{
				Mov64Imm(R1, 0),
				Mov64Imm(R0, 9),
				{Op: OpDivReg, Dst: R0, Src: R1},
				Exit(),
			}},
			want: ErrDivByZero,
		},
		{
			name: "helper on a non-handle register",
			p: &Program{Name: "badmap", Type: ProgTypeXDP, Insns: []Insn{
				Mov64Imm(R1, 5),
				Mov64Reg(R2, R10),
				Add64Imm(R2, -4),
				StoreImm(R10, -4, 0, W),
				Call(HelperMapLookupElem),
				Exit(),
			}},
			want: ErrBadMapHandle,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			kJ, kI := NewKernel(), NewKernel()
			kI.SetJIT(false)
			lpJ, err := kJ.Load(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			lpI, err := kI.Load(tc.p)
			if err != nil {
				t.Fatal(err)
			}
			pktJ, pktI := make([]byte, 16), make([]byte, 16)
			resJ, errJ := kJ.Run(lpJ, pktJ, 0, nil)
			resI, errI := kI.Run(lpI, pktI, 0, nil)
			if !sameError(errJ, errI) || resJ.Insns != resI.Insns {
				t.Fatalf("jit (%d insns, %v) vs interp (%d insns, %v)", resJ.Insns, errJ, resI.Insns, errI)
			}
			if !errors.Is(errJ, tc.want) {
				t.Fatalf("want %v, got %v", tc.want, errJ)
			}
		})
	}
}

// buildSProxyShape assembles the same SK_MSG program core.buildSProxyProgram
// emits (descriptor bounds check → filter → metric → sockmap redirect) so
// the ISA-level suite can exercise the shape-specialized fast path without
// importing the dataplane.
func buildSProxyShape(t testing.TB, k *Kernel) (*LoadedProgram, *Map, *Map, *Map) {
	t.Helper()
	sockmap, err := k.CreateMap(MapSpec{Name: "t_sock", Type: MapTypeSockMap, KeySize: 4, ValueSize: 4, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	filter, err := k.CreateMap(MapSpec{Name: "t_filter", Type: MapTypeHash, KeySize: 8, ValueSize: 1, MaxEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := k.CreateMap(MapSpec{Name: "t_metrics", Type: MapTypeArray, KeySize: 4, ValueSize: 8, MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder("sproxy_shape", ProgTypeSKMsg)
	b.Ins(
		Mov64Reg(R6, R1),
		LoadMem(R7, R6, 0, DW),
		LoadMem(R2, R6, 8, DW),
		Mov64Reg(R3, R7),
		Add64Imm(R3, 16),
	)
	b.Jmp(JgtReg(R3, R2, 0), "drop")
	b.Ins(
		LoadMem(R8, R7, 0, W),
		LoadMem(R9, R6, 16, W),
		Mov64Reg(R2, R9),
		Lsh64Imm(R2, 32),
		Or64Reg(R2, R8),
		StoreMem(R10, -8, R2, DW),
		LoadMapFD(R1, filter.FD()),
		Mov64Reg(R2, R10),
		Add64Imm(R2, -8),
		Call(HelperMapLookupElem),
	)
	b.Jmp(JeqImm(R0, 0, 0), "drop")
	b.Ins(
		StoreMem(R10, -12, R8, W),
		LoadMapFD(R1, metrics.FD()),
		Mov64Reg(R2, R10),
		Add64Imm(R2, -12),
		Call(HelperMapLookupElem),
	)
	b.Jmp(JeqImm(R0, 0, 0), "redirect")
	b.Ins(
		Mov64Imm(R2, 1),
		AtomicAdd(R0, 0, R2, DW),
	)
	b.Label("redirect")
	b.Ins(
		Mov64Reg(R1, R6),
		LoadMapFD(R2, sockmap.FD()),
		Mov64Reg(R3, R8),
		Mov64Imm(R4, 0),
		Call(HelperMsgRedirectMap),
		Exit(),
	)
	b.Label("drop")
	b.Ins(Mov64Imm(R0, SKDrop), Exit())
	lp, err := k.Load(b.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	return lp, sockmap, filter, metrics
}

type paritySock struct{ id uint32 }

func (s *paritySock) DeliverDescriptor([]byte) error { return nil }
func (s *paritySock) SockID() uint32                 { return s.id }

// TestJITSProxyShapeParity drives the recognized SPROXY shape through every
// outcome — short frame, unauthorized, missing metrics slot, full redirect,
// missing socket, metadata-only fault — on both engines and compares the
// complete observable state.
func TestJITSProxyShapeParity(t *testing.T) {
	type env struct {
		k       *Kernel
		lp      *LoadedProgram
		metrics *Map
	}
	mk := func(jit bool) env {
		k := NewKernel()
		k.SetJIT(jit)
		lp, sockmap, filter, metrics := buildSProxyShape(t, k)
		if jit && lp.Engine() != EngineFast {
			t.Fatalf("SPROXY shape not recognized: engine=%v reason=%q", lp.Engine(), lp.FallbackReason())
		}
		// src 1 → dst 2 authorized; dst 2 has a socket; dst 5 is
		// authorized from src 1 but has no metrics slot and no socket.
		key := func(src, dst uint32) []byte {
			k8 := make([]byte, 8)
			putLeU32(k8[0:4], dst)
			putLeU32(k8[4:8], src)
			return k8
		}
		if err := filter.Update(key(1, 2), []byte{1}); err != nil {
			t.Fatal(err)
		}
		if err := filter.Update(key(1, 5), []byte{1}); err != nil {
			t.Fatal(err)
		}
		if err := sockmap.UpdateSock(2, &paritySock{id: 2}); err != nil {
			t.Fatal(err)
		}
		return env{k: k, lp: lp, metrics: metrics}
	}

	desc := func(dst uint32) []byte {
		d := make([]byte, 16)
		putLeU32(d[0:4], dst)
		return d
	}
	runs := []struct {
		name string
		pkt  []byte
		meta int // when >0, RunMeta with this frame length instead
		src  uint32
	}{
		{name: "short frame", pkt: desc(2)[:8], src: 1},
		{name: "unauthorized", pkt: desc(2), src: 3},
		{name: "full redirect", pkt: desc(2), src: 1},
		{name: "no metrics slot, no socket", pkt: desc(5), src: 1},
		{name: "metadata-only fault", meta: 16, src: 1},
		{name: "metadata-only short", meta: 8, src: 1},
	}
	ej, ei := mk(true), mk(false)
	for _, r := range runs {
		var resJ, resI Result
		var errJ, errI error
		if r.meta > 0 {
			resJ, errJ = ej.k.RunMeta(ej.lp, r.meta, r.src, nil)
			resI, errI = ei.k.RunMeta(ei.lp, r.meta, r.src, nil)
		} else {
			resJ, errJ = ej.k.RunCopy(ej.lp, r.pkt, r.src, nil)
			resI, errI = ei.k.RunCopy(ei.lp, r.pkt, r.src, nil)
		}
		if !sameError(errJ, errI) {
			t.Fatalf("%s: error divergence jit=%v interp=%v", r.name, errJ, errI)
		}
		if resJ.Ret != resI.Ret || resJ.Insns != resI.Insns {
			t.Fatalf("%s: result divergence jit=%+v interp=%+v", r.name, resJ, resI)
		}
		sj, si := resJ.RedirectSock, resI.RedirectSock
		if (sj == nil) != (si == nil) {
			t.Fatalf("%s: redirect divergence jit=%v interp=%v", r.name, sj, si)
		}
		if sj != nil && sj.SockID() != si.SockID() {
			t.Fatalf("%s: redirect socket divergence %d vs %d", r.name, sj.SockID(), si.SockID())
		}
	}
	dj, di := dumpMap(ej.metrics), dumpMap(ei.metrics)
	for k, v := range dj {
		if di[k] != v {
			t.Fatalf("metrics divergence at %x: jit %x interp %x", k, v, di[k])
		}
	}
	runsJ, insnsJ := ej.k.Stats()
	runsI, insnsI := ei.k.Stats()
	if runsJ != runsI || insnsJ != insnsI {
		t.Fatalf("stats divergence: jit(%d,%d) interp(%d,%d)", runsJ, insnsJ, runsI, insnsI)
	}
}

// TestJITFallbackFibLookup: bpf_fib_lookup is interpreter-only, so a
// program using it must load fine, report the fallback, and execute on the
// interpreter even with the JIT enabled — the production fallback path.
func TestJITFallbackFibLookup(t *testing.T) {
	p := &Program{Name: "fib", Type: ProgTypeXDP, Insns: []Insn{
		StoreImm(R10, -12, 1, W),         // ifindex_in
		StoreImm(R10, -8, 0x0a000001, W), // daddr
		StoreImm(R10, -4, 0, W),          // out slot
		Mov64Reg(R2, R10),
		Add64Imm(R2, -12),
		Mov64Imm(R3, FibParamsSize),
		Mov64Imm(R4, 0),
		Call(HelperFibLookup),
		Exit(),
	}}
	k := NewKernel()
	lp, err := k.Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Engine() != EngineInterp {
		t.Fatalf("want interpreter fallback, got %v", lp.Engine())
	}
	if lp.FallbackReason() == "" {
		t.Fatal("fallback without a reason")
	}
	if !k.JITEnabled() {
		t.Fatal("JIT should be enabled by default")
	}
	res, err := k.Run(lp, make([]byte, 16), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 2 { // BPF_FIB_LKUP_RET_NOT_FWDED on the null env
		t.Fatalf("want ret 2, got %d", res.Ret)
	}
	es := k.EngineStats()
	if es.InterpRuns != 1 || es.JITRuns != 0 {
		t.Fatalf("fallback run not attributed to the interpreter: %+v", es)
	}
	if es.Loaded != 1 || es.Compiled != 0 {
		t.Fatalf("program gauges wrong: %+v", es)
	}
}

// TestJITEngineStats: engine attribution follows the SetJIT switch, and the
// compiled-programs gauge counts compiled loads.
func TestJITEngineStats(t *testing.T) {
	k := NewKernel()
	p := &Program{Name: "alu", Type: ProgTypeXDP, Insns: []Insn{
		Mov64Imm(R0, 41),
		Add64Imm(R0, 1),
		Exit(),
	}}
	lp, err := k.Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Engine() != EngineJIT {
		t.Fatalf("plain ALU program should compile to the closure chain, got %v", lp.Engine())
	}
	if _, err := k.Run(lp, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	k.SetJIT(false)
	if _, err := k.Run(lp, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	k.SetJIT(true)
	if _, err := k.Run(lp, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	es := k.EngineStats()
	if es.JITRuns != 2 || es.InterpRuns != 1 {
		t.Fatalf("want 2 jit + 1 interp runs, got %+v", es)
	}
	if es.Loaded != 1 || es.Compiled != 1 {
		t.Fatalf("program gauges wrong: %+v", es)
	}
	runs, _ := k.Stats()
	if runs != 3 {
		t.Fatalf("total runs %d, want 3", runs)
	}
}

// TestJITConcurrentLoadRun races program loads, runs on both engines, map
// mutations, and SetJIT toggles on one kernel — the race-detector gate for
// the compiled dispatch path (make race-ebpf).
func TestJITConcurrentLoadRun(t *testing.T) {
	k := NewKernel()
	lp, sockmap, filter, _ := buildSProxyShape(t, k)
	key := make([]byte, 8)
	putLeU32(key[0:4], 2)
	putLeU32(key[4:8], 1)
	if err := filter.Update(key, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := sockmap.UpdateSock(2, &paritySock{id: 2}); err != nil {
		t.Fatal(err)
	}

	const iters = 300
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // loader: new programs (and maps) while others run
		defer wg.Done()
		for i := 0; i < iters; i++ {
			p := &Program{Name: fmt.Sprintf("gen%d", i), Type: ProgTypeXDP, Insns: []Insn{
				Mov64Imm(R0, int64(i)),
				Exit(),
			}}
			nlp, err := k.Load(p)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := k.Run(nlp, nil, 0, nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // sender: fast-path runs
		defer wg.Done()
		desc := make([]byte, 16)
		putLeU32(desc[0:4], 2)
		for i := 0; i < iters; i++ {
			if _, err := k.RunCopy(lp, desc, 1, nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // control plane: sockmap churn
		defer wg.Done()
		for i := 0; i < iters; i++ {
			id := uint32(3 + i%4)
			if err := sockmap.UpdateSock(id, &paritySock{id: id}); err != nil {
				t.Error(err)
				return
			}
			_ = sockmap.DeleteU32(id)
		}
	}()
	go func() { // engine toggling mid-flight
		defer wg.Done()
		for i := 0; i < iters; i++ {
			k.SetJIT(i%2 == 0)
		}
	}()
	wg.Wait()
	k.SetJIT(true)

	runs, _ := k.Stats()
	if runs != 2*iters {
		t.Fatalf("run accounting lost updates: %d runs, want %d", runs, 2*iters)
	}
	es := k.EngineStats()
	if es.JITRuns+es.InterpRuns != 2*iters {
		t.Fatalf("engine accounting lost updates: %+v", es)
	}
}
