package ebpf

// Assembler helpers: thin constructors that make hand-written programs
// (SPROXY, EPROXY, tests) readable. They mirror the clang/libbpf mnemonics.

// Mov64Imm: dst = imm.
func Mov64Imm(dst Register, imm int64) Insn { return Insn{Op: OpMovImm, Dst: dst, Imm: imm} }

// Mov64Reg: dst = src.
func Mov64Reg(dst, src Register) Insn { return Insn{Op: OpMovReg, Dst: dst, Src: src} }

// Add64Imm: dst += imm.
func Add64Imm(dst Register, imm int64) Insn { return Insn{Op: OpAddImm, Dst: dst, Imm: imm} }

// Add64Reg: dst += src.
func Add64Reg(dst, src Register) Insn { return Insn{Op: OpAddReg, Dst: dst, Src: src} }

// Sub64Imm: dst -= imm.
func Sub64Imm(dst Register, imm int64) Insn { return Insn{Op: OpSubImm, Dst: dst, Imm: imm} }

// Mul64Imm: dst *= imm.
func Mul64Imm(dst Register, imm int64) Insn { return Insn{Op: OpMulImm, Dst: dst, Imm: imm} }

// And64Imm: dst &= imm.
func And64Imm(dst Register, imm int64) Insn { return Insn{Op: OpAndImm, Dst: dst, Imm: imm} }

// Or64Reg: dst |= src.
func Or64Reg(dst, src Register) Insn { return Insn{Op: OpOrReg, Dst: dst, Src: src} }

// Rsh64Imm: dst >>= imm (logical).
func Rsh64Imm(dst Register, imm int64) Insn { return Insn{Op: OpRshImm, Dst: dst, Imm: imm} }

// Lsh64Imm: dst <<= imm.
func Lsh64Imm(dst Register, imm int64) Insn { return Insn{Op: OpLshImm, Dst: dst, Imm: imm} }

// LoadMem: dst = *(size*)(src+off).
func LoadMem(dst, src Register, off int16, size Size) Insn {
	return Insn{Op: OpLoad, Dst: dst, Src: src, Off: off, Size: size}
}

// StoreMem: *(size*)(dst+off) = src.
func StoreMem(dst Register, off int16, src Register, size Size) Insn {
	return Insn{Op: OpStore, Dst: dst, Src: src, Off: off, Size: size}
}

// StoreImm: *(size*)(dst+off) = imm.
func StoreImm(dst Register, off int16, imm int64, size Size) Insn {
	return Insn{Op: OpStoreImm, Dst: dst, Off: off, Imm: imm, Size: size}
}

// AtomicAdd: lock *(size*)(dst+off) += src.
func AtomicAdd(dst Register, off int16, src Register, size Size) Insn {
	return Insn{Op: OpAtomicAdd, Dst: dst, Src: src, Off: off, Size: size}
}

// LoadMapFD: dst = handle of the map with file descriptor fd.
func LoadMapFD(dst Register, fd int) Insn {
	return Insn{Op: OpLoadMapFD, Dst: dst, Imm: int64(fd)}
}

// Ja: unconditional relative jump.
func Ja(off int16) Insn { return Insn{Op: OpJa, Off: off} }

// JeqImm: if dst == imm goto +off.
func JeqImm(dst Register, imm int64, off int16) Insn {
	return Insn{Op: OpJeqImm, Dst: dst, Imm: imm, Off: off}
}

// JneImm: if dst != imm goto +off.
func JneImm(dst Register, imm int64, off int16) Insn {
	return Insn{Op: OpJneImm, Dst: dst, Imm: imm, Off: off}
}

// JeqReg: if dst == src goto +off.
func JeqReg(dst, src Register, off int16) Insn {
	return Insn{Op: OpJeqReg, Dst: dst, Src: src, Off: off}
}

// JgtReg: if dst > src goto +off (unsigned).
func JgtReg(dst, src Register, off int16) Insn {
	return Insn{Op: OpJgtReg, Dst: dst, Src: src, Off: off}
}

// JgtImm: if dst > imm goto +off (unsigned).
func JgtImm(dst Register, imm int64, off int16) Insn {
	return Insn{Op: OpJgtImm, Dst: dst, Imm: imm, Off: off}
}

// JltImm: if dst < imm goto +off (unsigned).
func JltImm(dst Register, imm int64, off int16) Insn {
	return Insn{Op: OpJltImm, Dst: dst, Imm: imm, Off: off}
}

// JgeImm: if dst >= imm goto +off (unsigned).
func JgeImm(dst Register, imm int64, off int16) Insn {
	return Insn{Op: OpJgeImm, Dst: dst, Imm: imm, Off: off}
}

// Call invokes helper id.
func Call(id HelperID) Insn { return Insn{Op: OpCall, Imm: int64(id)} }

// Exit returns R0 to the hook.
func Exit() Insn { return Insn{Op: OpExit} }
