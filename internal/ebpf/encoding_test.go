package ebpf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWireRoundTripSproxyProgram(t *testing.T) {
	k := NewKernel()
	sm, _ := k.CreateMap(MapSpec{Name: "s", Type: MapTypeSockMap, KeySize: 4, ValueSize: 4, MaxEntries: 4})
	prog := sproxyTestProgram(sm.FD())
	wire, err := MarshalInsns(prog.Insns)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalInsns(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prog.Insns) {
		t.Fatalf("insn count %d != %d", len(got), len(prog.Insns))
	}
	for i := range got {
		if got[i] != prog.Insns[i] {
			t.Fatalf("insn %d mismatch: %+v != %+v", i, got[i], prog.Insns[i])
		}
	}
}

func TestWireRoundTripExecutesSame(t *testing.T) {
	// decode(encode(p)) must behave identically when run.
	k := NewKernel()
	p := retProg(
		Mov64Imm(R0, 0),
		Mov64Imm(R2, 10),
		Add64Reg(R0, R2),
		Sub64Imm(R2, 1),
		JneImm(R2, 0, -3),
		Exit(),
	)
	wire, err := MarshalInsns(p.Insns)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalInsns(wire)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := loadAndRun(t, k, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := loadAndRun(t, NewKernel(), &Program{Name: "rt", Type: ProgTypeXDP, Insns: decoded}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Ret != rt.Ret {
		t.Fatalf("round-tripped program returned %d, original %d", rt.Ret, orig.Ret)
	}
}

func TestWireLdImm64TwoSlots(t *testing.T) {
	k := NewKernel()
	m, _ := k.CreateMap(MapSpec{Name: "m", Type: MapTypeArray, KeySize: 4, ValueSize: 8, MaxEntries: 1})
	insns := []Insn{LoadMapFD(R1, m.FD()), Mov64Imm(R0, 0), Exit()}
	wire, err := MarshalInsns(insns)
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 4*InsnSize { // ld_imm64 occupies two slots
		t.Fatalf("wire length %d, want %d", len(wire), 4*InsnSize)
	}
	got, err := UnmarshalInsns(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != insns[0] {
		t.Fatalf("decoded %+v", got)
	}
}

func TestWireRejectsBadInput(t *testing.T) {
	if _, err := UnmarshalInsns(make([]byte, 7)); err == nil {
		t.Fatal("non-multiple length must fail")
	}
	if _, err := UnmarshalInsns([]byte{0xFF, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown opcode must fail")
	}
	// truncated ld_imm64: single slot only
	one := []byte{ldImm64Op, 0x11, 0, 0, 1, 0, 0, 0}
	if _, err := UnmarshalInsns(one); err == nil {
		t.Fatal("truncated ld_imm64 must fail")
	}
}

func TestWireEncodingUniqueOpcodes(t *testing.T) {
	seen := map[byte]Op{}
	for op, b := range wireOp {
		if prev, dup := seen[b]; dup {
			t.Fatalf("wire opcode %#02x assigned to both %d and %d", b, prev, op)
		}
		seen[b] = op
	}
}

// Property: any structurally valid instruction sequence that encodes must
// decode to exactly itself.
func TestWireRoundTripProperty(t *testing.T) {
	ops := []Op{OpAddImm, OpSubReg, OpMovImm, OpMovReg, OpJeqImm, OpCall, OpExit, OpLoad, OpStore}
	sizes := []Size{B, H, W, DW}
	f := func(raw []uint32) bool {
		var insns []Insn
		for _, r := range raw {
			op := ops[int(r%uint32(len(ops)))]
			in := Insn{
				Op:  op,
				Dst: Register(r % 10),
				Src: Register((r >> 4) % 10),
				Off: int16(r >> 8),
				Imm: int64(int32(r)),
			}
			if op == OpCall {
				in.Dst, in.Src, in.Off = 0, 0, 0
				in.Imm = int64(HelperKtimeGetNs)
			}
			if op == OpLoad || op == OpStore {
				in.Size = sizes[int(r>>2)%len(sizes)]
				in.Imm = 0
			}
			if op.isJump() {
				in.Imm = int64(int32(r % 1000))
			}
			insns = append(insns, in)
		}
		wire, err := MarshalInsns(insns)
		if err != nil {
			return false
		}
		got, err := UnmarshalInsns(wire)
		if err != nil || len(got) != len(insns) {
			return false
		}
		for i := range got {
			if got[i] != insns[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWireDeterministic(t *testing.T) {
	p := retProg(Mov64Imm(R0, 1), Exit())
	a, _ := MarshalInsns(p.Insns)
	b, _ := MarshalInsns(p.Insns)
	if !bytes.Equal(a, b) {
		t.Fatal("encoding must be deterministic")
	}
}
