// Package metrics provides the measurement toolkit for the evaluation:
// log-bucketed latency histograms with percentile/CDF extraction, time
// series for RPS and CPU usage, and confidence intervals across repeated
// runs (the paper reports 99% CIs over 10 repetitions).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a log-bucketed histogram of non-negative values (latencies
// in seconds, sizes in bytes, ...). Buckets grow geometrically, giving
// ~1.5% relative error over nine decades, HDR-histogram style. The zero
// value is not ready; use NewHistogram.
type Histogram struct {
	buckets []uint64
	count   uint64
	sum     float64
	min     float64
	max     float64

	base  float64 // smallest representable value
	ratio float64 // bucket growth factor
}

// NewHistogram creates a histogram covering [1e-9, ~1e3) seconds.
func NewHistogram() *Histogram {
	return &Histogram{
		buckets: make([]uint64, 2048),
		base:    1e-9,
		ratio:   1.0138, // 2048 buckets span ~12 decades
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

func (h *Histogram) bucketOf(v float64) int {
	if v <= h.base {
		return 0
	}
	b := int(math.Log(v/h.base) / math.Log(h.ratio))
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	return b
}

// bucketValue returns the representative (upper-edge) value of bucket i.
func (h *Histogram) bucketValue(i int) float64 {
	return h.base * math.Pow(h.ratio, float64(i+1))
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.buckets[h.bucketOf(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return observed extremes (0 when empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-quantile (0 <= q <= 1) with bucket resolution.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			v := h.bucketValue(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// CDF returns (value, fraction) points for plotting, one per non-empty
// bucket.
func (h *Histogram) CDF() []CDFPoint {
	var out []CDFPoint
	var cum uint64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		cum += c
		out = append(out, CDFPoint{Value: h.bucketValue(i), Fraction: float64(cum) / float64(h.count)})
	}
	return out
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// Merge adds other's observations into h (same geometry required).
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.count > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Summary formats mean/p95/p99/p999 in milliseconds for report rows.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean=%.2fms p95=%.2fms p99=%.2fms p999=%.2fms n=%d",
		h.Mean()*1e3, h.Quantile(0.95)*1e3, h.Quantile(0.99)*1e3,
		h.Quantile(0.999)*1e3, h.count)
}

// Sub returns the observations present in h but not in older: the sliding
// window between two cumulative snapshots of the same stream (same
// geometry). Bucket counts are clamped at zero, so a stream reset degrades
// to the newer snapshot instead of underflowing; when any bucket clamps,
// the sum is rebuilt from bucket midpoints (the raw difference would not
// match the clamped counts, skewing Mean). The window's min/max are
// bucket-edge approximations — the exact extremes are not recoverable from
// two cumulative snapshots.
func (h *Histogram) Sub(older *Histogram) *Histogram {
	d := NewHistogram()
	if older == nil {
		d.Merge(h)
		return d
	}
	clamped := false
	for i, c := range h.buckets {
		oc := older.buckets[i]
		if c < oc {
			clamped = true // this bucket's counter went backwards (reset)
		}
		if c <= oc {
			continue
		}
		n := c - oc
		d.buckets[i] = n
		d.count += n
		if lo := d.base * math.Pow(d.ratio, float64(i)); lo < d.min {
			d.min = lo
		}
		if hi := d.bucketValue(i); hi > d.max {
			d.max = hi
		}
	}
	if d.count == 0 {
		return d
	}
	if clamped {
		// After a partial reset the raw sum difference no longer matches
		// the clamped buckets; rebuild it from bucket midpoints so Mean()
		// stays consistent with the window's counts (bucket-resolution
		// approximation, like Quantile).
		d.sum = 0
		for i, n := range d.buckets {
			if n > 0 {
				d.sum += float64(n) * d.base * math.Pow(d.ratio, float64(i)+0.5)
			}
		}
	} else if d.sum = h.sum - older.sum; d.sum < 0 {
		d.sum = 0
	}
	return d
}

// ConfidenceInterval99 returns the half-width of the 99% CI of the mean of
// xs using the normal approximation (z = 2.576), as the paper reports over
// its 10 repetitions.
func ConfidenceInterval99(xs []float64) (mean, halfWidth float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / (n - 1))
	return mean, 2.576 * sd / math.Sqrt(n)
}

// Percentiles is a convenience for sorting raw samples and reading exact
// (non-bucketed) percentiles in tests.
func Percentiles(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		return make([]float64, len(qs))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(math.Ceil(q*float64(len(s)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s) {
			idx = len(s) - 1
		}
		out[i] = s[idx]
	}
	return out
}
