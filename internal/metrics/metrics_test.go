package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for _, v := range []float64{0.001, 0.002, 0.003, 0.004, 0.005} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-0.003) > 1e-9 {
		t.Fatalf("mean %v", m)
	}
	if h.Min() != 0.001 || h.Max() != 0.005 {
		t.Fatalf("min/max %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	// 1000 values uniform on (0, 1] seconds
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		if rel := math.Abs(got-q) / q; rel > 0.03 {
			t.Errorf("q%.2f: got %v (rel err %.3f)", q, got, rel)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Fatal("extreme quantiles must be min/max")
	}
}

func TestHistogramEmptySafe(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.CDF() != nil {
		t.Fatal("empty CDF must be nil")
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatal("negative observation must clamp to 0")
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%10+1) * 0.01)
	}
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("no CDF points")
	}
	prevV, prevF := 0.0, 0.0
	for _, p := range cdf {
		if p.Value <= prevV || p.Fraction < prevF {
			t.Fatalf("CDF not monotone at %+v", p)
		}
		prevV, prevF = p.Value, p.Fraction
	}
	if last := cdf[len(cdf)-1].Fraction; math.Abs(last-1.0) > 1e-12 {
		t.Fatalf("CDF must end at 1.0, got %v", last)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(0.001)
	b.Observe(0.1)
	a.Merge(b)
	if a.Count() != 2 || a.Max() != 0.1 || a.Min() != 0.001 {
		t.Fatalf("merge wrong: %s", a.Summary())
	}
}

func TestHistogramSub(t *testing.T) {
	older := NewHistogram()
	for i := 0; i < 100; i++ {
		older.Observe(0.050) // old slow era
	}
	cur := NewHistogram()
	cur.Merge(older)
	for i := 0; i < 1000; i++ {
		cur.Observe(0.001) // new fast era
	}

	win := cur.Sub(older)
	if win.Count() != 1000 {
		t.Fatalf("window count %d, want 1000", win.Count())
	}
	if p99 := win.Quantile(0.99); p99 > 0.010 {
		t.Fatalf("window p99 %.4fs polluted by the subtracted era, want ~1ms", p99)
	}
	if mean := win.Mean(); mean > 0.010 {
		t.Fatalf("window mean %.4fs, want ~1ms", mean)
	}

	// Nil baseline: Sub degrades to a copy of the cumulative histogram.
	if all := cur.Sub(nil); all.Count() != cur.Count() {
		t.Fatalf("Sub(nil) count %d, want %d", all.Count(), cur.Count())
	}

	// A stale (larger) baseline clamps to empty rather than underflowing.
	if neg := older.Sub(cur); neg.Count() != 0 {
		t.Fatalf("underflowing Sub count %d, want clamp to 0", neg.Count())
	}
}

// TestHistogramSubPartialReset: when some bucket's counter goes backwards
// (the stream restarted below the baseline), the window sum is rebuilt from
// bucket midpoints so Mean() matches the clamped counts instead of the
// meaningless raw sum difference.
func TestHistogramSubPartialReset(t *testing.T) {
	older := NewHistogram()
	for i := 0; i < 100; i++ {
		older.Observe(0.050)
	}
	reset := NewHistogram() // restarted stream: fewer slow, many fast
	for i := 0; i < 10; i++ {
		reset.Observe(0.050)
	}
	for i := 0; i < 1000; i++ {
		reset.Observe(0.001)
	}
	win := reset.Sub(older)
	if win.Count() != 1000 {
		t.Fatalf("window count %d, want the 1000 un-clamped observations", win.Count())
	}
	if mean := win.Mean(); mean < 0.0005 || mean > 0.002 {
		t.Fatalf("window mean %.5fs after a partial reset, want ~1ms (midpoint approximation)", mean)
	}
}

func TestHistogramSummaryIncludesP999(t *testing.T) {
	h := NewHistogram()
	h.Observe(0.001)
	if s := h.Summary(); !strings.Contains(s, "p999=") {
		t.Fatalf("Summary missing p999: %s", s)
	}
}

func TestHistogramQuantileWithinBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, r := range raw {
			h.Observe(float64(r) / 1000)
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			v := h.Quantile(q)
			if v < h.Min() || v > h.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfidenceInterval(t *testing.T) {
	mean, hw := ConfidenceInterval99([]float64{10, 10, 10, 10})
	if mean != 10 || hw != 0 {
		t.Fatalf("constant data: mean=%v hw=%v", mean, hw)
	}
	mean, hw = ConfidenceInterval99([]float64{9, 11})
	if mean != 10 || hw <= 0 {
		t.Fatalf("spread data: mean=%v hw=%v", mean, hw)
	}
	if m, h := ConfidenceInterval99(nil); m != 0 || h != 0 {
		t.Fatal("empty input must be zero")
	}
	if m, h := ConfidenceInterval99([]float64{5}); m != 5 || h != 0 {
		t.Fatal("single sample must have zero width")
	}
}

func TestPercentilesExact(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	ps := Percentiles(xs, 0.2, 0.5, 1.0)
	if ps[0] != 1 || ps[1] != 3 || ps[2] != 5 {
		t.Fatalf("got %v", ps)
	}
	// input must not be mutated
	if xs[0] != 5 {
		t.Fatal("Percentiles mutated its input")
	}
	if out := Percentiles(nil, 0.5); out[0] != 0 {
		t.Fatal("empty input must yield zeros")
	}
}

func TestTimeSeriesRate(t *testing.T) {
	ts := NewTimeSeries(1.0, ModeRate)
	// 10 requests in second 0, 20 in second 2
	for i := 0; i < 10; i++ {
		ts.Observe(0.5, 1)
	}
	for i := 0; i < 20; i++ {
		ts.Observe(2.5, 1)
	}
	pts := ts.Points()
	if len(pts) != 3 {
		t.Fatalf("points %d want 3", len(pts))
	}
	if pts[0].V != 10 || pts[1].V != 0 || pts[2].V != 20 {
		t.Fatalf("rates %v", pts)
	}
}

func TestTimeSeriesMean(t *testing.T) {
	ts := NewTimeSeries(1.0, ModeMean)
	ts.Observe(0.1, 2)
	ts.Observe(0.9, 4)
	pts := ts.Points()
	if pts[0].V != 3 {
		t.Fatalf("mean bucket %v want 3", pts[0].V)
	}
}

func TestTimeSeriesNegativeTimeIgnored(t *testing.T) {
	ts := NewTimeSeries(1.0, ModeRate)
	ts.Observe(-1, 1)
	if len(ts.Points()) != 0 {
		t.Fatal("negative time must be ignored")
	}
}

func TestTimeSeriesMeanSkipsEmptyBuckets(t *testing.T) {
	ts := NewTimeSeries(1.0, ModeMean)
	ts.Observe(0.5, 10)
	ts.Observe(5.5, 20)
	if m := ts.Mean(); m != 15 {
		t.Fatalf("mean %v want 15 (empty buckets skipped)", m)
	}
}

func TestTimeSeriesMaxAndSparkline(t *testing.T) {
	ts := NewTimeSeries(1.0, ModeRate)
	ts.Observe(0.5, 1)
	ts.Observe(1.5, 1)
	ts.Observe(1.6, 1)
	if ts.Max() != 2 {
		t.Fatalf("max %v", ts.Max())
	}
	if s := ts.Sparkline(10); s == "" {
		t.Fatal("sparkline empty")
	}
	empty := NewTimeSeries(1.0, ModeRate)
	if empty.Sparkline(10) != "" {
		t.Fatal("empty series sparkline must be empty")
	}
}

func TestFormatPoints(t *testing.T) {
	pts := []Point{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	out := FormatPoints(pts, 2)
	if out == "" {
		t.Fatal("no output")
	}
}

func TestTimeSeriesWindowValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window must panic")
		}
	}()
	NewTimeSeries(0, ModeRate)
}
