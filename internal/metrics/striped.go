package metrics

import "sync"

// stripeCount is the number of independent histogram stripes (power of
// two). Concurrent observers with distinct keys land on distinct stripes,
// so recording a latency never serializes the request path on one mutex;
// 32 stripes keep the merge-on-read cost trivial (32 × 2048 bucket adds)
// while exceeding any realistic core count for contention purposes.
const stripeCount = 32

// histStripe pads each {mutex, histogram} pair to its own cache line so
// stripes do not false-share under concurrent observation.
type histStripe struct {
	mu sync.Mutex
	h  *Histogram
	_  [6]uint64
}

// StripedHistogram is a Histogram sharded for concurrent writers: Observe
// locks only the stripe selected by the caller's key, and readers merge
// all stripes into a fresh snapshot. It is the gateway's latency recorder
// under parallel load — the striped replacement for a single histogram
// behind a global mutex.
type StripedHistogram struct {
	stripes [stripeCount]histStripe
}

// NewStripedHistogram creates an empty striped histogram with the standard
// latency geometry of NewHistogram.
func NewStripedHistogram() *StripedHistogram {
	s := &StripedHistogram{}
	for i := range s.stripes {
		s.stripes[i].h = NewHistogram()
	}
	return s
}

// Observe records one value under the stripe selected by key. Callers with
// distinct keys (e.g. per-request caller IDs) never contend; an identical
// key always lands on the same stripe, which is still correct — stripes
// are merged on read.
func (s *StripedHistogram) Observe(key uint64, v float64) {
	st := &s.stripes[key&(stripeCount-1)]
	st.mu.Lock()
	st.h.Observe(v)
	st.mu.Unlock()
}

// Count returns the total number of observations across all stripes.
func (s *StripedHistogram) Count() uint64 {
	var n uint64
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		n += st.h.Count()
		st.mu.Unlock()
	}
	return n
}

// Snapshot merges all stripes into a freshly allocated Histogram. The
// merge walks each stripe under its own lock, so a snapshot taken during
// traffic is a consistent-per-stripe view and never blocks writers for
// longer than one stripe merge.
func (s *StripedHistogram) Snapshot() *Histogram {
	out := NewHistogram()
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		out.Merge(st.h)
		st.mu.Unlock()
	}
	return out
}
