package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestStripedHistogramMatchesSerial(t *testing.T) {
	s := NewStripedHistogram()
	ref := NewHistogram()
	for i := 0; i < 10000; i++ {
		v := float64(i%997) * 1e-6
		s.Observe(uint64(i), v)
		ref.Observe(v)
	}
	snap := s.Snapshot()
	if snap.Count() != ref.Count() {
		t.Fatalf("count %d want %d", snap.Count(), ref.Count())
	}
	if math.Abs(snap.Mean()-ref.Mean()) > 1e-12 {
		t.Fatalf("mean %g want %g", snap.Mean(), ref.Mean())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if snap.Quantile(q) != ref.Quantile(q) {
			t.Fatalf("q%.2f: %g want %g", q, snap.Quantile(q), ref.Quantile(q))
		}
	}
}

func TestStripedHistogramConcurrent(t *testing.T) {
	s := NewStripedHistogram()
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.Observe(uint64(w*perWriter+i), 1e-3)
			}
		}(w)
	}
	// concurrent snapshots must be consistent (monotone counts, no panic)
	var prev uint64
	for i := 0; i < 50; i++ {
		n := s.Snapshot().Count()
		if n < prev {
			t.Fatalf("snapshot count went backwards: %d after %d", n, prev)
		}
		prev = n
	}
	wg.Wait()
	if got := s.Count(); got != writers*perWriter {
		t.Fatalf("count %d want %d", got, writers*perWriter)
	}
	if got := s.Snapshot().Count(); got != writers*perWriter {
		t.Fatalf("snapshot count %d want %d", got, writers*perWriter)
	}
}
