package metrics

import (
	"fmt"
	"strings"
)

// TimeSeries accumulates (t, value) observations bucketed into fixed
// windows — the RPS and CPU-usage traces of Figs. 9–12.
type TimeSeries struct {
	window float64 // seconds per bucket
	sums   []float64
	counts []uint64
	mode   SeriesMode
}

// SeriesMode selects how bucket values are reported.
type SeriesMode int

// Series modes.
const (
	// ModeRate reports bucketSum/window (e.g. requests per second when
	// each observation contributes 1).
	ModeRate SeriesMode = iota
	// ModeMean reports the average of observations in the bucket
	// (e.g. response time or CPU usage samples).
	ModeMean
)

// NewTimeSeries creates a series with the given bucket width in seconds.
func NewTimeSeries(windowSec float64, mode SeriesMode) *TimeSeries {
	if windowSec <= 0 {
		panic("metrics: window must be positive")
	}
	return &TimeSeries{window: windowSec, mode: mode}
}

func (ts *TimeSeries) grow(idx int) {
	for len(ts.sums) <= idx {
		ts.sums = append(ts.sums, 0)
		ts.counts = append(ts.counts, 0)
	}
}

// Observe adds value at time t (seconds).
func (ts *TimeSeries) Observe(t, value float64) {
	if t < 0 {
		return
	}
	idx := int(t / ts.window)
	ts.grow(idx)
	ts.sums[idx] += value
	ts.counts[idx]++
}

// Point is one reported bucket.
type Point struct {
	T float64 // bucket start time, seconds
	V float64
}

// Points renders the series.
func (ts *TimeSeries) Points() []Point {
	out := make([]Point, len(ts.sums))
	for i := range ts.sums {
		v := 0.0
		switch ts.mode {
		case ModeRate:
			v = ts.sums[i] / ts.window
		case ModeMean:
			if ts.counts[i] > 0 {
				v = ts.sums[i] / float64(ts.counts[i])
			}
		}
		out[i] = Point{T: float64(i) * ts.window, V: v}
	}
	return out
}

// Mean returns the mean of all bucket values (ignoring empty buckets in
// ModeMean).
func (ts *TimeSeries) Mean() float64 {
	pts := ts.Points()
	if len(pts) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for i, p := range pts {
		if ts.mode == ModeMean && ts.counts[i] == 0 {
			continue
		}
		sum += p.V
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Max returns the maximum bucket value.
func (ts *TimeSeries) Max() float64 {
	var max float64
	for _, p := range ts.Points() {
		if p.V > max {
			max = p.V
		}
	}
	return max
}

// Sparkline renders an ASCII sparkline for terminal reports.
func (ts *TimeSeries) Sparkline(width int) string {
	pts := ts.Points()
	if len(pts) == 0 || width <= 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	max := ts.Max()
	if max == 0 {
		return strings.Repeat("▁", min(width, len(pts)))
	}
	step := float64(len(pts)) / float64(width)
	if step < 1 {
		step = 1
	}
	var b strings.Builder
	for i := 0.0; int(i) < len(pts) && b.Len() < width*4; i += step {
		v := pts[int(i)].V
		lvl := int(v / max * float64(len(ramp)-1))
		b.WriteRune(ramp[lvl])
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// FormatPoints renders points as "t=0s v=1.2" rows for report output.
func FormatPoints(pts []Point, every int) string {
	var b strings.Builder
	for i, p := range pts {
		if every > 1 && i%every != 0 {
			continue
		}
		fmt.Fprintf(&b, "  t=%6.0fs  %10.2f\n", p.T, p.V)
	}
	return b.String()
}
