package netstack

import (
	"fmt"

	"github.com/spright-go/spright/internal/ebpf"
)

// ForwardingProgram assembles the §3.5 eBPF forwarding program for the
// given program type (XDP for the NIC hook, TC for veth-host hooks):
//
//  1. Parse the destination address from the frame.
//  2. bpf_fib_lookup against the kernel FIB.
//  3. bpf_redirect the raw frame to the egress interface — bypassing the
//     kernel protocol stack and iptables entirely.
//
// Packets without a route fall through to the kernel slow path (pass).
func ForwardingProgram(name string, typ ebpf.ProgType) (*ebpf.Program, error) {
	if typ != ebpf.ProgTypeXDP && typ != ebpf.ProgTypeTC {
		return nil, fmt.Errorf("netstack: forwarding program must be XDP or TC, got %v", typ)
	}
	passVerdict := ebpf.XDPPass
	if typ == ebpf.ProgTypeTC {
		passVerdict = ebpf.TCActOK
	}

	b := ebpf.NewBuilder(name, typ)
	// r6 = data, r7 = data_end
	b.Ins(
		ebpf.LoadMem(ebpf.R6, ebpf.R1, 0, ebpf.DW),
		ebpf.LoadMem(ebpf.R7, ebpf.R1, 8, ebpf.DW),
		// bounds check: need at least the 4-byte daddr
		ebpf.Mov64Reg(ebpf.R2, ebpf.R6),
		ebpf.Add64Imm(ebpf.R2, 4),
	)
	b.Jmp(ebpf.JgtReg(ebpf.R2, ebpf.R7, 0), "pass")
	b.Ins(
		// r8 = daddr; r9 = ingress ifindex
		ebpf.LoadMem(ebpf.R8, ebpf.R6, 0, ebpf.W),
		ebpf.LoadMem(ebpf.R9, ebpf.R1, 16, ebpf.W),
		// fib params on stack: {ifindex_in, daddr, ifindex_out}
		ebpf.StoreMem(ebpf.R10, -12, ebpf.R9, ebpf.W),
		ebpf.StoreMem(ebpf.R10, -8, ebpf.R8, ebpf.W),
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -12),
		ebpf.Mov64Imm(ebpf.R3, ebpf.FibParamsSize),
		ebpf.Mov64Imm(ebpf.R4, 0),
		ebpf.Call(ebpf.HelperFibLookup),
	)
	b.Jmp(ebpf.JneImm(ebpf.R0, 0, 0), "pass")
	b.Ins(
		ebpf.LoadMem(ebpf.R1, ebpf.R10, -4, ebpf.W), // egress ifindex
		ebpf.Mov64Imm(ebpf.R2, 0),
		ebpf.Call(ebpf.HelperRedirect),
		ebpf.Exit(), // verdict from bpf_redirect
	)
	b.Label("pass")
	b.Ins(ebpf.Mov64Imm(ebpf.R0, passVerdict), ebpf.Exit())
	return b.Program()
}

// EnableAcceleration loads and attaches forwarding programs to a NIC's XDP
// hook and to every provided veth-host TC hook, returning the links so
// callers can detach (the xdp ablation experiment toggles this).
func EnableAcceleration(n *Node, nic *Device, vethHosts ...*Device) ([]*ebpf.Link, error) {
	var links []*ebpf.Link
	if nic != nil {
		prog, err := ForwardingProgram("xdp_fwd", ebpf.ProgTypeXDP)
		if err != nil {
			return nil, err
		}
		lp, err := n.Kernel.Load(prog)
		if err != nil {
			return nil, err
		}
		l, err := nic.XDP.Attach(lp)
		if err != nil {
			return nil, err
		}
		links = append(links, l)
	}
	for _, v := range vethHosts {
		prog, err := ForwardingProgram("tc_fwd_"+v.Name, ebpf.ProgTypeTC)
		if err != nil {
			return nil, err
		}
		lp, err := n.Kernel.Load(prog)
		if err != nil {
			return nil, err
		}
		l, err := v.TC.Attach(lp)
		if err != nil {
			return nil, err
		}
		links = append(links, l)
	}
	return links, nil
}
