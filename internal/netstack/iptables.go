package netstack

import (
	"fmt"
	"sync"
)

// Verdict of an iptables rule or chain.
type Verdict int

// Rule verdicts.
const (
	VerdictAccept Verdict = iota
	VerdictDrop
	VerdictContinue // no match: evaluate the next rule
)

// Rule is one iptables rule: match on (src, dst) wildcards and decide.
// Zero fields are wildcards.
type Rule struct {
	Src, Dst uint32
	Decision Verdict // VerdictAccept or VerdictDrop when matched
	Comment  string
}

func (r Rule) matches(p *Packet) bool {
	if r.Src != 0 && r.Src != p.Src {
		return false
	}
	if r.Dst != 0 && r.Dst != p.Dst {
		return false
	}
	return true
}

// RuleChain models one iptables chain. Every traversal evaluates rules
// top-down and charges one IptablesHit per rule examined — the linear-scan
// cost that [61] reports dominates CNI networking overhead and that the
// XDP redirect path (§3.5) avoids entirely.
type RuleChain struct {
	mu     sync.RWMutex
	name   string
	rules  []Rule
	policy Verdict
}

// NewRuleChain creates a chain with a default-accept policy.
func NewRuleChain(name string) *RuleChain {
	return &RuleChain{name: name, policy: VerdictAccept}
}

// SetPolicy sets the chain's default verdict.
func (c *RuleChain) SetPolicy(v Verdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = v
}

// Append adds a rule at the end of the chain.
func (c *RuleChain) Append(r Rule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules = append(c.rules, r)
}

// Len returns the number of rules.
func (c *RuleChain) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rules)
}

// Evaluate runs the packet through the chain, charging one hit per rule
// examined, and returns the verdict.
func (c *RuleChain) Evaluate(p *Packet) Verdict {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for i, r := range c.rules {
		if p.Audit != nil {
			p.Audit.IptablesHits++
		}
		if r.matches(p) {
			_ = i
			return r.Decision
		}
	}
	return c.policy
}

func (c *RuleChain) String() string {
	return fmt.Sprintf("chain %s (%d rules)", c.name, c.Len())
}
