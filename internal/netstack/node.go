package netstack

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"github.com/spright-go/spright/internal/cost"
	"github.com/spright-go/spright/internal/ebpf"
)

// DeviceKind distinguishes network devices on the node.
type DeviceKind int

// Device kinds.
const (
	DevNIC DeviceKind = iota
	DevVethHost
	DevVethPod
	DevLoopback
)

// Endpoint receives packets delivered to a device (a pod's network
// namespace / socket layer in the real system).
type Endpoint interface {
	Receive(p *Packet)
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(p *Packet)

// Receive calls f(p).
func (f EndpointFunc) Receive(p *Packet) { f(p) }

// Device is one network interface. NICs carry an XDP hook; host-side veths
// carry a TC ingress hook (the attachment points of Fig. 7).
type Device struct {
	node    *Node
	Ifindex int
	Name    string
	Kind    DeviceKind

	XDP *ebpf.Hook // non-nil on NICs
	TC  *ebpf.Hook // non-nil on veth-host devices

	peer     *Device  // veth pair peer
	endpoint Endpoint // set on pod-side veths and NICs facing out
}

// Peer returns the other end of a veth pair.
func (d *Device) Peer() *Device { return d.peer }

// SetEndpoint binds the receiver of packets delivered to this device.
func (d *Device) SetEndpoint(e Endpoint) { d.endpoint = e }

// Node is one simulated worker node's kernel networking state.
type Node struct {
	Name string

	mu      sync.RWMutex
	devices map[int]*Device
	nextIf  int

	Kernel   *ebpf.Kernel
	FIB      *FIB
	Forward  *RuleChain // the iptables FORWARD chain all kernel-routed traffic crosses
	nowNanos func() int64
}

// NewNode creates a node with an empty FIB, an empty FORWARD chain and a
// fresh eBPF kernel whose helper environment (ktime, fib_lookup) is wired
// to this node.
func NewNode(name string) *Node {
	n := &Node{
		Name:    name,
		devices: make(map[int]*Device),
		nextIf:  1,
		Kernel:  ebpf.NewKernel(),
		FIB:     NewFIB(),
		Forward: NewRuleChain("FORWARD"),
	}
	n.Kernel.SetEnv(nodeEnv{n})
	return n
}

// SetClock wires a monotonic time source for bpf_ktime_get_ns.
func (n *Node) SetClock(now func() int64) { n.nowNanos = now }

// nodeEnv adapts the node to the ebpf.Env helper interface.
type nodeEnv struct{ n *Node }

func (e nodeEnv) Now() int64 {
	if e.n.nowNanos != nil {
		return e.n.nowNanos()
	}
	return 0
}

func (e nodeEnv) FIBLookup(daddr uint32, _ uint32) (uint32, bool) {
	ifi, ok := e.n.FIB.Lookup(daddr)
	return uint32(ifi), ok
}

func (n *Node) addDevice(name string, kind DeviceKind) *Device {
	n.mu.Lock()
	defer n.mu.Unlock()
	d := &Device{node: n, Ifindex: n.nextIf, Name: name, Kind: kind}
	n.nextIf++
	n.devices[d.Ifindex] = d
	return d
}

// AddNIC creates a physical NIC with an XDP hook.
func (n *Node) AddNIC(name string) *Device {
	d := n.addDevice(name, DevNIC)
	d.XDP = ebpf.NewHook(n.Kernel, ebpf.AttachXDP)
	return d
}

// AddVethPair creates a veth pair: the host side carries a TC ingress hook,
// the pod side belongs to the pod's namespace.
func (n *Node) AddVethPair(podName string) (host, pod *Device) {
	host = n.addDevice("veth-"+podName+"-host", DevVethHost)
	pod = n.addDevice("veth-"+podName+"-pod", DevVethPod)
	host.TC = ebpf.NewHook(n.Kernel, ebpf.AttachTCIngress)
	host.peer, pod.peer = pod, host
	return host, pod
}

// Device returns the device with the given ifindex.
func (n *Node) Device(ifindex int) (*Device, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	d, ok := n.devices[ifindex]
	return d, ok
}

// Errors.
var (
	ErrNoRoute    = errors.New("netstack: no route to destination")
	ErrDropped    = errors.New("netstack: packet dropped")
	ErrNoEndpoint = errors.New("netstack: destination device has no endpoint")
)

// frame serializes the packet header for hook programs: daddr (u32 LE) then
// saddr, followed by the payload. The XDP forwarding program reads daddr at
// offset 0 — matching fibTestProgram-style parsers.
func frame(p *Packet) []byte {
	b := make([]byte, 8+len(p.Payload))
	binary.LittleEndian.PutUint32(b[0:4], p.Dst)
	binary.LittleEndian.PutUint32(b[4:8], p.Src)
	copy(b[8:], p.Payload)
	return b
}

// deliverToDevice hands the packet to a device's bound endpoint, following
// the veth pair to the pod side when targeting the host side.
func (n *Node) deliverToDevice(d *Device, p *Packet) error {
	target := d
	if d.Kind == DevVethHost && d.peer != nil {
		target = d.peer
	}
	if target.endpoint == nil {
		return fmt.Errorf("%w: %s", ErrNoEndpoint, target.Name)
	}
	target.endpoint.Receive(p)
	return nil
}

// ExternalIn delivers an externally arriving packet from the NIC to the pod
// that owns the destination address. The NIC's XDP hook runs first: an
// XDP_REDIRECT verdict short-circuits the kernel stack and iptables
// (§3.5 ①); otherwise the packet takes the kernel slow path and is charged
// the external-in hop profile plus iptables traversal.
func (n *Node) ExternalIn(nic *Device, p *Packet) error {
	if nic.XDP != nil && nic.XDP.Attached() > 0 {
		res, err := nic.XDP.Fire(frame(p), uint32(nic.Ifindex), nil)
		if err != nil {
			return fmt.Errorf("xdp: %w", err)
		}
		switch {
		case res.Ret == ebpf.XDPDrop:
			p.note(cost.HopXDPRedirect)
			return ErrDropped
		case res.HasIfRedir:
			dev, ok := n.Device(int(res.RedirectIf))
			if !ok {
				return fmt.Errorf("netstack: redirect to unknown ifindex %d", res.RedirectIf)
			}
			p.note(cost.HopXDPRedirect)
			// the receiving pod still crosses one copy+wake to
			// userspace, but skips stack + iptables.
			prof := cost.Audit{Copies: 1, CtxSwitches: 1, Interrupts: 1, BytesCopied: len(p.Payload)}
			p.Audit.Add(prof)
			return n.deliverToDevice(dev, p)
		}
	}
	// kernel slow path
	ifi, ok := n.FIB.Lookup(p.Dst)
	if !ok {
		return ErrNoRoute
	}
	if n.Forward.Evaluate(p) == VerdictDrop {
		return ErrDropped
	}
	dev, ok := n.Device(ifi)
	if !ok {
		return fmt.Errorf("netstack: route to unknown ifindex %d", ifi)
	}
	p.note(cost.HopExternalIn)
	return n.deliverToDevice(dev, p)
}

// PodToPod carries a packet from one pod to another on the same node. The
// source pod's host-side veth TC hook runs first: TC_ACT_REDIRECT passes
// the raw frame directly to the destination veth (§3.5 ②); otherwise the
// packet crosses both kernel stacks and iptables (the cross-pod profile of
// Table 1).
func (n *Node) PodToPod(srcHostVeth *Device, p *Packet) error {
	if srcHostVeth.TC != nil && srcHostVeth.TC.Attached() > 0 {
		res, err := srcHostVeth.TC.Fire(frame(p), uint32(srcHostVeth.Ifindex), nil)
		if err != nil {
			return fmt.Errorf("tc: %w", err)
		}
		switch {
		case res.Ret == ebpf.TCActShot:
			p.note(cost.HopXDPRedirect)
			return ErrDropped
		case res.HasIfRedir:
			dev, ok := n.Device(int(res.RedirectIf))
			if !ok {
				return fmt.Errorf("netstack: redirect to unknown ifindex %d", res.RedirectIf)
			}
			p.note(cost.HopXDPRedirect)
			prof := cost.Audit{Copies: 1, CtxSwitches: 1, Interrupts: 1, BytesCopied: len(p.Payload)}
			p.Audit.Add(prof)
			return n.deliverToDevice(dev, p)
		}
	}
	ifi, ok := n.FIB.Lookup(p.Dst)
	if !ok {
		return ErrNoRoute
	}
	if n.Forward.Evaluate(p) == VerdictDrop {
		return ErrDropped
	}
	dev, ok := n.Device(ifi)
	if !ok {
		return fmt.Errorf("netstack: route to unknown ifindex %d", ifi)
	}
	p.note(cost.HopCrossPod)
	return n.deliverToDevice(dev, p)
}

// Localhost carries a packet between two processes inside one pod (sidecar
// ↔ user container) over loopback: the intra-pod profile.
func (n *Node) Localhost(p *Packet, to Endpoint) error {
	if to == nil {
		return ErrNoEndpoint
	}
	p.note(cost.HopIntraPod)
	to.Receive(p)
	return nil
}

// ExternalOut accounts the pod → NIC transmission of a response.
func (n *Node) ExternalOut(p *Packet) {
	p.note(cost.HopExternalOut)
}
