package netstack

import (
	"errors"
	"testing"

	"github.com/spright-go/spright/internal/cost"
	"github.com/spright-go/spright/internal/ebpf"
)

type sink struct {
	got []*Packet
}

func (s *sink) Receive(p *Packet) { s.got = append(s.got, p) }

// testNode builds a node with one NIC and two pods (A at 10.0.0.1, B at
// 10.0.0.2) each behind a veth pair, with routes installed.
func testNode(t *testing.T) (n *Node, nic *Device, hostA, hostB *Device, sinkA, sinkB *sink) {
	t.Helper()
	n = NewNode("w1")
	nic = n.AddNIC("eth0")
	hostA, podA := n.AddVethPair("a")
	hostB, podB := n.AddVethPair("b")
	sinkA, sinkB = &sink{}, &sink{}
	podA.SetEndpoint(sinkA)
	podB.SetEndpoint(sinkB)
	n.FIB.AddRoute(0x0a000001, hostA.Ifindex)
	n.FIB.AddRoute(0x0a000002, hostB.Ifindex)
	return
}

func TestExternalInKernelPathAuditsExternalProfile(t *testing.T) {
	n, nic, _, _, sinkA, _ := testNode(t)
	p := NewPacket(0xc0a80001, 0x0a000001, make([]byte, 100))
	if err := n.ExternalIn(nic, p); err != nil {
		t.Fatal(err)
	}
	if len(sinkA.got) != 1 {
		t.Fatal("pod A did not receive the packet")
	}
	want := cost.HopExternalIn.Profile()
	got := *p.Audit
	got.BytesCopied = 0
	if got != want {
		t.Fatalf("audit %+v, want external-in profile %+v", got, want)
	}
	if p.Audit.BytesCopied != 100 {
		t.Fatalf("bytes copied %d want 100", p.Audit.BytesCopied)
	}
}

func TestExternalInNoRoute(t *testing.T) {
	n, nic, _, _, _, _ := testNode(t)
	p := NewPacket(1, 0xdeadbeef, nil)
	if err := n.ExternalIn(nic, p); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("want ErrNoRoute, got %v", err)
	}
}

func TestPodToPodKernelPathAuditsCrossPodProfile(t *testing.T) {
	n, _, hostA, _, _, sinkB := testNode(t)
	p := NewPacket(0x0a000001, 0x0a000002, make([]byte, 50))
	if err := n.PodToPod(hostA, p); err != nil {
		t.Fatal(err)
	}
	if len(sinkB.got) != 1 {
		t.Fatal("pod B did not receive")
	}
	want := cost.HopCrossPod.Profile()
	got := *p.Audit
	got.BytesCopied = 0
	if got != want {
		t.Fatalf("audit %+v want cross-pod %+v", got, want)
	}
	if p.Audit.BytesCopied != 100 { // two copies of 50 bytes
		t.Fatalf("bytes copied %d want 100", p.Audit.BytesCopied)
	}
}

func TestIptablesRuleCostCharged(t *testing.T) {
	n, _, hostA, _, _, _ := testNode(t)
	for i := 0; i < 10; i++ {
		n.Forward.Append(Rule{Src: 0xffffffff, Decision: VerdictAccept}) // never matches
	}
	p := NewPacket(0x0a000001, 0x0a000002, nil)
	if err := n.PodToPod(hostA, p); err != nil {
		t.Fatal(err)
	}
	if p.Audit.IptablesHits != 10 {
		t.Fatalf("iptables hits %d want 10 (full chain scan)", p.Audit.IptablesHits)
	}
}

func TestIptablesDrop(t *testing.T) {
	n, _, hostA, _, _, sinkB := testNode(t)
	n.Forward.Append(Rule{Dst: 0x0a000002, Decision: VerdictDrop})
	p := NewPacket(0x0a000001, 0x0a000002, nil)
	if err := n.PodToPod(hostA, p); !errors.Is(err, ErrDropped) {
		t.Fatalf("want ErrDropped, got %v", err)
	}
	if len(sinkB.got) != 0 {
		t.Fatal("dropped packet must not be delivered")
	}
}

func TestIptablesPolicyAndMatching(t *testing.T) {
	c := NewRuleChain("test")
	c.SetPolicy(VerdictDrop)
	p := NewPacket(1, 2, nil)
	if v := c.Evaluate(p); v != VerdictDrop {
		t.Fatal("default policy must apply")
	}
	c.Append(Rule{Src: 1, Dst: 2, Decision: VerdictAccept})
	if v := c.Evaluate(p); v != VerdictAccept {
		t.Fatal("matching rule must accept")
	}
	other := NewPacket(9, 9, nil)
	if v := c.Evaluate(other); v != VerdictDrop {
		t.Fatal("non-matching falls to policy")
	}
}

func TestLocalhostAuditsIntraPodProfile(t *testing.T) {
	n := NewNode("w1")
	s := &sink{}
	p := NewPacket(0, 0, make([]byte, 10))
	if err := n.Localhost(p, s); err != nil {
		t.Fatal(err)
	}
	want := cost.HopIntraPod.Profile()
	got := *p.Audit
	got.BytesCopied = 0
	if got != want {
		t.Fatalf("audit %+v want intra-pod %+v", got, want)
	}
}

func TestLocalhostNilEndpoint(t *testing.T) {
	n := NewNode("w1")
	if err := n.Localhost(NewPacket(0, 0, nil), nil); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("want ErrNoEndpoint, got %v", err)
	}
}

func TestXDPAccelerationRedirectsAroundKernel(t *testing.T) {
	n, nic, hostA, _, sinkA, _ := testNode(t)
	// add iptables rules that the accelerated path must skip
	for i := 0; i < 20; i++ {
		n.Forward.Append(Rule{Src: 0xffffffff, Decision: VerdictAccept})
	}
	if _, err := EnableAcceleration(n, nic, hostA); err != nil {
		t.Fatal(err)
	}
	p := NewPacket(0xc0a80001, 0x0a000001, make([]byte, 64))
	if err := n.ExternalIn(nic, p); err != nil {
		t.Fatal(err)
	}
	if len(sinkA.got) != 1 {
		t.Fatal("accelerated packet not delivered")
	}
	if p.Audit.IptablesHits != 0 {
		t.Fatalf("XDP path must skip iptables, got %d hits", p.Audit.IptablesHits)
	}
	if p.Audit.ProtoTasks != 0 {
		t.Fatalf("XDP path must skip protocol processing, got %d", p.Audit.ProtoTasks)
	}
	// audit must be strictly cheaper than the kernel path
	m := cost.DefaultModel()
	kernelP := NewPacket(0xc0a80001, 0x0a000001, make([]byte, 64))
	kernelP.note(cost.HopExternalIn)
	if m.Cycles(*p.Audit) >= m.Cycles(*kernelP.Audit) {
		t.Fatalf("accelerated path (%v cycles) must beat kernel path (%v cycles)",
			m.Cycles(*p.Audit), m.Cycles(*kernelP.Audit))
	}
}

func TestTCAccelerationPodToPod(t *testing.T) {
	n, _, hostA, _, _, sinkB := testNode(t)
	if _, err := EnableAcceleration(n, nil, hostA); err != nil {
		t.Fatal(err)
	}
	p := NewPacket(0x0a000001, 0x0a000002, make([]byte, 64))
	if err := n.PodToPod(hostA, p); err != nil {
		t.Fatal(err)
	}
	if len(sinkB.got) != 1 {
		t.Fatal("TC-redirected packet not delivered")
	}
	if p.Audit.ProtoTasks != 0 {
		t.Fatal("TC redirect must bypass the stack")
	}
}

func TestAccelerationFallsBackWithoutRoute(t *testing.T) {
	n, nic, hostA, _, sinkA, _ := testNode(t)
	if _, err := EnableAcceleration(n, nic, hostA); err != nil {
		t.Fatal(err)
	}
	// unknown destination: XDP program passes; kernel path then fails
	// with no-route, proving the fall-through happened.
	p := NewPacket(1, 0xdeadbeef, nil)
	if err := n.ExternalIn(nic, p); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("want kernel-path ErrNoRoute after XDP pass, got %v", err)
	}
	_ = sinkA
}

func TestAccelerationDetachRestoresKernelPath(t *testing.T) {
	n, nic, hostA, _, _, _ := testNode(t)
	links, err := EnableAcceleration(n, nic, hostA)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range links {
		l.Close()
	}
	p := NewPacket(0xc0a80001, 0x0a000001, make([]byte, 10))
	if err := n.ExternalIn(nic, p); err != nil {
		t.Fatal(err)
	}
	if p.Audit.ProtoTasks == 0 {
		t.Fatal("after detach, the kernel path must be used again")
	}
}

func TestForwardingProgramTypeValidation(t *testing.T) {
	if _, err := ForwardingProgram("bad", ebpf.ProgTypeSKMsg); err == nil {
		t.Fatal("SK_MSG forwarding program must be rejected")
	}
}

func TestFIBCrud(t *testing.T) {
	f := NewFIB()
	f.AddRoute(1, 10)
	if ifi, ok := f.Lookup(1); !ok || ifi != 10 {
		t.Fatal("lookup after add failed")
	}
	f.AddRoute(1, 20) // replace
	if ifi, _ := f.Lookup(1); ifi != 20 {
		t.Fatal("route replacement failed")
	}
	f.DelRoute(1)
	if _, ok := f.Lookup(1); ok {
		t.Fatal("route survived delete")
	}
	if f.Len() != 0 {
		t.Fatal("len after delete")
	}
}

func TestVethPairLinkage(t *testing.T) {
	n := NewNode("w1")
	host, pod := n.AddVethPair("x")
	if host.Peer() != pod || pod.Peer() != host {
		t.Fatal("veth peers must reference each other")
	}
	if host.TC == nil {
		t.Fatal("host-side veth must carry a TC hook")
	}
	if host.Ifindex == pod.Ifindex {
		t.Fatal("distinct ifindexes required")
	}
}

func TestDeliveryToHostVethForwardsToPodSide(t *testing.T) {
	n, nic, _, _, sinkA, _ := testNode(t)
	// route points at host-side veth; delivery must land on the pod side endpoint.
	p := NewPacket(1, 0x0a000001, nil)
	if err := n.ExternalIn(nic, p); err != nil {
		t.Fatal(err)
	}
	if len(sinkA.got) != 1 {
		t.Fatal("not delivered through veth pair")
	}
}

func TestExternalOutProfile(t *testing.T) {
	n := NewNode("w1")
	p := NewPacket(0, 0, make([]byte, 10))
	n.ExternalOut(p)
	want := cost.HopExternalOut.Profile()
	got := *p.Audit
	got.BytesCopied = 0
	if got != want {
		t.Fatalf("audit %+v want %+v", got, want)
	}
}

func TestKtimeEnvWiredToClock(t *testing.T) {
	n := NewNode("w1")
	n.SetClock(func() int64 { return 777 })
	p := &ebpf.Program{Name: "t", Type: ebpf.ProgTypeXDP, Insns: []ebpf.Insn{
		ebpf.Call(ebpf.HelperKtimeGetNs),
		ebpf.Exit(),
	}}
	lp, err := n.Kernel.Load(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Kernel.Run(lp, nil, 0, nil)
	if err != nil || res.Ret != 777 {
		t.Fatalf("ktime through node env: got %d, %v", res.Ret, err)
	}
}
