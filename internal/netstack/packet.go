// Package netstack simulates the kernel networking substrate of one worker
// node: NICs, veth pairs, loopback, the kernel FIB, iptables chains, and
// the eBPF XDP/TC hook points of §3.5. Its job is twofold:
//
//  1. Provide the structural per-hop overhead accounting (data copies,
//     context switches, interrupts, protocol tasks) from which the paper's
//     Tables 1 and 2 are reproduced — each traversal primitive adds its
//     cost.Hop profile to the request's Audit.
//  2. Execute real eBPF programs (internal/ebpf) at the XDP and TC hooks so
//     the accelerated redirect path (§3.5, Fig. 7) is exercised literally:
//     a FIB lookup helper call followed by an in-driver frame redirect.
package netstack

import (
	"fmt"

	"github.com/spright-go/spright/internal/cost"
)

// Packet is one L3+ message traversing the node, carrying its request's
// audit so overheads accumulate per request across hops.
type Packet struct {
	Src, Dst uint32 // addresses (host byte order)
	Payload  []byte
	Audit    *cost.Audit
}

// NewPacket builds a packet with a fresh audit.
func NewPacket(src, dst uint32, payload []byte) *Packet {
	return &Packet{Src: src, Dst: dst, Payload: payload, Audit: &cost.Audit{}}
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt{%#x->%#x %dB}", p.Src, p.Dst, len(p.Payload))
}

// note applies one hop profile to the packet's audit, accounting bytes for
// the copies the hop performs.
func (p *Packet) note(h cost.Hop) {
	prof := h.Profile()
	prof.BytesCopied = prof.Copies * len(p.Payload)
	if p.Audit != nil {
		p.Audit.Add(prof)
	}
}
