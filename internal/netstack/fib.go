package netstack

import "sync"

// FIB is the kernel Forwarding Information Base: destination address →
// egress interface index. The eBPF forwarding program of §3.5 consults it
// through the bpf_fib_lookup helper; the slow path consults it in the
// kernel's route lookup.
type FIB struct {
	mu     sync.RWMutex
	routes map[uint32]int
}

// NewFIB returns an empty table.
func NewFIB() *FIB {
	return &FIB{routes: make(map[uint32]int)}
}

// AddRoute installs dst → ifindex.
func (f *FIB) AddRoute(dst uint32, ifindex int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.routes[dst] = ifindex
}

// DelRoute removes the route for dst.
func (f *FIB) DelRoute(dst uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.routes, dst)
}

// Lookup resolves dst to an egress ifindex.
func (f *FIB) Lookup(dst uint32) (int, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ifi, ok := f.routes[dst]
	return ifi, ok
}

// Len returns the number of installed routes.
func (f *FIB) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.routes)
}
