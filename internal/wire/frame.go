// Package wire defines the length-prefixed binary framing of the inter-node
// transport: one frame carries one descriptor-equivalent (caller, routing
// target, trace context) plus its payload between the SPRIGHT gateways of two
// nodes. The format is fixed little-endian (matching shm.Descriptor), fully
// self-delimiting, and deliberately free of reflection or interface boxing so
// encoding reuses a pooled byte slice with zero per-frame allocation in
// steady state.
//
// Layout (after the u32 length prefix, which counts the bytes that follow):
//
//	u8  version (1)
//	u8  type    (request | response | hello)
//	u8  flags   (no-reply, error-response)
//	u8  reserved (must be zero)
//	u32 caller          — the ORIGIN node's pending-table slot
//	u64 traceHi, u64 traceLo, u64 span, u32 traceFlags
//	u16-prefixed chain name
//	u16-prefixed function name (hello: the sender's node name)
//	u16-prefixed topic
//	u16-prefixed error message (error responses)
//	u32-prefixed payload
//	u32-prefixed object bytes (only when flags carry FlagObject)
//
// Decoding never panics: truncated or corrupt input returns an error, which
// the receive loop converts into a counted connection teardown.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Frame types.
const (
	// TypeRequest asks the receiving node to invoke Fn of Chain with
	// Payload and return a response frame carrying the same Caller.
	TypeRequest = 1
	// TypeResponse completes the origin node's pending request Caller.
	TypeResponse = 2
	// TypeHello is the first frame of every connection: Fn carries the
	// sender's node name so the receiver can attribute per-peer counters.
	TypeHello = 3
)

// Frame flags.
const (
	// FlagNoReply marks fire-and-forget requests: no response frame comes.
	FlagNoReply = 1 << 0
	// FlagError marks a response that carries Err instead of Payload.
	FlagError = 1 << 1
	// FlagObject marks a request whose origin message carried an attached
	// shared-memory object alongside its in-buffer payload: the object's
	// bytes travel in the frame's object section and are re-materialized
	// into the receiving node's object store, so cross-node forwarding
	// never silently sheds an attachment.
	FlagObject = 1 << 2
)

// Version is the only wire version this package speaks.
const Version = 1

// MaxFrame bounds one frame's encoded size (length prefix excluded): a
// corrupt or hostile length prefix must not make the receive loop allocate
// unbounded memory.
const MaxFrame = 16 << 20

// PrefixLen is the size of the length prefix preceding every frame body.
const PrefixLen = 4

// Frame is one decoded inter-node message. String fields decoded from a
// byte stream are copies; Payload is a subslice of the decode input and is
// only valid while that buffer is.
type Frame struct {
	Type  uint8
	Flags uint8

	// Caller is the origin node's pending-request slot; a response frame
	// echoes the request's value so the origin can complete its waiter.
	Caller uint32

	// Trace context riding the wire (the shm buffer header's identity, so
	// cross-node spans parent correctly).
	TraceHi    uint64
	TraceLo    uint64
	TraceSpan  uint64
	TraceFlags uint32

	Chain string // chain name on the origin node (hello: unused)
	Fn    string // target function (hello: the sender's node name)
	Topic string // DFR topic for the remote dispatch

	Err     string // error message of an error response
	Payload []byte

	// Obj carries an attached object's bytes (FlagObject requests): the
	// origin's auxiliary shared-memory object riding alongside Payload.
	// Like Payload it aliases the decode input.
	Obj []byte
}

// hasObj reports whether f encodes an object section: either the flag is
// already set or object bytes are present (encoding then sets the flag).
func (f *Frame) hasObj() bool {
	return f.Flags&FlagObject != 0 || len(f.Obj) > 0
}

// Framing errors.
var (
	ErrTruncated    = errors.New("wire: truncated frame")
	ErrBadVersion   = errors.New("wire: unsupported frame version")
	ErrBadType      = errors.New("wire: unknown frame type")
	ErrFrameTooBig  = errors.New("wire: frame exceeds MaxFrame")
	ErrStringTooBig = errors.New("wire: string field exceeds 64KiB")
	ErrTrailing     = errors.New("wire: trailing bytes after payload")
)

// fixedLen is the size of the fixed header fields after the length prefix.
const fixedLen = 1 + 1 + 1 + 1 + 4 + 8 + 8 + 8 + 4

// EncodedSize returns the full encoded size of f, length prefix included.
func EncodedSize(f *Frame) int {
	n := PrefixLen + fixedLen +
		2 + len(f.Chain) + 2 + len(f.Fn) + 2 + len(f.Topic) + 2 + len(f.Err) +
		4 + len(f.Payload)
	if f.hasObj() {
		n += 4 + len(f.Obj)
	}
	return n
}

// AppendFrame appends f's encoding — length prefix plus body — to dst and
// returns the extended slice. Callers reuse dst's capacity across frames, so
// the steady-state encode path does not allocate.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	if len(f.Chain) > 0xFFFF || len(f.Fn) > 0xFFFF || len(f.Topic) > 0xFFFF || len(f.Err) > 0xFFFF {
		return dst, ErrStringTooBig
	}
	body := EncodedSize(f) - PrefixLen
	if body > MaxFrame {
		return dst, ErrFrameTooBig
	}
	flags := f.Flags
	if f.hasObj() {
		flags |= FlagObject
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, Version, f.Type, flags, 0)
	dst = binary.LittleEndian.AppendUint32(dst, f.Caller)
	dst = binary.LittleEndian.AppendUint64(dst, f.TraceHi)
	dst = binary.LittleEndian.AppendUint64(dst, f.TraceLo)
	dst = binary.LittleEndian.AppendUint64(dst, f.TraceSpan)
	dst = binary.LittleEndian.AppendUint32(dst, f.TraceFlags)
	for _, s := range [4]string{f.Chain, f.Fn, f.Topic, f.Err} {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
		dst = append(dst, s...)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, f.Payload...)
	if f.hasObj() {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Obj)))
		dst = append(dst, f.Obj...)
	}
	return dst, nil
}

// DecodeFrame decodes one frame body (the bytes following the length
// prefix). The returned Frame's Payload aliases b; string fields are copies.
func DecodeFrame(b []byte) (Frame, error) {
	var f Frame
	if len(b) > MaxFrame {
		return f, ErrFrameTooBig
	}
	if len(b) < fixedLen {
		return f, fmt.Errorf("%w: %d byte header", ErrTruncated, len(b))
	}
	if b[0] != Version {
		return f, fmt.Errorf("%w: %d", ErrBadVersion, b[0])
	}
	f.Type = b[1]
	if f.Type != TypeRequest && f.Type != TypeResponse && f.Type != TypeHello {
		return f, fmt.Errorf("%w: %d", ErrBadType, f.Type)
	}
	f.Flags = b[2]
	if b[3] != 0 {
		return f, fmt.Errorf("wire: non-zero reserved byte %d", b[3])
	}
	f.Caller = binary.LittleEndian.Uint32(b[4:])
	f.TraceHi = binary.LittleEndian.Uint64(b[8:])
	f.TraceLo = binary.LittleEndian.Uint64(b[16:])
	f.TraceSpan = binary.LittleEndian.Uint64(b[24:])
	f.TraceFlags = binary.LittleEndian.Uint32(b[32:])
	rest := b[fixedLen:]
	var err error
	if f.Chain, rest, err = takeString(rest); err != nil {
		return f, err
	}
	if f.Fn, rest, err = takeString(rest); err != nil {
		return f, err
	}
	if f.Topic, rest, err = takeString(rest); err != nil {
		return f, err
	}
	if f.Err, rest, err = takeString(rest); err != nil {
		return f, err
	}
	if f.Payload, rest, err = takeBytes(rest, "payload"); err != nil {
		return f, err
	}
	if f.Flags&FlagObject != 0 {
		if f.Obj, rest, err = takeBytes(rest, "object"); err != nil {
			return f, err
		}
	}
	if len(rest) != 0 {
		return f, fmt.Errorf("%w: %d", ErrTrailing, len(rest))
	}
	return f, nil
}

// takeBytes consumes one u32-prefixed byte section, returning it (aliasing
// b) and the remaining bytes.
func takeBytes(b []byte, what string) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, b, fmt.Errorf("%w: %s length", ErrTruncated, what)
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return nil, b, fmt.Errorf("%w: %s %d of %d bytes", ErrTruncated, what, len(b), n)
	}
	return b[:n:n], b[n:], nil
}

// takeString consumes one u16-prefixed string, returning it (as a copy) and
// the remaining bytes.
func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", b, fmt.Errorf("%w: string length", ErrTruncated)
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", b, fmt.Errorf("%w: string %d of %d bytes", ErrTruncated, len(b), n)
	}
	return string(b[:n]), b[n:], nil
}
