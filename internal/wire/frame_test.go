package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func sampleFrame() *Frame {
	return &Frame{
		Type:       TypeRequest,
		Flags:      FlagNoReply,
		Caller:     0xDEADBEEF,
		TraceHi:    0x0123456789ABCDEF,
		TraceLo:    0xFEDCBA9876543210,
		TraceSpan:  42,
		TraceFlags: 3,
		Chain:      "boutique",
		Fn:         "currency",
		Topic:      "/checkout",
		Payload:    []byte("hello across nodes"),
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := sampleFrame()
	enc, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if got, want := len(enc), EncodedSize(f); got != want {
		t.Fatalf("EncodedSize %d, encoded %d", want, got)
	}
	if got := binary.LittleEndian.Uint32(enc); int(got) != len(enc)-PrefixLen {
		t.Fatalf("length prefix %d, body %d", got, len(enc)-PrefixLen)
	}
	dec, err := DecodeFrame(enc[PrefixLen:])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	assertFrameEqual(t, f, &dec)
}

func TestFrameRoundTripEmptyFields(t *testing.T) {
	f := &Frame{Type: TypeResponse, Flags: FlagError, Err: "boom"}
	enc, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec, err := DecodeFrame(enc[PrefixLen:])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	assertFrameEqual(t, f, &dec)
}

func TestFrameObjectSection(t *testing.T) {
	f := sampleFrame()
	f.Obj = []byte("auxiliary attached-object bytes")
	enc, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if got, want := len(enc), EncodedSize(f); got != want {
		t.Fatalf("EncodedSize %d, encoded %d", want, got)
	}
	dec, err := DecodeFrame(enc[PrefixLen:])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// The encoder sets FlagObject on the wire whenever object bytes ride.
	if dec.Flags&FlagObject == 0 {
		t.Fatalf("decoded flags %#x missing FlagObject", dec.Flags)
	}
	if !bytes.Equal(dec.Obj, f.Obj) {
		t.Fatalf("object section %q, want %q", dec.Obj, f.Obj)
	}
	if !bytes.Equal(dec.Payload, f.Payload) {
		t.Fatalf("payload %q, want %q", dec.Payload, f.Payload)
	}

	// A frame without object bytes must decode to a nil Obj — the section
	// only exists when the flag says so, keeping old encodings valid.
	plain := sampleFrame()
	enc, err = AppendFrame(nil, plain)
	if err != nil {
		t.Fatalf("encode plain: %v", err)
	}
	dec, err = DecodeFrame(enc[PrefixLen:])
	if err != nil {
		t.Fatalf("decode plain: %v", err)
	}
	if dec.Obj != nil {
		t.Fatalf("plain frame decoded a %d-byte object section", len(dec.Obj))
	}

	// Truncating anywhere inside the object section must error, not panic.
	full, _ := AppendFrame(nil, f)
	body := full[PrefixLen:]
	for n := len(body) - len(f.Obj) - 4; n < len(body); n++ {
		if _, err := DecodeFrame(body[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded", n, len(body))
		}
	}
}

func TestFrameEncodeReusesCapacity(t *testing.T) {
	f := sampleFrame()
	buf := make([]byte, 0, 4096)
	enc, err := AppendFrame(buf, f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if &buf[:1][0] != &enc[:1][0] {
		t.Fatalf("encode reallocated despite sufficient capacity")
	}
}

func TestFrameTruncatedEveryPrefix(t *testing.T) {
	enc, err := AppendFrame(nil, sampleFrame())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	body := enc[PrefixLen:]
	for n := 0; n < len(body); n++ {
		if _, err := DecodeFrame(body[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(body))
		}
	}
}

func TestFrameTrailingBytes(t *testing.T) {
	enc, err := AppendFrame(nil, sampleFrame())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := DecodeFrame(append(enc[PrefixLen:], 0xFF)); !errors.Is(err, ErrTrailing) {
		t.Fatalf("trailing byte: got %v, want ErrTrailing", err)
	}
}

func TestFrameBadVersionAndType(t *testing.T) {
	enc, _ := AppendFrame(nil, sampleFrame())
	body := append([]byte(nil), enc[PrefixLen:]...)
	body[0] = 99
	if _, err := DecodeFrame(body); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: got %v", err)
	}
	body[0] = Version
	body[1] = 0
	if _, err := DecodeFrame(body); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type: got %v", err)
	}
}

func TestFrameStringTooBig(t *testing.T) {
	f := &Frame{Type: TypeRequest, Chain: strings.Repeat("x", 0x10000)}
	if _, err := AppendFrame(nil, f); !errors.Is(err, ErrStringTooBig) {
		t.Fatalf("oversized string: got %v", err)
	}
}

func TestFrameOversizedRejected(t *testing.T) {
	if _, err := DecodeFrame(make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized body: got %v", err)
	}
}

func assertFrameEqual(t *testing.T, want, got *Frame) {
	t.Helper()
	if got.Type != want.Type || got.Flags != want.Flags || got.Caller != want.Caller {
		t.Fatalf("header mismatch: got %+v want %+v", got, want)
	}
	if got.TraceHi != want.TraceHi || got.TraceLo != want.TraceLo ||
		got.TraceSpan != want.TraceSpan || got.TraceFlags != want.TraceFlags {
		t.Fatalf("trace context mismatch: got %+v want %+v", got, want)
	}
	if got.Chain != want.Chain || got.Fn != want.Fn || got.Topic != want.Topic || got.Err != want.Err {
		t.Fatalf("string fields mismatch: got %+v want %+v", got, want)
	}
	if !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("payload mismatch: got %q want %q", got.Payload, want.Payload)
	}
	if !bytes.Equal(got.Obj, want.Obj) {
		t.Fatalf("object section mismatch: got %q want %q", got.Obj, want.Obj)
	}
}

// FuzzFrameRoundTrip fuzzes both directions: a structured frame must survive
// encode→decode bit-exactly, and the decoder must never panic on arbitrary
// bytes — including every truncation of a valid encoding.
func FuzzFrameRoundTrip(f *testing.F) {
	seed, _ := AppendFrame(nil, sampleFrame())
	f.Add(uint8(TypeRequest), uint8(0), uint32(1), uint64(1), uint64(2), uint64(3), uint32(1),
		"chain", "fn", "topic", "", []byte("payload"), seed)
	f.Add(uint8(TypeResponse), uint8(FlagError), uint32(7), uint64(0), uint64(0), uint64(0), uint32(0),
		"", "", "", "remote: boom", []byte{}, []byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, typ, flags uint8, caller uint32, hi, lo, span uint64, tflags uint32,
		chain, fn, topic, errMsg string, payload, raw []byte) {
		// Direction 1: arbitrary bytes must decode or error, never panic.
		if fr, err := DecodeFrame(raw); err == nil {
			// A successful decode must re-encode to the identical body.
			re, err := AppendFrame(nil, &fr)
			if err != nil {
				t.Fatalf("re-encode of decoded frame: %v", err)
			}
			if !bytes.Equal(re[PrefixLen:], raw) {
				t.Fatalf("decode/encode not canonical:\n in %x\nout %x", raw, re[PrefixLen:])
			}
		}

		// Direction 2: structured round-trip.
		want := Frame{
			Type: typ, Flags: flags, Caller: caller,
			TraceHi: hi, TraceLo: lo, TraceSpan: span, TraceFlags: tflags,
			Chain: chain, Fn: fn, Topic: topic, Err: errMsg, Payload: payload,
		}
		enc, err := AppendFrame(nil, &want)
		if err != nil {
			return // oversized string/frame: rejected is the contract
		}
		dec, err := DecodeFrame(enc[PrefixLen:])
		if typ != TypeRequest && typ != TypeResponse && typ != TypeHello {
			if err == nil {
				t.Fatalf("invalid type %d decoded", typ)
			}
			return
		}
		if err != nil {
			t.Fatalf("round-trip decode: %v", err)
		}
		assertFrameEqual(t, &want, &dec)

		// Every truncation of the valid body must error, never panic.
		body := enc[PrefixLen:]
		for n := 0; n < len(body); n++ {
			if _, err := DecodeFrame(body[:n]); err == nil {
				t.Fatalf("truncation to %d bytes decoded", n)
			}
		}
	})
}
