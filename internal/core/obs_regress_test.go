package core

// Regression tests for the observability-layer counter bugs: the
// ScrapeRate unsigned-wrap bug, the DeliverBatch partial-drop leak, the
// Socket.Close busy-wait, and the sampled tracer's zero-allocation
// guarantee on unsampled requests.

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/ebpf"
	"github.com/spright-go/spright/internal/shm"
)

// TestScrapeRateCounterRegression: the packet counter lives in an eBPF map
// that can be recreated or reset between scrapes. The old code computed
// the delta as uint64(pkts - lastPkts), which wraps to ~1.8e19 pps on any
// regression — an absurd rate that would instantly trip an autoscaler.
// A regression must clamp to zero.
func TestScrapeRateCounterRegression(t *testing.T) {
	_, g := testChain(t, ModeEvent, echoSpec())
	ep := g.EProxy()
	if ep == nil {
		t.Fatal("event-mode gateway has no EPROXY")
	}
	for i := 0; i < 10; i++ {
		if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if rate := ep.ScrapeRate(); rate <= 0 {
		t.Fatalf("scrape after traffic: rate %v, want > 0", rate)
	}
	// Simulate the counter regressing (map reset / EPROXY reload).
	if err := ep.l3map.Update(ebpf.U32Key(l3SlotPackets), ebpf.U64Value(0)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond) // dt > 0 for the rate computation
	if rate := ep.ScrapeRate(); rate != 0 {
		t.Fatalf("scrape across counter regression: rate %v, want 0 (uint64 wrap)", rate)
	}
	// The regressed value must become the new baseline: further traffic
	// yields a sane rate again.
	for i := 0; i < 5; i++ {
		if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if rate := ep.ScrapeRate(); rate <= 0 || rate > 1e12 {
		t.Fatalf("scrape after recovery: rate %v, want sane positive value", rate)
	}
}

// TestDeliverBatchPartialDropNoLeak: with a tiny socket queue and a slow
// consumer, the D-SPRIGHT poller's bursts hit a full socket mid-batch. The
// old transport ignored DeliverBatch's result, treating the whole burst as
// sent — every refused descriptor leaked its shared-memory buffer. The
// fixed poller owns the un-enqueued tail: it retries until delivered (or
// reclaims on shutdown), so the pool must drain to zero.
func TestDeliverBatchPartialDropNoLeak(t *testing.T) {
	const events = 64
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name:        "slow",
			Concurrency: 1,
			ServiceTime: 200 * time.Microsecond,
			Handler:     func(ctx *Ctx) error { ctx.Drop(); return nil },
		}},
		Routes:      []RouteSpec{{From: "", To: []string{"slow"}}},
		PoolBuffers: events,
		SocketDepth: 1, // every burst overflows the queue
	}
	c, g := testChain(t, ModePolling, spec)
	for i := 0; i < events; i++ {
		if err := g.InvokeAsync("", []byte("e")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Pool().InUse() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := c.Pool().InUse(); n != 0 {
		t.Fatalf("%d buffers still in use: partial batch drops leaked pool slabs", n)
	}
	if err := c.Pool().LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestSocketCloseWaitsForStalledSender: Close must block until in-flight
// Deliver calls drain, without pinning a core — the old unbounded
// Gosched loop burned 100% CPU for as long as a sender was descheduled.
// The behavioural contract testable here: Close still waits out a sender
// stalled far past the spin budget, and still closes promptly after.
func TestSocketCloseWaitsForStalledSender(t *testing.T) {
	s := NewSocket(1, 4)
	s.senders.Add(1) // simulate a Deliver descheduled mid-call
	released := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond) // well past the spin budget
		s.senders.Add(-1)
		close(released)
	}()
	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
		select {
		case <-released:
		default:
			t.Fatal("Close returned while a sender was still registered")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the stalled sender drained")
	}
}

// TestSocketCloseConcurrentDeliver: closing under a storm of concurrent
// Deliver/DeliverBatch calls must never panic (send on closed channel)
// and must leave the socket cleanly closed. Run with -race.
func TestSocketCloseConcurrentDeliver(t *testing.T) {
	for round := 0; round < 50; round++ {
		s := NewSocket(1, 2)
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				d := shm.Descriptor{Buf: 1}
				batch := []shm.Descriptor{{Buf: 2}, {Buf: 3}}
				for {
					if err := s.Deliver(d); err == ErrSocketClosed {
						return
					}
					if _, err := s.DeliverBatch(batch); err == ErrSocketClosed {
						return
					}
				}
			}()
		}
		// Drain so senders make progress, then close mid-storm.
		go func() {
			for range s.Recv() {
			}
		}()
		time.Sleep(100 * time.Microsecond)
		s.Close()
		wg.Wait()
		if err := s.Deliver(shm.Descriptor{}); err != ErrSocketClosed {
			t.Fatalf("deliver after close: %v, want ErrSocketClosed", err)
		}
	}
}

// TestSampledTracerZeroAllocUnsampled: the always-on tracer's contract is
// that an unsampled request costs zero heap allocations across
// BeginRequest/FinishRequest — otherwise it could not stay enabled in
// production.
func TestSampledTracerZeroAllocUnsampled(t *testing.T) {
	tr := NewSampledTracer(1<<30, 8) // effectively never samples
	start := time.Now()
	allocs := testing.AllocsPerRun(200, func() {
		tc := tr.BeginRequest(7, shm.TraceContext{}, start)
		tr.FinishRequest(7, tc.Sampled(), nil, start, time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("unsampled begin/finish allocated %v per op, want 0", allocs)
	}
}

// TestSampledTracerSamples1InN verifies the sampling arithmetic and that
// sampled traces feed the hop histograms and the bounded ring.
func TestSampledTracerSamples1InN(t *testing.T) {
	tr := NewSampledTracer(4, 2)
	start := time.Now()
	for caller := uint32(1); caller <= 8; caller++ {
		tc := tr.BeginRequest(caller, shm.TraceContext{}, start)
		if tc.Sampled() {
			tr.RecordSpan(caller, Span{
				Parent: tc.Span, Stage: StageHandler, Function: "fn",
				Instance: 1, Start: start, End: start.Add(time.Millisecond),
			})
		}
		tr.FinishRequest(caller, tc.Sampled(), nil, start, time.Millisecond)
	}
	if got := tr.TotalSampled(); got != 2 {
		t.Fatalf("sampled %d of 8 at 1-in-4, want 2", got)
	}
	if got := len(tr.Completed()); got != 2 {
		t.Fatalf("retained %d traces, want 2", got)
	}
	hists := tr.HopDurations()
	h, ok := hists["fn"]
	if !ok || h.Count() != 2 {
		t.Fatalf("hop histogram: %+v, want 2 observations for fn", hists)
	}
}

// TestDefaultSampledTracerInstalled: chains come up with the always-on
// sampled tracer unless the spec opts out.
func TestDefaultSampledTracerInstalled(t *testing.T) {
	c, _ := testChain(t, ModeEvent, echoSpec())
	tr := c.Tracer()
	if tr == nil {
		t.Fatal("no default tracer installed")
	}
	if tr.SampleEvery() != defaultTraceSampleEvery {
		t.Fatalf("default sample period %d, want %d", tr.SampleEvery(), defaultTraceSampleEvery)
	}

	spec := echoSpec()
	spec.TraceSampleEvery = -1
	c2, _ := testChain(t, ModeEvent, spec)
	if c2.Tracer() != nil {
		t.Fatal("TraceSampleEvery < 0 must disable the default tracer")
	}
}

// TestMetricsAgentPublishesFailures: the per-chain scrape agent must
// periodically publish failure counters into the EPROXY map and refresh
// the packet-rate sample without any caller driving Stats().
func TestMetricsAgentPublishesFailures(t *testing.T) {
	spec := echoSpec()
	spec.ScrapeInterval = 5 * time.Millisecond
	c, g := testChain(t, ModeEvent, spec)
	c.failures.crashes.Add(3)
	for i := 0; i < 20; i++ {
		if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if g.EProxy().FailureStats().Crashes == 3 && g.LastScrapeRate() > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("agent never published: failmap=%+v rate=%v",
		g.EProxy().FailureStats(), g.LastScrapeRate())
}
