package core

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// admissionEchoSpec is echoSpec plus an explicit admission policy.
func admissionEchoSpec(p AdmissionPolicy) ChainSpec {
	spec := echoSpec()
	spec.Admission = p
	return spec
}

// waitUntil polls cond up to the deadline; failing the test on timeout.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestScaleToZeroRemovesAllInstances(t *testing.T) {
	c, _ := testChain(t, ModeEvent, echoSpec())
	if _, err := c.ScaleUp("echo"); err != nil {
		t.Fatal(err)
	}
	n, err := c.ScaleToZero("echo")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("removed %d instances, want 2", n)
	}
	if got := len(c.Router().Instances("echo")); got != 0 {
		t.Fatalf("router still sees %d instances", got)
	}
}

func TestZeroReplicaWithoutParkingFailsFast(t *testing.T) {
	// Legacy behavior: no admission policy means no parking — a request
	// hitting a zero-replica function fails with ErrNoInstance.
	c, g := testChain(t, ModeEvent, echoSpec())
	if _, err := c.ScaleToZero("echo"); err != nil {
		t.Fatal(err)
	}
	_, err := g.Invoke(contextWithTimeout(t, 2*time.Second), "", []byte("x"))
	if !errors.Is(err, ErrNoInstance) {
		t.Fatalf("got %v, want ErrNoInstance", err)
	}
}

func TestParkedRequestResumesOnScaleUp(t *testing.T) {
	c, g := testChain(t, ModeEvent, admissionEchoSpec(AdmissionPolicy{
		ParkCapacity: 8,
		ParkTimeout:  5 * time.Second,
	}))
	if _, err := c.ScaleToZero("echo"); err != nil {
		t.Fatal(err)
	}

	type res struct {
		out []byte
		err error
	}
	done := make(chan res, 1)
	go func() {
		out, err := g.Invoke(contextWithTimeout(t, 5*time.Second), "", []byte("cold"))
		done <- res{out, err}
	}()

	// The request must park, not fail.
	waitUntil(t, 2*time.Second, "request to park", func() bool {
		return g.ParkedFor("echo") == 1
	})

	// Capacity arrives: the chain's scale notifier wakes the parked request.
	if _, err := c.ScaleUp("echo"); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("parked request failed: %v", r.err)
	}
	if string(r.out) != "COLD" {
		t.Fatalf("got %q want COLD", r.out)
	}

	s := g.Stats()
	if s.ParkedTotal != 1 || s.Resumed != 1 {
		t.Fatalf("parked_total=%d resumed=%d, want 1/1", s.ParkedTotal, s.Resumed)
	}
	if s.Parked != 0 {
		t.Fatalf("park queue not drained: %d", s.Parked)
	}
	if g.ColdStartLatency().Count() != 1 {
		t.Fatalf("cold-start histogram count %d, want 1", g.ColdStartLatency().Count())
	}
	if s.ColdStartP99 <= 0 {
		t.Fatalf("cold-start p99 %v, want > 0", s.ColdStartP99)
	}
}

func TestParkTimeoutShedsWithReason(t *testing.T) {
	c, g := testChain(t, ModeEvent, admissionEchoSpec(AdmissionPolicy{
		ParkCapacity: 8,
		ParkTimeout:  30 * time.Millisecond,
	}))
	if _, err := c.ScaleToZero("echo"); err != nil {
		t.Fatal(err)
	}
	_, err := g.Invoke(contextWithTimeout(t, 5*time.Second), "", []byte("x"))
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("got %v, want ErrOverload", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ShedParkTimeout {
		t.Fatalf("got %v, want reason %q", err, ShedParkTimeout)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("retry-after %v, want > 0", oe.RetryAfter)
	}
	s := g.Stats()
	if s.ShedParkTimeout != 1 {
		t.Fatalf("shed_park_timeout=%d, want 1", s.ShedParkTimeout)
	}
	if s.Rejected != 1 {
		t.Fatalf("rejected=%d, want 1 (shed must count as rejection)", s.Rejected)
	}
}

func TestParkRespectsContextDeadline(t *testing.T) {
	// A generous ParkTimeout must still be clipped to the request's own
	// deadline: the caller's budget wins.
	c, g := testChain(t, ModeEvent, admissionEchoSpec(AdmissionPolicy{
		ParkCapacity: 8,
		ParkTimeout:  time.Minute,
	}))
	if _, err := c.ScaleToZero("echo"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := g.Invoke(contextWithTimeout(t, 50*time.Millisecond), "", []byte("x"))
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("got %v, want ErrOverload", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("waited %v, deadline clipping failed", waited)
	}
}

func TestParkQueueFullSheds(t *testing.T) {
	c, g := testChain(t, ModeEvent, admissionEchoSpec(AdmissionPolicy{
		ParkCapacity: 1,
		ParkTimeout:  5 * time.Second,
	}))
	if _, err := c.ScaleToZero("echo"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := g.Invoke(contextWithTimeout(t, 5*time.Second), "", []byte("first"))
		done <- err
	}()
	waitUntil(t, 2*time.Second, "first request to park", func() bool {
		return g.Parked() == 1
	})

	// The queue is at capacity: the second request sheds immediately.
	_, err := g.Invoke(contextWithTimeout(t, 2*time.Second), "", []byte("second"))
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ShedParkFull {
		t.Fatalf("got %v, want reason %q", err, ShedParkFull)
	}
	if s := g.Stats(); s.ShedParkFull != 1 {
		t.Fatalf("shed_park_full=%d, want 1", s.ShedParkFull)
	}

	if _, err := c.ScaleUp("echo"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("parked request failed after scale-up: %v", err)
	}
}

func TestMaxPendingShedsOverload(t *testing.T) {
	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	defer release()
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name: "slow",
			Handler: func(ctx *Ctx) error {
				<-block
				return nil
			},
		}},
		Routes:    []RouteSpec{{From: "", To: []string{"slow"}}},
		Admission: AdmissionPolicy{MaxPending: 1, RetryAfter: 2 * time.Second},
	}
	_, g := testChain(t, ModeEvent, spec)

	done := make(chan error, 1)
	go func() {
		_, err := g.Invoke(contextWithTimeout(t, 10*time.Second), "", []byte("a"))
		done <- err
	}()
	waitUntil(t, 2*time.Second, "first request to pend", func() bool {
		return g.Pending() == 1
	})

	_, err := g.Invoke(contextWithTimeout(t, 2*time.Second), "", []byte("b"))
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != ShedOverload {
		t.Fatalf("got %v, want reason %q", err, ShedOverload)
	}
	if oe.RetryAfter != 2*time.Second {
		t.Fatalf("retry-after %v, want configured 2s", oe.RetryAfter)
	}
	s := g.Stats()
	if s.ShedOverload != 1 || s.Rejected != 1 {
		t.Fatalf("shed_overload=%d rejected=%d, want 1/1", s.ShedOverload, s.Rejected)
	}

	release()
	if err := <-done; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
}

func TestServeHTTPShedsWith503AndRetryAfter(t *testing.T) {
	block := make(chan struct{})
	release := sync.OnceFunc(func() { close(block) })
	defer release()
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name: "slow",
			Handler: func(ctx *Ctx) error {
				<-block
				return nil
			},
		}},
		Routes:    []RouteSpec{{From: "", To: []string{"slow"}}},
		Admission: AdmissionPolicy{MaxPending: 1},
	}
	_, g := testChain(t, ModeEvent, spec)

	done := make(chan error, 1)
	go func() {
		_, err := g.Invoke(contextWithTimeout(t, 10*time.Second), "", []byte("a"))
		done <- err
	}()
	waitUntil(t, 2*time.Second, "first request to pend", func() bool {
		return g.Pending() == 1
	})

	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader("b"))
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("shed response must carry a Retry-After header")
	}

	release()
	if err := <-done; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
}

func TestPrewarmActivateServes(t *testing.T) {
	c, g := testChain(t, ModeEvent, echoSpec())
	before := len(c.Router().Instances("echo"))

	pw, err := c.Prewarm("echo")
	if err != nil {
		t.Fatal(err)
	}
	// Prewarmed instances must not be routable until activated.
	if got := len(c.Router().Instances("echo")); got != before {
		t.Fatalf("router sees %d instances, want %d (prewarmed must be invisible)", got, before)
	}

	inst, err := c.Activate(pw)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Router().Instances("echo")); got != before+1 {
		t.Fatalf("router sees %d instances after activate, want %d", got, before+1)
	}
	if _, err := c.Activate(pw); err == nil {
		t.Fatal("double activation must fail")
	}

	// Saturate so the activated instance demonstrably serves (edges were
	// re-authorized on activation).
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if out, err := g.Invoke(contextWithTimeout(t, 5*time.Second), "", []byte("hi")); err != nil || string(out) != "HI" {
				t.Errorf("invoke: %q, %v", out, err)
			}
		}()
	}
	wg.Wait()
	_ = inst
}

func TestPrewarmDiscard(t *testing.T) {
	c, _ := testChain(t, ModeEvent, echoSpec())
	pw, err := c.Prewarm("echo")
	if err != nil {
		t.Fatal(err)
	}
	c.DiscardPrewarmed(pw)
	if _, err := c.Activate(pw); err == nil {
		t.Fatal("activating a discarded instance must fail")
	}
	if got := len(c.Router().Instances("echo")); got != 1 {
		t.Fatalf("router sees %d instances, want 1", got)
	}
}

func TestParkedRequestResumesViaPrewarmedActivation(t *testing.T) {
	// The full cold-start mitigation path: function at zero, request parks,
	// a prewarmed instance activates (as the orchestrator's prewarm pool
	// would), and the parked request completes without ever seeing an error.
	c, g := testChain(t, ModeEvent, admissionEchoSpec(AdmissionPolicy{
		ParkCapacity: 8,
		ParkTimeout:  5 * time.Second,
	}))
	pw, err := c.Prewarm("echo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ScaleToZero("echo"); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := g.Invoke(contextWithTimeout(t, 5*time.Second), "", []byte("x"))
		done <- err
	}()
	waitUntil(t, 2*time.Second, "request to park", func() bool {
		return g.ParkedFor("echo") == 1
	})

	if _, err := c.Activate(pw); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("parked request failed after prewarmed activation: %v", err)
	}
	if s := g.Stats(); s.Resumed != 1 {
		t.Fatalf("resumed=%d, want 1", s.Resumed)
	}
}
