package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spright-go/spright/internal/ebpf"
	"github.com/spright-go/spright/internal/fault"
	"github.com/spright-go/spright/internal/shm"
	"github.com/spright-go/spright/internal/shm/objstore"
)

// FunctionSpec declares one function of a chain.
type FunctionSpec struct {
	Name        string
	Handler     Handler
	Instances   int           // pods to start (default 1)
	Concurrency int           // per-pod concurrent invocations (default 32)
	ServiceTime time.Duration // optional simulated CPU time per invocation

	// Node optionally places the function on a named worker node in a
	// multi-node deployment. Core ignores it — the orchestrator's placed
	// deployment reads it to decide which node runs the real handler and
	// which nodes get a transport stub ("" = the chain's head node).
	Node string
}

// RouteSpec declares one DFR routing-table entry. From "" routes the
// gateway's ingress to the chain's head function.
type RouteSpec struct {
	Topic string
	From  string
	To    []string
}

// ChainSpec declares a function chain.
type ChainSpec struct {
	Name      string
	Mode      Mode
	Functions []FunctionSpec
	Routes    []RouteSpec

	// PoolBuffers and BufSize fix the private shared-memory pool
	// geometry (defaults: 1024 × 16 KiB).
	PoolBuffers int
	BufSize     int

	// SocketDepth overrides per-socket queue depth (defaults to
	// PoolBuffers: the pool is the real burst buffer).
	SocketDepth int

	// Deadline bounds each synchronous Gateway.Invoke; a request that
	// outlives it fails with context.DeadlineExceeded and its buffer is
	// reclaimed when (if ever) the late response returns. 0 disables
	// the default deadline; callers may still pass bounded contexts.
	Deadline time.Duration

	// Retry governs re-sending descriptors on transient transport
	// errors (socket queue full). The zero value disables retry.
	Retry RetryPolicy

	// Health configures circuit breaking of repeatedly failing
	// instances. The zero value disables the breaker.
	Health HealthPolicy

	// Admission configures overload shedding and scale-from-zero parking
	// at the gateway. The zero value keeps the legacy behavior: no
	// pending bound, no parking — pool exhaustion is the only refusal.
	Admission AdmissionPolicy

	// Injector, when set, injects seeded faults into the dataplane
	// (chaos testing). nil disables injection.
	Injector *fault.Injector

	// TraceSampleEvery samples 1-in-N requests into the always-on hop
	// tracer (0 picks the default of 1024; 1 traces every request).
	// Negative disables the default tracer entirely.
	TraceSampleEvery int

	// TraceTailLatency is the tail-sampling threshold: requests slower
	// than it (and all errored requests, regardless of this knob) are
	// retained even when head sampling skipped them. 0 picks the default
	// of 250ms; negative disables latency-based tail retention.
	TraceTailLatency time.Duration

	// TraceTailLimit bounds the tail-retained trace buffer (0 picks the
	// default of 64).
	TraceTailLimit int

	// ScrapeInterval is the period of the gateway's metrics agent — the
	// goroutine that drives EProxy.ScrapeRate and publishes the chain's
	// failure counters into the EPROXY metrics map (§3.3). 0 picks the
	// default of 500ms; negative disables the agent.
	ScrapeInterval time.Duration

	// Objects configures the chain's ephemeral object store — the keyed,
	// ref-counted multi-slab tier for intermediates that exceed one pool
	// buffer or outlive one hop. The zero value enables it with defaults.
	Objects ObjectPolicy
}

// ObjectPolicy tunes a chain's ephemeral object store.
type ObjectPolicy struct {
	// Disable turns the object tier off entirely: >BufSize payloads are
	// rejected at admission (HTTP 413) and Ctx object APIs fail.
	Disable bool
	// MaxResidentBytes bounds the store's shared-memory footprint before
	// cold objects spill to the file tier (0: spill only on pool
	// exhaustion).
	MaxResidentBytes int64
	// MaxObjectBytes caps one object (0 picks the 64 MiB default;
	// negative removes the cap).
	MaxObjectBytes int64
	// SpillDir is the file-backed cold tier's directory ("" = the
	// system temp dir).
	SpillDir string
}

// defaultMaxObjectBytes caps a single stored object unless the spec says
// otherwise — large enough for data-intensive intermediates, small enough
// that one request cannot silently consume the node's disk via spill.
const defaultMaxObjectBytes = 64 << 20

// RetryPolicy bounds descriptor re-sends on transient transport errors —
// exponential backoff with seeded jitter, the per-hop retry discipline
// sidecar meshes apply to transient upstream failures.
type RetryPolicy struct {
	// MaxAttempts is the total number of send attempts per hop;
	// values <= 1 disable retry.
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry (default 100µs).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (default 5ms).
	MaxBackoff time.Duration
}

// Chain is a deployed function chain: its private pool, its transport, its
// DFR router, its functions, and its gateway-side bookkeeping.
type Chain struct {
	name      string
	mode      Mode
	pool      *shm.Pool
	store     *objstore.Store // nil when ObjectPolicy.Disable
	transport Transport
	sproxy    *SProxy // nil in polling mode
	router    *Router

	instMu    sync.Mutex
	instances []*Instance
	prewarmed []*Instance // transport-wired, workers running, not routable
	byName    map[string]*FunctionSpec
	gwIngress map[string]bool // fns the gateway may dispatch to directly
	fnOrder   []string        // declared function order (immutable after NewChain)
	routes    []RouteSpec
	sockDepth int
	nextID    uint32

	topics topicTable

	errMu  sync.Mutex
	errs   []error
	errCnt uint64

	tracer atomic.Pointer[Tracer] // nil when tracing is off

	deadline    time.Duration
	retry       RetryPolicy
	health      HealthPolicy
	injector    *fault.Injector
	failures    failureCounters
	jitterSeed  atomic.Uint64
	scrapeEvery time.Duration // metrics-agent period (<0: agent disabled)

	failCbMu sync.RWMutex
	failCb   func(caller uint32, err error)

	// scaleCb fires whenever an instance becomes routable (ScaleUp,
	// RestartInstance, Activate) — the gateway wakes parked requests.
	scaleCbMu sync.RWMutex
	scaleCb   func()

	admission AdmissionPolicy

	// flight is the flight-recorder sink (nil when unobserved). Kept at
	// the struct tail so the hot fields above keep their layout.
	flight flightHook

	closed sync.Once
}

// failureCounters aggregates the chain's failure-path activity; the
// gateway surfaces them through GatewayStats and the EPROXY metrics map.
type failureCounters struct {
	crashes          atomic.Uint64 // handler panics absorbed
	retries          atomic.Uint64 // descriptor re-sends
	retriesExhausted atomic.Uint64 // sends that failed after all attempts
	circuitOpens     atomic.Uint64 // breaker closed→open transitions
	reclaimed        atomic.Uint64 // orphaned buffers reclaimed
	deadlines        atomic.Uint64 // invocations failed by deadline
	terminal         atomic.Uint64 // requests completed with terminal errors
	injected         atomic.Uint64 // faults fired by the injector
}

// topicShardCount shards the buffer→topic table; every request touches it
// three times (set at ingress, read per hop, clear at release), so a single
// RWMutex serializes the whole chain under multicore load. 64 shards keyed
// by buffer handle spread that traffic; handles are pool slot indices, so
// consecutive requests land on distinct shards.
const topicShardCount = 64

type topicShard struct {
	mu sync.RWMutex
	m  map[uint32]string
	_  [6]uint64 // pad to keep neighbouring shard locks off one cache line
}

type topicTable struct {
	shards [topicShardCount]topicShard
}

func (t *topicTable) init() {
	for i := range t.shards {
		t.shards[i].m = make(map[uint32]string)
	}
}

func (t *topicTable) shard(h uint32) *topicShard {
	return &t.shards[h&(topicShardCount-1)]
}

func (t *topicTable) set(h uint32, topic string) {
	s := t.shard(h)
	s.mu.Lock()
	s.m[h] = topic
	s.mu.Unlock()
}

func (t *topicTable) get(h uint32) string {
	s := t.shard(h)
	s.mu.RLock()
	topic := s.m[h]
	s.mu.RUnlock()
	return topic
}

func (t *topicTable) delete(h uint32) {
	s := t.shard(h)
	s.mu.Lock()
	delete(s.m, h)
	s.mu.Unlock()
}

// FailureStats is a snapshot of the chain's failure-recovery activity.
type FailureStats struct {
	Crashes           uint64
	Retries           uint64
	RetriesExhausted  uint64
	CircuitOpens      uint64
	Reclaimed         uint64
	DeadlinesExceeded uint64
	TerminalFailures  uint64
	FaultsInjected    uint64
}

// Failures returns a snapshot of the chain's failure counters.
func (c *Chain) Failures() FailureStats {
	return FailureStats{
		Crashes:           c.failures.crashes.Load(),
		Retries:           c.failures.retries.Load(),
		RetriesExhausted:  c.failures.retriesExhausted.Load(),
		CircuitOpens:      c.failures.circuitOpens.Load(),
		Reclaimed:         c.failures.reclaimed.Load(),
		DeadlinesExceeded: c.failures.deadlines.Load(),
		TerminalFailures:  c.failures.terminal.Load(),
		FaultsInjected:    c.failures.injected.Load(),
	}
}

// Injector returns the chain's fault injector (nil when not injecting).
func (c *Chain) Injector() *fault.Injector { return c.injector }

// EnableTracing turns on per-request hop tracing (a debugging aid and the
// source of §3.3's chain-level metrics), retaining up to limit traces.
func (c *Chain) EnableTracing(limit int) *Tracer {
	tr := NewTracer(limit)
	c.tracer.Store(tr)
	return tr
}

// EnableSampledTracing turns on 1-in-every sampled hop tracing, the
// always-on production mode: unsampled requests cost one atomic increment
// and zero allocations, sampled ones feed the per-hop histograms and the
// bounded recent-trace ring the observability exporter serves.
func (c *Chain) EnableSampledTracing(every, limit int) *Tracer {
	tr := NewSampledTracer(every, limit)
	c.tracer.Store(tr)
	return tr
}

// DisableTracing stops trace collection.
func (c *Chain) DisableTracing() {
	c.tracer.Store(nil)
}

// Tracer returns the chain's current tracer (nil when tracing is off).
func (c *Chain) Tracer() *Tracer {
	return c.tracer.Load()
}

// currentTracer is read on every hop; the atomic pointer keeps the
// tracing-off common case to a single load.
func (c *Chain) currentTracer() *Tracer {
	return c.tracer.Load()
}

// Chain errors.
var (
	ErrBackpressure = errors.New("core: chain at capacity (pool exhausted)")
	ErrNoHead       = errors.New("core: chain has no ingress route (From \"\")")
)

// Defaults for the always-on observability plumbing.
const (
	defaultTraceSampleEvery = 1024 // 1-in-N sampled hop tracing
	defaultTraceLimit       = 64   // recent traces retained
	defaultScrapeInterval   = 500 * time.Millisecond
)

// RingStats reports per-instance ring queue counters in polling mode
// (nil for event mode — S-SPRIGHT has no rings).
func (c *Chain) RingStats() []RingQueueStat {
	rt, ok := c.transport.(*ringTransport)
	if !ok {
		return nil
	}
	return rt.ringStats()
}

// NewChain builds and starts a chain in the given eBPF kernel, creating its
// private shared-memory pool through manager (the Fig. 6 startup flow is
// orchestrated one level up; this is the dataplane assembly).
func NewChain(kernel *ebpf.Kernel, manager *shm.Manager, spec ChainSpec) (*Chain, error) {
	if spec.Name == "" {
		return nil, errors.New("core: chain needs a name")
	}
	if len(spec.Functions) == 0 {
		return nil, errors.New("core: chain needs at least one function")
	}
	poolBufs := spec.PoolBuffers
	if poolBufs <= 0 {
		poolBufs = 1024
	}
	bufSize := spec.BufSize
	if bufSize <= 0 {
		bufSize = 16 * 1024
	}
	pool, err := manager.CreatePool(spec.Name, poolBufs, bufSize)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			_ = manager.Release(spec.Name)
		}
	}()

	c := &Chain{
		name:      spec.Name,
		mode:      spec.Mode,
		pool:      pool,
		router:    NewRouter(),
		byName:    make(map[string]*FunctionSpec),
		deadline:  spec.Deadline,
		retry:     spec.Retry,
		health:    spec.Health,
		injector:  spec.Injector,
		admission: spec.Admission,
	}
	c.topics.init()
	if !spec.Objects.Disable {
		maxObj := spec.Objects.MaxObjectBytes
		switch {
		case maxObj == 0:
			maxObj = defaultMaxObjectBytes
		case maxObj < 0:
			maxObj = 0
		}
		c.store = objstore.New(pool, objstore.Config{
			MaxResidentBytes: spec.Objects.MaxResidentBytes,
			MaxObjectBytes:   maxObj,
			SpillDir:         spec.Objects.SpillDir,
		})
	}
	if c.retry.MaxAttempts > 1 {
		if c.retry.BaseBackoff <= 0 {
			c.retry.BaseBackoff = 100 * time.Microsecond
		}
		if c.retry.MaxBackoff <= 0 {
			c.retry.MaxBackoff = 5 * time.Millisecond
		}
	}
	if c.health.ConsecutiveFailures > 0 && c.health.OpenDuration <= 0 {
		c.health.OpenDuration = 100 * time.Millisecond
	}
	c.jitterSeed.Store(0x9e3779b97f4a7c15)

	switch spec.Mode {
	case ModeEvent:
		sp, err := NewSProxy(kernel, spec.Name)
		if err != nil {
			return nil, err
		}
		c.sproxy = sp
		c.transport = NewEventTransport(sp)
	case ModePolling:
		c.transport = NewRingTransport()
	default:
		return nil, fmt.Errorf("core: unknown mode %d", spec.Mode)
	}
	// Descriptors the transport gives up on (socket closed mid-burst, ring
	// drained at shutdown) are orphans: reclaim their buffers and fail their
	// callers instead of leaking pool slabs.
	c.transport.SetDropHandler(func(d shm.Descriptor) {
		c.reclaimOrphan(d, "transport")
	})

	// Always-on sampled tracing (spec.TraceSampleEvery < 0 opts out; tests
	// that need full traces replace the tracer via EnableTracing).
	if spec.TraceSampleEvery >= 0 {
		every := spec.TraceSampleEvery
		if every == 0 {
			every = defaultTraceSampleEvery
		}
		tailLimit := spec.TraceTailLimit
		if tailLimit <= 0 {
			tailLimit = defaultTraceLimit
		}
		tr := NewSampledTracer(every, defaultTraceLimit)
		tr.SetTailSampling(spec.TraceTailLatency, tailLimit)
		c.tracer.Store(tr)
	}
	// D-SPRIGHT queue-wait attribution: the poller reports each sampled
	// descriptor's ring residency back through the dequeue hook.
	if rt, isRing := c.transport.(*ringTransport); isRing {
		rt.SetDequeueHook(c.ringDequeueHook)
	}
	c.scrapeEvery = spec.ScrapeInterval
	if c.scrapeEvery == 0 {
		c.scrapeEvery = defaultScrapeInterval
	}

	depth := spec.SocketDepth
	if depth <= 0 {
		depth = poolBufs
	}
	c.sockDepth = depth
	c.routes = append([]RouteSpec(nil), spec.Routes...)

	// Start function instances: IDs 1..N (0 is the gateway).
	nextID := uint32(1)
	for i := range spec.Functions {
		fs := spec.Functions[i] // copy: the chain owns its specs
		if fs.Name == "" {
			return nil, fmt.Errorf("core: function %d has no name", i)
		}
		if _, dup := c.byName[fs.Name]; dup {
			return nil, fmt.Errorf("core: duplicate function %q", fs.Name)
		}
		if fs.Instances <= 0 {
			fs.Instances = 1
		}
		if fs.Concurrency <= 0 {
			fs.Concurrency = 32
		}
		c.byName[fs.Name] = &fs
		c.fnOrder = append(c.fnOrder, fs.Name)
		for j := 0; j < fs.Instances; j++ {
			inst := &Instance{
				chain:       c,
				fnName:      fs.Name,
				id:          nextID,
				sock:        NewSocket(nextID, depth),
				handler:     fs.Handler,
				concurrency: fs.Concurrency,
				serviceTime: fs.ServiceTime,
				stop:        make(chan struct{}),
			}
			nextID++
			if err := c.transport.Register(inst.sock); err != nil {
				return nil, err
			}
			c.router.AddInstance(fs.Name, inst)
			c.instances = append(c.instances, inst)
		}
	}
	c.nextID = nextID

	// DFR routes.
	for _, r := range spec.Routes {
		for _, to := range r.To {
			if _, ok := c.byName[to]; !ok {
				return nil, fmt.Errorf("core: route to unknown function %q", to)
			}
		}
		if r.From != "" {
			if _, ok := c.byName[r.From]; !ok {
				return nil, fmt.Errorf("core: route from unknown function %q", r.From)
			}
		}
		c.router.SetRoute(RouteKey{Topic: r.Topic, From: r.From}, r.To...)
	}

	// Filter rules (§3.4): authorize exactly the edges the routing table
	// implies, in both data directions, plus replies to the gateway.
	if err := c.configureFilters(spec.Routes); err != nil {
		return nil, err
	}

	for _, in := range c.instances {
		in.start()
	}
	ok = true
	return c, nil
}

// configureFilters installs the per-edge allow rules the kubelet would
// configure at startup.
func (c *Chain) configureFilters(routes []RouteSpec) error {
	allow := func(src, dst uint32) error { return c.transport.Allow(src, dst) }
	for _, r := range routes {
		var srcIDs []uint32
		if r.From == "" {
			srcIDs = []uint32{GatewayID}
		} else {
			for _, in := range c.router.Instances(r.From) {
				srcIDs = append(srcIDs, in.ID())
			}
		}
		for _, to := range r.To {
			for _, dst := range c.router.Instances(to) {
				for _, src := range srcIDs {
					if err := allow(src, dst.ID()); err != nil {
						return err
					}
				}
			}
		}
	}
	// every instance may reply to the gateway
	for _, in := range c.instances {
		if err := allow(in.ID(), GatewayID); err != nil {
			return err
		}
	}
	return nil
}

// Name returns the chain name (also its shared-memory prefix).
func (c *Chain) Name() string { return c.name }

// Mode returns the transport mode.
func (c *Chain) Mode() Mode { return c.mode }

// ScrapeInterval returns the resolved metrics-agent period — the cadence
// of the gateway's agent tick (<= 0: agent disabled).
func (c *Chain) ScrapeInterval() time.Duration { return c.scrapeEvery }

// Pool exposes the chain's shared-memory pool (metrics, tests).
func (c *Chain) Pool() *shm.Pool { return c.pool }

// ObjectStore exposes the chain's ephemeral object store (nil when the
// spec disabled it).
func (c *Chain) ObjectStore() *objstore.Store { return c.store }

// Router exposes the DFR router (controller-driven route updates).
func (c *Chain) Router() *Router { return c.router }

// SProxy returns the chain's SPROXY (nil in polling mode).
func (c *Chain) SProxy() *SProxy { return c.sproxy }

// Instances returns all running instances.
func (c *Chain) Instances() []*Instance {
	c.instMu.Lock()
	defer c.instMu.Unlock()
	return append([]*Instance(nil), c.instances...)
}

// Functions returns the chain's declared function names in spec order —
// including functions currently at zero replicas, which Instances() cannot
// surface. The control plane iterates this, never the instance list, so a
// scaled-to-zero function is still a scaling target.
func (c *Chain) Functions() []string {
	return append([]string(nil), c.fnOrder...)
}

// setScaleNotifier registers the gateway's capacity-arrived callback.
func (c *Chain) setScaleNotifier(fn func()) {
	c.scaleCbMu.Lock()
	c.scaleCb = fn
	c.scaleCbMu.Unlock()
}

// notifyScaled announces that an instance just became routable; parked
// requests re-attempt dispatch.
func (c *Chain) notifyScaled() {
	c.scaleCbMu.RLock()
	cb := c.scaleCb
	c.scaleCbMu.RUnlock()
	if cb != nil {
		cb()
	}
}

func (c *Chain) setTopic(d shm.Descriptor, topic string) {
	c.topics.set(d.Buf, topic)
}

func (c *Chain) topicOf(d shm.Descriptor) string {
	return c.topics.get(d.Buf)
}

// releaseBuffer drops one reference and clears topic state when the buffer
// dies.
func (c *Chain) releaseBuffer(h uint32) {
	if err := c.pool.Put(h); err != nil {
		c.noteError("pool", err)
		return
	}
	if _, err := c.pool.Len(h); err != nil { // fully released
		c.topics.delete(h)
	}
}

// jitter draws a race-free pseudo-random duration in [0, d/2] (atomic
// xorshift; determinism is not required here, only bounded spread).
func (c *Chain) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	for {
		old := c.jitterSeed.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if c.jitterSeed.CompareAndSwap(old, x) {
			return time.Duration(x % uint64(d/2+1))
		}
	}
}

// attempt performs one send try for the hop srcFn→dstFn, consulting the
// fault injector first.
func (c *Chain) attempt(src uint32, srcFn, dstFn string, d shm.Descriptor) error {
	if c.injector.DecideSend(srcFn, dstFn) {
		c.failures.injected.Add(1)
		return ErrSocketFull
	}
	return c.transport.Send(src, d)
}

// resend drives the retry loop after a first attempt failed with err:
// exponential backoff with jitter, up to the chain's retry budget.
// Non-transient errors (filter rejection, unknown destination) end the loop
// immediately.
func (c *Chain) resend(src uint32, srcFn, dstFn string, d shm.Descriptor, err error) error {
	if err == nil || c.retry.MaxAttempts <= 1 || !errors.Is(err, ErrSocketFull) {
		return err
	}
	backoff := c.retry.BaseBackoff
	for n := 1; n < c.retry.MaxAttempts; n++ {
		c.failures.retries.Add(1)
		time.Sleep(backoff + c.jitter(backoff))
		if backoff *= 2; backoff > c.retry.MaxBackoff {
			backoff = c.retry.MaxBackoff
		}
		if err = c.attempt(src, srcFn, dstFn, d); err == nil || !errors.Is(err, ErrSocketFull) {
			return err
		}
	}
	c.failures.retriesExhausted.Add(1)
	return fmt.Errorf("core: %d send attempts: %w", c.retry.MaxAttempts, err)
}

// send delivers d from src, retrying transient transport errors (socket
// queue full) up to the chain's retry budget with exponential backoff and
// jitter. srcFn/dstFn name the hop for fault-injection scoping; dstFn is
// "gateway" for replies. Non-transient errors (filter rejection, unknown
// destination) are returned immediately.
func (c *Chain) send(src uint32, srcFn, dstFn string, d shm.Descriptor) error {
	if tr := c.currentTracer(); tr != nil && c.pool.TraceSampled(d.Buf) {
		return c.sendTraced(tr, src, srcFn, dstFn, d)
	}
	return c.resend(src, srcFn, dstFn, d, c.attempt(src, srcFn, dstFn, d))
}

// sendTraced wraps one hop's send in a redirect/enqueue span and stamps
// the buffer's enqueue time so the consumer side (ring poller or socket
// worker) can attribute queue wait. Only sampled buffers come here — the
// unsampled path stays clock-free.
func (c *Chain) sendTraced(tr *Tracer, src uint32, srcFn, dstFn string, d shm.Descriptor) error {
	parent := c.pool.TraceContext(d.Buf).Span
	stage := StageRedirect
	if c.mode == ModePolling {
		stage = StageEnqueue
	}
	t0 := time.Now()
	// Stamp before the send: the consumer may dequeue the descriptor
	// before this goroutine runs again, and it must find the stamp.
	c.pool.StampTrace(d.Buf, t0.UnixNano())
	err := c.resend(src, srcFn, dstFn, d, c.attempt(src, srcFn, dstFn, d))
	s := Span{Parent: parent, Stage: stage, Function: dstFn, Instance: d.NextFn, Start: t0, End: time.Now()}
	if err != nil {
		s.Err = err.Error()
	}
	tr.RecordSpan(d.Caller, s)
	return err
}

// ringDequeueHook runs in the D-SPRIGHT poller for each dequeued
// descriptor: for sampled buffers it converts the producer's enqueue stamp
// into a ring.wait span and re-stamps the buffer so the socket worker can
// attribute its own queue wait separately. Returns the measured residency
// (0 when untraced) for the ring's wait counters.
func (c *Chain) ringDequeueHook(d shm.Descriptor) time.Duration {
	tr := c.currentTracer()
	if tr == nil || !c.pool.TraceSampled(d.Buf) {
		return 0
	}
	ns := c.pool.TraceStamp(d.Buf)
	if ns <= 0 {
		return 0
	}
	now := time.Now()
	start := time.Unix(0, ns)
	tr.RecordSpan(d.Caller, Span{
		Parent: c.pool.TraceContext(d.Buf).Span, Stage: StageRingWait,
		Instance: d.NextFn, Start: start, End: now,
	})
	c.pool.StampTrace(d.Buf, now.UnixNano())
	return now.Sub(start)
}

// sendBatch delivers a fan-out burst from src in one transport batch call,
// amortizing per-send setup across the burst. dstFns[i] names descriptor
// i's destination function (fault-injection scope and retry context).
// Failed descriptors that are transiently refused (socket queue full) are
// re-driven through the retry loop; onErr is invoked with the index and
// final error of each descriptor that could not be delivered. Returns the
// number delivered.
//
// When a fault injector is active, each descriptor's injection decision
// must be drawn independently (the injector scopes faults per hop), so the
// batch degrades to per-descriptor sends in that case.
func (c *Chain) sendBatch(src uint32, srcFn string, dstFns []string, ds []shm.Descriptor, onErr func(i int, err error)) int {
	if len(ds) == 0 {
		return 0
	}
	// A traced fan-out also degrades: all branches share ds[0].Buf, and
	// per-branch child spans need per-send instrumentation.
	if c.injector != nil ||
		(c.currentTracer() != nil && c.pool.TraceSampled(ds[0].Buf)) {
		delivered := 0
		for i := range ds {
			if err := c.send(src, srcFn, dstFns[i], ds[i]); err != nil {
				if onErr != nil {
					onErr(i, err)
				}
			} else {
				delivered++
			}
		}
		return delivered
	}
	retried := 0
	delivered := c.transport.SendBatch(src, ds, func(i int, err error) {
		// Transient refusals get the same retry budget as serial sends.
		if errors.Is(err, ErrSocketFull) {
			err = c.resend(src, srcFn, dstFns[i], ds[i], err)
			if err == nil {
				retried++
				return
			}
		}
		if onErr != nil {
			onErr(i, err)
		}
	})
	return delivered + retried
}

// setFailureNotifier registers the gateway's terminal-failure callback.
func (c *Chain) setFailureNotifier(fn func(caller uint32, err error)) {
	c.failCbMu.Lock()
	c.failCb = fn
	c.failCbMu.Unlock()
}

// notifyFailure terminates a caller's wait with an error when the
// dataplane knows no response descriptor will ever arrive — the request
// fails fast instead of blackholing until its deadline. The buffer must
// already have been released by the caller of notifyFailure.
func (c *Chain) notifyFailure(caller uint32, err error) {
	if caller == NoReply || err == nil {
		return
	}
	c.failures.terminal.Add(1)
	c.failCbMu.RLock()
	cb := c.failCb
	c.failCbMu.RUnlock()
	if cb != nil {
		cb(caller, err)
	}
}

// ErrInstanceGone marks requests stranded in the socket queue of an
// instance that was shut down or restarted.
var ErrInstanceGone = errors.New("core: instance shut down with queued requests")

// reclaimOrphan releases a descriptor stranded in a dead instance's
// socket queue and fails its caller — the queue-drain half of the
// guarantee that a crashed instance never leaks pool slabs.
func (c *Chain) reclaimOrphan(d shm.Descriptor, fn string) {
	c.failures.reclaimed.Add(1)
	c.releaseBuffer(d.Buf)
	c.notifyFailure(d.Caller, fmt.Errorf("%s: %w", fn, ErrInstanceGone))
}

func (c *Chain) noteError(where string, err error) {
	if err == nil {
		return
	}
	c.errMu.Lock()
	c.errCnt++
	if len(c.errs) < 64 {
		c.errs = append(c.errs, fmt.Errorf("%s: %w", where, err))
	}
	c.errMu.Unlock()
}

// Errors returns the count and a bounded sample of dataplane errors.
func (c *Chain) Errors() (uint64, []error) {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.errCnt, append([]error(nil), c.errs...)
}

// Close stops all instances (including prewarmed ones) and the transport.
func (c *Chain) Close() {
	c.closed.Do(func() {
		c.instMu.Lock()
		warm := append([]*Instance(nil), c.prewarmed...)
		c.prewarmed = nil
		c.instMu.Unlock()
		for _, in := range warm {
			in.shutdown()
		}
		for _, in := range c.Instances() {
			in.shutdown()
		}
		c.transport.Close()
		// The store closes before the pool: spill files are removed while
		// Release still works for late drains, and leaked objects' resident
		// slabs stay visible to the pool's LeakCheck.
		if c.store != nil {
			c.store.Close()
		}
		c.pool.Close()
	})
}

// PrewarmedInstance is an instance created ahead of demand: socket
// registered with the transport, filter edges authorized, worker pool
// running — but not routable. Activation is the cheap step (a router
// insert plus an idempotent edge refresh), which is what makes resuming a
// scaled-to-zero function fast: the expensive wiring already happened off
// the request path.
type PrewarmedInstance struct {
	inst *Instance
	used bool
}

// ID returns the prewarmed instance's dataplane ID.
func (pw *PrewarmedInstance) ID() uint32 { return pw.inst.id }

// Function returns the function this instance will serve.
func (pw *PrewarmedInstance) Function() string { return pw.inst.fnName }

// Prewarm creates one not-yet-routable instance of fn for later Activate.
func (c *Chain) Prewarm(fn string) (*PrewarmedInstance, error) {
	c.instMu.Lock()
	defer c.instMu.Unlock()
	inst, err := c.newWiredInstanceLocked(fn)
	if err != nil {
		return nil, err
	}
	c.prewarmed = append(c.prewarmed, inst)
	inst.start()
	return &PrewarmedInstance{inst: inst}, nil
}

// Activate makes a prewarmed instance routable. Filter edges are
// re-authorized first (Allow is an idempotent map update), covering any
// peer instances that appeared since the prewarm. A PrewarmedInstance can
// be activated once; afterwards the instance is owned by the chain like
// any other.
func (c *Chain) Activate(pw *PrewarmedInstance) (*Instance, error) {
	c.instMu.Lock()
	if pw.used {
		c.instMu.Unlock()
		return nil, errors.New("core: prewarmed instance already consumed")
	}
	pw.used = true
	for i, in := range c.prewarmed {
		if in == pw.inst {
			c.prewarmed = append(c.prewarmed[:i], c.prewarmed[i+1:]...)
			break
		}
	}
	if err := c.authorizeEdgesLocked(pw.inst); err != nil {
		c.instMu.Unlock()
		return nil, err
	}
	c.router.AddInstance(pw.inst.fnName, pw.inst)
	c.instances = append(c.instances, pw.inst)
	c.instMu.Unlock()
	c.notifyScaled()
	return pw.inst, nil
}

// DiscardPrewarmed tears down an unactivated prewarmed instance.
func (c *Chain) DiscardPrewarmed(pw *PrewarmedInstance) {
	c.instMu.Lock()
	if pw.used {
		c.instMu.Unlock()
		return
	}
	pw.used = true
	for i, in := range c.prewarmed {
		if in == pw.inst {
			c.prewarmed = append(c.prewarmed[:i], c.prewarmed[i+1:]...)
			break
		}
	}
	c.instMu.Unlock()
	if err := c.transport.Unregister(pw.inst.id); err != nil {
		c.noteError("prewarm", err)
	}
	pw.inst.shutdown()
}

// ScaleUp starts one additional instance of fn (vertical/horizontal pod
// scaling, §3.7), wiring its sockmap entry and the filter rules of every
// routing edge that touches fn, then registering it with the router.
func (c *Chain) ScaleUp(fn string) (*Instance, error) {
	c.instMu.Lock()
	defer c.instMu.Unlock()
	return c.startInstanceLocked(fn)
}

// startInstanceLocked creates, wires and starts one fresh instance of fn,
// making it routable. Callers hold instMu.
func (c *Chain) startInstanceLocked(fn string) (*Instance, error) {
	inst, err := c.newWiredInstanceLocked(fn)
	if err != nil {
		return nil, err
	}
	c.router.AddInstance(fn, inst)
	c.instances = append(c.instances, inst)
	inst.start()
	c.notifyScaled()
	return inst, nil
}

// newWiredInstanceLocked creates one instance of fn, registers its socket
// with the transport, and authorizes its filter edges — everything short of
// routability. Callers hold instMu.
func (c *Chain) newWiredInstanceLocked(fn string) (*Instance, error) {
	fs, ok := c.byName[fn]
	if !ok {
		return nil, fmt.Errorf("core: unknown function %q", fn)
	}
	if int(c.nextID) >= MaxInstances {
		return nil, fmt.Errorf("core: instance limit %d reached", MaxInstances)
	}
	inst := &Instance{
		chain:       c,
		fnName:      fn,
		id:          c.nextID,
		sock:        NewSocket(c.nextID, c.sockDepth),
		handler:     fs.Handler,
		concurrency: fs.Concurrency,
		serviceTime: fs.ServiceTime,
		stop:        make(chan struct{}),
	}
	c.nextID++
	if err := c.transport.Register(inst.sock); err != nil {
		return nil, err
	}
	if err := c.authorizeEdgesLocked(inst); err != nil {
		return nil, err
	}
	return inst, nil
}

// authorizeEdgesLocked installs the filter rules for one instance of fn:
// sources routing *to* fn, targets fn routes *to*, and the reply edge to
// the gateway. Allow is an idempotent map update, so re-authorizing at
// prewarm activation (after topology changed underneath a warm instance)
// is safe. Callers hold instMu.
func (c *Chain) authorizeEdgesLocked(inst *Instance) error {
	fn := inst.fnName
	for _, r := range c.routes {
		for _, to := range r.To {
			if to == fn {
				srcs := []uint32{GatewayID}
				if r.From != "" {
					srcs = srcs[:0]
					for _, s := range c.router.Instances(r.From) {
						srcs = append(srcs, s.ID())
					}
				}
				for _, s := range srcs {
					if err := c.transport.Allow(s, inst.ID()); err != nil {
						return err
					}
				}
			}
		}
		if r.From == fn {
			for _, to := range r.To {
				for _, dst := range c.router.Instances(to) {
					if err := c.transport.Allow(inst.ID(), dst.ID()); err != nil {
						return err
					}
				}
			}
		}
	}
	if c.gwIngress[fn] {
		if err := c.transport.Allow(GatewayID, inst.ID()); err != nil {
			return err
		}
	}
	return c.transport.Allow(inst.ID(), GatewayID)
}

// AllowGatewayIngress authorizes the gateway to dispatch directly to fn —
// the entry edge for requests arriving from a peer node, where the logical
// source instance lives on the other side of the wire and the local gateway
// re-injects the descriptor on its behalf. The grant is persistent:
// instances of fn added later (scale-up, restart, prewarm activation)
// inherit it through authorizeEdgesLocked.
func (c *Chain) AllowGatewayIngress(fn string) error {
	c.instMu.Lock()
	defer c.instMu.Unlock()
	if _, ok := c.byName[fn]; !ok {
		return fmt.Errorf("core: unknown function %q", fn)
	}
	if c.gwIngress == nil {
		c.gwIngress = make(map[string]bool)
	}
	c.gwIngress[fn] = true
	for _, in := range c.router.Instances(fn) {
		if err := c.transport.Allow(GatewayID, in.ID()); err != nil {
			return err
		}
	}
	return nil
}

// RestartInstance replaces a crashed or circuit-broken instance with a
// fresh one of the same function — the kubelet's repair action behind the
// §3.3 health probes. The replacement is registered and routable before
// the victim leaves the router, so the function never drops to zero
// instances; the victim's socket queue is drained asynchronously, with
// every stranded descriptor reclaimed and its caller failed. A handler
// wedged inside the victim keeps its buffer until it returns (goroutines
// cannot be killed); its caller is bounded by the invocation deadline.
func (c *Chain) RestartInstance(id uint32) (*Instance, error) {
	if id == GatewayID {
		return nil, errors.New("core: cannot restart the gateway")
	}
	c.instMu.Lock()
	var victim *Instance
	for _, in := range c.instances {
		if in.id == id {
			victim = in
			break
		}
	}
	if victim == nil {
		c.instMu.Unlock()
		return nil, fmt.Errorf("core: no instance %d", id)
	}
	repl, err := c.startInstanceLocked(victim.fnName)
	if err != nil {
		c.instMu.Unlock()
		return nil, err
	}
	for i, in := range c.instances {
		if in == victim {
			c.instances = append(c.instances[:i], c.instances[i+1:]...)
			break
		}
	}
	// Claim the victim out of the router under instMu too: a concurrent
	// ScaleDown selecting its own victim can then never race this removal.
	c.router.RemoveInstance(victim.fnName, id)
	c.instMu.Unlock()

	if err := c.transport.Unregister(id); err != nil {
		c.noteError("restart", err)
	}
	// The victim may be wedged mid-handler; don't block the repair on it.
	// shutdown waits out in-flight work, then drains and reclaims the
	// socket queue.
	go victim.shutdown()
	return repl, nil
}

// ScaleDown stops one instance of fn (the one with the fewest in-flight
// requests) and removes it from routing. It refuses to remove the last
// warm instance — scale-to-zero is a deliberate control-plane action
// (ScaleToZero), never an accident of repeated downscaling.
func (c *Chain) ScaleDown(fn string) error {
	return c.scaleDown(fn, 1)
}

// scaleDown removes one instance of fn, refusing to drop below floor.
// Victim selection and removal from both the instance list and the router
// happen under instMu, so a concurrent ScaleDown or RestartInstance can
// never claim the same victim; the synchronous drain (shutdown waits out
// in-flight work, then reclaims the socket queue) runs outside the lock.
func (c *Chain) scaleDown(fn string, floor int) error {
	if _, ok := c.byName[fn]; !ok {
		return fmt.Errorf("core: unknown function %q", fn)
	}
	c.instMu.Lock()
	var victim *Instance
	live := 0
	for _, in := range c.instances {
		if in.fnName != fn {
			continue
		}
		live++
		if victim == nil || in.Inflight() < victim.Inflight() {
			victim = in
		}
	}
	if live <= floor || victim == nil {
		c.instMu.Unlock()
		if floor > 0 {
			return fmt.Errorf("core: refusing to scale %q below %d warm instance(s)", fn, floor)
		}
		return fmt.Errorf("core: %q already at zero instances", fn)
	}
	for i, in := range c.instances {
		if in == victim {
			c.instances = append(c.instances[:i], c.instances[i+1:]...)
			break
		}
	}
	c.router.RemoveInstance(fn, victim.ID())
	c.instMu.Unlock()

	if err := c.transport.Unregister(victim.ID()); err != nil {
		c.noteError("scaledown", err)
	}
	victim.shutdown()
	return nil
}

// ScaleToZero retires every instance of fn — the idle-chain end state the
// paper's warm-instance economics make affordable (§4.2.2). Each retiring
// instance drains synchronously: in-flight requests complete (their
// replies route through the still-registered reverse edge) and queued
// descriptors are reclaimed with their callers failed. Returns how many
// instances were removed. The first request arriving afterwards parks at
// the gateway (given an AdmissionPolicy) until the control plane resumes
// capacity.
func (c *Chain) ScaleToZero(fn string) (int, error) {
	if _, ok := c.byName[fn]; !ok {
		return 0, fmt.Errorf("core: unknown function %q", fn)
	}
	removed := 0
	for {
		if err := c.scaleDown(fn, 0); err != nil {
			return removed, nil
		}
		removed++
	}
}
