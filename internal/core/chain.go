package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/spright-go/spright/internal/ebpf"
	"github.com/spright-go/spright/internal/shm"
)

// FunctionSpec declares one function of a chain.
type FunctionSpec struct {
	Name        string
	Handler     Handler
	Instances   int           // pods to start (default 1)
	Concurrency int           // per-pod concurrent invocations (default 32)
	ServiceTime time.Duration // optional simulated CPU time per invocation
}

// RouteSpec declares one DFR routing-table entry. From "" routes the
// gateway's ingress to the chain's head function.
type RouteSpec struct {
	Topic string
	From  string
	To    []string
}

// ChainSpec declares a function chain.
type ChainSpec struct {
	Name      string
	Mode      Mode
	Functions []FunctionSpec
	Routes    []RouteSpec

	// PoolBuffers and BufSize fix the private shared-memory pool
	// geometry (defaults: 1024 × 16 KiB).
	PoolBuffers int
	BufSize     int

	// SocketDepth overrides per-socket queue depth (defaults to
	// PoolBuffers: the pool is the real burst buffer).
	SocketDepth int
}

// Chain is a deployed function chain: its private pool, its transport, its
// DFR router, its functions, and its gateway-side bookkeeping.
type Chain struct {
	name      string
	mode      Mode
	pool      *shm.Pool
	transport Transport
	sproxy    *SProxy // nil in polling mode
	router    *Router

	instMu    sync.Mutex
	instances []*Instance
	byName    map[string]*FunctionSpec
	routes    []RouteSpec
	sockDepth int
	nextID    uint32

	topicMu sync.RWMutex
	topics  map[uint32]string

	errMu  sync.Mutex
	errs   []error
	errCnt uint64

	traceMu sync.RWMutex
	tracer  *Tracer

	closed sync.Once
}

// EnableTracing turns on per-request hop tracing (a debugging aid and the
// source of §3.3's chain-level metrics), retaining up to limit traces.
func (c *Chain) EnableTracing(limit int) *Tracer {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	c.tracer = NewTracer(limit)
	return c.tracer
}

// DisableTracing stops trace collection.
func (c *Chain) DisableTracing() {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	c.tracer = nil
}

func (c *Chain) currentTracer() *Tracer {
	c.traceMu.RLock()
	defer c.traceMu.RUnlock()
	return c.tracer
}

// Chain errors.
var (
	ErrBackpressure = errors.New("core: chain at capacity (pool exhausted)")
	ErrNoHead       = errors.New("core: chain has no ingress route (From \"\")")
)

// NewChain builds and starts a chain in the given eBPF kernel, creating its
// private shared-memory pool through manager (the Fig. 6 startup flow is
// orchestrated one level up; this is the dataplane assembly).
func NewChain(kernel *ebpf.Kernel, manager *shm.Manager, spec ChainSpec) (*Chain, error) {
	if spec.Name == "" {
		return nil, errors.New("core: chain needs a name")
	}
	if len(spec.Functions) == 0 {
		return nil, errors.New("core: chain needs at least one function")
	}
	poolBufs := spec.PoolBuffers
	if poolBufs <= 0 {
		poolBufs = 1024
	}
	bufSize := spec.BufSize
	if bufSize <= 0 {
		bufSize = 16 * 1024
	}
	pool, err := manager.CreatePool(spec.Name, poolBufs, bufSize)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			_ = manager.Release(spec.Name)
		}
	}()

	c := &Chain{
		name:   spec.Name,
		mode:   spec.Mode,
		pool:   pool,
		router: NewRouter(),
		byName: make(map[string]*FunctionSpec),
		topics: make(map[uint32]string),
	}

	switch spec.Mode {
	case ModeEvent:
		sp, err := NewSProxy(kernel, spec.Name)
		if err != nil {
			return nil, err
		}
		c.sproxy = sp
		c.transport = NewEventTransport(sp)
	case ModePolling:
		c.transport = NewRingTransport()
	default:
		return nil, fmt.Errorf("core: unknown mode %d", spec.Mode)
	}

	depth := spec.SocketDepth
	if depth <= 0 {
		depth = poolBufs
	}
	c.sockDepth = depth
	c.routes = append([]RouteSpec(nil), spec.Routes...)

	// Start function instances: IDs 1..N (0 is the gateway).
	nextID := uint32(1)
	for i := range spec.Functions {
		fs := spec.Functions[i] // copy: the chain owns its specs
		if fs.Name == "" {
			return nil, fmt.Errorf("core: function %d has no name", i)
		}
		if _, dup := c.byName[fs.Name]; dup {
			return nil, fmt.Errorf("core: duplicate function %q", fs.Name)
		}
		if fs.Instances <= 0 {
			fs.Instances = 1
		}
		if fs.Concurrency <= 0 {
			fs.Concurrency = 32
		}
		c.byName[fs.Name] = &fs
		for j := 0; j < fs.Instances; j++ {
			inst := &Instance{
				chain:       c,
				fnName:      fs.Name,
				id:          nextID,
				sock:        NewSocket(nextID, depth),
				handler:     fs.Handler,
				concurrency: fs.Concurrency,
				serviceTime: fs.ServiceTime,
				stop:        make(chan struct{}),
			}
			nextID++
			if err := c.transport.Register(inst.sock); err != nil {
				return nil, err
			}
			c.router.AddInstance(fs.Name, inst)
			c.instances = append(c.instances, inst)
		}
	}
	c.nextID = nextID

	// DFR routes.
	for _, r := range spec.Routes {
		for _, to := range r.To {
			if _, ok := c.byName[to]; !ok {
				return nil, fmt.Errorf("core: route to unknown function %q", to)
			}
		}
		if r.From != "" {
			if _, ok := c.byName[r.From]; !ok {
				return nil, fmt.Errorf("core: route from unknown function %q", r.From)
			}
		}
		c.router.SetRoute(RouteKey{Topic: r.Topic, From: r.From}, r.To...)
	}

	// Filter rules (§3.4): authorize exactly the edges the routing table
	// implies, in both data directions, plus replies to the gateway.
	if err := c.configureFilters(spec.Routes); err != nil {
		return nil, err
	}

	for _, in := range c.instances {
		in.start()
	}
	ok = true
	return c, nil
}

// configureFilters installs the per-edge allow rules the kubelet would
// configure at startup.
func (c *Chain) configureFilters(routes []RouteSpec) error {
	allow := func(src, dst uint32) error { return c.transport.Allow(src, dst) }
	for _, r := range routes {
		var srcIDs []uint32
		if r.From == "" {
			srcIDs = []uint32{GatewayID}
		} else {
			for _, in := range c.router.Instances(r.From) {
				srcIDs = append(srcIDs, in.ID())
			}
		}
		for _, to := range r.To {
			for _, dst := range c.router.Instances(to) {
				for _, src := range srcIDs {
					if err := allow(src, dst.ID()); err != nil {
						return err
					}
				}
			}
		}
	}
	// every instance may reply to the gateway
	for _, in := range c.instances {
		if err := allow(in.ID(), GatewayID); err != nil {
			return err
		}
	}
	return nil
}

// Name returns the chain name (also its shared-memory prefix).
func (c *Chain) Name() string { return c.name }

// Mode returns the transport mode.
func (c *Chain) Mode() Mode { return c.mode }

// Pool exposes the chain's shared-memory pool (metrics, tests).
func (c *Chain) Pool() *shm.Pool { return c.pool }

// Router exposes the DFR router (controller-driven route updates).
func (c *Chain) Router() *Router { return c.router }

// SProxy returns the chain's SPROXY (nil in polling mode).
func (c *Chain) SProxy() *SProxy { return c.sproxy }

// Instances returns all running instances.
func (c *Chain) Instances() []*Instance {
	c.instMu.Lock()
	defer c.instMu.Unlock()
	return append([]*Instance(nil), c.instances...)
}

func (c *Chain) setTopic(d shm.Descriptor, topic string) {
	c.topicMu.Lock()
	c.topics[d.Buf] = topic
	c.topicMu.Unlock()
}

func (c *Chain) topicOf(d shm.Descriptor) string {
	c.topicMu.RLock()
	defer c.topicMu.RUnlock()
	return c.topics[d.Buf]
}

// releaseBuffer drops one reference and clears topic state when the buffer
// dies.
func (c *Chain) releaseBuffer(h uint32) {
	if err := c.pool.Put(h); err != nil {
		c.noteError("pool", err)
		return
	}
	if _, err := c.pool.Len(h); err != nil { // fully released
		c.topicMu.Lock()
		delete(c.topics, h)
		c.topicMu.Unlock()
	}
}

func (c *Chain) noteError(where string, err error) {
	if err == nil {
		return
	}
	c.errMu.Lock()
	c.errCnt++
	if len(c.errs) < 64 {
		c.errs = append(c.errs, fmt.Errorf("%s: %w", where, err))
	}
	c.errMu.Unlock()
}

// Errors returns the count and a bounded sample of dataplane errors.
func (c *Chain) Errors() (uint64, []error) {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.errCnt, append([]error(nil), c.errs...)
}

// Close stops all instances and the transport.
func (c *Chain) Close() {
	c.closed.Do(func() {
		for _, in := range c.Instances() {
			in.shutdown()
		}
		c.transport.Close()
		c.pool.Close()
	})
}

// ScaleUp starts one additional instance of fn (vertical/horizontal pod
// scaling, §3.7), wiring its sockmap entry and the filter rules of every
// routing edge that touches fn, then registering it with the router.
func (c *Chain) ScaleUp(fn string) (*Instance, error) {
	c.instMu.Lock()
	defer c.instMu.Unlock()
	fs, ok := c.byName[fn]
	if !ok {
		return nil, fmt.Errorf("core: unknown function %q", fn)
	}
	if int(c.nextID) >= MaxInstances {
		return nil, fmt.Errorf("core: instance limit %d reached", MaxInstances)
	}
	inst := &Instance{
		chain:       c,
		fnName:      fn,
		id:          c.nextID,
		sock:        NewSocket(c.nextID, c.sockDepth),
		handler:     fs.Handler,
		concurrency: fs.Concurrency,
		serviceTime: fs.ServiceTime,
		stop:        make(chan struct{}),
	}
	c.nextID++
	if err := c.transport.Register(inst.sock); err != nil {
		return nil, err
	}
	// Authorize edges: sources routing *to* fn, targets fn routes *to*,
	// and the reply edge to the gateway.
	for _, r := range c.routes {
		for _, to := range r.To {
			if to == fn {
				srcs := []uint32{GatewayID}
				if r.From != "" {
					srcs = srcs[:0]
					for _, s := range c.router.Instances(r.From) {
						srcs = append(srcs, s.ID())
					}
				}
				for _, s := range srcs {
					if err := c.transport.Allow(s, inst.ID()); err != nil {
						return nil, err
					}
				}
			}
		}
		if r.From == fn {
			for _, to := range r.To {
				for _, dst := range c.router.Instances(to) {
					if err := c.transport.Allow(inst.ID(), dst.ID()); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if err := c.transport.Allow(inst.ID(), GatewayID); err != nil {
		return nil, err
	}
	c.router.AddInstance(fn, inst)
	c.instances = append(c.instances, inst)
	inst.start()
	return inst, nil
}

// ScaleDown stops one instance of fn (the one with the fewest in-flight
// requests) and removes it from routing. The last instance of a function
// cannot be removed — SPRIGHT keeps chains warm rather than scaling to
// zero (§4.2.2).
func (c *Chain) ScaleDown(fn string) error {
	insts := c.router.Instances(fn)
	if len(insts) <= 1 {
		return fmt.Errorf("core: refusing to scale %q below one warm instance", fn)
	}
	victim := insts[0]
	for _, in := range insts[1:] {
		if in.Inflight() < victim.Inflight() {
			victim = in
		}
	}
	c.router.RemoveInstance(fn, victim.ID())
	if err := c.transport.Unregister(victim.ID()); err != nil {
		return err
	}
	victim.shutdown()
	c.instMu.Lock()
	for i, in := range c.instances {
		if in == victim {
			c.instances = append(c.instances[:i], c.instances[i+1:]...)
			break
		}
	}
	c.instMu.Unlock()
	return nil
}
