package core

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Direct Function Routing (§3.2.3): a chain-specific userspace routing
// table (conceptually resident in the chain's shared memory) keyed by
// {message topic, current function}, resolving to the next function(s) in
// the chain; the in-kernel sockmap then turns the chosen function's
// instance ID into a socket. Load balancing across instances picks the pod
// with the maximum residual service capacity RC_i = MC_i − r_i.

// RouteKey addresses one routing-table entry.
type RouteKey struct {
	Topic string // "" matches any topic (pure sequential chains)
	From  string // function name of the current hop; "" = gateway ingress
}

// Router is the DFR routing table plus the instance registry used for
// residual-capacity load balancing. In a multi-node deployment each entry
// additionally resolves to a placement node: routing stays {topic, from} →
// function, and the placement map turns the function into {node, instance}
// — local instances for functions placed here, a transport stub otherwise.
type Router struct {
	mu        sync.RWMutex
	routes    map[RouteKey][]string
	instances map[string][]*Instance
	placement map[string]string // function → node name ("" = local/unplaced)
}

// Router errors.
var (
	ErrNoRouteMatch = errors.New("core: no DFR route for key")
	ErrNoInstance   = errors.New("core: function has no running instances")
)

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{
		routes:    make(map[RouteKey][]string),
		instances: make(map[string][]*Instance),
		placement: make(map[string]string),
	}
}

// SetPlacement records which node runs fn. An empty node clears the entry
// (fn is local / unplaced).
func (r *Router) SetPlacement(fn, node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if node == "" {
		delete(r.placement, fn)
		return
	}
	r.placement[fn] = node
}

// NodeOf returns the node fn is placed on ("" when local or unplaced).
func (r *Router) NodeOf(fn string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.placement[fn]
}

// Placements returns a copy of the full placement map.
func (r *Router) Placements() map[string]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]string, len(r.placement))
	for fn, node := range r.placement {
		out[fn] = node
	}
	return out
}

// SetRoute installs (or replaces) the next hops for key. The SPRIGHT
// controller configures these from the user's chain definition; dynamic
// updates at runtime are permitted.
func (r *Router) SetRoute(key RouteKey, next ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(next) == 0 {
		delete(r.routes, key)
		return
	}
	r.routes[key] = append([]string(nil), next...)
}

// Next resolves the next-hop function names for a message with the given
// topic leaving function `from`. Exact topic match wins; a ""-topic route
// is the fallback. ok=false means the flow terminates (reply to caller).
func (r *Router) Next(topic, from string) (next []string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n, hit := r.routes[RouteKey{Topic: topic, From: from}]; hit {
		return n, true
	}
	if topic != "" {
		if n, hit := r.routes[RouteKey{Topic: "", From: from}]; hit {
			return n, true
		}
	}
	return nil, false
}

// AddInstance registers a running instance of a function.
func (r *Router) AddInstance(fn string, inst *Instance) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.instances[fn] = append(r.instances[fn], inst)
}

// RemoveInstance deregisters an instance (scale-down). Removal is
// copy-on-write: PickInstance iterates a lock-free snapshot of the list,
// so the shared backing array must never be shifted in place.
func (r *Router) RemoveInstance(fn string, id uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	list := r.instances[fn]
	for i, in := range list {
		if in.ID() == id {
			replaced := make([]*Instance, 0, len(list)-1)
			replaced = append(replaced, list[:i]...)
			replaced = append(replaced, list[i+1:]...)
			r.instances[fn] = replaced
			return
		}
	}
}

// Instances returns the live instances of fn.
func (r *Router) Instances(fn string) []*Instance {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*Instance(nil), r.instances[fn]...)
}

// PickInstance selects the routable instance of fn with the maximum
// residual service capacity (footnote 4: RC_i,t = MC_i − r_i,t). Routing
// is health-aware: instances whose circuit breaker is open are skipped;
// if every instance is circuit-broken the caller gets ErrAllUnhealthy — a
// terminal error — rather than a descriptor routed into a dead pod.
func (r *Router) PickInstance(fn string) (*Instance, error) {
	r.mu.RLock()
	list := r.instances[fn]
	r.mu.RUnlock()
	if len(list) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoInstance, fn)
	}
	now := time.Now().UnixNano()
	var best *Instance
	bestRC := 0
	for _, in := range list {
		if !in.routable(now) {
			continue
		}
		if rc := in.ResidualCapacity(); best == nil || rc > bestRC {
			best, bestRC = in, rc
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: %q", ErrAllUnhealthy, fn)
	}
	return best, nil
}
