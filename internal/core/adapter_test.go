package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/proto"
)

func TestHTTPAdapterThroughGateway(t *testing.T) {
	_, g := testChain(t, ModeEvent, echoSpec())
	raw := proto.MarshalHTTPRequest(&proto.Message{Method: "POST", Path: "/echo", Body: []byte("abc")})
	out, err := g.IngestRaw(context.Background(), "http", raw)
	if err != nil {
		t.Fatal(err)
	}
	status, body, err := proto.UnmarshalHTTPResponse(out)
	if err != nil || status != 200 || string(body) != "ABC" {
		t.Fatalf("got %d %q %v", status, body, err)
	}
}

func TestMQTTAdapterConnectHandledByGateway(t *testing.T) {
	_, g := testChain(t, ModeEvent, echoSpec())
	g.Adapters().Attach(MQTTAdapter{})
	// CONNECT must be answered by the gateway without invoking the chain
	reply, err := g.IngestRaw(context.Background(), "mqtt", proto.MarshalMQTTConnect("c1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(reply) == 0 || reply[0] != proto.MQTTConnAck {
		t.Fatalf("want CONNACK, got % x", reply)
	}
	if g.Stats().Admitted != 0 {
		t.Fatal("CONNECT must not invoke the chain")
	}
}

func TestMQTTAdapterPublishIsFireAndForget(t *testing.T) {
	done := make(chan string, 1)
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name: "sensor",
			Handler: func(ctx *Ctx) error {
				select {
				case done <- ctx.Topic:
				default:
				}
				ctx.Drop()
				return nil
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"sensor"}}},
	}
	_, g := testChain(t, ModeEvent, spec)
	g.Adapters().Attach(MQTTAdapter{})
	raw := proto.MarshalMQTTPublish("motion/hall", []byte("ON"))
	ack, err := g.IngestRaw(context.Background(), "mqtt", raw)
	if err != nil {
		t.Fatal(err)
	}
	if ack != nil {
		t.Fatalf("QoS-0 PUBLISH must have empty ack, got % x", ack)
	}
	select {
	case topic := <-done:
		if topic != "motion/hall" {
			t.Fatalf("topic %q", topic)
		}
	case <-time.After(time.Second):
		t.Fatal("publish never reached the function")
	}
}

func TestCoAPAdapterRoundTrip(t *testing.T) {
	_, g := testChain(t, ModeEvent, echoSpec())
	g.Adapters().Attach(CoAPAdapter{})
	raw := proto.MarshalCoAP(proto.CoAPPost, 7, "park/1", []byte("img"))
	out, err := g.IngestRaw(context.Background(), "coap", raw)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, payload, err := proto.UnmarshalCoAP(out)
	if err != nil || !bytes.Equal(payload, []byte("IMG")) {
		t.Fatalf("got %q, %v", payload, err)
	}
}

func TestCloudEventAdapter(t *testing.T) {
	_, g := testChain(t, ModeEvent, echoSpec())
	g.Adapters().Attach(CloudEventAdapter{})
	// Note: echoSpec routes only From "", so the event type must be
	// routable — it is, because "" route matches any topic.
	raw, _ := proto.MarshalCloudEvent(&proto.CloudEvent{
		SpecVersion: "1.0", ID: "1", Source: "test", Type: "x", Data: []byte("ev"),
	})
	out, err := g.IngestRaw(context.Background(), "cloudevents", raw)
	if err != nil {
		t.Fatal(err)
	}
	e, err := proto.UnmarshalCloudEvent(out)
	if err != nil || !bytes.Equal(e.Data, []byte("EV")) {
		t.Fatalf("got %+v, %v", e, err)
	}
}

func TestAdapterRegistryDynamics(t *testing.T) {
	r := NewAdapterRegistry()
	if _, err := r.Get("http"); err != nil {
		t.Fatal("http adapter must be preloaded")
	}
	if _, err := r.Get("mqtt"); !errors.Is(err, ErrNoAdapter) {
		t.Fatalf("want ErrNoAdapter, got %v", err)
	}
	r.Attach(MQTTAdapter{})
	if _, err := r.Get("mqtt"); err != nil {
		t.Fatal("attach failed")
	}
	if len(r.Protocols()) != 2 {
		t.Fatalf("protocols %v", r.Protocols())
	}
	r.Detach("mqtt")
	if _, err := r.Get("mqtt"); err == nil {
		t.Fatal("detach failed")
	}
}

func TestIngestRawUnknownProtocol(t *testing.T) {
	_, g := testChain(t, ModeEvent, echoSpec())
	if _, err := g.IngestRaw(context.Background(), "smtp", nil); !errors.Is(err, ErrNoAdapter) {
		t.Fatalf("want ErrNoAdapter, got %v", err)
	}
}

func TestIngestRawMalformed(t *testing.T) {
	_, g := testChain(t, ModeEvent, echoSpec())
	if _, err := g.IngestRaw(context.Background(), "http", []byte("junk")); !errors.Is(err, proto.ErrMalformed) {
		t.Fatalf("want ErrMalformed, got %v", err)
	}
}
