package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGatewayConcurrentStress drives the sharded completion path from many
// goroutines mixing every invocation flavour — Invoke, InvokeInto,
// InvokeAsync and deliberately-cancelled requests — and asserts three
// invariants the sharding refactor must preserve:
//
//  1. no lost completions: every synchronous request either returns its
//     own response or a context error, never hangs;
//  2. no waiter-pool corruption: a recycled waiter channel must never
//     surface another request's response, so each response is checked
//     against its unique request payload;
//  3. exact leak accounting: after the storm, the pool drains to zero
//     in-use buffers (the testChain cleanup runs LeakCheck).
//
// Run under -race this also certifies the pending shards, striped
// histogram and parallel completion consumers race-clean.
func TestGatewayConcurrentStress(t *testing.T) {
	for _, mode := range []Mode{ModeEvent, ModePolling} {
		t.Run(mode.String(), func(t *testing.T) {
			spec := echoSpec()
			spec.Functions[0].Concurrency = 8
			_, g := testChain(t, mode, spec)

			const (
				goroutines = 8
				perG       = 200
			)
			var (
				wg        sync.WaitGroup
				responses atomic.Uint64
				cancels   atomic.Uint64
				asyncs    atomic.Uint64
			)
			for w := 0; w < goroutines; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					dst := make([]byte, 256)
					for i := 0; i < perG; i++ {
						// Unique payload per request: uppercasing it yields a
						// unique expected response, so any cross-request
						// waiter mixup is detected, not just counted.
						payload := []byte(fmt.Sprintf("req-%d-%d", w, i))
						want := bytes.ToUpper(payload)
						switch i % 4 {
						case 0: // allocating synchronous invoke
							out, err := g.Invoke(context.Background(), "", payload)
							if err != nil {
								t.Errorf("Invoke: %v", err)
								return
							}
							if !bytes.Equal(out, want) {
								t.Errorf("Invoke: got %q want %q", out, want)
								return
							}
							responses.Add(1)
						case 1: // zero-alloc synchronous invoke
							n, err := g.InvokeInto(context.Background(), "", payload, dst)
							if err != nil {
								t.Errorf("InvokeInto: %v", err)
								return
							}
							if !bytes.Equal(dst[:n], want) {
								t.Errorf("InvokeInto: got %q want %q", dst[:n], want)
								return
							}
							responses.Add(1)
						case 2: // fire-and-forget
							if err := g.InvokeAsync("", payload); err != nil {
								t.Errorf("InvokeAsync: %v", err)
								return
							}
							asyncs.Add(1)
						case 3: // short-deadline request that may cancel mid-chain
							ctx, cancel := context.WithTimeout(context.Background(), 50*time.Microsecond)
							out, err := g.Invoke(ctx, "", payload)
							cancel()
							switch {
							case err == nil:
								if !bytes.Equal(out, want) {
									t.Errorf("deadline Invoke: got %q want %q", out, want)
									return
								}
								responses.Add(1)
							case errors.Is(err, context.DeadlineExceeded):
								cancels.Add(1)
							default:
								t.Errorf("deadline Invoke: unexpected error %v", err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()

			if t.Failed() {
				return
			}
			if responses.Load() == 0 {
				t.Fatal("no synchronous request completed")
			}
			if g.pending.size() != 0 {
				t.Fatalf("pending table not empty after storm: %d entries", g.pending.size())
			}
			st := g.Stats()
			t.Logf("responses=%d cancels=%d asyncs=%d admitted=%d completed=%d reclaimed=%d",
				responses.Load(), cancels.Load(), asyncs.Load(),
				st.Admitted, st.Completed, st.Reclaimed)
			// The testChain cleanup asserts InUse drains to 0 and LeakCheck
			// passes — the exact accounting half of the invariant.
		})
	}
}
