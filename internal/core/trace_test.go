package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/shm"
)

// spansByStage indexes a trace's spans per stage name.
func spansByStage(t *Trace) map[string][]Span {
	out := make(map[string][]Span)
	for _, s := range t.Spans {
		out[s.Stage] = append(out[s.Stage], s)
	}
	return out
}

// assertParented checks that every non-root span's parent resolves to
// another span of the trace.
func assertParented(t *testing.T, tr *Trace) {
	t.Helper()
	ids := make(map[uint64]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		if s.ID == 0 {
			t.Fatalf("span with zero ID: %+v", s)
		}
		ids[s.ID] = true
	}
	for i, s := range tr.Spans {
		if i == 0 {
			continue // the root's parent is external (0 or upstream)
		}
		if s.Parent == 0 || !ids[s.Parent] {
			t.Fatalf("span %s/%s parent %016x not in trace", s.Stage, s.Function, s.Parent)
		}
	}
}

func TestTracingRecordsDFRPath(t *testing.T) {
	c, g := testChain(t, ModeEvent, seqSpec())
	tr := c.EnableTracing(16)
	if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
		t.Fatal(err)
	}
	done := tr.Completed()
	if len(done) != 1 {
		t.Fatalf("traces %d want 1", len(done))
	}
	if p := done[0].Path(); p != "f1->f2->f3" {
		t.Fatalf("path %q", p)
	}
	if done[0].Elapsed() <= 0 {
		t.Fatal("elapsed must be positive")
	}
	if done[0].ID.IsZero() {
		t.Fatal("trace must carry a non-zero trace ID")
	}
	for _, s := range spansByStage(done[0])[StageHandler] {
		if s.Instance == 0 || s.Function == "" {
			t.Fatalf("incomplete handler span %+v", s)
		}
	}
	assertParented(t, done[0])
}

// TestTracingStageCoverage: a sampled request decomposes into the full
// stage set of the one-copy pipeline in both transport modes.
func TestTracingStageCoverage(t *testing.T) {
	for _, mode := range []Mode{ModeEvent, ModePolling} {
		t.Run(mode.String(), func(t *testing.T) {
			c, g := testChain(t, mode, seqSpec())
			tr := c.EnableTracing(16)
			if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
				t.Fatal(err)
			}
			waitIdle(t, tr)
			done := tr.Completed()
			if len(done) != 1 {
				t.Fatalf("traces %d want 1", len(done))
			}
			st := spansByStage(done[0])
			if len(st[StageRequest]) != 1 {
				t.Fatalf("want exactly one root request span, got %d", len(st[StageRequest]))
			}
			if len(st[StageShmAlloc]) != 1 {
				t.Fatalf("want one shm.alloc span, got %d", len(st[StageShmAlloc]))
			}
			// 3 handler hops, each preceded by a send (3 forwards + 1 reply).
			hopStage := StageRedirect
			if mode == ModePolling {
				hopStage = StageEnqueue
			}
			if len(st[StageHandler]) != 3 {
				t.Fatalf("handler spans %d want 3", len(st[StageHandler]))
			}
			if len(st[hopStage]) != 4 {
				t.Fatalf("%s spans %d want 4 (3 forwards + reply)", hopStage, len(st[hopStage]))
			}
			if len(st[StageQueueWait]) == 0 {
				t.Fatal("want queue.wait spans")
			}
			if mode == ModePolling && len(st[StageRingWait]) == 0 {
				t.Fatal("polling mode must record ring.wait spans")
			}
			if len(st[StageDrain]) != 1 {
				t.Fatalf("want one gateway.drain span, got %d", len(st[StageDrain]))
			}
			assertParented(t, done[0])
			if tr.InFlight() != 0 {
				t.Fatalf("in-flight after completion: %d", tr.InFlight())
			}
		})
	}
}

func TestTracingMetricsAggregation(t *testing.T) {
	c, g := testChain(t, ModeEvent, seqSpec())
	tr := c.EnableTracing(16)
	for i := 0; i < 3; i++ {
		if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	m := tr.Metrics()
	if m.Requests != 3 {
		t.Fatalf("requests %d", m.Requests)
	}
	if m.MeanExecution <= 0 {
		t.Fatal("mean execution must be positive")
	}
	if m.Paths["f1->f2->f3"] != 3 {
		t.Fatalf("paths %v", m.Paths)
	}
	if h, ok := tr.StageDurations()[StageHandler]; !ok || h.Count() == 0 {
		t.Fatal("stage histogram for handler must have observations")
	}
}

func TestTracingDisable(t *testing.T) {
	c, g := testChain(t, ModeEvent, echoSpec())
	tr := c.EnableTracing(4)
	g.Invoke(context.Background(), "", []byte("a"))
	c.DisableTracing()
	g.Invoke(context.Background(), "", []byte("b"))
	if got := len(tr.Completed()); got != 1 {
		t.Fatalf("traces after disable: %d want 1", got)
	}
}

func TestTracingRetentionLimit(t *testing.T) {
	c, g := testChain(t, ModeEvent, echoSpec())
	tr := c.EnableTracing(2)
	for i := 0; i < 5; i++ {
		g.Invoke(context.Background(), "", []byte("x"))
	}
	if got := len(tr.Completed()); got != 2 {
		t.Fatalf("retained %d traces, want limit 2", got)
	}
}

func TestTracerHopDurationCapturesServiceTime(t *testing.T) {
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name:        "slow",
			ServiceTime: 20 * time.Millisecond,
			Handler:     func(ctx *Ctx) error { return nil },
		}},
		Routes: []RouteSpec{{From: "", To: []string{"slow"}}},
	}
	c, g := testChain(t, ModeEvent, spec)
	tr := c.EnableTracing(4)
	if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
		t.Fatal(err)
	}
	done := tr.Completed()
	if len(done) != 1 {
		t.Fatalf("trace incomplete: %+v", done)
	}
	hops := spansByStage(done[0])[StageHandler]
	if len(hops) != 1 {
		t.Fatalf("handler spans %d want 1", len(hops))
	}
	if d := hops[0].Duration(); d < 15*time.Millisecond {
		t.Fatalf("handler span %v must include the 20ms service time", d)
	}
}

func TestTracerDirectAPI(t *testing.T) {
	tr := NewTracer(0) // default limit
	start := time.Now()
	tc := tr.BeginRequest(1, shm.TraceContext{}, start)
	if !tc.Sampled() {
		t.Fatal("full tracer must sample every request")
	}
	tr.RecordSpan(1, Span{Parent: tc.Span, Stage: StageHandler, Function: "a",
		Instance: 1, Start: start, End: start.Add(time.Millisecond)})
	if id := tr.RecordSpan(99, Span{Stage: StageHandler, Function: "ghost"}); id != 0 {
		t.Fatal("unknown caller must be a no-op")
	}
	if tr.FinishRequest(1, true, nil, start, 2*time.Millisecond) == nil {
		t.Fatal("finish of a sampled request must return the trace")
	}
	if tr.FinishRequest(1, true, nil, start, 2*time.Millisecond) != nil {
		t.Fatal("double finish must return nil")
	}
	done := tr.Completed()
	if len(done) != 1 || done[0].String() == "" || done[0].Path() != "a" {
		t.Fatalf("rendering wrong: %v", done)
	}
	if tr.InFlight() != 0 {
		t.Fatalf("in-flight %d want 0", tr.InFlight())
	}
}

// TestTracerCallerSlotReuse is the regression test for the begin-overwrite
// bug: re-beginning an abandoned caller slot must not double-increment the
// in-flight count, which would permanently force the mutex slow path.
func TestTracerCallerSlotReuse(t *testing.T) {
	tr := NewTracer(8)
	start := time.Now()
	// First request on caller 7 is abandoned (no finish) and its slot
	// reused by a later request with the same caller ID.
	tr.BeginRequest(7, shm.TraceContext{}, start)
	tr.BeginRequest(7, shm.TraceContext{}, start)
	if got := tr.InFlight(); got != 1 {
		t.Fatalf("in-flight after slot reuse: %d want 1", got)
	}
	tr.FinishRequest(7, true, nil, start, time.Millisecond)
	if got := tr.InFlight(); got != 0 {
		t.Fatalf("in-flight must return to 0, got %d", got)
	}
}

// TestTracerAdoptsInboundContext: an inbound sampled context keeps its
// trace ID and parents the root span onto the upstream span.
func TestTracerAdoptsInboundContext(t *testing.T) {
	tr := NewSampledTracer(1<<30, 8) // head sampling effectively off
	start := time.Now()
	inbound := shm.TraceContext{TraceHi: 0xaaaa, TraceLo: 0xbbbb, Span: 0xcccc, Flags: shm.TraceSampled}
	tc := tr.BeginRequest(3, inbound, start)
	if !tc.Sampled() {
		t.Fatal("inbound sampled context must be adopted")
	}
	if tc.TraceHi != 0xaaaa || tc.TraceLo != 0xbbbb {
		t.Fatalf("trace ID not adopted: %+v", tc)
	}
	traced := tr.FinishRequest(3, true, nil, start, time.Millisecond)
	if traced == nil || traced.ID != (TraceID{Hi: 0xaaaa, Lo: 0xbbbb}) {
		t.Fatalf("adopted trace wrong: %+v", traced)
	}
	if traced.Spans[0].Parent != 0xcccc {
		t.Fatalf("root span parent %016x want 000000000000cccc", traced.Spans[0].Parent)
	}
}

// TestTailSamplingRetainsErrors: an unsampled request that fails is
// retained by the tail sampler with a skeleton trace.
func TestTailSamplingRetainsErrors(t *testing.T) {
	tr := NewSampledTracer(1<<30, 8)
	start := time.Now()
	tc := tr.BeginRequest(1, shm.TraceContext{}, start)
	if tc.Sampled() {
		t.Fatal("request must not be head-sampled at period 1<<30")
	}
	boom := errors.New("boom")
	got := tr.FinishRequest(1, false, boom, start, time.Millisecond)
	if got == nil || !got.Tail || got.Err != "boom" {
		t.Fatalf("errored request must be tail-retained: %+v", got)
	}
	tail := tr.TailRetained()
	if len(tail) != 1 || tail[0].ID.IsZero() {
		t.Fatalf("tail ring: %+v", tail)
	}
	if tr.TotalTailRetained() != 1 {
		t.Fatalf("tail total %d want 1", tr.TotalTailRetained())
	}
}

// TestTailSamplingRetainsSlowRequests: over-threshold latency retains the
// trace; under-threshold does not.
func TestTailSamplingRetainsSlowRequests(t *testing.T) {
	tr := NewSampledTracer(1<<30, 8)
	tr.SetTailSampling(10*time.Millisecond, 4)
	start := time.Now()
	tr.BeginRequest(1, shm.TraceContext{}, start)
	if tr.FinishRequest(1, false, nil, start, time.Millisecond) != nil {
		t.Fatal("fast success must not be retained")
	}
	tr.BeginRequest(2, shm.TraceContext{}, start)
	slow := tr.FinishRequest(2, false, nil, start, 50*time.Millisecond)
	if slow == nil || !slow.Tail {
		t.Fatalf("slow request must be tail-retained: %+v", slow)
	}
	// A sampled slow request is marked Tail and appears in both rings,
	// deduplicated by Retained.
	tc := tr.BeginRequest(3, shm.TraceContext{TraceHi: 1, TraceLo: 2, Span: 3, Flags: shm.TraceSampled}, start)
	tr.FinishRequest(3, tc.Sampled(), nil, start, 50*time.Millisecond)
	all := tr.Retained(0)
	if len(all) != 2 {
		t.Fatalf("retained %d want 2 (dedup across rings)", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatal("Retained must be ordered by Seq")
		}
	}
}

// TestTailSamplingBounded: the tail ring never exceeds its limit.
func TestTailSamplingBounded(t *testing.T) {
	tr := NewSampledTracer(1<<30, 8)
	tr.SetTailSampling(-1, 2) // errors only, tiny ring
	start := time.Now()
	for caller := uint32(1); caller <= 6; caller++ {
		tr.BeginRequest(caller, shm.TraceContext{}, start)
		tr.FinishRequest(caller, false, errors.New("x"), start, time.Microsecond)
	}
	if got := len(tr.TailRetained()); got != 2 {
		t.Fatalf("tail ring %d want limit 2", got)
	}
	if tr.TotalTailRetained() != 6 {
		t.Fatalf("tail total %d want 6", tr.TotalTailRetained())
	}
	// Latency retention disabled: a slow success is not retained.
	tr.BeginRequest(9, shm.TraceContext{}, start)
	if tr.FinishRequest(9, false, nil, start, time.Hour) != nil {
		t.Fatal("negative threshold must disable latency retention")
	}
}

// TestTracerExemplars: the slowest retained traces surface as exemplars.
func TestTracerExemplars(t *testing.T) {
	tr := NewTracer(8)
	start := time.Now()
	for caller := uint32(1); caller <= 3; caller++ {
		tr.BeginRequest(caller, shm.TraceContext{}, start)
		tr.FinishRequest(caller, true, nil, start, time.Duration(caller)*time.Millisecond)
	}
	exs := tr.Exemplars(2)
	if len(exs) != 2 {
		t.Fatalf("exemplars %d want 2", len(exs))
	}
	if exs[0].Seconds < exs[1].Seconds {
		t.Fatal("exemplars must be slowest-first")
	}
	if exs[0].TraceID == "" || len(exs[0].TraceID) != 32 {
		t.Fatalf("exemplar trace ID %q", exs[0].TraceID)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tc := shm.TraceContext{TraceHi: 0x0102030405060708, TraceLo: 0x090a0b0c0d0e0f10,
		Span: 0x1112131415161718, Flags: shm.TraceSampled}
	s := tc.Traceparent()
	if len(s) != 55 {
		t.Fatalf("traceparent %q len %d", s, len(s))
	}
	got, ok := shm.ParseTraceparent(s)
	if !ok || got != tc {
		t.Fatalf("round trip: %+v ok=%v", got, ok)
	}
	for _, bad := range []string{
		"", "00-zz", s[:54], "01" + s[2:], // short / wrong version
		"00-00000000000000000000000000000000-1112131415161718-01", // zero trace ID
		"00-0102030405060708090a0b0c0d0e0f10-0000000000000000-01", // zero span
	} {
		if _, ok := shm.ParseTraceparent(bad); ok {
			t.Fatalf("accepted malformed traceparent %q", bad)
		}
	}
}

// waitIdle waits for in-flight traces to drain (asynchronous stage spans —
// the drain span races the waiter's return).
func waitIdle(t *testing.T, tr *Tracer) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for tr.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("tracer still has %d in-flight traces", tr.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
}
