package core

import (
	"context"
	"testing"
	"time"
)

func TestTracingRecordsDFRPath(t *testing.T) {
	c, g := testChain(t, ModeEvent, seqSpec())
	tr := c.EnableTracing(16)
	if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
		t.Fatal(err)
	}
	done := tr.Completed()
	if len(done) != 1 {
		t.Fatalf("traces %d want 1", len(done))
	}
	if p := done[0].Path(); p != "f1->f2->f3" {
		t.Fatalf("path %q", p)
	}
	if done[0].Elapsed() <= 0 {
		t.Fatal("elapsed must be positive")
	}
	for _, h := range done[0].Hops {
		if h.Instance == 0 || h.Function == "" {
			t.Fatalf("incomplete hop record %+v", h)
		}
	}
}

func TestTracingMetricsAggregation(t *testing.T) {
	c, g := testChain(t, ModeEvent, seqSpec())
	tr := c.EnableTracing(16)
	for i := 0; i < 3; i++ {
		if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	m := tr.Metrics()
	if m.Requests != 3 {
		t.Fatalf("requests %d", m.Requests)
	}
	if m.MeanExecution <= 0 {
		t.Fatal("mean execution must be positive")
	}
	if m.Paths["f1->f2->f3"] != 3 {
		t.Fatalf("paths %v", m.Paths)
	}
}

func TestTracingDisable(t *testing.T) {
	c, g := testChain(t, ModeEvent, echoSpec())
	tr := c.EnableTracing(4)
	g.Invoke(context.Background(), "", []byte("a"))
	c.DisableTracing()
	g.Invoke(context.Background(), "", []byte("b"))
	if got := len(tr.Completed()); got != 1 {
		t.Fatalf("traces after disable: %d want 1", got)
	}
}

func TestTracingRetentionLimit(t *testing.T) {
	c, g := testChain(t, ModeEvent, echoSpec())
	tr := c.EnableTracing(2)
	for i := 0; i < 5; i++ {
		g.Invoke(context.Background(), "", []byte("x"))
	}
	if got := len(tr.Completed()); got != 2 {
		t.Fatalf("retained %d traces, want limit 2", got)
	}
}

func TestTracerHopDurationCapturesServiceTime(t *testing.T) {
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name:        "slow",
			ServiceTime: 20 * time.Millisecond,
			Handler:     func(ctx *Ctx) error { return nil },
		}},
		Routes: []RouteSpec{{From: "", To: []string{"slow"}}},
	}
	c, g := testChain(t, ModeEvent, spec)
	tr := c.EnableTracing(4)
	if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
		t.Fatal(err)
	}
	done := tr.Completed()
	if len(done) != 1 || len(done[0].Hops) != 1 {
		t.Fatalf("trace incomplete: %+v", done)
	}
	if d := done[0].Hops[0].Duration; d < 15*time.Millisecond {
		t.Fatalf("hop duration %v must include the 20ms service time", d)
	}
}

func TestTracerStringRendering(t *testing.T) {
	tr := NewTracer(0) // default limit
	tr.begin(1)
	tr.hop(1, "a", 1, time.Millisecond)
	tr.hop(99, "ghost", 9, 0) // unknown caller is a no-op
	tr.finish(1)
	if tr.finish(1) != nil {
		t.Fatal("double finish must return nil")
	}
	done := tr.Completed()
	if len(done) != 1 || done[0].String() == "" || done[0].Path() != "a" {
		t.Fatalf("rendering wrong: %v", done)
	}
}
