package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/spright-go/spright/internal/ebpf"
	"github.com/spright-go/spright/internal/shm"
)

// TestSproxyMetricIncrementsNotLost is the regression test for replacing
// the interpreter's global atomic mutex with per-word atomics: two chains
// on one shared kernel hammer their SPROXY L7 counters from G goroutines
// each, and every increment must land. Lost updates here would mean the
// VM's OpAtomicAdd stopped being atomic on shared array-map storage.
func TestSproxyMetricIncrementsNotLost(t *testing.T) {
	const (
		goroutines = 8
		perWorker  = 50
	)
	kernel := ebpf.NewKernel()
	mgr := shm.NewManager()

	var chains []*Chain
	var gws []*Gateway
	for i := 0; i < 2; i++ {
		spec := echoSpec()
		spec.Mode = ModeEvent
		spec.Name = fmt.Sprintf("metric-race-%d", i)
		c, err := NewChain(kernel, mgr, spec)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGateway(c)
		if err != nil {
			c.Close()
			t.Fatal(err)
		}
		chains = append(chains, c)
		gws = append(gws, g)
	}
	defer func() {
		for i := range chains {
			gws[i].Close()
			chains[i].Close()
			if err := chains[i].Pool().LeakCheck(); err != nil {
				t.Error(err)
			}
		}
	}()

	var wg sync.WaitGroup
	for i := range chains {
		g := gws[i]
		for w := 0; w < goroutines; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for n := 0; n < perWorker; n++ {
					if _, err := g.Invoke(context.Background(), "", []byte("ping")); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
	}
	wg.Wait()

	const want = goroutines * perWorker
	for i, c := range chains {
		sp := c.SProxy()
		inst := c.Router().Instances("echo")[0]
		if got := sp.RequestCount(inst.ID()); got != want {
			t.Errorf("chain %d: echo L7 count %d, want %d (lost increments)", i, got, want)
		}
		if got := sp.RequestCount(GatewayID); got != want {
			t.Errorf("chain %d: gateway reply count %d, want %d (lost increments)", i, got, want)
		}
	}
}
