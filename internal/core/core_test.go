package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/ebpf"
	"github.com/spright-go/spright/internal/shm"
)

func testChain(t *testing.T, mode Mode, spec ChainSpec) (*Chain, *Gateway) {
	t.Helper()
	spec.Mode = mode
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("chain-%s-%d", t.Name(), time.Now().UnixNano())
	}
	kernel := ebpf.NewKernel()
	mgr := shm.NewManager()
	c, err := NewChain(kernel, mgr, spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGateway(c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		g.Close()
		c.Close()
		// Zero-leak teardown invariant: every buffer a test put in flight
		// must be back in the pool once the chain is down. In-flight work
		// may still be releasing, so poll briefly before asserting.
		deadline := time.Now().Add(2 * time.Second)
		for c.Pool().InUse() != 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if err := c.Pool().LeakCheck(); err != nil {
			t.Error(err)
		}
	})
	return c, g
}

// echoSpec is a single-function chain that upper-cases the payload in
// place (zero-copy mutation).
func echoSpec() ChainSpec {
	return ChainSpec{
		Functions: []FunctionSpec{{
			Name: "echo",
			Handler: func(ctx *Ctx) error {
				b := ctx.Payload()
				for i := range b {
					if b[i] >= 'a' && b[i] <= 'z' {
						b[i] -= 32
					}
				}
				return nil
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"echo"}}},
	}
}

func TestChainSingleFunctionBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeEvent, ModePolling} {
		t.Run(mode.String(), func(t *testing.T) {
			_, g := testChain(t, mode, echoSpec())
			out, err := g.Invoke(context.Background(), "", []byte("hello"))
			if err != nil {
				t.Fatal(err)
			}
			if string(out) != "HELLO" {
				t.Fatalf("got %q want HELLO", out)
			}
		})
	}
}

// seqSpec is a 3-function sequential chain; each appends its tag so the
// traversal order is observable.
func seqSpec() ChainSpec {
	tagger := func(tag string) Handler {
		return func(ctx *Ctx) error {
			return ctx.SetPayload(append(ctx.Payload(), []byte(tag)...))
		}
	}
	return ChainSpec{
		Functions: []FunctionSpec{
			{Name: "f1", Handler: tagger(">f1")},
			{Name: "f2", Handler: tagger(">f2")},
			{Name: "f3", Handler: tagger(">f3")},
		},
		Routes: []RouteSpec{
			{From: "", To: []string{"f1"}},
			{From: "f1", To: []string{"f2"}},
			{From: "f2", To: []string{"f3"}},
		},
	}
}

func TestChainSequentialDFR(t *testing.T) {
	for _, mode := range []Mode{ModeEvent, ModePolling} {
		t.Run(mode.String(), func(t *testing.T) {
			_, g := testChain(t, mode, seqSpec())
			out, err := g.Invoke(context.Background(), "", []byte("in"))
			if err != nil {
				t.Fatal(err)
			}
			if string(out) != "in>f1>f2>f3" {
				t.Fatalf("got %q", out)
			}
		})
	}
}

func TestChainDFRBypassesGateway(t *testing.T) {
	// After the run, the gateway must have seen exactly one descriptor
	// back (the final reply), not one per hop — the DFR property (② in
	// Fig. 4).
	_, g := testChain(t, ModeEvent, seqSpec())
	if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
		t.Fatal(err)
	}
	delivered, _ := g.sock.Stats()
	if delivered != 1 {
		t.Fatalf("gateway saw %d descriptors, want 1 (DFR must bypass it)", delivered)
	}
}

func TestChainZeroCopyNoBufferGrowth(t *testing.T) {
	c, g := testChain(t, ModeEvent, seqSpec())
	for i := 0; i < 10; i++ {
		if _, err := g.Invoke(context.Background(), "", []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Pool().Stats()
	if s.InUse != 0 {
		t.Fatalf("buffers leaked: %d in use", s.InUse)
	}
	if s.Allocs != 10 {
		t.Fatalf("allocs %d, want exactly 1 per request (zero-copy chain)", s.Allocs)
	}
}

func TestTopicRouting(t *testing.T) {
	onSpec := ChainSpec{
		Functions: []FunctionSpec{
			{Name: "classifier", Handler: func(ctx *Ctx) error {
				if string(ctx.Payload()) == "motion" {
					ctx.SetTopic("lights/on")
				} else {
					ctx.SetTopic("lights/off")
				}
				return nil
			}},
			{Name: "on", Handler: func(ctx *Ctx) error { return ctx.SetPayload([]byte("ON")) }},
			{Name: "off", Handler: func(ctx *Ctx) error { return ctx.SetPayload([]byte("OFF")) }},
		},
		Routes: []RouteSpec{
			{From: "", To: []string{"classifier"}},
			{Topic: "lights/on", From: "classifier", To: []string{"on"}},
			{Topic: "lights/off", From: "classifier", To: []string{"off"}},
		},
	}
	_, g := testChain(t, ModeEvent, onSpec)
	out, err := g.Invoke(context.Background(), "sensor", []byte("motion"))
	if err != nil || string(out) != "ON" {
		t.Fatalf("motion: got %q, %v", out, err)
	}
	out, err = g.Invoke(context.Background(), "sensor", []byte("still"))
	if err != nil || string(out) != "OFF" {
		t.Fatalf("still: got %q, %v", out, err)
	}
}

func TestFanOutWithRefCounts(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	mark := func(name string) Handler {
		return func(ctx *Ctx) error {
			mu.Lock()
			seen[name]++
			mu.Unlock()
			ctx.Drop() // terminal branches of the fan-out
			return nil
		}
	}
	spec := ChainSpec{
		Functions: []FunctionSpec{
			{Name: "splitter", Handler: nil}, // pure routing hop
			{Name: "a", Handler: mark("a")},
			{Name: "b", Handler: mark("b")},
			{Name: "c", Handler: mark("c")},
		},
		Routes: []RouteSpec{
			{From: "", To: []string{"splitter"}},
			{From: "splitter", To: []string{"a", "b", "c"}},
		},
	}
	c, g := testChain(t, ModeEvent, spec)
	if err := g.InvokeAsync("", []byte("ev")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		done := seen["a"] == 1 && seen["b"] == 1 && seen["c"] == 1
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fan-out incomplete: %v", seen)
		}
		time.Sleep(time.Millisecond)
	}
	// all references must drain
	deadline = time.Now().Add(time.Second)
	for c.Pool().Stats().InUse != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("fan-out leaked buffers: %+v", c.Pool().Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if n, errs := c.Errors(); n != 0 {
		t.Fatalf("chain errors: %v", errs)
	}
}

func TestSecurityDomainFilterBlocksUnroutedEdge(t *testing.T) {
	// f1 tries to call f3 directly even though only f1->f2 is routed;
	// SPROXY's filter must reject the descriptor.
	var sendErr error
	var once sync.Once
	spec := ChainSpec{
		Functions: []FunctionSpec{
			{Name: "f1", Handler: func(ctx *Ctx) error {
				ctx.ForwardTo("f3") // malicious: not in the routing table
				return nil
			}},
			{Name: "f2", Handler: nil},
			{Name: "f3", Handler: func(ctx *Ctx) error {
				once.Do(func() { sendErr = errors.New("f3 was reached") })
				return nil
			}},
		},
		Routes: []RouteSpec{
			{From: "", To: []string{"f1"}},
			{From: "f1", To: []string{"f2"}},
		},
	}
	c, g := testChain(t, ModeEvent, spec)
	_, err := g.Invoke(contextWithTimeout(t, 300*time.Millisecond), "", []byte("x"))
	if err == nil {
		t.Fatal("invoke should not complete: the forward was filtered")
	}
	cnt, errs := c.Errors()
	if cnt == 0 {
		t.Fatal("chain must record the filtered send")
	}
	foundFiltered := false
	for _, e := range errs {
		if errors.Is(e, ErrFiltered) {
			foundFiltered = true
		}
	}
	if !foundFiltered {
		t.Fatalf("want ErrFiltered in %v", errs)
	}
	if sendErr != nil {
		t.Fatal(sendErr)
	}
}

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func TestRuntimeFilterRevocation(t *testing.T) {
	c, g := testChain(t, ModeEvent, echoSpec())
	// revoke gateway -> echo instance authorization at runtime (§3.4)
	inst := c.Router().Instances("echo")[0]
	if err := c.SProxy().Revoke(GatewayID, inst.ID()); err != nil {
		t.Fatal(err)
	}
	_, err := g.Invoke(contextWithTimeout(t, 200*time.Millisecond), "", []byte("x"))
	if !errors.Is(err, ErrFiltered) {
		t.Fatalf("want ErrFiltered after revocation, got %v", err)
	}
	// re-allow restores service
	if err := c.SProxy().Allow(GatewayID, inst.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerErrorReleasesBuffer(t *testing.T) {
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name:    "bad",
			Handler: func(ctx *Ctx) error { return errTerminal },
		}},
		Routes: []RouteSpec{{From: "", To: []string{"bad"}}},
	}
	c, g := testChain(t, ModeEvent, spec)
	_, err := g.Invoke(contextWithTimeout(t, 200*time.Millisecond), "", []byte("x"))
	if err == nil {
		t.Fatal("handler error means no response; invoke must time out")
	}
	deadline := time.Now().Add(time.Second)
	for c.Pool().Stats().InUse != 0 {
		if time.Now().After(deadline) {
			t.Fatal("failed handler leaked its buffer")
		}
		time.Sleep(time.Millisecond)
	}
	if c.Router().Instances("bad")[0].Errors() != 1 {
		t.Fatal("error counter must increment")
	}
}

func TestBackpressureOnPoolExhaustion(t *testing.T) {
	block := make(chan struct{})
	spec := ChainSpec{
		PoolBuffers: 2,
		Functions: []FunctionSpec{{
			Name:        "slow",
			Concurrency: 4,
			Handler: func(ctx *Ctx) error {
				<-block
				return nil
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"slow"}}},
	}
	_, g := testChain(t, ModeEvent, spec)
	defer close(block)

	results := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := g.Invoke(contextWithTimeout(t, 2*time.Second), "", []byte("x"))
			results <- err
		}()
	}
	// one of the three must fail fast with backpressure (2-buffer pool)
	deadline := time.After(time.Second)
	for {
		select {
		case err := <-results:
			if errors.Is(err, ErrBackpressure) {
				return
			}
		case <-deadline:
			t.Fatal("no backpressure signal within deadline")
		}
	}
}

func TestLoadBalancingPicksResidualCapacity(t *testing.T) {
	r := NewRouter()
	mk := func(id uint32, conc int, inflight int64) *Instance {
		in := &Instance{id: id, fnName: "f", concurrency: conc}
		in.inflight.Store(inflight)
		return in
	}
	r.AddInstance("f", mk(1, 32, 30)) // residual 2
	r.AddInstance("f", mk(2, 32, 5))  // residual 27
	r.AddInstance("f", mk(3, 32, 10)) // residual 22
	in, err := r.PickInstance("f")
	if err != nil || in.ID() != 2 {
		t.Fatalf("picked %v, %v; want instance 2", in, err)
	}
	if _, err := r.PickInstance("ghost"); !errors.Is(err, ErrNoInstance) {
		t.Fatalf("want ErrNoInstance, got %v", err)
	}
}

func TestRouterTopicFallback(t *testing.T) {
	r := NewRouter()
	r.SetRoute(RouteKey{From: "a"}, "default")
	r.SetRoute(RouteKey{Topic: "hot", From: "a"}, "special")
	if n, ok := r.Next("hot", "a"); !ok || n[0] != "special" {
		t.Fatalf("exact topic match failed: %v %v", n, ok)
	}
	if n, ok := r.Next("cold", "a"); !ok || n[0] != "default" {
		t.Fatalf("fallback failed: %v %v", n, ok)
	}
	if _, ok := r.Next("x", "zzz"); ok {
		t.Fatal("unknown hop must terminate")
	}
	r.SetRoute(RouteKey{From: "a"}) // clearing
	if _, ok := r.Next("cold", "a"); ok {
		t.Fatal("cleared route must be gone")
	}
}

func TestRouterInstanceLifecycle(t *testing.T) {
	r := NewRouter()
	a := &Instance{id: 1, fnName: "f", concurrency: 1}
	b := &Instance{id: 2, fnName: "f", concurrency: 1}
	r.AddInstance("f", a)
	r.AddInstance("f", b)
	if len(r.Instances("f")) != 2 {
		t.Fatal("expected 2 instances")
	}
	r.RemoveInstance("f", 1)
	list := r.Instances("f")
	if len(list) != 1 || list[0].ID() != 2 {
		t.Fatalf("remove failed: %v", list)
	}
}

func TestMultiInstanceSpreadsLoad(t *testing.T) {
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name:        "w",
			Instances:   3,
			Concurrency: 1,
			Handler: func(ctx *Ctx) error {
				time.Sleep(5 * time.Millisecond)
				return nil
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"w"}}},
	}
	c, g := testChain(t, ModeEvent, spec)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := g.Invoke(contextWithTimeout(t, 5*time.Second), "", []byte("x")); err != nil {
				t.Error(err)
			}
		}()
		// stagger submissions: residual capacity is measured from running
		// handlers, so back-to-back dispatches can all observe three idle
		// instances and pile onto the first one
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	used := 0
	for _, in := range c.Router().Instances("w") {
		if in.Handled() > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("residual-capacity balancing used only %d of 3 instances", used)
	}
}

func TestSproxyMetricsCountInvocations(t *testing.T) {
	c, g := testChain(t, ModeEvent, seqSpec())
	for i := 0; i < 4; i++ {
		if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	sp := c.SProxy()
	for _, fn := range []string{"f1", "f2", "f3"} {
		inst := c.Router().Instances(fn)[0]
		if got := sp.RequestCount(inst.ID()); got != 4 {
			t.Errorf("%s: L7 count %d want 4", fn, got)
		}
	}
	// the gateway received 4 replies
	if got := sp.RequestCount(GatewayID); got != 4 {
		t.Errorf("gateway reply count %d want 4", got)
	}
}

func TestEProxyL3Metrics(t *testing.T) {
	_, g := testChain(t, ModeEvent, echoSpec())
	payload := make([]byte, 150)
	for i := 0; i < 3; i++ {
		if _, err := g.Invoke(context.Background(), "", payload); err != nil {
			t.Fatal(err)
		}
	}
	pkts, bytes := g.EProxy().L3Stats()
	if pkts != 3 || bytes != 450 {
		t.Fatalf("L3 stats pkts=%d bytes=%d want 3, 450", pkts, bytes)
	}
	if rate := g.EProxy().ScrapeRate(); rate < 0 {
		t.Fatal("scrape rate negative")
	}
}

func TestGatewayStats(t *testing.T) {
	_, g := testChain(t, ModeEvent, echoSpec())
	for i := 0; i < 5; i++ {
		g.Invoke(context.Background(), "", []byte("x"))
	}
	s := g.Stats()
	if s.Admitted != 5 || s.Completed != 5 || s.Rejected != 0 {
		t.Fatalf("stats %+v", s)
	}
	if g.Latency().Count() != 5 {
		t.Fatal("latency histogram must capture each request")
	}
}

func TestChainSpecValidation(t *testing.T) {
	kernel := ebpf.NewKernel()
	mgr := shm.NewManager()
	cases := []ChainSpec{
		{},          // no name
		{Name: "x"}, // no functions
		{Name: "x", Functions: []FunctionSpec{{}}},                                                                   // unnamed fn
		{Name: "x", Functions: []FunctionSpec{{Name: "a"}, {Name: "a"}}},                                             // dup fn
		{Name: "x", Functions: []FunctionSpec{{Name: "a"}}, Routes: []RouteSpec{{From: "", To: []string{"ghost"}}}},  // bad route target
		{Name: "x", Functions: []FunctionSpec{{Name: "a"}}, Routes: []RouteSpec{{From: "ghost", To: []string{"a"}}}}, // bad route source
	}
	for i, spec := range cases {
		if _, err := NewChain(kernel, mgr, spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
	// pool prefixes must be released on failed construction
	if _, err := mgr.CreatePool("x", 1, 1); err != nil {
		t.Fatalf("failed chain construction leaked the pool prefix: %v", err)
	}
}

func TestInvokeWithNoIngressRoute(t *testing.T) {
	spec := ChainSpec{
		Functions: []FunctionSpec{{Name: "a"}},
	}
	_, g := testChain(t, ModeEvent, spec)
	if _, err := g.Invoke(context.Background(), "", nil); !errors.Is(err, ErrNoHead) {
		t.Fatalf("want ErrNoHead, got %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name:    "stuck",
			Handler: func(ctx *Ctx) error { <-block; return nil },
		}},
		Routes: []RouteSpec{{From: "", To: []string{"stuck"}}},
	}
	_, g := testChain(t, ModeEvent, spec)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := g.Invoke(ctx, "", []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSocketQueueSemantics(t *testing.T) {
	s := NewSocket(5, 2)
	d := shm.Descriptor{NextFn: 5}
	if err := s.Deliver(d); err != nil {
		t.Fatal(err)
	}
	if err := s.Deliver(d); err != nil {
		t.Fatal(err)
	}
	if err := s.Deliver(d); !errors.Is(err, ErrSocketFull) {
		t.Fatalf("want ErrSocketFull, got %v", err)
	}
	delivered, dropped := s.Stats()
	if delivered != 2 || dropped != 1 {
		t.Fatalf("stats %d/%d", delivered, dropped)
	}
	s.Close()
	if err := s.Deliver(d); !errors.Is(err, ErrSocketClosed) {
		t.Fatalf("want ErrSocketClosed, got %v", err)
	}
	// wire-form delivery with a bad descriptor
	s2 := NewSocket(1, 1)
	if err := s2.DeliverDescriptor([]byte{1, 2}); err == nil {
		t.Fatal("short wire descriptor must fail")
	}
}

func TestRingTransportUnknownAndUnregistered(t *testing.T) {
	tr := NewRingTransport()
	defer tr.Close()
	s := NewSocket(1, 4)
	if err := tr.Register(s); err != nil {
		t.Fatal(err)
	}
	if err := tr.Register(NewSocket(1, 4)); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if err := tr.Send(0, shm.Descriptor{NextFn: 9}); !errors.Is(err, ErrNoSuchFn) {
		t.Fatalf("want ErrNoSuchFn, got %v", err)
	}
	if err := tr.Send(0, shm.Descriptor{NextFn: 1}); !errors.Is(err, ErrFiltered) {
		t.Fatalf("want ErrFiltered before Allow, got %v", err)
	}
	tr.Allow(0, 1)
	if err := tr.Send(0, shm.Descriptor{NextFn: 1, Caller: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-s.Recv():
		if d.Caller != 7 {
			t.Fatalf("descriptor corrupted: %+v", d)
		}
	case <-time.After(time.Second):
		t.Fatal("poller did not deliver")
	}
	if err := tr.Unregister(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Unregister(1); err == nil {
		t.Fatal("double unregister must fail")
	}
}
