package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/spright-go/spright/internal/fault"
)

// Chaos tests for the failure-recovery layer: panic isolation, seeded
// fault injection, retry with backoff, circuit breaking, deadlines with
// orphan reclamation, and instance restart. Every test rides on the
// testChain cleanup, which asserts the pool drains to zero and passes
// LeakCheck — a chaos test that leaks a buffer fails at teardown.

func TestPanicIsolationReleasesAndFailsFast(t *testing.T) {
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name: "flaky",
			Handler: func(ctx *Ctx) error {
				if string(ctx.Payload()) == "boom" {
					panic("kaboom")
				}
				return nil
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"flaky"}}},
	}
	c, g := testChain(t, ModeEvent, spec)

	start := time.Now()
	_, err := g.Invoke(context.Background(), "", []byte("boom"))
	if !errors.Is(err, ErrHandlerPanic) {
		t.Fatalf("want ErrHandlerPanic, got %v", err)
	}
	// the failure must surface via the notifier, not a timeout
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("panic took %v to surface; must fail fast", elapsed)
	}
	// the instance survived its handler's panic and still serves
	if _, err := g.Invoke(context.Background(), "", []byte("ok")); err != nil {
		t.Fatalf("instance dead after absorbed panic: %v", err)
	}
	in := c.Router().Instances("flaky")[0]
	if in.Crashes() != 1 {
		t.Fatalf("instance crashes = %d, want 1", in.Crashes())
	}
	if s := g.Stats(); s.Crashes != 1 || s.Failed != 1 {
		t.Fatalf("stats crashes=%d failed=%d, want 1/1", s.Crashes, s.Failed)
	}
}

func TestInjectedPanicIsBoundedAndCounted(t *testing.T) {
	inj := fault.New(1).Add(fault.Rule{Op: fault.OpPanic, Function: "echo", MaxCount: 1})
	spec := echoSpec()
	spec.Injector = inj
	_, g := testChain(t, ModeEvent, spec)

	if _, err := g.Invoke(context.Background(), "", []byte("x")); !errors.Is(err, ErrHandlerPanic) {
		t.Fatalf("want injected ErrHandlerPanic, got %v", err)
	}
	// MaxCount 1: the second invocation is clean
	out, err := g.Invoke(context.Background(), "", []byte("y"))
	if err != nil || string(out) != "Y" {
		t.Fatalf("got %q, %v after fault budget exhausted", out, err)
	}
	if s := inj.Stats(); s.Panics != 1 || s.Total != 1 {
		t.Fatalf("injector stats %+v, want exactly one panic", s)
	}
	if s := g.Stats(); s.FaultsInjected != 1 || s.Crashes != 1 {
		t.Fatalf("gateway stats %+v", s)
	}
}

func TestInjectedDelayStallsTheHandler(t *testing.T) {
	inj := fault.New(2).Add(fault.Rule{Op: fault.OpDelay, Delay: 50 * time.Millisecond, MaxCount: 1})
	spec := echoSpec()
	spec.Injector = inj
	_, g := testChain(t, ModeEvent, spec)

	start := time.Now()
	if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("invoke returned in %v; injected delay not applied", elapsed)
	}
}

func TestRetryAbsorbsTransientQueueFull(t *testing.T) {
	// two queue-full faults on the gateway→echo hop; four attempts of
	// budget means the third attempt lands.
	inj := fault.New(3).Add(fault.Rule{
		Op: fault.OpQueueFull, Function: "gateway", Hop: "echo", MaxCount: 2,
	})
	spec := echoSpec()
	spec.Injector = inj
	spec.Retry = RetryPolicy{MaxAttempts: 4, BaseBackoff: 50 * time.Microsecond}
	_, g := testChain(t, ModeEvent, spec)

	out, err := g.Invoke(context.Background(), "", []byte("hi"))
	if err != nil || string(out) != "HI" {
		t.Fatalf("got %q, %v; retry must absorb the transient faults", out, err)
	}
	s := g.Stats()
	if s.Retries != 2 {
		t.Fatalf("retries = %d, want 2", s.Retries)
	}
	if s.FaultsInjected != 2 {
		t.Fatalf("faults injected = %d, want 2", s.FaultsInjected)
	}
}

func TestRetriesExhaustedIsTerminal(t *testing.T) {
	// unlimited queue-full faults: every attempt fails, the send gives up
	// after the budget, and the caller gets the error immediately (the
	// gateway dispatch path) with the buffer released.
	inj := fault.New(4).Add(fault.Rule{Op: fault.OpQueueFull, Function: "gateway", Hop: "echo"})
	spec := echoSpec()
	spec.Injector = inj
	spec.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: 50 * time.Microsecond}
	c, g := testChain(t, ModeEvent, spec)

	start := time.Now()
	_, err := g.Invoke(context.Background(), "", []byte("x"))
	if !errors.Is(err, ErrSocketFull) {
		t.Fatalf("want wrapped ErrSocketFull, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("exhausted retries took %v; must be bounded by the backoff budget", elapsed)
	}
	fs := c.Failures()
	if fs.RetriesExhausted != 1 || fs.Retries != 2 {
		t.Fatalf("failure stats %+v, want 2 retries then exhaustion", fs)
	}
	if c.Pool().InUse() != 0 {
		t.Fatal("failed dispatch leaked its buffer")
	}
}

func TestCircuitBreakerEjectsCrashingReplica(t *testing.T) {
	var badID uint32 // the replica we fault, assigned after deploy
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name:      "w",
			Instances: 2,
			Handler: func(ctx *Ctx) error {
				if ctx.Instance() == badID {
					panic("replica wedged")
				}
				return nil
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"w"}}},
		Health: HealthPolicy{ConsecutiveFailures: 3, OpenDuration: 10 * time.Second},
	}
	c, g := testChain(t, ModeEvent, spec)
	bad := c.Router().Instances("w")[0]
	badID = bad.ID()

	// drive requests until the faulty replica trips its breaker; the
	// load balancer may interleave the healthy replica, so failures are
	// counted rather than assumed consecutive in gateway order.
	failures := 0
	for i := 0; i < 100 && !bad.CircuitOpen(); i++ {
		if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
			if !errors.Is(err, ErrHandlerPanic) {
				t.Fatalf("unexpected error: %v", err)
			}
			failures++
		}
	}
	if !bad.CircuitOpen() {
		t.Fatalf("breaker never opened after %d failures", failures)
	}
	if failures < 3 {
		t.Fatalf("breaker opened after only %d failures, threshold is 3", failures)
	}
	// circuit open: every subsequent request lands on the healthy replica
	for i := 0; i < 5; i++ {
		if _, err := g.Invoke(context.Background(), "", []byte("x")); err != nil {
			t.Fatalf("request %d failed with the bad replica ejected: %v", i, err)
		}
	}
	if bad.CircuitOpens() != 1 {
		t.Fatalf("circuit opens = %d, want 1", bad.CircuitOpens())
	}
	if s := g.Stats(); s.CircuitOpens != 1 {
		t.Fatalf("gateway stats circuit opens = %d, want 1", s.CircuitOpens)
	}
}

func TestAllInstancesUnhealthyIsTerminal(t *testing.T) {
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name:    "dead",
			Handler: func(ctx *Ctx) error { panic("always") },
		}},
		Routes: []RouteSpec{{From: "", To: []string{"dead"}}},
		Health: HealthPolicy{ConsecutiveFailures: 1, OpenDuration: 10 * time.Second},
	}
	_, g := testChain(t, ModeEvent, spec)

	if _, err := g.Invoke(context.Background(), "", []byte("x")); !errors.Is(err, ErrHandlerPanic) {
		t.Fatalf("first invoke: want ErrHandlerPanic, got %v", err)
	}
	// the only instance is circuit-broken: terminal error, not a timeout
	_, err := g.Invoke(context.Background(), "", []byte("x"))
	if !errors.Is(err, ErrAllUnhealthy) {
		t.Fatalf("want ErrAllUnhealthy, got %v", err)
	}
}

func TestCircuitHalfOpenRecovery(t *testing.T) {
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name: "flaky",
			Handler: func(ctx *Ctx) error {
				if string(ctx.Payload()) == "boom" {
					panic("kaboom")
				}
				return nil
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"flaky"}}},
		Health: HealthPolicy{ConsecutiveFailures: 1, OpenDuration: 500 * time.Millisecond},
	}
	c, g := testChain(t, ModeEvent, spec)

	if _, err := g.Invoke(context.Background(), "", []byte("boom")); !errors.Is(err, ErrHandlerPanic) {
		t.Fatalf("want ErrHandlerPanic, got %v", err)
	}
	if _, err := g.Invoke(context.Background(), "", []byte("ok")); !errors.Is(err, ErrAllUnhealthy) {
		t.Fatalf("breaker must still be open, got %v", err)
	}
	// after the cooldown the breaker admits a half-open trial; a success
	// closes it fully
	time.Sleep(600 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if _, err := g.Invoke(context.Background(), "", []byte("ok")); err != nil {
			t.Fatalf("half-open recovery invoke %d: %v", i, err)
		}
	}
	if c.Router().Instances("flaky")[0].CircuitOpen() {
		t.Fatal("breaker must be closed after a successful trial")
	}
}

func TestDeadlineBoundsWedgedHandler(t *testing.T) {
	block := make(chan struct{})
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name:    "wedged",
			Handler: func(ctx *Ctx) error { <-block; return nil },
		}},
		Routes:   []RouteSpec{{From: "", To: []string{"wedged"}}},
		Deadline: 100 * time.Millisecond,
	}
	c, g := testChain(t, ModeEvent, spec)

	// unbounded caller context: the chain's own deadline must bound it
	_, err := g.Invoke(context.Background(), "", []byte("x"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if fs := c.Failures(); fs.DeadlinesExceeded != 1 {
		t.Fatalf("deadlines exceeded = %d, want 1", fs.DeadlinesExceeded)
	}
	// unwedge: the late reply reaches a forgotten caller and its buffer
	// is reclaimed (not leaked)
	close(block)
	deadline := time.Now().Add(2 * time.Second)
	for c.Pool().InUse() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("late reply after deadline leaked its buffer")
		}
		time.Sleep(time.Millisecond)
	}
	if s := g.Stats(); s.Reclaimed == 0 {
		t.Fatal("late reply must be counted as reclaimed")
	}
}

func TestInjectedDropIsReleasedAndDeadlineBounded(t *testing.T) {
	inj := fault.New(5).Add(fault.Rule{Op: fault.OpDrop, Function: "echo", MaxCount: 1})
	spec := echoSpec()
	spec.Injector = inj
	spec.Deadline = 100 * time.Millisecond
	c, g := testChain(t, ModeEvent, spec)

	// the dropped request blackholes; only the deadline saves the caller
	if _, err := g.Invoke(context.Background(), "", []byte("x")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded for dropped request, got %v", err)
	}
	// but the buffer was released at the drop site, immediately
	if c.Pool().InUse() != 0 {
		t.Fatal("dropped message must release its buffer")
	}
	if _, err := g.Invoke(context.Background(), "", []byte("y")); err != nil {
		t.Fatalf("chain unhealthy after drop: %v", err)
	}
}

func TestRestartInstanceReclaimsQueuedRequests(t *testing.T) {
	gate := make(chan struct{})
	spec := ChainSpec{
		PoolBuffers: 64,
		Functions: []FunctionSpec{{
			Name:        "slow",
			Concurrency: 1,
			Handler: func(ctx *Ctx) error {
				if string(ctx.Payload()) == "hold" {
					<-gate
				}
				return nil
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"slow"}}},
	}
	c, g := testChain(t, ModeEvent, spec)
	victim := c.Router().Instances("slow")[0]

	// one request wedges the single worker; the rest pile up in the
	// victim's socket queue
	const queued = 24
	for i := 0; i < queued; i++ {
		if err := g.InvokeAsync("", []byte("hold")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for victim.Inflight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never started")
		}
		time.Sleep(time.Millisecond)
	}

	repl, err := c.RestartInstance(victim.ID())
	if err != nil {
		t.Fatal(err)
	}
	if repl.ID() == victim.ID() || repl.Function() != "slow" {
		t.Fatalf("bad replacement %d/%s", repl.ID(), repl.Function())
	}
	list := c.Router().Instances("slow")
	if len(list) != 1 || list[0].ID() != repl.ID() {
		t.Fatalf("router must route only to the replacement, has %v", list)
	}
	// the replacement serves immediately, even though the victim is
	// still wedged
	if _, err := g.Invoke(context.Background(), "", []byte("ok")); err != nil {
		t.Fatalf("replacement not serving: %v", err)
	}

	// unwedge the victim: its shutdown drains the queue, reclaiming the
	// stranded descriptors
	close(gate)
	deadline = time.Now().Add(5 * time.Second)
	for c.Pool().InUse() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("restart leaked %d buffers", c.Pool().InUse())
		}
		time.Sleep(time.Millisecond)
	}
	if fs := c.Failures(); fs.Reclaimed == 0 {
		t.Fatal("queued descriptors must be counted as reclaimed")
	}
}

func TestRestartInstanceRejectsGatewayAndUnknown(t *testing.T) {
	c, _ := testChain(t, ModeEvent, echoSpec())
	if _, err := c.RestartInstance(GatewayID); err == nil {
		t.Fatal("restarting the gateway must fail")
	}
	if _, err := c.RestartInstance(9999); err == nil {
		t.Fatal("restarting an unknown instance must fail")
	}
}

func TestEProxyPublishesFailureCounters(t *testing.T) {
	inj := fault.New(6).Add(fault.Rule{Op: fault.OpPanic, Function: "echo", MaxCount: 1})
	spec := echoSpec()
	spec.Injector = inj
	_, g := testChain(t, ModeEvent, spec)

	if _, err := g.Invoke(context.Background(), "", []byte("x")); !errors.Is(err, ErrHandlerPanic) {
		t.Fatalf("want ErrHandlerPanic, got %v", err)
	}
	g.Stats() // the scrape publishes to the failure metrics map
	fs := g.EProxy().FailureStats()
	if fs.Crashes != 1 || fs.FaultsInjected != 1 {
		t.Fatalf("eproxy failure map %+v, want crashes=1 injected=1", fs)
	}
}
