package core

import (
	"errors"
	"testing"

	"github.com/spright-go/spright/internal/ebpf"
	"github.com/spright-go/spright/internal/shm"
)

// The dataplane builders must hit the shape-specialized fast paths, and the
// fast paths must be observationally identical to the interpreter on the
// real SPROXY/EPROXY programs — verdicts, classified errors, kernel-side
// counters, and instruction accounting.

func TestProxyProgramsCompileToFastPath(t *testing.T) {
	k := ebpf.NewKernel()
	sp, err := NewSProxy(k, "fastchk")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := NewEProxy(k, "fastchk")
	if err != nil {
		t.Fatal(err)
	}
	if e := sp.prog.Engine(); e != ebpf.EngineFast {
		t.Fatalf("SPROXY engine = %v (reason %q), want fast", e, sp.prog.FallbackReason())
	}
	if e := ep.prog.Engine(); e != ebpf.EngineFast {
		t.Fatalf("EPROXY engine = %v (reason %q), want fast", e, ep.prog.FallbackReason())
	}
	es := k.EngineStats()
	if es.Loaded != 2 || es.Compiled != 2 {
		t.Fatalf("program gauges: %+v, want 2 loaded / 2 compiled", es)
	}
}

// oneEngine builds a full chain (gateway-less) on a dedicated kernel with
// the JIT on or off and runs a fixed send scenario, returning everything an
// outside observer can see.
type engineOutcome struct {
	sendErrs  []string
	delivered []uint32 // socket IDs that received a descriptor, in order
	reqCount  uint64
	l3Pkts    uint64
	l3Bytes   uint64
	runs      uint64
	insns     uint64
}

func runEngineScenario(t *testing.T, jit bool) engineOutcome {
	t.Helper()
	k := ebpf.NewKernel()
	k.SetJIT(jit)
	sp, err := NewSProxy(k, "parity")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := NewEProxy(k, "parity")
	if err != nil {
		t.Fatal(err)
	}

	s2 := NewSocket(2, 16)
	if err := sp.RegisterSocket(s2); err != nil {
		t.Fatal(err)
	}
	if err := sp.Allow(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := sp.Allow(1, 9); err != nil { // authorized but no socket
		t.Fatal(err)
	}

	var out engineOutcome
	record := func(err error) {
		switch {
		case err == nil:
			out.sendErrs = append(out.sendErrs, "")
		case errors.Is(err, ErrFiltered):
			out.sendErrs = append(out.sendErrs, "filtered")
		case errors.Is(err, ErrNoSuchFn):
			out.sendErrs = append(out.sendErrs, "nosuchfn")
		default:
			out.sendErrs = append(out.sendErrs, err.Error())
		}
	}
	record(sp.Send(1, shm.Descriptor{NextFn: 2, Buf: 7, Len: 64})) // full path
	record(sp.Send(3, shm.Descriptor{NextFn: 2}))                  // unauthorized
	record(sp.Send(1, shm.Descriptor{NextFn: 9}))                  // no socket
	record(sp.Send(1, shm.Descriptor{NextFn: 2, Buf: 8, Len: 32})) // second hit
	ds := []shm.Descriptor{{NextFn: 2, Buf: 9}, {NextFn: 2, Buf: 10}}
	if n := sp.SendBatch(1, ds, func(i int, err error) { record(err) }); n != 2 {
		t.Fatalf("batch delivered %d, want 2", n)
	}
	ep.OnIngress(128)
	ep.OnIngress(256)

	close(s2.ch)
	for d := range s2.ch {
		out.delivered = append(out.delivered, d.Buf)
	}
	out.reqCount = sp.RequestCount(2)
	out.l3Pkts, out.l3Bytes = ep.L3Stats()
	out.runs, out.insns = k.Stats()
	return out
}

// TestEngineParityOnRealChain runs the same traffic over the fast paths and
// the interpreter and requires identical outcomes, including the dynamic
// instruction counts the autoscaler-facing Stats expose.
func TestEngineParityOnRealChain(t *testing.T) {
	fast := runEngineScenario(t, true)
	oracle := runEngineScenario(t, false)
	if len(fast.sendErrs) != len(oracle.sendErrs) {
		t.Fatalf("send count divergence: %v vs %v", fast.sendErrs, oracle.sendErrs)
	}
	for i := range fast.sendErrs {
		if fast.sendErrs[i] != oracle.sendErrs[i] {
			t.Fatalf("send %d divergence: fast %q oracle %q", i, fast.sendErrs[i], oracle.sendErrs[i])
		}
	}
	if len(fast.delivered) != len(oracle.delivered) {
		t.Fatalf("delivery divergence: %v vs %v", fast.delivered, oracle.delivered)
	}
	for i := range fast.delivered {
		if fast.delivered[i] != oracle.delivered[i] {
			t.Fatalf("delivery %d divergence: %d vs %d", i, fast.delivered[i], oracle.delivered[i])
		}
	}
	if fast.reqCount != oracle.reqCount {
		t.Fatalf("L7 counter divergence: %d vs %d", fast.reqCount, oracle.reqCount)
	}
	if fast.l3Pkts != oracle.l3Pkts || fast.l3Bytes != oracle.l3Bytes {
		t.Fatalf("L3 counter divergence: (%d,%d) vs (%d,%d)",
			fast.l3Pkts, fast.l3Bytes, oracle.l3Pkts, oracle.l3Bytes)
	}
	if fast.runs != oracle.runs || fast.insns != oracle.insns {
		t.Fatalf("kernel stats divergence: (%d runs, %d insns) vs (%d, %d)",
			fast.runs, fast.insns, oracle.runs, oracle.insns)
	}
}
