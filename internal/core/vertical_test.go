package core

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestVerticalScalingRaisesParallelism: §3.7 vertical pod scaling — a
// 1-slot instance serializes; raising its concurrency at runtime lets
// invocations overlap.
func TestVerticalScalingRaisesParallelism(t *testing.T) {
	var mu sync.Mutex
	inflight, peak := 0, 0
	spec := ChainSpec{
		Functions: []FunctionSpec{{
			Name:        "w",
			Concurrency: 1,
			Handler: func(ctx *Ctx) error {
				mu.Lock()
				inflight++
				if inflight > peak {
					peak = inflight
				}
				mu.Unlock()
				time.Sleep(10 * time.Millisecond)
				mu.Lock()
				inflight--
				mu.Unlock()
				return nil
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"w"}}},
	}
	c, g := testChain(t, ModeEvent, spec)
	inst := c.Router().Instances("w")[0]

	burst := func(n int) {
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				g.Invoke(contextWithTimeout(t, 10*time.Second), "", []byte("x"))
			}()
		}
		wg.Wait()
	}
	burst(6)
	mu.Lock()
	p1 := peak
	peak = 0
	mu.Unlock()
	if p1 != 1 {
		t.Fatalf("concurrency 1 must serialize, peak=%d", p1)
	}

	if err := inst.SetConcurrency(4); err != nil {
		t.Fatal(err)
	}
	if inst.Concurrency() != 4 {
		t.Fatal("concurrency not updated")
	}
	burst(8)
	mu.Lock()
	p2 := peak
	mu.Unlock()
	if p2 < 2 {
		t.Fatalf("after vertical scale-up, invocations must overlap; peak=%d", p2)
	}
	if err := inst.SetConcurrency(0); err == nil {
		t.Fatal("non-positive concurrency must be rejected")
	}
	// chain still serves after resize
	if _, err := g.Invoke(context.Background(), "", []byte("y")); err != nil {
		t.Fatal(err)
	}
}
