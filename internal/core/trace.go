package core

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Request tracing: an opt-in, per-chain record of every hop a descriptor
// takes (function, instance, arrival time, handler duration). The gateway's
// chain-level metrics of §3.3 ("function-chain-level metrics such as the
// request rate and execution time on a chain basis") are derived from
// these traces; tests and operators use them to see DFR in action.

// HopRecord is one function visit in a request's trace.
type HopRecord struct {
	Function string
	Instance uint32
	At       time.Time
	Duration time.Duration
}

// Trace is the recorded path of one request through the chain.
type Trace struct {
	Caller uint32
	Hops   []HopRecord
	Start  time.Time
	End    time.Time
}

// Elapsed is the chain-level execution time (gateway in to gateway out).
func (t *Trace) Elapsed() time.Duration {
	if t.End.IsZero() {
		return 0
	}
	return t.End.Sub(t.Start)
}

// Path renders "fn1->fn2->fn3" for assertions and logs.
func (t *Trace) Path() string {
	parts := make([]string, len(t.Hops))
	for i, h := range t.Hops {
		parts[i] = h.Function
	}
	return strings.Join(parts, "->")
}

func (t *Trace) String() string {
	return fmt.Sprintf("trace{caller=%d path=%s elapsed=%s}", t.Caller, t.Path(), t.Elapsed())
}

// Tracer collects traces for a chain. Disabled (nil) by default: tracing
// is a debugging aid, not a dataplane cost.
type Tracer struct {
	mu     sync.Mutex
	limit  int
	active map[uint32]*Trace
	done   []*Trace
}

// NewTracer creates a tracer retaining up to limit completed traces.
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = 256
	}
	return &Tracer{limit: limit, active: make(map[uint32]*Trace)}
}

func (tr *Tracer) begin(caller uint32) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.active[caller] = &Trace{Caller: caller, Start: time.Now()}
}

func (tr *Tracer) hop(caller uint32, fn string, inst uint32, dur time.Duration) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.active[caller]
	if !ok {
		return
	}
	t.Hops = append(t.Hops, HopRecord{Function: fn, Instance: inst, At: time.Now(), Duration: dur})
}

func (tr *Tracer) finish(caller uint32) *Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.active[caller]
	if !ok {
		return nil
	}
	delete(tr.active, caller)
	t.End = time.Now()
	if len(tr.done) < tr.limit {
		tr.done = append(tr.done, t)
	}
	return t
}

// Completed returns the retained completed traces.
func (tr *Tracer) Completed() []*Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]*Trace(nil), tr.done...)
}

// ChainMetrics is the §3.3 chain-level snapshot the gateway's metrics
// agent reports.
type ChainMetrics struct {
	Requests      uint64
	MeanExecution time.Duration
	Paths         map[string]int
}

// Metrics summarizes completed traces.
func (tr *Tracer) Metrics() ChainMetrics {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	m := ChainMetrics{Paths: make(map[string]int)}
	var total time.Duration
	for _, t := range tr.done {
		m.Requests++
		total += t.Elapsed()
		m.Paths[t.Path()]++
	}
	if m.Requests > 0 {
		m.MeanExecution = total / time.Duration(m.Requests)
	}
	return m
}
