package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spright-go/spright/internal/metrics"
)

// Request tracing: a per-chain record of every hop a descriptor takes
// (function, instance, arrival time, handler duration). The gateway's
// chain-level metrics of §3.3 ("function-chain-level metrics such as the
// request rate and execution time on a chain basis") are derived from
// these traces; tests and operators use them to see DFR in action.
//
// Tracing runs in one of two modes:
//
//   - full (EnableTracing / NewTracer): every request is traced — a
//     debugging aid for tests and incident forensics.
//   - sampled (EnableSampledTracing / NewSampledTracer): 1-in-N requests
//     are traced, always on in production. The unsampled path costs one
//     atomic increment at begin and one atomic load per hop/finish — zero
//     allocations — so the tracer can stay enabled under full load while
//     still feeding per-hop duration histograms and a bounded ring of
//     recent traces to the observability exporter.

// HopRecord is one function visit in a request's trace.
type HopRecord struct {
	Function string
	Instance uint32
	At       time.Time
	Duration time.Duration
}

// Trace is the recorded path of one request through the chain.
type Trace struct {
	Caller uint32
	Hops   []HopRecord
	Start  time.Time
	End    time.Time
}

// Elapsed is the chain-level execution time (gateway in to gateway out).
func (t *Trace) Elapsed() time.Duration {
	if t.End.IsZero() {
		return 0
	}
	return t.End.Sub(t.Start)
}

// Path renders "fn1->fn2->fn3" for assertions and logs.
func (t *Trace) Path() string {
	parts := make([]string, len(t.Hops))
	for i, h := range t.Hops {
		parts[i] = h.Function
	}
	return strings.Join(parts, "->")
}

func (t *Trace) String() string {
	return fmt.Sprintf("trace{caller=%d path=%s elapsed=%s}", t.Caller, t.Path(), t.Elapsed())
}

// Tracer collects traces for a chain.
type Tracer struct {
	every uint64        // sample 1 in every requests (1 = trace all)
	seq   atomic.Uint64 // request counter driving the sampling decision

	// nactive gates the hop/finish slow path: when no trace is in flight
	// (the overwhelmingly common case under sampling), both return after a
	// single atomic load, without touching the mutex or the map.
	nactive atomic.Int64

	mu      sync.Mutex
	limit   int
	active  map[uint32]*Trace
	done    []*Trace                      // ring buffer of the most recent completed traces
	next    int                           // ring cursor
	total   uint64                        // completed (sampled) traces ever
	hopHist map[string]*metrics.Histogram // per-function sampled hop durations
}

// NewTracer creates a full tracer (every request) retaining up to limit
// completed traces.
func NewTracer(limit int) *Tracer { return NewSampledTracer(1, limit) }

// NewSampledTracer creates a tracer recording one in every `every`
// requests (every <= 1 records all), retaining up to limit recent traces.
func NewSampledTracer(every, limit int) *Tracer {
	if limit <= 0 {
		limit = 256
	}
	if every < 1 {
		every = 1
	}
	return &Tracer{
		every:   uint64(every),
		limit:   limit,
		active:  make(map[uint32]*Trace),
		hopHist: make(map[string]*metrics.Histogram),
	}
}

// SampleEvery returns the sampling period (1 = every request).
func (tr *Tracer) SampleEvery() int { return int(tr.every) }

// tracing reports whether any sampled trace is currently in flight — the
// hot-path gate that keeps unsampled requests off the tracer mutex.
func (tr *Tracer) tracing() bool { return tr.nactive.Load() != 0 }

func (tr *Tracer) begin(caller uint32) {
	if tr.every > 1 && tr.seq.Add(1)%tr.every != 0 {
		return // unsampled: no allocation, no lock
	}
	t := &Trace{Caller: caller, Start: time.Now()}
	tr.mu.Lock()
	tr.active[caller] = t
	tr.mu.Unlock()
	tr.nactive.Add(1)
}

func (tr *Tracer) hop(caller uint32, fn string, inst uint32, dur time.Duration) {
	if !tr.tracing() {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t, ok := tr.active[caller]
	if !ok {
		return
	}
	t.Hops = append(t.Hops, HopRecord{Function: fn, Instance: inst, At: time.Now(), Duration: dur})
	h, ok := tr.hopHist[fn]
	if !ok {
		h = metrics.NewHistogram()
		tr.hopHist[fn] = h
	}
	h.Observe(dur.Seconds())
}

func (tr *Tracer) finish(caller uint32) *Trace {
	if !tr.tracing() {
		return nil
	}
	tr.mu.Lock()
	t, ok := tr.active[caller]
	if !ok {
		tr.mu.Unlock()
		return nil
	}
	delete(tr.active, caller)
	t.End = time.Now()
	if len(tr.done) < tr.limit {
		tr.done = append(tr.done, t)
	} else {
		// ring: overwrite the oldest retained trace
		tr.done[tr.next] = t
		tr.next = (tr.next + 1) % tr.limit
	}
	tr.total++
	tr.mu.Unlock()
	tr.nactive.Add(-1)
	return t
}

// Completed returns the retained completed traces, oldest first.
func (tr *Tracer) Completed() []*Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*Trace, 0, len(tr.done))
	if len(tr.done) < tr.limit {
		return append(out, tr.done...)
	}
	out = append(out, tr.done[tr.next:]...)
	return append(out, tr.done[:tr.next]...)
}

// TotalSampled returns how many traces have completed since the tracer
// started (not bounded by the retention limit).
func (tr *Tracer) TotalSampled() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total
}

// HopDurations returns a merged copy of the per-function sampled hop
// duration histograms — the per-hop latency signal the exporter renders.
func (tr *Tracer) HopDurations() map[string]*metrics.Histogram {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make(map[string]*metrics.Histogram, len(tr.hopHist))
	for fn, h := range tr.hopHist {
		cp := metrics.NewHistogram()
		cp.Merge(h)
		out[fn] = cp
	}
	return out
}

// ChainMetrics is the §3.3 chain-level snapshot the gateway's metrics
// agent reports.
type ChainMetrics struct {
	Requests      uint64
	MeanExecution time.Duration
	Paths         map[string]int
}

// Metrics summarizes the retained completed traces.
func (tr *Tracer) Metrics() ChainMetrics {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	m := ChainMetrics{Paths: make(map[string]int)}
	var total time.Duration
	for _, t := range tr.done {
		m.Requests++
		total += t.Elapsed()
		m.Paths[t.Path()]++
	}
	if m.Requests > 0 {
		m.MeanExecution = total / time.Duration(m.Requests)
	}
	return m
}
