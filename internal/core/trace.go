package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/spright-go/spright/internal/metrics"
	"github.com/spright-go/spright/internal/shm"
)

// Distributed tracing through the zero-copy path. Each sampled request
// carries a shm.TraceContext in its buffer's trace header (128-bit trace
// ID, parent span, flags), so identity propagates across every SPROXY/DFR
// hop, every fan-out branch, and — via Ctx.TraceContext /
// WithTraceContext — across chain boundaries at the gateway, without
// widening the 16-byte descriptor. Stages record spans: gateway admission
// (the root), shm alloc, the SPROXY redirect or ring enqueue, ring and
// socket queue wait, the function handler, and the response drain — the
// decomposition that answers "where did the microseconds go" in §3.1's
// one-copy pipeline.
//
// Sampling is two-level:
//
//   - head: 1-in-N requests record full span trees (EnableSampledTracing /
//     ChainSpec.TraceSampleEvery); an inbound sampled context is always
//     adopted so cross-chain traces stay whole.
//   - tail: error traces and traces slower than the tail-latency threshold
//     are always retained in a separate bounded ring, never evicted by
//     head traffic. An unsampled request that fails or runs slow gets a
//     skeleton trace (root span only) allocated at completion — the
//     unsampled fast path itself never allocates and never reads the
//     clock.

// Stage names of the spans a traced request records.
const (
	// StageRequest is the root span: gateway admission + protocol
	// processing, covering the whole synchronous invocation.
	StageRequest = "request"
	// StageShmAlloc covers pool Get plus the single payload copy in.
	StageShmAlloc = "shm.alloc"
	// StageRedirect is one S-SPRIGHT hop's SPROXY sockmap redirect.
	StageRedirect = "sproxy.redirect"
	// StageEnqueue is one D-SPRIGHT hop's rte_ring insert.
	StageEnqueue = "ring.enqueue"
	// StageRingWait is D-SPRIGHT ring residency: enqueue → poller dequeue.
	StageRingWait = "ring.wait"
	// StageQueueWait is socket-queue residency: enqueue (or ring dequeue)
	// → worker pickup.
	StageQueueWait = "queue.wait"
	// StageHandler is the user function execution (service time included).
	StageHandler = "handler"
	// StageDrain is the response copy out of shared memory at the gateway.
	StageDrain = "gateway.drain"
	// StageXNodeForward is one cross-node hop: the stub handler's wire
	// forward to the peer node's gateway. Its children on the remote
	// tracer parent under the same trace ID (the context rides the frame).
	StageXNodeForward = "xnode.forward"
)

// TraceID is a 128-bit trace identity.
type TraceID struct{ Hi, Lo uint64 }

// IsZero reports whether the ID is unset.
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the ID as 32 hex digits (the OTLP/W3C wire form).
func (id TraceID) String() string { return fmt.Sprintf("%016x%016x", id.Hi, id.Lo) }

// Span is one completed stage of a traced request.
type Span struct {
	ID       uint64
	Parent   uint64 // 0 only for the root span
	Stage    string // one of the Stage* constants
	Function string // function involved ("gateway" for gateway stages)
	Instance uint32
	Start    time.Time
	End      time.Time
	Err      string // non-empty when the stage failed
}

// Duration is the span's elapsed time.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Trace is the recorded span tree of one request.
type Trace struct {
	ID     TraceID
	Caller uint32
	// Seq is the monotone retention sequence number — the cursor exporters
	// use to drain only traces they have not yet shipped.
	Seq   uint64
	Spans []Span // Spans[0] is the root request span
	Start time.Time
	End   time.Time
	Err   string
	// Tail marks a trace retained by tail sampling (error or
	// over-threshold latency) — kept regardless of head-sampling.
	Tail bool
}

// Elapsed is the chain-level execution time (gateway in to gateway out).
func (t *Trace) Elapsed() time.Duration {
	if t.End.IsZero() {
		return 0
	}
	return t.End.Sub(t.Start)
}

// Path renders the handler spans as "fn1->fn2->fn3" for assertions and
// logs (branch order under fan-out follows completion order).
func (t *Trace) Path() string {
	parts := make([]string, 0, len(t.Spans))
	for _, s := range t.Spans {
		if s.Stage == StageHandler {
			parts = append(parts, s.Function)
		}
	}
	return strings.Join(parts, "->")
}

func (t *Trace) String() string {
	return fmt.Sprintf("trace{id=%s caller=%d path=%s elapsed=%s spans=%d}",
		t.ID, t.Caller, t.Path(), t.Elapsed(), len(t.Spans))
}

// splitmix64 is the finalizer of the splitmix64 PRNG: a bijection on
// uint64, so distinct counter values yield distinct IDs without a lock.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Defaults for the tail sampler.
const (
	defaultTraceTailLatency = 250 * time.Millisecond
)

// Tracer collects distributed traces for a chain.
type Tracer struct {
	every   uint64        // head-sample 1 in every requests (1 = trace all)
	tailLat time.Duration // tail-retain traces slower than this (<=0: off)
	seq     atomic.Uint64 // request counter driving the sampling decision
	idSeq   atomic.Uint64 // counter behind splitmix64 trace/span IDs

	// nactive counts sampled traces in flight; it must return to zero when
	// the chain drains (the regression guard for caller-slot reuse).
	nactive atomic.Int64

	mu        sync.Mutex
	limit     int
	tailLimit int
	active    map[uint32]*Trace
	// late keeps finished traces addressable by caller while they remain
	// in the done ring: a stage span recorded concurrently with request
	// completion (a reply redirect returning after the waiter woke) still
	// attaches instead of being dropped. Entries die with ring eviction.
	late      map[uint32]*Trace
	done      []*Trace                      // ring of recent head-sampled completed traces
	next      int                           // head ring cursor
	tail      []*Trace                      // ring of tail-retained traces (errors / slow)
	tailNext  int                           // tail ring cursor
	total     uint64                        // head-sampled completions ever
	tailTotal uint64                        // tail retentions ever
	retainSeq uint64                        // monotone Seq source for retained traces
	hopHist   map[string]*metrics.Histogram // per-function handler durations
	stageHist map[string]*metrics.Histogram // per-stage durations
}

// NewTracer creates a full tracer (every request) retaining up to limit
// completed traces.
func NewTracer(limit int) *Tracer { return NewSampledTracer(1, limit) }

// NewSampledTracer creates a tracer recording one in every `every`
// requests (every <= 1 records all), retaining up to limit recent traces.
// Tail sampling starts at the default latency threshold with a tail buffer
// of the same size; SetTailSampling overrides both.
func NewSampledTracer(every, limit int) *Tracer {
	if limit <= 0 {
		limit = 256
	}
	if every < 1 {
		every = 1
	}
	tr := &Tracer{
		every:     uint64(every),
		tailLat:   defaultTraceTailLatency,
		limit:     limit,
		tailLimit: limit,
		active:    make(map[uint32]*Trace),
		late:      make(map[uint32]*Trace),
		hopHist:   make(map[string]*metrics.Histogram),
		stageHist: make(map[string]*metrics.Histogram),
	}
	tr.idSeq.Store(uint64(time.Now().UnixNano()))
	return tr
}

// SetTailSampling configures tail retention: traces slower than threshold
// (or completing with an error — always) are kept in a bounded buffer of
// tailLimit traces regardless of head sampling. threshold 0 keeps the
// default, negative disables latency-based retention (errors are still
// retained); tailLimit <= 0 keeps the current limit. Configure before
// traffic starts.
func (tr *Tracer) SetTailSampling(threshold time.Duration, tailLimit int) {
	if threshold != 0 {
		tr.tailLat = threshold
	}
	if tailLimit > 0 {
		tr.tailLimit = tailLimit
	}
}

// SampleEvery returns the head-sampling period (1 = every request).
func (tr *Tracer) SampleEvery() int { return int(tr.every) }

// TailLatency returns the tail-retention latency threshold (<= 0: latency
// retention disabled).
func (tr *Tracer) TailLatency() time.Duration { return tr.tailLat }

// InFlight returns the number of sampled traces currently active; it must
// be zero when the chain is idle.
func (tr *Tracer) InFlight() int64 { return tr.nactive.Load() }

// nextID draws a non-zero trace/span ID.
func (tr *Tracer) nextID() uint64 {
	for {
		if id := splitmix64(tr.idSeq.Add(1)); id != 0 {
			return id
		}
	}
}

// NextSpanID pre-assigns a span ID (the handler installs its span's ID in
// the buffer header before running, so downstream hops parent onto it).
func (tr *Tracer) NextSpanID() uint64 { return tr.nextID() }

// BeginRequest makes the head-sampling decision for one request and, when
// sampled, opens its trace with the root request span. An inbound sampled
// context (cross-chain propagation, or a W3C traceparent parsed by the
// gateway) is always adopted: the trace keeps the upstream ID and the root
// span parents onto the upstream span. The returned context carries the
// identity the caller must install in the buffer header; its zero value
// means "unsampled" and the request pays nothing further.
func (tr *Tracer) BeginRequest(caller uint32, inbound shm.TraceContext, start time.Time) shm.TraceContext {
	var id TraceID
	var parent uint64
	switch {
	case inbound.Sampled():
		id = TraceID{Hi: inbound.TraceHi, Lo: inbound.TraceLo}
		parent = inbound.Span
	case tr.every <= 1 || tr.seq.Add(1)%tr.every == 0:
		id = TraceID{Hi: tr.nextID(), Lo: tr.nextID()}
	default:
		return shm.TraceContext{} // unsampled: no allocation, no lock
	}
	t := &Trace{ID: id, Caller: caller, Start: start}
	root := Span{ID: tr.nextID(), Parent: parent, Stage: StageRequest, Function: "gateway", Start: start}
	t.Spans = append(t.Spans, root)
	tr.mu.Lock()
	// Caller-slot reuse (an abandoned request whose caller ID came around
	// again) replaces the stale in-flight trace; it must not count twice —
	// a double increment here would never be balanced and would pin
	// nactive above zero forever.
	if tr.active[caller] == nil {
		tr.nactive.Add(1)
	}
	tr.active[caller] = t
	tr.mu.Unlock()
	return shm.TraceContext{TraceHi: id.Hi, TraceLo: id.Lo, Span: root.ID, Flags: shm.TraceSampled}
}

// RecordSpan appends one completed stage span to caller's active trace and
// feeds the stage-duration histograms (handler spans additionally feed the
// per-function hop histogram). A zero s.ID is assigned; the span's ID is
// returned, 0 when no trace is active for caller (the span is dropped —
// e.g. a stage outliving an abandoned request).
func (tr *Tracer) RecordSpan(caller uint32, s Span) uint64 {
	tr.mu.Lock()
	t := tr.active[caller]
	if t == nil {
		t = tr.late[caller] // span landing after completion, trace retained
	}
	if t == nil {
		tr.mu.Unlock()
		return 0
	}
	if s.ID == 0 {
		s.ID = tr.nextID()
	}
	t.Spans = append(t.Spans, s)
	tr.observeLocked(s)
	tr.mu.Unlock()
	return s.ID
}

// observeLocked feeds a span into the duration histograms. Callers hold mu.
func (tr *Tracer) observeLocked(s Span) {
	h, ok := tr.stageHist[s.Stage]
	if !ok {
		h = metrics.NewHistogram()
		tr.stageHist[s.Stage] = h
	}
	h.Observe(s.Duration().Seconds())
	if s.Stage == StageHandler {
		fh, ok := tr.hopHist[s.Function]
		if !ok {
			fh = metrics.NewHistogram()
			tr.hopHist[s.Function] = fh
		}
		fh.Observe(s.Duration().Seconds())
	}
}

// FinishRequest completes caller's request. sampled is the caller's record
// of whether BeginRequest sampled it (the returned context's Sampled bit):
// unsampled requests take only the tail check — no atomics, no allocation,
// no clock read unless the request erred or ran past the tail threshold,
// in which case a skeleton trace (root span only, fresh ID) is built and
// tail-retained so failures stay observable at any head-sampling period.
func (tr *Tracer) FinishRequest(caller uint32, sampled bool, reqErr error, start time.Time, elapsed time.Duration) *Trace {
	if !sampled {
		if reqErr == nil && (tr.tailLat <= 0 || elapsed < tr.tailLat) {
			return nil // the unsampled fast path
		}
		t := &Trace{
			ID:     TraceID{Hi: tr.nextID(), Lo: tr.nextID()},
			Caller: caller,
			Start:  start,
			End:    start.Add(elapsed),
			Tail:   true,
		}
		if reqErr != nil {
			t.Err = reqErr.Error()
		}
		t.Spans = append(t.Spans, Span{
			ID: tr.nextID(), Stage: StageRequest, Function: "gateway",
			Start: start, End: t.End, Err: t.Err,
		})
		tr.mu.Lock()
		tr.retainTailLocked(t)
		tr.mu.Unlock()
		return t
	}
	end := start.Add(elapsed)
	tr.mu.Lock()
	t := tr.active[caller]
	if t == nil {
		tr.mu.Unlock()
		return nil
	}
	delete(tr.active, caller)
	tr.nactive.Add(-1)
	t.End = end
	if reqErr != nil {
		t.Err = reqErr.Error()
	}
	t.Spans[0].End = end
	t.Spans[0].Err = t.Err
	t.Tail = reqErr != nil || (tr.tailLat > 0 && elapsed >= tr.tailLat)
	t.Seq = tr.nextRetainSeqLocked()
	if len(tr.done) < tr.limit {
		tr.done = append(tr.done, t)
	} else {
		if old := tr.done[tr.next]; tr.late[old.Caller] == old {
			delete(tr.late, old.Caller)
		}
		tr.done[tr.next] = t
		tr.next = (tr.next + 1) % tr.limit
	}
	tr.late[caller] = t
	tr.total++
	if t.Tail {
		tr.retainTailLocked(t)
	}
	tr.mu.Unlock()
	return t
}

// nextRetainSeqLocked assigns the next retention sequence number. Callers
// hold mu.
func (tr *Tracer) nextRetainSeqLocked() uint64 {
	tr.retainSeq++
	return tr.retainSeq
}

// retainTailLocked places t in the tail ring (errors and slow traces;
// never evicted by head-sampled traffic). Callers hold mu.
func (tr *Tracer) retainTailLocked(t *Trace) {
	if t.Seq == 0 {
		t.Seq = tr.nextRetainSeqLocked()
	}
	if len(tr.tail) < tr.tailLimit {
		tr.tail = append(tr.tail, t)
	} else {
		tr.tail[tr.tailNext] = t
		tr.tailNext = (tr.tailNext + 1) % tr.tailLimit
	}
	tr.tailTotal++
}

// cloneTraceLocked deep-copies one trace so readers never race a late
// span append. Callers hold mu.
func cloneTraceLocked(t *Trace) *Trace {
	cp := *t
	cp.Spans = append([]Span(nil), t.Spans...)
	return &cp
}

// Completed returns copies of the retained head-sampled traces, oldest
// first.
func (tr *Tracer) Completed() []*Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*Trace, 0, len(tr.done))
	ordered := tr.done
	if len(tr.done) >= tr.limit {
		ordered = append(append([]*Trace(nil), tr.done[tr.next:]...), tr.done[:tr.next]...)
	}
	for _, t := range ordered {
		out = append(out, cloneTraceLocked(t))
	}
	return out
}

// TailRetained returns copies of the tail-retained traces (errors and
// over-threshold latencies), oldest first.
func (tr *Tracer) TailRetained() []*Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*Trace, 0, len(tr.tail))
	ordered := tr.tail
	if len(tr.tail) >= tr.tailLimit {
		ordered = append(append([]*Trace(nil), tr.tail[tr.tailNext:]...), tr.tail[:tr.tailNext]...)
	}
	for _, t := range ordered {
		out = append(out, cloneTraceLocked(t))
	}
	return out
}

// Retained returns every retained trace — head-sampled and tail-retained —
// deduplicated (a slow sampled trace lives in both rings) and ordered by
// retention sequence. Exporters drain new work with the afterSeq cursor
// (0 returns everything).
func (tr *Tracer) Retained(afterSeq uint64) []*Trace {
	tr.mu.Lock()
	seen := make(map[uint64]*Trace, len(tr.done)+len(tr.tail))
	for _, t := range tr.done {
		if t.Seq > afterSeq {
			seen[t.Seq] = cloneTraceLocked(t)
		}
	}
	for _, t := range tr.tail {
		if t.Seq > afterSeq && seen[t.Seq] == nil {
			seen[t.Seq] = cloneTraceLocked(t)
		}
	}
	tr.mu.Unlock()
	out := make([]*Trace, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// TotalSampled returns how many head-sampled traces have completed since
// the tracer started (not bounded by the retention limit).
func (tr *Tracer) TotalSampled() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total
}

// TotalTailRetained returns how many traces tail sampling has retained.
func (tr *Tracer) TotalTailRetained() uint64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.tailTotal
}

// HopDurations returns a merged copy of the per-function sampled handler
// duration histograms — the per-hop latency signal the exporter renders.
func (tr *Tracer) HopDurations() map[string]*metrics.Histogram {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return copyHists(tr.hopHist)
}

// StageDurations returns a merged copy of the per-stage duration
// histograms (queue wait, redirect, handler, drain, …) — the §3.1 pipeline
// decomposition as summaries.
func (tr *Tracer) StageDurations() map[string]*metrics.Histogram {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return copyHists(tr.stageHist)
}

func copyHists(in map[string]*metrics.Histogram) map[string]*metrics.Histogram {
	out := make(map[string]*metrics.Histogram, len(in))
	for k, h := range in {
		cp := metrics.NewHistogram()
		cp.Merge(h)
		out[k] = cp
	}
	return out
}

// Exemplar links a latency observation to a concrete retained trace, so a
// p99 spike in the latency summary resolves to a span tree.
type Exemplar struct {
	TraceID string
	Seconds float64
}

// Exemplars returns up to max retained traces with the highest end-to-end
// latency, slowest first.
func (tr *Tracer) Exemplars(max int) []Exemplar {
	if max <= 0 {
		return nil
	}
	ts := tr.Retained(0)
	sort.Slice(ts, func(i, j int) bool { return ts[i].Elapsed() > ts[j].Elapsed() })
	if len(ts) > max {
		ts = ts[:max]
	}
	out := make([]Exemplar, 0, len(ts))
	for _, t := range ts {
		out = append(out, Exemplar{TraceID: t.ID.String(), Seconds: t.Elapsed().Seconds()})
	}
	return out
}

// ChainMetrics is the §3.3 chain-level snapshot the gateway's metrics
// agent reports.
type ChainMetrics struct {
	Requests      uint64
	MeanExecution time.Duration
	Paths         map[string]int
}

// Metrics summarizes the retained head-sampled traces.
func (tr *Tracer) Metrics() ChainMetrics {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	m := ChainMetrics{Paths: make(map[string]int)}
	var total time.Duration
	for _, t := range tr.done {
		m.Requests++
		total += t.Elapsed()
		m.Paths[t.Path()]++
	}
	if m.Requests > 0 {
		m.MeanExecution = total / time.Duration(m.Requests)
	}
	return m
}

// traceCtxKey keys the trace context in a context.Context.
type traceCtxKey struct{}

// WithTraceContext attaches an upstream trace context to ctx. A handler
// calling into another chain's gateway passes its Ctx.TraceContext here so
// the downstream chain joins the same trace (child spans parent onto the
// calling handler's span).
func WithTraceContext(ctx context.Context, tc shm.TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the trace context attached by WithTraceContext
// (zero value when absent).
func TraceContextFrom(ctx context.Context) shm.TraceContext {
	tc, _ := ctx.Value(traceCtxKey{}).(shm.TraceContext)
	return tc
}
