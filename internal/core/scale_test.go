package core

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestScaleUpAddsServingInstance(t *testing.T) {
	c, g := testChain(t, ModeEvent, echoSpec())
	inst, err := c.ScaleUp("echo")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Router().Instances("echo")) != 2 {
		t.Fatal("router must see the new instance")
	}
	// saturate so both instances serve
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := g.Invoke(contextWithTimeout(t, 5*time.Second), "", []byte("x")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if inst.Handled() == 0 {
		// acceptable under low contention, but the instance must at
		// least be routable: force a direct check via filter map
		if err := c.SProxy().Allow(GatewayID, inst.ID()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestScaleUpUnknownFunction(t *testing.T) {
	c, _ := testChain(t, ModeEvent, echoSpec())
	if _, err := c.ScaleUp("ghost"); err == nil {
		t.Fatal("unknown function must fail")
	}
}

func TestScaleDownKeepsWarmInstance(t *testing.T) {
	c, g := testChain(t, ModeEvent, echoSpec())
	if err := c.ScaleDown("echo"); err == nil {
		t.Fatal("must refuse to scale below one instance")
	}
	if _, err := c.ScaleUp("echo"); err != nil {
		t.Fatal(err)
	}
	if err := c.ScaleDown("echo"); err != nil {
		t.Fatal(err)
	}
	if len(c.Router().Instances("echo")) != 1 {
		t.Fatal("scale down must remove one instance")
	}
	// chain still serves
	if out, err := g.Invoke(context.Background(), "", []byte("ok")); err != nil || string(out) != "OK" {
		t.Fatalf("post-scale-down invoke: %q, %v", out, err)
	}
}

func TestScaledInstanceRespectsSecurityDomain(t *testing.T) {
	// A scaled-up middle-function instance must receive authorization for
	// both its inbound and outbound edges.
	c, g := testChain(t, ModeEvent, seqSpec())
	if _, err := c.ScaleUp("f2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		out, err := g.Invoke(contextWithTimeout(t, 2*time.Second), "", []byte("x"))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if string(out) != "x>f1>f2>f3" {
			t.Fatalf("iteration %d: %q", i, out)
		}
	}
	if n, errs := c.Errors(); n != 0 {
		t.Fatalf("dataplane errors after scale-up: %v", errs)
	}
}
