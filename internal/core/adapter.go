package core

import (
	"errors"
	"fmt"
	"sync"

	"github.com/spright-go/spright/internal/proto"
)

// Protocol adaptation (§3.6): adapters are event-driven components attached
// to hook points on the gateway datapath, invoked only when a message of
// their protocol arrives, and loadable/unloadable at runtime (the paper's
// dynamic code injection). An adapter translates protocol bytes to the
// protocol-independent AdaptedMessage and encodes responses back.

// AdaptedMessage is the normalized result of protocol adaptation.
type AdaptedMessage struct {
	Topic      string
	Payload    []byte
	NoResponse bool // fire-and-forget protocols (e.g. MQTT QoS 0 PUBLISH)

	// Meta carries protocol-specific response context (message IDs etc.).
	Meta map[string]string
}

// Adapter translates between one application protocol and chain messages.
type Adapter interface {
	// Protocol names the adapter ("http", "mqtt", "coap").
	Protocol() string
	// Decode parses raw bytes. If the bytes are a session-control
	// message the gateway must answer itself (stateful L7 handling,
	// e.g. MQTT CONNECT), Decode returns a non-nil reply and no message.
	Decode(raw []byte) (msg *AdaptedMessage, reply []byte, err error)
	// EncodeResponse encodes a chain response for the original request.
	EncodeResponse(req *AdaptedMessage, payload []byte) ([]byte, error)
	// EncodeAck encodes the acknowledgement for a NoResponse message.
	EncodeAck(req *AdaptedMessage) ([]byte, error)
}

// AdapterRegistry is the set of adapters attached to a gateway's hook
// points.
type AdapterRegistry struct {
	mu       sync.RWMutex
	adapters map[string]Adapter
}

// ErrNoAdapter reports an unhandled protocol.
var ErrNoAdapter = errors.New("core: no adapter attached for protocol")

// NewAdapterRegistry returns a registry preloaded with the HTTP adapter
// (the serverless default; §2 notes HTTP/REST is the primary interface).
func NewAdapterRegistry() *AdapterRegistry {
	r := &AdapterRegistry{adapters: make(map[string]Adapter)}
	r.Attach(HTTPAdapter{})
	return r
}

// Attach loads an adapter at runtime.
func (r *AdapterRegistry) Attach(a Adapter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.adapters[a.Protocol()] = a
}

// Detach unloads an adapter at runtime.
func (r *AdapterRegistry) Detach(protocol string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.adapters, protocol)
}

// Get resolves the adapter for a protocol.
func (r *AdapterRegistry) Get(protocol string) (Adapter, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.adapters[protocol]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoAdapter, protocol)
	}
	return a, nil
}

// Protocols lists attached protocols.
func (r *AdapterRegistry) Protocols() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.adapters))
	for p := range r.adapters {
		out = append(out, p)
	}
	return out
}

// HTTPAdapter handles raw HTTP/1.1 bytes (stateless; §3.6 notes HTTP works
// seamlessly because L4 termination already lives in the gateway).
type HTTPAdapter struct{}

// Protocol implements Adapter.
func (HTTPAdapter) Protocol() string { return "http" }

// Decode implements Adapter.
func (HTTPAdapter) Decode(raw []byte) (*AdaptedMessage, []byte, error) {
	m, err := proto.UnmarshalHTTPRequest(raw)
	if err != nil {
		return nil, nil, err
	}
	topic := m.Headers["X-Topic"]
	if topic == "" {
		topic = m.Path
	}
	return &AdaptedMessage{Topic: topic, Payload: m.Body}, nil, nil
}

// EncodeResponse implements Adapter.
func (HTTPAdapter) EncodeResponse(_ *AdaptedMessage, payload []byte) ([]byte, error) {
	return proto.MarshalHTTPResponse(200, payload), nil
}

// EncodeAck implements Adapter.
func (HTTPAdapter) EncodeAck(_ *AdaptedMessage) ([]byte, error) {
	return proto.MarshalHTTPResponse(202, nil), nil
}

// MQTTAdapter handles MQTT-lite: the gateway answers CONNECT itself
// (stateful L7 session handling stays in the gateway, §3.6) and PUBLISH
// payloads become fire-and-forget chain events whose topic is the MQTT
// topic.
type MQTTAdapter struct{}

// Protocol implements Adapter.
func (MQTTAdapter) Protocol() string { return "mqtt" }

// Decode implements Adapter.
func (MQTTAdapter) Decode(raw []byte) (*AdaptedMessage, []byte, error) {
	if proto.IsMQTTConnect(raw) {
		return nil, proto.MarshalMQTTConnAck(), nil
	}
	topic, payload, err := proto.UnmarshalMQTTPublish(raw)
	if err != nil {
		return nil, nil, err
	}
	return &AdaptedMessage{Topic: topic, Payload: payload, NoResponse: true}, nil, nil
}

// EncodeResponse implements Adapter (unused for QoS-0 PUBLISH).
func (MQTTAdapter) EncodeResponse(req *AdaptedMessage, payload []byte) ([]byte, error) {
	return proto.MarshalMQTTPublish(req.Topic+"/response", payload), nil
}

// EncodeAck implements Adapter: QoS 0 has no PUBACK; an empty ack means
// "accepted".
func (MQTTAdapter) EncodeAck(_ *AdaptedMessage) ([]byte, error) { return nil, nil }

// CoAPAdapter handles CoAP-lite requests (the parking camera workload).
type CoAPAdapter struct{}

// Protocol implements Adapter.
func (CoAPAdapter) Protocol() string { return "coap" }

// Decode implements Adapter.
func (CoAPAdapter) Decode(raw []byte) (*AdaptedMessage, []byte, error) {
	_, mid, path, payload, err := proto.UnmarshalCoAP(raw)
	if err != nil {
		return nil, nil, err
	}
	return &AdaptedMessage{
		Topic:   path,
		Payload: payload,
		Meta:    map[string]string{"mid": fmt.Sprint(mid)},
	}, nil, nil
}

// EncodeResponse implements Adapter: a 2.05 Content response.
func (CoAPAdapter) EncodeResponse(req *AdaptedMessage, payload []byte) ([]byte, error) {
	return proto.MarshalCoAP(69 /* 2.05 */, 0, req.Topic, payload), nil
}

// EncodeAck implements Adapter: an empty 2.03 Valid.
func (CoAPAdapter) EncodeAck(req *AdaptedMessage) ([]byte, error) {
	return proto.MarshalCoAP(67 /* 2.03 */, 0, req.Topic, nil), nil
}

// CloudEventAdapter normalizes CloudEvents-structured JSON into chain
// messages (interoperability with Knative eventing, §3.6).
type CloudEventAdapter struct{}

// Protocol implements Adapter.
func (CloudEventAdapter) Protocol() string { return "cloudevents" }

// Decode implements Adapter.
func (CloudEventAdapter) Decode(raw []byte) (*AdaptedMessage, []byte, error) {
	e, err := proto.UnmarshalCloudEvent(raw)
	if err != nil {
		return nil, nil, err
	}
	return &AdaptedMessage{
		Topic:   e.Type,
		Payload: e.Data,
		Meta:    map[string]string{"id": e.ID, "source": e.Source},
	}, nil, nil
}

// EncodeResponse implements Adapter.
func (CloudEventAdapter) EncodeResponse(req *AdaptedMessage, payload []byte) ([]byte, error) {
	return proto.MarshalCloudEvent(&proto.CloudEvent{
		SpecVersion: "1.0",
		ID:          req.Meta["id"] + "-response",
		Source:      "spright/gateway",
		Type:        req.Topic + ".response",
		Data:        payload,
	})
}

// EncodeAck implements Adapter.
func (CloudEventAdapter) EncodeAck(req *AdaptedMessage) ([]byte, error) {
	return CloudEventAdapter{}.EncodeResponse(req, nil)
}
