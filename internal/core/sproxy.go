package core

import (
	"errors"
	"fmt"

	"github.com/spright-go/spright/internal/ebpf"
	"github.com/spright-go/spright/internal/shm"
)

// MaxInstances bounds per-chain function instance IDs (sockmap and metrics
// map geometry).
const MaxInstances = 256

// SProxy is the event-driven socket proxy of §3.2.1/§3.4: an SK_MSG eBPF
// program attached to every function socket of one chain. On each send it
//
//  1. parses the 16-byte packet descriptor,
//  2. enforces the chain's inter-function filter (security domain),
//  3. bumps the destination's L7 request counter in the metrics map, and
//  4. redirects the descriptor to the destination socket via the sockmap —
//     all inside the VM, without touching the kernel protocol stack.
type SProxy struct {
	kernel  *ebpf.Kernel
	prog    *ebpf.LoadedProgram
	sockmap *ebpf.Map
	filter  *ebpf.Map
	metrics *ebpf.Map
}

// Send errors.
var (
	ErrFiltered = errors.New("core: descriptor rejected by SPROXY filter")
	ErrNoSuchFn = errors.New("core: destination not in sockmap")
)

// NewSProxy creates the chain's maps and loads the SPROXY program into the
// given kernel.
func NewSProxy(kernel *ebpf.Kernel, chain string) (*SProxy, error) {
	sockmap, err := kernel.CreateMap(ebpf.MapSpec{
		Name: chain + "_sock_map", Type: ebpf.MapTypeSockMap,
		KeySize: 4, ValueSize: 4, MaxEntries: MaxInstances,
	})
	if err != nil {
		return nil, err
	}
	filter, err := kernel.CreateMap(ebpf.MapSpec{
		Name: chain + "_filter_map", Type: ebpf.MapTypeHash,
		KeySize: 8, ValueSize: 1, MaxEntries: MaxInstances * MaxInstances,
	})
	if err != nil {
		return nil, err
	}
	metrics, err := kernel.CreateMap(ebpf.MapSpec{
		Name: chain + "_metrics_map", Type: ebpf.MapTypeArray,
		KeySize: 4, ValueSize: 8, MaxEntries: MaxInstances,
	})
	if err != nil {
		return nil, err
	}

	prog, err := buildSProxyProgram(chain, sockmap.FD(), filter.FD(), metrics.FD())
	if err != nil {
		return nil, err
	}
	lp, err := kernel.Load(prog)
	if err != nil {
		return nil, err
	}
	return &SProxy{kernel: kernel, prog: lp, sockmap: sockmap, filter: filter, metrics: metrics}, nil
}

// buildSProxyProgram assembles the SK_MSG program. Register plan:
// R6 = saved ctx, R7 = data, R8 = destination instance ID, R9 = source ID.
func buildSProxyProgram(chain string, sockmapFD, filterFD, metricsFD int) (*ebpf.Program, error) {
	b := ebpf.NewBuilder("sproxy_"+chain, ebpf.ProgTypeSKMsg)
	b.Ins(
		ebpf.Mov64Reg(ebpf.R6, ebpf.R1),            // save ctx
		ebpf.LoadMem(ebpf.R7, ebpf.R6, 0, ebpf.DW), // data
		ebpf.LoadMem(ebpf.R2, ebpf.R6, 8, ebpf.DW), // data_end
		ebpf.Mov64Reg(ebpf.R3, ebpf.R7),
		ebpf.Add64Imm(ebpf.R3, shm.DescriptorSize),
	)
	b.Jmp(ebpf.JgtReg(ebpf.R3, ebpf.R2, 0), "drop") // short descriptor
	b.Ins(
		ebpf.LoadMem(ebpf.R8, ebpf.R7, 0, ebpf.W),  // dst = desc.NextFn
		ebpf.LoadMem(ebpf.R9, ebpf.R6, 16, ebpf.W), // src = ctx local id
		// filter key = src<<32 | dst
		ebpf.Mov64Reg(ebpf.R2, ebpf.R9),
		ebpf.Lsh64Imm(ebpf.R2, 32),
		ebpf.Or64Reg(ebpf.R2, ebpf.R8),
		ebpf.StoreMem(ebpf.R10, -8, ebpf.R2, ebpf.DW),
		ebpf.LoadMapFD(ebpf.R1, filterFD),
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -8),
		ebpf.Call(ebpf.HelperMapLookupElem),
	)
	b.Jmp(ebpf.JeqImm(ebpf.R0, 0, 0), "drop") // not authorized
	// L7 metric: metrics[dst]++
	b.Ins(
		ebpf.StoreMem(ebpf.R10, -12, ebpf.R8, ebpf.W),
		ebpf.LoadMapFD(ebpf.R1, metricsFD),
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.Add64Imm(ebpf.R2, -12),
		ebpf.Call(ebpf.HelperMapLookupElem),
	)
	b.Jmp(ebpf.JeqImm(ebpf.R0, 0, 0), "redirect")
	b.Ins(
		ebpf.Mov64Imm(ebpf.R2, 1),
		ebpf.AtomicAdd(ebpf.R0, 0, ebpf.R2, ebpf.DW),
	)
	b.Label("redirect")
	b.Ins(
		ebpf.Mov64Reg(ebpf.R1, ebpf.R6),
		ebpf.LoadMapFD(ebpf.R2, sockmapFD),
		ebpf.Mov64Reg(ebpf.R3, ebpf.R8),
		ebpf.Mov64Imm(ebpf.R4, 0),
		ebpf.Call(ebpf.HelperMsgRedirectMap),
		ebpf.Exit(),
	)
	b.Label("drop")
	b.Ins(ebpf.Mov64Imm(ebpf.R0, ebpf.SKDrop), ebpf.Exit())
	return b.Program()
}

// RegisterSocket installs a function instance's socket in the sockmap —
// the control-plane step the gateway performs when a new instance starts.
func (sp *SProxy) RegisterSocket(s *Socket) error {
	return sp.sockmap.UpdateSock(s.SockID(), s)
}

// UnregisterSocket removes an instance from the sockmap.
func (sp *SProxy) UnregisterSocket(id uint32) error {
	return sp.sockmap.DeleteU32(id)
}

func filterKey(src, dst uint32) [8]byte {
	var k [8]byte
	// little-endian u64 of src<<32|dst
	k[0], k[1], k[2], k[3] = byte(dst), byte(dst>>8), byte(dst>>16), byte(dst>>24)
	k[4], k[5], k[6], k[7] = byte(src), byte(src>>8), byte(src>>16), byte(src>>24)
	return k
}

// filterAllowed is the shared "authorized" filter value.
var filterAllowed = []byte{1}

// Allow authorizes descriptors from src to dst (kubelet-configured filter
// rules; §3.4 supports runtime updates).
func (sp *SProxy) Allow(src, dst uint32) error {
	k := filterKey(src, dst)
	return sp.filter.Update(k[:], filterAllowed)
}

// Revoke removes an authorization at runtime.
func (sp *SProxy) Revoke(src, dst uint32) error {
	k := filterKey(src, dst)
	err := sp.filter.Delete(k[:])
	if errors.Is(err, ebpf.ErrKeyNotFound) {
		return nil
	}
	return err
}

// Send runs the SPROXY program for a descriptor sent by instance src and,
// on a pass verdict, delivers it to the socket the program selected.
//
// The descriptor is marshaled once into the VM's inline staging buffer
// (RunCopy) and the already-parsed value is handed to the destination
// socket directly — one parse per hop, no per-send heap allocation.
func (sp *SProxy) Send(src uint32, d shm.Descriptor) error {
	wire := d.Marshal()
	res, err := sp.kernel.RunCopy(sp.prog, wire[:], src, nil)
	if err != nil {
		return fmt.Errorf("sproxy: %w", err)
	}
	return sp.finishSend(src, d, res)
}

// finishSend turns one program verdict into a delivery (or a classified
// error) — the tail shared by Send and SendBatch.
func (sp *SProxy) finishSend(src uint32, d shm.Descriptor, res ebpf.Result) error {
	if res.Ret != ebpf.SKPass {
		if _, lookErr := sp.sockmap.LookupSock(d.NextFn); lookErr != nil {
			return fmt.Errorf("%w: instance %d", ErrNoSuchFn, d.NextFn)
		}
		return fmt.Errorf("%w: %d -> %d", ErrFiltered, src, d.NextFn)
	}
	switch sink := res.RedirectSock.(type) {
	case *Socket:
		// Fast path: in-process socket takes the parsed descriptor.
		return sink.Deliver(d)
	case nil:
		return fmt.Errorf("%w: instance %d", ErrNoSuchFn, d.NextFn)
	default:
		// Foreign SockRef implementations still get the wire form.
		w := d.Marshal()
		return sink.DeliverDescriptor(w[:])
	}
}

// SendBatch runs the SPROXY program for a burst of descriptors from one
// source instance. Verdicts stay per-descriptor — the filter check and the
// L7 metric bump execute inside the VM for every descriptor, so batch and
// serial sends are observationally identical to the kernel side — but the
// burst shares one pooled VM exec state (RunCopyEach), paying the per-run
// setup once instead of per descriptor. Returns the number delivered;
// onErr (which may be nil) is invoked with the index and error of each
// failed descriptor.
func (sp *SProxy) SendBatch(src uint32, ds []shm.Descriptor, onErr func(i int, err error)) int {
	delivered := 0
	fail := func(i int, err error) {
		if onErr != nil {
			onErr(i, err)
		}
	}
	sp.kernel.RunCopyEach(sp.prog, src, nil, len(ds),
		func(i int, buf []byte) int {
			w := ds[i].Marshal()
			return copy(buf, w[:])
		},
		func(i int, res ebpf.Result, err error) bool {
			if err != nil {
				fail(i, fmt.Errorf("sproxy: %w", err))
				return true
			}
			if derr := sp.finishSend(src, ds[i], res); derr != nil {
				fail(i, derr)
				return true
			}
			delivered++
			return true
		})
	return delivered
}

// RequestCount reads the L7 per-instance request counter maintained by the
// in-kernel program (the metric the autoscaler scrapes, §3.3).
func (sp *SProxy) RequestCount(instance uint32) uint64 {
	var v [8]byte
	if err := sp.metrics.LookupU32Into(instance, v[:]); err != nil {
		return 0
	}
	return ebpf.U64FromValue(v[:])
}
