package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
	"unsafe"

	"github.com/spright-go/spright/internal/shm"
)

// largePayload builds a position-dependent body so any slab misordering in
// the object path shows up as corruption.
func largePayload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*13 + 7)
	}
	return b
}

// waitObjectsDrained polls until the chain's object store has no live
// objects (request teardown is asynchronous to the response).
func waitObjectsDrained(t *testing.T, c *Chain) {
	t.Helper()
	st := c.ObjectStore()
	deadline := time.Now().Add(2 * time.Second)
	for st.Stats().Objects != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := st.LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestE2ELargeRequest drives a payload far beyond BufSize through the
// chain: admission assembles it into a multi-slab object, the handler
// reads it in place via Ctx.OpenObject and replies with a small summary.
func TestE2ELargeRequest(t *testing.T) {
	want := largePayload(100_000)
	spec := ChainSpec{
		PoolBuffers: 128,
		BufSize:     4096,
		Functions: []FunctionSpec{{
			Name: "digest",
			Handler: func(ctx *Ctx) error {
				if len(ctx.Payload()) != 0 {
					return fmt.Errorf("buffer payload %d bytes, want 0 (object path)", len(ctx.Payload()))
				}
				r, err := ctx.OpenObject()
				if err != nil {
					return err
				}
				defer r.Close()
				var sum uint64
				n := 0
				for i := 0; i < r.Slabs(); i++ {
					for _, b := range r.Slab(i) {
						sum += uint64(b)
						n++
					}
				}
				if int64(n) != r.Size() {
					return fmt.Errorf("read %d bytes, Size says %d", n, r.Size())
				}
				ctx.DetachObject() // reply is small; drop the request object now
				ctx.Reply()
				return ctx.SetPayload([]byte(fmt.Sprintf("%d:%d", n, sum)))
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"digest"}}},
	}
	for _, mode := range []Mode{ModeEvent, ModePolling} {
		t.Run(mode.String(), func(t *testing.T) {
			c, g := testChain(t, mode, spec)
			out, err := g.Invoke(context.Background(), "", want)
			if err != nil {
				t.Fatal(err)
			}
			var sum uint64
			for _, b := range want {
				sum += uint64(b)
			}
			if exp := fmt.Sprintf("%d:%d", len(want), sum); string(out) != exp {
				t.Fatalf("digest = %q, want %q", out, exp)
			}
			waitObjectsDrained(t, c)
		})
	}
}

// TestE2ELargeEcho returns the request object untouched: the handler never
// opens it, the gateway assembles the response from the attached object.
func TestE2ELargeEcho(t *testing.T) {
	spec := ChainSpec{
		PoolBuffers: 128,
		BufSize:     4096,
		Functions: []FunctionSpec{{
			Name:    "passthrough",
			Handler: func(ctx *Ctx) error { return nil },
		}},
		Routes: []RouteSpec{{From: "", To: []string{"passthrough"}}},
	}
	c, g := testChain(t, ModeEvent, spec)
	want := largePayload(50_000)
	out, err := g.Invoke(context.Background(), "", want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatalf("echoed %d bytes, want %d, content match=%v", len(out), len(want), bytes.Equal(out, want))
	}
	waitObjectsDrained(t, c)
}

// TestE2ELargeResponse has the handler produce a >BufSize response via
// Ctx.ReplyObject.
func TestE2ELargeResponse(t *testing.T) {
	want := largePayload(80_000)
	spec := ChainSpec{
		PoolBuffers: 128,
		BufSize:     4096,
		Functions: []FunctionSpec{{
			Name: "producer",
			Handler: func(ctx *Ctx) error {
				h, err := ctx.PutObject("", want)
				if err != nil {
					return err
				}
				return ctx.ReplyObject(h)
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"producer"}}},
	}
	c, g := testChain(t, ModeEvent, spec)
	out, err := g.Invoke(context.Background(), "", []byte("gimme"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatalf("response %d bytes, want %d", len(out), len(want))
	}
	waitObjectsDrained(t, c)
}

// TestFanOutSharedObjectZeroCopy is the fan-out DAG acceptance scenario:
// the producer writes a 10MB intermediate ONCE, attaches it, and fans out
// to N consumers; each consumer reads the object in place. The slab base
// addresses every consumer observes must be identical — one set of
// shared-memory pages, zero copies — and the aggregator's Nth arrival
// replies, after which the intermediate dies with the request.
func TestFanOutSharedObjectZeroCopy(t *testing.T) {
	const consumers = 3
	const objSize = 10 << 20 // the 10MB intermediate from ROADMAP item 4

	intermediate := largePayload(objSize)
	var mu sync.Mutex
	addrs := make(map[string]uintptr) // consumer → first slab base address
	var arrivals int

	consumerFn := func(name string) FunctionSpec {
		return FunctionSpec{
			Name: name,
			Handler: func(ctx *Ctx) error {
				r, err := ctx.OpenObject()
				if err != nil {
					return err
				}
				defer r.Close()
				if r.Size() != objSize {
					return fmt.Errorf("%s: object size %d", name, r.Size())
				}
				s0 := r.Slab(0)
				if len(s0) == 0 || s0[0] != intermediate[0] {
					return fmt.Errorf("%s: corrupt first slab", name)
				}
				mu.Lock()
				addrs[name] = uintptr(unsafe.Pointer(&s0[0]))
				mu.Unlock()
				return nil // default route → aggregator
			},
		}
	}

	spec := ChainSpec{
		PoolBuffers: 4096,
		BufSize:     16 * 1024,
		Functions: []FunctionSpec{
			{
				Name: "producer",
				Handler: func(ctx *Ctx) error {
					h, err := ctx.PutObject("intermediate", intermediate)
					if err != nil {
						return err
					}
					if err := ctx.AttachObject(h); err != nil {
						return err
					}
					return ctx.SetPayload(nil)
				},
			},
			consumerFn("c1"), consumerFn("c2"), consumerFn("c3"),
			{
				Name: "agg",
				Handler: func(ctx *Ctx) error {
					mu.Lock()
					arrivals++
					last := arrivals == consumers
					mu.Unlock()
					if !last {
						ctx.Drop()
						return nil
					}
					// All consumers reported: reply with a small verdict so
					// the gateway does not echo the 10MB object back.
					ctx.DetachObject()
					ctx.Reply()
					return ctx.SetPayload([]byte("done"))
				},
			},
		},
		Routes: []RouteSpec{
			{From: "", To: []string{"producer"}},
			{From: "producer", To: []string{"c1", "c2", "c3"}},
			{From: "c1", To: []string{"agg"}},
			{From: "c2", To: []string{"agg"}},
			{From: "c3", To: []string{"agg"}},
		},
	}
	c, g := testChain(t, ModeEvent, spec)

	st := c.ObjectStore()
	before := st.Stats()
	out, err := g.Invoke(context.Background(), "", []byte("go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "done" {
		t.Fatalf("reply %q", out)
	}
	if len(addrs) != consumers {
		t.Fatalf("only %d consumers reported: %v", len(addrs), addrs)
	}
	// Zero-copy proof: every consumer saw the SAME backing memory.
	var base uintptr
	for name, a := range addrs {
		if base == 0 {
			base = a
		} else if a != base {
			t.Fatalf("consumer %s read a different copy: %#x vs %#x", name, a, base)
		}
	}
	// Written once: exactly one object was committed for the intermediate.
	if puts := st.Stats().Puts - before.Puts; puts != 1 {
		t.Fatalf("intermediate committed %d times, want 1", puts)
	}
	waitObjectsDrained(t, c)
}

// TestServeHTTPPayloadTooLarge413 is the satellite regression test: with
// the object tier disabled, a >BufSize body is refused with HTTP 413 and
// its own shed reason — never a generic 500.
func TestServeHTTPPayloadTooLarge413(t *testing.T) {
	spec := echoSpec()
	spec.BufSize = 4096
	spec.Objects = ObjectPolicy{Disable: true}
	_, g := testChain(t, ModeEvent, spec)

	req := httptest.NewRequest(http.MethodPost, "/", strings.NewReader(strings.Repeat("x", 8192)))
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body %q)", rec.Code, rec.Body.String())
	}
	st := g.Stats()
	if st.ShedPayloadTooLarge != 1 {
		t.Fatalf("ShedPayloadTooLarge = %d, want 1", st.ShedPayloadTooLarge)
	}
	if st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}

	// Under the limit still works.
	out, err := g.Invoke(context.Background(), "", []byte("ok"))
	if err != nil || string(out) != "OK" {
		t.Fatalf("small invoke after 413: %q, %v", out, err)
	}
}

// TestPayloadOverObjectCap413 covers the enabled-store flavor: a body over
// ObjectPolicy.MaxObjectBytes is refused identically.
func TestPayloadOverObjectCap413(t *testing.T) {
	spec := echoSpec()
	spec.BufSize = 4096
	spec.Objects = ObjectPolicy{MaxObjectBytes: 16 * 1024}
	c, g := testChain(t, ModeEvent, spec)

	_, err := g.Invoke(context.Background(), "", largePayload(64*1024))
	if !errors.Is(err, shm.ErrPayloadTooLarge) {
		t.Fatalf("Invoke = %v, want ErrPayloadTooLarge", err)
	}
	if st := g.Stats(); st.ShedPayloadTooLarge != 1 {
		t.Fatalf("ShedPayloadTooLarge = %d", st.ShedPayloadTooLarge)
	}
	// Nothing may leak from the rejected chunked write.
	if err := c.ObjectStore().LeakCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyReplyToLargeRequestNotEchoed: a handler that explicitly replies
// with an empty body to a >BufSize request — without detaching the request
// object — must return an empty response, exactly as it would for a small
// request. Assembly keys off the carrier bit (cleared by any payload
// write), not off Len==0 plus an attached handle, so the multi-MB request
// object is never echoed by accident.
func TestEmptyReplyToLargeRequestNotEchoed(t *testing.T) {
	var handlerErr error
	spec := ChainSpec{
		PoolBuffers: 128,
		BufSize:     4096,
		Functions: []FunctionSpec{{
			Name: "ack",
			Handler: func(ctx *Ctx) error {
				if !ctx.ObjectIsPayload() {
					handlerErr = errors.New("large request arrived without the carrier bit")
				}
				if err := ctx.SetPayload(nil); err != nil {
					return err
				}
				if ctx.ObjectIsPayload() {
					handlerErr = errors.New("SetPayload did not clear the carrier bit")
				}
				ctx.Reply()
				return nil
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"ack"}}},
	}
	c, g := testChain(t, ModeEvent, spec)
	out, err := g.Invoke(context.Background(), "", largePayload(50_000))
	if err != nil {
		t.Fatal(err)
	}
	if handlerErr != nil {
		t.Fatal(handlerErr)
	}
	if len(out) != 0 {
		t.Fatalf("explicitly empty reply echoed %d bytes of the request object", len(out))
	}
	waitObjectsDrained(t, c)
}

// TestServeHTTPBodyOverObjectCap413 covers the streaming guard on the HTTP
// front door: with the store enabled, a body over MaxObjectBytes is refused
// with 413 after at most cap+1 buffered bytes (http.MaxBytesReader), and an
// under-cap >BufSize body still flows through the object path untouched.
func TestServeHTTPBodyOverObjectCap413(t *testing.T) {
	spec := echoSpec()
	spec.BufSize = 4096
	spec.Objects = ObjectPolicy{MaxObjectBytes: 16 * 1024}
	c, g := testChain(t, ModeEvent, spec)

	req := httptest.NewRequest(http.MethodPost, "/", bytes.NewReader(largePayload(64*1024)))
	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (body %q)", rec.Code, rec.Body.String())
	}
	st := g.Stats()
	if st.ShedPayloadTooLarge != 1 {
		t.Fatalf("ShedPayloadTooLarge = %d, want 1", st.ShedPayloadTooLarge)
	}
	if st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", st.Rejected)
	}

	// Under the cap but over BufSize: still admitted via the object tier.
	body := largePayload(12 * 1024)
	req = httptest.NewRequest(http.MethodPost, "/", bytes.NewReader(body))
	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("under-cap large body: status = %d (%q)", rec.Code, rec.Body.String())
	}
	if !bytes.Equal(rec.Body.Bytes(), body) {
		t.Fatalf("under-cap large body came back %d bytes, want %d", rec.Body.Len(), len(body))
	}
	waitObjectsDrained(t, c)
}

// TestCtxObjectAPIsDisabled pins the ErrObjectsDisabled surface.
func TestCtxObjectAPIsDisabled(t *testing.T) {
	var handlerErr error
	spec := ChainSpec{
		Objects: ObjectPolicy{Disable: true},
		Functions: []FunctionSpec{{
			Name: "f",
			Handler: func(ctx *Ctx) error {
				if _, err := ctx.PutObject("k", []byte("x")); !errors.Is(err, ErrObjectsDisabled) {
					handlerErr = fmt.Errorf("PutObject = %v", err)
				}
				if _, err := ctx.OpenObject(); !errors.Is(err, ErrObjectsDisabled) {
					handlerErr = fmt.Errorf("OpenObject = %v", err)
				}
				if ctx.Objects() != nil {
					handlerErr = errors.New("Objects() not nil on disabled chain")
				}
				return nil
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"f"}}},
	}
	c, g := testChain(t, ModeEvent, spec)
	if c.ObjectStore() != nil {
		t.Fatal("ObjectStore() not nil with Disable")
	}
	if _, err := g.Invoke(context.Background(), "", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if handlerErr != nil {
		t.Fatal(handlerErr)
	}
}

// TestObjectLifetimeOnHandlerError: a handler failing mid-request must not
// leak the attached object — the buffer release path fires the pool hook.
func TestObjectLifetimeOnHandlerError(t *testing.T) {
	spec := ChainSpec{
		PoolBuffers: 64,
		BufSize:     4096,
		Functions: []FunctionSpec{{
			Name: "fail",
			Handler: func(ctx *Ctx) error {
				return errTerminal
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"fail"}}},
	}
	c, g := testChain(t, ModeEvent, spec)
	_, err := g.Invoke(context.Background(), "", largePayload(20_000))
	if !errors.Is(err, errTerminal) {
		t.Fatalf("Invoke = %v, want handler error", err)
	}
	waitObjectsDrained(t, c)
}

// TestObjectLookupAcrossRequests: a keyed object put by one request is
// readable by a later one via Lookup/OpenKey when explicitly Ref'd past
// the first request's lifetime.
func TestObjectLookupAcrossRequests(t *testing.T) {
	spec := ChainSpec{
		PoolBuffers: 64,
		BufSize:     4096,
		Functions: []FunctionSpec{{
			Name: "cacher",
			Handler: func(ctx *Ctx) error {
				st := ctx.Objects()
				if string(ctx.Payload()) == "put" {
					// The creator's reference is deliberately NOT attached:
					// the object persists past this request, like a cached
					// model weight.
					if _, err := ctx.PutObject("cached", largePayload(9000)); err != nil {
						return err
					}
					return ctx.SetPayload([]byte("stored"))
				}
				r, err := st.OpenKey("cached")
				if err != nil {
					return err
				}
				defer r.Close()
				return ctx.SetPayload([]byte(fmt.Sprintf("%d", r.Size())))
			},
		}},
		Routes: []RouteSpec{{From: "", To: []string{"cacher"}}},
	}
	c, g := testChain(t, ModeEvent, spec)
	if out, err := g.Invoke(context.Background(), "", []byte("put")); err != nil || string(out) != "stored" {
		t.Fatalf("put: %q, %v", out, err)
	}
	if out, err := g.Invoke(context.Background(), "", []byte("get")); err != nil || string(out) != "9000" {
		t.Fatalf("get: %q, %v", out, err)
	}
	// The cache entry is a deliberate long-lived reference; release it so
	// teardown is leak-free.
	st := c.ObjectStore()
	h, ok := st.Lookup("cached")
	if !ok {
		t.Fatal("cached object vanished")
	}
	if err := st.Release(h); err != nil {
		t.Fatal(err)
	}
	waitObjectsDrained(t, c)
}
